// Package knit's root benchmark harness: one testing.B benchmark per
// table and figure in the paper's evaluation. Each benchmark reports the
// simulated metric the paper's table reports (cycles/packet, stall
// cycles, text bytes) via b.ReportMetric, alongside the usual wall-time
// measurement of the simulator itself.
//
// Run: go test -bench=. -benchmem
package knit

import (
	"sync"
	"testing"

	"knit/internal/clack"
	"knit/internal/click"
	"knit/internal/cmini"
	"knit/internal/compile"
	"knit/internal/knit/build"
	"knit/internal/knit/constraint"
	"knit/internal/knit/lang"
	"knit/internal/knit/link"
	"knit/internal/ldlink"
	"knit/internal/machine"
	"knit/internal/obj"
	"knit/internal/oskit"
)

// ---- Table 1: Clack router variants ----

var (
	routerOnce   sync.Once
	routerBuilds map[string]*build.Result
)

func routerBuild(b *testing.B, v clack.Variant) *build.Result {
	b.Helper()
	routerOnce.Do(func() {
		routerBuilds = map[string]*build.Result{}
		for _, vv := range []clack.Variant{{}, {HandOptimized: true},
			{Flattened: true}, {HandOptimized: true, Flattened: true}} {
			res, err := clack.BuildRouter(vv)
			if err != nil {
				panic(err)
			}
			routerBuilds[vv.String()] = res
		}
	})
	return routerBuilds[v.String()]
}

func benchRouter(b *testing.B, v clack.Variant) {
	res := routerBuild(b, v)
	packets := b.N
	if packets < 50 {
		packets = 50
	}
	meas, err := clack.RunRouter(res, clack.DefaultTraffic(packets))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(meas.CyclesPerPk, "cycles/packet")
	b.ReportMetric(meas.StallsPerPk, "stalls/packet")
	b.ReportMetric(float64(meas.TextBytes), "text-bytes")
}

func BenchmarkTable1Modular(b *testing.B)   { benchRouter(b, clack.Variant{}) }
func BenchmarkTable1Hand(b *testing.B)      { benchRouter(b, clack.Variant{HandOptimized: true}) }
func BenchmarkTable1Flattened(b *testing.B) { benchRouter(b, clack.Variant{Flattened: true}) }
func BenchmarkTable1Both(b *testing.B) {
	benchRouter(b, clack.Variant{HandOptimized: true, Flattened: true})
}

// ---- Table 2: Click router, unoptimized vs optimized ----

func benchClick(b *testing.B, opts click.Options) {
	packets := b.N
	if packets < 50 {
		packets = 50
	}
	meas, err := click.Measure(opts, clack.DefaultTraffic(packets))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(meas.CyclesPerPk, "cycles/packet")
	b.ReportMetric(meas.StallsPerPk, "stalls/packet")
}

func BenchmarkTable2ClickUnoptimized(b *testing.B) { benchClick(b, click.Options{}) }
func BenchmarkTable2ClickOptimized(b *testing.B)   { benchClick(b, click.All()) }

// ---- §6 micro-benchmark: Knit vs traditional build ----

func BenchmarkMicroKnitBuilt(b *testing.B) {
	res, err := oskit.BuildKernel("FsKernel", build.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := res.NewMachine()
	machine.InstallConsole(m)
	w := machine.InstallStopWatch(m)
	iters := int64(b.N)
	if iters < 10 {
		iters = 10
	}
	if _, err := res.Run(m, "main", "kmain", iters); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(w.Total)/float64(iters), "cycles/op")
}

func BenchmarkMicroTraditionallyBuilt(b *testing.B) {
	trad, err := oskit.TraditionalFsProgram(false)
	if err != nil {
		b.Fatal(err)
	}
	img, err := machine.Load(trad, machine.DefaultCosts())
	if err != nil {
		b.Fatal(err)
	}
	m := machine.New(img)
	machine.InstallConsole(m)
	w := machine.InstallStopWatch(m)
	if _, err := m.Run("canned_init"); err != nil {
		b.Fatal(err)
	}
	iters := int64(b.N)
	if iters < 10 {
		iters = 10
	}
	if _, err := m.Run("kmain", iters); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(w.Total)/float64(iters), "cycles/op")
}

// ---- §5/§6 build-time: Knit proper vs compiler, constraint checking ----

func BenchmarkBuildFsKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := oskit.BuildKernel("FsKernel", build.Options{Optimize: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCensusElaborate(b *testing.B) {
	units, sources, top := oskit.CensusKernel(100, 35)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build.Build(build.Options{
			Top:       top,
			UnitFiles: map[string]string{"census.unit": units},
			Sources:   sources,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCensusConstraintCheck(b *testing.B) {
	units, sources, top := oskit.CensusKernel(100, 35)
	f, err := lang.Parse("census.unit", units)
	if err != nil {
		b.Fatal(err)
	}
	reg, err := link.NewRegistry(f)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := link.Elaborate(reg, top, sources)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := constraint.Check(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 1(c): linking baselines ----

func BenchmarkFig1cLdLink(b *testing.B) {
	client := mustCompile(b, "client.c", `
extern int serve(int x);
int main_(int x) { return serve(x); }
`)
	server := mustCompile(b, "server.c", `int serve(int x) { return x + 1; }`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ldlink.Link([]ldlink.Item{ldlink.Obj(client), ldlink.Obj(server)},
			ldlink.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1cKnitInterposition(b *testing.B) {
	units := `
bundletype Serve = { serve }
bundletype Main = { m }
unit Server = { exports [ s : Serve ]; files { "server.c" }; }
unit Wrap = {
  imports [ inner : Serve ];
  exports [ outer : Serve ];
  files { "wrap.c" };
  rename { inner.serve to serve_inner; outer.serve to serve_outer; };
}
unit Client = { imports [ s : Serve ]; exports [ mm : Main ]; files { "client.c" }; }
unit Top = {
  exports [ mm : Main ];
  link {
    [s] <- Server <- [];
    [w] <- Wrap <- [s];
    [mm] <- Client <- [w];
  };
}
`
	sources := link.Sources{
		"server.c": `int serve(int x) { return x + 1; }`,
		"wrap.c":   `int serve_inner(int x); int serve_outer(int x) { return serve_inner(x) * 10; }`,
		"client.c": `int serve(int x); int m(int x) { return serve(x); }`,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build.Build(build.Options{
			Top:       "Top",
			UnitFiles: map[string]string{"t.unit": units},
			Sources:   sources,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablations: the compiler passes flattening relies on ----

func BenchmarkCompileRouterElementsSeparate(b *testing.B) {
	srcs := clack.ElementSources()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for name, src := range srcs {
			mustCompile(b, name, src)
		}
	}
}

func mustCompile(b *testing.B, name, src string) *obj.File {
	b.Helper()
	f, err := cmini.Parse(name, src)
	if err != nil {
		b.Fatal(err)
	}
	o, err := compile.Compile(f, compile.Options{Opt: true})
	if err != nil {
		b.Fatal(err)
	}
	return o
}

// ---- build-time: the cache and the parallel compile stage ----

// benchRouterBuild measures one full router build per iteration under
// the given tuning — the number the knitbench -buildtime table reports.
func benchRouterBuild(b *testing.B, tune func(*build.Options)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := clack.BuildRouterTuned(clack.Variant{}, tune); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildRouterCold(b *testing.B) {
	benchRouterBuild(b, nil)
}

// BenchmarkBuildRouterWarm builds once outside the timer to fill the
// cache, then measures fully warm builds.
func BenchmarkBuildRouterWarm(b *testing.B) {
	cache := build.NewCache()
	tune := func(o *build.Options) { o.Cache = cache }
	if _, err := clack.BuildRouterTuned(clack.Variant{}, tune); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	benchRouterBuild(b, tune)
}

func BenchmarkBuildRouterParallel(b *testing.B) {
	benchRouterBuild(b, func(o *build.Options) { o.Parallelism = 0 })
}
