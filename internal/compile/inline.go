package compile

import (
	"sort"

	"knit/internal/obj"
)

// inlineFile inlines direct calls whose callees are defined in the same
// object file. Like gcc compiling a single translation unit, the inliner
// never sees beyond the file: calls to extern symbols (component imports)
// stay as calls. Knit's flattener exploits exactly this boundary — by
// merging many components' sources into one file, previously-extern calls
// become intra-file and inlinable.
func inlineFile(f *obj.File, inlineLimit, growthLimit int) {
	// Process functions callees-first (approximated by repeated rounds in
	// sorted name order) so inlining is deterministic; growth caps keep
	// recursion and code blowup bounded.
	names := make([]string, 0, len(f.Funcs))
	for name := range f.Funcs {
		names = append(names, name)
	}
	// Definition order: earlier functions finalize first, so a caller
	// sees its (earlier-defined) callees fully optimized.
	sort.Slice(names, func(i, j int) bool {
		a, b := f.Funcs[names[i]], f.Funcs[names[j]]
		if a.Order != b.Order {
			return a.Order < b.Order
		}
		return a.Name < b.Name
	})
	for round := 0; round < 4; round++ {
		changed := false
		for _, name := range names {
			if inlineCalls(f, f.Funcs[name], inlineLimit, growthLimit) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// inlinable reports whether callee can be inlined at all.
func inlinable(callee *obj.Func, limit int) bool {
	if len(callee.Code) > limit {
		return false
	}
	for i := range callee.Code {
		// Direct recursion never inlines.
		if callee.Code[i].Op == obj.OpCall && callee.Code[i].Sym == callee.Name {
			return false
		}
	}
	return true
}

// inlineCalls rewrites fn, splicing in the bodies of inlinable callees.
// It reports whether anything changed.
func inlineCalls(f *obj.File, fn *obj.Func, inlineLimit, growthLimit int) bool {
	var sites []int
	for i := range fn.Code {
		in := &fn.Code[i]
		if in.Op != obj.OpCall || in.Sym == fn.Name {
			continue
		}
		callee, ok := f.Funcs[in.Sym]
		if !ok || callee == fn || !inlinable(callee, inlineLimit) {
			continue
		}
		// gcc-2.95 rule: only callees defined before the caller inline.
		if callee.Order >= fn.Order {
			continue
		}
		if len(in.Args) != callee.NArgs {
			continue // arity mismatch: leave the call; the machine traps
		}
		sites = append(sites, i)
	}
	if len(sites) == 0 {
		return false
	}
	siteSet := map[int]bool{}
	budget := growthLimit - len(fn.Code)
	for _, i := range sites {
		callee := f.Funcs[fn.Code[i].Sym]
		cost := len(callee.Code) + callee.NArgs
		if cost > budget {
			continue
		}
		budget -= cost
		siteSet[i] = true
	}
	if len(siteSet) == 0 {
		return false
	}

	// Rebuild the code with splices. newIndex maps old caller indexes to
	// new ones for target fixup (old index len(code) maps to new end).
	newIndex := make([]int, len(fn.Code)+1)
	var out []obj.Instr
	type retFix struct {
		at   int // index in out of the jump emitted for an inlined return
		site int // call site (old index); continuation = newIndex[site+1]
	}
	var retFixes []retFix
	for i := range fn.Code {
		newIndex[i] = len(out)
		in := fn.Code[i]
		if !siteSet[i] {
			out = append(out, in)
			continue
		}
		callee := f.Funcs[in.Sym]
		regBase := obj.Reg(fn.NRegs)
		fn.NRegs += callee.NRegs
		frameBase := fn.Frame
		fn.Frame += callee.Frame
		// Prologue: copy argument registers into the callee's parameter
		// registers (callee params are regs 0..NArgs-1, remapped).
		for a, argReg := range in.Args {
			out = append(out, obj.Instr{
				Op: obj.OpMov, Dst: regBase + obj.Reg(a), A: argReg, B: obj.NoReg,
			})
		}
		bodyStart := len(out)
		// A return with a value expands into two instructions (Mov then
		// Jump), so callee indexes shift; precompute the mapping from
		// callee index to out index before emitting.
		calleeNew := make([]int, len(callee.Code)+1)
		pos := bodyStart
		for ci := range callee.Code {
			calleeNew[ci] = pos
			if callee.Code[ci].Op == obj.OpRet && callee.Code[ci].HasVal {
				pos += 2
			} else {
				pos++
			}
		}
		calleeNew[len(callee.Code)] = pos
		for ci := range callee.Code {
			cin := callee.Code[ci]
			if cin.Args != nil {
				cin.Args = append([]obj.Reg(nil), cin.Args...)
			}
			remap := func(r obj.Reg) obj.Reg {
				if r == obj.NoReg {
					return r
				}
				return r + regBase
			}
			if defines(cin.Op) {
				cin.Dst = remap(cin.Dst)
			}
			switch cin.Op {
			case obj.OpMov, obj.OpUn, obj.OpLoad, obj.OpBranch, obj.OpCallInd:
				cin.A = remap(cin.A)
			case obj.OpBin, obj.OpStore:
				cin.A = remap(cin.A)
				cin.B = remap(cin.B)
			case obj.OpAddrLocal:
				cin.Imm += int64(frameBase)
			case obj.OpRet:
				if cin.HasVal {
					cin.A = remap(cin.A)
				}
			}
			for ai := range cin.Args {
				cin.Args[ai] = remap(cin.Args[ai])
			}
			switch cin.Op {
			case obj.OpJump:
				cin.Targets[0] = calleeNew[cin.Targets[0]]
			case obj.OpBranch:
				cin.Targets[0] = calleeNew[cin.Targets[0]]
				cin.Targets[1] = calleeNew[cin.Targets[1]]
			case obj.OpRet:
				// Return becomes: move result into the call's Dst, then
				// jump to the continuation.
				if cin.HasVal {
					out = append(out, obj.Instr{
						Op: obj.OpMov, Dst: in.Dst, A: cin.A, B: obj.NoReg,
					})
				}
				out = append(out, obj.Instr{Op: obj.OpJump})
				retFixes = append(retFixes, retFix{at: len(out) - 1, site: i})
				continue
			}
			out = append(out, cin)
		}
	}
	newIndex[len(fn.Code)] = len(out)

	// Fix the caller's own jump targets, skipping instructions that were
	// spliced in (their targets were already final when emitted). An
	// instruction belongs to the caller iff its out-index is newIndex[k]
	// for the k-th surviving caller instruction; track via a second pass.
	isCaller := make([]bool, len(out))
	for i := range fn.Code {
		if !siteSet[i] {
			isCaller[newIndex[i]] = true
		}
	}
	for oi := range out {
		if !isCaller[oi] {
			continue
		}
		switch out[oi].Op {
		case obj.OpJump:
			out[oi].Targets[0] = newIndex[out[oi].Targets[0]]
		case obj.OpBranch:
			out[oi].Targets[0] = newIndex[out[oi].Targets[0]]
			out[oi].Targets[1] = newIndex[out[oi].Targets[1]]
		}
	}
	for _, rf := range retFixes {
		out[rf.at].Targets[0] = newIndex[rf.site+1]
	}
	fn.Code = out
	return true
}
