package compile

import (
	"testing"

	"knit/internal/cmini"
	"knit/internal/obj"
)

func compileOpt(t *testing.T, src string, opts Options) *obj.File {
	t.Helper()
	f, err := cmini.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	opts.Opt = true
	o, err := Compile(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func callsIn(fn *obj.Func, sym string) int {
	n := 0
	for _, in := range fn.Code {
		if in.Op == obj.OpCall && in.Sym == sym {
			n++
		}
	}
	return n
}

// TestDefineBeforeUseRule pins the gcc-2.95 behaviour the flattener's
// callees-first sort exists for: a callee defined before its caller
// inlines; one defined after does not.
func TestDefineBeforeUseRule(t *testing.T) {
	before := compileOpt(t, `
static int helper(int x) { return x + 1; }
int caller(int x) { return helper(x) * 2; }
`, Options{})
	if n := callsIn(before.Funcs["caller"], "helper"); n != 0 {
		t.Errorf("callee-before-caller: %d calls remain, want 0", n)
	}

	after := compileOpt(t, `
static int helper2(int x);
int caller(int x) { return helper2(x) * 2; }
static int helper2(int x) { return x + 1; }
`, Options{})
	if n := callsIn(after.Funcs["caller"], "helper2"); n != 1 {
		t.Errorf("callee-after-caller: %d calls, want 1 (no inlining)", n)
	}
}

func TestInlineLimitRespected(t *testing.T) {
	src := `
static int big(int x) {
    int s = 0;
    for (int i = 0; i < 10; i++) { s += x * i + i; }
    for (int i = 0; i < 10; i++) { s -= x - i; }
    return s;
}
int caller(int x) { return big(x); }
`
	// A generous limit inlines; a tiny one does not.
	generous := compileOpt(t, src, Options{InlineLimit: 4096})
	if n := callsIn(generous.Funcs["caller"], "big"); n != 0 {
		t.Errorf("generous limit: %d calls remain", n)
	}
	tiny := compileOpt(t, src, Options{InlineLimit: 4})
	if n := callsIn(tiny.Funcs["caller"], "big"); n != 1 {
		t.Errorf("tiny limit: %d calls, want 1", n)
	}
	disabled := compileOpt(t, src, Options{InlineLimit: -1})
	if n := callsIn(disabled.Funcs["caller"], "big"); n != 1 {
		t.Errorf("disabled inliner: %d calls, want 1", n)
	}
}

func TestGrowthLimitStopsBlowup(t *testing.T) {
	// A caller with many call sites to a mid-sized callee: the growth
	// cap must leave some call sites un-inlined rather than exploding.
	src := `
static int mid(int x) {
    int s = x;
    s += x * 2; s += x * 3; s += x * 5; s += x * 7;
    s += x * 11; s += x * 13; s += x * 17; s += x * 19;
    return s;
}
int caller(int x) {
    int s = 0;
    s += mid(x); s += mid(x + 1); s += mid(x + 2); s += mid(x + 3);
    s += mid(x + 4); s += mid(x + 5); s += mid(x + 6); s += mid(x + 7);
    return s;
}
`
	o := compileOpt(t, src, Options{InlineLimit: 4096, GrowthLimit: 60})
	caller := o.Funcs["caller"]
	if len(caller.Code) > 200 {
		t.Errorf("growth limit ignored: caller has %d instrs", len(caller.Code))
	}
	if callsIn(caller, "mid") == 0 {
		t.Error("expected some call sites to survive the growth cap")
	}
}

// TestInlinedBehaviorUnchanged: aggressive inlining settings never
// change results on a branchy, recursive workload.
func TestInlinedBehaviorUnchanged(t *testing.T) {
	src := `
static int gcd(int a, int b) {
    while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
    }
    return a;
}
static int step_(int x) { return gcd(x * 12, 18) + 1; }
static int twice(int x) { return step_(step_(x)); }
int f(int x) { return twice(x) + step_(x); }
`
	want := runSrc(t, Options{}, src, "f", 35)
	for _, limits := range []Options{
		{Opt: true},
		{Opt: true, InlineLimit: 1},
		{Opt: true, InlineLimit: 4096, GrowthLimit: 1 << 16},
		{Opt: true, DisableCSE: true},
	} {
		if got := runSrc(t, limits, src, "f", 35); got != want {
			t.Errorf("options %+v: f(35) = %d, want %d", limits, got, want)
		}
	}
}
