package compile

import (
	"knit/internal/cmini"
	"knit/internal/obj"
)

// expr lowers e in value context, returning the register holding the
// value and the expression's type. Aggregate-typed expressions (arrays,
// structs) evaluate to their address.
func (fc *funcCompiler) expr(e cmini.Expr) (obj.Reg, cmini.Type, error) {
	switch e := e.(type) {
	case *cmini.IntLit:
		return fc.emitConst(e.Val), cmini.TypeInt, nil
	case *cmini.StrLit:
		idx := fc.internString(e.Val)
		r := fc.newReg()
		fc.emit(obj.Instr{Op: obj.OpAddrString, Dst: r, Imm: int64(idx), A: obj.NoReg, B: obj.NoReg})
		return r, &cmini.Pointer{Elem: cmini.TypeChar}, nil
	case *cmini.Ident:
		return fc.identValue(e)
	case *cmini.SizeofExpr:
		sz, err := typeSize(e.Type, fc.structs)
		if err != nil {
			return 0, nil, errf(e.Pos, "sizeof: %v", err)
		}
		return fc.emitConst(int64(sz)), cmini.TypeInt, nil
	case *cmini.Unary:
		return fc.unary(e)
	case *cmini.Binary:
		return fc.binary(e)
	case *cmini.Assign:
		return fc.assign(e)
	case *cmini.IncDec:
		return fc.incDec(e)
	case *cmini.Call:
		return fc.call(e)
	case *cmini.Index, *cmini.Member:
		addr, typ, err := fc.addr(e)
		if err != nil {
			return 0, nil, err
		}
		if isAggregate(typ) {
			return addr, typ, nil
		}
		r := fc.newReg()
		fc.emit(obj.Instr{Op: obj.OpLoad, Dst: r, A: addr, B: obj.NoReg})
		return r, typ, nil
	case *cmini.Cond:
		return fc.cond(e)
	}
	return 0, nil, errf(e.ExprPos(), "compile: unhandled expression")
}

// identValue lowers a name in value context.
func (fc *funcCompiler) identValue(e *cmini.Ident) (obj.Reg, cmini.Type, error) {
	if li := fc.lookupLocal(e.Name); li != nil {
		if li.inReg {
			return li.reg, li.typ, nil
		}
		addr := fc.emitAddrLocal(li.frameOff)
		if isAggregate(li.typ) {
			return addr, decay(li.typ), nil
		}
		r := fc.newReg()
		fc.emit(obj.Instr{Op: obj.OpLoad, Dst: r, A: addr, B: obj.NoReg})
		return r, li.typ, nil
	}
	gi, ok := fc.globals[e.Name]
	if !ok {
		return 0, nil, errf(e.Pos, "undeclared identifier %q", e.Name)
	}
	r := fc.newReg()
	fc.emit(obj.Instr{Op: obj.OpAddrGlobal, Dst: r, Sym: e.Name, A: obj.NoReg, B: obj.NoReg})
	if gi.isFunc {
		// A function name in value context is a function pointer.
		return r, cmini.TypeFn, nil
	}
	if isAggregate(gi.typ) {
		return r, decay(gi.typ), nil
	}
	v := fc.newReg()
	fc.emit(obj.Instr{Op: obj.OpLoad, Dst: v, A: r, B: obj.NoReg})
	return v, gi.typ, nil
}

// decay converts an array type to a pointer to its element; structs
// decay to pointers to themselves (their value is their address).
func decay(t cmini.Type) cmini.Type {
	switch t := t.(type) {
	case *cmini.Array:
		return &cmini.Pointer{Elem: t.Elem}
	case *cmini.StructType:
		return &cmini.Pointer{Elem: t}
	}
	return t
}

// addr lowers e in address context, returning a register holding the
// address and the type of the addressed object.
func (fc *funcCompiler) addr(e cmini.Expr) (obj.Reg, cmini.Type, error) {
	switch e := e.(type) {
	case *cmini.Ident:
		if li := fc.lookupLocal(e.Name); li != nil {
			if li.inReg {
				return 0, nil, errf(e.Pos, "internal: register local %q used in address context", e.Name)
			}
			return fc.emitAddrLocal(li.frameOff), li.typ, nil
		}
		gi, ok := fc.globals[e.Name]
		if !ok {
			return 0, nil, errf(e.Pos, "undeclared identifier %q", e.Name)
		}
		r := fc.newReg()
		fc.emit(obj.Instr{Op: obj.OpAddrGlobal, Dst: r, Sym: e.Name, A: obj.NoReg, B: obj.NoReg})
		typ := gi.typ
		if gi.isFunc {
			typ = cmini.TypeFn
		}
		return r, typ, nil
	case *cmini.Unary:
		if e.Op != cmini.STAR {
			return 0, nil, errf(e.Pos, "expression is not addressable")
		}
		v, t, err := fc.expr(e.X)
		if err != nil {
			return 0, nil, err
		}
		return v, pointee(t), nil
	case *cmini.Index:
		base, t, err := fc.expr(e.X) // pointers and decayed arrays
		if err != nil {
			return 0, nil, err
		}
		elem := pointee(t)
		esz, err := typeSize(elem, fc.structs)
		if err != nil {
			return 0, nil, errf(e.Pos, "index: %v", err)
		}
		idx, _, err := fc.expr(e.I)
		if err != nil {
			return 0, nil, err
		}
		off := idx
		if esz != 1 {
			szr := fc.emitConst(int64(esz))
			off = fc.newReg()
			fc.emit(obj.Instr{Op: obj.OpBin, Dst: off, A: idx, B: szr, Tok: int(cmini.STAR)})
		}
		sum := fc.newReg()
		fc.emit(obj.Instr{Op: obj.OpBin, Dst: sum, A: base, B: off, Tok: int(cmini.PLUS)})
		return sum, elem, nil
	case *cmini.Member:
		var base obj.Reg
		var baseType cmini.Type
		var err error
		if e.Arrow {
			base, baseType, err = fc.expr(e.X)
			if err != nil {
				return 0, nil, err
			}
			baseType = pointee(baseType)
		} else {
			if id, ok := e.X.(*cmini.Ident); ok {
				li := fc.lookupLocal(id.Name)
				if li != nil && li.inReg {
					return 0, nil, errf(e.Pos,
						"member access on non-struct value (type %s)", cmini.PrintType(li.typ))
				}
			}
			base, baseType, err = fc.addr(e.X)
			if err != nil {
				return 0, nil, err
			}
		}
		st, ok := baseType.(*cmini.StructType)
		if !ok {
			return 0, nil, errf(e.Pos, "member access on non-struct value (type %s)", cmini.PrintType(baseType))
		}
		l, ok := fc.structs[st.Name]
		if !ok {
			return 0, nil, errf(e.Pos, "unknown struct %q", st.Name)
		}
		off, ok := l.offset[e.Name]
		if !ok {
			return 0, nil, errf(e.Pos, "struct %s has no field %q", st.Name, e.Name)
		}
		addr := base
		if off != 0 {
			offr := fc.emitConst(int64(off))
			addr = fc.newReg()
			fc.emit(obj.Instr{Op: obj.OpBin, Dst: addr, A: base, B: offr, Tok: int(cmini.PLUS)})
		}
		return addr, l.ftype[e.Name], nil
	}
	return 0, nil, errf(e.ExprPos(), "expression is not addressable")
}

// pointee returns the element type of a pointer, or int for untyped
// pointer-ish values (fn, int used as address).
func pointee(t cmini.Type) cmini.Type {
	if p, ok := t.(*cmini.Pointer); ok {
		return p.Elem
	}
	return cmini.TypeInt
}

func isPointer(t cmini.Type) bool {
	_, ok := t.(*cmini.Pointer)
	return ok
}

func (fc *funcCompiler) unary(e *cmini.Unary) (obj.Reg, cmini.Type, error) {
	switch e.Op {
	case cmini.AMP:
		a, t, err := fc.addr(e.X)
		if err != nil {
			return 0, nil, err
		}
		if t == cmini.TypeFn || isFuncType(t) {
			return a, cmini.TypeFn, nil
		}
		return a, &cmini.Pointer{Elem: t}, nil
	case cmini.STAR:
		v, t, err := fc.expr(e.X)
		if err != nil {
			return 0, nil, err
		}
		elem := pointee(t)
		if isAggregate(elem) {
			return v, decay(elem), nil
		}
		r := fc.newReg()
		fc.emit(obj.Instr{Op: obj.OpLoad, Dst: r, A: v, B: obj.NoReg})
		return r, elem, nil
	}
	v, _, err := fc.expr(e.X)
	if err != nil {
		return 0, nil, err
	}
	r := fc.newReg()
	fc.emit(obj.Instr{Op: obj.OpUn, Dst: r, A: v, Tok: int(e.Op), B: obj.NoReg})
	return r, cmini.TypeInt, nil
}

func isFuncType(t cmini.Type) bool {
	p, ok := t.(*cmini.Prim)
	return ok && p.Kind == cmini.Fn
}

func (fc *funcCompiler) binary(e *cmini.Binary) (obj.Reg, cmini.Type, error) {
	if e.Op == cmini.LAND || e.Op == cmini.LOR {
		return fc.shortCircuit(e)
	}
	a, ta, err := fc.expr(e.X)
	if err != nil {
		return 0, nil, err
	}
	b, tb, err := fc.expr(e.Y)
	if err != nil {
		return 0, nil, err
	}
	resType := cmini.Type(cmini.TypeInt)
	// Pointer arithmetic: p + i and p - i scale i by the element size;
	// p - q yields the element count between them.
	if e.Op == cmini.PLUS || e.Op == cmini.MINUS {
		switch {
		case isPointer(ta) && !isPointer(tb):
			b = fc.scale(b, ta, e)
			resType = ta
		case isPointer(tb) && !isPointer(ta) && e.Op == cmini.PLUS:
			a = fc.scale(a, tb, e)
			resType = tb
		case isPointer(ta) && isPointer(tb) && e.Op == cmini.MINUS:
			diff := fc.newReg()
			fc.emit(obj.Instr{Op: obj.OpBin, Dst: diff, A: a, B: b, Tok: int(cmini.MINUS)})
			esz, err := typeSize(pointee(ta), fc.structs)
			if err != nil || esz == 0 {
				esz = 1
			}
			if esz == 1 {
				return diff, cmini.TypeInt, nil
			}
			szr := fc.emitConst(int64(esz))
			q := fc.newReg()
			fc.emit(obj.Instr{Op: obj.OpBin, Dst: q, A: diff, B: szr, Tok: int(cmini.SLASH)})
			return q, cmini.TypeInt, nil
		}
	}
	r := fc.newReg()
	fc.emit(obj.Instr{Op: obj.OpBin, Dst: r, A: a, B: b, Tok: int(e.Op)})
	return r, resType, nil
}

// scale multiplies an index register by the pointee size of ptrType.
func (fc *funcCompiler) scale(idx obj.Reg, ptrType cmini.Type, e *cmini.Binary) obj.Reg {
	esz, err := typeSize(pointee(ptrType), fc.structs)
	if err != nil || esz <= 1 {
		return idx
	}
	szr := fc.emitConst(int64(esz))
	r := fc.newReg()
	fc.emit(obj.Instr{Op: obj.OpBin, Dst: r, A: idx, B: szr, Tok: int(cmini.STAR)})
	return r
}

func (fc *funcCompiler) shortCircuit(e *cmini.Binary) (obj.Reg, cmini.Type, error) {
	res := fc.newReg()
	a, _, err := fc.expr(e.X)
	if err != nil {
		return 0, nil, err
	}
	// res = (a != 0)
	zero := fc.emitConst(0)
	fc.emit(obj.Instr{Op: obj.OpBin, Dst: res, A: a, B: zero, Tok: int(cmini.NE)})
	br := fc.emit(obj.Instr{Op: obj.OpBranch, A: res})
	evalY := fc.here()
	b, _, err := fc.expr(e.Y)
	if err != nil {
		return 0, nil, err
	}
	zero2 := fc.emitConst(0)
	fc.emit(obj.Instr{Op: obj.OpBin, Dst: res, A: b, B: zero2, Tok: int(cmini.NE)})
	end := fc.here()
	if e.Op == cmini.LAND {
		// a true -> evaluate Y; a false -> res already 0.
		fc.fn.Code[br].Targets[0] = evalY
		fc.fn.Code[br].Targets[1] = end
	} else {
		// a true -> res already 1; a false -> evaluate Y.
		fc.fn.Code[br].Targets[0] = end
		fc.fn.Code[br].Targets[1] = evalY
	}
	return res, cmini.TypeInt, nil
}

func (fc *funcCompiler) cond(e *cmini.Cond) (obj.Reg, cmini.Type, error) {
	c, _, err := fc.expr(e.C)
	if err != nil {
		return 0, nil, err
	}
	res := fc.newReg()
	br := fc.emit(obj.Instr{Op: obj.OpBranch, A: c})
	fc.fn.Code[br].Targets[0] = fc.here()
	a, ta, err := fc.expr(e.Then)
	if err != nil {
		return 0, nil, err
	}
	fc.emit(obj.Instr{Op: obj.OpMov, Dst: res, A: a, B: obj.NoReg})
	jEnd := fc.emit(obj.Instr{Op: obj.OpJump})
	fc.fn.Code[br].Targets[1] = fc.here()
	b, _, err := fc.expr(e.Else)
	if err != nil {
		return 0, nil, err
	}
	fc.emit(obj.Instr{Op: obj.OpMov, Dst: res, A: b, B: obj.NoReg})
	fc.fn.Code[jEnd].Targets[0] = fc.here()
	return res, ta, nil
}

func (fc *funcCompiler) assign(e *cmini.Assign) (obj.Reg, cmini.Type, error) {
	// Fast path: assignment to a register-resident local.
	if id, ok := e.LHS.(*cmini.Ident); ok {
		if li := fc.lookupLocal(id.Name); li != nil && li.inReg {
			val, err := fc.assignValue(e, func() (obj.Reg, error) { return li.reg, nil })
			if err != nil {
				return 0, nil, err
			}
			fc.emit(obj.Instr{Op: obj.OpMov, Dst: li.reg, A: val, B: obj.NoReg})
			return li.reg, li.typ, nil
		}
	}
	addr, typ, err := fc.addr(e.LHS)
	if err != nil {
		return 0, nil, err
	}
	if isAggregate(typ) {
		return 0, nil, errf(e.Pos, "cannot assign to aggregate value")
	}
	val, err := fc.assignValue(e, func() (obj.Reg, error) {
		r := fc.newReg()
		fc.emit(obj.Instr{Op: obj.OpLoad, Dst: r, A: addr, B: obj.NoReg})
		return r, nil
	})
	if err != nil {
		return 0, nil, err
	}
	fc.emit(obj.Instr{Op: obj.OpStore, A: addr, B: val})
	return val, typ, nil
}

// assignValue computes the right-hand value of an assignment; for
// compound assignments it combines the current value (obtained from cur)
// with the RHS.
func (fc *funcCompiler) assignValue(e *cmini.Assign, cur func() (obj.Reg, error)) (obj.Reg, error) {
	rhs, _, err := fc.expr(e.RHS)
	if err != nil {
		return 0, err
	}
	if e.Op == cmini.ASSIGN {
		return rhs, nil
	}
	binOp, ok := compoundOps[e.Op]
	if !ok {
		return 0, errf(e.Pos, "unknown compound assignment %v", e.Op)
	}
	c, err := cur()
	if err != nil {
		return 0, err
	}
	r := fc.newReg()
	fc.emit(obj.Instr{Op: obj.OpBin, Dst: r, A: c, B: rhs, Tok: int(binOp)})
	return r, nil
}

func (fc *funcCompiler) incDec(e *cmini.IncDec) (obj.Reg, cmini.Type, error) {
	op := cmini.PLUS
	if e.Op == cmini.DEC {
		op = cmini.MINUS
	}
	if id, ok := e.X.(*cmini.Ident); ok {
		if li := fc.lookupLocal(id.Name); li != nil && li.inReg {
			old := fc.newReg()
			fc.emit(obj.Instr{Op: obj.OpMov, Dst: old, A: li.reg, B: obj.NoReg})
			step := fc.stepFor(li.typ)
			one := fc.emitConst(step)
			fc.emit(obj.Instr{Op: obj.OpBin, Dst: li.reg, A: li.reg, B: one, Tok: int(op)})
			return old, li.typ, nil
		}
	}
	addr, typ, err := fc.addr(e.X)
	if err != nil {
		return 0, nil, err
	}
	old := fc.newReg()
	fc.emit(obj.Instr{Op: obj.OpLoad, Dst: old, A: addr, B: obj.NoReg})
	one := fc.emitConst(fc.stepFor(typ))
	upd := fc.newReg()
	fc.emit(obj.Instr{Op: obj.OpBin, Dst: upd, A: old, B: one, Tok: int(op)})
	fc.emit(obj.Instr{Op: obj.OpStore, A: addr, B: upd})
	return old, typ, nil
}

// stepFor returns the ++/-- step: the pointee size for pointers, 1
// otherwise.
func (fc *funcCompiler) stepFor(t cmini.Type) int64 {
	if isPointer(t) {
		if sz, err := typeSize(pointee(t), fc.structs); err == nil && sz > 1 {
			return int64(sz)
		}
	}
	return 1
}

var compoundOps = map[cmini.Tok]cmini.Tok{
	cmini.ADDEQ: cmini.PLUS, cmini.SUBEQ: cmini.MINUS, cmini.MULEQ: cmini.STAR,
	cmini.DIVEQ: cmini.SLASH, cmini.MODEQ: cmini.PERCENT, cmini.ANDEQ: cmini.AMP,
	cmini.OREQ: cmini.PIPE, cmini.XOREQ: cmini.CARET, cmini.SHLEQ: cmini.SHL,
	cmini.SHREQ: cmini.SHR,
}

func (fc *funcCompiler) call(e *cmini.Call) (obj.Reg, cmini.Type, error) {
	var args []obj.Reg
	for _, a := range e.Args {
		r, _, err := fc.expr(a)
		if err != nil {
			return 0, nil, err
		}
		args = append(args, r)
	}
	// Direct call: callee is an identifier naming a function (not
	// shadowed by a local variable).
	if id, ok := e.Fun.(*cmini.Ident); ok && fc.lookupLocal(id.Name) == nil {
		gi, ok := fc.globals[id.Name]
		if ok && gi.isFunc {
			if len(gi.params) != len(args) {
				return 0, nil, errf(e.Pos, "call to %s with %d args, want %d",
					id.Name, len(args), len(gi.params))
			}
			dst := fc.newReg()
			fc.emit(obj.Instr{Op: obj.OpCall, Dst: dst, Sym: id.Name, Args: args, A: obj.NoReg, B: obj.NoReg})
			res := gi.typ
			if res == nil {
				res = cmini.TypeVoid
			}
			return dst, res, nil
		}
		if !ok {
			return 0, nil, errf(e.Pos, "call to undeclared function %q", id.Name)
		}
	}
	// Indirect call through a computed function value.
	fv, _, err := fc.expr(e.Fun)
	if err != nil {
		return 0, nil, err
	}
	dst := fc.newReg()
	fc.emit(obj.Instr{Op: obj.OpCallInd, Dst: dst, A: fv, Args: args, B: obj.NoReg})
	return dst, cmini.TypeInt, nil
}
