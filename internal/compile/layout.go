// Package compile translates cmini source files into object files
// (internal/obj). It plays the role gcc plays in the real Knit toolchain:
// it compiles one translation unit at a time, and — crucially for the
// paper's flattening experiment — its inliner and optimizer only see one
// file at a time, so cross-component optimization requires the Knit
// flattener to merge sources first.
package compile

import (
	"fmt"

	"knit/internal/cmini"
)

// CompileError is a semantic error with a source position.
type CompileError struct {
	Pos cmini.Pos
	Msg string
}

func (e *CompileError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos cmini.Pos, format string, args ...any) error {
	return &CompileError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// structLayout is the word layout of a named struct.
type structLayout struct {
	name   string
	size   int
	offset map[string]int
	ftype  map[string]cmini.Type
}

// layouts computes struct layouts for a file. Fields are laid out in
// declaration order, one word per scalar, nested arrays inline. Struct
// fields of struct type are inlined; self-reference must be by pointer.
func layouts(f *cmini.File) (map[string]*structLayout, error) {
	table := map[string]*structLayout{}
	// Two passes so order of struct declarations does not matter for
	// pointer fields; direct struct-typed fields require the referent to
	// be declared first.
	for _, d := range f.Decls {
		if sd, ok := d.(*cmini.StructDecl); ok {
			if _, dup := table[sd.Name]; dup {
				return nil, errf(sd.Pos, "struct %q redefined", sd.Name)
			}
			table[sd.Name] = &structLayout{name: sd.Name}
		}
	}
	for _, d := range f.Decls {
		sd, ok := d.(*cmini.StructDecl)
		if !ok {
			continue
		}
		l := table[sd.Name]
		l.offset = map[string]int{}
		l.ftype = map[string]cmini.Type{}
		off := 0
		for _, fld := range sd.Fields {
			sz, err := typeSize(fld.Type, table)
			if err != nil {
				return nil, errf(sd.Pos, "struct %s field %s: %v", sd.Name, fld.Name, err)
			}
			l.offset[fld.Name] = off
			l.ftype[fld.Name] = fld.Type
			off += sz
		}
		l.size = off
	}
	return table, nil
}

// typeSize returns the size of t in words.
func typeSize(t cmini.Type, structs map[string]*structLayout) (int, error) {
	switch t := t.(type) {
	case *cmini.Prim:
		if t.Kind == cmini.Void {
			return 0, fmt.Errorf("void has no size")
		}
		return 1, nil
	case *cmini.Pointer:
		return 1, nil
	case *cmini.Array:
		es, err := typeSize(t.Elem, structs)
		if err != nil {
			return 0, err
		}
		return es * t.Len, nil
	case *cmini.StructType:
		l, ok := structs[t.Name]
		if !ok {
			return 0, fmt.Errorf("unknown struct %q", t.Name)
		}
		if l.offset == nil {
			// Not laid out yet: forward or self reference by value.
			return 0, fmt.Errorf("struct %q used by value before it is defined (use a pointer)", t.Name)
		}
		return l.size, nil
	}
	return 0, fmt.Errorf("unsized type")
}

// isAggregate reports whether t is a struct or array (a value that lives
// in memory and is manipulated by address).
func isAggregate(t cmini.Type) bool {
	switch t.(type) {
	case *cmini.Array, *cmini.StructType:
		return true
	}
	return false
}
