package compile

import (
	"fmt"

	"knit/internal/cmini"
	"knit/internal/obj"
)

// optimize runs the intra-file optimizer over every function: inlining
// (within this object file only), then local value numbering (constant
// folding + common subexpression elimination) and dead-code elimination.
func optimize(f *obj.File, opts Options) {
	inlineLimit := opts.InlineLimit
	if inlineLimit == 0 {
		inlineLimit = DefaultInlineLimit
	}
	growthLimit := opts.GrowthLimit
	if growthLimit == 0 {
		growthLimit = DefaultGrowthLimit
	}
	pass := func() {
		for _, fn := range f.Funcs {
			if !opts.DisableCSE {
				valueNumber(fn)
			}
			deadCode(fn)
		}
	}
	pass()
	if inlineLimit > 0 {
		inlineFile(f, inlineLimit, growthLimit)
	}
	pass()
}

// blockLeaders returns a sorted set of basic-block leader indexes.
func blockLeaders(fn *obj.Func) []bool {
	leader := make([]bool, len(fn.Code)+1)
	leader[0] = true
	for i, in := range fn.Code {
		switch in.Op {
		case obj.OpJump:
			leader[in.Targets[0]] = true
			leader[i+1] = true
		case obj.OpBranch:
			leader[in.Targets[0]] = true
			leader[in.Targets[1]] = true
			leader[i+1] = true
		case obj.OpRet:
			leader[i+1] = true
		}
	}
	return leader
}

// vnKey identifies a pure computation for value numbering.
type vnKey struct {
	op   obj.Op
	tok  int
	a, b int // value numbers of operands
	imm  int64
	sym  string
}

// vnState is the value-numbering state at a program point.
type vnState struct {
	regVN    map[obj.Reg]int
	constVal map[int]int64
	hasConst map[int]bool
	exprVN   map[vnKey]int
	vnReg    map[int]obj.Reg
	loadVNs  map[vnKey]bool
}

func newVNState() *vnState {
	return &vnState{
		regVN:    map[obj.Reg]int{},
		constVal: map[int]int64{},
		hasConst: map[int]bool{},
		exprVN:   map[vnKey]int{},
		vnReg:    map[int]obj.Reg{},
		loadVNs:  map[vnKey]bool{},
	}
}

func (s *vnState) clone() *vnState {
	cp := newVNState()
	for k, v := range s.regVN {
		cp.regVN[k] = v
	}
	for k, v := range s.constVal {
		cp.constVal[k] = v
	}
	for k, v := range s.hasConst {
		cp.hasConst[k] = v
	}
	for k, v := range s.exprVN {
		cp.exprVN[k] = v
	}
	for k, v := range s.vnReg {
		cp.vnReg[k] = v
	}
	for k, v := range s.loadVNs {
		cp.loadVNs[k] = v
	}
	return cp
}

// valueNumber performs extended-basic-block value numbering: it folds
// constant expressions (using the machine's exact ALU semantics) and
// replaces recomputed pure expressions — including redundant loads — with
// the register that already holds the value. State flows into a block
// that has exactly one (earlier) predecessor, so chains of conditionals
// (a flattened component pipeline) share subexpressions across blocks.
// This is the pass that, after flattening + inlining, "eliminates
// redundant reads via common subexpression elimination" (§6).
func valueNumber(fn *obj.Func) {
	leaders := blockLeaders(fn)
	// Identify blocks and predecessor counts.
	type block struct {
		start, end int // [start, end)
	}
	var blocks []block
	blockAt := make([]int, len(fn.Code)+1)
	for i := 0; i < len(fn.Code); {
		j := i + 1
		for j < len(fn.Code) && !leaders[j] {
			j++
		}
		for k := i; k < j; k++ {
			blockAt[k] = len(blocks)
		}
		blocks = append(blocks, block{start: i, end: j})
		i = j
	}
	// preds[b] = (count, soleEarlierPred or -1).
	predCount := make([]int, len(blocks))
	solePred := make([]int, len(blocks))
	for b := range solePred {
		solePred[b] = -1
	}
	addEdge := func(from, toInstr int) {
		if toInstr >= len(fn.Code) {
			return
		}
		tb := blockAt[toInstr]
		predCount[tb]++
		solePred[tb] = from
	}
	for b, blk := range blocks {
		last := &fn.Code[blk.end-1]
		switch last.Op {
		case obj.OpJump:
			addEdge(b, last.Targets[0])
		case obj.OpBranch:
			addEdge(b, last.Targets[0])
			addEdge(b, last.Targets[1])
		case obj.OpRet:
		default:
			addEdge(b, blk.end)
		}
	}
	endState := make([]*vnState, len(blocks))

	var nextVN int
	var st *vnState
	vnOf := func(r obj.Reg) int {
		if vn, ok := st.regVN[r]; ok {
			return vn
		}
		nextVN++
		st.regVN[r] = nextVN
		return nextVN
	}
	newVN := func() int { nextVN++; return nextVN }
	killLoads := func() {
		for k := range st.loadVNs {
			delete(st.exprVN, k)
			delete(st.loadVNs, k)
		}
	}
	setDst := func(dst obj.Reg, key vnKey, isLoad bool) {
		vn := newVN()
		st.regVN[dst] = vn
		st.exprVN[key] = vn
		st.vnReg[vn] = dst
		if isLoad {
			st.loadVNs[key] = true
		}
	}
	setConst := func(dst obj.Reg, v int64) {
		vn := newVN()
		st.regVN[dst] = vn
		st.constVal[vn] = v
		st.hasConst[vn] = true
		st.exprVN[vnKey{op: obj.OpConst, imm: v}] = vn
		st.vnReg[vn] = dst
	}
	// reuse replaces the instruction with a Mov from the register that
	// already holds the value, if one is live; it reports success.
	reuse := func(in *obj.Instr, key vnKey) bool {
		if vn, ok := st.exprVN[key]; ok {
			if r, live := st.vnReg[vn]; live && r != in.Dst {
				*in = obj.Instr{Op: obj.OpMov, Dst: in.Dst, A: r, B: obj.NoReg}
				st.regVN[in.Dst] = vn
				return true
			}
		}
		return false
	}

	for b := range blocks {
		if predCount[b] == 1 && solePred[b] >= 0 && solePred[b] < b && endState[solePred[b]] != nil {
			st = endState[solePred[b]].clone()
		} else {
			st = newVNState()
		}
		for i := blocks[b].start; i < blocks[b].end; i++ {
			in := &fn.Code[i]
			switch in.Op {
			case obj.OpConst:
				key := vnKey{op: obj.OpConst, imm: in.Imm}
				if reuse(in, key) {
					continue
				}
				setConst(in.Dst, in.Imm)
			case obj.OpMov:
				vn := vnOf(in.A)
				st.regVN[in.Dst] = vn
			case obj.OpBin:
				va, vb := vnOf(in.A), vnOf(in.B)
				if st.hasConst[va] && st.hasConst[vb] {
					if v, err := obj.EvalBin(cmini.Tok(in.Tok), st.constVal[va], st.constVal[vb]); err == nil {
						*in = obj.Instr{Op: obj.OpConst, Dst: in.Dst, Imm: v, A: obj.NoReg, B: obj.NoReg}
						setConst(in.Dst, v)
						continue
					}
				}
				key := vnKey{op: obj.OpBin, tok: in.Tok, a: va, b: vb}
				if reuse(in, key) {
					continue
				}
				setDst(in.Dst, key, false)
			case obj.OpUn:
				va := vnOf(in.A)
				if st.hasConst[va] {
					if v, err := obj.EvalUn(cmini.Tok(in.Tok), st.constVal[va]); err == nil {
						*in = obj.Instr{Op: obj.OpConst, Dst: in.Dst, Imm: v, A: obj.NoReg, B: obj.NoReg}
						setConst(in.Dst, v)
						continue
					}
				}
				key := vnKey{op: obj.OpUn, tok: in.Tok, a: va}
				if reuse(in, key) {
					continue
				}
				setDst(in.Dst, key, false)
			case obj.OpAddrGlobal:
				key := vnKey{op: obj.OpAddrGlobal, sym: in.Sym}
				if reuse(in, key) {
					continue
				}
				setDst(in.Dst, key, false)
			case obj.OpAddrLocal, obj.OpAddrString:
				key := vnKey{op: in.Op, imm: in.Imm}
				if reuse(in, key) {
					continue
				}
				setDst(in.Dst, key, false)
			case obj.OpLoad:
				va := vnOf(in.A)
				key := vnKey{op: obj.OpLoad, a: va}
				if reuse(in, key) {
					continue
				}
				setDst(in.Dst, key, true)
			case obj.OpStore:
				// Conservative: any store may alias any load.
				killLoads()
			case obj.OpCall, obj.OpCallInd:
				killLoads()
				st.regVN[in.Dst] = newVN()
			}
			// A register redefined above loses stale reverse mappings:
			// vnReg holds the *latest* register for each vn; if Dst was the
			// holder of an older vn, drop that mapping.
			if defines(in.Op) {
				for vn, r := range st.vnReg {
					if r == in.Dst && st.regVN[in.Dst] != vn {
						delete(st.vnReg, vn)
					}
				}
			}
		}
		endState[b] = st
	}
}

// defines reports whether op writes its Dst register.
func defines(op obj.Op) bool {
	switch op {
	case obj.OpConst, obj.OpMov, obj.OpBin, obj.OpUn, obj.OpLoad,
		obj.OpAddrGlobal, obj.OpAddrLocal, obj.OpAddrString,
		obj.OpCall, obj.OpCallInd:
		return true
	}
	return false
}

// uses returns the registers read by an instruction.
func uses(in *obj.Instr) []obj.Reg {
	var out []obj.Reg
	add := func(r obj.Reg) {
		if r != obj.NoReg {
			out = append(out, r)
		}
	}
	switch in.Op {
	case obj.OpMov, obj.OpUn, obj.OpLoad:
		add(in.A)
	case obj.OpBin:
		add(in.A)
		add(in.B)
	case obj.OpStore:
		add(in.A)
		add(in.B)
	case obj.OpBranch:
		add(in.A)
	case obj.OpRet:
		if in.HasVal {
			add(in.A)
		}
	case obj.OpCall:
	case obj.OpCallInd:
		add(in.A)
	}
	if in.Op == obj.OpCall || in.Op == obj.OpCallInd {
		out = append(out, in.Args...)
	}
	return out
}

// pure reports whether an instruction can be deleted if its result is
// unused.
func pure(op obj.Op) bool {
	switch op {
	case obj.OpConst, obj.OpMov, obj.OpBin, obj.OpUn, obj.OpLoad,
		obj.OpAddrGlobal, obj.OpAddrLocal, obj.OpAddrString:
		return true
	}
	return false
}

// deadCode removes pure instructions whose results are never read
// (flow-insensitively) and compacts the code, fixing jump targets.
func deadCode(fn *obj.Func) {
	for {
		reach := reachable(fn)
		read := make([]bool, fn.NRegs)
		for i := range fn.Code {
			if !reach[i] {
				continue
			}
			for _, r := range uses(&fn.Code[i]) {
				read[r] = true
			}
		}
		// Parameters are implicitly live on entry (their registers are
		// the calling convention), but an unread parameter costs nothing.
		keep := make([]bool, len(fn.Code))
		removed := false
		for i := range fn.Code {
			in := &fn.Code[i]
			if !reach[i] {
				removed = true
				continue
			}
			if pure(in.Op) && !read[in.Dst] {
				removed = true
				continue
			}
			if in.Op == obj.OpMov && in.A == in.Dst {
				removed = true
				continue
			}
			keep[i] = true
		}
		if !removed {
			return
		}
		compact(fn, keep)
	}
}

// reachable marks instructions reachable from entry by control flow.
func reachable(fn *obj.Func) []bool {
	seen := make([]bool, len(fn.Code))
	var stack []int
	if len(fn.Code) > 0 {
		stack = append(stack, 0)
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i < len(fn.Code) && !seen[i] {
			seen[i] = true
			in := &fn.Code[i]
			switch in.Op {
			case obj.OpJump:
				i = in.Targets[0]
			case obj.OpBranch:
				stack = append(stack, in.Targets[1])
				i = in.Targets[0]
			case obj.OpRet:
				i = len(fn.Code)
			default:
				i++
			}
		}
	}
	return seen
}

// compact rebuilds fn.Code keeping only instructions marked keep,
// remapping jump and branch targets. Targets that point at removed
// instructions move to the next kept instruction.
func compact(fn *obj.Func, keep []bool) {
	newIndex := make([]int, len(fn.Code)+1)
	n := 0
	for i := range fn.Code {
		newIndex[i] = n
		if keep[i] {
			n++
		}
	}
	newIndex[len(fn.Code)] = n
	out := make([]obj.Instr, 0, n)
	for i := range fn.Code {
		if !keep[i] {
			continue
		}
		in := fn.Code[i]
		switch in.Op {
		case obj.OpJump:
			in.Targets[0] = newIndex[in.Targets[0]]
		case obj.OpBranch:
			in.Targets[0] = newIndex[in.Targets[0]]
			in.Targets[1] = newIndex[in.Targets[1]]
		}
		out = append(out, in)
	}
	fn.Code = out
}

// Disasm renders a function's IR for debugging and tests.
func Disasm(fn *obj.Func) string {
	s := fmt.Sprintf("func %s (args=%d regs=%d frame=%d)\n",
		fn.Name, fn.NArgs, fn.NRegs, fn.Frame)
	for i, in := range fn.Code {
		s += fmt.Sprintf("%4d  %-8s", i, in.Op)
		switch in.Op {
		case obj.OpConst:
			s += fmt.Sprintf("r%d = %d", in.Dst, in.Imm)
		case obj.OpMov:
			s += fmt.Sprintf("r%d = r%d", in.Dst, in.A)
		case obj.OpBin:
			s += fmt.Sprintf("r%d = r%d %s r%d", in.Dst, in.A, cmini.Tok(in.Tok), in.B)
		case obj.OpUn:
			s += fmt.Sprintf("r%d = %s r%d", in.Dst, cmini.Tok(in.Tok), in.A)
		case obj.OpLoad:
			s += fmt.Sprintf("r%d = [r%d]", in.Dst, in.A)
		case obj.OpStore:
			s += fmt.Sprintf("[r%d] = r%d", in.A, in.B)
		case obj.OpAddrGlobal:
			s += fmt.Sprintf("r%d = &%s", in.Dst, in.Sym)
		case obj.OpAddrLocal:
			s += fmt.Sprintf("r%d = fp+%d", in.Dst, in.Imm)
		case obj.OpAddrString:
			s += fmt.Sprintf("r%d = &str[%d]", in.Dst, in.Imm)
		case obj.OpCall:
			s += fmt.Sprintf("r%d = %s%v", in.Dst, in.Sym, in.Args)
		case obj.OpCallInd:
			s += fmt.Sprintf("r%d = (*r%d)%v", in.Dst, in.A, in.Args)
		case obj.OpJump:
			s += fmt.Sprintf("-> %d", in.Targets[0])
		case obj.OpBranch:
			s += fmt.Sprintf("r%d ? %d : %d", in.A, in.Targets[0], in.Targets[1])
		case obj.OpRet:
			if in.HasVal {
				s += fmt.Sprintf("r%d", in.A)
			}
		}
		s += "\n"
	}
	return s
}
