package compile

import (
	"strings"
	"testing"

	"knit/internal/cmini"
	"knit/internal/machine"
	"knit/internal/obj"
)

// runSrc compiles src and executes entry(args...), returning the result.
func runSrc(t *testing.T, opts Options, src, entry string, args ...int64) int64 {
	t.Helper()
	m := machineFor(t, opts, src)
	v, err := m.Run(entry, args...)
	if err != nil {
		t.Fatalf("run %s: %v", entry, err)
	}
	return v
}

func machineFor(t *testing.T, opts Options, src string) *machine.M {
	t.Helper()
	f, err := cmini.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	o, err := Compile(f, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := machine.Load(o, machine.DefaultCosts())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return machine.New(img)
}

// both runs the program unoptimized and optimized and requires identical
// results — the optimizer's core correctness property.
func both(t *testing.T, src, entry string, want int64, args ...int64) {
	t.Helper()
	if got := runSrc(t, Options{}, src, entry, args...); got != want {
		t.Errorf("%s unoptimized = %d, want %d", entry, got, want)
	}
	if got := runSrc(t, Options{Opt: true}, src, entry, args...); got != want {
		t.Errorf("%s optimized = %d, want %d", entry, got, want)
	}
}

func TestArithmetic(t *testing.T) {
	both(t, `int f(int a, int b) { return (a + b) * 3 - a / b % 5; }`, "f", (7+3)*3-7/3%5, 7, 3)
	both(t, `int f(int a) { return a << 3 >> 1; }`, "f", 5<<3>>1, 5)
	both(t, `int f(int a, int b) { return (a & b) | (a ^ b); }`, "f", (12&10)|(12^10), 12, 10)
	both(t, `int f(int a) { return -a + ~a + !a; }`, "f", -9+^int64(9)+0, 9)
}

func TestComparisonsAndLogic(t *testing.T) {
	both(t, `int f(int a, int b) { return (a < b) + (a <= b)*10 + (a > b)*100 + (a >= b)*1000 + (a == b)*10000 + (a != b)*100000; }`,
		"f", 1+10+0+0+0+100000, 3, 5)
	both(t, `int f(int a, int b) { return a && b; }`, "f", 1, 2, 3)
	both(t, `int f(int a, int b) { return a || b; }`, "f", 1, 0, 3)
	both(t, `int f(int a, int b) { return a && b; }`, "f", 0, 0, 3)
}

func TestShortCircuitSideEffects(t *testing.T) {
	src := `
static int hits = 0;
int bump(void) { hits = hits + 1; return 1; }
int f(int a) {
    int r = a && bump();
    return hits * 10 + r;
}
int g(int a) {
    int r = a || bump();
    return hits * 10 + r;
}
`
	both(t, src, "f", 0, 0)  // a=0: bump not called, r=0
	both(t, src, "f", 11, 5) // a=5: bump called once, r=1
	both(t, src, "g", 1, 7)  // a!=0: bump not called, r=1
	both(t, src, "g", 11, 0) // a=0: bump called, r=1
}

func TestControlFlow(t *testing.T) {
	src := `
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps++;
    }
    return steps;
}
int sum_odd(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) { continue; }
        if (i > 20) { break; }
        s += i;
    }
    return s;
}
`
	both(t, src, "collatz", 14, 11)
	both(t, src, "sum_odd", 1+3+5+7+9+11+13+15+17+19, 100)
}

func TestRecursion(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
`
	both(t, src, "fib", 55, 10)
}

func TestPointers(t *testing.T) {
	src := `
int deref(int *p) { return *p; }
int f(void) {
    int x = 41;
    int *p = &x;
    *p = *p + 1;
    return deref(p);
}
int swap_test(void) {
    int a = 1;
    int b = 2;
    int *pa = &a;
    int *pb = &b;
    int tmp = *pa;
    *pa = *pb;
    *pb = tmp;
    return a * 10 + b;
}
`
	both(t, src, "f", 42)
	both(t, src, "swap_test", 21)
}

func TestArraysAndStrings(t *testing.T) {
	src := `
static int tab[8];
int f(int n) {
    for (int i = 0; i < 8; i++) { tab[i] = i * i; }
    return tab[n];
}
int local_arr(void) {
    int a[4];
    a[0] = 3;
    a[1] = a[0] * 2;
    int *p = a;
    p[2] = p[1] + 1;
    return a[0] + a[1] + a[2];
}
int strlen_(char *s) {
    int n = 0;
    while (s[n] != 0) { n++; }
    return n;
}
int str_test(void) { return strlen_("hello"); }
`
	both(t, src, "f", 49, 7)
	both(t, src, "local_arr", 3+6+7)
	both(t, src, "str_test", 5)
}

func TestStructs(t *testing.T) {
	src := `
struct point { int x; int y; };
struct rect { struct point a; struct point b; };
int area(struct rect *r) {
    return (r->b.x - r->a.x) * (r->b.y - r->a.y);
}
int f(void) {
    struct rect r;
    r.a.x = 1;
    r.a.y = 2;
    r.b.x = 5;
    r.b.y = 10;
    return area(&r);
}
int arr_of_structs(void) {
    struct point ps[3];
    for (int i = 0; i < 3; i++) {
        ps[i].x = i;
        ps[i].y = i * 10;
    }
    return ps[2].x + ps[2].y + ps[1].y;
}
`
	both(t, src, "f", 32)
	both(t, src, "arr_of_structs", 2+20+10)
}

func TestSizeofAndPointerArith(t *testing.T) {
	src := `
struct pkt { int a; int b; int c; };
int f(void) { return sizeof(struct pkt) + sizeof(int); }
int parith(void) {
    struct pkt arr[4];
    struct pkt *p = arr;
    struct pkt *q = p + 2;
    q->a = 7;
    return arr[2].a + (q - p);
}
`
	both(t, src, "f", 4)
	both(t, src, "parith", 9)
}

func TestGlobalsAndInit(t *testing.T) {
	src := `
int counter = 5;
static char *name = "knit";
int f(void) {
    counter += 2;
    return counter;
}
int first_char(void) { return name[0]; }
`
	both(t, src, "f", 7)
	both(t, src, "first_char", int64('k'))
}

func TestFunctionPointers(t *testing.T) {
	src := `
int double_(int x) { return x * 2; }
int triple(int x) { return x * 3; }
static fn op;
int apply(int x) { return op(x); }
int f(int which, int x) {
    if (which) { op = &double_; } else { op = &triple; }
    return apply(x);
}
`
	both(t, src, "f", 14, 1, 7)
	both(t, src, "f", 21, 0, 7)
}

func TestIncDecSemantics(t *testing.T) {
	src := `
int f(void) {
    int i = 5;
    int a = i++;
    int b = i--;
    return a * 100 + b * 10 + i;
}
int ptr_inc(void) {
    int arr[3];
    arr[0] = 1; arr[1] = 2; arr[2] = 3;
    int *p = arr;
    p++;
    return *p;
}
`
	both(t, src, "f", 5*100+6*10+5)
	both(t, src, "ptr_inc", 2)
}

func TestTernary(t *testing.T) {
	both(t, `int f(int a, int b) { return a > b ? a : b; }`, "f", 9, 4, 9)
	both(t, `int f(int a) { return a ? 1 : a ? 2 : 3; }`, "f", 3, 0)
}

func TestShadowing(t *testing.T) {
	src := `
int x = 100;
int f(void) {
    int r = x;
    {
        int x = 5;
        r += x;
    }
    r += x;
    return r;
}
`
	both(t, src, "f", 205)
}

func TestVoidFunction(t *testing.T) {
	src := `
static int state = 0;
void set(int v) { state = v; }
int f(void) {
    set(33);
    return state;
}
`
	both(t, src, "f", 33)
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"undeclared", `int f(void) { return nope; }`, "undeclared"},
		{"undeclared call", `int f(void) { return nope(); }`, "undeclared"},
		{"redefined func", "int f(void) { return 1; }\nint f(void) { return 2; }", "redefined"},
		{"redefined global", "int x;\nint x;", "redefined"},
		{"arity", "int g(int a) { return a; }\nint f(void) { return g(1, 2); }", "2 args, want 1"},
		{"bad member", "struct s { int a; };\nint f(struct s *p) { return p->b; }", "no field"},
		{"member of int", "int f(int x) { return x.a; }", "non-struct"},
		{"nonconst global init", "int g(void) { return 1; }\nint x = g();", "constant"},
		{"struct param", "struct s { int a; };\nint f(struct s v) { return 0; }", "by pointer"},
		{"unknown struct", "int f(struct nope *p) { return p->x; }", "unknown struct"},
		{"void size", "int f(void) { return sizeof(void); }", "void has no size"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := cmini.Parse("t.c", c.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Compile(f, Options{})
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestBreakContinueOutsideLoop(t *testing.T) {
	for _, src := range []string{
		`int f(void) { break; return 0; }`,
		`int f(void) { continue; return 0; }`,
	} {
		f, err := cmini.Parse("t.c", src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Compile(f, Options{}); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestExternLinkViaAppend(t *testing.T) {
	// Two translation units; importer calls an extern defined elsewhere.
	srcA := `
extern int provide(int x);
int use(int x) { return provide(x) + 1; }
`
	srcB := `int provide(int x) { return x * 10; }`
	fa, err := cmini.Parse("a.c", srcA)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := cmini.Parse("b.c", srcB)
	if err != nil {
		t.Fatal(err)
	}
	oa, err := Compile(fa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ob, err := Compile(fb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged := obj.NewFile("merged")
	obj.Append(merged, oa)
	obj.Append(merged, ob)
	img, err := machine.Load(merged, machine.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(img)
	v, err := m.Run("use", 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 41 {
		t.Errorf("use(4) = %d, want 41", v)
	}
}

func TestStaticCollisionAcrossFiles(t *testing.T) {
	// Both files define a static "state"; after merging they must remain
	// distinct.
	srcA := `
static int state = 1;
int get_a(void) { return state; }
int set_a(int v) { state = v; return 0; }
`
	srcB := `
static int state = 2;
int get_b(void) { return state; }
`
	fa, _ := cmini.Parse("a.c", srcA)
	fb, _ := cmini.Parse("b.c", srcB)
	oa, err := Compile(fa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ob, err := Compile(fb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged := obj.NewFile("merged")
	obj.Append(merged, oa)
	obj.Append(merged, ob)
	img, err := machine.Load(merged, machine.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(img)
	if _, err := m.Run("set_a", 99); err != nil {
		t.Fatal(err)
	}
	b, err := m.Run("get_b")
	if err != nil {
		t.Fatal(err)
	}
	if b != 2 {
		t.Errorf("b's static corrupted by a's write: got %d, want 2", b)
	}
	a, err := m.Run("get_a")
	if err != nil {
		t.Fatal(err)
	}
	if a != 99 {
		t.Errorf("get_a = %d, want 99", a)
	}
}

func TestConsoleBuiltin(t *testing.T) {
	src := `
extern int __console_out(int ch);
int puts_(char *s) {
    int i = 0;
    while (s[i] != 0) {
        __console_out(s[i]);
        i++;
    }
    return i;
}
int hello(void) { return puts_("hi there"); }
`
	m := machineFor(t, Options{Opt: true}, src)
	c := machine.InstallConsole(m)
	n, err := m.Run("hello")
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 || c.String() != "hi there" {
		t.Errorf("hello = %d, console %q", n, c.String())
	}
}
