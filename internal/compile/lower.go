package compile

import (
	"fmt"

	"knit/internal/cmini"
	"knit/internal/obj"
)

// Options controls compilation.
type Options struct {
	// Opt enables the optimizer: constant folding, local common
	// subexpression elimination, dead-code elimination, and intra-file
	// inlining. This is the "-O" the paper's flattening experiment relies
	// on: optimization never crosses file boundaries, so merging unit
	// sources into one file is what unlocks cross-component inlining.
	Opt bool
	// InlineLimit is the maximum callee size, in IR instructions, that
	// the inliner will inline. Zero means the default; negative disables
	// inlining entirely.
	InlineLimit int
	// GrowthLimit caps a function's size, in IR instructions, after
	// inlining. Zero means the default.
	GrowthLimit int
	// DisableCSE turns off value numbering (constant folding + common
	// subexpression elimination), for ablation studies.
	DisableCSE bool
}

// Default optimizer limits.
const (
	DefaultInlineLimit = 96
	DefaultGrowthLimit = 4096
)

// Key returns a canonical fingerprint of the options that affect
// generated code, for content-addressed build caches: two Options with
// the same Key compile any given file to the same object. Unset limits
// normalize to their defaults, and options the optimizer ignores when
// Opt is off do not contribute.
func (o Options) Key() string {
	if !o.Opt {
		return "O0"
	}
	il := o.InlineLimit
	if il == 0 {
		il = DefaultInlineLimit
	}
	gl := o.GrowthLimit
	if gl == 0 {
		gl = DefaultGrowthLimit
	}
	if il < 0 {
		il, gl = -1, 0 // every negative limit means "inlining off"
	}
	return fmt.Sprintf("O1 inline=%d growth=%d cse=%t", il, gl, !o.DisableCSE)
}

// Compile translates one cmini file into an object file.
func Compile(f *cmini.File, opts Options) (*obj.File, error) {
	structs, err := layouts(f)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		file:    f,
		out:     obj.NewFile(f.Name),
		structs: structs,
		globals: map[string]*globalInfo{},
	}
	if err := c.collectGlobals(); err != nil {
		return nil, err
	}
	order := 0
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *cmini.VarDecl:
			if err := c.emitVar(d); err != nil {
				return nil, err
			}
		case *cmini.FuncDecl:
			if err := c.emitFunc(d, order); err != nil {
				return nil, err
			}
			if d.Body != nil {
				order++
			}
		}
	}
	if opts.Opt {
		optimize(c.out, opts)
	}
	return c.out, nil
}

// globalInfo describes one file-scope name.
type globalInfo struct {
	isFunc bool
	typ    cmini.Type // variable type, or function result type
	params []cmini.Param
	extern bool
	static bool
}

type compiler struct {
	file    *cmini.File
	out     *obj.File
	structs map[string]*structLayout
	globals map[string]*globalInfo
}

func (c *compiler) collectGlobals() error {
	for _, d := range c.file.Decls {
		switch d := d.(type) {
		case *cmini.VarDecl:
			if prev, ok := c.globals[d.Name]; ok {
				if !prev.extern && !d.Extern {
					return errf(d.Pos, "global %q redefined", d.Name)
				}
			}
			c.globals[d.Name] = &globalInfo{typ: d.Type, extern: d.Extern, static: d.Static}
		case *cmini.FuncDecl:
			if prev, ok := c.globals[d.Name]; ok {
				if prev.isFunc && !prev.extern && d.Body != nil {
					return errf(d.Pos, "function %q redefined", d.Name)
				}
				if !prev.isFunc {
					return errf(d.Pos, "%q declared as both variable and function", d.Name)
				}
			}
			gi := &globalInfo{isFunc: true, typ: d.Result, params: d.Params,
				extern: d.Body == nil, static: d.Static}
			if old, ok := c.globals[d.Name]; !ok || old.extern {
				c.globals[d.Name] = gi
			}
		}
	}
	return nil
}

func (c *compiler) emitVar(d *cmini.VarDecl) error {
	if d.Extern {
		c.out.AddSym(&obj.Symbol{Name: d.Name, Kind: obj.SymData})
		return nil
	}
	size, err := typeSize(d.Type, c.structs)
	if err != nil {
		return errf(d.Pos, "variable %s: %v", d.Name, err)
	}
	data := &obj.Data{Name: d.Name, Size: size, Local: d.Static}
	if d.Init != nil {
		init, err := c.constInit(d.Init)
		if err != nil {
			return err
		}
		data.Init = []obj.DataInit{init}
	}
	c.out.Datas[d.Name] = data
	c.out.AddSym(&obj.Symbol{Name: d.Name, Kind: obj.SymData, Defined: true, Local: d.Static})
	return nil
}

// constInit evaluates a global initializer: a constant integer
// expression, a string literal, or &function / &global.
func (c *compiler) constInit(e cmini.Expr) (obj.DataInit, error) {
	switch e := e.(type) {
	case *cmini.StrLit:
		idx := c.internString(e.Val)
		return obj.DataInit{Kind: obj.InitString, Index: idx}, nil
	case *cmini.Unary:
		if e.Op == cmini.AMP {
			if id, ok := e.X.(*cmini.Ident); ok {
				return obj.DataInit{Kind: obj.InitSym, Sym: id.Name}, nil
			}
		}
	case *cmini.Ident:
		if gi, ok := c.globals[e.Name]; ok && gi.isFunc {
			return obj.DataInit{Kind: obj.InitSym, Sym: e.Name}, nil
		}
	}
	v, err := c.constEval(e)
	if err != nil {
		return obj.DataInit{}, err
	}
	return obj.DataInit{Kind: obj.InitConst, Val: v}, nil
}

func (c *compiler) constEval(e cmini.Expr) (int64, error) {
	switch e := e.(type) {
	case *cmini.IntLit:
		return e.Val, nil
	case *cmini.Unary:
		v, err := c.constEval(e.X)
		if err != nil {
			return 0, err
		}
		return obj.EvalUn(e.Op, v)
	case *cmini.Binary:
		a, err := c.constEval(e.X)
		if err != nil {
			return 0, err
		}
		b, err := c.constEval(e.Y)
		if err != nil {
			return 0, err
		}
		return obj.EvalBin(e.Op, a, b)
	case *cmini.SizeofExpr:
		sz, err := typeSize(e.Type, c.structs)
		if err != nil {
			return 0, errf(e.Pos, "sizeof: %v", err)
		}
		return int64(sz), nil
	}
	return 0, errf(e.ExprPos(), "global initializer must be a constant expression")
}

func (c *compiler) internString(s string) int {
	for i, have := range c.out.Strings {
		if have == s {
			return i
		}
	}
	c.out.Strings = append(c.out.Strings, s)
	return len(c.out.Strings) - 1
}

func (c *compiler) emitFunc(d *cmini.FuncDecl, order int) error {
	if d.Body == nil {
		c.out.AddSym(&obj.Symbol{Name: d.Name, Kind: obj.SymFunc, Local: d.Static})
		return nil
	}
	fc := &funcCompiler{
		compiler: c,
		decl:     d,
		fn:       &obj.Func{Name: d.Name, NArgs: len(d.Params), Order: order},
		locals:   map[string][]*localInfo{},
	}
	addrTaken := map[string]bool{}
	findAddrTaken(d.Body, addrTaken)
	fc.addrTaken = addrTaken
	for _, p := range d.Params {
		if isAggregate(p.Type) {
			return errf(d.Pos, "parameter %q: aggregates must be passed by pointer", p.Name)
		}
		reg := fc.newReg()
		fc.pushLocal(p.Name, &localInfo{inReg: !addrTaken[p.Name], reg: reg, typ: p.Type})
	}
	// Address-taken parameters are spilled to the frame on entry.
	for i, p := range d.Params {
		if addrTaken[p.Name] {
			li := fc.lookupLocal(p.Name)
			li.frameOff = fc.fn.Frame
			fc.fn.Frame++
			addr := fc.emitAddrLocal(li.frameOff)
			fc.emit(obj.Instr{Op: obj.OpStore, A: addr, B: obj.Reg(i)})
		}
	}
	if err := fc.block(d.Body, true); err != nil {
		return err
	}
	// Implicit return for functions that fall off the end.
	fc.emit(obj.Instr{Op: obj.OpRet, A: obj.NoReg})
	c.out.Funcs[d.Name] = fc.fn
	c.out.AddSym(&obj.Symbol{Name: d.Name, Kind: obj.SymFunc, Defined: true, Local: d.Static})
	return nil
}

// findAddrTaken records local names whose address is taken with &.
func findAddrTaken(b *cmini.Block, out map[string]bool) {
	var visitExpr func(e cmini.Expr)
	visitExpr = func(e cmini.Expr) {
		switch e := e.(type) {
		case *cmini.Unary:
			if e.Op == cmini.AMP {
				if id, ok := e.X.(*cmini.Ident); ok {
					out[id.Name] = true
				}
			}
			visitExpr(e.X)
		case *cmini.Binary:
			visitExpr(e.X)
			visitExpr(e.Y)
		case *cmini.Assign:
			visitExpr(e.LHS)
			visitExpr(e.RHS)
		case *cmini.IncDec:
			visitExpr(e.X)
		case *cmini.Call:
			visitExpr(e.Fun)
			for _, a := range e.Args {
				visitExpr(a)
			}
		case *cmini.Index:
			visitExpr(e.X)
			visitExpr(e.I)
		case *cmini.Member:
			visitExpr(e.X)
		case *cmini.Cond:
			visitExpr(e.C)
			visitExpr(e.Then)
			visitExpr(e.Else)
		}
	}
	var visitStmt func(s cmini.Stmt)
	visitStmt = func(s cmini.Stmt) {
		switch s := s.(type) {
		case *cmini.Block:
			for _, inner := range s.Stmts {
				visitStmt(inner)
			}
		case *cmini.DeclStmt:
			if s.Init != nil {
				visitExpr(s.Init)
			}
		case *cmini.ExprStmt:
			visitExpr(s.X)
		case *cmini.IfStmt:
			visitExpr(s.Cond)
			visitStmt(s.Then)
			if s.Else != nil {
				visitStmt(s.Else)
			}
		case *cmini.WhileStmt:
			visitExpr(s.Cond)
			visitStmt(s.Body)
		case *cmini.ForStmt:
			if s.Init != nil {
				visitStmt(s.Init)
			}
			if s.Cond != nil {
				visitExpr(s.Cond)
			}
			if s.Post != nil {
				visitExpr(s.Post)
			}
			visitStmt(s.Body)
		case *cmini.ReturnStmt:
			if s.X != nil {
				visitExpr(s.X)
			}
		}
	}
	visitStmt(b)
}

// localInfo is a local variable's storage.
type localInfo struct {
	inReg    bool
	reg      obj.Reg
	frameOff int
	typ      cmini.Type
}

// funcCompiler lowers one function body.
type funcCompiler struct {
	*compiler
	decl      *cmini.FuncDecl
	fn        *obj.Func
	locals    map[string][]*localInfo // name -> shadow stack
	scopes    [][]string              // names declared per open scope
	addrTaken map[string]bool
	breaks    [][]int // patch lists for break targets per loop
	conts     [][]int
}

func (fc *funcCompiler) newReg() obj.Reg {
	r := obj.Reg(fc.fn.NRegs)
	fc.fn.NRegs++
	return r
}

func (fc *funcCompiler) emit(in obj.Instr) int {
	fc.fn.Code = append(fc.fn.Code, in)
	return len(fc.fn.Code) - 1
}

func (fc *funcCompiler) here() int { return len(fc.fn.Code) }

func (fc *funcCompiler) emitConst(v int64) obj.Reg {
	r := fc.newReg()
	fc.emit(obj.Instr{Op: obj.OpConst, Dst: r, Imm: v, A: obj.NoReg, B: obj.NoReg})
	return r
}

func (fc *funcCompiler) emitAddrLocal(off int) obj.Reg {
	r := fc.newReg()
	fc.emit(obj.Instr{Op: obj.OpAddrLocal, Dst: r, Imm: int64(off), A: obj.NoReg, B: obj.NoReg})
	return r
}

func (fc *funcCompiler) pushLocal(name string, li *localInfo) {
	fc.locals[name] = append(fc.locals[name], li)
	if len(fc.scopes) > 0 {
		top := len(fc.scopes) - 1
		fc.scopes[top] = append(fc.scopes[top], name)
	}
}

func (fc *funcCompiler) lookupLocal(name string) *localInfo {
	stack := fc.locals[name]
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

func (fc *funcCompiler) openScope() { fc.scopes = append(fc.scopes, nil) }

func (fc *funcCompiler) closeScope() {
	top := len(fc.scopes) - 1
	for _, name := range fc.scopes[top] {
		stack := fc.locals[name]
		fc.locals[name] = stack[:len(stack)-1]
	}
	fc.scopes = fc.scopes[:top]
}

func (fc *funcCompiler) block(b *cmini.Block, topLevel bool) error {
	fc.openScope()
	defer fc.closeScope()
	for _, s := range b.Stmts {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *funcCompiler) stmt(s cmini.Stmt) error {
	switch s := s.(type) {
	case *cmini.Block:
		return fc.block(s, false)
	case *cmini.DeclStmt:
		return fc.declStmt(s)
	case *cmini.ExprStmt:
		_, _, err := fc.expr(s.X)
		return err
	case *cmini.IfStmt:
		return fc.ifStmt(s)
	case *cmini.WhileStmt:
		return fc.whileStmt(s)
	case *cmini.ForStmt:
		return fc.forStmt(s)
	case *cmini.ReturnStmt:
		if s.X == nil {
			fc.emit(obj.Instr{Op: obj.OpRet, A: obj.NoReg})
			return nil
		}
		r, _, err := fc.expr(s.X)
		if err != nil {
			return err
		}
		fc.emit(obj.Instr{Op: obj.OpRet, A: r, HasVal: true})
		return nil
	case *cmini.BreakStmt:
		if len(fc.breaks) == 0 {
			return errf(s.Pos, "break outside loop")
		}
		j := fc.emit(obj.Instr{Op: obj.OpJump})
		top := len(fc.breaks) - 1
		fc.breaks[top] = append(fc.breaks[top], j)
		return nil
	case *cmini.ContinueStmt:
		if len(fc.conts) == 0 {
			return errf(s.Pos, "continue outside loop")
		}
		j := fc.emit(obj.Instr{Op: obj.OpJump})
		top := len(fc.conts) - 1
		fc.conts[top] = append(fc.conts[top], j)
		return nil
	}
	return fmt.Errorf("compile: unhandled statement %T", s)
}

func (fc *funcCompiler) declStmt(s *cmini.DeclStmt) error {
	size, err := typeSize(s.Type, fc.structs)
	if err != nil {
		return errf(s.Pos, "local %s: %v", s.Name, err)
	}
	li := &localInfo{typ: s.Type}
	if isAggregate(s.Type) || fc.addrTaken[s.Name] {
		li.frameOff = fc.fn.Frame
		fc.fn.Frame += size
	} else {
		li.inReg = true
		li.reg = fc.newReg()
	}
	// Initializer is evaluated before the name becomes visible.
	var initReg obj.Reg = obj.NoReg
	if s.Init != nil {
		if isAggregate(s.Type) {
			return errf(s.Pos, "local aggregate %q cannot have an initializer", s.Name)
		}
		r, _, err := fc.expr(s.Init)
		if err != nil {
			return err
		}
		initReg = r
	}
	fc.pushLocal(s.Name, li)
	if initReg != obj.NoReg {
		if li.inReg {
			fc.emit(obj.Instr{Op: obj.OpMov, Dst: li.reg, A: initReg, B: obj.NoReg})
		} else {
			addr := fc.emitAddrLocal(li.frameOff)
			fc.emit(obj.Instr{Op: obj.OpStore, A: addr, B: initReg})
		}
	}
	return nil
}

func (fc *funcCompiler) ifStmt(s *cmini.IfStmt) error {
	cond, _, err := fc.expr(s.Cond)
	if err != nil {
		return err
	}
	br := fc.emit(obj.Instr{Op: obj.OpBranch, A: cond})
	fc.fn.Code[br].Targets[0] = fc.here()
	if err := fc.block(s.Then, false); err != nil {
		return err
	}
	if s.Else == nil {
		fc.fn.Code[br].Targets[1] = fc.here()
		return nil
	}
	jEnd := fc.emit(obj.Instr{Op: obj.OpJump})
	fc.fn.Code[br].Targets[1] = fc.here()
	if err := fc.stmt(s.Else); err != nil {
		return err
	}
	fc.fn.Code[jEnd].Targets[0] = fc.here()
	return nil
}

func (fc *funcCompiler) whileStmt(s *cmini.WhileStmt) error {
	head := fc.here()
	cond, _, err := fc.expr(s.Cond)
	if err != nil {
		return err
	}
	br := fc.emit(obj.Instr{Op: obj.OpBranch, A: cond})
	fc.fn.Code[br].Targets[0] = fc.here()
	fc.breaks = append(fc.breaks, nil)
	fc.conts = append(fc.conts, nil)
	if err := fc.block(s.Body, false); err != nil {
		return err
	}
	back := fc.emit(obj.Instr{Op: obj.OpJump})
	fc.fn.Code[back].Targets[0] = head
	end := fc.here()
	fc.fn.Code[br].Targets[1] = end
	fc.patchLoop(end, head)
	return nil
}

func (fc *funcCompiler) forStmt(s *cmini.ForStmt) error {
	fc.openScope()
	defer fc.closeScope()
	if s.Init != nil {
		if err := fc.stmt(s.Init); err != nil {
			return err
		}
	}
	head := fc.here()
	var br = -1
	if s.Cond != nil {
		cond, _, err := fc.expr(s.Cond)
		if err != nil {
			return err
		}
		br = fc.emit(obj.Instr{Op: obj.OpBranch, A: cond})
		fc.fn.Code[br].Targets[0] = fc.here()
	}
	fc.breaks = append(fc.breaks, nil)
	fc.conts = append(fc.conts, nil)
	if err := fc.block(s.Body, false); err != nil {
		return err
	}
	post := fc.here()
	if s.Post != nil {
		if _, _, err := fc.expr(s.Post); err != nil {
			return err
		}
	}
	back := fc.emit(obj.Instr{Op: obj.OpJump})
	fc.fn.Code[back].Targets[0] = head
	end := fc.here()
	if br >= 0 {
		fc.fn.Code[br].Targets[1] = end
	}
	fc.patchLoop(end, post)
	return nil
}

// patchLoop pops the innermost loop's break/continue patch lists,
// pointing breaks at breakTo and continues at contTo.
func (fc *funcCompiler) patchLoop(breakTo, contTo int) {
	top := len(fc.breaks) - 1
	for _, j := range fc.breaks[top] {
		fc.fn.Code[j].Targets[0] = breakTo
	}
	for _, j := range fc.conts[top] {
		fc.fn.Code[j].Targets[0] = contTo
	}
	fc.breaks = fc.breaks[:top]
	fc.conts = fc.conts[:top]
}
