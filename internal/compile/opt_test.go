package compile

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"knit/internal/cmini"
	"knit/internal/machine"
)

func compileSrc(t *testing.T, opts Options, src string) *machine.M {
	t.Helper()
	return machineFor(t, opts, src)
}

func TestConstantFolding(t *testing.T) {
	src := `int f(void) { return 2 * 3 + 4 * 5 - 1; }`
	f, _ := cmini.Parse("t.c", src)
	o, err := Compile(f, Options{Opt: true})
	if err != nil {
		t.Fatal(err)
	}
	fn := o.Funcs["f"]
	// After folding + DCE: one OpConst and one OpRet.
	if len(fn.Code) > 2 {
		t.Errorf("folded function has %d instrs, want <= 2:\n%s", len(fn.Code), Disasm(fn))
	}
}

func TestCSEEliminatesRedundantLoads(t *testing.T) {
	src := `
static int g = 7;
int f(int a) {
    return g + g + g * a;
}
`
	f, _ := cmini.Parse("t.c", src)
	o, err := Compile(f, Options{Opt: true})
	if err != nil {
		t.Fatal(err)
	}
	fn := o.Funcs["f"]
	loads := 0
	for _, in := range fn.Code {
		if in.Op.String() == "load" {
			loads++
		}
	}
	if loads != 1 {
		t.Errorf("got %d loads of g, want 1:\n%s", loads, Disasm(fn))
	}
}

func TestCSEInvalidatedByStore(t *testing.T) {
	src := `
static int g = 1;
int f(void) {
    int a = g;
    g = 5;
    int b = g;
    return a * 10 + b;
}
`
	both(t, src, "f", 15)
}

func TestCSEInvalidatedByCall(t *testing.T) {
	src := `
static int g = 1;
static int huge_pad(int x) {
    // Large enough that the inliner refuses, so the call survives and
    // must invalidate the cached load of g.
    int s = 0;
    s += x; s += x; s += x; s += x; s += x; s += x; s += x; s += x;
    s += x; s += x; s += x; s += x; s += x; s += x; s += x; s += x;
    s += x; s += x; s += x; s += x; s += x; s += x; s += x; s += x;
    s += x; s += x; s += x; s += x; s += x; s += x; s += x; s += x;
    s += x; s += x; s += x; s += x; s += x; s += x; s += x; s += x;
    s += x; s += x; s += x; s += x; s += x; s += x; s += x; s += x;
    g = g + 1;
    return s;
}
int f(void) {
    int a = g;
    huge_pad(1);
    int b = g;
    return a * 10 + b;
}
`
	both(t, src, "f", 12)
}

func TestInliningRemovesCalls(t *testing.T) {
	src := `
static int add1(int x) { return x + 1; }
static int add2(int x) { return add1(add1(x)); }
int f(int x) { return add2(add2(x)); }
`
	m := compileSrc(t, Options{Opt: true}, src)
	v, err := m.Run("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	if v != 14 {
		t.Fatalf("f(10) = %d, want 14", v)
	}
	if m.Calls != 0 {
		t.Errorf("optimized run executed %d calls, want 0 (all inlined)", m.Calls)
	}

	m2 := compileSrc(t, Options{}, src)
	if _, err := m2.Run("f", 10); err != nil {
		t.Fatal(err)
	}
	if m2.Calls == 0 {
		t.Error("unoptimized run should execute calls")
	}
	if m2.Cycles <= m.Cycles {
		t.Errorf("unoptimized (%d cycles) should be slower than optimized (%d)", m2.Cycles, m.Cycles)
	}
}

func TestInliningSkipsRecursion(t *testing.T) {
	src := `
int fact(int n) {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
`
	m := compileSrc(t, Options{Opt: true}, src)
	v, err := m.Run("fact", 6)
	if err != nil {
		t.Fatal(err)
	}
	if v != 720 {
		t.Errorf("fact(6) = %d, want 720", v)
	}
}

func TestInliningExternStaysCall(t *testing.T) {
	// Calls to extern (imported) functions cannot be inlined: the
	// compiler only sees one translation unit — the property Knit's
	// flattening exploits.
	src := `
extern int imported(int x);
int f(int x) { return imported(x) + imported(x); }
`
	f, _ := cmini.Parse("t.c", src)
	o, err := Compile(f, Options{Opt: true})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	for _, in := range o.Funcs["f"].Code {
		if in.Sym == "imported" {
			calls++
		}
	}
	if calls != 2 {
		t.Errorf("got %d calls to imported, want 2", calls)
	}
}

func TestInlinedFramesAreDistinct(t *testing.T) {
	// Each inlined instance gets its own frame slots: arrays must not
	// overlap when a function is inlined twice.
	src := `
static int sumsq(int n) {
    int a[4];
    for (int i = 0; i < 4; i++) { a[i] = i * n; }
    int s = 0;
    for (int i = 0; i < 4; i++) { s += a[i]; }
    return s;
}
int f(void) { return sumsq(1) * 100 + sumsq(2); }
`
	both(t, src, "f", 600+12)
}

func TestOptimizedFewerCycles(t *testing.T) {
	src := `
static int g = 3;
static int mul(int a, int b) { return a * b; }
int work(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += mul(g, i) + mul(g, i);
    }
    return s;
}
`
	mo := compileSrc(t, Options{Opt: true}, src)
	vo, err := mo.Run("work", 50)
	if err != nil {
		t.Fatal(err)
	}
	mu := compileSrc(t, Options{}, src)
	vu, err := mu.Run("work", 50)
	if err != nil {
		t.Fatal(err)
	}
	if vo != vu {
		t.Fatalf("results differ: opt=%d unopt=%d", vo, vu)
	}
	if mo.Cycles >= mu.Cycles {
		t.Errorf("optimized %d cycles >= unoptimized %d", mo.Cycles, mu.Cycles)
	}
}

// TestQuickDifferential is the compiler's core property-based test:
// random expression programs produce identical results with and without
// the optimizer.
func TestQuickDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	cfg := &quick.Config{MaxCount: 300}
	fn := func() bool {
		e := genDiffExpr(r, 4)
		src := fmt.Sprintf(`
static int g1 = 13;
static int g2 = -7;
int helper(int x) { return x * 2 + 1; }
int f(int a, int b) { return %s; }
`, exprToSrc(e))
		f, err := cmini.Parse("t.c", src)
		if err != nil {
			t.Logf("parse failed: %v\n%s", err, src)
			return false
		}
		run := func(opt bool) (int64, error) {
			o, err := Compile(f, Options{Opt: opt})
			if err != nil {
				return 0, err
			}
			img, err := machine.Load(o, machine.DefaultCosts())
			if err != nil {
				return 0, err
			}
			m := machine.New(img)
			return m.Run("f", 5, -3)
		}
		v1, err1 := run(false)
		v2, err2 := run(true)
		if (err1 == nil) != (err2 == nil) {
			// Both must trap or both succeed (e.g. divide by zero).
			t.Logf("error mismatch: unopt=%v opt=%v\n%s", err1, err2, src)
			return false
		}
		if err1 != nil {
			return true
		}
		if v1 != v2 {
			t.Logf("value mismatch: unopt=%d opt=%d\n%s", v1, v2, src)
			return false
		}
		return true
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Error(err)
	}
}

func genDiffExpr(r *rand.Rand, depth int) string {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return fmt.Sprintf("%d", r.Intn(40)-20)
		case 1:
			return "a"
		case 2:
			return "b"
		case 3:
			return "g1"
		default:
			return "g2"
		}
	}
	ops := []string{"+", "-", "*", "/", "%", "<<", ">>", "<", ">", "==",
		"!=", "&", "|", "^", "&&", "||"}
	switch r.Intn(8) {
	case 0:
		return fmt.Sprintf("(-(%s))", genDiffExpr(r, depth-1))
	case 1:
		return fmt.Sprintf("(!(%s))", genDiffExpr(r, depth-1))
	case 2:
		return fmt.Sprintf("helper(%s)", genDiffExpr(r, depth-1))
	case 3:
		return fmt.Sprintf("(%s ? %s : %s)", genDiffExpr(r, depth-1),
			genDiffExpr(r, depth-1), genDiffExpr(r, depth-1))
	default:
		op := ops[r.Intn(len(ops))]
		return fmt.Sprintf("(%s %s %s)", genDiffExpr(r, depth-1), op,
			genDiffExpr(r, depth-1))
	}
}

func exprToSrc(s string) string { return s }
