package asm

import (
	"strings"
	"testing"

	"knit/internal/machine"
	"knit/internal/obj"
)

func run(t *testing.T, src, entry string, args ...int64) int64 {
	t.Helper()
	f, err := Parse("test.s", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	img, err := machine.Load(f, machine.DefaultCosts())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m := machine.New(img)
	v, err := m.Run(entry, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestAssembleAdd(t *testing.T) {
	src := `
# the classic
func add nargs=2 nregs=3
  bin r2, r0, +, r1
  ret r2
`
	if v := run(t, src, "add", 30, 12); v != 42 {
		t.Errorf("add = %d", v)
	}
}

func TestAssembleLoopWithLabels(t *testing.T) {
	src := `
func sum nargs=1 nregs=4
  const r1, 0          ; acc
  const r2, 1
loop:
  branch r0, body, done
body:
  bin r1, r1, +, r0
  bin r0, r0, -, r2
  jump loop
done:
  ret r1
`
	if v := run(t, src, "sum", 10); v != 55 {
		t.Errorf("sum(10) = %d", v)
	}
}

func TestAssembleDataStringsAndCalls(t *testing.T) {
	src := `
string "hey"
data counter size=2
  init 0 = 5
  init 1 = &helper

func helper nargs=1 nregs=2
  const r1, 3
  bin r1, r0, *, r1
  ret r1

func main_ nargs=0 nregs=4
  addrg r0, counter
  load r1, r0          ; 5
  call r2, helper, r1  ; 15
  load r3, r0          ; still 5
  bin r2, r2, +, r3    ; 20
  addrs r3, 0
  load r3, r3          ; 'h'
  bin r2, r2, +, r3
  ret r2
`
	if v := run(t, src, "main_"); v != 20+'h' {
		t.Errorf("main_ = %d, want %d", v, 20+'h')
	}
}

func TestAssembleIndirectCall(t *testing.T) {
	src := `
data fptr size=1
  init 0 = &target

func target nargs=1 nregs=2
  const r1, 100
  bin r1, r0, +, r1
  ret r1

func main_ nargs=0 nregs=3
  addrg r0, fptr
  load r0, r0
  const r1, 7
  callind r2, r0, r1
  ret r2
`
	if v := run(t, src, "main_"); v != 107 {
		t.Errorf("main_ = %d", v)
	}
}

func TestAssembleFrameLocals(t *testing.T) {
	src := `
func swapsum nargs=2 nregs=5 frame=2
  addrl r2, 0
  store r2, r0
  addrl r3, 1
  store r3, r1
  load r4, r2
  load r2, r3
  bin r4, r4, +, r2
  ret r4
`
	if v := run(t, src, "swapsum", 3, 4); v != 7 {
		t.Errorf("swapsum = %d", v)
	}
}

func TestAssembleLocalSymbols(t *testing.T) {
	f, err := Parse("t.s", `
data hidden size=1 local
func peek nargs=0 nregs=2 local
  const r1, 1
  ret r1
func visible nargs=0 nregs=2
  call r1, peek
  ret r1
`)
	if err != nil {
		t.Fatal(err)
	}
	if s := f.Sym("hidden"); s == nil || !s.Local {
		t.Error("hidden not marked local")
	}
	if s := f.Sym("peek"); s == nil || !s.Local {
		t.Error("peek not marked local")
	}
	if got := f.Exports(); len(got) != 1 || got[0] != "visible" {
		t.Errorf("exports = %v", got)
	}
}

func TestAssembleExterns(t *testing.T) {
	f, err := Parse("t.s", `
extern provide
func use nargs=0 nregs=2
  call r1, provide
  ret r1
`)
	if err != nil {
		t.Fatal(err)
	}
	imports := f.Imports()
	if len(imports) != 1 || imports[0] != "provide" {
		t.Errorf("imports = %v", imports)
	}
}

func TestImplicitReturnAppended(t *testing.T) {
	f, err := Parse("t.s", `
func nothing nargs=0 nregs=1
  const r0, 1
`)
	if err != nil {
		t.Fatal(err)
	}
	code := f.Funcs["nothing"].Code
	if code[len(code)-1].Op != obj.OpRet {
		t.Error("missing implicit ret")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"bad reg", "func f nargs=0 nregs=1\n  const rX, 1", "bad register"},
		{"reg range", "func f nargs=0 nregs=1\n  const r5, 1", "out of range"},
		{"unknown instr", "func f nargs=0 nregs=1\n  frobnicate r0", "unknown instruction"},
		{"undefined label", "func f nargs=0 nregs=1\n  jump nowhere", "undefined label"},
		{"label redef", "func f nargs=0 nregs=1\nl:\nl:\n  ret", "redefined"},
		{"instr outside func", "const r0, 1", "outside a function"},
		{"init outside data", "init 0 = 1", "outside a data block"},
		{"init out of range", "data d size=2\n  init 5 = 1", "bad init offset"},
		{"missing nregs", "func f nargs=0 frame=0 local", "needs nargs= and nregs="},
		{"args gt regs", "func f nargs=3 nregs=2", "more args than registers"},
		{"dup func", "func f nargs=0 nregs=1\n  ret\nfunc f nargs=0 nregs=1", "redefined"},
		{"dup data", "data d size=1\ndata d size=1", "redefined"},
		{"bad op", "func f nargs=0 nregs=2\n  bin r1, r0, @, r0", "unknown binary op"},
		{"bad string", `string hey`, "bad string literal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("t.s", c.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}
