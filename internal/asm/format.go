package asm

import (
	"fmt"
	"sort"
	"strings"

	"knit/internal/cmini"
	"knit/internal/obj"
)

// Format renders an object file as assembly source that Parse accepts,
// giving object files a textual on-disk form (so "object code" units can
// be distributed as .s files and re-linked by Knit, per the paper's
// claim that Knit works with object code).
func Format(f *obj.File) string {
	var b strings.Builder
	// Externs: undefined symbols.
	var externs []string
	for _, s := range f.Syms {
		if !s.Defined {
			externs = append(externs, s.Name)
		}
	}
	sort.Strings(externs)
	for _, name := range externs {
		fmt.Fprintf(&b, "extern %s\n", name)
	}
	for _, s := range f.Strings {
		fmt.Fprintf(&b, "string %q\n", s)
	}
	var datas []string
	for name := range f.Datas {
		datas = append(datas, name)
	}
	sort.Strings(datas)
	for _, name := range datas {
		d := f.Datas[name]
		fmt.Fprintf(&b, "data %s size=%d", d.Name, d.Size)
		if d.Local {
			b.WriteString(" local")
		}
		b.WriteString("\n")
		for _, init := range d.Init {
			switch init.Kind {
			case obj.InitConst:
				fmt.Fprintf(&b, "  init %d = %d\n", init.Offset, init.Val)
			case obj.InitSym:
				fmt.Fprintf(&b, "  init %d = &%s\n", init.Offset, init.Sym)
			case obj.InitString:
				fmt.Fprintf(&b, "  init %d = str %d\n", init.Offset, init.Index)
			}
		}
	}
	var funcs []string
	for name := range f.Funcs {
		funcs = append(funcs, name)
	}
	sort.Slice(funcs, func(i, j int) bool {
		a, bb := f.Funcs[funcs[i]], f.Funcs[funcs[j]]
		if a.Order != bb.Order {
			return a.Order < bb.Order
		}
		return a.Name < bb.Name
	})
	for _, name := range funcs {
		fn := f.Funcs[name]
		local := ""
		if s := f.Sym(name); s != nil && s.Local {
			local = " local"
		}
		fmt.Fprintf(&b, "\nfunc %s nargs=%d nregs=%d frame=%d%s\n",
			fn.Name, fn.NArgs, fn.NRegs, fn.Frame, local)
		// Labels for every jump/branch target.
		targets := map[int]bool{}
		for _, in := range fn.Code {
			switch in.Op {
			case obj.OpJump:
				targets[in.Targets[0]] = true
			case obj.OpBranch:
				targets[in.Targets[0]] = true
				targets[in.Targets[1]] = true
			}
		}
		label := func(i int) string { return fmt.Sprintf("L%d", i) }
		for i, in := range fn.Code {
			if targets[i] {
				fmt.Fprintf(&b, "%s:\n", label(i))
			}
			switch in.Op {
			case obj.OpConst:
				fmt.Fprintf(&b, "  const r%d, %d\n", in.Dst, in.Imm)
			case obj.OpMov:
				fmt.Fprintf(&b, "  mov r%d, r%d\n", in.Dst, in.A)
			case obj.OpBin:
				fmt.Fprintf(&b, "  bin r%d, r%d, %s, r%d\n", in.Dst, in.A, cmini.Tok(in.Tok), in.B)
			case obj.OpUn:
				fmt.Fprintf(&b, "  un r%d, %s, r%d\n", in.Dst, cmini.Tok(in.Tok), in.A)
			case obj.OpLoad:
				fmt.Fprintf(&b, "  load r%d, r%d\n", in.Dst, in.A)
			case obj.OpStore:
				fmt.Fprintf(&b, "  store r%d, r%d\n", in.A, in.B)
			case obj.OpAddrGlobal:
				fmt.Fprintf(&b, "  addrg r%d, %s\n", in.Dst, in.Sym)
			case obj.OpAddrLocal:
				fmt.Fprintf(&b, "  addrl r%d, %d\n", in.Dst, in.Imm)
			case obj.OpAddrString:
				fmt.Fprintf(&b, "  addrs r%d, %d\n", in.Dst, in.Imm)
			case obj.OpCall:
				fmt.Fprintf(&b, "  call r%d, %s%s\n", in.Dst, in.Sym, regList(in.Args))
			case obj.OpCallInd:
				fmt.Fprintf(&b, "  callind r%d, r%d%s\n", in.Dst, in.A, regList(in.Args))
			case obj.OpJump:
				fmt.Fprintf(&b, "  jump %s\n", label(in.Targets[0]))
			case obj.OpBranch:
				fmt.Fprintf(&b, "  branch r%d, %s, %s\n", in.A,
					label(in.Targets[0]), label(in.Targets[1]))
			case obj.OpRet:
				if in.HasVal {
					fmt.Fprintf(&b, "  ret r%d\n", in.A)
				} else {
					b.WriteString("  ret\n")
				}
			}
		}
		// A label may point one past the last instruction (loop exits).
		if targets[len(fn.Code)] {
			fmt.Fprintf(&b, "%s:\n", label(len(fn.Code)))
			b.WriteString("  ret\n")
		}
	}
	return b.String()
}

func regList(args []obj.Reg) string {
	var parts []string
	for _, r := range args {
		parts = append(parts, fmt.Sprintf("r%d", r))
	}
	if len(parts) == 0 {
		return ""
	}
	return ", " + strings.Join(parts, ", ")
}
