package asm

import (
	"strings"
	"testing"

	"knit/internal/cmini"
	"knit/internal/compile"
	"knit/internal/machine"
)

func TestFormatParseRoundTrip(t *testing.T) {
	src := `
string "x"
data tab size=3 local
  init 0 = 1
  init 2 = &f

func f nargs=1 nregs=3
  const r1, 2
L0:
  branch r0, L1, L2
L1:
  bin r0, r0, -, r1
  jump L0
L2:
  ret r0
`
	f1, err := Parse("a.s", src)
	if err != nil {
		t.Fatal(err)
	}
	out1 := Format(f1)
	f2, err := Parse("b.s", out1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out1)
	}
	out2 := Format(f2)
	if out1 != out2 {
		t.Errorf("format not idempotent:\n%s\nvs\n%s", out1, out2)
	}
}

// TestDisassembleCompiledCode compiles real cmini code, serializes it to
// assembly, reassembles it, and checks both programs compute the same
// results — object files have a faithful textual form.
func TestDisassembleCompiledCode(t *testing.T) {
	csrc := `
static int memo = 0;
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int work(int n) {
    memo = memo + n;
    int arr[4];
    for (int i = 0; i < 4; i++) { arr[i] = fib(i + n % 5); }
    int s = memo;
    for (int i = 0; i < 4; i++) { s += arr[i]; }
    return s;
}
`
	cf, err := cmini.Parse("w.c", csrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []bool{false, true} {
		o, err := compile.Compile(cf, compile.Options{Opt: opt})
		if err != nil {
			t.Fatal(err)
		}
		text := Format(o)
		o2, err := Parse("w.s", text)
		if err != nil {
			t.Fatalf("opt=%v reassemble: %v\n%s", opt, err, text)
		}
		img1, err := machine.Load(o, machine.DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		img2, err := machine.Load(o2, machine.DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int64{0, 3, 9, 17} {
			m1, m2 := machine.New(img1), machine.New(img2)
			v1, err1 := m1.Run("work", n)
			v2, err2 := m2.Run("work", n)
			if err1 != nil || err2 != nil {
				t.Fatalf("opt=%v run errors: %v / %v", opt, err1, err2)
			}
			if v1 != v2 {
				t.Errorf("opt=%v work(%d): original %d, reassembled %d", opt, n, v1, v2)
			}
		}
	}
}

func TestFormatLocalFuncAttribute(t *testing.T) {
	f, err := Parse("t.s", `
func hidden nargs=0 nregs=1 local
  ret r0
`)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	if !strings.Contains(out, "func hidden nargs=0 nregs=1 frame=0 local") {
		t.Errorf("local attribute lost:\n%s", out)
	}
}
