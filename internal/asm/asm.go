// Package asm implements an assembly language for the simulated
// machine's IR, so Knit units can be implemented in "assembly" as well
// as C (the paper: "Knit can actually work with C, assembly, and object
// code"). Assembly-backed units bypass the cmini compiler entirely;
// Knit renames their symbols at the object level, exactly the modified
// objcopy path the real implementation uses.
//
// Syntax (one directive or instruction per line; "#" starts a comment):
//
//	extern name              ; an undefined symbol (import)
//	string "text"            ; appends to the string table (index order)
//	data name size=N [local]
//	  init OFF = 42          ; constant word
//	  init OFF = &sym        ; address of a symbol
//	  init OFF = str K       ; address of string literal K
//	func name nargs=N nregs=N [frame=N] [local]
//	L1:                      ; label
//	  const r1, 42
//	  mov   r1, r2
//	  bin   r1, r2, +, r3    ; r1 = r2 + r3   (ops: + - * / % << >> & | ^ < > <= >= == !=)
//	  un    r1, -, r2        ; r1 = -r2       (ops: - ! ~)
//	  load  r1, r2           ; r1 = mem[r2]
//	  store r1, r2           ; mem[r1] = r2
//	  addrg r1, sym
//	  addrl r1, OFF
//	  addrs r1, K
//	  call  r1, sym, r2, r3  ; r1 = sym(r2, r3)
//	  callind r1, r2, r3     ; r1 = (*r2)(r3)
//	  jump  L1
//	  branch r1, L1, L2      ; if r1 != 0 goto L1 else L2
//	  ret   [r1]
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"knit/internal/cmini"
	"knit/internal/obj"
)

// Error is an assembly syntax error.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

// Parse assembles source into an object file.
func Parse(file, src string) (*obj.File, error) {
	p := &parser{file: file, out: obj.NewFile(file)}
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		line := raw
		if j := strings.Index(line, "#"); j >= 0 {
			line = line[:j]
		}
		if j := strings.Index(line, ";"); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(strings.ReplaceAll(line, "\t", " "))
		if line == "" {
			continue
		}
		if err := p.directive(line); err != nil {
			return nil, err
		}
	}
	if err := p.finishFunc(); err != nil {
		return nil, err
	}
	return p.out, nil
}

type pendingTarget struct {
	instr int
	slot  int
	label string
	line  int
}

type parser struct {
	file string
	line int
	out  *obj.File

	fn      *obj.Func
	fnLocal bool
	fnOrder int
	labels  map[string]int
	pending []pendingTarget
	curData *obj.Data
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{File: p.file, Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// finishFunc closes the open function, resolving label references.
func (p *parser) finishFunc() error {
	if p.fn == nil {
		return nil
	}
	for _, pt := range p.pending {
		idx, ok := p.labels[pt.label]
		if !ok {
			return &Error{File: p.file, Line: pt.line,
				Msg: fmt.Sprintf("undefined label %q in %s", pt.label, p.fn.Name)}
		}
		p.fn.Code[pt.instr].Targets[pt.slot] = idx
	}
	if len(p.fn.Code) == 0 || p.fn.Code[len(p.fn.Code)-1].Op != obj.OpRet {
		p.fn.Code = append(p.fn.Code, obj.Instr{Op: obj.OpRet, A: obj.NoReg})
	}
	p.fn.Order = p.fnOrder
	p.fnOrder++
	p.out.Funcs[p.fn.Name] = p.fn
	p.out.AddSym(&obj.Symbol{Name: p.fn.Name, Kind: obj.SymFunc, Defined: true, Local: p.fnLocal})
	p.fn = nil
	p.labels = nil
	p.pending = nil
	return nil
}

func (p *parser) directive(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "extern":
		if err := p.finishFunc(); err != nil {
			return err
		}
		p.curData = nil
		if len(fields) != 2 {
			return p.errf("extern wants a symbol name")
		}
		p.out.AddSym(&obj.Symbol{Name: fields[1], Kind: obj.SymFunc})
		return nil
	case "string":
		if err := p.finishFunc(); err != nil {
			return err
		}
		p.curData = nil
		q := strings.TrimSpace(strings.TrimPrefix(line, "string"))
		s, err := strconv.Unquote(q)
		if err != nil {
			return p.errf("bad string literal %s", q)
		}
		p.out.Strings = append(p.out.Strings, s)
		return nil
	case "data":
		if err := p.finishFunc(); err != nil {
			return err
		}
		return p.dataDirective(fields[1:])
	case "func":
		if err := p.finishFunc(); err != nil {
			return err
		}
		p.curData = nil
		return p.funcDirective(fields[1:])
	case "init":
		if p.curData == nil {
			return p.errf("init outside a data block")
		}
		return p.initDirective(line)
	}
	if p.fn == nil {
		return p.errf("instruction %q outside a function", fields[0])
	}
	if strings.HasSuffix(fields[0], ":") && len(fields) == 1 {
		label := strings.TrimSuffix(fields[0], ":")
		if _, dup := p.labels[label]; dup {
			return p.errf("label %q redefined", label)
		}
		p.labels[label] = len(p.fn.Code)
		return nil
	}
	return p.instruction(line)
}

func (p *parser) dataDirective(args []string) error {
	if len(args) < 2 {
		return p.errf("data wants: data name size=N [local]")
	}
	d := &obj.Data{Name: args[0]}
	for _, a := range args[1:] {
		switch {
		case strings.HasPrefix(a, "size="):
			n, err := strconv.Atoi(a[5:])
			if err != nil || n <= 0 {
				return p.errf("bad size %q", a)
			}
			d.Size = n
		case a == "local":
			d.Local = true
		default:
			return p.errf("unknown data attribute %q", a)
		}
	}
	if d.Size == 0 {
		return p.errf("data %q missing size", d.Name)
	}
	if _, dup := p.out.Datas[d.Name]; dup {
		return p.errf("data %q redefined", d.Name)
	}
	p.out.Datas[d.Name] = d
	p.out.AddSym(&obj.Symbol{Name: d.Name, Kind: obj.SymData, Defined: true, Local: d.Local})
	p.curData = d
	return nil
}

func (p *parser) initDirective(line string) error {
	// init OFF = 42 | &sym | str K
	rest := strings.TrimSpace(strings.TrimPrefix(line, "init"))
	parts := strings.SplitN(rest, "=", 2)
	if len(parts) != 2 {
		return p.errf("init wants: init OFF = value")
	}
	off, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil || off < 0 || off >= p.curData.Size {
		return p.errf("bad init offset %q for data %q (size %d)",
			strings.TrimSpace(parts[0]), p.curData.Name, p.curData.Size)
	}
	val := strings.TrimSpace(parts[1])
	switch {
	case strings.HasPrefix(val, "&"):
		p.curData.Init = append(p.curData.Init,
			obj.DataInit{Offset: off, Kind: obj.InitSym, Sym: val[1:]})
	case strings.HasPrefix(val, "str "):
		k, err := strconv.Atoi(strings.TrimSpace(val[4:]))
		if err != nil || k < 0 {
			return p.errf("bad string index %q", val)
		}
		p.curData.Init = append(p.curData.Init,
			obj.DataInit{Offset: off, Kind: obj.InitString, Index: k})
	default:
		v, err := strconv.ParseInt(val, 0, 64)
		if err != nil {
			return p.errf("bad init value %q", val)
		}
		p.curData.Init = append(p.curData.Init,
			obj.DataInit{Offset: off, Kind: obj.InitConst, Val: v})
	}
	return nil
}

func (p *parser) funcDirective(args []string) error {
	if len(args) < 3 {
		return p.errf("func wants: func name nargs=N nregs=N [frame=N] [local]")
	}
	fn := &obj.Func{Name: args[0]}
	local := false
	sawArgs, sawRegs := false, false
	for _, a := range args[1:] {
		switch {
		case strings.HasPrefix(a, "nargs="):
			n, err := strconv.Atoi(a[6:])
			if err != nil || n < 0 {
				return p.errf("bad nargs %q", a)
			}
			fn.NArgs = n
			sawArgs = true
		case strings.HasPrefix(a, "nregs="):
			n, err := strconv.Atoi(a[6:])
			if err != nil || n <= 0 {
				return p.errf("bad nregs %q", a)
			}
			fn.NRegs = n
			sawRegs = true
		case strings.HasPrefix(a, "frame="):
			n, err := strconv.Atoi(a[6:])
			if err != nil || n < 0 {
				return p.errf("bad frame %q", a)
			}
			fn.Frame = n
		case a == "local":
			local = true
		default:
			return p.errf("unknown func attribute %q", a)
		}
	}
	if !sawArgs || !sawRegs {
		return p.errf("func %q needs nargs= and nregs=", fn.Name)
	}
	if fn.NArgs > fn.NRegs {
		return p.errf("func %q has more args than registers", fn.Name)
	}
	if _, dup := p.out.Funcs[fn.Name]; dup {
		return p.errf("func %q redefined", fn.Name)
	}
	p.fn = fn
	p.fnLocal = local
	p.labels = map[string]int{}
	p.curData = nil
	return nil
}

var binOps = map[string]cmini.Tok{
	"+": cmini.PLUS, "-": cmini.MINUS, "*": cmini.STAR, "/": cmini.SLASH,
	"%": cmini.PERCENT, "<<": cmini.SHL, ">>": cmini.SHR, "&": cmini.AMP,
	"|": cmini.PIPE, "^": cmini.CARET, "<": cmini.LT, ">": cmini.GT,
	"<=": cmini.LE, ">=": cmini.GE, "==": cmini.EQ, "!=": cmini.NE,
}

var unOps = map[string]cmini.Tok{
	"-": cmini.MINUS, "!": cmini.NOT, "~": cmini.TILDE,
}

func (p *parser) reg(s string) (obj.Reg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "r") {
		return 0, p.errf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, p.errf("bad register %q", s)
	}
	if n >= p.fn.NRegs {
		return 0, p.errf("register %q out of range (nregs=%d)", s, p.fn.NRegs)
	}
	return obj.Reg(n), nil
}

// instruction parses one instruction line into the open function.
func (p *parser) instruction(line string) error {
	op, rest, _ := strings.Cut(line, " ")
	var args []string
	for _, a := range strings.Split(rest, ",") {
		args = append(args, strings.TrimSpace(a))
	}
	if rest == "" {
		args = nil
	}
	emit := func(in obj.Instr) { p.fn.Code = append(p.fn.Code, in) }
	need := func(n int) error {
		if len(args) != n {
			return p.errf("%s wants %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case "const":
		if err := need(2); err != nil {
			return err
		}
		dst, err := p.reg(args[0])
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return p.errf("bad immediate %q", args[1])
		}
		emit(obj.Instr{Op: obj.OpConst, Dst: dst, Imm: v, A: obj.NoReg, B: obj.NoReg})
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		dst, err := p.reg(args[0])
		if err != nil {
			return err
		}
		src, err := p.reg(args[1])
		if err != nil {
			return err
		}
		emit(obj.Instr{Op: obj.OpMov, Dst: dst, A: src, B: obj.NoReg})
	case "bin":
		if err := need(4); err != nil {
			return err
		}
		dst, err := p.reg(args[0])
		if err != nil {
			return err
		}
		a, err := p.reg(args[1])
		if err != nil {
			return err
		}
		tok, ok := binOps[args[2]]
		if !ok {
			return p.errf("unknown binary op %q", args[2])
		}
		b, err := p.reg(args[3])
		if err != nil {
			return err
		}
		emit(obj.Instr{Op: obj.OpBin, Dst: dst, A: a, B: b, Tok: int(tok)})
	case "un":
		if err := need(3); err != nil {
			return err
		}
		dst, err := p.reg(args[0])
		if err != nil {
			return err
		}
		tok, ok := unOps[args[1]]
		if !ok {
			return p.errf("unknown unary op %q", args[1])
		}
		a, err := p.reg(args[2])
		if err != nil {
			return err
		}
		emit(obj.Instr{Op: obj.OpUn, Dst: dst, A: a, Tok: int(tok), B: obj.NoReg})
	case "load":
		if err := need(2); err != nil {
			return err
		}
		dst, err := p.reg(args[0])
		if err != nil {
			return err
		}
		a, err := p.reg(args[1])
		if err != nil {
			return err
		}
		emit(obj.Instr{Op: obj.OpLoad, Dst: dst, A: a, B: obj.NoReg})
	case "store":
		if err := need(2); err != nil {
			return err
		}
		a, err := p.reg(args[0])
		if err != nil {
			return err
		}
		b, err := p.reg(args[1])
		if err != nil {
			return err
		}
		emit(obj.Instr{Op: obj.OpStore, A: a, B: b})
	case "addrg":
		if err := need(2); err != nil {
			return err
		}
		dst, err := p.reg(args[0])
		if err != nil {
			return err
		}
		emit(obj.Instr{Op: obj.OpAddrGlobal, Dst: dst, Sym: args[1], A: obj.NoReg, B: obj.NoReg})
	case "addrl", "addrs":
		if err := need(2); err != nil {
			return err
		}
		dst, err := p.reg(args[0])
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil || v < 0 {
			return p.errf("bad offset %q", args[1])
		}
		o := obj.OpAddrLocal
		if op == "addrs" {
			o = obj.OpAddrString
		}
		emit(obj.Instr{Op: o, Dst: dst, Imm: v, A: obj.NoReg, B: obj.NoReg})
	case "call":
		if len(args) < 2 {
			return p.errf("call wants: call rDST, sym, [args...]")
		}
		dst, err := p.reg(args[0])
		if err != nil {
			return err
		}
		var argRegs []obj.Reg
		for _, a := range args[2:] {
			r, err := p.reg(a)
			if err != nil {
				return err
			}
			argRegs = append(argRegs, r)
		}
		emit(obj.Instr{Op: obj.OpCall, Dst: dst, Sym: args[1], Args: argRegs, A: obj.NoReg, B: obj.NoReg})
		p.out.AddSym(&obj.Symbol{Name: args[1], Kind: obj.SymFunc})
	case "callind":
		if len(args) < 2 {
			return p.errf("callind wants: callind rDST, rTARGET, [args...]")
		}
		dst, err := p.reg(args[0])
		if err != nil {
			return err
		}
		target, err := p.reg(args[1])
		if err != nil {
			return err
		}
		var argRegs []obj.Reg
		for _, a := range args[2:] {
			r, err := p.reg(a)
			if err != nil {
				return err
			}
			argRegs = append(argRegs, r)
		}
		emit(obj.Instr{Op: obj.OpCallInd, Dst: dst, A: target, Args: argRegs, B: obj.NoReg})
	case "jump":
		if err := need(1); err != nil {
			return err
		}
		p.pending = append(p.pending, pendingTarget{
			instr: len(p.fn.Code), slot: 0, label: args[0], line: p.line})
		emit(obj.Instr{Op: obj.OpJump})
	case "branch":
		if err := need(3); err != nil {
			return err
		}
		c, err := p.reg(args[0])
		if err != nil {
			return err
		}
		p.pending = append(p.pending,
			pendingTarget{instr: len(p.fn.Code), slot: 0, label: args[1], line: p.line},
			pendingTarget{instr: len(p.fn.Code), slot: 1, label: args[2], line: p.line})
		emit(obj.Instr{Op: obj.OpBranch, A: c})
	case "ret":
		switch len(args) {
		case 0:
			emit(obj.Instr{Op: obj.OpRet, A: obj.NoReg})
		case 1:
			r, err := p.reg(args[0])
			if err != nil {
				return err
			}
			emit(obj.Instr{Op: obj.OpRet, A: r, HasVal: true})
		default:
			return p.errf("ret wants 0 or 1 operands")
		}
	default:
		return p.errf("unknown instruction %q", op)
	}
	return nil
}
