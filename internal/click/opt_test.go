package click

import (
	"strings"
	"testing"

	"knit/internal/clack"
)

// TestEachOptimizationHelps measures the optimizations individually:
// each must reduce cycles relative to the unoptimized baseline, and
// their combination must beat each alone (the MIT report's finding).
func TestEachOptimizationHelps(t *testing.T) {
	spec := clack.DefaultTraffic(300)
	base, err := Measure(Options{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	singles := []Options{
		{FastClassifier: true},
		{XForm: true},
		{Specialize: true},
	}
	best := base.CyclesPerPk
	for _, o := range singles {
		m, err := Measure(o, spec)
		if err != nil {
			t.Fatalf("%s: %v", o, err)
		}
		t.Logf("%-14s %6.0f cycles (base %6.0f)", o, m.CyclesPerPk, base.CyclesPerPk)
		if m.CyclesPerPk >= base.CyclesPerPk {
			t.Errorf("%s did not improve on the baseline: %.0f >= %.0f",
				o, m.CyclesPerPk, base.CyclesPerPk)
		}
		if m.CyclesPerPk < best {
			best = m.CyclesPerPk
		}
	}
	all, err := Measure(All(), spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%-14s %6.0f cycles", "all three", all.CyclesPerPk)
	if all.CyclesPerPk >= best {
		t.Errorf("combining all three (%.0f) should beat the best single (%.0f)",
			all.CyclesPerPk, best)
	}
}

func TestOptionsString(t *testing.T) {
	cases := map[string]Options{
		"unoptimized":                 {},
		"fastclass":                   {FastClassifier: true},
		"specializer":                 {Specialize: true},
		"xform":                       {XForm: true},
		"fastclass+specializer+xform": All(),
	}
	for want, o := range cases {
		if got := o.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", o, got, want)
		}
	}
}

func TestTopoOrderTargetsFirst(t *testing.T) {
	g0, err := clack.ParseConfig(clack.StandardRouterConfig)
	if err != nil {
		t.Fatal(err)
	}
	g := graphFromClack(g0)
	ordered := topoOrder(g)
	if len(ordered) != len(g) {
		t.Fatalf("topoOrder lost elements: %d vs %d", len(ordered), len(g))
	}
	pos := map[string]int{}
	for i, e := range ordered {
		pos[e.name] = i
	}
	for _, e := range g {
		for _, to := range e.conns {
			if pos[to] > pos[e.name] {
				t.Errorf("%s's target %s comes after it (%d > %d)",
					e.name, to, pos[to], pos[e.name])
			}
		}
	}
}

func TestSpecializedTextSmallerThanModularClick(t *testing.T) {
	// The specializer + xform shrink both the graph and the per-element
	// boilerplate; the generated single unit should not be wildly larger
	// than the baseline.
	imgBase, err := Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	imgAll, err := Build(All())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("text: base %d bytes, optimized %d bytes", imgBase.TextSize, imgAll.TextSize)
	if imgAll.TextSize > imgBase.TextSize*4 {
		t.Errorf("optimized text exploded: %d vs %d", imgAll.TextSize, imgBase.TextSize)
	}
}

func TestGeneratedConfigMentionsEveryWire(t *testing.T) {
	g0, err := clack.ParseConfig(clack.StandardRouterConfig)
	if err != nil {
		t.Fatal(err)
	}
	g := graphFromClack(g0)
	cg := &codegen{}
	cfg := cg.configSource(g)
	// Every connection appears as a set_out call in the baseline config.
	for _, e := range g {
		for i, to := range e.conns {
			want := e.name + "_set_out"
			if !strings.Contains(cfg, want) {
				t.Errorf("config missing %s (port %d -> %s)", want, i, to)
			}
		}
	}
	if !strings.Contains(cfg, "rt_add_route(10, 0);") {
		t.Error("config missing route setup")
	}
	if !strings.Contains(cfg, "cl0_add_rule(") {
		t.Error("config missing classifier rules")
	}
}

func TestUnknownElementClassRejected(t *testing.T) {
	cg := &codegen{}
	if _, err := cg.instanceSource(&inst{name: "x", class: "Teleport"}); err == nil {
		t.Error("unknown class should error")
	}
}
