package click

import (
	"testing"

	"knit/internal/clack"
	"knit/internal/machine"
	"knit/internal/obj"
)

// countIndirect counts static indirect-call sites in an image.
func countIndirect(img *machine.Image) int {
	n := 0
	for _, fn := range img.File.Funcs {
		for i := range fn.Code {
			if fn.Code[i].Op == obj.OpCallInd {
				n++
			}
		}
	}
	return n
}

func TestClickBaseForwards(t *testing.T) {
	meas, err := Measure(Options{}, clack.DefaultTraffic(200))
	if err != nil {
		t.Fatal(err)
	}
	if meas.Packets != 200 {
		t.Errorf("windows = %d, want 200", meas.Packets)
	}
	if meas.Forwarded == 0 || meas.Dropped == 0 {
		t.Errorf("forwarded=%d dropped=%d", meas.Forwarded, meas.Dropped)
	}
}

func TestClickMatchesClackBehavior(t *testing.T) {
	spec := clack.DefaultTraffic(300)
	clackRes, err := clack.MeasureVariant(clack.Variant{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, {FastClassifier: true},
		{FastClassifier: true, Specialize: true}, All()} {
		meas, err := Measure(opts, spec)
		if err != nil {
			t.Fatalf("%s: %v", opts, err)
		}
		if meas.Forwarded != clackRes.Forwarded || meas.Dropped != clackRes.Dropped ||
			meas.Stats.Tx[0] != clackRes.Stats.Tx[0] ||
			meas.Stats.Tx[1] != clackRes.Stats.Tx[1] ||
			meas.Stats.TxTTLOK != clackRes.Stats.TxTTLOK {
			t.Errorf("click %s stats %+v differ from clack %+v", opts, meas.Stats, clackRes.Stats)
		}
	}
}

func TestXFormFusesElements(t *testing.T) {
	g0, err := clack.ParseConfig(clack.StandardRouterConfig)
	if err != nil {
		t.Fatal(err)
	}
	g := graphFromClack(g0)
	before := len(g)
	g = xform(g)
	if len(g) >= before {
		t.Errorf("xform did not shrink the graph: %d -> %d", before, len(g))
	}
	classes := map[string]int{}
	for _, e := range g {
		classes[e.class]++
	}
	if classes["DecFix"] != 2 {
		t.Errorf("DecFix count = %d, want 2", classes["DecFix"])
	}
	if classes["QCT"] != 2 {
		t.Errorf("QCT count = %d, want 2", classes["QCT"])
	}
	if classes["FixIPChecksum"] != 0 || classes["Counter"] != 0 || classes["ToDevice"] != 0 {
		t.Errorf("fused classes remain: %v", classes)
	}
}

// TestTable2Shape reproduces Table 2: the optimized Click router is
// roughly twice as fast as the unoptimized one (the paper: 2486 -> 1146
// cycles, a 54% improvement), and the unoptimized Click router is
// slightly slower than the Clack base (the paper: ~3%).
func TestTable2Shape(t *testing.T) {
	spec := clack.DefaultTraffic(400)
	base, err := Measure(Options{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	optim, err := Measure(All(), spec)
	if err != nil {
		t.Fatal(err)
	}
	clackBase, err := clack.MeasureVariant(clack.Variant{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	clackBoth, err := clack.MeasureVariant(clack.Variant{HandOptimized: true, Flattened: true}, spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("click base:      %.0f cycles", base.CyclesPerPk)
	t.Logf("click optimized: %.0f cycles (%.0f%% improvement)",
		optim.CyclesPerPk, 100*(1-optim.CyclesPerPk/base.CyclesPerPk))
	t.Logf("clack base:      %.0f cycles", clackBase.CyclesPerPk)
	t.Logf("clack hand+flat: %.0f cycles", clackBoth.CyclesPerPk)

	// Click base is slower than Clack base (indirect dispatch), but in
	// the same ballpark.
	if base.CyclesPerPk <= clackBase.CyclesPerPk {
		t.Errorf("click base (%.0f) should be slower than clack base (%.0f)",
			base.CyclesPerPk, clackBase.CyclesPerPk)
	}
	if base.CyclesPerPk > clackBase.CyclesPerPk*1.35 {
		t.Errorf("click base (%.0f) should be within ~a third of clack base (%.0f)",
			base.CyclesPerPk, clackBase.CyclesPerPk)
	}
	// The three optimizations together cut cycles substantially (paper:
	// 54%); require at least a third.
	improvement := 1 - optim.CyclesPerPk/base.CyclesPerPk
	if improvement < 0.33 {
		t.Errorf("click optimizations improve only %.0f%%, want >= 33%%", 100*improvement)
	}
	// Optimized Click lands at or below Clack's best (the paper's
	// optimized Click beats Clack hand+flat).
	if optim.CyclesPerPk > clackBoth.CyclesPerPk*1.15 {
		t.Errorf("optimized click (%.0f) should be near clack hand+flat (%.0f)",
			optim.CyclesPerPk, clackBoth.CyclesPerPk)
	}
}

func TestIndirectCallsOnlyInBase(t *testing.T) {
	imgBase, err := Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	imgSpec, err := Build(Options{Specialize: true, FastClassifier: true})
	if err != nil {
		t.Fatal(err)
	}
	indBase := countIndirect(imgBase)
	indSpec := countIndirect(imgSpec)
	if indBase == 0 {
		t.Error("base click should contain indirect calls")
	}
	if indSpec != 0 {
		t.Errorf("specialized click contains %d indirect calls, want 0", indSpec)
	}
}
