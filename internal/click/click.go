// Package click is the object-based router baseline of Table 2: the
// same router elements as Clack, but composed the way Click composes C++
// objects — per-instance element state with output ports held in
// function-pointer variables, wired at run time by a generated
// configuration routine, every hop an indirect call. It also implements
// analogues of the three MIT Click optimizations the paper compares
// against (Kohler et al., MIT-LCS-TR-812):
//
//   - the "fast classifier", which replaces the generic interpreted
//     pattern-matcher with code generated from the configured rules;
//   - the "specializer", which turns indirect port calls into direct
//     calls and emits the whole configuration as one compilation unit;
//   - "xform", which recognizes element patterns and replaces them with
//     fused, hand-tuned elements.
package click

import (
	"fmt"
	"sort"
	"strings"

	"knit/internal/clack"
)

// Rule is one classifier pattern: match word Off == Val -> Port; Off < 0
// is the default rule.
type Rule struct {
	Off, Val, Port int
}

// inst is one element instance in the Click object graph.
type inst struct {
	name  string
	class string
	dev   int
	conns []string
	rules []Rule // Classifier instances
}

// graphFromClack converts a parsed Clack configuration into the Click
// object graph, attaching the standard classifier rules and routes.
func graphFromClack(g *clack.Graph) []*inst {
	var out []*inst
	for _, e := range g.Elements {
		in := &inst{name: e.Name, class: e.Type, dev: e.Arg}
		for i := 0; i < e.NumPorts(); i++ {
			in.conns = append(in.conns, e.Conn(i))
		}
		if e.Type == "Classifier" {
			in.rules = []Rule{{0, 2, 1}, {0, 3, 2}, {-1, 0, 0}}
		}
		out = append(out, in)
	}
	return out
}

// Options selects the MIT optimizations.
type Options struct {
	FastClassifier bool
	Specialize     bool
	XForm          bool
}

// All returns the fully optimized configuration of Table 2's second row.
func All() Options { return Options{FastClassifier: true, Specialize: true, XForm: true} }

func (o Options) String() string {
	if o == (Options{}) {
		return "unoptimized"
	}
	var parts []string
	if o.FastClassifier {
		parts = append(parts, "fastclass")
	}
	if o.Specialize {
		parts = append(parts, "specializer")
	}
	if o.XForm {
		parts = append(parts, "xform")
	}
	return strings.Join(parts, "+")
}

// xform rewrites the graph, fusing DecIPTTL->FixIPChecksum pairs into
// DecFix and Queue->Counter->ToDevice chains into QCT, like Click's
// pattern-replacement optimizer.
func xform(g []*inst) []*inst {
	byName := map[string]*inst{}
	for _, e := range g {
		byName[e.name] = e
	}
	inDegree := map[string]int{}
	for _, e := range g {
		for _, to := range e.conns {
			inDegree[to]++
		}
	}
	removed := map[string]bool{}
	// DecIPTTL -> FixIPChecksum with a single consumer of the fix.
	for _, e := range g {
		if e.class != "DecIPTTL" || removed[e.name] {
			continue
		}
		fix := byName[e.conns[0]]
		if fix == nil || fix.class != "FixIPChecksum" || inDegree[fix.name] != 1 {
			continue
		}
		e.class = "DecFix"
		e.conns = []string{fix.conns[0], e.conns[1]}
		removed[fix.name] = true
	}
	// Queue -> Counter -> ToDevice.
	for _, e := range g {
		if e.class != "Queue" || removed[e.name] {
			continue
		}
		cnt := byName[e.conns[0]]
		if cnt == nil || cnt.class != "Counter" || inDegree[cnt.name] != 1 || removed[cnt.name] {
			continue
		}
		td := byName[cnt.conns[0]]
		if td == nil || td.class != "ToDevice" || removed[td.name] {
			continue
		}
		e.class = "QCT"
		e.dev = td.dev
		e.conns = nil
		removed[cnt.name] = true
		removed[td.name] = true
	}
	var out []*inst
	for _, e := range g {
		if !removed[e.name] {
			out = append(out, e)
		}
	}
	// Rewire connections that pointed at removed fix elements: already
	// handled by fusing into the DecFix; connections INTO removed
	// elements other than via the fused pair would be wrong, but the
	// in-degree checks above prevent that.
	return out
}

const pktH = `
struct pkt {
    int kind;
    int ttl;
    int checksum;
    int src;
    int dst;
    int paint;
    int payload[8];
};
`

// portDecl emits a port: either an indirect function-pointer variable
// with its setter (Click style), or nothing when specialized (calls are
// emitted directly).
type codegen struct {
	spec      bool // specializer on: direct calls, no port variables
	fastClass bool
	noHeader  bool // omit the packet struct (single-file generation)
}

// pushTarget returns the expression for pushing to the element connected
// at port i of e, plus any needed declarations.
func (cg *codegen) call(e *inst, port int, arg string) string {
	if cg.spec {
		return fmt.Sprintf("%s_push(%s)", e.conns[port], arg)
	}
	return fmt.Sprintf("%s_out%d(%s)", e.name, port, arg)
}

func (cg *codegen) portDecls(e *inst) string {
	if cg.spec {
		var b strings.Builder
		for _, to := range e.conns {
			fmt.Fprintf(&b, "int %s_push(int p);\n", to)
		}
		return b.String()
	}
	var b strings.Builder
	for i := range e.conns {
		fmt.Fprintf(&b, "static fn %s_out%d;\nvoid %s_set_out%d(fn f) { %s_out%d = f; }\n",
			e.name, i, e.name, i, e.name, i)
	}
	return b.String()
}

// devExpr is the device number: a runtime variable with setter, or a
// constant when specialized.
func (cg *codegen) devDecl(e *inst) string {
	if cg.spec {
		return ""
	}
	return fmt.Sprintf("static int %s_dev;\nvoid %s_set_dev(int d) { %s_dev = d; }\n",
		e.name, e.name, e.name)
}

func (cg *codegen) devExpr(e *inst) string {
	if cg.spec {
		return fmt.Sprintf("%d", e.dev)
	}
	return e.name + "_dev"
}

// instanceSource generates the cmini code for one element instance.
func (cg *codegen) instanceSource(e *inst) (string, error) {
	p := e.name
	var b strings.Builder
	if !cg.noHeader {
		b.WriteString(pktH)
	}
	b.WriteString(cg.portDecls(e))
	switch e.class {
	case "FromDevice":
		b.WriteString("extern int __rx_poll(int dev);\nextern int __tick_enter(void);\n")
		b.WriteString(cg.devDecl(e))
		fmt.Fprintf(&b, `
int %s_step(void) {
    int p = __rx_poll(%s);
    if (p == 0) { return 0; }
    __tick_enter();
    struct pkt *k = p;
    k->paint = %s;
    %s;
    return 1;
}
`, p, cg.devExpr(e), cg.devExpr(e), cg.call(e, 0, "p"))
	case "Classifier":
		if cg.fastClass {
			// Fast classifier: generated direct comparisons from the
			// configured rules.
			fmt.Fprintf(&b, "int %s_push(int p) {\n    int *w = p;\n", p)
			for _, r := range e.rules {
				if r.Off < 0 {
					fmt.Fprintf(&b, "    return %s;\n}\n", cg.call(e, r.Port, "p"))
					break
				}
				fmt.Fprintf(&b, "    if (w[%d] == %d) { return %s; }\n",
					r.Off, r.Val, cg.call(e, r.Port, "p"))
			}
		} else {
			// Generic Click classifier: interpret the rule table.
			fmt.Fprintf(&b, `
static int %s_pats[12];
static int %s_npats;
void %s_add_rule(int off, int val, int port) {
    %s_pats[%s_npats * 3] = off;
    %s_pats[%s_npats * 3 + 1] = val;
    %s_pats[%s_npats * 3 + 2] = port;
    %s_npats++;
}
int %s_push(int p) {
    int *w = p;
    int port = 0;
    for (int r = 0; r < %s_npats; r++) {
        int off = %s_pats[r * 3];
        if (off < 0) {
            port = %s_pats[r * 3 + 2];
            break;
        }
        if (w[off] == %s_pats[r * 3 + 1]) {
            port = %s_pats[r * 3 + 2];
            break;
        }
    }
    if (port == 1) { return %s; }
    if (port == 2) { return %s; }
    return %s;
}
`, p, p, p, p, p, p, p, p, p, p, p, p, p, p, p, p,
				cg.call(e, 1, "p"), cg.call(e, 2, "p"), cg.call(e, 0, "p"))
		}
	case "ARPResponder":
		fmt.Fprintf(&b, `
int %s_push(int p) {
    struct pkt *k = p;
    k->kind = 4;
    int tmp = k->src;
    k->src = k->dst;
    k->dst = tmp;
    k->ttl = 64;
    int sum = k->ttl + k->dst;
    for (int i = 0; i < 8; i++) {
        sum = sum + k->payload[i];
    }
    k->checksum = (sum & 65535) + (sum >> 16);
    return %s;
}
`, p, cg.call(e, 0, "p"))
	case "CheckIPHeader":
		fmt.Fprintf(&b, `
int %s_push(int p) {
    struct pkt *k = p;
    if (k->ttl <= 0) { return %s; }
    int sum = k->ttl + k->dst;
    for (int i = 0; i < 8; i++) {
        sum = sum + k->payload[i];
    }
    sum = (sum & 65535) + (sum >> 16);
    if (sum != k->checksum) { return %s; }
    return %s;
}
`, p, cg.call(e, 1, "p"), cg.call(e, 1, "p"), cg.call(e, 0, "p"))
	case "LookupIPRoute":
		fmt.Fprintf(&b, `
static int %s_routes[8];
static int %s_nroutes;
void %s_add_route(int net, int port) {
    %s_routes[%s_nroutes * 2] = net;
    %s_routes[%s_nroutes * 2 + 1] = port;
    %s_nroutes++;
}
int %s_push(int p) {
    struct pkt *k = p;
    int net = k->dst / 256;
    int port = 1;
    for (int r = 0; r < %s_nroutes; r++) {
        if (%s_routes[r * 2] == net || %s_routes[r * 2] == 0) {
            port = %s_routes[r * 2 + 1];
            break;
        }
    }
    k->paint = port;
    if (port == 0) { return %s; }
    return %s;
}
`, p, p, p, p, p, p, p, p, p, p, p, p, p,
			cg.call(e, 0, "p"), cg.call(e, 1, "p"))
	case "DecIPTTL":
		fmt.Fprintf(&b, `
int %s_push(int p) {
    struct pkt *k = p;
    k->ttl = k->ttl - 1;
    if (k->ttl <= 0) { return %s; }
    return %s;
}
`, p, cg.call(e, 1, "p"), cg.call(e, 0, "p"))
	case "FixIPChecksum":
		fmt.Fprintf(&b, `
int %s_push(int p) {
    struct pkt *k = p;
    int c = k->checksum - 1;
    if (c <= 0) { c = c + 65535; }
    k->checksum = c;
    return %s;
}
`, p, cg.call(e, 0, "p"))
	case "DecFix":
		// The xform-fused DecIPTTL+FixIPChecksum.
		fmt.Fprintf(&b, `
int %s_push(int p) {
    struct pkt *k = p;
    k->ttl = k->ttl - 1;
    if (k->ttl <= 0) { return %s; }
    int c = k->checksum - 1;
    if (c <= 0) { c = c + 65535; }
    k->checksum = c;
    return %s;
}
`, p, cg.call(e, 1, "p"), cg.call(e, 0, "p"))
	case "EthEncap":
		b.WriteString(cg.devDecl(e))
		fmt.Fprintf(&b, `
int %s_push(int p) {
    struct pkt *k = p;
    k->src = 1000 + %s;
    return %s;
}
`, p, cg.devExpr(e), cg.call(e, 0, "p"))
	case "Queue":
		fmt.Fprintf(&b, `
static int %s_ring[16];
static int %s_head;
static int %s_tail;
int %s_push(int p) {
    %s_ring[%s_tail %% 16] = p;
    %s_tail++;
    int q = %s_ring[%s_head %% 16];
    %s_head++;
    return %s;
}
`, p, p, p, p, p, p, p, p, p, p, cg.call(e, 0, "q"))
	case "Counter":
		fmt.Fprintf(&b, `
static int %s_count;
int %s_read(void) { return %s_count; }
int %s_push(int p) {
    %s_count++;
    return %s;
}
`, p, p, p, p, p, cg.call(e, 0, "p"))
	case "ToDevice":
		b.WriteString("extern int __tx(int dev, int p);\nextern int __tick_exit(void);\n")
		b.WriteString(cg.devDecl(e))
		fmt.Fprintf(&b, `
int %s_push(int p) {
    __tick_exit();
    return __tx(%s, p);
}
`, p, cg.devExpr(e))
	case "QCT":
		// The xform-fused Queue+Counter+ToDevice.
		b.WriteString("extern int __tx(int dev, int p);\nextern int __tick_exit(void);\n")
		b.WriteString(cg.devDecl(e))
		fmt.Fprintf(&b, `
static int %s_ring[16];
static int %s_head;
static int %s_tail;
static int %s_count;
int %s_read(void) { return %s_count; }
int %s_push(int p) {
    %s_ring[%s_tail %% 16] = p;
    %s_tail++;
    int q = %s_ring[%s_head %% 16];
    %s_head++;
    %s_count++;
    __tick_exit();
    return __tx(%s, q);
}
`, p, p, p, p, p, p, p, p, p, p, p, p, p, p, cg.devExpr(e))
	case "Discard":
		fmt.Fprintf(&b, `
extern int __drop(int p);
extern int __tick_exit(void);
int %s_push(int p) {
    __tick_exit();
    return __drop(p);
}
`, p)
	default:
		return "", fmt.Errorf("click: unknown element class %q", e.class)
	}
	return b.String(), nil
}

// configSource generates the run-time configuration routine: port
// wiring, classifier rules, routes, and device numbers — the code Click
// derives from its configuration string.
func (cg *codegen) configSource(g []*inst) string {
	var b strings.Builder
	// Declarations.
	for _, e := range g {
		if !cg.spec {
			for i := range e.conns {
				fmt.Fprintf(&b, "int %s_set_out%d(fn f);\n", e.name, i)
			}
			if needsDev(e) {
				fmt.Fprintf(&b, "int %s_set_dev(int d);\n", e.name)
			}
		}
		if e.class == "Classifier" && !cg.fastClass {
			fmt.Fprintf(&b, "int %s_add_rule(int off, int val, int port);\n", e.name)
		}
		if e.class == "LookupIPRoute" {
			fmt.Fprintf(&b, "int %s_add_route(int net, int port);\n", e.name)
		}
		for _, to := range e.conns {
			fmt.Fprintf(&b, "int %s_push(int p);\n", to)
		}
	}
	b.WriteString("\nint click_config(void) {\n")
	for _, e := range g {
		if !cg.spec {
			for i, to := range e.conns {
				fmt.Fprintf(&b, "    %s_set_out%d(&%s_push);\n", e.name, i, to)
			}
			if needsDev(e) {
				fmt.Fprintf(&b, "    %s_set_dev(%d);\n", e.name, e.dev)
			}
		}
		if e.class == "Classifier" && !cg.fastClass {
			for _, r := range e.rules {
				fmt.Fprintf(&b, "    %s_add_rule(%d, %d, %d);\n", e.name, r.Off, r.Val, r.Port)
			}
		}
		if e.class == "LookupIPRoute" {
			fmt.Fprintf(&b, "    %s_add_route(10, 0);\n", e.name)
			fmt.Fprintf(&b, "    %s_add_route(20, 1);\n", e.name)
			fmt.Fprintf(&b, "    %s_add_route(30, 0);\n", e.name)
			fmt.Fprintf(&b, "    %s_add_route(0, 1);\n", e.name)
		}
	}
	b.WriteString("    return 0;\n}\n")
	return b.String()
}

func needsDev(e *inst) bool {
	switch e.class {
	case "FromDevice", "EthEncap", "ToDevice", "QCT":
		return true
	}
	return false
}

// driverSource generates the polling driver, identical in structure to
// Clack's (including the between-packet kernel work).
func driverSource(g []*inst) string {
	var b strings.Builder
	var steps []string
	for _, e := range g {
		if e.class == "FromDevice" {
			steps = append(steps, e.name+"_step")
		}
	}
	sort.Strings(steps)
	for _, s := range steps {
		fmt.Fprintf(&b, "int %s(void);\n", s)
	}
	b.WriteString("int os_work(void);\nint click_config(void);\n")
	b.WriteString(`
int kmain(int maxiter) {
    click_config();
    int n = 0;
    for (int i = 0; i < maxiter; i++) {
        int got = 0;
`)
	for _, s := range steps {
		fmt.Fprintf(&b, "        got += %s();\n", s)
		b.WriteString("        os_work();\n")
	}
	b.WriteString(`        if (got == 0) { break; }
        n += got;
    }
    return n;
}
`)
	return b.String()
}

// topoOrder returns instances ordered targets-first (callees before
// callers), so the specializer's single generated file inlines fully
// under a define-before-use compiler.
func topoOrder(g []*inst) []*inst {
	emitted := map[string]bool{}
	var out []*inst
	for len(out) < len(g) {
		progress := false
		for _, e := range g {
			if emitted[e.name] {
				continue
			}
			ready := true
			for _, to := range e.conns {
				if !emitted[to] {
					ready = false
					break
				}
			}
			if ready {
				emitted[e.name] = true
				out = append(out, e)
				progress = true
			}
		}
		if !progress {
			for _, e := range g {
				if !emitted[e.name] {
					emitted[e.name] = true
					out = append(out, e)
				}
			}
		}
	}
	return out
}
