package click

import (
	"fmt"
	"strings"

	"knit/internal/clack"
	"knit/internal/cmini"
	"knit/internal/compile"
	"knit/internal/ldlink"
	"knit/internal/machine"
)

// Build generates and compiles the Click router for the standard
// configuration. The unoptimized build compiles every element instance
// as its own translation unit, linked with ld into a single global
// namespace, ports wired at run time (the object-based model of §2.2).
// The specializer emits the whole graph as one generated file, like the
// MIT tools.
func Build(opts Options) (*machine.Image, error) {
	g0, err := clack.ParseConfig(clack.StandardRouterConfig)
	if err != nil {
		return nil, err
	}
	g := graphFromClack(g0)
	if opts.XForm {
		g = xform(g)
	}
	cg := &codegen{spec: opts.Specialize, fastClass: opts.FastClassifier}

	costs := machine.DefaultCosts()
	costs.ICacheBytes = 2048
	costs.FuncPad = 64

	copts := compile.Options{Opt: true, InlineLimit: 2048, GrowthLimit: 1 << 15}
	var items []ldlink.Item
	compileTo := func(name, src string) error {
		f, err := cmini.Parse(name, src)
		if err != nil {
			return fmt.Errorf("click: %s: %w", name, err)
		}
		o, err := compile.Compile(f, copts)
		if err != nil {
			return fmt.Errorf("click: %s: %w", name, err)
		}
		items = append(items, ldlink.Obj(o))
		return nil
	}

	if opts.Specialize {
		// One generated translation unit, elements emitted targets-first
		// so the compiler can inline the whole graph.
		var b strings.Builder
		b.WriteString(pktH)
		cg.noHeader = true
		for _, e := range topoOrder(g) {
			src, err := cg.instanceSource(e)
			if err != nil {
				return nil, err
			}
			b.WriteString(src)
			b.WriteString("\n")
		}
		b.WriteString(cg.configSource(g))
		if err := compileTo("click_specialized.c", b.String()); err != nil {
			return nil, err
		}
	} else {
		for _, e := range g {
			src, err := cg.instanceSource(e)
			if err != nil {
				return nil, err
			}
			if err := compileTo(e.name+".c", src); err != nil {
				return nil, err
			}
		}
		if err := compileTo("config.c", cg.configSource(g)); err != nil {
			return nil, err
		}
	}
	if err := compileTo("driver.c", driverSource(g)); err != nil {
		return nil, err
	}
	if err := compileTo("oswork.c", clack.ElementSources()["oswork.c"]); err != nil {
		return nil, err
	}

	merged, err := ldlink.Link(items, ldlink.Options{
		AllowUndefined: []string{"__*"},
		Entry:          "kmain",
	})
	if err != nil {
		return nil, err
	}
	return machine.Load(merged, costs)
}

// Measurement is one Table 2 row.
type Measurement struct {
	Opts        Options
	CyclesPerPk float64
	StallsPerPk float64
	TextBytes   int64
	Packets     int64
	Forwarded   int
	Dropped     int
	Stats       *clack.DeviceStats
}

// Measure builds and runs the Click router over the given traffic.
func Measure(opts Options, spec clack.TrafficSpec) (*Measurement, error) {
	img, err := Build(opts)
	if err != nil {
		return nil, fmt.Errorf("build click %s: %w", opts, err)
	}
	m := machine.New(img)
	streams := spec.Generate()
	stats := clack.InstallDevices(m, streams)
	watch := machine.InstallStopWatch(m)
	if _, err := m.Run("kmain", int64(spec.Packets+16)); err != nil {
		return nil, fmt.Errorf("run click %s: %w", opts, err)
	}
	if watch.Windows == 0 {
		return nil, fmt.Errorf("click: no packets traversed the router")
	}
	if len(stats.TxBad) > 0 {
		return nil, fmt.Errorf("click: malformed transmissions: %v", stats.TxBad)
	}
	return &Measurement{
		Opts:        opts,
		CyclesPerPk: watch.PerWindow(),
		StallsPerPk: watch.StallsPerWindow(),
		TextBytes:   img.TextSize,
		Packets:     watch.Windows,
		Forwarded:   stats.Tx[0] + stats.Tx[1],
		Dropped:     stats.Dropped,
		Stats:       stats,
	}, nil
}
