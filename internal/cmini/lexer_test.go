package cmini

import "testing"

func TestLexBasicTokens(t *testing.T) {
	toks, err := LexAll("t.c", "int x = 42; /* c */ // line\nchar *s = \"hi\\n\";")
	if err != nil {
		t.Fatal(err)
	}
	want := []Tok{KwInt, IDENT, ASSIGN, INT, SEMI, KwChar, STAR, IDENT, ASSIGN, STRING, SEMI}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("tok %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[3].Lit != "42" {
		t.Errorf("int literal = %q, want 42", toks[3].Lit)
	}
	if toks[9].Lit != "hi\n" {
		t.Errorf("string literal = %q, want hi\\n", toks[9].Lit)
	}
}

func TestLexOperators(t *testing.T) {
	src := "+ - * / % << >> <<= >>= <= >= == != && || ++ -- -> . ? : ~ ! ^ | & += -="
	want := []Tok{PLUS, MINUS, STAR, SLASH, PERCENT, SHL, SHR, SHLEQ, SHREQ,
		LE, GE, EQ, NE, LAND, LOR, INC, DEC, ARROW, DOT, QUESTION, COLON,
		TILDE, NOT, CARET, PIPE, AMP, ADDEQ, SUBEQ}
	toks, err := LexAll("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("tok %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := LexAll("t.c", "if ifx while whilex return returning struct structs")
	if err != nil {
		t.Fatal(err)
	}
	want := []Tok{KwIf, IDENT, KwWhile, IDENT, KwReturn, IDENT, KwStruct, IDENT}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("tok %d (%q) = %v, want %v", i, toks[i].Lit, toks[i].Kind, k)
		}
	}
}

func TestLexHexLiteral(t *testing.T) {
	toks, err := LexAll("t.c", "0x1F 0XFF")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Lit != "0x1F" || toks[1].Lit != "0XFF" {
		t.Errorf("hex literals = %q %q", toks[0].Lit, toks[1].Lit)
	}
}

func TestLexCharLiterals(t *testing.T) {
	toks, err := LexAll("t.c", `'a' '\n' '\0' '\\'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "\n", "\x00", "\\"}
	for i, w := range want {
		if toks[i].Kind != CHAR || toks[i].Lit != w {
			t.Errorf("char %d = %v %q, want CHAR %q", i, toks[i].Kind, toks[i].Lit, w)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("f.c", "int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int pos = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x pos = %v", toks[1].Pos)
	}
	if toks[0].Pos.File != "f.c" {
		t.Errorf("file = %q", toks[0].Pos.File)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unterminated string", `char *s = "abc`},
		{"unterminated comment", "/* never ends"},
		{"bad char", "int x = $;"},
		{"newline in string", "char *s = \"a\nb\";"},
		{"bad escape", `char *s = "\q";`},
		{"unterminated char", "'a"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := LexAll("t.c", c.src); err == nil {
				t.Errorf("LexAll(%q) succeeded, want error", c.src)
			}
		})
	}
}
