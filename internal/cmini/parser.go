package cmini

import (
	"fmt"
	"strconv"
)

// ParseError is a syntax error with a source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parser is a recursive-descent parser for cmini.
type Parser struct {
	toks []Token
	pos  int
	file string
}

// Parse parses a cmini source file.
func Parse(file, src string) (*File, error) {
	toks, err := LexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: file}
	f := &File{Name: file}
	for !p.atEOF() {
		d, err := p.parseTopDecl()
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, d)
	}
	return f, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() Token {
	if p.atEOF() {
		last := Pos{File: p.file, Line: 1, Col: 1}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return Token{Kind: EOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekKind(ahead int) Tok {
	i := p.pos + ahead
	if i >= len(p.toks) {
		return EOF
	}
	return p.toks[i].Kind
}

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) accept(k Tok) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Tok) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errorf("expected %s, found %s", k, describe(t))
	}
	p.pos++
	return t, nil
}

func describe(t Token) string {
	switch t.Kind {
	case IDENT, INT:
		return fmt.Sprintf("%q", t.Lit)
	case STRING:
		return "string literal"
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}

func (p *Parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// isTypeStart reports whether the current token can begin a type.
func (p *Parser) isTypeStart() bool {
	switch p.cur().Kind {
	case KwInt, KwChar, KwVoid, KwFn, KwStruct:
		return true
	}
	return false
}

// parseType parses a base type plus pointer stars: "int", "char **",
// "struct pkt *", "fn", "void *".
func (p *Parser) parseType() (Type, error) {
	var t Type
	switch p.cur().Kind {
	case KwInt:
		p.next()
		t = TypeInt
	case KwChar:
		p.next()
		t = TypeChar
	case KwVoid:
		p.next()
		t = TypeVoid
	case KwFn:
		p.next()
		t = TypeFn
	case KwStruct:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		t = &StructType{Name: name.Lit}
	default:
		return nil, p.errorf("expected type, found %s", describe(p.cur()))
	}
	for p.accept(STAR) {
		t = &Pointer{Elem: t}
	}
	return t, nil
}

func (p *Parser) parseTopDecl() (Decl, error) {
	start := p.cur().Pos
	// struct definition: "struct Name { ... };"
	if p.cur().Kind == KwStruct && p.peekKind(1) == IDENT && p.peekKind(2) == LBRACE {
		return p.parseStructDecl()
	}
	static := false
	extern := false
	for {
		if p.accept(KwStatic) {
			static = true
			continue
		}
		if p.accept(KwExtern) {
			extern = true
			continue
		}
		break
	}
	if static && extern {
		return nil, &ParseError{Pos: start, Msg: "declaration cannot be both static and extern"}
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == LPAREN {
		return p.parseFuncRest(start, typ, name.Lit, static, extern)
	}
	return p.parseVarRest(start, typ, name.Lit, static, extern)
}

func (p *Parser) parseStructDecl() (Decl, error) {
	start := p.cur().Pos
	p.next() // struct
	name := p.next()
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	var fields []Field
	seen := map[string]bool{}
	for !p.accept(RBRACE) {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if seen[fn.Lit] {
			return nil, &ParseError{Pos: fn.Pos, Msg: fmt.Sprintf("duplicate field %q in struct %s", fn.Lit, name.Lit)}
		}
		seen[fn.Lit] = true
		if p.accept(LBRACK) {
			n, err := p.expect(INT)
			if err != nil {
				return nil, err
			}
			length, err := strconv.Atoi(n.Lit)
			if err != nil || length <= 0 {
				return nil, &ParseError{Pos: n.Pos, Msg: "invalid array length"}
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			ft = &Array{Elem: ft, Len: length}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		fields = append(fields, Field{Name: fn.Lit, Type: ft})
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &StructDecl{Pos: start, Name: name.Lit, Fields: fields}, nil
}

func (p *Parser) parseVarRest(start Pos, typ Type, name string, static, extern bool) (Decl, error) {
	if p.accept(LBRACK) {
		n, err := p.expect(INT)
		if err != nil {
			return nil, err
		}
		length, err := strconv.Atoi(n.Lit)
		if err != nil || length <= 0 {
			return nil, &ParseError{Pos: n.Pos, Msg: "invalid array length"}
		}
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
		typ = &Array{Elem: typ, Len: length}
	}
	d := &VarDecl{Pos: start, Name: name, Type: typ, Static: static, Extern: extern}
	if p.accept(ASSIGN) {
		if extern {
			return nil, &ParseError{Pos: start, Msg: fmt.Sprintf("extern variable %q cannot have an initializer", name)}
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseFuncRest(start Pos, result Type, name string, static, extern bool) (Decl, error) {
	p.next() // (
	var params []Param
	if !p.accept(RPAREN) {
		if p.cur().Kind == KwVoid && p.peekKind(1) == RPAREN {
			p.next() // void
			p.next() // )
		} else {
			for {
				pt, err := p.parseType()
				if err != nil {
					return nil, err
				}
				pn, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				params = append(params, Param{Name: pn.Lit, Type: pt})
				if p.accept(COMMA) {
					continue
				}
				if _, err := p.expect(RPAREN); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	d := &FuncDecl{Pos: start, Name: name, Params: params, Result: result, Static: static, Extern: extern}
	if p.accept(SEMI) {
		// Prototype. Treat a bare prototype as extern (an import) unless
		// marked static, matching how component C code declares imports.
		if !static {
			d.Extern = true
		}
		return d, nil
	}
	if extern {
		return nil, &ParseError{Pos: start, Msg: fmt.Sprintf("extern function %q cannot have a body", name)}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	d.Body = body
	return d, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	start := p.cur().Pos
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	b := &Block{Pos: start}
	for !p.accept(RBRACE) {
		if p.atEOF() {
			return nil, &ParseError{Pos: start, Msg: "unterminated block"}
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	start := p.cur().Pos
	switch p.cur().Kind {
	case LBRACE:
		return p.parseBlock()
	case KwIf:
		return p.parseIf()
	case KwWhile:
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: start, Cond: cond, Body: body}, nil
	case KwFor:
		return p.parseFor()
	case KwReturn:
		p.next()
		s := &ReturnStmt{Pos: start}
		if p.cur().Kind != SEMI {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.X = x
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return s, nil
	case KwBreak:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: start}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: start}, nil
	}
	if p.isTypeStart() {
		return p.parseDeclStmt()
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: start, X: x}, nil
}

func (p *Parser) parseDeclStmt() (Stmt, error) {
	start := p.cur().Pos
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if p.accept(LBRACK) {
		n, err := p.expect(INT)
		if err != nil {
			return nil, err
		}
		length, err := strconv.Atoi(n.Lit)
		if err != nil || length <= 0 {
			return nil, &ParseError{Pos: n.Pos, Msg: "invalid array length"}
		}
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
		typ = &Array{Elem: typ, Len: length}
	}
	d := &DeclStmt{Pos: start, Name: name.Lit, Type: typ}
	if p.accept(ASSIGN) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	start := p.cur().Pos
	p.next() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: start, Cond: cond, Then: then}
	if p.accept(KwElse) {
		if p.cur().Kind == KwIf {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = elseIf
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	start := p.cur().Pos
	p.next() // for
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: start}
	if !p.accept(SEMI) {
		if p.isTypeStart() {
			init, err := p.parseDeclStmt() // consumes the ;
			if err != nil {
				return nil, err
			}
			s.Init = init
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Init = &ExprStmt{Pos: x.ExprPos(), X: x}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
		}
	}
	if !p.accept(SEMI) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
	}
	if !p.accept(RPAREN) {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Post = post
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[Tok]int{
	LOR:   1,
	LAND:  2,
	PIPE:  3,
	CARET: 4,
	AMP:   5,
	EQ:    6, NE: 6,
	LT: 7, GT: 7, LE: 7, GE: 7,
	SHL: 8, SHR: 8,
	PLUS: 9, MINUS: 9,
	STAR: 10, SLASH: 10, PERCENT: 10,
}

var compoundOps = map[Tok]Tok{
	ADDEQ: PLUS, SUBEQ: MINUS, MULEQ: STAR, DIVEQ: SLASH, MODEQ: PERCENT,
	ANDEQ: AMP, OREQ: PIPE, XOREQ: CARET, SHLEQ: SHL, SHREQ: SHR,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssign() }

func (p *Parser) parseAssign() (Expr, error) {
	lhs, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	k := p.cur().Kind
	if k == ASSIGN {
		pos := p.next().Pos
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		if !isLvalue(lhs) {
			return nil, &ParseError{Pos: pos, Msg: "left side of assignment is not assignable"}
		}
		return &Assign{Pos: pos, Op: ASSIGN, LHS: lhs, RHS: rhs}, nil
	}
	if _, ok := compoundOps[k]; ok {
		pos := p.next().Pos
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		if !isLvalue(lhs) {
			return nil, &ParseError{Pos: pos, Msg: "left side of assignment is not assignable"}
		}
		return &Assign{Pos: pos, Op: k, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident, *Index, *Member:
		return true
	case *Unary:
		return x.Op == STAR
	}
	return false
}

func (p *Parser) parseCond() (Expr, error) {
	c, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == QUESTION {
		pos := p.next().Pos
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(COLON); err != nil {
			return nil, err
		}
		els, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		return &Cond{Pos: pos, C: c, Then: then, Else: els}, nil
	}
	return c, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		pos := p.next().Pos
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case MINUS, NOT, TILDE, STAR, AMP:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.Kind == AMP && !isAddressable(x) {
			return nil, &ParseError{Pos: t.Pos, Msg: "cannot take address of expression"}
		}
		return &Unary{Pos: t.Pos, Op: t.Kind, X: x}, nil
	case KwSizeof:
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &SizeofExpr{Pos: t.Pos, Type: typ}, nil
	}
	return p.parsePostfix()
}

func isAddressable(e Expr) bool {
	switch x := e.(type) {
	case *Ident, *Index, *Member:
		return true
	case *Unary:
		return x.Op == STAR
	}
	return false
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Kind {
		case LPAREN:
			p.next()
			var args []Expr
			if !p.accept(RPAREN) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(COMMA) {
						continue
					}
					if _, err := p.expect(RPAREN); err != nil {
						return nil, err
					}
					break
				}
			}
			x = &Call{Pos: t.Pos, Fun: x, Args: args}
		case LBRACK:
			p.next()
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			x = &Index{Pos: t.Pos, X: x, I: i}
		case ARROW:
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			x = &Member{Pos: t.Pos, X: x, Name: name.Lit, Arrow: true}
		case DOT:
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			x = &Member{Pos: t.Pos, X: x, Name: name.Lit}
		case INC, DEC:
			p.next()
			if !isLvalue(x) {
				return nil, &ParseError{Pos: t.Pos, Msg: "operand of ++/-- is not assignable"}
			}
			x = &IncDec{Pos: t.Pos, Op: t.Kind, X: x}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 0, 64)
		if err != nil {
			return nil, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("invalid integer literal %q", t.Lit)}
		}
		return &IntLit{Pos: t.Pos, Val: v}, nil
	case CHAR:
		p.next()
		return &IntLit{Pos: t.Pos, Val: int64(t.Lit[0])}, nil
	case STRING:
		p.next()
		return &StrLit{Pos: t.Pos, Val: t.Lit}, nil
	case KwNull:
		p.next()
		return &IntLit{Pos: t.Pos, Val: 0}, nil
	case IDENT:
		p.next()
		return &Ident{Pos: t.Pos, Name: t.Lit}, nil
	case LPAREN:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errorf("expected expression, found %s", describe(t))
}
