package cmini

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// reprint parses src, prints it, parses the output, prints again, and
// checks the two printed forms are identical (print∘parse is idempotent).
func reprint(t *testing.T, src string) string {
	t.Helper()
	f1, err := Parse("a.c", src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	out1 := Print(f1)
	f2, err := Parse("b.c", out1)
	if err != nil {
		t.Fatalf("parse printed output: %v\noutput:\n%s", err, out1)
	}
	out2 := Print(f2)
	if out1 != out2 {
		t.Fatalf("print not idempotent:\nfirst:\n%s\nsecond:\n%s", out1, out2)
	}
	return out1
}

func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		`int x = 1 + 2 * 3;`,
		`static char *log_name = "ServerLog";`,
		`extern int fopen(char *name, char *mode);`,
		`struct pkt { int ttl; char data[64]; };`,
		`int f(int a, int b) { return a > b ? a : b; }`,
		`int g(void) { int i; for (i = 0; i < 10; i++) { continue; } return i; }`,
		`int h(int *p) { *p = *p + 1; return p[0]; }`,
		`int k(struct pkt *p) { p->ttl--; return p->ttl; }`,
		`int m(int a) { a += 2; a <<= 1; a %= 7; return ~a + !a - -a; }`,
		`int n(int c) { if (c) { return 1; } else if (c > 2) { return 2; } else { return 3; } }`,
		`static fn cb; int call_cb(int x) { return cb(x); }`,
		`int s(void) { return sizeof(struct pkt) + sizeof(int); }`,
		`int w(int x) { while (x > 0) { x = x - 1; if (x == 3) { break; } } return x; }`,
	}
	for _, src := range srcs {
		reprint(t, src)
	}
}

func TestPrintNestedUnaryNotAmbiguous(t *testing.T) {
	f := &File{Decls: []Decl{&VarDecl{
		Name: "x", Type: TypeInt,
		Init: &Unary{Op: MINUS, X: &Unary{Op: MINUS, X: &Ident{Name: "y"}}},
	}}}
	out := Print(f)
	f2, err := Parse("t.c", out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	init := f2.Decls[0].(*VarDecl).Init
	u1, ok := init.(*Unary)
	if !ok || u1.Op != MINUS {
		t.Fatalf("outer = %#v, want unary minus (printed %q)", init, out)
	}
	if _, ok := u1.X.(*Unary); !ok {
		t.Fatalf("inner = %#v, want unary minus (printed %q)", u1.X, out)
	}
}

func TestPrintPrecedencePreserved(t *testing.T) {
	// (1+2)*3 must keep its parentheses.
	out := reprint(t, `int x = (1 + 2) * 3;`)
	f, err := Parse("t.c", out)
	if err != nil {
		t.Fatal(err)
	}
	e := f.Decls[0].(*VarDecl).Init.(*Binary)
	if e.Op != STAR {
		t.Fatalf("top = %v, want *; printed %q", e.Op, out)
	}
	if inner, ok := e.X.(*Binary); !ok || inner.Op != PLUS {
		t.Fatalf("inner wrong; printed %q", out)
	}
}

// genExpr builds a random expression of bounded depth for the round-trip
// property test.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return &IntLit{Val: int64(r.Intn(100))}
		case 1:
			return &Ident{Name: string(rune('a' + r.Intn(4)))}
		default:
			return &StrLit{Val: "s"}
		}
	}
	ops := []Tok{PLUS, MINUS, STAR, SLASH, PERCENT, SHL, SHR, LT, GT, LE,
		GE, EQ, NE, LAND, LOR, AMP, PIPE, CARET}
	switch r.Intn(6) {
	case 0, 1, 2:
		return &Binary{Op: ops[r.Intn(len(ops))],
			X: genExpr(r, depth-1), Y: genExpr(r, depth-1)}
	case 3:
		uops := []Tok{MINUS, NOT, TILDE}
		return &Unary{Op: uops[r.Intn(len(uops))], X: genExpr(r, depth-1)}
	case 4:
		return &Cond{C: genExpr(r, depth-1), Then: genExpr(r, depth-1),
			Else: genExpr(r, depth-1)}
	default:
		return &Call{Fun: &Ident{Name: "f"},
			Args: []Expr{genExpr(r, depth-1)}}
	}
}

// exprEqual compares expressions ignoring positions.
func exprEqual(a, b Expr) bool {
	switch a := a.(type) {
	case *IntLit:
		b, ok := b.(*IntLit)
		return ok && a.Val == b.Val
	case *StrLit:
		b, ok := b.(*StrLit)
		return ok && a.Val == b.Val
	case *Ident:
		b, ok := b.(*Ident)
		return ok && a.Name == b.Name
	case *Unary:
		b, ok := b.(*Unary)
		return ok && a.Op == b.Op && exprEqual(a.X, b.X)
	case *Binary:
		b, ok := b.(*Binary)
		return ok && a.Op == b.Op && exprEqual(a.X, b.X) && exprEqual(a.Y, b.Y)
	case *Cond:
		b, ok := b.(*Cond)
		return ok && exprEqual(a.C, b.C) && exprEqual(a.Then, b.Then) && exprEqual(a.Else, b.Else)
	case *Call:
		b, ok := b.(*Call)
		if !ok || !exprEqual(a.Fun, b.Fun) || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !exprEqual(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestQuickExprRoundTrip is the printer's core property: for random
// expression trees, parse(print(e)) == e (so precedence and
// parenthesization in the printer are exactly right).
func TestQuickExprRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	fn := func() bool {
		e := genExpr(r, 4)
		f := &File{Decls: []Decl{&VarDecl{Name: "x", Type: TypeInt, Init: e}}}
		out := Print(f)
		f2, err := Parse("t.c", out)
		if err != nil {
			t.Logf("reparse failed for %q: %v", out, err)
			return false
		}
		got := f2.Decls[0].(*VarDecl).Init
		if !exprEqual(e, got) {
			t.Logf("round trip changed tree; printed %q", out)
			return false
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCloneFileIsDeep(t *testing.T) {
	f := mustParse(t, `
static int counter = 0;
int bump(int n) {
    counter = counter + n;
    return counter;
}
`)
	cp := CloneFile(f)
	RenameGlobals(cp, map[string]string{"counter": "inst1_counter", "bump": "inst1_bump"})
	if f.Decls[0].(*VarDecl).Name != "counter" {
		t.Error("rename of clone mutated original var")
	}
	if f.Decls[1].(*FuncDecl).Name != "bump" {
		t.Error("rename of clone mutated original func")
	}
	orig := Print(f)
	if got := Print(cp); got == orig {
		t.Error("clone print identical after rename")
	}
}

func TestRenameGlobalsRespectsShadowing(t *testing.T) {
	f := mustParse(t, `
int g = 1;
int f(int g) {
    return g;
}
int h(void) {
    int g = 5;
    return g;
}
int uses(void) {
    return g;
}
`)
	RenameGlobals(f, map[string]string{"g": "renamed_g"})
	out := Print(f)
	f2, err := Parse("t.c", out)
	if err != nil {
		t.Fatal(err)
	}
	// f's parameter and h's local must still be g; uses() must refer to
	// renamed_g.
	fDecl := f2.Decls[1].(*FuncDecl)
	if fDecl.Params[0].Name != "g" {
		t.Errorf("parameter renamed: %q", fDecl.Params[0].Name)
	}
	ret := fDecl.Body.Stmts[0].(*ReturnStmt).X.(*Ident)
	if ret.Name != "g" {
		t.Errorf("shadowed ref renamed: %q", ret.Name)
	}
	usesRet := f2.Decls[3].(*FuncDecl).Body.Stmts[0].(*ReturnStmt).X.(*Ident)
	if usesRet.Name != "renamed_g" {
		t.Errorf("global ref not renamed: %q", usesRet.Name)
	}
}

func TestRenameGlobalsDeclStmtInitSeesOuter(t *testing.T) {
	// "int x = x + 1;" as a local: the initializer refers to the global x.
	f := mustParse(t, `
int x = 10;
int f(void) {
    int x = x + 1;
    return x;
}
`)
	RenameGlobals(f, map[string]string{"x": "gx"})
	fd := f.Decls[1].(*FuncDecl)
	ds := fd.Body.Stmts[0].(*DeclStmt)
	add := ds.Init.(*Binary)
	if add.X.(*Ident).Name != "gx" {
		t.Errorf("initializer ref = %q, want gx", add.X.(*Ident).Name)
	}
	ret := fd.Body.Stmts[1].(*ReturnStmt).X.(*Ident)
	if ret.Name != "x" {
		t.Errorf("local ref = %q, want x", ret.Name)
	}
}

func TestGlobalRefs(t *testing.T) {
	f := mustParse(t, `
extern int imported(int x);
static int local_helper(int x) { return x; }
int mine = 0;
int f(int p) {
    int l = p;
    return imported(l) + local_helper(mine);
}
`)
	refs := GlobalRefs(f)
	for _, want := range []string{"imported", "local_helper", "mine"} {
		if !refs[want] {
			t.Errorf("missing ref %q; got %v", want, refs)
		}
	}
	for _, dontWant := range []string{"p", "l", "x"} {
		if refs[dontWant] {
			t.Errorf("locals/params leaked into refs: %q", dontWant)
		}
	}
}
