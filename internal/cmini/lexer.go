package cmini

import (
	"fmt"
	"strings"
)

// Lexer turns cmini source text into a stream of tokens.
type Lexer struct {
	file string
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src. The file name is used in positions
// and diagnostics only.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

// LexError is a lexical error with a source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: p}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.off]
		if kw, ok := keywords[word]; ok {
			return Token{Kind: kw, Lit: word, Pos: p}, nil
		}
		return Token{Kind: IDENT, Lit: word, Pos: p}, nil
	case isDigit(c):
		start := l.off
		hex := false
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			hex = true
			l.advance()
			l.advance()
		}
		for l.off < len(l.src) {
			c := l.peek()
			if isDigit(c) || (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))) {
				l.advance()
			} else {
				break
			}
		}
		return Token{Kind: INT, Lit: l.src[start:l.off], Pos: p}, nil
	case c == '"':
		return l.lexString(p)
	case c == '\'':
		return l.lexChar(p)
	}
	return l.lexOperator(p)
}

func (l *Lexer) lexString(p Pos) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, &LexError{Pos: p, Msg: "unterminated string literal"}
		}
		c := l.advance()
		if c == '"' {
			return Token{Kind: STRING, Lit: b.String(), Pos: p}, nil
		}
		if c == '\\' {
			if l.off >= len(l.src) {
				return Token{}, &LexError{Pos: p, Msg: "unterminated string escape"}
			}
			e, err := unescape(l.advance())
			if err != nil {
				return Token{}, &LexError{Pos: p, Msg: err.Error()}
			}
			b.WriteByte(e)
			continue
		}
		if c == '\n' {
			return Token{}, &LexError{Pos: p, Msg: "newline in string literal"}
		}
		b.WriteByte(c)
	}
}

func (l *Lexer) lexChar(p Pos) (Token, error) {
	l.advance() // opening quote
	if l.off >= len(l.src) {
		return Token{}, &LexError{Pos: p, Msg: "unterminated char literal"}
	}
	c := l.advance()
	if c == '\\' {
		if l.off >= len(l.src) {
			return Token{}, &LexError{Pos: p, Msg: "unterminated char escape"}
		}
		e, err := unescape(l.advance())
		if err != nil {
			return Token{}, &LexError{Pos: p, Msg: err.Error()}
		}
		c = e
	}
	if l.off >= len(l.src) || l.advance() != '\'' {
		return Token{}, &LexError{Pos: p, Msg: "unterminated char literal"}
	}
	return Token{Kind: CHAR, Lit: string(c), Pos: p}, nil
}

func unescape(c byte) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, fmt.Errorf("unknown escape \\%c", c)
}

// twoCharOps maps a two-byte operator to its token kind; threeCharOps
// likewise for the three-byte shift-assign forms.
var threeCharOps = map[string]Tok{"<<=": SHLEQ, ">>=": SHREQ}

var twoCharOps = map[string]Tok{
	"+=": ADDEQ, "-=": SUBEQ, "*=": MULEQ, "/=": DIVEQ, "%=": MODEQ,
	"&=": ANDEQ, "|=": OREQ, "^=": XOREQ, "++": INC, "--": DEC,
	"<<": SHL, ">>": SHR, "<=": LE, ">=": GE, "==": EQ, "!=": NE,
	"&&": LAND, "||": LOR, "->": ARROW,
}

var oneCharOps = map[byte]Tok{
	'(': LPAREN, ')': RPAREN, '{': LBRACE, '}': RBRACE, '[': LBRACK,
	']': RBRACK, ';': SEMI, ',': COMMA, '=': ASSIGN, '+': PLUS, '-': MINUS,
	'*': STAR, '/': SLASH, '%': PERCENT, '&': AMP, '|': PIPE, '^': CARET,
	'~': TILDE, '!': NOT, '<': LT, '>': GT, '?': QUESTION, ':': COLON,
	'.': DOT,
}

func (l *Lexer) lexOperator(p Pos) (Token, error) {
	if l.off+2 < len(l.src) {
		if k, ok := threeCharOps[l.src[l.off:l.off+3]]; ok {
			l.advance()
			l.advance()
			l.advance()
			return Token{Kind: k, Pos: p}, nil
		}
	}
	if l.off+1 < len(l.src) {
		if k, ok := twoCharOps[l.src[l.off:l.off+2]]; ok {
			l.advance()
			l.advance()
			return Token{Kind: k, Pos: p}, nil
		}
	}
	c := l.peek()
	if k, ok := oneCharOps[c]; ok {
		l.advance()
		return Token{Kind: k, Pos: p}, nil
	}
	return Token{}, &LexError{Pos: p, Msg: fmt.Sprintf("unexpected character %q", c)}
}

// LexAll tokenizes the whole input, returning every token up to and
// excluding EOF.
func LexAll(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
