package cmini

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseGlobalsAndExterns(t *testing.T) {
	f := mustParse(t, `
int counter = 0;
static int hidden;
extern int imported;
char *name = "web";
int table[16];
`)
	if len(f.Decls) != 5 {
		t.Fatalf("got %d decls, want 5", len(f.Decls))
	}
	v0 := f.Decls[0].(*VarDecl)
	if v0.Name != "counter" || v0.Static || v0.Extern || v0.Init == nil {
		t.Errorf("counter: %+v", v0)
	}
	v1 := f.Decls[1].(*VarDecl)
	if !v1.Static {
		t.Error("hidden should be static")
	}
	v2 := f.Decls[2].(*VarDecl)
	if !v2.Extern {
		t.Error("imported should be extern")
	}
	v4 := f.Decls[4].(*VarDecl)
	arr, ok := v4.Type.(*Array)
	if !ok || arr.Len != 16 {
		t.Errorf("table type = %v", PrintType(v4.Type))
	}
}

func TestParseFunctionAndPrototype(t *testing.T) {
	f := mustParse(t, `
int serve_file(int s, char *path);
int serve_web(int s, char *path) {
    if (path[0] == '/') {
        return serve_file(s, path);
    }
    return 0 - 1;
}
`)
	proto := f.Decls[0].(*FuncDecl)
	if !proto.Extern || proto.Body != nil {
		t.Errorf("prototype should be extern with no body: %+v", proto)
	}
	def := f.Decls[1].(*FuncDecl)
	if def.Extern || def.Body == nil || len(def.Params) != 2 {
		t.Errorf("definition wrong: %+v", def)
	}
	if PrintType(def.Params[1].Type) != "char *" {
		t.Errorf("param type = %q", PrintType(def.Params[1].Type))
	}
}

func TestParseStructAndMemberAccess(t *testing.T) {
	f := mustParse(t, `
struct packet {
    int ttl;
    int len;
    char data[64];
};
int dec_ttl(struct packet *p) {
    p->ttl = p->ttl - 1;
    return p->ttl;
}
`)
	sd := f.Decls[0].(*StructDecl)
	if sd.Name != "packet" || len(sd.Fields) != 3 {
		t.Fatalf("struct: %+v", sd)
	}
	if arr, ok := sd.Fields[2].Type.(*Array); !ok || arr.Len != 64 {
		t.Errorf("data field type = %v", PrintType(sd.Fields[2].Type))
	}
	fd := f.Decls[1].(*FuncDecl)
	stmt := fd.Body.Stmts[0].(*ExprStmt)
	asg := stmt.X.(*Assign)
	if _, ok := asg.LHS.(*Member); !ok {
		t.Errorf("LHS should be member access: %T", asg.LHS)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, `int v = 1 + 2 * 3 << 1 == 14;`)
	// ((1 + (2*3)) << 1) == 14
	e := f.Decls[0].(*VarDecl).Init.(*Binary)
	if e.Op != EQ {
		t.Fatalf("top op = %v, want ==", e.Op)
	}
	shl := e.X.(*Binary)
	if shl.Op != SHL {
		t.Fatalf("next op = %v, want <<", shl.Op)
	}
	add := shl.X.(*Binary)
	if add.Op != PLUS {
		t.Fatalf("next op = %v, want +", add.Op)
	}
	mul := add.Y.(*Binary)
	if mul.Op != STAR {
		t.Fatalf("inner op = %v, want *", mul.Op)
	}
}

func TestParseControlFlow(t *testing.T) {
	f := mustParse(t, `
int f(int n) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) {
            continue;
        } else if (i > 100) {
            break;
        }
        sum += i;
    }
    while (sum > 1000) {
        sum = sum / 2;
    }
    return sum;
}
`)
	fd := f.Decls[0].(*FuncDecl)
	if len(fd.Body.Stmts) != 4 {
		t.Fatalf("got %d stmts, want 4", len(fd.Body.Stmts))
	}
	forStmt := fd.Body.Stmts[1].(*ForStmt)
	if forStmt.Init == nil || forStmt.Cond == nil || forStmt.Post == nil {
		t.Error("for loop parts missing")
	}
	ifStmt := forStmt.Body.Stmts[0].(*IfStmt)
	if _, ok := ifStmt.Else.(*IfStmt); !ok {
		t.Errorf("else-if should be IfStmt, got %T", ifStmt.Else)
	}
}

func TestParseTernaryAndCalls(t *testing.T) {
	f := mustParse(t, `
int g(int x);
int f(int x) {
    return x > 0 ? g(x) : g(0 - x);
}
`)
	fd := f.Decls[1].(*FuncDecl)
	ret := fd.Body.Stmts[0].(*ReturnStmt)
	c := ret.X.(*Cond)
	if _, ok := c.Then.(*Call); !ok {
		t.Errorf("then branch should be call, got %T", c.Then)
	}
}

func TestParsePointerOps(t *testing.T) {
	f := mustParse(t, `
int f(int *p, int **pp) {
    *p = 5;
    int *q = &*p;
    return **pp + p[3];
}
`)
	fd := f.Decls[0].(*FuncDecl)
	if PrintType(fd.Params[1].Type) != "int **" {
		t.Errorf("pp type = %q", PrintType(fd.Params[1].Type))
	}
}

func TestParseFnPointer(t *testing.T) {
	f := mustParse(t, `
static fn handler;
int dispatch(int x) {
    return handler(x);
}
int set_handler(fn h) {
    handler = h;
    return 0;
}
`)
	v := f.Decls[0].(*VarDecl)
	if p, ok := v.Type.(*Prim); !ok || p.Kind != Fn {
		t.Errorf("handler type = %v", PrintType(v.Type))
	}
}

func TestParseSizeof(t *testing.T) {
	f := mustParse(t, `
struct pkt { int a; int b; };
extern int alloc(int n);
int f(void) {
    return alloc(sizeof(struct pkt));
}
`)
	fd := f.Decls[2].(*FuncDecl)
	call := fd.Body.Stmts[0].(*ReturnStmt).X.(*Call)
	if _, ok := call.Args[0].(*SizeofExpr); !ok {
		t.Errorf("arg should be sizeof, got %T", call.Args[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing semi", "int x = 1", "expected"},
		{"extern with init", "extern int x = 1;", "cannot have an initializer"},
		{"extern with body", "extern int f(void) { return 1; }", "cannot have a body"},
		{"static extern", "static extern int x;", "both static and extern"},
		{"assign to literal", "int f(void) { 3 = 4; return 0; }", "not assignable"},
		{"address of literal", "int f(void) { int *p = &3; return 0; }", "cannot take address"},
		{"bad array len", "int a[0];", "invalid array length"},
		{"dup struct field", "struct s { int a; int a; };", "duplicate field"},
		{"garbage", "$$$", "unexpected character"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("t.c", c.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", c.src, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("web.c", "int f(void) {\n  return ;;\n}")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "web.c:2") {
		t.Errorf("error %q should carry position web.c:2", err)
	}
}
