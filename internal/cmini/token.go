// Package cmini implements the C subset in which Knit components are
// written: a lexer, parser, AST, and source printer.
//
// The language covers the features Knit manipulates when it links and
// flattens components — global functions and variables, static (file-local)
// definitions, extern declarations (imports), structs, arrays, pointers,
// strings, and the usual expression and statement forms. It deliberately
// omits the parts of C that do not matter for component composition
// (typedefs, unions, bitfields, varargs beyond printf-style builtins,
// preprocessor).
//
// The memory model is word-oriented: every scalar (int, char, pointer,
// function pointer) occupies one word, struct fields and array elements are
// laid out in consecutive words, and sizeof counts words. This keeps the
// compiler and simulated machine simple without changing anything Knit
// cares about.
package cmini

import "fmt"

// Tok identifies a lexical token kind.
type Tok int

// Token kinds.
const (
	EOF Tok = iota
	IDENT
	INT    // integer literal
	CHAR   // character literal
	STRING // string literal

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	SEMI     // ;
	COMMA    // ,
	ASSIGN   // =
	ADDEQ    // +=
	SUBEQ    // -=
	MULEQ    // *=
	DIVEQ    // /=
	MODEQ    // %=
	ANDEQ    // &=
	OREQ     // |=
	XOREQ    // ^=
	SHLEQ    // <<=
	SHREQ    // >>=
	INC      // ++
	DEC      // --
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	AMP      // &
	PIPE     // |
	CARET    // ^
	TILDE    // ~
	NOT      // !
	SHL      // <<
	SHR      // >>
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	EQ       // ==
	NE       // !=
	LAND     // &&
	LOR      // ||
	QUESTION // ?
	COLON    // :
	ARROW    // ->
	DOT      // .

	// Keywords.
	KwInt
	KwChar
	KwVoid
	KwFn // function-pointer type (cmini extension replacing C's fn-ptr syntax)
	KwStruct
	KwStatic
	KwExtern
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwSizeof
	KwNull
)

var tokNames = map[Tok]string{
	EOF: "EOF", IDENT: "identifier", INT: "int literal", CHAR: "char literal",
	STRING: "string literal",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACK: "[",
	RBRACK: "]", SEMI: ";", COMMA: ",", ASSIGN: "=", ADDEQ: "+=",
	SUBEQ: "-=", MULEQ: "*=", DIVEQ: "/=", MODEQ: "%=", ANDEQ: "&=",
	OREQ: "|=", XOREQ: "^=", SHLEQ: "<<=", SHREQ: ">>=", INC: "++",
	DEC: "--", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", PIPE: "|", CARET: "^", TILDE: "~", NOT: "!", SHL: "<<",
	SHR: ">>", LT: "<", GT: ">", LE: "<=", GE: ">=", EQ: "==", NE: "!=",
	LAND: "&&", LOR: "||", QUESTION: "?", COLON: ":", ARROW: "->", DOT: ".",
	KwInt: "int", KwChar: "char", KwVoid: "void", KwFn: "fn",
	KwStruct: "struct", KwStatic: "static", KwExtern: "extern", KwIf: "if",
	KwElse: "else", KwWhile: "while", KwFor: "for", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue", KwSizeof: "sizeof",
	KwNull: "NULL",
}

// String returns a human-readable name for the token kind.
func (t Tok) String() string {
	if s, ok := tokNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Tok(%d)", int(t))
}

var keywords = map[string]Tok{
	"int": KwInt, "char": KwChar, "void": KwVoid, "fn": KwFn,
	"struct": KwStruct, "static": KwStatic, "extern": KwExtern,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"sizeof": KwSizeof, "NULL": KwNull,
}

// Pos is a source position within a named file.
type Pos struct {
	File string
	Line int
	Col  int
}

// String formats the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexed token with its position and literal text.
type Token struct {
	Kind Tok
	Lit  string // literal text for IDENT, INT, CHAR, STRING
	Pos  Pos
}
