package cmini

import (
	"fmt"
	"strings"
)

// Print renders a file back to cmini source. The output is parseable and
// semantically identical to the input; it is what Knit's flattener emits
// as the merged compilation unit.
func Print(f *File) string {
	var b strings.Builder
	p := printer{b: &b}
	for i, d := range f.Decls {
		if i > 0 {
			b.WriteString("\n")
		}
		p.decl(d)
	}
	return b.String()
}

// PrintType renders a type.
func PrintType(t Type) string {
	switch t := t.(type) {
	case *Prim:
		switch t.Kind {
		case Int:
			return "int"
		case Char:
			return "char"
		case Void:
			return "void"
		case Fn:
			return "fn"
		}
	case *Pointer:
		if _, nested := t.Elem.(*Pointer); nested {
			return PrintType(t.Elem) + "*"
		}
		return PrintType(t.Elem) + " *"
	case *Array:
		return fmt.Sprintf("%s[%d]", PrintType(t.Elem), t.Len)
	case *StructType:
		return "struct " + t.Name
	}
	return "?type?"
}

type printer struct {
	b      *strings.Builder
	indent int
}

func (p *printer) nl() {
	p.b.WriteString("\n")
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("    ")
	}
}

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *StructDecl:
		fmt.Fprintf(p.b, "struct %s {", d.Name)
		p.indent++
		for _, f := range d.Fields {
			p.nl()
			p.fieldDecl(f)
		}
		p.indent--
		p.nl()
		p.b.WriteString("};\n")
	case *VarDecl:
		if d.Static {
			p.b.WriteString("static ")
		}
		if d.Extern {
			p.b.WriteString("extern ")
		}
		p.varType(d.Name, d.Type)
		if d.Init != nil {
			p.b.WriteString(" = ")
			p.expr(d.Init, 0)
		}
		p.b.WriteString(";\n")
	case *FuncDecl:
		if d.Static {
			p.b.WriteString("static ")
		}
		if d.Extern && d.Body == nil {
			p.b.WriteString("extern ")
		}
		p.typePrefix(d.Result)
		p.b.WriteString(d.Name)
		p.b.WriteString("(")
		if len(d.Params) == 0 {
			p.b.WriteString("void")
		}
		for i, prm := range d.Params {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.typePrefix(prm.Type)
			p.b.WriteString(prm.Name)
		}
		p.b.WriteString(")")
		if d.Body == nil {
			p.b.WriteString(";\n")
			return
		}
		p.b.WriteString(" ")
		p.block(d.Body)
		p.b.WriteString("\n")
	}
}

// typePrefix prints a type followed by a space, as it appears before a
// declared name ("int ", "char *", "struct pkt *").
func (p *printer) typePrefix(t Type) {
	if t == nil {
		p.b.WriteString("void ")
		return
	}
	switch t := t.(type) {
	case *Pointer:
		p.typePrefix(t.Elem)
		p.b.WriteString("*")
	default:
		p.b.WriteString(PrintType(t))
		p.b.WriteString(" ")
	}
}

func (p *printer) fieldDecl(f Field) {
	if arr, ok := f.Type.(*Array); ok {
		p.typePrefix(arr.Elem)
		fmt.Fprintf(p.b, "%s[%d];", f.Name, arr.Len)
		return
	}
	p.typePrefix(f.Type)
	p.b.WriteString(f.Name)
	p.b.WriteString(";")
}

func (p *printer) varType(name string, t Type) {
	if arr, ok := t.(*Array); ok {
		p.typePrefix(arr.Elem)
		fmt.Fprintf(p.b, "%s[%d]", name, arr.Len)
		return
	}
	p.typePrefix(t)
	p.b.WriteString(name)
}

func (p *printer) block(b *Block) {
	p.b.WriteString("{")
	p.indent++
	for _, s := range b.Stmts {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.b.WriteString("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.block(s)
	case *DeclStmt:
		p.varType(s.Name, s.Type)
		if s.Init != nil {
			p.b.WriteString(" = ")
			p.expr(s.Init, 0)
		}
		p.b.WriteString(";")
	case *ExprStmt:
		p.expr(s.X, 0)
		p.b.WriteString(";")
	case *IfStmt:
		p.b.WriteString("if (")
		p.expr(s.Cond, 0)
		p.b.WriteString(") ")
		p.block(s.Then)
		if s.Else != nil {
			p.b.WriteString(" else ")
			if elif, ok := s.Else.(*IfStmt); ok {
				p.stmt(elif)
			} else {
				p.block(s.Else.(*Block))
			}
		}
	case *WhileStmt:
		p.b.WriteString("while (")
		p.expr(s.Cond, 0)
		p.b.WriteString(") ")
		p.block(s.Body)
	case *ForStmt:
		p.b.WriteString("for (")
		switch init := s.Init.(type) {
		case *DeclStmt:
			p.varType(init.Name, init.Type)
			if init.Init != nil {
				p.b.WriteString(" = ")
				p.expr(init.Init, 0)
			}
		case *ExprStmt:
			p.expr(init.X, 0)
		}
		p.b.WriteString("; ")
		if s.Cond != nil {
			p.expr(s.Cond, 0)
		}
		p.b.WriteString("; ")
		if s.Post != nil {
			p.expr(s.Post, 0)
		}
		p.b.WriteString(") ")
		p.block(s.Body)
	case *ReturnStmt:
		p.b.WriteString("return")
		if s.X != nil {
			p.b.WriteString(" ")
			p.expr(s.X, 0)
		}
		p.b.WriteString(";")
	case *BreakStmt:
		p.b.WriteString("break;")
	case *ContinueStmt:
		p.b.WriteString("continue;")
	}
}

// expr prints e, parenthesizing when e's precedence is below min.
func (p *printer) expr(e Expr, min int) {
	switch e := e.(type) {
	case *IntLit:
		fmt.Fprintf(p.b, "%d", e.Val)
	case *StrLit:
		fmt.Fprintf(p.b, "%q", e.Val)
	case *Ident:
		p.b.WriteString(e.Name)
	case *Unary:
		paren := min > 11
		if paren {
			p.b.WriteString("(")
		}
		p.b.WriteString(e.Op.String())
		p.expr(e.X, 12) // parenthesize nested unary so "- -x" never prints as "--x"
		if paren {
			p.b.WriteString(")")
		}
	case *Binary:
		prec := binPrec[e.Op]
		paren := prec < min
		if paren {
			p.b.WriteString("(")
		}
		p.expr(e.X, prec)
		fmt.Fprintf(p.b, " %s ", e.Op)
		p.expr(e.Y, prec+1)
		if paren {
			p.b.WriteString(")")
		}
	case *Assign:
		paren := min > 0
		if paren {
			p.b.WriteString("(")
		}
		p.expr(e.LHS, 11)
		if e.Op == ASSIGN {
			p.b.WriteString(" = ")
		} else {
			fmt.Fprintf(p.b, " %s ", e.Op)
		}
		p.expr(e.RHS, 0)
		if paren {
			p.b.WriteString(")")
		}
	case *IncDec:
		p.expr(e.X, 12)
		p.b.WriteString(e.Op.String())
	case *Call:
		p.expr(e.Fun, 12)
		p.b.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(a, 0)
		}
		p.b.WriteString(")")
	case *Index:
		p.expr(e.X, 12)
		p.b.WriteString("[")
		p.expr(e.I, 0)
		p.b.WriteString("]")
	case *Member:
		p.expr(e.X, 12)
		if e.Arrow {
			p.b.WriteString("->")
		} else {
			p.b.WriteString(".")
		}
		p.b.WriteString(e.Name)
	case *Cond:
		paren := min > 0
		if paren {
			p.b.WriteString("(")
		}
		p.expr(e.C, 1)
		p.b.WriteString(" ? ")
		p.expr(e.Then, 0)
		p.b.WriteString(" : ")
		p.expr(e.Else, 0)
		if paren {
			p.b.WriteString(")")
		}
	case *SizeofExpr:
		fmt.Fprintf(p.b, "sizeof(%s)", sizeofTypeName(e.Type))
	}
}

func sizeofTypeName(t Type) string {
	s := PrintType(t)
	return strings.TrimRight(s, " *") + strings.Repeat("*", strings.Count(s, "*"))
}
