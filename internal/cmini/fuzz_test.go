package cmini

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickCminiParserNeverPanics: random C-ish token soup must never
// panic the parser.
func TestQuickCminiParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	pieces := []string{
		"int", "char", "void", "fn", "struct", "static", "extern", "if",
		"else", "while", "for", "return", "break", "continue", "sizeof",
		"{", "}", "(", ")", "[", "]", ";", ",", "*", "&", "+", "-", "/",
		"%", "=", "==", "<", ">", "->", ".", "?", ":", "!", "~", "x", "y",
		"f", "42", `"s"`, "'c'", "++", "--", "<<", ">>", "&&", "||",
		"+=", "\n", "/*c*/", "//l\n",
	}
	fn := func() bool {
		var b strings.Builder
		n := r.Intn(80)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
			b.WriteString(" ")
		}
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("parser panicked on %q: %v", b.String(), p)
			}
		}()
		_, _ = Parse("fuzz.c", b.String())
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickCminiLexerNeverPanics: arbitrary bytes.
func TestQuickCminiLexerNeverPanics(t *testing.T) {
	fn := func(data []byte) bool {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("lexer panicked on %q: %v", data, p)
			}
		}()
		_, _ = LexAll("fuzz.c", string(data))
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
