package cmini

import (
	"strings"
	"testing"
)

// kitchenSink uses every statement and expression form, so clone/rename
// walk every node type.
const kitchenSink = `
struct pair { int a; int b; };
int table[4];
static int counter = 0;
extern int external_fn(int x);
int helper(int x) { return x; }

int everything(int n, int *p, struct pair *pr) {
    int local = n > 0 ? helper(n) : -n;
    int arr[3];
    arr[0] = 1;
    for (counter = 0; counter < n; counter++) {
        if (counter % 2 == 0) {
            continue;
        } else if (counter > 10) {
            break;
        }
        local += arr[counter % 3];
    }
    while (local > 100) {
        local >>= 1;
    }
    {
        int shadow = local;
        local = shadow + table[1];
    }
    pr->a = local;
    pr->b = (*p)++;
    local -= external_fn(pr->a & ~n | (n ^ 3));
    int sz = sizeof(struct pair) + sizeof(int);
    char *msg = "literal";
    local += msg[0] + sz + !n;
    counter--;
    return local;
}
`

func TestCloneEveryNodeType(t *testing.T) {
	f := mustParse(t, kitchenSink)
	cp := CloneFile(f)
	if Print(f) != Print(cp) {
		t.Fatal("clone prints differently from original")
	}
	// Mutating the clone must not affect the original.
	RenameGlobals(cp, map[string]string{
		"everything": "X_everything", "helper": "X_helper",
		"counter": "X_counter", "table": "X_table",
		"external_fn": "X_external_fn",
	})
	orig := Print(f)
	if strings.Contains(orig, "X_") {
		t.Error("renaming the clone mutated the original")
	}
	mutated := Print(cp)
	for _, want := range []string{"X_everything", "X_helper", "X_counter",
		"X_table", "X_external_fn"} {
		if !strings.Contains(mutated, want) {
			t.Errorf("clone missing renamed %s", want)
		}
	}
	// No occurrences of the old global names may remain as identifiers.
	reparsed, err := Parse("m.c", mutated)
	if err != nil {
		t.Fatalf("mutated clone does not reparse: %v", err)
	}
	refs := GlobalRefs(reparsed)
	for _, gone := range []string{"helper", "counter", "table", "external_fn"} {
		if refs[gone] {
			t.Errorf("stale reference to %q after rename", gone)
		}
	}
}

func TestRenamePreservesSemantics(t *testing.T) {
	// Renaming globals must not change what the program computes: check
	// by comparing printed bodies modulo the renaming map.
	f := mustParse(t, kitchenSink)
	cp := CloneFile(f)
	mapping := map[string]string{
		"everything": "aa", "helper": "bb", "counter": "cc",
		"table": "dd", "external_fn": "ee",
	}
	RenameGlobals(cp, mapping)
	out := Print(cp)
	undone := out
	for from, to := range mapping {
		undone = strings.ReplaceAll(undone, to, from)
	}
	if undone != Print(f) {
		t.Errorf("rename is not a pure substitution:\n%s\nvs\n%s", undone, Print(f))
	}
}

func TestGlobalRefsKitchenSink(t *testing.T) {
	f := mustParse(t, kitchenSink)
	refs := GlobalRefs(f)
	for _, want := range []string{"helper", "counter", "table", "external_fn"} {
		if !refs[want] {
			t.Errorf("missing ref %q", want)
		}
	}
	for _, local := range []string{"local", "arr", "shadow", "sz", "msg", "n", "p", "pr", "x"} {
		if refs[local] {
			t.Errorf("local %q leaked into global refs", local)
		}
	}
}

func TestCloneNilBody(t *testing.T) {
	f := mustParse(t, `extern int proto(int x);`)
	cp := CloneFile(f)
	if cp.Decls[0].(*FuncDecl).Body != nil {
		t.Error("prototype clone grew a body")
	}
}
