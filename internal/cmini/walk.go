package cmini

// This file provides AST utilities used by Knit's linker and flattener:
// deep cloning (so one unit's source can be instantiated several times)
// and identifier rewriting (the AST-level analogue of objcopy symbol
// renaming).

// CloneFile returns a deep copy of f.
func CloneFile(f *File) *File {
	out := &File{Name: f.Name}
	for _, d := range f.Decls {
		out.Decls = append(out.Decls, CloneDecl(d))
	}
	return out
}

// CloneDecl returns a deep copy of d.
func CloneDecl(d Decl) Decl {
	switch d := d.(type) {
	case *StructDecl:
		cp := *d
		cp.Fields = append([]Field(nil), d.Fields...)
		return &cp
	case *VarDecl:
		cp := *d
		cp.Init = cloneExpr(d.Init)
		return &cp
	case *FuncDecl:
		cp := *d
		cp.Params = append([]Param(nil), d.Params...)
		cp.Body = cloneBlock(d.Body)
		return &cp
	}
	return d
}

func cloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	out := &Block{Pos: b.Pos}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, cloneStmt(s))
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Block:
		return cloneBlock(s)
	case *DeclStmt:
		cp := *s
		cp.Init = cloneExpr(s.Init)
		return &cp
	case *ExprStmt:
		cp := *s
		cp.X = cloneExpr(s.X)
		return &cp
	case *IfStmt:
		cp := *s
		cp.Cond = cloneExpr(s.Cond)
		cp.Then = cloneBlock(s.Then)
		if s.Else != nil {
			cp.Else = cloneStmt(s.Else)
		}
		return &cp
	case *WhileStmt:
		cp := *s
		cp.Cond = cloneExpr(s.Cond)
		cp.Body = cloneBlock(s.Body)
		return &cp
	case *ForStmt:
		cp := *s
		if s.Init != nil {
			cp.Init = cloneStmt(s.Init)
		}
		cp.Cond = cloneExpr(s.Cond)
		cp.Post = cloneExpr(s.Post)
		cp.Body = cloneBlock(s.Body)
		return &cp
	case *ReturnStmt:
		cp := *s
		cp.X = cloneExpr(s.X)
		return &cp
	case *BreakStmt:
		cp := *s
		return &cp
	case *ContinueStmt:
		cp := *s
		return &cp
	}
	return s
}

func cloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *IntLit:
		cp := *e
		return &cp
	case *StrLit:
		cp := *e
		return &cp
	case *Ident:
		cp := *e
		return &cp
	case *Unary:
		cp := *e
		cp.X = cloneExpr(e.X)
		return &cp
	case *Binary:
		cp := *e
		cp.X = cloneExpr(e.X)
		cp.Y = cloneExpr(e.Y)
		return &cp
	case *Assign:
		cp := *e
		cp.LHS = cloneExpr(e.LHS)
		cp.RHS = cloneExpr(e.RHS)
		return &cp
	case *IncDec:
		cp := *e
		cp.X = cloneExpr(e.X)
		return &cp
	case *Call:
		cp := *e
		cp.Fun = cloneExpr(e.Fun)
		cp.Args = nil
		for _, a := range e.Args {
			cp.Args = append(cp.Args, cloneExpr(a))
		}
		return &cp
	case *Index:
		cp := *e
		cp.X = cloneExpr(e.X)
		cp.I = cloneExpr(e.I)
		return &cp
	case *Member:
		cp := *e
		cp.X = cloneExpr(e.X)
		return &cp
	case *Cond:
		cp := *e
		cp.C = cloneExpr(e.C)
		cp.Then = cloneExpr(e.Then)
		cp.Else = cloneExpr(e.Else)
		return &cp
	case *SizeofExpr:
		cp := *e
		return &cp
	}
	return e
}

// RenameGlobals rewrites, in place, every reference to a global name
// according to the mapping. It renames top-level definitions whose names
// appear in the map, and every Ident occurrence that is not shadowed by a
// local variable or parameter. Struct names and field names are untouched.
func RenameGlobals(f *File, mapping map[string]string) {
	if len(mapping) == 0 {
		return
	}
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *VarDecl:
			if to, ok := mapping[d.Name]; ok {
				d.Name = to
			}
			renameExpr(d.Init, mapping, map[string]bool{})
		case *FuncDecl:
			if to, ok := mapping[d.Name]; ok {
				d.Name = to
			}
			scope := map[string]bool{}
			for _, p := range d.Params {
				scope[p.Name] = true
			}
			renameBlock(d.Body, mapping, scope)
		}
	}
}

// renameBlock rewrites idents in b. scope holds names shadowed by locals;
// it is copied per block so shadowing is lexical.
func renameBlock(b *Block, mapping map[string]string, scope map[string]bool) {
	if b == nil {
		return
	}
	inner := copyScope(scope)
	for _, s := range b.Stmts {
		renameStmt(s, mapping, inner)
	}
}

func copyScope(scope map[string]bool) map[string]bool {
	out := make(map[string]bool, len(scope))
	for k := range scope {
		out[k] = true
	}
	return out
}

func renameStmt(s Stmt, mapping map[string]string, scope map[string]bool) {
	switch s := s.(type) {
	case *Block:
		renameBlock(s, mapping, scope)
	case *DeclStmt:
		renameExpr(s.Init, mapping, scope)
		scope[s.Name] = true // shadows the global from here on
	case *ExprStmt:
		renameExpr(s.X, mapping, scope)
	case *IfStmt:
		renameExpr(s.Cond, mapping, scope)
		renameBlock(s.Then, mapping, scope)
		if s.Else != nil {
			renameStmt(s.Else, mapping, scope)
		}
	case *WhileStmt:
		renameExpr(s.Cond, mapping, scope)
		renameBlock(s.Body, mapping, scope)
	case *ForStmt:
		forScope := copyScope(scope)
		if s.Init != nil {
			renameStmt(s.Init, mapping, forScope)
		}
		renameExpr(s.Cond, mapping, forScope)
		renameExpr(s.Post, mapping, forScope)
		renameBlock(s.Body, mapping, forScope)
	case *ReturnStmt:
		renameExpr(s.X, mapping, scope)
	}
}

func renameExpr(e Expr, mapping map[string]string, scope map[string]bool) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *Ident:
		if scope[e.Name] {
			return
		}
		if to, ok := mapping[e.Name]; ok {
			e.Name = to
		}
	case *Unary:
		renameExpr(e.X, mapping, scope)
	case *Binary:
		renameExpr(e.X, mapping, scope)
		renameExpr(e.Y, mapping, scope)
	case *Assign:
		renameExpr(e.LHS, mapping, scope)
		renameExpr(e.RHS, mapping, scope)
	case *IncDec:
		renameExpr(e.X, mapping, scope)
	case *Call:
		renameExpr(e.Fun, mapping, scope)
		for _, a := range e.Args {
			renameExpr(a, mapping, scope)
		}
	case *Index:
		renameExpr(e.X, mapping, scope)
		renameExpr(e.I, mapping, scope)
	case *Member:
		renameExpr(e.X, mapping, scope)
	case *Cond:
		renameExpr(e.C, mapping, scope)
		renameExpr(e.Then, mapping, scope)
		renameExpr(e.Else, mapping, scope)
	}
}

// GlobalRefs returns the set of global names referenced from function
// bodies and initializer expressions of f, excluding references shadowed
// by locals or parameters. It reports raw references; the caller decides
// which are imports and which resolve within the file.
func GlobalRefs(f *File) map[string]bool {
	refs := map[string]bool{}
	collect := func(e Expr, scope map[string]bool) {
		collectRefs(e, scope, refs)
	}
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *VarDecl:
			collect(d.Init, map[string]bool{})
		case *FuncDecl:
			scope := map[string]bool{}
			for _, p := range d.Params {
				scope[p.Name] = true
			}
			collectBlock(d.Body, scope, refs)
		}
	}
	return refs
}

func collectBlock(b *Block, scope map[string]bool, refs map[string]bool) {
	if b == nil {
		return
	}
	inner := copyScope(scope)
	for _, s := range b.Stmts {
		collectStmt(s, inner, refs)
	}
}

func collectStmt(s Stmt, scope map[string]bool, refs map[string]bool) {
	switch s := s.(type) {
	case *Block:
		collectBlock(s, scope, refs)
	case *DeclStmt:
		collectRefs(s.Init, scope, refs)
		scope[s.Name] = true
	case *ExprStmt:
		collectRefs(s.X, scope, refs)
	case *IfStmt:
		collectRefs(s.Cond, scope, refs)
		collectBlock(s.Then, scope, refs)
		if s.Else != nil {
			collectStmt(s.Else, scope, refs)
		}
	case *WhileStmt:
		collectRefs(s.Cond, scope, refs)
		collectBlock(s.Body, scope, refs)
	case *ForStmt:
		forScope := copyScope(scope)
		if s.Init != nil {
			collectStmt(s.Init, forScope, refs)
		}
		collectRefs(s.Cond, forScope, refs)
		collectRefs(s.Post, forScope, refs)
		collectBlock(s.Body, forScope, refs)
	case *ReturnStmt:
		collectRefs(s.X, scope, refs)
	}
}

func collectRefs(e Expr, scope map[string]bool, refs map[string]bool) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *Ident:
		if !scope[e.Name] {
			refs[e.Name] = true
		}
	case *Unary:
		collectRefs(e.X, scope, refs)
	case *Binary:
		collectRefs(e.X, scope, refs)
		collectRefs(e.Y, scope, refs)
	case *Assign:
		collectRefs(e.LHS, scope, refs)
		collectRefs(e.RHS, scope, refs)
	case *IncDec:
		collectRefs(e.X, scope, refs)
	case *Call:
		collectRefs(e.Fun, scope, refs)
		for _, a := range e.Args {
			collectRefs(a, scope, refs)
		}
	case *Index:
		collectRefs(e.X, scope, refs)
		collectRefs(e.I, scope, refs)
	case *Member:
		collectRefs(e.X, scope, refs)
	case *Cond:
		collectRefs(e.C, scope, refs)
		collectRefs(e.Then, scope, refs)
		collectRefs(e.Else, scope, refs)
	}
}
