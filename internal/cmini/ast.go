package cmini

// File is a parsed cmini translation unit: a sequence of struct
// definitions, global variable definitions, extern declarations, and
// function definitions.
type File struct {
	Name  string // source file name, for diagnostics
	Decls []Decl
}

// Decl is a top-level declaration.
type Decl interface {
	declNode()
	// DeclName returns the declared name ("" for anonymous declarations).
	DeclName() string
	// DeclPos returns the source position of the declaration.
	DeclPos() Pos
}

// StructDecl defines a named struct type.
type StructDecl struct {
	Pos    Pos
	Name   string
	Fields []Field
}

// Field is one struct field.
type Field struct {
	Name string
	Type Type
}

// VarDecl declares a global variable. Extern variables have no
// initializer and refer to a definition in another component. Static
// variables are file-local (hidden from linking).
type VarDecl struct {
	Pos    Pos
	Name   string
	Type   Type
	Init   Expr // optional constant initializer; nil means zero
	Static bool
	Extern bool
}

// FuncDecl declares or defines a function. A nil Body together with
// Extern=true is an import declaration; a non-nil Body is a definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Result Type // nil means void
	Body   *Block
	Static bool
	Extern bool
}

// Param is one function parameter.
type Param struct {
	Name string
	Type Type
}

func (*StructDecl) declNode() {}
func (*VarDecl) declNode()    {}
func (*FuncDecl) declNode()   {}

// DeclName returns the struct's name.
func (d *StructDecl) DeclName() string { return d.Name }

// DeclName returns the variable's name.
func (d *VarDecl) DeclName() string { return d.Name }

// DeclName returns the function's name.
func (d *FuncDecl) DeclName() string { return d.Name }

// DeclPos returns the declaration position.
func (d *StructDecl) DeclPos() Pos { return d.Pos }

// DeclPos returns the declaration position.
func (d *VarDecl) DeclPos() Pos { return d.Pos }

// DeclPos returns the declaration position.
func (d *FuncDecl) DeclPos() Pos { return d.Pos }

// Type is a cmini type.
type Type interface{ typeNode() }

// PrimKind enumerates primitive types.
type PrimKind int

// Primitive type kinds.
const (
	Int PrimKind = iota
	Char
	Void
	Fn // function pointer (cmini extension; one word, holds a function)
)

// Prim is a primitive type.
type Prim struct{ Kind PrimKind }

// Pointer is a pointer type.
type Pointer struct{ Elem Type }

// Array is a fixed-size array type.
type Array struct {
	Elem Type
	Len  int
}

// StructType refers to a named struct.
type StructType struct{ Name string }

func (*Prim) typeNode()       {}
func (*Pointer) typeNode()    {}
func (*Array) typeNode()      {}
func (*StructType) typeNode() {}

// Convenience type singletons.
var (
	TypeInt  = &Prim{Kind: Int}
	TypeChar = &Prim{Kind: Char}
	TypeVoid = &Prim{Kind: Void}
	TypeFn   = &Prim{Kind: Fn}
)

// Stmt is a statement.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt declares a local variable.
type DeclStmt struct {
	Pos  Pos
	Name string
	Type Type
	Init Expr // optional
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else Stmt // *Block, *IfStmt (else-if), or nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *Block
}

// ForStmt is a C-style for loop. Init and Post are optional expressions,
// Cond is optional (nil means true).
type ForStmt struct {
	Pos  Pos
	Init Stmt // *DeclStmt or *ExprStmt or nil
	Cond Expr
	Post Expr
	Body *Block
}

// ReturnStmt returns from the enclosing function; X may be nil.
type ReturnStmt struct {
	Pos Pos
	X   Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is an expression.
type Expr interface {
	exprNode()
	// ExprPos returns the source position of the expression.
	ExprPos() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// StrLit is a string literal; its value is the address of a NUL-terminated
// word array in read-only data.
type StrLit struct {
	Pos Pos
	Val string
}

// Ident names a variable, parameter, or function.
type Ident struct {
	Pos  Pos
	Name string
}

// Unary is a prefix operator: - ! ~ * (deref) & (address-of).
type Unary struct {
	Pos Pos
	Op  Tok
	X   Expr
}

// Binary is an infix operator.
type Binary struct {
	Pos Pos
	Op  Tok
	X   Expr
	Y   Expr
}

// Assign is an assignment, possibly compound (+=, <<=, ...). Op is ASSIGN
// for plain assignment.
type Assign struct {
	Pos Pos
	Op  Tok
	LHS Expr
	RHS Expr
}

// IncDec is a postfix ++ or --.
type IncDec struct {
	Pos Pos
	Op  Tok // INC or DEC
	X   Expr
}

// Call applies a function to arguments. If Fun is an Ident that resolves
// to a function symbol the call is direct; otherwise the callee value is
// computed at run time (indirect call).
type Call struct {
	Pos  Pos
	Fun  Expr
	Args []Expr
}

// Index is array/pointer indexing x[i].
type Index struct {
	Pos Pos
	X   Expr
	I   Expr
}

// Member is struct member access: x.f (Arrow=false) or x->f (Arrow=true).
type Member struct {
	Pos   Pos
	X     Expr
	Name  string
	Arrow bool
}

// Cond is the ternary operator c ? a : b.
type Cond struct {
	Pos  Pos
	C    Expr
	Then Expr
	Else Expr
}

// SizeofExpr is sizeof(type), in words.
type SizeofExpr struct {
	Pos  Pos
	Type Type
}

func (*IntLit) exprNode()     {}
func (*StrLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*IncDec) exprNode()     {}
func (*Call) exprNode()       {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*Cond) exprNode()       {}
func (*SizeofExpr) exprNode() {}

// ExprPos returns the literal's position.
func (e *IntLit) ExprPos() Pos { return e.Pos }

// ExprPos returns the literal's position.
func (e *StrLit) ExprPos() Pos { return e.Pos }

// ExprPos returns the identifier's position.
func (e *Ident) ExprPos() Pos { return e.Pos }

// ExprPos returns the operator's position.
func (e *Unary) ExprPos() Pos { return e.Pos }

// ExprPos returns the operator's position.
func (e *Binary) ExprPos() Pos { return e.Pos }

// ExprPos returns the assignment's position.
func (e *Assign) ExprPos() Pos { return e.Pos }

// ExprPos returns the operator's position.
func (e *IncDec) ExprPos() Pos { return e.Pos }

// ExprPos returns the call's position.
func (e *Call) ExprPos() Pos { return e.Pos }

// ExprPos returns the index expression's position.
func (e *Index) ExprPos() Pos { return e.Pos }

// ExprPos returns the member access's position.
func (e *Member) ExprPos() Pos { return e.Pos }

// ExprPos returns the conditional's position.
func (e *Cond) ExprPos() Pos { return e.Pos }

// ExprPos returns the sizeof's position.
func (e *SizeofExpr) ExprPos() Pos { return e.Pos }
