// Package fleet runs N shards of one built Knit program in a single
// process: every shard is a machine.M + supervise.Supervisor +
// observe.Collector trio sharing one immutable compiled Image (text and
// symbol tables read-only across shards — the machine.Image sharing
// contract), with per-shard data cloned from a single post-init
// snapshot. In front sits a flow-hash balancer: work items carry a flow
// key, identical keys always land on the same shard, and hand-off is
// batched onto per-shard queues so the channel cost amortizes across a
// batch instead of taxing every item.
//
// This is the paper's multi-instantiation story (§2.3) turned into a
// scaling mechanism: the component assembly is built once, and the
// shard count is a deployment knob — no unit is rewritten to go
// multi-core. A shard that dies is respawned from the shared snapshot
// by its own supervisor without touching its siblings, and the
// per-shard collectors roll up through observe.MergeReports into one
// fleet-wide ledger.
package fleet

// Mix64 is the splitmix64 finalizer: a cheap, statistically strong
// 64-bit mixer. It is the fleet's only hash — deterministic across runs
// and processes, so flow placement is reproducible (a property the
// tests pin down, and the reason placement is not seeded per-process).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FlowShard maps a flow key to its shard: hash then reduce. Every item
// of a flow takes the same shard, so per-flow ordering reduces to the
// FIFO order of one shard's queue.
func FlowShard(flow uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(Mix64(flow) % uint64(shards))
}

// FlowLane is a second, independent placement decision for the same
// flow — which ingress device (lane) the flow uses within its shard. It
// consumes the mixer's high bits, uncorrelated with the low-bit shard
// reduction, so lane choice does not skew shard balance.
func FlowLane(flow uint64, lanes int) int {
	if lanes <= 1 {
		return 0
	}
	return int((Mix64(flow) >> 32) % uint64(lanes))
}
