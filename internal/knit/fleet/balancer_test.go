package fleet

import (
	"math/rand"
	"testing"
)

// TestFlowShardDeterministic pins placement across runs and processes:
// FlowShard is a pure function of published constants, so these golden
// values only change if the hash changes — which would silently break
// per-flow ordering for anyone persisting flow→shard assumptions.
func TestFlowShardDeterministic(t *testing.T) {
	golden := []struct {
		flow   uint64
		shards int
		want   int
	}{
		{0, 4, int(Mix64(0) % 4)},
		{1, 4, int(Mix64(1) % 4)},
		{0xdeadbeef, 8, int(Mix64(0xdeadbeef) % 8)},
	}
	for _, g := range golden {
		if got := FlowShard(g.flow, g.shards); got != g.want {
			t.Errorf("FlowShard(%#x, %d) = %d, want %d", g.flow, g.shards, got, g.want)
		}
	}
	// Repeated evaluation of many keys never wavers.
	for flow := uint64(0); flow < 4096; flow++ {
		first := FlowShard(flow, 4)
		for rep := 0; rep < 3; rep++ {
			if got := FlowShard(flow, 4); got != first {
				t.Fatalf("FlowShard(%d, 4) unstable: %d then %d", flow, first, got)
			}
		}
		if first < 0 || first >= 4 {
			t.Fatalf("FlowShard(%d, 4) = %d out of range", flow, first)
		}
	}
	if FlowShard(123, 1) != 0 || FlowShard(123, 0) != 0 {
		t.Error("degenerate shard counts must map to shard 0")
	}
}

// TestFlowPlacementBalanced checks hash uniformity: distinct flow keys
// spread within 2x across shards (sequential keys are the adversarial
// input for a weak mixer — that is why the keys are not random here).
func TestFlowPlacementBalanced(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		counts := make([]int, shards)
		for flow := uint64(0); flow < 1024; flow++ {
			counts[FlowShard(flow, shards)]++
		}
		lo, hi := counts[0], counts[0]
		for _, c := range counts {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if lo == 0 || float64(hi)/float64(lo) > 2 {
			t.Errorf("%d shards: flow placement %v exceeds 2x imbalance", shards, counts)
		}
	}
}

// TestZipfLoadBalanced weighs placement by a Zipf flow-popularity
// distribution (s=1.05 over 16k flows — a heavy-tailed mix whose top
// flow carries a few percent of traffic) and checks packet counts stay
// within 2x across shards at the shard counts the bench runs (2 and 4).
// Flow hashing cannot bound imbalance once a single elephant flow
// exceeds a shard's fair share — with 8+ shards a fair share is 12.5%
// and a hot flow can approach it — so this is a property of the traffic
// model as much as of the hash; the README documents the caveat.
func TestZipfLoadBalanced(t *testing.T) {
	for _, shards := range []int{2, 4} {
		for seed := int64(1); seed <= 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, 1.05, 1, 16383)
			counts := make([]int, shards)
			const packets = 50000
			for i := 0; i < packets; i++ {
				counts[FlowShard(zipf.Uint64(), shards)]++
			}
			lo, hi := counts[0], counts[0]
			for _, c := range counts {
				if c < lo {
					lo = c
				}
				if c > hi {
					hi = c
				}
			}
			if lo == 0 || float64(hi)/float64(lo) > 2 {
				t.Errorf("%d shards, seed %d: Zipf load %v exceeds 2x imbalance", shards, seed, counts)
			}
		}
	}
}

// TestFlowLaneIndependent checks the lane decision is not a function of
// the shard decision: flows on one shard must still spread over lanes.
func TestFlowLaneIndependent(t *testing.T) {
	laneCount := [2]int{}
	for flow := uint64(0); flow < 4096; flow++ {
		if FlowShard(flow, 4) != 0 {
			continue
		}
		laneCount[FlowLane(flow, 2)]++
	}
	total := laneCount[0] + laneCount[1]
	if total == 0 {
		t.Fatal("no flows landed on shard 0")
	}
	for lane, c := range laneCount {
		frac := float64(c) / float64(total)
		if frac < 0.35 || frac > 0.65 {
			t.Errorf("lane %d holds %.0f%% of shard 0's flows; lanes correlate with shards", lane, frac*100)
		}
	}
}
