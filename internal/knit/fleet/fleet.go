package fleet

import (
	"errors"
	"fmt"

	"knit/internal/knit/build"
	"knit/internal/knit/observe"
	"knit/internal/knit/supervise"
	"knit/internal/machine"
)

// Prototype is the shard ID passed to Config.Setup for the throwaway
// machine that produces the fleet's post-init snapshot. Setup must
// install the same builtin surface it installs for real shards (the
// init schedule may call devices), but any host-side state it creates
// for the prototype is discarded with it.
const Prototype = -1

// Config shapes a fleet. The zero value of every optional field has a
// usable default; only Shards is mandatory.
type Config struct {
	// Shards is the number of machines to run. Must be >= 1.
	Shards int
	// Batch is how many submitted items accumulate per shard before a
	// hand-off (default 64). Batching amortizes the channel operation;
	// per-flow ordering is unaffected because a flow's items stay in
	// submission order within its shard's batches.
	Batch int
	// Queue is the per-shard queue depth in batches (default 8). A full
	// queue blocks Submit — backpressure, not drops.
	Queue int
	// Policy is the restart policy template; each shard gets its own
	// decorrelated copy via Policy.ForShard. Default supervise.Default().
	Policy *supervise.Policy
	// Clock supplies each shard's supervisor clock (default wall clock).
	// Tests inject fakes; shard IDs let them be distinct per shard.
	Clock func(shard int) supervise.Clock
	// Setup installs host-side builtins (devices, console, stopwatch) on
	// a fresh machine. It runs once for the Prototype and once per shard
	// boot, including respawns. Builtins are per-machine by the snapshot
	// contract — snapshots exclude them — so Setup is where each shard
	// gets its own device state.
	Setup func(shard int, m *machine.M) error
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards < 1 {
		return c, fmt.Errorf("fleet: config needs Shards >= 1, got %d", c.Shards)
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Queue <= 0 {
		c.Queue = 8
	}
	if c.Policy == nil {
		c.Policy = supervise.Default()
	}
	if c.Clock == nil {
		c.Clock = func(int) supervise.Clock { return supervise.Wall() }
	}
	return c, nil
}

// Handler drains one batch on one shard. It runs on the shard's
// goroutine, so it may use the shard's machine, supervisor, and
// collector freely — they are never shared across goroutines. A nil
// return means the batch was served (possibly degraded: the supervisor
// may have restarted or swapped components along the way). A non-nil
// return means the shard's machine is beyond the supervisor's recovery
// — the fleet retires its ledger and respawns it from the shared
// snapshot; the batch itself is lost (counted in Dropped).
type Handler[T any] func(sh *Shard[T], batch []T) error

// Fleet is N shards of one build.Result behind a flow-hash balancer.
// Submit/Flush/Close are single-producer: one goroutine feeds the
// fleet. Report, Statuses, and the per-shard accessors are valid after
// Close returns.
type Fleet[T any] struct {
	res    *build.Result
	cfg    Config
	snap   *machine.Snapshot
	handle Handler[T]
	shards []*Shard[T]
	// pending accumulates submissions per shard until a batch fills.
	pending [][]T
	closed  bool
}

// Shard is one machine's worth of the fleet. Its fields are owned by
// the shard goroutine while the fleet runs; read them after Close.
type Shard[T any] struct {
	ID  int
	M   *machine.M
	Sup *supervise.Supervisor
	Col *observe.Collector

	fl       *Fleet[T]
	in       chan envelope[T]
	done     chan struct{}
	served   uint64
	dropped  uint64
	respawns int
	errs     []error
	// retired holds the observability ledgers of this shard's dead
	// predecessors, so a respawn loses no history from the roll-up.
	retired []*observe.Report
}

// envelope is one queue entry: a data batch for the handler, or a
// control function to run on the shard goroutine (Exec). Exactly one of
// the two is set.
type envelope[T any] struct {
	batch []T
	ctrl  func(*Shard[T]) error
	reply chan<- error
}

// New builds a fleet: it takes the post-init snapshot on a prototype
// machine (running the init schedule exactly once for the whole fleet),
// then boots cfg.Shards shards from it, each with its own supervisor
// and collector, and starts their goroutines.
func New[T any](res *build.Result, cfg Config, handle Handler[T]) (*Fleet[T], error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if handle == nil {
		return nil, errors.New("fleet: nil handler")
	}
	var protoSetup func(*machine.M) error
	if cfg.Setup != nil {
		protoSetup = func(m *machine.M) error { return cfg.Setup(Prototype, m) }
	}
	snap, err := res.PostInitSnapshot(protoSetup)
	if err != nil {
		return nil, fmt.Errorf("fleet: post-init snapshot: %w", err)
	}
	fl := &Fleet[T]{
		res:     res,
		cfg:     cfg,
		snap:    snap,
		handle:  handle,
		pending: make([][]T, cfg.Shards),
	}
	for id := 0; id < cfg.Shards; id++ {
		sh := &Shard[T]{
			ID:   id,
			fl:   fl,
			in:   make(chan envelope[T], cfg.Queue),
			done: make(chan struct{}),
		}
		if err := sh.boot(); err != nil {
			return nil, fmt.Errorf("fleet: boot shard %d: %w", id, err)
		}
		fl.shards = append(fl.shards, sh)
		fl.pending[id] = make([]T, 0, cfg.Batch)
	}
	for _, sh := range fl.shards {
		go sh.run()
	}
	return fl, nil
}

// boot (re)creates the shard's machine trio from the fleet's shared
// snapshot: data restored by one memory copy, text and symbols shared
// through the image, initializers already run, fresh builtins from
// Setup, fresh collector, fresh supervisor with the shard's
// decorrelated policy.
func (sh *Shard[T]) boot() error {
	fl := sh.fl
	m := fl.res.NewMachineFrom(fl.snap, true)
	if fl.cfg.Setup != nil {
		if err := fl.cfg.Setup(sh.ID, m); err != nil {
			return err
		}
	}
	col := observe.Attach(m)
	fl.res.SetObserver(m, col)
	sup := supervise.New(fl.res, m, fl.cfg.Policy.ForShard(sh.ID), fl.cfg.Clock(sh.ID))
	sup.Observe(col)
	sh.M, sh.Sup, sh.Col = m, sup, col
	return nil
}

// run is the shard goroutine: drain batches until the queue closes,
// respawning from the shared snapshot when the handler reports the
// machine unrecoverable.
func (sh *Shard[T]) run() {
	defer close(sh.done)
	for env := range sh.in {
		if env.ctrl != nil {
			// Control work runs in-order with the shard's traffic but
			// outside the handler contract: its error goes to the caller,
			// not into the respawn path — the controller decides what a
			// failed step means (typically: roll back).
			env.reply <- env.ctrl(sh)
			continue
		}
		if err := sh.fl.handle(sh, env.batch); err != nil {
			sh.errs = append(sh.errs, fmt.Errorf("shard %d (respawn %d): %w", sh.ID, sh.respawns, err))
			sh.dropped += uint64(len(env.batch))
			sh.respawn()
			continue
		}
		sh.served += uint64(len(env.batch))
	}
}

// respawn retires the dead machine's ledger and boots a replacement.
// Siblings are untouched: everything respawn reads — the snapshot, the
// image — is immutable and shared; everything it writes is this
// shard's own.
func (sh *Shard[T]) respawn() {
	if sh.Col != nil {
		sh.retired = append(sh.retired, sh.Col.Report())
	}
	sh.respawns++
	if err := sh.boot(); err != nil {
		// A snapshot restore cannot fail, so only Setup can land here;
		// record it and let the shard keep draining (and dropping) so
		// Close never deadlocks.
		sh.errs = append(sh.errs, fmt.Errorf("shard %d: respawn: %w", sh.ID, err))
	}
}

// Submit routes one item by its flow key. Identical flows always reach
// the same shard, preserving per-flow order; the item rides in the
// shard's current batch and is handed off when the batch fills (or at
// Flush). Submit blocks when the target shard's queue is full.
func (fl *Fleet[T]) Submit(flow uint64, item T) {
	if fl.closed {
		panic("fleet: Submit after Close")
	}
	id := FlowShard(flow, fl.cfg.Shards)
	fl.pending[id] = append(fl.pending[id], item)
	if len(fl.pending[id]) >= fl.cfg.Batch {
		fl.shards[id].in <- envelope[T]{batch: fl.pending[id]}
		fl.pending[id] = make([]T, 0, fl.cfg.Batch)
	}
}

// Exec runs fn on shard id's goroutine, after everything already queued
// for that shard, and returns fn's error. The shard's machine,
// supervisor, and collector are fn's to use — this is the fleet's only
// sanctioned way to touch a live shard from outside, and the door the
// reconfiguration layer walks through to apply and roll back upgrades
// between batches. Single-producer like Submit; blocks until fn ran.
func (fl *Fleet[T]) Exec(id int, fn func(*Shard[T]) error) error {
	if fl.closed {
		return fmt.Errorf("fleet: Exec after Close")
	}
	if id < 0 || id >= len(fl.shards) {
		return fmt.Errorf("fleet: Exec on unknown shard %d", id)
	}
	// Flush the shard's partial batch first so fn observes (and follows)
	// all traffic submitted before it.
	if len(fl.pending[id]) > 0 {
		fl.shards[id].in <- envelope[T]{batch: fl.pending[id]}
		fl.pending[id] = make([]T, 0, fl.cfg.Batch)
	}
	reply := make(chan error, 1)
	fl.shards[id].in <- envelope[T]{ctrl: fn, reply: reply}
	return <-reply
}

// ShardPolicy returns the restart policy shard id was booted with — the
// same decorrelated derivation boot uses — so a controller that
// temporarily overrode a shard's policy can restore the original.
func (fl *Fleet[T]) ShardPolicy(id int) *supervise.Policy {
	return fl.cfg.Policy.ForShard(id)
}

// Flush hands off every partial batch.
func (fl *Fleet[T]) Flush() {
	for id, batch := range fl.pending {
		if len(batch) == 0 {
			continue
		}
		fl.shards[id].in <- envelope[T]{batch: batch}
		fl.pending[id] = make([]T, 0, fl.cfg.Batch)
	}
}

// Close flushes, stops every shard, and waits for them to drain. It
// returns the accumulated shard errors (each already attributed to its
// shard and respawn generation). After Close the fleet's reports and
// per-shard state are safe to read from any goroutine.
func (fl *Fleet[T]) Close() error {
	if fl.closed {
		return nil
	}
	fl.Flush()
	fl.closed = true
	for _, sh := range fl.shards {
		close(sh.in)
	}
	var errs []error
	for _, sh := range fl.shards {
		<-sh.done
		errs = append(errs, sh.errs...)
	}
	return errors.Join(errs...)
}

// Shards exposes the shard list (read shard state only after Close, or
// from the shard's own handler).
func (fl *Fleet[T]) Shards() []*Shard[T] { return fl.shards }

// Served and Dropped count items the shard's handler completed and
// items lost to respawns; Respawns counts reboots from the snapshot.
func (sh *Shard[T]) Served() uint64  { return sh.served }
func (sh *Shard[T]) Dropped() uint64 { return sh.dropped }
func (sh *Shard[T]) Respawns() int   { return sh.respawns }

// Report rolls every shard's ledger — live collectors plus the retired
// ledgers of respawned predecessors — into one fleet-wide report via
// the observe merge path.
func (fl *Fleet[T]) Report() *observe.Report {
	var parts []*observe.Report
	for _, sh := range fl.shards {
		parts = append(parts, sh.retired...)
		if sh.Col != nil {
			parts = append(parts, sh.Col.Report())
		}
	}
	return observe.MergeReports(parts...)
}

// Statuses returns each live shard's supervisor view, indexed by shard.
func (fl *Fleet[T]) Statuses() [][]supervise.InstanceStatus {
	out := make([][]supervise.InstanceStatus, len(fl.shards))
	for i, sh := range fl.shards {
		out[i] = sh.Sup.Report()
	}
	return out
}
