package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"knit/internal/knit/build"
	"knit/internal/knit/observe"
	"knit/internal/knit/supervise"
	"knit/internal/machine"
)

// Prototype is the shard ID passed to Config.Setup for the throwaway
// machine that produces the fleet's post-init snapshot. Setup must
// install the same builtin surface it installs for real shards (the
// init schedule may call devices), but any host-side state it creates
// for the prototype is discarded with it.
const Prototype = -1

// ErrClosed is returned by submissions after Close; each such attempt
// is also counted in ShedAfterClose.
var ErrClosed = errors.New("fleet: submit after Close")

// Config shapes a fleet. The zero value of every optional field has a
// usable default; only Shards is mandatory.
type Config struct {
	// Shards is the number of machines to run. Must be >= 1.
	Shards int
	// Batch is how many submitted items accumulate per shard before a
	// hand-off (default 64). Batching amortizes the channel operation;
	// per-flow ordering is unaffected because a flow's items stay in
	// submission order within its shard's batches.
	Batch int
	// Queue is the per-shard queue depth in batches (default 8). A full
	// queue blocks Submit — backpressure, not drops. Producers that must
	// not stall on one sick shard use TrySubmit / SubmitShardDeadline
	// instead and shed on refusal (the overload layer's admission path).
	Queue int
	// RedeliverAttempts is the in-flight batch redelivery policy applied
	// when a handler failure kills a shard's machine: 0 (at-most-once,
	// the default) drops the batch's unacked remainder with the dead
	// machine; N > 0 replays the remainder onto the respawned machine up
	// to N times before dropping it. Handlers report progress with
	// Shard.Ack so a replay never re-serves completed items.
	RedeliverAttempts int
	// Policy is the restart policy template; each shard gets its own
	// decorrelated copy via Policy.ForShard. Default supervise.Default().
	Policy *supervise.Policy
	// Clock supplies each shard's supervisor clock (default wall clock).
	// Tests inject fakes; shard IDs let them be distinct per shard.
	Clock func(shard int) supervise.Clock
	// Setup installs host-side builtins (devices, console, stopwatch) on
	// a fresh machine. It runs once for the Prototype and once per shard
	// boot, including respawns. Builtins are per-machine by the snapshot
	// contract — snapshots exclude them — so Setup is where each shard
	// gets its own device state.
	Setup func(shard int, m *machine.M) error
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards < 1 {
		return c, fmt.Errorf("fleet: config needs Shards >= 1, got %d", c.Shards)
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Queue <= 0 {
		c.Queue = 8
	}
	if c.RedeliverAttempts < 0 {
		return c, fmt.Errorf("fleet: RedeliverAttempts must be >= 0, got %d", c.RedeliverAttempts)
	}
	if c.Policy == nil {
		c.Policy = supervise.Default()
	}
	if c.Clock == nil {
		c.Clock = func(int) supervise.Clock { return supervise.Wall() }
	}
	return c, nil
}

// Handler drains one batch on one shard. It runs on the shard's
// goroutine, so it may use the shard's machine, supervisor, and
// collector freely — they are never shared across goroutines. A nil
// return means the batch was served (possibly degraded: the supervisor
// may have restarted or swapped components along the way). A non-nil
// return means the shard's machine is beyond the supervisor's recovery
// — the fleet retires its ledger and respawns it from the shared
// snapshot. What happens to the batch is the redelivery policy's call:
// with Config.RedeliverAttempts > 0 its unacked remainder is journaled
// and replayed onto the respawned machine; otherwise the remainder is
// dropped (counted in Dropped). Handlers that serve item by item should
// call Shard.Ack after each completed item so a replay resumes where
// the dead machine stopped instead of re-serving the whole batch.
type Handler[T any] func(sh *Shard[T], batch []T) error

// Fleet is N shards of one build.Result behind a flow-hash balancer.
// Submit/TrySubmit/Flush/Close are single-producer: one goroutine feeds
// the fleet. Report, Statuses, and the per-shard accessors are valid
// after Close returns; the atomic health accessors (Served, Dropped,
// Respawns, Completed, HealthSample, QueueDepth) may additionally be
// read live from the producer goroutine — that is what the overload
// layer's circuit breakers do.
type Fleet[T any] struct {
	res    *build.Result
	cfg    Config
	snap   *machine.Snapshot
	handle Handler[T]
	shards []*Shard[T]
	// pending accumulates submissions per shard until a batch fills.
	pending [][]T
	// enq counts envelopes (batches and control functions) handed to
	// each shard's queue. Producer-owned; paired with Shard.Completed it
	// gives the drain barrier the re-steering layer needs.
	enq        []uint64
	closed     bool
	closeErr   error
	shedClosed uint64
}

// Shard is one machine's worth of the fleet. M, Sup, and Col are owned
// by the shard goroutine while the fleet runs; read them after Close.
// The atomic counters (Served, Dropped, Respawns, Redelivered,
// Completed) and HealthSample are safe to read at any time.
type Shard[T any] struct {
	ID  int
	M   *machine.M
	Sup *supervise.Supervisor
	Col *observe.Collector

	fl       *Fleet[T]
	in       chan envelope[T]
	done     chan struct{}
	served   atomic.Uint64
	dropped  atomic.Uint64
	redeliv  atomic.Uint64
	respawns atomic.Int64
	// completed counts envelopes fully processed, the shard-side half of
	// the drain barrier.
	completed atomic.Uint64
	// acked is the in-flight batch journal's progress mark: how many
	// items of the batch currently being handled are complete. Owned by
	// the shard goroutine (set via Ack from the handler).
	acked int
	errs  []error
	// healthMu guards health, the shard's last published activity
	// snapshot (collector totals), refreshed after every envelope.
	healthMu sync.Mutex
	health   observe.Sample
	// retired holds the observability ledgers of this shard's dead
	// predecessors, so a respawn loses no history from the roll-up.
	retired []*observe.Report
}

// envelope is one queue entry: a data batch for the handler, or a
// control function to run on the shard goroutine (Exec/TryExec).
// Exactly one of batch/ctrl is set; a nil reply sends ctrl's error to
// the shard's error log instead of a caller.
type envelope[T any] struct {
	batch []T
	ctrl  func(*Shard[T]) error
	reply chan<- error
}

// New builds a fleet: it takes the post-init snapshot on a prototype
// machine (running the init schedule exactly once for the whole fleet),
// then boots cfg.Shards shards from it, each with its own supervisor
// and collector, and starts their goroutines.
func New[T any](res *build.Result, cfg Config, handle Handler[T]) (*Fleet[T], error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if handle == nil {
		return nil, errors.New("fleet: nil handler")
	}
	var protoSetup func(*machine.M) error
	if cfg.Setup != nil {
		protoSetup = func(m *machine.M) error { return cfg.Setup(Prototype, m) }
	}
	snap, err := res.PostInitSnapshot(protoSetup)
	if err != nil {
		return nil, fmt.Errorf("fleet: post-init snapshot: %w", err)
	}
	fl := &Fleet[T]{
		res:     res,
		cfg:     cfg,
		snap:    snap,
		handle:  handle,
		pending: make([][]T, cfg.Shards),
		enq:     make([]uint64, cfg.Shards),
	}
	for id := 0; id < cfg.Shards; id++ {
		sh := &Shard[T]{
			ID:   id,
			fl:   fl,
			in:   make(chan envelope[T], cfg.Queue),
			done: make(chan struct{}),
		}
		if err := sh.boot(); err != nil {
			return nil, fmt.Errorf("fleet: boot shard %d: %w", id, err)
		}
		fl.shards = append(fl.shards, sh)
		fl.pending[id] = make([]T, 0, cfg.Batch)
	}
	for _, sh := range fl.shards {
		go sh.run()
	}
	return fl, nil
}

// boot (re)creates the shard's machine trio from the fleet's shared
// snapshot: data restored by one memory copy, text and symbols shared
// through the image, initializers already run, fresh builtins from
// Setup, fresh collector, fresh supervisor with the shard's
// decorrelated policy.
func (sh *Shard[T]) boot() error {
	fl := sh.fl
	m := fl.res.NewMachineFrom(fl.snap, true)
	if fl.cfg.Setup != nil {
		if err := fl.cfg.Setup(sh.ID, m); err != nil {
			return err
		}
	}
	col := observe.Attach(m)
	fl.res.SetObserver(m, col)
	sup := supervise.New(fl.res, m, fl.cfg.Policy.ForShard(sh.ID), fl.cfg.Clock(sh.ID))
	sup.Observe(col)
	sh.M, sh.Sup, sh.Col = m, sup, col
	return nil
}

// run is the shard goroutine: drain batches until the queue closes,
// respawning from the shared snapshot when the handler reports the
// machine unrecoverable and applying the redelivery policy to the
// in-flight batch.
func (sh *Shard[T]) run() {
	defer close(sh.done)
	for env := range sh.in {
		if env.ctrl != nil {
			// Control work runs in-order with the shard's traffic but
			// outside the handler contract: its error goes to the caller
			// (or, fire-and-forget via TryExec, to the shard's error log)
			// — the controller decides what a failed step means
			// (typically: roll back).
			err := env.ctrl(sh)
			if env.reply != nil {
				env.reply <- err
			} else if err != nil {
				sh.errs = append(sh.errs, fmt.Errorf("shard %d: ctrl: %w", sh.ID, err))
			}
		} else {
			sh.serveBatch(env.batch)
		}
		sh.completed.Add(1)
		sh.publishHealth()
	}
}

// serveBatch runs one batch through the handler under the redelivery
// policy. The batch itself is the in-flight journal: until the handler
// returns nil, its unacked remainder survives the machine and — with
// RedeliverAttempts > 0 — replays onto the respawn, ahead of everything
// still queued (which is what preserves per-flow order: later items of
// the same flow are behind this batch in the shard's FIFO).
func (sh *Shard[T]) serveBatch(batch []T) {
	for attempt := 0; ; attempt++ {
		sh.acked = 0
		err := sh.fl.handle(sh, batch)
		if err == nil {
			sh.served.Add(uint64(len(batch)))
			return
		}
		sh.errs = append(sh.errs, fmt.Errorf("shard %d (respawn %d): %w",
			sh.ID, sh.respawns.Load(), err))
		// Items acked before the death were fully served; only the
		// remainder is at stake.
		if sh.acked > len(batch) {
			sh.acked = len(batch)
		}
		sh.served.Add(uint64(sh.acked))
		batch = batch[sh.acked:]
		sh.respawn()
		if len(batch) == 0 {
			return
		}
		if attempt >= sh.fl.cfg.RedeliverAttempts {
			sh.dropped.Add(uint64(len(batch)))
			return
		}
		sh.redeliv.Add(uint64(len(batch)))
	}
}

// Ack marks the first n items of the batch currently being handled as
// served. Call it from the handler, on the shard's goroutine, after
// each completed item (or group): if the machine dies later in the
// batch, redelivery resumes at the ack mark instead of re-serving from
// the top.
func (sh *Shard[T]) Ack(n int) {
	if n > sh.acked {
		sh.acked = n
	}
}

// publishHealth refreshes the shard's cross-goroutine activity
// snapshot from the live collector.
func (sh *Shard[T]) publishHealth() {
	if sh.Col == nil {
		return
	}
	s := sh.Col.Totals()
	sh.healthMu.Lock()
	sh.health = s
	sh.healthMu.Unlock()
}

// HealthSample returns the shard's last published activity snapshot
// (cumulative collector totals as of the most recently completed
// envelope). Safe from any goroutine; the overload layer's circuit
// breakers feed it into sliding observe.Windows. A respawn resets the
// counters — Window.Advance clamps the backwards delta.
func (sh *Shard[T]) HealthSample() observe.Sample {
	sh.healthMu.Lock()
	defer sh.healthMu.Unlock()
	return sh.health
}

// respawn retires the dead machine's ledger and boots a replacement.
// Siblings are untouched: everything respawn reads — the snapshot, the
// image — is immutable and shared; everything it writes is this
// shard's own.
func (sh *Shard[T]) respawn() {
	if sh.Col != nil {
		sh.retired = append(sh.retired, sh.Col.Report())
	}
	sh.respawns.Add(1)
	if err := sh.boot(); err != nil {
		// A snapshot restore cannot fail, so only Setup can land here;
		// record it and let the shard keep draining (and dropping) so
		// Close never deadlocks.
		sh.errs = append(sh.errs, fmt.Errorf("shard %d: respawn: %w", sh.ID, err))
	}
}

// Submit routes one item by its flow key. Identical flows always reach
// the same shard, preserving per-flow order; the item rides in the
// shard's current batch and is handed off when the batch fills (or at
// Flush). Submit blocks when the target shard's queue is full —
// backpressure for closed-loop producers; open-loop producers use
// TrySubmit and shed instead. After Close it returns ErrClosed and the
// attempt is counted in ShedAfterClose (it used to panic).
func (fl *Fleet[T]) Submit(flow uint64, item T) error {
	return fl.SubmitShard(FlowShard(flow, fl.cfg.Shards), item)
}

// SubmitShard is Submit with the shard chosen by the caller — the door
// the overload layer's re-steering table walks through to move a flow
// off its sick home shard. Choosing shards by anything other than a
// stable function of the flow key forfeits per-flow ordering unless the
// caller provides its own drain barrier, as the re-steerer does.
func (fl *Fleet[T]) SubmitShard(id int, item T) error {
	if fl.closed {
		fl.shedClosed++
		return ErrClosed
	}
	if id < 0 || id >= len(fl.shards) {
		return fmt.Errorf("fleet: submit to unknown shard %d", id)
	}
	fl.pending[id] = append(fl.pending[id], item)
	if len(fl.pending[id]) >= fl.cfg.Batch {
		fl.shards[id].in <- envelope[T]{batch: fl.pending[id]}
		fl.enq[id]++
		fl.pending[id] = make([]T, 0, fl.cfg.Batch)
	}
	return nil
}

// TrySubmit is the non-blocking Submit: it never stalls the producer,
// not even when the target shard is sick with a full queue (the
// head-of-line scenario that motivates the overload layer). It refuses
// — returning false with the fleet untouched — exactly when admitting
// the item would need a queue slot the shard cannot give right now.
func (fl *Fleet[T]) TrySubmit(flow uint64, item T) bool {
	return fl.TrySubmitShard(FlowShard(flow, fl.cfg.Shards), item)
}

// TrySubmitShard is TrySubmit with the shard chosen by the caller.
func (fl *Fleet[T]) TrySubmitShard(id int, item T) bool {
	if fl.closed {
		fl.shedClosed++
		return false
	}
	if id < 0 || id >= len(fl.shards) {
		return false
	}
	p := fl.pending[id]
	if len(p)+1 < fl.cfg.Batch {
		fl.pending[id] = append(p, item)
		return true
	}
	select {
	case fl.shards[id].in <- envelope[T]{batch: append(p, item)}:
		fl.enq[id]++
		fl.pending[id] = make([]T, 0, fl.cfg.Batch)
		return true
	default:
		return false
	}
}

// SubmitShardDeadline admits like TrySubmitShard but, when the hand-off
// would block, waits for a queue slot until the deadline instead of
// refusing immediately — the budgeted middle ground between Submit's
// unbounded backpressure and TrySubmit's instant shed.
func (fl *Fleet[T]) SubmitShardDeadline(id int, item T, deadline time.Time) bool {
	if fl.TrySubmitShard(id, item) {
		return true
	}
	if fl.closed || id < 0 || id >= len(fl.shards) {
		return false
	}
	wait := time.Until(deadline)
	if wait <= 0 {
		return false
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case fl.shards[id].in <- envelope[T]{batch: append(fl.pending[id], item)}:
		fl.enq[id]++
		fl.pending[id] = make([]T, 0, fl.cfg.Batch)
		return true
	case <-t.C:
		return false
	}
}

// Exec runs fn on shard id's goroutine, after everything already queued
// for that shard, and returns fn's error. The shard's machine,
// supervisor, and collector are fn's to use — this is the fleet's only
// sanctioned way to touch a live shard from outside, and the door the
// reconfiguration layer walks through to apply and roll back upgrades
// between batches. Single-producer like Submit; blocks until fn ran.
func (fl *Fleet[T]) Exec(id int, fn func(*Shard[T]) error) error {
	if fl.closed {
		return fmt.Errorf("fleet: Exec after Close")
	}
	if id < 0 || id >= len(fl.shards) {
		return fmt.Errorf("fleet: Exec on unknown shard %d", id)
	}
	// Flush the shard's partial batch first so fn observes (and follows)
	// all traffic submitted before it.
	if len(fl.pending[id]) > 0 {
		fl.shards[id].in <- envelope[T]{batch: fl.pending[id]}
		fl.enq[id]++
		fl.pending[id] = make([]T, 0, fl.cfg.Batch)
	}
	reply := make(chan error, 1)
	fl.shards[id].in <- envelope[T]{ctrl: fn, reply: reply}
	fl.enq[id]++
	return <-reply
}

// TryExec enqueues fn on shard id's goroutine without blocking and
// without waiting for it to run; fn's error, if any, lands in the
// shard's error log. False when the shard's queue has no slot (or the
// fleet is closed). Unlike Exec it does not flush the shard's partial
// batch — callers needing ordering against pending traffic use Exec.
// The overload layer uses it to apply brownout swaps to shards whose
// queues may be full — exactly when a blocking Exec would stall the
// producer behind the congestion it is trying to relieve.
func (fl *Fleet[T]) TryExec(id int, fn func(*Shard[T]) error) bool {
	if fl.closed || id < 0 || id >= len(fl.shards) {
		return false
	}
	select {
	case fl.shards[id].in <- envelope[T]{ctrl: fn}:
		fl.enq[id]++
		return true
	default:
		return false
	}
}

// ShardPolicy returns the restart policy shard id was booted with — the
// same decorrelated derivation boot uses — so a controller that
// temporarily overrode a shard's policy can restore the original.
func (fl *Fleet[T]) ShardPolicy(id int) *supervise.Policy {
	return fl.cfg.Policy.ForShard(id)
}

// Batch returns the configured batch size.
func (fl *Fleet[T]) Batch() int { return fl.cfg.Batch }

// QueueDepth is how many envelopes sit unprocessed in shard id's queue
// right now; QueueCap is the queue's capacity. Both are safe live.
func (fl *Fleet[T]) QueueDepth(id int) int { return len(fl.shards[id].in) }
func (fl *Fleet[T]) QueueCap(id int) int   { return cap(fl.shards[id].in) }

// PendingLen is how many items wait in shard id's partial batch.
// Producer-side state: producer goroutine only.
func (fl *Fleet[T]) PendingLen(id int) int { return len(fl.pending[id]) }

// Pressure is shard id's queue occupancy in [0, 1]: queued envelopes
// plus the partial batch's fill fraction, over the queue capacity. The
// overload layer's admission thresholds are expressed against it.
// Producer goroutine only (it reads pending).
func (fl *Fleet[T]) Pressure(id int) float64 {
	frac := float64(len(fl.pending[id])) / float64(fl.cfg.Batch)
	return (float64(len(fl.shards[id].in)) + frac) / float64(cap(fl.shards[id].in))
}

// Enqueued counts envelopes handed to shard id's queue so far.
// Producer-side counter; with Shard.Completed it forms the re-steering
// drain barrier: once Completed catches up to an Enqueued reading,
// everything submitted before that reading has been fully processed.
func (fl *Fleet[T]) Enqueued(id int) uint64 { return fl.enq[id] }

// Completed counts envelopes this shard has fully processed (batches
// through the handler and redelivery policy, control functions run).
// Safe from any goroutine.
func (sh *Shard[T]) Completed() uint64 { return sh.completed.Load() }

// ShedAfterClose counts submissions refused because the fleet was
// already closed.
func (fl *Fleet[T]) ShedAfterClose() uint64 { return fl.shedClosed }

// TryFlushShard hands off shard id's partial batch without blocking:
// true when the shard has no partial batch left (flushed now, or there
// was none), false when the queue had no slot. The re-steering layer
// uses it to start a drain barrier without stalling behind the very
// congestion it is routing around.
func (fl *Fleet[T]) TryFlushShard(id int) bool {
	if fl.closed || id < 0 || id >= len(fl.shards) {
		return false
	}
	p := fl.pending[id]
	if len(p) == 0 {
		return true
	}
	select {
	case fl.shards[id].in <- envelope[T]{batch: p}:
		fl.enq[id]++
		fl.pending[id] = make([]T, 0, fl.cfg.Batch)
		return true
	default:
		return false
	}
}

// Flush hands off every partial batch. No-op after Close (Close already
// flushed; the queues are gone).
func (fl *Fleet[T]) Flush() {
	if fl.closed {
		return
	}
	for id, batch := range fl.pending {
		if len(batch) == 0 {
			continue
		}
		fl.shards[id].in <- envelope[T]{batch: batch}
		fl.enq[id]++
		fl.pending[id] = make([]T, 0, fl.cfg.Batch)
	}
}

// Close flushes, stops every shard, and waits for them to drain. It
// returns the accumulated shard errors (each already attributed to its
// shard and respawn generation). Idempotent: repeated calls return the
// first call's result. After Close the fleet's reports and per-shard
// state are safe to read from any goroutine.
func (fl *Fleet[T]) Close() error {
	if fl.closed {
		return fl.closeErr
	}
	fl.Flush()
	fl.closed = true
	for _, sh := range fl.shards {
		close(sh.in)
	}
	var errs []error
	for _, sh := range fl.shards {
		<-sh.done
		errs = append(errs, sh.errs...)
	}
	fl.closeErr = errors.Join(errs...)
	return fl.closeErr
}

// Shards exposes the shard list (read shard state only after Close, or
// from the shard's own handler; the atomic accessors are safe live).
func (fl *Fleet[T]) Shards() []*Shard[T] { return fl.shards }

// Served counts items the shard's handler completed (acked progress of
// failed batches included); Dropped counts items lost to respawns after
// the redelivery policy gave up; Redelivered counts items replayed onto
// a respawned machine (an item replayed twice counts twice); Respawns
// counts reboots from the snapshot. All safe to read live.
func (sh *Shard[T]) Served() uint64      { return sh.served.Load() }
func (sh *Shard[T]) Dropped() uint64     { return sh.dropped.Load() }
func (sh *Shard[T]) Redelivered() uint64 { return sh.redeliv.Load() }
func (sh *Shard[T]) Respawns() int       { return int(sh.respawns.Load()) }

// Report rolls every shard's ledger — live collectors plus the retired
// ledgers of respawned predecessors — into one fleet-wide report via
// the observe merge path.
func (fl *Fleet[T]) Report() *observe.Report {
	var parts []*observe.Report
	for _, sh := range fl.shards {
		parts = append(parts, sh.retired...)
		if sh.Col != nil {
			parts = append(parts, sh.Col.Report())
		}
	}
	return observe.MergeReports(parts...)
}

// Statuses returns each live shard's supervisor view, indexed by shard.
func (fl *Fleet[T]) Statuses() [][]supervise.InstanceStatus {
	out := make([][]supervise.InstanceStatus, len(fl.shards))
	for i, sh := range fl.shards {
		out[i] = sh.Sup.Report()
	}
	return out
}
