package fleet

import (
	"strings"
	"testing"

	"knit/internal/knit/build"
)

// The test program is a stateful accumulator: init seeds the counter to
// 1000, work(x) adds x, total() reads it back. The seed value proves
// shards boot from the post-init snapshot (a shard that skipped init
// would start at 0; one that re-ran init after serving would reset).
const counterUnits = `
bundletype Main = { work, total }

unit Counter = {
  exports [ main : Main ];
  initializer cnt_init for main;
  files { "counter.c" };
}
`

const counterSource = `
static int n = 0;
void cnt_init(void) { n = 1000; }
int work(int x) { n = n + x; return n; }
int total(void) { return n; }
`

func buildCounter(t *testing.T) *build.Result {
	t.Helper()
	res, err := build.Build(build.Options{
		Top:       "Counter",
		UnitFiles: map[string]string{"counter.unit": counterUnits},
		Sources:   map[string]string{"counter.c": counterSource},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return res
}

// flowFor finds a flow key that lands on the wanted shard.
func flowFor(t *testing.T, shard, shards int) uint64 {
	t.Helper()
	for flow := uint64(0); flow < 1<<16; flow++ {
		if FlowShard(flow, shards) == shard {
			return flow
		}
	}
	t.Fatalf("no flow maps to shard %d of %d", shard, shards)
	return 0
}

// TestFleetShardsServeFromSharedSnapshot is the core tentpole check:
// N shards serve off one image and one post-init snapshot, each
// accumulating its own data; per-shard state never bleeds.
func TestFleetShardsServeFromSharedSnapshot(t *testing.T) {
	res := buildCounter(t)
	const shards = 3
	handler := func(sh *Shard[int64], batch []int64) error {
		for _, x := range batch {
			if _, err := sh.Sup.Call("main", "work", x); err != nil {
				return err
			}
		}
		return nil
	}
	fl, err := New[int64](res, Config{Shards: shards, Batch: 4}, handler)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Drive a known per-shard sum through flow keys pinned per shard.
	wantSum := make([]int64, shards)
	for s := 0; s < shards; s++ {
		flow := flowFor(t, s, shards)
		for i := int64(1); i <= 10; i++ {
			fl.Submit(flow, i*int64(s+1))
			wantSum[s] += i * int64(s+1)
		}
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rep := fl.Report()
	for s, sh := range fl.Shards() {
		got, err := sh.Sup.Call("main", "total")
		if err != nil {
			t.Fatalf("shard %d total: %v", s, err)
		}
		if got != 1000+wantSum[s] {
			t.Errorf("shard %d total = %d, want %d (1000 from snapshot init + %d)",
				s, got, 1000+wantSum[s], wantSum[s])
		}
		if sh.Respawns() != 0 || sh.Dropped() != 0 {
			t.Errorf("shard %d: respawns=%d dropped=%d, want 0/0", s, sh.Respawns(), sh.Dropped())
		}
		if sh.Served() != 10 {
			t.Errorf("shard %d served %d items, want 10", s, sh.Served())
		}
	}

	// The merged report aggregates every shard's calls (one per work
	// item) and shows zero init events: initializers ran once, on the
	// prototype, before any shard existed.
	var calls, inits uint64
	for i := range rep.Instances {
		calls += rep.Instances[i].Calls
		inits += rep.Instances[i].Inits
	}
	if calls != uint64(shards*10) {
		t.Errorf("merged report calls = %d, want %d", calls, shards*10)
	}
	if inits != 0 {
		t.Errorf("merged report records %d shard-side init steps; snapshot boot must skip init", inits)
	}
}

// TestFleetRespawnIsolated kills one shard via a handler error and
// checks the respawn semantics: the victim reboots from the shared
// snapshot (counter back at 1000), its pre-death ledger survives in the
// roll-up, and the siblings never notice.
func TestFleetRespawnIsolated(t *testing.T) {
	res := buildCounter(t)
	const shards = 3
	const poison = int64(-1)
	handler := func(sh *Shard[int64], batch []int64) error {
		for _, x := range batch {
			if x == poison {
				return errBatchPoisoned
			}
			if _, err := sh.Sup.Call("main", "work", x); err != nil {
				return err
			}
		}
		return nil
	}
	fl, err := New[int64](res, Config{Shards: shards, Batch: 1}, handler)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const victim = 1
	victimFlow := flowFor(t, victim, shards)
	// Pre-death work on the victim, then the poison, then post-respawn
	// work; Batch=1 keeps each step its own hand-off, and per-shard FIFO
	// order makes the sequence deterministic.
	fl.Submit(victimFlow, 7)
	fl.Submit(victimFlow, poison)
	fl.Submit(victimFlow, 5)
	otherFlow := flowFor(t, 0, shards)
	fl.Submit(otherFlow, 3)
	if err := fl.Close(); err == nil {
		t.Fatal("Close: want the poisoned batch's error, got nil")
	} else if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("Close error does not attribute shard 1: %v", err)
	}

	rep := fl.Report()
	for s, sh := range fl.Shards() {
		wantRespawns := 0
		if s == victim {
			wantRespawns = 1
		}
		if sh.Respawns() != wantRespawns {
			t.Errorf("shard %d respawns = %d, want %d (fault must stay on the victim)",
				s, sh.Respawns(), wantRespawns)
		}
	}
	// Post-respawn the victim restarted from the snapshot: 1000 + 5,
	// the pre-death 7 gone with the dead machine.
	got, err := fl.Shards()[victim].Sup.Call("main", "total")
	if err != nil {
		t.Fatalf("victim total: %v", err)
	}
	if got != 1005 {
		t.Errorf("victim total = %d, want 1005 (fresh snapshot + post-respawn work)", got)
	}
	if got, _ := fl.Shards()[0].Sup.Call("main", "total"); got != 1003 {
		t.Errorf("sibling total = %d, want 1003", got)
	}
	// Ledger continuity: 3 work calls happened fleet-wide (7, 5, 3);
	// the pre-death call lives in the victim's retired report.
	var calls uint64
	for i := range rep.Instances {
		calls += rep.Instances[i].Calls
	}
	if calls != 3 {
		t.Errorf("merged report calls = %d, want 3 (retired ledger lost?)", calls)
	}
	if fl.Shards()[victim].Dropped() != 1 {
		t.Errorf("victim dropped = %d, want 1", fl.Shards()[victim].Dropped())
	}
}

var errBatchPoisoned = errString("machine wedged beyond recovery")

type errString string

func (e errString) Error() string { return string(e) }

// TestFleetConfigValidation covers the constructor's error paths.
func TestFleetConfigValidation(t *testing.T) {
	res := buildCounter(t)
	if _, err := New[int](res, Config{Shards: 0}, func(*Shard[int], []int) error { return nil }); err == nil {
		t.Error("Shards=0 must be rejected")
	}
	if _, err := New[int](res, Config{Shards: 1}, nil); err == nil {
		t.Error("nil handler must be rejected")
	}
}
