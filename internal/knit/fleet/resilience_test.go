package fleet

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestFleetCloseIdempotentAndSubmitAfterClose covers the graceful-
// shutdown contract: Close and Flush may be called repeatedly, and a
// late Submit is a counted shed with ErrClosed, not a panic.
func TestFleetCloseIdempotentAndSubmitAfterClose(t *testing.T) {
	res := buildCounter(t)
	handler := func(sh *Shard[int64], batch []int64) error {
		for _, x := range batch {
			if _, err := sh.Sup.Call("main", "work", x); err != nil {
				return err
			}
		}
		return nil
	}
	fl, err := New[int64](res, Config{Shards: 2, Batch: 4}, handler)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := fl.Submit(1, 3); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	fl.Flush() // must be a no-op, not a send on a closed channel

	if err := fl.Submit(1, 9); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if fl.TrySubmit(1, 9) {
		t.Fatal("TrySubmit after Close must refuse")
	}
	if fl.SubmitShardDeadline(0, 9, time.Now().Add(time.Second)) {
		t.Fatal("SubmitShardDeadline after Close must refuse")
	}
	if got := fl.ShedAfterClose(); got != 3 {
		t.Fatalf("ShedAfterClose = %d, want 3", got)
	}
}

// TestFleetTrySubmitBackpressure pins TrySubmit's refusal semantics: a
// full shard queue refuses admission without blocking the producer and
// without disturbing fleet state, and admission resumes once the shard
// drains.
func TestFleetTrySubmitBackpressure(t *testing.T) {
	res := buildCounter(t)
	gate := make(chan struct{})
	var gated atomic.Bool
	gated.Store(true)
	handler := func(sh *Shard[int64], batch []int64) error {
		if gated.Load() {
			<-gate
		}
		for _, x := range batch {
			if _, err := sh.Sup.Call("main", "work", x); err != nil {
				return err
			}
		}
		return nil
	}
	fl, err := New[int64](res, Config{Shards: 1, Batch: 1, Queue: 1}, handler)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// First item: picked up by the shard, which parks in the handler.
	if !fl.TrySubmitShard(0, 1) {
		t.Fatal("first admission must succeed")
	}
	deadline := time.Now().Add(2 * time.Second)
	for fl.QueueDepth(0) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Second: occupies the single queue slot. Third must be refused —
	// the shard is parked, the queue full, and the producer never blocks.
	if !fl.TrySubmitShard(0, 2) {
		t.Fatal("second item should take the queue slot")
	}
	if fl.TrySubmitShard(0, 3) {
		t.Fatal("third item must be refused: shard parked, queue full")
	}
	if fl.SubmitShardDeadline(0, 3, time.Now().Add(10*time.Millisecond)) {
		t.Fatal("deadline submit must expire against a parked shard")
	}

	gated.Store(false)
	close(gate)
	if !fl.SubmitShardDeadline(0, 3, time.Now().Add(2*time.Second)) {
		t.Fatal("deadline submit must succeed once the shard drains")
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sh := fl.Shards()[0]
	if sh.Served() != 3 || sh.Dropped() != 0 {
		t.Fatalf("served=%d dropped=%d, want 3/0", sh.Served(), sh.Dropped())
	}
	// Drain barrier bookkeeping: everything enqueued was completed.
	if fl.Enqueued(0) != sh.Completed() {
		t.Fatalf("enqueued %d != completed %d", fl.Enqueued(0), sh.Completed())
	}
	if got, _ := sh.Sup.Call("main", "total"); got != 1006 {
		t.Fatalf("total = %d, want 1006", got)
	}
}

// TestFleetRedeliveryResumesAtAck: with RedeliverAttempts > 0, a
// transient handler death replays only the unacked remainder of the
// in-flight batch onto the respawned machine — nothing is dropped and
// acked items are not re-served.
func TestFleetRedeliveryResumesAtAck(t *testing.T) {
	res := buildCounter(t)
	const poison = int64(-1)
	trips := 1
	handler := func(sh *Shard[int64], batch []int64) error {
		for i, x := range batch {
			if x == poison {
				if trips > 0 {
					trips--
					return errBatchPoisoned
				}
				x = 100 // the transient fault cleared on replay
			}
			if _, err := sh.Sup.Call("main", "work", x); err != nil {
				return err
			}
			sh.Ack(i + 1)
		}
		return nil
	}
	fl, err := New[int64](res, Config{Shards: 1, Batch: 3, RedeliverAttempts: 2}, handler)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, x := range []int64{7, poison, 5} {
		if err := fl.SubmitShard(0, x); err != nil {
			t.Fatalf("SubmitShard: %v", err)
		}
	}
	if err := fl.Close(); err == nil {
		t.Fatal("Close: want the poisoned attempt's error, got nil")
	}
	sh := fl.Shards()[0]
	if sh.Served() != 3 || sh.Dropped() != 0 || sh.Redelivered() != 2 || sh.Respawns() != 1 {
		t.Fatalf("served=%d dropped=%d redelivered=%d respawns=%d, want 3/0/2/1",
			sh.Served(), sh.Dropped(), sh.Redelivered(), sh.Respawns())
	}
	// The respawned machine saw only the replayed remainder: the acked 7
	// died with the old machine's state, the remainder re-ran as 100+5.
	if got, _ := sh.Sup.Call("main", "total"); got != 1105 {
		t.Fatalf("total = %d, want 1105 (snapshot 1000 + replayed 100 + 5)", got)
	}
}

// TestFleetRedeliveryGivesUp: a persistent fault exhausts the attempt
// budget and the remainder is dropped — bounded retries, no livelock.
func TestFleetRedeliveryGivesUp(t *testing.T) {
	res := buildCounter(t)
	const poison = int64(-1)
	handler := func(sh *Shard[int64], batch []int64) error {
		for i, x := range batch {
			if x == poison {
				return errBatchPoisoned
			}
			if _, err := sh.Sup.Call("main", "work", x); err != nil {
				return err
			}
			sh.Ack(i + 1)
		}
		return nil
	}
	fl, err := New[int64](res, Config{Shards: 1, Batch: 2, RedeliverAttempts: 1}, handler)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fl.SubmitShard(0, 7)
	fl.SubmitShard(0, poison)
	if err := fl.Close(); err == nil {
		t.Fatal("Close: want poisoned-attempt errors, got nil")
	}
	sh := fl.Shards()[0]
	if sh.Served() != 1 || sh.Dropped() != 1 || sh.Redelivered() != 1 || sh.Respawns() != 2 {
		t.Fatalf("served=%d dropped=%d redelivered=%d respawns=%d, want 1/1/1/2",
			sh.Served(), sh.Dropped(), sh.Redelivered(), sh.Respawns())
	}
}

// TestFleetHealthSample: the cross-goroutine health snapshot reflects
// activity after each envelope completes.
func TestFleetHealthSample(t *testing.T) {
	res := buildCounter(t)
	handler := func(sh *Shard[int64], batch []int64) error {
		for _, x := range batch {
			if _, err := sh.Sup.Call("main", "work", x); err != nil {
				return err
			}
		}
		return nil
	}
	fl, err := New[int64](res, Config{Shards: 1, Batch: 2}, handler)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fl.SubmitShard(0, 1)
	fl.SubmitShard(0, 2)
	deadline := time.Now().Add(2 * time.Second)
	for fl.Shards()[0].HealthSample().Calls < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := fl.Shards()[0].HealthSample().Calls; got < 2 {
		t.Fatalf("health sample calls = %d, want >= 2", got)
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
