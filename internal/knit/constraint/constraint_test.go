package constraint

import (
	"strings"
	"testing"
	"testing/quick"

	"knit/internal/knit/lang"
	"knit/internal/knit/link"
)

func elabProgram(t *testing.T, units, top string, sources link.Sources) *link.Program {
	t.Helper()
	f, err := lang.Parse("t.unit", units)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	reg, err := link.NewRegistry(f)
	if err != nil {
		t.Fatal(err)
	}
	p, err := link.Elaborate(reg, top, sources)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return p
}

// contextHeader declares the paper's §4 running property.
const contextHeader = `
property context
type NoContext
type ProcessContext < NoContext
`

// TestPaperContextViolation builds the paper's example error: code that
// may run without a process context (an interrupt path) calling code
// that requires a process context (a blocking lock).
func TestPaperContextViolation(t *testing.T) {
	units := contextHeader + `
bundletype Lock = { lock_acquire }
bundletype Irq = { irq_handle }

unit BlockingLock = {
  exports [ lock : Lock ];
  files { "lock.c" };
  constraints {
    context(lock) = ProcessContext;
  };
}
unit IrqHandler = {
  imports [ lock : Lock ];
  exports [ irq : Irq ];
  files { "irq.c" };
  constraints {
    context(irq) = NoContext;
    context(exports) <= context(imports);
  };
}
unit Kernel = {
  exports [ irq : Irq ];
  link {
    [lock] <- BlockingLock <- [];
    [irq] <- IrqHandler <- [lock];
  };
}
`
	sources := link.Sources{
		"lock.c": `int lock_acquire(void) { return 1; }`,
		"irq.c":  `int lock_acquire(void); int irq_handle(int n) { return lock_acquire(); }`,
	}
	p := elabProgram(t, units, "Kernel", sources)
	_, err := Check(p)
	if err == nil {
		t.Fatal("expected a context violation")
	}
	if _, ok := err.(*Violation); !ok {
		t.Fatalf("err = %T %v, want *Violation", err, err)
	}
	if !strings.Contains(err.Error(), "context") {
		t.Errorf("violation should mention the property: %v", err)
	}
}

// TestPaperContextOK: the same composition with a spinning (NoContext)
// lock passes.
func TestPaperContextOK(t *testing.T) {
	units := contextHeader + `
bundletype Lock = { lock_acquire }
bundletype Irq = { irq_handle }

unit SpinLock = {
  exports [ lock : Lock ];
  files { "lock.c" };
  constraints {
    context(lock) = NoContext;
  };
}
unit IrqHandler = {
  imports [ lock : Lock ];
  exports [ irq : Irq ];
  files { "irq.c" };
  constraints {
    context(irq) = NoContext;
    context(exports) <= context(imports);
  };
}
unit Kernel = {
  exports [ irq : Irq ];
  link {
    [lock] <- SpinLock <- [];
    [irq] <- IrqHandler <- [lock];
  };
}
`
	sources := link.Sources{
		"lock.c": `int lock_acquire(void) { return 1; }`,
		"irq.c":  `int lock_acquire(void); int irq_handle(int n) { return lock_acquire(); }`,
	}
	p := elabProgram(t, units, "Kernel", sources)
	report, err := Check(p)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if report.Vars == 0 {
		t.Error("report should count constrained variables")
	}
}

// TestPropagationChain: a pure-propagation middle unit (the 70% case in
// the paper's census) transmits a requirement across several hops.
func TestPropagationChain(t *testing.T) {
	units := contextHeader + `
bundletype A = { fa }
bundletype B = { fb }
bundletype C = { fc }

unit Bottom = {
  exports [ a : A ];
  files { "a.c" };
  constraints { context(a) = ProcessContext; };
}
unit Mid = {
  imports [ a : A ];
  exports [ b : B ];
  files { "b.c" };
  constraints { context(exports) <= context(imports); };
}
unit TopU = {
  imports [ b : B ];
  exports [ c : C ];
  files { "c.c" };
  constraints {
    context(c) = NoContext;
    context(exports) <= context(imports);
  };
}
unit K = {
  exports [ c : C ];
  link {
    [a] <- Bottom <- [];
    [b] <- Mid <- [a];
    [c] <- TopU <- [b];
  };
}
`
	sources := link.Sources{
		"a.c": `int fa(void) { return 1; }`,
		"b.c": `int fa(void); int fb(void) { return fa(); }`,
		"c.c": `int fb(void); int fc(void) { return fb(); }`,
	}
	p := elabProgram(t, units, "K", sources)
	if _, err := Check(p); err == nil {
		t.Fatal("requirement must propagate through the pure-propagation unit and conflict")
	}
}

// TestPropagatesExtension covers the §8 "reduce repetition" extension:
// with "property context propagates", the pure-propagation middle units
// need no annotations at all, yet requirements still flow end to end.
func TestPropagatesExtension(t *testing.T) {
	units := `
property context propagates
type NoContext
type ProcessContext < NoContext

bundletype A = { fa }
bundletype B = { fb }
bundletype C = { fc }

unit Bottom = {
  exports [ a : A ];
  files { "a.c" };
  constraints { context(a) = ProcessContext; };
}
// No constraints on Mid at all: propagation is implicit.
unit Mid = {
  imports [ a : A ];
  exports [ b : B ];
  files { "b.c" };
}
// A unit with explicit constraints states its complete story (no
// implicit clause is added), so the endpoint declares its propagation.
unit TopU = {
  imports [ b : B ];
  exports [ c : C ];
  files { "c.c" };
  constraints {
    context(c) = NoContext;
    context(exports) <= context(imports);
  };
}
unit K = {
  exports [ c : C ];
  link {
    [a] <- Bottom <- [];
    [b] <- Mid <- [a];
    [c] <- TopU <- [b];
  };
}
`
	sources := link.Sources{
		"a.c": `int fa(void) { return 1; }`,
		"b.c": `int fa(void); int fb(void) { return fa(); }`,
		"c.c": `int fb(void); int fc(void) { return fb(); }`,
	}
	p := elabProgram(t, units, "K", sources)
	_, err := Check(p)
	if err == nil {
		t.Fatal("conflict must propagate through the unannotated middle unit")
	}
	if _, ok := err.(*Violation); !ok {
		t.Fatalf("err = %T %v", err, err)
	}

	// Same chain without the conflicting top requirement: passes, and
	// the report records the implicit constraints.
	ok := strings.Replace(units, "context(c) = NoContext;", "", 1)
	p2 := elabProgram(t, ok, "K", sources)
	report, err := Check(p2)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if report.Implicit == 0 {
		t.Error("report should count implicit propagation constraints")
	}
}

// TestPropagatesRespectsExplicitConstraints: a unit with its own
// constraints on the property keeps only those (no implicit clause).
func TestPropagatesRespectsExplicitConstraints(t *testing.T) {
	units := `
property context propagates
type NoContext
type ProcessContext < NoContext

bundletype A = { fa }
bundletype B = { fb }

unit Bottom = {
  exports [ a : A ];
  files { "a.c" };
  constraints { context(a) = ProcessContext; };
}
// Explicitly severs the propagation: its export works in any context
// regardless of its import (say, it defers the import's work to a queue).
unit Decouple = {
  imports [ a : A ];
  exports [ b : B ];
  files { "b.c" };
  constraints { context(b) = NoContext; };
}
unit K = {
  exports [ b : B ];
  link {
    [a] <- Bottom <- [];
    [b] <- Decouple <- [a];
  };
}
`
	sources := link.Sources{
		"a.c": `int fa(void) { return 1; }`,
		"b.c": `int fa(void); int fb(void) { return fa(); }`,
	}
	p := elabProgram(t, units, "K", sources)
	if _, err := Check(p); err != nil {
		t.Fatalf("explicit constraint should override implicit propagation: %v", err)
	}
}

func TestUnannotatedProgramPasses(t *testing.T) {
	units := `
bundletype A = { fa }
unit P = { exports [ a : A ]; files { "a.c" }; }
unit T = { exports [ a : A ]; link { [a] <- P <- []; }; }
`
	p := elabProgram(t, units, "T", link.Sources{"a.c": `int fa(void) { return 1; }`})
	report, err := Check(p)
	if err != nil {
		t.Fatal(err)
	}
	if report.Vars != 0 || report.Relations != 0 {
		t.Errorf("report = %+v, want empty", report)
	}
}

func TestCheckErrors(t *testing.T) {
	mk := func(constraint string) (*link.Program, error) {
		units := contextHeader + `
bundletype A = { fa }
unit P = {
  exports [ a : A ];
  files { "a.c" };
  constraints { ` + constraint + ` };
}
unit T = { exports [ a : A ]; link { [a] <- P <- []; }; }
`
		f, err := lang.Parse("t.unit", units)
		if err != nil {
			return nil, err
		}
		reg, err := link.NewRegistry(f)
		if err != nil {
			return nil, err
		}
		return link.Elaborate(reg, "T", link.Sources{"a.c": `int fa(void) { return 1; }`})
	}
	cases := []struct{ name, constraint, want string }{
		{"unknown property", "ghost(a) = NoContext;", "unknown property"},
		{"unknown bundle", "context(ghost) = NoContext;", "unknown bundle"},
		{"unknown value", "context(a) = Sideways;", "not a value"},
		{"contradiction", "context(a) = NoContext; context(a) = ProcessContext;", "no value satisfies"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := mk(c.constraint)
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			_, err = Check(p)
			if err == nil {
				t.Fatalf("Check succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestPosetConstruction(t *testing.T) {
	p := &lang.Property{Name: "ctx", Values: []lang.PropValue{
		{Name: "Top"},
		{Name: "Mid", Below: "Top"},
		{Name: "Bot", Below: "Mid"},
		{Name: "Other", Below: "Top"},
	}}
	ps, err := NewPoset(p)
	if err != nil {
		t.Fatal(err)
	}
	// Transitivity.
	if !ps.Leq("Bot", "Top") {
		t.Error("Bot <= Top should hold transitively")
	}
	// Incomparability.
	if ps.Leq("Other", "Mid") || ps.Leq("Mid", "Other") {
		t.Error("Other and Mid should be incomparable")
	}
	// Reflexivity.
	for _, v := range ps.Values {
		if !ps.Leq(v, v) {
			t.Errorf("reflexivity failed for %s", v)
		}
	}
}

func TestPosetErrors(t *testing.T) {
	_, err := NewPoset(&lang.Property{Name: "p", Values: []lang.PropValue{
		{Name: "A"}, {Name: "A"},
	}})
	if err == nil || !strings.Contains(err.Error(), "redeclared") {
		t.Errorf("err = %v", err)
	}
	_, err = NewPoset(&lang.Property{Name: "p", Values: []lang.PropValue{
		{Name: "A", Below: "Ghost"},
	}})
	if err == nil || !strings.Contains(err.Error(), "unknown value") {
		t.Errorf("err = %v", err)
	}
}

// TestQuickPosetPartialOrderAxioms: for random chains-with-branches, Leq
// is reflexive, transitive, and antisymmetric.
func TestQuickPosetPartialOrderAxioms(t *testing.T) {
	fn := func(edges [6]uint8) bool {
		names := []string{"V0", "V1", "V2", "V3", "V4"}
		var vals []lang.PropValue
		for i, n := range names {
			pv := lang.PropValue{Name: n}
			if i > 0 {
				// Each value sits below some earlier value (keeps it acyclic).
				pv.Below = names[int(edges[i])%i]
			}
			vals = append(vals, pv)
		}
		ps, err := NewPoset(&lang.Property{Name: "p", Values: vals})
		if err != nil {
			return false
		}
		for _, a := range names {
			if !ps.Leq(a, a) {
				return false
			}
			for _, b := range names {
				if a != b && ps.Leq(a, b) && ps.Leq(b, a) {
					return false // antisymmetry violated
				}
				for _, c := range names {
					if ps.Leq(a, b) && ps.Leq(b, c) && !ps.Leq(a, c) {
						return false // transitivity violated
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
