// Package constraint implements Knit's architectural constraint checker
// (paper §4): user-defined properties with partially ordered values,
// annotations on unit imports and exports, and a fixpoint solver that
// detects impossible component compositions — e.g. code that may execute
// without a process context calling code that requires one.
//
// Variables are (instance, bundle) endpoints per property. Wiring an
// import to an export equates the two endpoints. Constraints narrow each
// variable's set of admissible values; an empty set is a composition
// error, reported with the narrowing chain.
package constraint

import (
	"fmt"
	"sort"
	"strings"

	"knit/internal/knit/lang"
	"knit/internal/knit/link"
)

// Poset is the partially ordered value set of one property.
type Poset struct {
	Name   string
	Values []string
	leq    map[[2]string]bool
}

// NewPoset builds the reflexive-transitive order from a property
// declaration.
func NewPoset(p *lang.Property) (*Poset, error) {
	ps := &Poset{Name: p.Name, leq: map[[2]string]bool{}}
	have := map[string]bool{}
	for _, v := range p.Values {
		if have[v.Name] {
			return nil, fmt.Errorf("property %s: value %q redeclared", p.Name, v.Name)
		}
		have[v.Name] = true
		ps.Values = append(ps.Values, v.Name)
		ps.leq[[2]string{v.Name, v.Name}] = true
	}
	for _, v := range p.Values {
		if v.Below == "" {
			continue
		}
		if !have[v.Below] {
			return nil, fmt.Errorf("property %s: %q declared below unknown value %q",
				p.Name, v.Name, v.Below)
		}
		ps.leq[[2]string{v.Name, v.Below}] = true
	}
	// Transitive closure (Floyd–Warshall over the small value set).
	for _, k := range ps.Values {
		for _, i := range ps.Values {
			for _, j := range ps.Values {
				if ps.leq[[2]string{i, k}] && ps.leq[[2]string{k, j}] {
					ps.leq[[2]string{i, j}] = true
				}
			}
		}
	}
	return ps, nil
}

// Leq reports v <= w in the property order.
func (ps *Poset) Leq(v, w string) bool { return ps.leq[[2]string{v, w}] }

// Has reports whether v is a value of this property.
func (ps *Poset) Has(v string) bool {
	for _, x := range ps.Values {
		if x == v {
			return true
		}
	}
	return false
}

// Var identifies a constraint variable: one bundle endpoint of an
// instance under one property.
type Var struct {
	Inst   *link.Instance
	Bundle string
	Prop   string
}

func (v Var) String() string {
	return fmt.Sprintf("%s(%s.%s)", v.Prop, v.Inst.Path, v.Bundle)
}

// Violation describes a constraint failure.
type Violation struct {
	Var    Var
	Reason string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("knit: constraint violation at %s: %s", v.Var, v.Reason)
}

// Bound is a value constraint imposed from outside the unit language —
// an assembly goal's "context(out) <= NoContext" — on one endpoint of a
// candidate configuration. CheckAssembly narrows the endpoint's domain
// with it exactly as if the owning unit had declared the clause itself.
type Bound struct {
	Var   Var
	Op    lang.ConstraintOp
	Value string
}

func (b Bound) String() string {
	return fmt.Sprintf("%s %s %s", b.Var, b.Op, b.Value)
}

// Report summarizes a check.
type Report struct {
	Vars       int
	Relations  int // relational constraints (var-to-var)
	Narrowings int // value constraints applied
	// Implicit counts propagation constraints added automatically for
	// "property ... propagates" declarations (the §8 extension).
	Implicit int
	// Assignment holds, for each constrained variable, its admissible
	// values after solving (sorted).
	Assignment map[Var][]string
}

// Check validates every constraint in the program. It returns a Report
// on success and a *Violation error on failure.
func Check(prog *link.Program) (*Report, error) {
	return CheckAssembly(prog.Registry, prog.SortedInstances(), nil)
}

// CheckAssembly validates constraints over an explicit instance set.
// Unlike Check it does not require a fully elaborated program: imports
// whose wires are nil (or have no provider yet) are simply treated as
// unconstrained, so a *partial* assembly can be checked as a search
// extends it — a violation in a partial wiring is final (adding more
// wires only narrows domains further), which is what lets the
// goal-directed assembler prune dead branches early instead of
// validating only complete candidates. The optional bounds impose
// additional value constraints (an assembly goal's property bounds) on
// endpoints of the configuration.
func CheckAssembly(reg *link.Registry, instances []*link.Instance, bounds []Bound) (*Report, error) {
	posets := map[string]*Poset{}
	for name, p := range reg.Properties {
		ps, err := NewPoset(p)
		if err != nil {
			return nil, err
		}
		posets[name] = ps
	}

	type rel struct {
		a, b Var // a <= b
	}
	domains := map[Var]map[string]bool{}
	var rels []rel
	report := &Report{Assignment: map[Var][]string{}}

	domainOf := func(v Var) map[string]bool {
		if d, ok := domains[v]; ok {
			return d
		}
		d := map[string]bool{}
		for _, val := range posets[v.Prop].Values {
			d[val] = true
		}
		domains[v] = d
		return d
	}

	// expand resolves a constraint argument to variables. "imports" and
	// "exports" expand to every import/export bundle of the instance.
	expand := func(inst *link.Instance, prop, arg string) ([]Var, error) {
		switch arg {
		case lang.ImportsKeyword:
			var out []Var
			for _, b := range inst.Unit.Imports {
				out = append(out, Var{inst, b.Local, prop})
			}
			return out, nil
		case lang.ExportsKeyword:
			var out []Var
			for _, b := range inst.Unit.Exports {
				out = append(out, Var{inst, b.Local, prop})
			}
			return out, nil
		}
		for _, b := range inst.Unit.Imports {
			if b.Local == arg {
				return []Var{{inst, arg, prop}}, nil
			}
		}
		for _, b := range inst.Unit.Exports {
			if b.Local == arg {
				return []Var{{inst, arg, prop}}, nil
			}
		}
		return nil, fmt.Errorf("knit: %s: constraint names unknown bundle %q", inst.Path, arg)
	}

	// Gather constraints from every instance.
	explicit := map[*link.Instance]map[string]bool{}
	for _, inst := range instances {
		for _, c := range inst.Unit.Constraints {
			prop := c.LHS.Prop
			if prop == "" {
				prop = c.RHS.Prop
			}
			if explicit[inst] == nil {
				explicit[inst] = map[string]bool{}
			}
			explicit[inst][prop] = true
		}
	}
	for _, inst := range instances {
		for _, c := range inst.Unit.Constraints {
			prop := c.LHS.Prop
			if prop == "" {
				prop = c.RHS.Prop
			}
			ps, ok := posets[prop]
			if !ok {
				return nil, fmt.Errorf("knit: %s: unknown property %q", inst.Path, prop)
			}
			lvars, err := expandRef(expand, inst, c.LHS, prop)
			if err != nil {
				return nil, err
			}
			rvars, err := expandRef(expand, inst, c.RHS, prop)
			if err != nil {
				return nil, err
			}
			// Value forms narrow domains directly; var-var forms are
			// relational.
			switch {
			case c.RHS.IsValue():
				if !ps.Has(c.RHS.Value) {
					return nil, fmt.Errorf("knit: %s: %q is not a value of property %s",
						inst.Path, c.RHS.Value, prop)
				}
				for _, v := range lvars {
					narrow(domainOf(v), ps, c.Op, c.RHS.Value)
					report.Narrowings++
					if len(domainOf(v)) == 0 {
						return nil, &Violation{Var: v, Reason: fmt.Sprintf(
							"no value satisfies %s %s %s (declared at %s)",
							v, c.Op, c.RHS.Value, c.Pos)}
					}
				}
			case c.LHS.IsValue():
				if !ps.Has(c.LHS.Value) {
					return nil, fmt.Errorf("knit: %s: %q is not a value of property %s",
						inst.Path, c.LHS.Value, prop)
				}
				for _, v := range rvars {
					narrow(domainOf(v), ps, flip(c.Op), c.LHS.Value)
					report.Narrowings++
					if len(domainOf(v)) == 0 {
						return nil, &Violation{Var: v, Reason: fmt.Sprintf(
							"no value satisfies %s %s %s (declared at %s)",
							c.LHS.Value, c.Op, v, c.Pos)}
					}
				}
			default:
				for _, lv := range lvars {
					for _, rv := range rvars {
						switch c.Op {
						case lang.OpLe:
							rels = append(rels, rel{lv, rv})
						case lang.OpGe:
							rels = append(rels, rel{rv, lv})
						case lang.OpEq:
							rels = append(rels, rel{lv, rv}, rel{rv, lv})
						}
						report.Relations++
					}
				}
			}
		}
	}

	// External bounds (assembly goals) narrow their endpoint's domain
	// like a declared value constraint would.
	for _, bd := range bounds {
		ps, ok := posets[bd.Var.Prop]
		if !ok {
			return nil, fmt.Errorf("knit: bound %s: unknown property %q", bd, bd.Var.Prop)
		}
		if !ps.Has(bd.Value) {
			return nil, fmt.Errorf("knit: bound %s: %q is not a value of property %s",
				bd, bd.Value, bd.Var.Prop)
		}
		narrow(domainOf(bd.Var), ps, bd.Op, bd.Value)
		report.Narrowings++
		if len(domainOf(bd.Var)) == 0 {
			return nil, &Violation{Var: bd.Var, Reason: fmt.Sprintf(
				"no value satisfies the goal bound %s %s %s", bd.Var, bd.Op, bd.Value)}
		}
	}

	// Implicit propagation (the §8 "reduce repetition" extension): for a
	// property declared "propagates", any unit without explicit
	// constraints on that property behaves as if it declared
	// p(exports) <= p(imports).
	for _, name := range sortedPropNames(reg) {
		p := reg.Properties[name]
		if !p.Propagates {
			continue
		}
		if _, ok := posets[name]; !ok {
			continue
		}
		for _, inst := range instances {
			if explicit[inst][name] {
				continue
			}
			if len(inst.Unit.Imports) == 0 || len(inst.Unit.Exports) == 0 {
				continue
			}
			for _, exp := range inst.Unit.Exports {
				for _, imp := range inst.Unit.Imports {
					ev := Var{inst, exp.Local, name}
					iv := Var{inst, imp.Local, name}
					domainOf(ev)
					domainOf(iv)
					rels = append(rels, rel{ev, iv})
					report.Implicit++
				}
			}
		}
	}

	// Wiring equates import endpoints with their providers' export
	// endpoints, for every property that is constrained anywhere in the
	// program (so narrowings propagate along arbitrary wiring chains).
	usedProps := map[string]bool{}
	for name, p := range reg.Properties {
		if p.Propagates {
			usedProps[name] = true
		}
	}
	for _, inst := range instances {
		for _, c := range inst.Unit.Constraints {
			if c.LHS.Prop != "" {
				usedProps[c.LHS.Prop] = true
			}
			if c.RHS.Prop != "" {
				usedProps[c.RHS.Prop] = true
			}
		}
	}
	for _, bd := range bounds {
		usedProps[bd.Var.Prop] = true
	}
	// Sorted property order keeps the relation list — and therefore
	// which of several simultaneous violations gets reported — stable
	// across runs.
	propOrder := keys(usedProps)
	for _, inst := range instances {
		for _, imp := range inst.Unit.Imports {
			w := inst.ImportWires[imp.Local]
			if w == nil || w.Provider == nil {
				continue
			}
			for _, prop := range propOrder {
				if _, known := posets[prop]; !known {
					continue
				}
				a := Var{inst, imp.Local, prop}
				b := Var{w.Provider, w.Bundle, prop}
				domainOf(a)
				domainOf(b)
				rels = append(rels, rel{a, b}, rel{b, a})
			}
		}
	}

	// AC-3-style fixpoint over the relational constraints.
	changed := true
	for changed {
		changed = false
		for _, r := range rels {
			ps := posets[r.a.Prop]
			da, db := domainOf(r.a), domainOf(r.b)
			// Prune va without any vb >= va.
			for va := range da {
				ok := false
				for vb := range db {
					if ps.Leq(va, vb) {
						ok = true
						break
					}
				}
				if !ok {
					delete(da, va)
					changed = true
				}
			}
			if len(da) == 0 {
				return nil, &Violation{Var: r.a, Reason: fmt.Sprintf(
					"no admissible value: must be <= some value of %s, whose domain is {%s}",
					r.b, strings.Join(keys(db), ", "))}
			}
			// Prune vb without any va <= vb.
			for vb := range db {
				ok := false
				for va := range da {
					if ps.Leq(va, vb) {
						ok = true
						break
					}
				}
				if !ok {
					delete(db, vb)
					changed = true
				}
			}
			if len(db) == 0 {
				return nil, &Violation{Var: r.b, Reason: fmt.Sprintf(
					"no admissible value: must be >= some value of %s, whose domain is {%s}",
					r.a, strings.Join(keys(da), ", "))}
			}
		}
	}

	report.Vars = len(domains)
	for v, d := range domains {
		report.Assignment[v] = keys(d)
	}
	return report, nil
}

func expandRef(expand func(*link.Instance, string, string) ([]Var, error),
	inst *link.Instance, r lang.Ref, prop string) ([]Var, error) {
	if r.IsValue() {
		return nil, nil
	}
	if r.Prop != prop {
		return nil, fmt.Errorf("knit: %s: constraint mixes properties %q and %q",
			inst.Path, prop, r.Prop)
	}
	return expand(inst, prop, r.Arg)
}

// narrow prunes d to values v with (v op bound).
func narrow(d map[string]bool, ps *Poset, op lang.ConstraintOp, bound string) {
	for v := range d {
		keep := false
		switch op {
		case lang.OpEq:
			keep = v == bound
		case lang.OpLe:
			keep = ps.Leq(v, bound)
		case lang.OpGe:
			keep = ps.Leq(bound, v)
		}
		if !keep {
			delete(d, v)
		}
	}
}

// flip mirrors an operator for "value op var" forms.
func flip(op lang.ConstraintOp) lang.ConstraintOp {
	switch op {
	case lang.OpLe:
		return lang.OpGe
	case lang.OpGe:
		return lang.OpLe
	}
	return lang.OpEq
}

func sortedPropNames(reg *link.Registry) []string {
	out := make([]string, 0, len(reg.Properties))
	for name := range reg.Properties {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
