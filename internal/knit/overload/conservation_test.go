package overload

import (
	"math/rand"
	"testing"
	"time"

	"knit/internal/knit/fleet"
	"knit/internal/machine"
)

// TestConservationUnderChaos is the accounting property test: across
// randomized traffic (mixed classes, many flows), randomized transient
// kills (respawns with redelivery), the breaker trips and re-steers
// they induce, and pressure-driven shedding, every submitted item is
// exactly one of served, dropped, or shed:
//
//	submitted == served + dropped + shed
//
// with redelivered items counted once (a replay changes no ledger until
// it lands as served or dropped). Runs on both execution backends.
func TestConservationUnderChaos(t *testing.T) {
	backends := []struct {
		name string
		b    machine.Backend
	}{
		{"interp", machine.BackendInterp},
		{"compiled", machine.BackendCompiled},
	}
	for _, bk := range backends {
		bk := bk
		t.Run(bk.name, func(t *testing.T) {
			res := buildOverload(t, bk.b)
			const (
				shards = 3
				items  = 600
				flows  = 24
			)
			// A "kill item" fails its batch once per batch incarnation:
			// seen tracks which kill keys this shard generation already
			// faulted on, so the redelivered remainder succeeds — the
			// recoverable path. Each map is touched only by its own
			// shard's goroutine.
			seen := make([]map[int64]bool, shards)
			for i := range seen {
				seen[i] = map[int64]bool{}
			}
			handler := func(sh *fleet.Shard[int64], batch []int64) error {
				for i, x := range batch {
					if x < 0 && !seen[sh.ID][x] {
						seen[sh.ID][x] = true
						return errPoisoned
					}
					v := x
					if v < 0 {
						v = -v
					}
					if _, err := sh.Sup.Call("main", "work", v); err != nil {
						return err
					}
					sh.Ack(i + 1)
				}
				return nil
			}
			fl, err := fleet.New[int64](res, fleet.Config{
				Shards:            shards,
				Batch:             2,
				Queue:             2,
				RedeliverAttempts: 2,
			}, handler)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			c := NewController(fl, Config{
				SLO:       observeSLO(),
				TripAfter: 1,
				CoolTicks: 2,
				MaxRemaps: 8,
				ParkCap:   16,
			})

			rng := rand.New(rand.NewSource(0x5eed))
			kills := int64(0)
			for i := 0; i < items; i++ {
				flow := uint64(rng.Intn(flows))
				class := Class(rng.Intn(int(NumClasses)))
				var item int64
				if rng.Intn(40) == 0 {
					kills--
					item = kills // unique negative key: one transient kill
				} else {
					item = int64(rng.Intn(100) + 1)
				}
				if rng.Intn(4) == 0 && class == High {
					c.SubmitDeadline(flow, class, item, time.Now().Add(2*time.Millisecond))
				} else {
					c.TrySubmit(flow, class, item)
				}
				if i%7 == 0 {
					c.Tick()
				}
			}
			for i := 0; i < 50; i++ {
				c.Tick()
				time.Sleep(time.Millisecond)
			}
			c.Drain(time.Now().Add(5 * time.Second))
			if got := c.Parked(); got != 0 {
				t.Fatalf("parked after Drain = %d, want 0", got)
			}
			fl.Close() // poisoned batches make the error non-nil; ledgers are what matter

			st := c.Stats()
			var served, dropped, redelivered uint64
			var respawns int
			for _, sh := range fl.Shards() {
				served += sh.Served()
				dropped += sh.Dropped()
				redelivered += sh.Redelivered()
				respawns += sh.Respawns()
			}
			if st.Submitted != uint64(items) {
				t.Fatalf("submitted = %d, want %d", st.Submitted, items)
			}
			if st.Submitted != st.Admitted+st.ShedTotal {
				t.Fatalf("conservation (controller): submitted %d != admitted %d + shed %d",
					st.Submitted, st.Admitted, st.ShedTotal)
			}
			if served+dropped != st.Admitted {
				t.Fatalf("conservation (fleet): served %d + dropped %d != admitted %d",
					served, dropped, st.Admitted)
			}
			if served+dropped+st.ShedTotal != st.Submitted {
				t.Fatalf("conservation (end to end): served %d + dropped %d + shed %d != submitted %d",
					served, dropped, st.ShedTotal, st.Submitted)
			}
			// The chaos must actually have happened for the property to
			// mean anything.
			if respawns == 0 || redelivered == 0 {
				t.Fatalf("chaos too tame: respawns=%d redelivered=%d, want > 0", respawns, redelivered)
			}
			if dropped != 0 {
				t.Fatalf("dropped = %d, want 0 (transient kills with redelivery are the recoverable path)", dropped)
			}
			t.Logf("%s: served=%d shed=%v redelivered=%d respawns=%d trips=%d resteers=%d",
				bk.name, served, st.Shed, redelivered, respawns, st.Trips, st.Resteers)
		})
	}
}
