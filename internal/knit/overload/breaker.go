package overload

import "knit/internal/knit/observe"

// BreakerState is a per-shard circuit breaker state.
type BreakerState int

const (
	// Closed: the shard serves normally; its window is judged against
	// its closed siblings every tick.
	Closed BreakerState = iota
	// Open: the shard breached (or respawned); new flows steer away and
	// the breaker cools down before probing.
	Open
	// HalfOpen: probation — unremapped flows serve on the shard again as
	// probe traffic; sustained healthy judgments close the breaker, any
	// breach or respawn reopens it.
	HalfOpen

	numBreakerStates
)

var breakerNames = [numBreakerStates]string{
	Closed:   "closed",
	Open:     "open",
	HalfOpen: "half-open",
}

func (s BreakerState) String() string {
	if s >= 0 && s < numBreakerStates {
		return breakerNames[s]
	}
	return "state?"
}

// breaker is one shard's book: a sliding health window plus the
// closed → open → half-open state machine.
type breaker struct {
	state BreakerState
	win   *observe.Window
	// cur is this tick's window total, cached by Tick so every shard's
	// judgment uses the same snapshot of its siblings.
	cur observe.Sample
	// breaches counts consecutive Breaching verdicts while closed;
	// healthy counts consecutive Meeting verdicts while half-open.
	breaches     int
	healthy      int
	cool         int
	lastRespawns int
}

// judge applies one tick's evidence to one breaker. A respawn is
// treated as conclusive — the machine died beyond the supervisor's
// recovery; windowed trap-rate/p99 evidence goes through the shared
// SLO judge against the closed siblings' combined window.
func (c *Controller[T]) judge(b *breaker, respawned bool, base observe.Sample) {
	switch b.state {
	case Closed:
		if respawned {
			c.trip(b)
			return
		}
		switch c.cfg.SLO.Judge(b.cur, base) {
		case observe.Breaching:
			b.breaches++
			if b.breaches >= c.cfg.TripAfter {
				c.trip(b)
			}
		case observe.Meeting:
			b.breaches = 0
		}
	case Open:
		if respawned {
			b.cool = c.cfg.CoolTicks // still dying; restart the cooldown
			return
		}
		b.cool--
		if b.cool <= 0 {
			b.state = HalfOpen
			b.healthy = 0
		}
	case HalfOpen:
		if respawned || c.cfg.SLO.Judge(b.cur, base) == observe.Breaching {
			b.state = Open
			b.cool = c.cfg.CoolTicks
			c.stats.Reopens++
			return
		}
		if c.cfg.SLO.Judge(b.cur, base) == observe.Meeting {
			b.healthy++
			if b.healthy >= c.cfg.SLO.PromoteAfter {
				b.state = Closed
				b.breaches = 0
				c.stats.Closes++
			}
		}
	}
}

func (c *Controller[T]) trip(b *breaker) {
	b.state = Open
	b.cool = c.cfg.CoolTicks
	b.breaches = 0
	c.stats.Trips++
}
