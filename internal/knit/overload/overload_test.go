package overload

import (
	"sync/atomic"
	"testing"
	"time"

	"knit/internal/knit/fleet"
	"knit/internal/knit/observe"
	"knit/internal/machine"
)

// observeSLO is a fast-converging SLO for tests: one call of evidence
// suffices and one healthy verdict promotes.
func observeSLO() observe.SLO {
	return observe.SLO{MinCalls: 1, PromoteAfter: 1, Windows: 2}
}

func workHandler(poison int64) fleet.Handler[int64] {
	return func(sh *fleet.Shard[int64], batch []int64) error {
		for i, x := range batch {
			if x == poison {
				return errPoisoned
			}
			if _, err := sh.Sup.Call("main", "work", x); err != nil {
				return err
			}
			sh.Ack(i + 1)
		}
		return nil
	}
}

var errPoisoned = errString("machine wedged beyond recovery")

type errString string

func (e errString) Error() string { return string(e) }

// TestAdmissionShedsByClass drives a single parked shard to increasing
// pressure and checks the class ladder: Low shed first, Normal next,
// High only when the queue is hard-full past its deadline budget — and
// the producer never blocks outside the deadline budget.
func TestAdmissionShedsByClass(t *testing.T) {
	res := buildOverload(t, machine.BackendInterp)
	gate := make(chan struct{})
	var gated atomic.Bool
	gated.Store(true)
	handler := func(sh *fleet.Shard[int64], batch []int64) error {
		if gated.Load() {
			<-gate
		}
		for _, x := range batch {
			if _, err := sh.Sup.Call("main", "work", x); err != nil {
				return err
			}
		}
		return nil
	}
	fl, err := fleet.New[int64](res, fleet.Config{Shards: 1, Batch: 1, Queue: 4}, handler)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c := NewController(fl, Config{})

	// One item parks inside the handler; wait for the queue to empty.
	if !c.TrySubmit(0, High, 1) {
		t.Fatal("first submit must be admitted")
	}
	deadline := time.Now().Add(2 * time.Second)
	for fl.QueueDepth(0) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Fill: depth 0 -> 1 -> 2 (pressure 0, .25 at admission time).
	if !c.TrySubmit(0, High, 1) || !c.TrySubmit(0, High, 1) {
		t.Fatal("High must be admitted while pressure is low")
	}
	// Pressure now 0.5: Low sheds, High still admitted (depth 3).
	if c.TrySubmit(0, Low, 1) {
		t.Fatal("Low must shed at pressure 0.5")
	}
	if !c.TrySubmit(0, High, 1) {
		t.Fatal("High must be admitted at pressure 0.5")
	}
	// Pressure 0.75: Normal still admitted (fills the queue, depth 4).
	if !c.TrySubmit(0, Normal, 1) {
		t.Fatal("Normal must be admitted at pressure 0.75")
	}
	// Pressure 1.0: Normal sheds on the water mark, High on the full
	// queue — immediately via TrySubmit, after the budget via deadline.
	if c.TrySubmit(0, Normal, 1) {
		t.Fatal("Normal must shed at pressure 1.0")
	}
	if c.TrySubmit(0, High, 1) {
		t.Fatal("High must shed when the queue is hard-full")
	}
	if c.SubmitDeadline(0, High, 1, time.Now().Add(5*time.Millisecond)) {
		t.Fatal("High deadline submit must expire against a parked shard")
	}

	gated.Store(false)
	close(gate)
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st := c.Stats()
	if st.Submitted != 9 || st.Admitted != 5 || st.ShedTotal != 4 {
		t.Fatalf("submitted/admitted/shed = %d/%d/%d, want 9/5/4", st.Submitted, st.Admitted, st.ShedTotal)
	}
	if st.Shed[Low] != 1 || st.Shed[Normal] != 1 || st.Shed[High] != 2 {
		t.Fatalf("shed by class = %v, want [high:2 normal:1 low:1]", st.Shed)
	}
	if got := fl.Shards()[0].Served(); got != st.Admitted {
		t.Fatalf("served %d != admitted %d (conservation)", got, st.Admitted)
	}
}

// TestBreakerTripResteerAndReturn walks the full breaker lifecycle on a
// two-shard fleet: a respawn trips the victim open, a flow homed there
// re-steers to the sibling through the drain barrier, probe traffic
// closes the breaker half-open -> closed, and the flow returns home —
// with conservation holding throughout.
func TestBreakerTripResteerAndReturn(t *testing.T) {
	res := buildOverload(t, machine.BackendInterp)
	const poison = int64(-1)
	fl, err := fleet.New[int64](res, fleet.Config{Shards: 2, Batch: 1, Queue: 8}, workHandler(poison))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c := NewController(fl, Config{
		SLO:       observeSLO(),
		TripAfter: 1,
		CoolTicks: 1,
	})
	victim := 0
	flowV := flowFor(t, victim, 2)
	flowProbe := flowV + 2 // same low bits -> same home shard
	if fleet.FlowShard(flowProbe, 2) != victim {
		flowProbe = flowFor(t, victim, 2) // fall back to scanning
	}

	// Healthy traffic, then the kill.
	if !c.TrySubmit(flowV, High, 5) {
		t.Fatal("healthy submit refused")
	}
	if !c.TrySubmit(flowV, High, poison) {
		t.Fatal("poison submit refused")
	}
	waitFor(t, func() bool { return fl.Shards()[victim].Respawns() == 1 })
	c.Tick()
	if c.BreakerState(victim) != Open {
		t.Fatalf("breaker = %v after respawn tick, want open", c.BreakerState(victim))
	}

	// A submission for the victim's flow now re-steers: the entry drains
	// the home shard, then serves on the sibling.
	if !c.TrySubmit(flowV, High, 7) {
		t.Fatal("re-steered submit refused")
	}
	if c.Remapped() != 1 {
		t.Fatalf("remapped = %d, want 1", c.Remapped())
	}
	waitFor(t, func() bool { c.Tick(); return c.Parked() == 0 })
	waitFor(t, func() bool { return fl.Shards()[1].Served() >= 1 })

	// Recovery: cooldown to half-open, probe traffic on an unremapped
	// flow produces Meeting verdicts, breaker closes, flow returns home.
	c.Tick() // open -> half-open (CoolTicks=1)
	if c.BreakerState(victim) != HalfOpen {
		t.Fatalf("breaker = %v, want half-open", c.BreakerState(victim))
	}
	waitFor(t, func() bool {
		c.TrySubmit(flowProbe, High, 1)
		time.Sleep(time.Millisecond)
		c.Tick()
		return c.BreakerState(victim) == Closed
	})
	waitFor(t, func() bool { c.Tick(); return c.Remapped() == 0 })

	st := c.Stats()
	if st.Trips < 1 || st.Resteers != 1 || st.Closes < 1 || st.Returns != 1 {
		t.Fatalf("trips/resteers/closes/returns = %d/%d/%d/%d, want >=1/1/>=1/1",
			st.Trips, st.Resteers, st.Closes, st.Returns)
	}

	// After the return, the flow serves on its home shard again.
	homeServed := fl.Shards()[victim].Served()
	if !c.TrySubmit(flowV, High, 3) {
		t.Fatal("post-return submit refused")
	}
	waitFor(t, func() bool { return fl.Shards()[victim].Served() > homeServed })

	c.Drain(time.Now().Add(2 * time.Second))
	if err := fl.Close(); err == nil {
		t.Fatal("Close: want the poisoned batch's error, got nil")
	}
	st = c.Stats()
	var served, dropped uint64
	for _, sh := range fl.Shards() {
		served += sh.Served()
		dropped += sh.Dropped()
	}
	if st.Submitted != st.Admitted+st.ShedTotal {
		t.Fatalf("submitted %d != admitted %d + shed %d", st.Submitted, st.Admitted, st.ShedTotal)
	}
	if served+dropped != st.Admitted {
		t.Fatalf("served %d + dropped %d != admitted %d", served, dropped, st.Admitted)
	}
}

// TestBrownoutDegradesFleetAndRestores: sustained pressure flips the
// fleet to its fallback wiring (Lite's counter seed is unmistakable);
// pressure release restores the primary.
func TestBrownoutDegradesFleetAndRestores(t *testing.T) {
	res := buildOverload(t, machine.BackendInterp)
	gate := make(chan struct{})
	var gated atomic.Bool
	gated.Store(true)
	handler := func(sh *fleet.Shard[int64], batch []int64) error {
		if gated.Load() {
			<-gate
		}
		for _, x := range batch {
			if _, err := sh.Sup.Call("main", "work", x); err != nil {
				return err
			}
		}
		return nil
	}
	fl, err := fleet.New[int64](res, fleet.Config{Shards: 1, Batch: 1, Queue: 8}, handler)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c := NewController(fl, Config{})

	// Park the shard and fill to 6/8 queue slots: pressure 0.75.
	if !c.TrySubmit(0, High, 1) {
		t.Fatal("first submit refused")
	}
	deadline := time.Now().Add(2 * time.Second)
	for fl.QueueDepth(0) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 6; i++ {
		if !c.TrySubmit(0, High, 1) {
			t.Fatalf("fill submit %d refused", i)
		}
	}
	c.Tick()
	if !c.BrownedOut() {
		t.Fatal("brownout must engage at pressure 0.75")
	}
	// The degrade rides the shard's queue behind the fill; release the
	// gate and let it land.
	gated.Store(false)
	close(gate)
	waitFor(t, func() bool { return fl.QueueDepth(0) == 0 && fl.Shards()[0].Completed() >= 7 })

	var total int64
	err = fl.Exec(0, func(sh *fleet.Shard[int64]) error {
		v, err := sh.Sup.Call("main", "total")
		total = v
		return err
	})
	if err != nil {
		t.Fatalf("Exec total: %v", err)
	}
	if total < 500000 {
		t.Fatalf("browned-out total = %d, want >= 500000 (Lite serving)", total)
	}

	// Pressure is back to zero: the next tick clears the brownout and
	// restores the primary (with its pre-brownout state intact).
	c.Tick()
	if c.BrownedOut() {
		t.Fatal("brownout must clear at zero pressure")
	}
	err = fl.Exec(0, func(sh *fleet.Shard[int64]) error {
		v, err := sh.Sup.Call("main", "total")
		total = v
		return err
	})
	if err != nil {
		t.Fatalf("Exec total after restore: %v", err)
	}
	if total >= 500000 || total < 1000 {
		t.Fatalf("restored total = %d, want the primary's counter (>= 1000, < 500000)", total)
	}
	if st := c.Stats(); st.BrownoutEngaged != 1 || st.BrownoutCleared != 1 {
		t.Fatalf("brownout engaged/cleared = %d/%d, want 1/1", st.BrownoutEngaged, st.BrownoutCleared)
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
