package overload

import (
	"testing"

	"knit/internal/knit/build"
	"knit/internal/knit/fleet"
	"knit/internal/machine"
)

// The overload fixture is the fleet package's stateful accumulator plus
// a declared fallback: Lite seeds its counter at 500000, so any total
// at or above that proves the fallback wiring is serving (brownout
// engaged), while totals near the primary's 1000 seed prove the
// primary is back.
const overloadUnits = `
bundletype Main = { work, total }

unit Counter = {
  exports [ main : Main ];
  initializer cnt_init for main;
  fallback Lite;
  files { "counter.c" };
}
unit Lite = {
  exports [ main : Main ];
  initializer lite_init for main;
  files { "lite.c" };
  rename { main.work to lite_work; main.total to lite_total; };
}
`

const overloadCounterSource = `
static int n = 0;
void cnt_init(void) { n = 1000; }
int work(int x) { n = n + x; return n; }
int total(void) { return n; }
`

const overloadLiteSource = `
static int n = 0;
void lite_init(void) { n = 500000; }
int lite_work(int x) { n = n + 1; return n; }
int lite_total(void) { return n; }
`

func buildOverload(t *testing.T, backend machine.Backend) *build.Result {
	t.Helper()
	res, err := build.Build(build.Options{
		Top:       "Counter",
		UnitFiles: map[string]string{"overload.unit": overloadUnits},
		Sources: map[string]string{
			"counter.c": overloadCounterSource,
			"lite.c":    overloadLiteSource,
		},
		Backend: backend,
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return res
}

// flowFor finds a flow key that lands on the wanted shard.
func flowFor(t *testing.T, shard, shards int) uint64 {
	t.Helper()
	for flow := uint64(0); flow < 1<<16; flow++ {
		if fleet.FlowShard(flow, shards) == shard {
			return flow
		}
	}
	t.Fatalf("no flow maps to shard %d of %d", shard, shards)
	return 0
}
