// Package overload keeps a serving fleet answering under more load
// than it can carry. It layers four mechanisms over fleet + supervise +
// observe, each engaging earlier than the one after it:
//
//  1. Admission control: TrySubmit never blocks the producer; when a
//     shard cannot take an item, the item is shed by priority class —
//     Low first (above LowWater pressure), Normal only above HighWater,
//     High only when the queue is hard-full (or, with SubmitDeadline,
//     after a bounded wait for a slot).
//  2. Brownout: when mean fleet pressure crosses BrownoutAt, every
//     shard is switched to its declared fallback wiring (the paper's
//     interposition, applied fleet-wide via supervise.DegradeAll) —
//     degrade the work before shedding Normal traffic; restore when
//     pressure falls below BrownoutClearAt.
//  3. Per-shard circuit breakers: each shard's windowed trap rate and
//     cycle p99 (observe.Window over Shard.HealthSample) is judged
//     against its closed siblings by the shared observe.SLO judge — the
//     same one the canary controller uses. Breaching verdicts or a
//     respawn trip the shard open; a cooldown later it goes half-open
//     and serves probe traffic; sustained Meeting verdicts close it.
//  4. Flow re-steering: flows homed on an open shard migrate to a
//     healthy sibling through a bounded remap table. Each migration
//     (and each return migration when the breaker closes) runs a drain
//     barrier — the flow's new shard serves nothing until every
//     envelope the flow could ride on its old shard has completed — so
//     per-flow order holds end to end across the move.
//
// The controller is single-producer, like the fleet under it: drive
// TrySubmit/SubmitDeadline/Tick/Drain from the one goroutine that owns
// submission. Everything it reads cross-goroutine (queue depths,
// respawn counts, health samples) is one of the fleet's atomic or
// mutex-published accessors.
package overload

import (
	"time"

	"knit/internal/knit/fleet"
	"knit/internal/knit/observe"
)

// Class is a traffic priority class. Lower values are more important.
type Class int

const (
	// High traffic is shed only when a queue is hard-full past its
	// deadline budget.
	High Class = iota
	// Normal traffic is shed above HighWater pressure — after brownout
	// has already degraded the work being done.
	Normal
	// Low traffic is shed first, above LowWater pressure.
	Low

	NumClasses
)

var classNames = [NumClasses]string{High: "high", Normal: "normal", Low: "low"}

func (c Class) String() string {
	if c >= 0 && c < NumClasses {
		return classNames[c]
	}
	return "class?"
}

// Config shapes the controller. Zero fields take the documented
// defaults; the zero value is a usable configuration.
type Config struct {
	// LowWater is the target-shard pressure (fleet.Pressure, queue
	// occupancy in [0,1]) above which Low traffic is shed (default 0.5).
	LowWater float64
	// HighWater is the pressure above which Normal traffic is shed
	// (default 0.9). Keep it above BrownoutAt: brownout must engage
	// before Normal traffic is refused.
	HighWater float64
	// BrownoutAt is the mean fleet pressure that engages brownout
	// (default 0.75); BrownoutClearAt is where it disengages (default
	// 0.4). The gap is hysteresis against flapping.
	BrownoutAt      float64
	BrownoutClearAt float64
	// SLO parameterizes the per-shard circuit breakers: each shard's
	// sliding window is judged against the sum of its closed siblings'
	// windows. PromoteAfter doubles as the half-open close threshold.
	SLO observe.SLO
	// TripAfter is how many consecutive Breaching judgments open a
	// closed shard's breaker (default 2). A respawn trips immediately.
	TripAfter int
	// CoolTicks is how many Ticks an open breaker waits before going
	// half-open (default 4).
	CoolTicks int
	// MaxRemaps bounds the re-steering table: at most this many flows
	// are remapped away from open shards at once (default 16). Flows
	// beyond the bound stay on their sick home shard and take their
	// chances with admission.
	MaxRemaps int
	// ParkCap bounds how many items a migrating flow may hold parked
	// while its drain barrier completes (default 128); overflow is shed.
	ParkCap int
}

func (c Config) withDefaults() Config {
	if c.LowWater == 0 {
		c.LowWater = 0.5
	}
	if c.HighWater == 0 {
		c.HighWater = 0.9
	}
	if c.BrownoutAt == 0 {
		c.BrownoutAt = 0.75
	}
	if c.BrownoutClearAt == 0 {
		c.BrownoutClearAt = 0.4
	}
	c.SLO = c.SLO.WithDefaults()
	if c.TripAfter <= 0 {
		c.TripAfter = 2
	}
	if c.CoolTicks <= 0 {
		c.CoolTicks = 4
	}
	if c.MaxRemaps <= 0 {
		c.MaxRemaps = 16
	}
	if c.ParkCap <= 0 {
		c.ParkCap = 128
	}
	return c
}

// Stats is the controller's conservation ledger. At every instant
// Submitted == Admitted + ShedTotal + parked-in-limbo; after Drain the
// limbo is empty, so combined with the fleet's own accounting every
// submitted item is exactly one of served, dropped, or shed.
type Stats struct {
	Submitted uint64
	Admitted  uint64
	// Shed counts refusals by class; ShedTotal is their sum.
	Shed      [NumClasses]uint64
	ShedTotal uint64

	Trips   int // breakers opened
	Reopens int // half-open probes that failed back to open
	Closes  int // breakers closed from half-open
	// Resteers counts migrations started; Returns counts flows moved
	// back home after their shard's breaker closed.
	Resteers int
	Returns  int

	BrownoutEngaged int
	BrownoutCleared int
}

// Controller is the overload-resilience layer over one fleet.
type Controller[T any] struct {
	fl     *fleet.Fleet[T]
	cfg    Config
	shards int
	brk    []*breaker
	remap  map[uint64]*entry[T]
	stats  Stats

	brownout bool
	// browned/brownedAt track which shards have the brownout swap
	// applied and at which respawn generation (a respawn reboots from
	// the pre-brownout snapshot, so the swap must be reapplied).
	browned   []bool
	brownedAt []int
}

// parkedItem is one item held back while its flow's drain barrier
// completes; the class rides along for the shed ledger.
type parkedItem[T any] struct {
	item  T
	class Class
}

// entry is one remapped flow.
type entry[T any] struct {
	flow     uint64
	from, to int
	phase    phase
	// barrier is the envelope count on the shard being drained (from
	// when leaving, to when returning), captured once that shard's
	// partial batch is handed off.
	barrier    uint64
	barrierSet bool
	parked     []parkedItem[T]
}

type phase int

const (
	// phaseAway: draining the home shard; items park until every
	// envelope enqueued there has completed and the park has flushed to
	// the sibling.
	phaseAway phase = iota
	// phaseSteered: serving on the sibling.
	phaseSteered
	// phaseHome: breaker closed; draining the sibling before the flow
	// returns home. The entry is deleted when the park flushes.
	phaseHome
)

// NewController wraps fl. The fleet stays usable directly, but items
// the controller should account for must go through it.
func NewController[T any](fl *fleet.Fleet[T], cfg Config) *Controller[T] {
	cfg = cfg.withDefaults()
	n := len(fl.Shards())
	c := &Controller[T]{
		fl:        fl,
		cfg:       cfg,
		shards:    n,
		remap:     map[uint64]*entry[T]{},
		browned:   make([]bool, n),
		brownedAt: make([]int, n),
	}
	for i := 0; i < n; i++ {
		c.brk = append(c.brk, &breaker{win: observe.NewWindow(cfg.SLO.Windows)})
	}
	return c
}

// TrySubmit routes one item by flow key through admission control: it
// never blocks, and returns whether the item was admitted (parked items
// count as admitted once their barrier flush lands them on a shard;
// until then they are in limbo, visible via Parked). A false return
// means the item was shed and counted.
func (c *Controller[T]) TrySubmit(flow uint64, class Class, item T) bool {
	return c.submit(flow, class, item, nil)
}

// SubmitDeadline is TrySubmit with a time budget: when the target shard
// cannot take the item immediately, the producer waits for a queue slot
// until the deadline before shedding. Reserve it for High traffic — the
// wait blocks the producer.
func (c *Controller[T]) SubmitDeadline(flow uint64, class Class, item T, deadline time.Time) bool {
	return c.submit(flow, class, item, &deadline)
}

func (c *Controller[T]) submit(flow uint64, class Class, item T, deadline *time.Time) bool {
	c.stats.Submitted++
	home := int(fleet.FlowShard(flow, c.shards))
	e := c.remap[flow]
	if e != nil {
		c.progress(e)
		if _, still := c.remap[flow]; !still {
			e = nil // returned home while we looked
		}
	}
	if e == nil && c.brk[home].state == Open {
		e = c.resteer(flow, home)
	}
	target := home
	if e != nil {
		if e.phase != phaseSteered {
			return c.park(e, class, item)
		}
		target = e.to
	}
	return c.admit(target, class, item, deadline)
}

// admit applies class gating against the target shard's pressure, then
// hands the item to the fleet without blocking (or within the deadline
// budget). Refusals are shed and counted.
func (c *Controller[T]) admit(target int, class Class, item T, deadline *time.Time) bool {
	p := c.fl.Pressure(target)
	if (class == Low && p >= c.cfg.LowWater) || (class == Normal && p >= c.cfg.HighWater) {
		c.shed(class)
		return false
	}
	var ok bool
	if deadline != nil {
		ok = c.fl.SubmitShardDeadline(target, item, *deadline)
	} else {
		ok = c.fl.TrySubmitShard(target, item)
	}
	if !ok {
		c.shed(class)
		return false
	}
	c.stats.Admitted++
	return true
}

func (c *Controller[T]) shed(class Class) {
	c.stats.Shed[class]++
	c.stats.ShedTotal++
}

// park holds an item while its flow's drain barrier completes. The park
// is bounded; overflow is shed — order-safe, since a shed item simply
// never serves.
func (c *Controller[T]) park(e *entry[T], class Class, item T) bool {
	if len(e.parked) >= c.cfg.ParkCap {
		c.shed(class)
		return false
	}
	e.parked = append(e.parked, parkedItem[T]{item: item, class: class})
	return true
}

// resteer starts migrating a flow off its open home shard, if the remap
// table has room and a closed sibling exists. The barrier is captured
// as soon as the home shard's partial batch can be handed off.
func (c *Controller[T]) resteer(flow uint64, home int) *entry[T] {
	if len(c.remap) >= c.cfg.MaxRemaps {
		return nil
	}
	to := -1
	for k := 1; k < c.shards; k++ {
		cand := (home + k) % c.shards
		if c.brk[cand].state == Closed {
			to = cand
			break
		}
	}
	if to < 0 {
		return nil
	}
	e := &entry[T]{flow: flow, from: home, to: to, phase: phaseAway}
	c.remap[flow] = e
	c.stats.Resteers++
	c.captureBarrier(e, home)
	c.progress(e)
	return e
}

// captureBarrier pins the drain point on shard id: once the shard's
// partial batch is handed off, every envelope the flow could ride is in
// the first Enqueued(id) envelopes, and the barrier is that count.
func (c *Controller[T]) captureBarrier(e *entry[T], id int) {
	if c.fl.TryFlushShard(id) {
		e.barrier = c.fl.Enqueued(id)
		e.barrierSet = true
	}
}

// progress advances one entry's migration state machine as far as the
// fleet allows right now. Called on every touch of the entry and every
// Tick; all steps are non-blocking and idempotent.
func (c *Controller[T]) progress(e *entry[T]) {
	switch e.phase {
	case phaseAway:
		if !e.barrierSet {
			c.captureBarrier(e, e.from)
		}
		if e.barrierSet && c.fl.Shards()[e.from].Completed() >= e.barrier {
			if c.flushParked(e, e.to) {
				e.phase = phaseSteered
			}
		}
	case phaseHome:
		if !e.barrierSet {
			c.captureBarrier(e, e.to)
		}
		if e.barrierSet && c.fl.Shards()[e.to].Completed() >= e.barrier {
			if c.flushParked(e, e.from) {
				delete(c.remap, e.flow)
				c.stats.Returns++
			}
		}
	}
}

// flushParked releases the park to shard id in order; true when the
// park is empty afterwards. A refused hand-off keeps the remainder
// parked (order over progress); a class-gated shed drops the item and
// moves on (a shed item never serves, so order is intact).
func (c *Controller[T]) flushParked(e *entry[T], id int) bool {
	i := 0
	for ; i < len(e.parked); i++ {
		pi := e.parked[i]
		p := c.fl.Pressure(id)
		if (pi.class == Low && p >= c.cfg.LowWater) || (pi.class == Normal && p >= c.cfg.HighWater) {
			c.shed(pi.class)
			continue
		}
		if !c.fl.TrySubmitShard(id, pi.item) {
			break
		}
		c.stats.Admitted++
	}
	e.parked = e.parked[:copy(e.parked, e.parked[i:])]
	return len(e.parked) == 0
}

// Tick advances the control plane one step: breaker windows and
// judgments, migration progress and return triggers, and the brownout
// state machine. Call it at a steady cadence from the producer
// goroutine, interleaved with submissions — every SLO quantity is
// windowed per tick, so the cadence is the breakers' time base.
func (c *Controller[T]) Tick() {
	shs := c.fl.Shards()
	for i, b := range c.brk {
		b.cur = b.win.Advance(shs[i].HealthSample())
	}
	for i, b := range c.brk {
		now := shs[i].Respawns()
		respawned := now > b.lastRespawns
		b.lastRespawns = now
		var base observe.Sample
		for j, ob := range c.brk {
			if j != i && ob.state == Closed {
				base.Add(ob.cur)
			}
		}
		c.judge(b, respawned, base)
	}
	for _, e := range c.remap {
		c.progress(e)
		if e.phase == phaseSteered && c.brk[e.from].state == Closed {
			// Home is healthy again: drain the sibling and move back.
			e.phase = phaseHome
			e.barrierSet = false
			c.captureBarrier(e, e.to)
			c.progress(e)
		}
	}
	c.tickBrownout(shs)
}

// tickBrownout runs the fleet-wide pressure thermostat. The swaps ride
// the shards' own queues via TryExec — a congested shard picks its swap
// up as soon as a slot frees, and a respawned shard (rebooted from the
// pre-brownout snapshot) gets the swap reapplied while brownout holds.
func (c *Controller[T]) tickBrownout(shs []*fleet.Shard[T]) {
	var mean float64
	for i := range shs {
		mean += c.fl.Pressure(i)
	}
	mean /= float64(c.shards)
	if !c.brownout && mean >= c.cfg.BrownoutAt {
		c.brownout = true
		c.stats.BrownoutEngaged++
	} else if c.brownout && mean <= c.cfg.BrownoutClearAt {
		c.brownout = false
		c.stats.BrownoutCleared++
	}
	for i := range shs {
		switch {
		case c.brownout && (!c.browned[i] || c.brownedAt[i] != shs[i].Respawns()):
			ok := c.fl.TryExec(i, func(sh *fleet.Shard[T]) error {
				_, err := sh.Sup.DegradeAll()
				return err
			})
			if ok {
				c.browned[i] = true
				c.brownedAt[i] = shs[i].Respawns()
			}
		case !c.brownout && c.browned[i]:
			ok := c.fl.TryExec(i, func(sh *fleet.Shard[T]) error {
				_, err := sh.Sup.RestoreAll()
				return err
			})
			if ok {
				c.browned[i] = false
			}
		}
	}
}

// Drain settles the re-steering table before shutdown: it keeps
// advancing barriers until every park has flushed (items become
// admitted) or the deadline passes (leftovers are shed and counted).
// Call it before Fleet.Close so the conservation ledger closes exactly.
func (c *Controller[T]) Drain(deadline time.Time) {
	for {
		limbo := 0
		for _, e := range c.remap {
			c.progress(e)
			limbo += len(e.parked)
		}
		if limbo == 0 {
			return
		}
		if !time.Now().Before(deadline) {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	for _, e := range c.remap {
		for _, pi := range e.parked {
			c.shed(pi.class)
		}
		e.parked = nil
	}
}

// Stats returns the conservation ledger so far.
func (c *Controller[T]) Stats() Stats { return c.stats }

// Parked counts items currently in limbo behind drain barriers.
func (c *Controller[T]) Parked() int {
	n := 0
	for _, e := range c.remap {
		n += len(e.parked)
	}
	return n
}

// Remapped reports how many flows are currently steered away from home.
func (c *Controller[T]) Remapped() int { return len(c.remap) }

// BrownedOut reports whether the pressure thermostat currently holds
// the fleet degraded.
func (c *Controller[T]) BrownedOut() bool { return c.brownout }

// BreakerState returns shard id's breaker state.
func (c *Controller[T]) BreakerState(id int) BreakerState { return c.brk[id].state }
