// Package observe is the component-attributed observability layer:
// runtime metrics, call tracing, and profiling hooks that see the same
// unit-instance boundaries the Knit compiler saw at link time.
//
// The paper's premise (§2.3, §6) is that component boundaries survive
// into the built artifact; this package makes them visible at runtime.
// A Collector attaches to a machine.M through the PostCall hook and
// attributes every simulated call — and every trap, initializer,
// finalizer, restart, and fallback swap reported by the build and
// supervision layers — to the unit instance owning it, via the
// link-time symbol owner table (machine.Image.SymbolOwner). Per
// instance it maintains call and cycle counters, a log2 histogram of
// per-call fuel, and per-TrapKind fault counters; an optional
// ring-buffer Tracer records recent call spans for JSON-lines export.
//
// The design constraint is the hot path: a detached collector costs one
// nil check per call inside the machine, and an attached one performs
// no heap allocation on the no-fault path (map reads, array increments,
// and ring-slot writes only) — benchmarked in knitbench -observe
// against the Clack router at <5% throughput overhead.
package observe

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sort"

	"knit/internal/machine"
)

// HistBuckets is the number of log2 buckets in the per-call cycle
// histogram: bucket i counts calls that consumed [2^i, 2^(i+1)) cycles
// (bucket 0 also absorbs zero-cycle calls, the last bucket absorbs the
// tail).
const HistBuckets = 24

// InstanceMetrics is one unit instance's runtime ledger. All counters
// are attributed through the link-time symbol owner table; the empty
// Path collects calls into symbols no instance owns (ambient symbols,
// hand-loaded modules).
type InstanceMetrics struct {
	Path string // unit-instance path, e.g. "ClackRouter/Classifier#3"

	Calls  uint64 // completed simulated calls into the instance's functions
	Cycles int64  // self cycles: fuel consumed by the instance's own code, callees excluded
	// Hist is the log2 histogram of inclusive per-call cycles (the
	// CallInfo fuel delta): Hist[i] counts calls in [2^i, 2^(i+1)).
	Hist [HistBuckets]uint64
	// Traps counts faults raised by the instance's code, by kind. Sized
	// with machine.NumTrapKinds so a new trap kind without a counter is
	// caught by the exhaustiveness test, not silently dropped.
	Traps [machine.NumTrapKinds]uint64

	// Lifecycle events, fed by the build layer's Observer hook.
	Inits    uint64 // initializer steps run (including re-runs on restart)
	Finis    uint64 // finalizer steps run (including rollback unwinds)
	Restarts uint64 // supervisor restarts of this instance
	Swaps    uint64 // fallback swaps replacing this instance
	Unloads  uint64 // dynamic unloads of this instance
}

// TrapTotal is the instance's fault count across all kinds.
func (im *InstanceMetrics) TrapTotal() uint64 {
	var n uint64
	for _, c := range im.Traps {
		n += c
	}
	return n
}

// ApproxPercentile estimates the p-th percentile (0 < p <= 100) of the
// per-call cycle distribution from the log2 histogram, returning the
// upper bound of the bucket containing it (0 when no calls were seen).
func (im *InstanceMetrics) ApproxPercentile(p float64) int64 {
	return histPercentile(&im.Hist, im.Calls, p)
}

// histBucket maps an inclusive per-call cycle count to its log2 bucket.
func histBucket(cycles int64) int {
	if cycles <= 1 {
		return 0
	}
	b := bits.Len64(uint64(cycles)) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Collector attributes machine activity to unit instances. Attach one
// per machine; it is not safe for concurrent use (drive it from the
// machine's single execution loop, as the supervisor does).
type Collector struct {
	m     *machine.M
	prev  func(machine.CallInfo) // chained PostCall hook, if any
	inst  map[string]*InstanceMetrics
	bySym map[string]*InstanceMetrics // symbol -> owner metrics, memoized
	// childCycles[d] accumulates the inclusive cycles of completed calls
	// at depth d, so a parent frame at depth d-1 can compute its self
	// cycles as inclusive minus childCycles[d]. Fixed-size: the machine
	// bounds nesting by MaxCallDepth.
	childCycles [machine.MaxCallDepth + 2]int64
	lastErr     error // last counted trap; propagating frames repeat the value
	tracer      *Tracer
}

// Attach installs a Collector on m, chaining any PostCall hook already
// present (the chained hook fires after the collector).
func Attach(m *machine.M) *Collector {
	c := &Collector{
		m:     m,
		prev:  m.PostCall,
		inst:  map[string]*InstanceMetrics{},
		bySym: map[string]*InstanceMetrics{},
	}
	m.PostCall = c.postCall
	return c
}

// Detach removes the collector from its machine, restoring whatever
// PostCall hook was installed before Attach. Collected metrics remain
// readable.
func (c *Collector) Detach() {
	c.m.PostCall = c.prev
}

// Trace attaches a ring-buffer call tracer retaining the most recent
// capacity spans (minimum 16). It returns the tracer for export; the
// ring is preallocated so recording stays off the heap.
func (c *Collector) Trace(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	c.tracer = &Tracer{buf: make([]Span, capacity)}
	return c.tracer
}

func (c *Collector) postCall(ci machine.CallInfo) {
	im := c.bySym[ci.Fn]
	if im == nil {
		im = c.metricsFor(c.m.OwnerOf(ci.Fn))
		c.bySym[ci.Fn] = im
	}
	im.Calls++
	im.Hist[histBucket(ci.Cycles)]++
	d := ci.Depth
	im.Cycles += ci.Cycles - c.childCycles[d+1]
	c.childCycles[d+1] = 0
	c.childCycles[d] += ci.Cycles
	if d == 0 {
		c.childCycles[0] = 0 // nothing aggregates above a top-level run
	}
	if ci.Err != nil && ci.Err != c.lastErr {
		c.lastErr = ci.Err
		c.countTrap(ci, im)
	}
	if c.tracer != nil {
		c.tracer.record(ci, im.Path)
	}
	if c.prev != nil {
		c.prev(ci)
	}
}

// countTrap attributes one fault. The innermost erroring frame is the
// first to deliver a given error value (errors propagate unchanged), so
// this runs once per fault, on the frame where it was raised.
func (c *Collector) countTrap(ci machine.CallInfo, im *InstanceMetrics) {
	kind := machine.TrapGeneric
	target := im
	var trap *machine.Trap
	if errors.As(ci.Err, &trap) {
		if int(trap.Kind) >= 0 && int(trap.Kind) < machine.NumTrapKinds {
			kind = trap.Kind
		}
		// Prefer the trap's own attribution: an injected trap names its
		// victim, and a trap raised below a hook boundary names the true
		// faulting function.
		if trap.Unit != "" {
			target = c.metricsFor(trap.Unit)
		} else if trap.Func != "" && trap.Func != ci.Fn {
			if owner := c.m.OwnerOf(trap.Func); owner != "" {
				target = c.metricsFor(owner)
			}
		}
	}
	target.Traps[kind]++
}

// metricsFor returns (creating on first sight) the ledger for one
// instance path.
func (c *Collector) metricsFor(path string) *InstanceMetrics {
	im, ok := c.inst[path]
	if !ok {
		im = &InstanceMetrics{Path: path}
		c.inst[path] = im
	}
	return im
}

// LifecycleEvent records a build-layer lifecycle step against its unit
// instance. It implements the build package's Observer interface; op is
// one of "init", "fini", "restart", "swap", "unload" (unknown ops are
// ignored so the build layer can grow events without breaking older
// collectors).
func (c *Collector) LifecycleEvent(instance, op string) {
	im := c.metricsFor(instance)
	switch op {
	case "init":
		im.Inits++
	case "fini":
		im.Finis++
	case "restart":
		im.Restarts++
	case "swap":
		im.Swaps++
	case "unload":
		im.Unloads++
	}
}

// Snapshot returns a copy of one instance's metrics, or nil when the
// collector has never attributed anything to that path.
func (c *Collector) Snapshot(path string) *InstanceMetrics {
	im, ok := c.inst[path]
	if !ok {
		return nil
	}
	cp := *im
	return &cp
}

// Report is a point-in-time snapshot of every instance ledger.
type Report struct {
	Instances []InstanceMetrics // sorted by path; "" (unattributed) first
}

// Report snapshots the collector. The returned data is detached: later
// machine activity does not mutate it.
func (c *Collector) Report() *Report {
	r := &Report{Instances: make([]InstanceMetrics, 0, len(c.inst))}
	for _, im := range c.inst {
		r.Instances = append(r.Instances, *im)
	}
	sort.Slice(r.Instances, func(i, j int) bool {
		return r.Instances[i].Path < r.Instances[j].Path
	})
	return r
}

// TotalCalls sums attributed calls across instances.
func (r *Report) TotalCalls() uint64 {
	var n uint64
	for i := range r.Instances {
		n += r.Instances[i].Calls
	}
	return n
}

// Format renders the report as the aligned table the -metrics flags
// print: one row per instance with calls, self cycles, approximate
// per-call percentiles, faults by kind, and lifecycle counters.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "%-44s %10s %12s %8s %8s  %s\n",
		"instance", "calls", "self-cycles", "p50", "p99", "faults / lifecycle")
	for i := range r.Instances {
		im := &r.Instances[i]
		path := im.Path
		if path == "" {
			path = "<unattributed>"
		}
		fmt.Fprintf(w, "%-44s %10d %12d %8d %8d  %s\n",
			path, im.Calls, im.Cycles,
			im.ApproxPercentile(50), im.ApproxPercentile(99), im.eventSummary())
	}
}

// eventSummary compacts the fault and lifecycle counters into one
// human-readable cell, omitting zero entries.
func (im *InstanceMetrics) eventSummary() string {
	out := ""
	add := func(label string, n uint64) {
		if n == 0 {
			return
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", label, n)
	}
	for k := 0; k < machine.NumTrapKinds; k++ {
		if im.Traps[k] > 0 {
			add("trap:"+machine.TrapKind(k).String(), im.Traps[k])
		}
	}
	add("inits", im.Inits)
	add("finis", im.Finis)
	add("restarts", im.Restarts)
	add("swaps", im.Swaps)
	add("unloads", im.Unloads)
	if out == "" {
		out = "-"
	}
	return out
}
