package observe

import (
	"math/rand"
	"reflect"
	"testing"

	"knit/internal/machine"
)

// The merge property: splitting one attributed event stream across K
// collectors and merging their reports gives exactly the report a single
// collector produces on the interleaved stream. Splitting happens at
// top-level-call granularity (a complete call tree is one unit — the
// same granularity a fleet shards packets at), because the collector's
// depth bookkeeping spans one tree.

// synthCollector attaches a collector to a machine whose image exists
// only to answer OwnerOf; no code runs — events are fed to postCall
// directly, the way the machine's exec loop would.
func synthCollector(t *testing.T, owners map[string]string) *Collector {
	t.Helper()
	m := ownedMachine(t)
	m.Img.SymbolOwner = owners
	return Attach(m)
}

// callTree is one top-level call and its nested completions, emitted
// post-order (children complete before the parent) with machine-true
// inclusive cycles and error propagation.
type callTree struct {
	events []machine.CallInfo
}

// genTree builds a random call tree rooted at depth 0. Errors originate
// at leaves (a fresh *machine.Trap per tree, as in the real machine,
// where the innermost frame mints the error value and every enclosing
// frame repeats it).
func genTree(rng *rand.Rand, syms []string) callTree {
	var tr callTree
	var build func(depth int) (inclusive int64, err error)
	build = func(depth int) (int64, error) {
		sym := syms[rng.Intn(len(syms))]
		var childSum int64
		var propagated error
		if depth < 4 {
			for n := rng.Intn(3); n > 0; n-- {
				inc, cerr := build(depth + 1)
				childSum += inc
				if cerr != nil {
					propagated = cerr
				}
			}
		}
		if propagated == nil && depth > 0 && rng.Intn(12) == 0 {
			propagated = &machine.Trap{Kind: machine.TrapKind(rng.Intn(machine.NumTrapKinds)), Func: sym, Msg: "synthetic"}
		}
		inclusive := childSum + 1 + int64(rng.Intn(5000))
		tr.events = append(tr.events, machine.CallInfo{
			Fn: sym, Depth: depth, Cycles: inclusive, Err: propagated,
		})
		return inclusive, propagated
	}
	build(0)
	return tr
}

func feed(c *Collector, trees []callTree) {
	for _, tr := range trees {
		for _, ev := range tr.events {
			c.postCall(ev)
		}
	}
}

func TestMergeEqualsInterleavedStream(t *testing.T) {
	// Several symbols per owner (merging folds symbol ledgers into
	// instance ledgers), plus one unowned symbol for the "" path.
	owners := map[string]string{
		"rx_poll": "Fleet/FromDevice#0",
		"rx_cls":  "Fleet/Classifier#1",
		"rx_arp":  "Fleet/Classifier#1",
		"tx_emit": "Fleet/ToDevice#2",
	}
	syms := []string{"rx_poll", "rx_cls", "rx_arp", "tx_emit", "ambient_tick"}

	rng := rand.New(rand.NewSource(7))
	var trees []callTree
	for i := 0; i < 400; i++ {
		trees = append(trees, genTree(rng, syms))
	}

	ref := synthCollector(t, owners)
	feed(ref, trees)

	const shards = 4
	parts := make([]*Collector, shards)
	for i := range parts {
		parts[i] = synthCollector(t, owners)
	}
	// Deterministic interleave: tree i goes to shard i mod K. Equality
	// must hold for any split; mod is one instance of "any".
	for i, tr := range trees {
		feed(parts[i%shards], []callTree{tr})
	}

	var reports []*Report
	for _, p := range parts {
		reports = append(reports, p.Report())
	}
	merged := MergeReports(reports...)
	want := ref.Report()
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged report != interleaved-stream report\nmerged: %+v\nwant:   %+v", merged, want)
	}

	// Percentiles recompute over the merged histograms; spot-check they
	// match the reference at several ranks.
	for i := range want.Instances {
		w, g := &want.Instances[i], &merged.Instances[i]
		for _, p := range []float64{1, 25, 50, 90, 99, 100} {
			if w.ApproxPercentile(p) != g.ApproxPercentile(p) {
				t.Errorf("instance %q p%g = %d, want %d", g.Path, p, g.ApproxPercentile(p), w.ApproxPercentile(p))
			}
		}
	}

	// Collector.Merge is the in-place variant of the same fold.
	acc := synthCollector(t, owners)
	for _, p := range parts {
		acc.Merge(p)
	}
	if got := acc.Report(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Collector.Merge report != interleaved-stream report\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestMergeReportsDisjointAndNil pins the edge cases: disjoint instance
// sets concatenate, nil reports are skipped, inputs are not mutated.
func TestMergeReportsDisjointAndNil(t *testing.T) {
	a := &Report{Instances: []InstanceMetrics{{Path: "A", Calls: 1, Cycles: 10}}}
	b := &Report{Instances: []InstanceMetrics{{Path: "B", Calls: 2, Restarts: 3}}}
	got := MergeReports(a, nil, b)
	want := &Report{Instances: []InstanceMetrics{
		{Path: "A", Calls: 1, Cycles: 10},
		{Path: "B", Calls: 2, Restarts: 3},
	}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeReports = %+v, want %+v", got, want)
	}
	got.Instances[0].Calls = 99
	if a.Instances[0].Calls != 1 {
		t.Fatal("MergeReports output aliases its input")
	}
}

// TestInstanceMetricsMergeSums checks the ledger fold field by field,
// including the trap and histogram arrays.
func TestInstanceMetricsMergeSums(t *testing.T) {
	a := InstanceMetrics{Path: "X", Calls: 3, Cycles: 100, Inits: 1, Finis: 2, Restarts: 3, Swaps: 4, Unloads: 5}
	a.Hist[0], a.Hist[5] = 2, 1
	a.Traps[machine.TrapGeneric] = 2
	b := InstanceMetrics{Path: "X", Calls: 5, Cycles: 50, Inits: 10, Finis: 20, Restarts: 30, Swaps: 40, Unloads: 50}
	b.Hist[5], b.Hist[HistBuckets-1] = 4, 1
	b.Traps[machine.TrapGeneric] = 1
	a.Merge(&b)
	if a.Calls != 8 || a.Cycles != 150 || a.Hist[0] != 2 || a.Hist[5] != 5 || a.Hist[HistBuckets-1] != 1 {
		t.Errorf("counter sums wrong: %+v", a)
	}
	if a.Traps[machine.TrapGeneric] != 3 {
		t.Errorf("Traps[generic] = %d, want 3", a.Traps[machine.TrapGeneric])
	}
	if a.Inits != 11 || a.Finis != 22 || a.Restarts != 33 || a.Swaps != 44 || a.Unloads != 55 {
		t.Errorf("lifecycle sums wrong: %+v", a)
	}
}
