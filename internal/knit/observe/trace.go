package observe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"knit/internal/machine"
)

// Span is one completed simulated call in a trace. Spans are recorded
// at call completion (post-order): a span's callees appear before it,
// at Depth one greater, with [Start, Start+Cycles] cycle intervals
// nested strictly inside its own.
type Span struct {
	Seq      uint64 `json:"seq"`                // completion order, monotonically increasing
	Depth    int    `json:"depth"`              // nesting depth at entry; 0 = top-level run
	Instance string `json:"instance,omitempty"` // owning unit-instance path, if attributed
	Fn       string `json:"fn"`                 // program-unique entry symbol
	Start    int64  `json:"start"`              // machine cycles at call entry
	Cycles   int64  `json:"cycles"`             // fuel delta: cycles consumed, callees included
	Err      string `json:"err,omitempty"`      // the call's error, when it failed
}

// Tracer is a fixed-capacity ring buffer of recent Spans. Recording
// overwrites the oldest span once full and never allocates, so a tracer
// can stay attached to a serving hot path.
type Tracer struct {
	buf []Span
	n   uint64 // spans recorded since attach (not capped by len(buf))
}

// record stores one completed call in the ring. The error message is
// materialized only on the fault path.
func (t *Tracer) record(ci machine.CallInfo, instance string) {
	sp := &t.buf[t.n%uint64(len(t.buf))]
	sp.Seq = t.n
	sp.Depth = ci.Depth
	sp.Instance = instance
	sp.Fn = ci.Fn
	sp.Start = ci.Start
	sp.Cycles = ci.Cycles
	if ci.Err != nil {
		sp.Err = ci.Err.Error()
	} else {
		sp.Err = ""
	}
	t.n++
}

// Recorded is the total number of spans seen, including any the ring
// has already overwritten.
func (t *Tracer) Recorded() uint64 { return t.n }

// Spans returns the retained spans oldest-first.
func (t *Tracer) Spans() []Span {
	if t.n <= uint64(len(t.buf)) {
		out := make([]Span, t.n)
		copy(out, t.buf[:t.n])
		return out
	}
	out := make([]Span, 0, len(t.buf))
	start := t.n % uint64(len(t.buf))
	out = append(out, t.buf[start:]...)
	out = append(out, t.buf[:start]...)
	return out
}

// WriteJSON emits the retained spans as JSON lines (one span object per
// line, oldest first) — the knit -trace FILE format.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, sp := range t.Spans() {
		b, err := json.Marshal(sp)
		if err != nil {
			return err
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadSpans parses a JSON-lines trace back into spans. Blank lines are
// skipped; a malformed line is an error naming its line number.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var sp Span
		if err := json.Unmarshal(raw, &sp); err != nil {
			return nil, fmt.Errorf("observe: trace line %d: %w", line, err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Node is a span with its reconstructed callees, in call order.
type Node struct {
	Span
	Children []*Node
}

// Nest reconstructs the call tree from a post-order span stream: a span
// at depth d adopts every not-yet-adopted span at depth d+1 recorded
// before it. Spans whose parent was overwritten by the ring (a
// truncated trace) surface as additional roots, ordered by Seq.
func Nest(spans []Span) []*Node {
	pending := map[int][]*Node{}
	for i := range spans {
		n := &Node{Span: spans[i]}
		n.Children = pending[n.Depth+1]
		pending[n.Depth+1] = nil
		pending[n.Depth] = append(pending[n.Depth], n)
	}
	var roots []*Node
	for _, ns := range pending {
		roots = append(roots, ns...)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Seq < roots[j].Seq })
	return roots
}
