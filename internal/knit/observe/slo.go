package observe

// Windowed SLO evaluation, shared by the reconfiguration layer's canary
// controller and the overload layer's per-shard circuit breakers:
// cumulative collector counters are turned into sliding deltas, so a
// shard's trap rate and cycle tail are judged on what happened
// *recently* (for a canary: since the upgrade), not diluted by its
// healthy history. The SLO judge below is the one implementation both
// consumers use — a candidate window is compared against a baseline
// window, so "healthy" is always relative to what the rest of the
// system is experiencing under the same traffic.

// Sample is an aggregate activity snapshot: calls, traps, and the
// per-call cycle histogram summed across instances. Samples subtract
// (Window.Advance) and add (Add), which is what makes sliding windows
// and fleet-side merging cheap.
type Sample struct {
	Calls uint64
	Traps uint64
	Hist  [HistBuckets]uint64
}

// Add accumulates s2 into s.
func (s *Sample) Add(s2 Sample) {
	s.Calls += s2.Calls
	s.Traps += s2.Traps
	for i := range s.Hist {
		s.Hist[i] += s2.Hist[i]
	}
}

// TrapRate is traps per call (0 when idle).
func (s *Sample) TrapRate() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.Traps) / float64(s.Calls)
}

// P99 estimates the 99th percentile of the per-call cycle distribution
// (upper bucket bound; 0 when idle).
func (s *Sample) P99() int64 {
	return histPercentile(&s.Hist, s.Calls, 99)
}

// Totals sums the collector's ledgers into one cumulative Sample —
// everything the machine did since the collector attached.
func (c *Collector) Totals() Sample {
	var s Sample
	for _, im := range c.inst {
		s.Calls += im.Calls
		s.Traps += im.TrapTotal()
		for i := range im.Hist {
			s.Hist[i] += im.Hist[i]
		}
	}
	return s
}

// Totals sums a detached report into one cumulative Sample, so merged
// fleet reports (retired generations included) feed the same SLO math
// live collectors do.
func (r *Report) Totals() Sample {
	var s Sample
	for i := range r.Instances {
		im := &r.Instances[i]
		s.Calls += im.Calls
		s.Traps += im.TrapTotal()
		for j := range im.Hist {
			s.Hist[j] += im.Hist[j]
		}
	}
	return s
}

// SLO bounds a candidate's windowed trap rate and cycle tail relative
// to a baseline observed over the same interval. The canary controller
// judges upgraded shards against stable ones with it; the overload
// layer's circuit breakers judge each shard against the rest of the
// fleet. Zero fields take the documented defaults.
type SLO struct {
	// MinCalls is how much candidate traffic must accumulate in the
	// window before a healthy judgment counts (default 256 calls).
	// Breaches are acted on regardless — thin evidence of health is
	// inconclusive, thin evidence of traps is not.
	MinCalls uint64
	// TrapRateMargin is how far above the baseline's windowed trap rate
	// the candidate's may sit before the judgment is a breach
	// (default 0.001).
	TrapRateMargin float64
	// P99Factor bounds the candidate's windowed per-call cycle p99 at
	// factor times the baseline's (default 4; the p99 is a log2 bucket
	// bound, so the factor spans two buckets).
	P99Factor float64
	// Windows is the sliding window length in observation ticks
	// (default 4).
	Windows int
	// PromoteAfter is how many consecutive healthy judgments conclude
	// the candidate is sound — a canary promotes, a half-open breaker
	// closes (default 2).
	PromoteAfter int
}

// WithDefaults fills zero fields with the documented defaults.
func (s SLO) WithDefaults() SLO {
	if s.MinCalls == 0 {
		s.MinCalls = 256
	}
	if s.TrapRateMargin == 0 {
		s.TrapRateMargin = 0.001
	}
	if s.P99Factor == 0 {
		s.P99Factor = 4
	}
	if s.Windows <= 0 {
		s.Windows = 4
	}
	if s.PromoteAfter <= 0 {
		s.PromoteAfter = 2
	}
	return s
}

// Verdict is one window's SLO judgment.
type Verdict int

const (
	// Inconclusive: the candidate window holds less than MinCalls of
	// traffic and no bound is breached — keep observing.
	Inconclusive Verdict = iota
	// Meeting: the candidate is within both bounds with enough traffic
	// to say so.
	Meeting
	// Breaching: the candidate exceeds the trap-rate margin or the p99
	// factor over the baseline.
	Breaching
)

func (v Verdict) String() string {
	switch v {
	case Meeting:
		return "meeting"
	case Breaching:
		return "breaching"
	default:
		return "inconclusive"
	}
}

// Judge compares one candidate window against one baseline window.
// Breaches are detected before the MinCalls floor is applied: a
// candidate that is already trapping on thin traffic is breaching, not
// inconclusive.
func (s SLO) Judge(candidate, baseline Sample) Verdict {
	if candidate.TrapRate() > baseline.TrapRate()+s.TrapRateMargin {
		return Breaching
	}
	if bp := baseline.P99(); bp > 0 && float64(candidate.P99()) > s.P99Factor*float64(bp) {
		return Breaching
	}
	if candidate.Calls < s.MinCalls {
		return Inconclusive
	}
	return Meeting
}

// Window turns cumulative samples into a sliding window of recent
// deltas. Feed it the collector's Totals at a steady cadence; Current
// sums the most recent Size deltas. Not safe for concurrent use — drive
// it from whatever goroutine owns the collector's machine.
type Window struct {
	size  int
	last  Sample
	ring  []Sample
	next  int
	count int
}

// NewWindow creates a sliding window over the size most recent deltas
// (minimum 1).
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{size: size, ring: make([]Sample, size)}
}

// Advance records the delta between now and the previous cumulative
// sample and returns the updated window total. A machine that was
// restored or respawned can present counters smaller than the previous
// sample; the delta then falls back to the new cumulative value (the
// fresh collector started from zero).
func (w *Window) Advance(now Sample) Sample {
	d := delta(now, w.last)
	w.last = now
	w.ring[w.next] = d
	w.next = (w.next + 1) % w.size
	if w.count < w.size {
		w.count++
	}
	return w.Current()
}

// Current sums the deltas currently in the window.
func (w *Window) Current() Sample {
	var s Sample
	for i := 0; i < w.count; i++ {
		s.Add(w.ring[i])
	}
	return s
}

// Reset empties the window and re-bases the cumulative anchor at now,
// so the next Advance measures from this instant — the canary
// controller calls it at apply time to scope judgment to post-upgrade
// traffic.
func (w *Window) Reset(now Sample) {
	w.last = now
	w.next, w.count = 0, 0
	for i := range w.ring {
		w.ring[i] = Sample{}
	}
}

// delta computes now-prev counter-wise, clamping each counter to now
// when it went backwards (collector replaced under the window).
func delta(now, prev Sample) Sample {
	d := Sample{Calls: sub(now.Calls, prev.Calls), Traps: sub(now.Traps, prev.Traps)}
	for i := range d.Hist {
		d.Hist[i] = sub(now.Hist[i], prev.Hist[i])
	}
	return d
}

func sub(now, prev uint64) uint64 {
	if now < prev {
		return now
	}
	return now - prev
}

// histPercentile estimates the p-th percentile (0 < p <= 100) of a
// log2 cycle histogram holding calls entries, returning the upper bound
// of the bucket containing it (0 when no calls were seen).
func histPercentile(hist *[HistBuckets]uint64, calls uint64, p float64) int64 {
	if calls == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(calls))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range hist {
		seen += c
		if seen >= rank {
			return int64(1) << (i + 1)
		}
	}
	return int64(1) << HistBuckets
}
