package observe

// Windowed SLO evaluation for the reconfiguration layer's canary
// controller: cumulative collector counters are turned into sliding
// deltas, so a canary shard's trap rate and cycle tail are judged on
// what happened *since the upgrade*, not diluted by its healthy history.

// Sample is an aggregate activity snapshot: calls, traps, and the
// per-call cycle histogram summed across instances. Samples subtract
// (Window.Advance) and add (Add), which is what makes sliding windows
// and fleet-side merging cheap.
type Sample struct {
	Calls uint64
	Traps uint64
	Hist  [HistBuckets]uint64
}

// Add accumulates s2 into s.
func (s *Sample) Add(s2 Sample) {
	s.Calls += s2.Calls
	s.Traps += s2.Traps
	for i := range s.Hist {
		s.Hist[i] += s2.Hist[i]
	}
}

// TrapRate is traps per call (0 when idle).
func (s *Sample) TrapRate() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.Traps) / float64(s.Calls)
}

// P99 estimates the 99th percentile of the per-call cycle distribution
// (upper bucket bound; 0 when idle).
func (s *Sample) P99() int64 {
	return histPercentile(&s.Hist, s.Calls, 99)
}

// Totals sums the collector's ledgers into one cumulative Sample —
// everything the machine did since the collector attached.
func (c *Collector) Totals() Sample {
	var s Sample
	for _, im := range c.inst {
		s.Calls += im.Calls
		s.Traps += im.TrapTotal()
		for i := range im.Hist {
			s.Hist[i] += im.Hist[i]
		}
	}
	return s
}

// Window turns cumulative samples into a sliding window of recent
// deltas. Feed it the collector's Totals at a steady cadence; Current
// sums the most recent Size deltas. Not safe for concurrent use — drive
// it from whatever goroutine owns the collector's machine.
type Window struct {
	size  int
	last  Sample
	ring  []Sample
	next  int
	count int
}

// NewWindow creates a sliding window over the size most recent deltas
// (minimum 1).
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{size: size, ring: make([]Sample, size)}
}

// Advance records the delta between now and the previous cumulative
// sample and returns the updated window total. A machine that was
// restored or respawned can present counters smaller than the previous
// sample; the delta then falls back to the new cumulative value (the
// fresh collector started from zero).
func (w *Window) Advance(now Sample) Sample {
	d := delta(now, w.last)
	w.last = now
	w.ring[w.next] = d
	w.next = (w.next + 1) % w.size
	if w.count < w.size {
		w.count++
	}
	return w.Current()
}

// Current sums the deltas currently in the window.
func (w *Window) Current() Sample {
	var s Sample
	for i := 0; i < w.count; i++ {
		s.Add(w.ring[i])
	}
	return s
}

// Reset empties the window and re-bases the cumulative anchor at now,
// so the next Advance measures from this instant — the canary
// controller calls it at apply time to scope judgment to post-upgrade
// traffic.
func (w *Window) Reset(now Sample) {
	w.last = now
	w.next, w.count = 0, 0
	for i := range w.ring {
		w.ring[i] = Sample{}
	}
}

// delta computes now-prev counter-wise, clamping each counter to now
// when it went backwards (collector replaced under the window).
func delta(now, prev Sample) Sample {
	d := Sample{Calls: sub(now.Calls, prev.Calls), Traps: sub(now.Traps, prev.Traps)}
	for i := range d.Hist {
		d.Hist[i] = sub(now.Hist[i], prev.Hist[i])
	}
	return d
}

func sub(now, prev uint64) uint64 {
	if now < prev {
		return now
	}
	return now - prev
}

// histPercentile estimates the p-th percentile (0 < p <= 100) of a
// log2 cycle histogram holding calls entries, returning the upper bound
// of the bucket containing it (0 when no calls were seen).
func histPercentile(hist *[HistBuckets]uint64, calls uint64, p float64) int64 {
	if calls == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(calls))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range hist {
		seen += c
		if seen >= rank {
			return int64(1) << (i + 1)
		}
	}
	return int64(1) << HistBuckets
}
