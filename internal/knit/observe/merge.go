package observe

import "sort"

// This file is the fleet roll-up path: per-shard collectors each hold a
// private ledger, and a fleet-wide report is their merge. Merging is
// exact for everything the ledgers store — counters and log2 histograms
// are sums — and the percentiles need no special handling because they
// were never stored: ApproxPercentile derives them from the histogram,
// so they recompute over the merged distribution for free. That is the
// reason the ledger keeps a histogram instead of a percentile estimate:
// histograms form a monoid, percentile sketches do not.

// Merge folds other's counters into im. The two ledgers must describe
// the same instance path; Merge does not check (MergeReports does).
func (im *InstanceMetrics) Merge(other *InstanceMetrics) {
	im.Calls += other.Calls
	im.Cycles += other.Cycles
	for i := range im.Hist {
		im.Hist[i] += other.Hist[i]
	}
	for i := range im.Traps {
		im.Traps[i] += other.Traps[i]
	}
	im.Inits += other.Inits
	im.Finis += other.Finis
	im.Restarts += other.Restarts
	im.Swaps += other.Swaps
	im.Unloads += other.Unloads
}

// MergeReports combines any number of reports into one: ledgers for the
// same instance path are merged, the rest are concatenated, and the
// result is sorted like a Collector.Report. Nil reports are skipped, the
// inputs are not mutated, and the output shares no memory with them.
func MergeReports(reports ...*Report) *Report {
	byPath := map[string]*InstanceMetrics{}
	var order []string
	for _, r := range reports {
		if r == nil {
			continue
		}
		for i := range r.Instances {
			im := &r.Instances[i]
			acc, ok := byPath[im.Path]
			if !ok {
				cp := *im
				byPath[im.Path] = &cp
				order = append(order, im.Path)
				continue
			}
			acc.Merge(im)
		}
	}
	sort.Strings(order)
	out := &Report{Instances: make([]InstanceMetrics, 0, len(order))}
	for _, path := range order {
		out.Instances = append(out.Instances, *byPath[path])
	}
	return out
}

// Merge folds another collector's ledgers into c (the receiving
// collector keeps attributing live traffic afterwards). Both collectors
// must be quiescent — merge between runs, not mid-call.
func (c *Collector) Merge(other *Collector) {
	for path, im := range other.inst {
		c.metricsFor(path).Merge(im)
	}
}
