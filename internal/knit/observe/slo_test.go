package observe

import "testing"

func sampleAt(calls, traps uint64, bucket int, n uint64) Sample {
	s := Sample{Calls: calls, Traps: traps}
	if bucket >= 0 {
		s.Hist[bucket] = n
	}
	return s
}

func TestWindowSlides(t *testing.T) {
	w := NewWindow(2)
	w.Reset(Sample{Calls: 100, Traps: 10})

	cur := w.Advance(Sample{Calls: 150, Traps: 12})
	if cur.Calls != 50 || cur.Traps != 2 {
		t.Fatalf("first delta = %d calls / %d traps, want 50/2", cur.Calls, cur.Traps)
	}
	cur = w.Advance(Sample{Calls: 200, Traps: 12})
	if cur.Calls != 100 || cur.Traps != 2 {
		t.Fatalf("two deltas = %d calls / %d traps, want 100/2", cur.Calls, cur.Traps)
	}
	// Third advance evicts the first delta: window holds the last two.
	cur = w.Advance(Sample{Calls: 210, Traps: 12})
	if cur.Calls != 60 || cur.Traps != 0 {
		t.Fatalf("slid window = %d calls / %d traps, want 60/0", cur.Calls, cur.Traps)
	}
}

func TestWindowClampsBackwardsCounters(t *testing.T) {
	// A respawn replaces the collector, so cumulative counters restart
	// from zero; the delta must clamp to the new value, not wrap.
	w := NewWindow(1)
	w.Reset(Sample{Calls: 1000, Traps: 5})
	cur := w.Advance(Sample{Calls: 30, Traps: 1})
	if cur.Calls != 30 || cur.Traps != 1 {
		t.Fatalf("clamped delta = %d calls / %d traps, want 30/1", cur.Calls, cur.Traps)
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(3)
	w.Reset(Sample{})
	w.Advance(Sample{Calls: 100})
	w.Reset(Sample{Calls: 100})
	if cur := w.Current(); cur.Calls != 0 {
		t.Fatalf("current after reset = %d calls, want 0", cur.Calls)
	}
	if cur := w.Advance(Sample{Calls: 120}); cur.Calls != 20 {
		t.Fatalf("delta after reset = %d calls, want 20", cur.Calls)
	}
}

func TestJudgeVerdicts(t *testing.T) {
	slo := SLO{MinCalls: 100, TrapRateMargin: 0.01, P99Factor: 4}.WithDefaults()
	base := sampleAt(1000, 0, 4, 1000) // trap rate 0, p99 bucket 4

	cases := []struct {
		name      string
		candidate Sample
		want      Verdict
	}{
		{"healthy", sampleAt(1000, 0, 4, 1000), Meeting},
		{"thin traffic", sampleAt(10, 0, 4, 10), Inconclusive},
		{"trap breach", sampleAt(1000, 100, 4, 1000), Breaching},
		// Breaches outrank the MinCalls floor: thin but trapping.
		{"thin trap breach", sampleAt(10, 5, 4, 10), Breaching},
		// p99 one bucket up is within P99Factor=4 (log2 buckets)...
		{"p99 within factor", sampleAt(1000, 0, 5, 1000), Meeting},
		// ...three buckets up (8x) is a breach.
		{"p99 breach", sampleAt(1000, 0, 7, 1000), Breaching},
	}
	for _, tc := range cases {
		if got := slo.Judge(tc.candidate, base); got != tc.want {
			t.Errorf("%s: verdict = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestJudgeIdleBaseline(t *testing.T) {
	// An idle baseline (no calls, p99 = 0) must not turn every busy
	// candidate into a p99 breach.
	slo := SLO{}.WithDefaults()
	cand := sampleAt(1000, 0, 8, 1000)
	if got := slo.Judge(cand, Sample{}); got != Meeting {
		t.Fatalf("verdict against idle baseline = %v, want %v", got, Meeting)
	}
}

func TestWithDefaults(t *testing.T) {
	d := SLO{}.WithDefaults()
	if d.MinCalls != 256 || d.TrapRateMargin != 0.001 || d.P99Factor != 4 ||
		d.Windows != 4 || d.PromoteAfter != 2 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	custom := SLO{MinCalls: 1, TrapRateMargin: 0.5, P99Factor: 2, Windows: 8, PromoteAfter: 3}
	if got := custom.WithDefaults(); got != custom {
		t.Fatalf("WithDefaults clobbered explicit fields: %+v", got)
	}
}
