package observe

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"knit/internal/cmini"
	"knit/internal/machine"
	"knit/internal/obj"
)

// Observe tests hand-build IR (like the machine tests) and assign unit
// ownership directly through Image.SymbolOwner, pinning down attribution
// semantics independently of the link and build layers.

func fn(name string, nargs, nregs int, code []obj.Instr) *obj.Func {
	return &obj.Func{Name: name, NArgs: nargs, NRegs: nregs, Code: code}
}

// ownedMachine builds app_main -> disk_read -> net_send, each symbol
// owned by a distinct unit instance.
func ownedMachine(t testing.TB) *machine.M {
	net := fn("net_send", 1, 2, []obj.Instr{
		{Op: obj.OpConst, Dst: 1, Imm: 1},
		{Op: obj.OpBin, Dst: 1, A: 0, B: 1, Tok: int(cmini.PLUS)},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	disk := fn("disk_read", 1, 2, []obj.Instr{
		{Op: obj.OpCall, Dst: 1, Sym: "net_send", Args: []obj.Reg{0}},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	app := fn("app_main", 1, 2, []obj.Instr{
		{Op: obj.OpCall, Dst: 1, Sym: "disk_read", Args: []obj.Reg{0}},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	f := obj.NewFile("observe_test")
	for _, fun := range []*obj.Func{net, disk, app} {
		f.Funcs[fun.Name] = fun
		f.AddSym(&obj.Symbol{Name: fun.Name, Kind: obj.SymFunc, Defined: true})
	}
	img, err := machine.Load(f, machine.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(img)
	m.Img.SymbolOwner = map[string]string{
		"app_main":  "Top/App#0",
		"disk_read": "Top/Disk#1",
		"net_send":  "Top/Net#2",
	}
	return m
}

// TestAttributionTable is the exhaustive attribution check: every
// TrapKind, plus restart/swap/init/fini/unload lifecycle events, must
// land on the unit instance that owns it — and only there. The Traps
// array is sized by machine.NumTrapKinds, so adding a trap kind without
// a counter fails to compile; this test additionally pins the runtime
// routing for each kind.
func TestAttributionTable(t *testing.T) {
	for k := 0; k < machine.NumTrapKinds; k++ {
		kind := machine.TrapKind(k)
		t.Run(kind.String(), func(t *testing.T) {
			m := ownedMachine(t)
			c := Attach(m)
			// Inject a trap of this kind at entry to disk_read: the error
			// propagates unchanged through app_main's frame, so the
			// collector must count it exactly once, against Top/Disk#1.
			m.PreCall = func(fname string) error {
				if fname == "disk_read" {
					return &machine.Trap{Kind: kind, Func: "disk_read", Msg: "injected"}
				}
				return nil
			}
			if _, err := m.Run("app_main", 1); err == nil {
				t.Fatal("injected trap did not surface")
			}
			disk := c.Snapshot("Top/Disk#1")
			if disk == nil {
				t.Fatal("no metrics attributed to Top/Disk#1")
			}
			for j := 0; j < machine.NumTrapKinds; j++ {
				want := uint64(0)
				if j == k {
					want = 1
				}
				if disk.Traps[j] != want {
					t.Errorf("Traps[%s] = %d, want %d", machine.TrapKind(j), disk.Traps[j], want)
				}
			}
			// The propagating frame (app_main) must not double-count.
			if app := c.Snapshot("Top/App#0"); app != nil && app.TrapTotal() != 0 {
				t.Errorf("propagating frame Top/App#0 counted %d traps, want 0", app.TrapTotal())
			}
			if net := c.Snapshot("Top/Net#2"); net != nil && net.TrapTotal() != 0 {
				t.Errorf("uninvolved Top/Net#2 counted %d traps, want 0", net.TrapTotal())
			}
		})
	}

	// Lifecycle events: each op must bump exactly its own counter on
	// exactly the named instance.
	m := ownedMachine(t)
	c := Attach(m)
	ops := []struct {
		op  string
		get func(*InstanceMetrics) uint64
	}{
		{"init", func(im *InstanceMetrics) uint64 { return im.Inits }},
		{"fini", func(im *InstanceMetrics) uint64 { return im.Finis }},
		{"restart", func(im *InstanceMetrics) uint64 { return im.Restarts }},
		{"swap", func(im *InstanceMetrics) uint64 { return im.Swaps }},
		{"unload", func(im *InstanceMetrics) uint64 { return im.Unloads }},
	}
	for i, op := range ops {
		c.LifecycleEvent("Top/Disk#1", op.op)
		disk := c.Snapshot("Top/Disk#1")
		if got := op.get(disk); got != 1 {
			t.Errorf("op %q: counter = %d, want 1", op.op, got)
		}
		total := disk.Inits + disk.Finis + disk.Restarts + disk.Swaps + disk.Unloads
		if total != uint64(i+1) {
			t.Errorf("after %q: lifecycle total = %d, want %d (op bumped a sibling counter)", op.op, total, i+1)
		}
		if other := c.Snapshot("Top/App#0"); other != nil {
			if other.Inits+other.Finis+other.Restarts+other.Swaps+other.Unloads != 0 {
				t.Errorf("op %q leaked onto Top/App#0", op.op)
			}
		}
	}
	c.LifecycleEvent("Top/Disk#1", "no-such-op") // must be ignored, not panic
}

// TestRealTrapAttribution: a genuinely raised machine trap (not
// injected) attributes to the faulting function's owner even though the
// hook sees it first on the innermost frame.
func TestRealTrapAttribution(t *testing.T) {
	bad := fn("disk_bad", 0, 1, []obj.Instr{
		{Op: obj.OpConst, Dst: 0, Imm: 3},
		{Op: obj.OpLoad, Dst: 0, A: 0}, // address 3 is inside the NULL guard
	})
	top := fn("app_top", 0, 1, []obj.Instr{
		{Op: obj.OpCall, Dst: 0, Sym: "disk_bad"},
		{Op: obj.OpRet, A: 0, HasVal: true},
	})
	f := obj.NewFile("t")
	for _, fun := range []*obj.Func{bad, top} {
		f.Funcs[fun.Name] = fun
		f.AddSym(&obj.Symbol{Name: fun.Name, Kind: obj.SymFunc, Defined: true})
	}
	img, err := machine.Load(f, machine.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(img)
	m.Img.SymbolOwner = map[string]string{"app_top": "Top/App#0", "disk_bad": "Top/Disk#1"}
	c := Attach(m)
	_, err = m.Run("app_top")
	var trap *machine.Trap
	if !errors.As(err, &trap) || trap.Kind != machine.TrapBadAddress {
		t.Fatalf("err = %v, want bad-address trap", err)
	}
	disk := c.Snapshot("Top/Disk#1")
	if disk == nil || disk.Traps[machine.TrapBadAddress] != 1 || disk.TrapTotal() != 1 {
		t.Fatalf("Top/Disk#1 traps = %+v, want exactly one bad-address", disk)
	}
	if app := c.Snapshot("Top/App#0"); app != nil && app.TrapTotal() != 0 {
		t.Errorf("Top/App#0 counted %d traps, want 0", app.TrapTotal())
	}
}

// TestSelfCycles: per-instance self cycles must partition the total —
// they sum to the top-level call's inclusive fuel, with no double
// counting across the call chain.
func TestSelfCycles(t *testing.T) {
	m := ownedMachine(t)
	var inclusive int64
	m.PostCall = func(ci machine.CallInfo) {
		if ci.Depth == 0 {
			inclusive += ci.Cycles
		}
	}
	c := Attach(m) // chains the hook above after the collector
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, err := m.Run("app_main", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	rep := c.Report()
	var selfSum int64
	for i := range rep.Instances {
		im := &rep.Instances[i]
		if im.Cycles <= 0 {
			t.Errorf("%s: self cycles = %d, want > 0", im.Path, im.Cycles)
		}
		if im.Calls != runs {
			t.Errorf("%s: calls = %d, want %d", im.Path, im.Calls, runs)
		}
		selfSum += im.Cycles
	}
	if selfSum != inclusive {
		t.Errorf("self cycles sum = %d, inclusive total = %d; attribution must partition fuel", selfSum, inclusive)
	}
	if got := rep.TotalCalls(); got != 3*runs {
		t.Errorf("TotalCalls = %d, want %d", got, 3*runs)
	}
}

// TestUnattributedCalls: symbols with no owner land in the "" ledger
// rather than vanishing.
func TestUnattributedCalls(t *testing.T) {
	m := ownedMachine(t)
	delete(m.Img.SymbolOwner, "net_send")
	c := Attach(m)
	if _, err := m.Run("app_main", 1); err != nil {
		t.Fatal(err)
	}
	anon := c.Snapshot("")
	if anon == nil || anon.Calls != 1 {
		t.Fatalf("unattributed ledger = %+v, want 1 call", anon)
	}
}

// TestDetachRestoresChain: Detach puts back the previously installed
// hook and stops collection.
func TestDetachRestoresChain(t *testing.T) {
	m := ownedMachine(t)
	var prior int
	m.PostCall = func(machine.CallInfo) { prior++ }
	c := Attach(m)
	if _, err := m.Run("app_main", 1); err != nil {
		t.Fatal(err)
	}
	if prior != 3 {
		t.Fatalf("chained hook fired %d times, want 3", prior)
	}
	c.Detach()
	if _, err := m.Run("app_main", 1); err != nil {
		t.Fatal(err)
	}
	if prior != 6 {
		t.Errorf("restored hook fired %d times total, want 6", prior)
	}
	if im := c.Snapshot("Top/App#0"); im.Calls != 1 {
		t.Errorf("collector kept counting after Detach: calls = %d, want 1", im.Calls)
	}
}

// TestCollectorZeroAllocs: the attached no-fault path (metrics + tracer)
// must stay off the heap once maps and ring are warm.
func TestCollectorZeroAllocs(t *testing.T) {
	m := ownedMachine(t)
	c := Attach(m)
	c.Trace(64)
	run := func() {
		if _, err := m.Run("app_main", 1); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm bySym memoization, instance ledgers, frame arenas
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Errorf("attached collector+tracer path: %.1f allocs/op, want 0", n)
	}
}

func TestHistogramAndPercentiles(t *testing.T) {
	if b := histBucket(0); b != 0 {
		t.Errorf("histBucket(0) = %d, want 0", b)
	}
	if b := histBucket(1); b != 0 {
		t.Errorf("histBucket(1) = %d, want 0", b)
	}
	if b := histBucket(1024); b != 10 {
		t.Errorf("histBucket(1024) = %d, want 10", b)
	}
	if b := histBucket(1 << 40); b != HistBuckets-1 {
		t.Errorf("histBucket(2^40) = %d, want tail bucket %d", b, HistBuckets-1)
	}
	var im InstanceMetrics
	if p := im.ApproxPercentile(50); p != 0 {
		t.Errorf("empty percentile = %d, want 0", p)
	}
	im.Calls = 100
	im.Hist[3] = 90 // [8,16)
	im.Hist[9] = 10 // [512,1024)
	if p := im.ApproxPercentile(50); p != 16 {
		t.Errorf("p50 = %d, want 16", p)
	}
	if p := im.ApproxPercentile(99); p != 1024 {
		t.Errorf("p99 = %d, want 1024", p)
	}
}

func TestReportFormat(t *testing.T) {
	m := ownedMachine(t)
	c := Attach(m)
	if _, err := m.Run("app_main", 1); err != nil {
		t.Fatal(err)
	}
	c.LifecycleEvent("Top/Disk#1", "restart")
	var buf bytes.Buffer
	c.Report().Format(&buf)
	out := buf.String()
	for _, want := range []string{"Top/App#0", "Top/Disk#1", "Top/Net#2", "restarts=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}
