package observe

import (
	"bytes"
	"strings"
	"testing"
)

// runTraced runs app_main n times with a tracer of the given capacity
// attached and returns the tracer.
func runTraced(t *testing.T, capacity, runs int) *Tracer {
	t.Helper()
	m := ownedMachine(t)
	c := Attach(m)
	tr := c.Trace(capacity)
	for i := 0; i < runs; i++ {
		if _, err := m.Run("app_main", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// TestTraceRoundTrip is the round-trip test from the issue: emit
// JSON-lines, re-parse them, and reconstruct the call nesting. Two runs
// of app_main -> disk_read -> net_send must come back as two roots with
// identical two-level chains under them.
func TestTraceRoundTrip(t *testing.T) {
	tr := runTraced(t, 64, 2)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 6 {
		t.Fatalf("round-tripped %d spans, want 6", len(spans))
	}
	if got := tr.Spans(); len(got) != len(spans) {
		t.Fatalf("tracer retains %d, parsed %d", len(got), len(spans))
	} else {
		for i := range spans {
			if spans[i] != got[i] {
				t.Errorf("span %d changed in round trip:\n  emitted %+v\n  parsed  %+v", i, got[i], spans[i])
			}
		}
	}

	roots := Nest(spans)
	if len(roots) != 2 {
		t.Fatalf("reconstructed %d roots, want 2: %+v", len(roots), roots)
	}
	for i, root := range roots {
		chain := []string{root.Fn}
		inst := []string{root.Instance}
		n := root
		for len(n.Children) == 1 {
			n = n.Children[0]
			chain = append(chain, n.Fn)
			inst = append(inst, n.Instance)
		}
		if len(n.Children) != 0 {
			t.Fatalf("root %d: unexpected fan-out at %s", i, n.Fn)
		}
		if strings.Join(chain, ">") != "app_main>disk_read>net_send" {
			t.Errorf("root %d chain = %v", i, chain)
		}
		if strings.Join(inst, ">") != "Top/App#0>Top/Disk#1>Top/Net#2" {
			t.Errorf("root %d instances = %v", i, inst)
		}
		// Spans are recorded post-order: every child completes (and is
		// sequenced) before its parent, inside the parent's fuel interval.
		for p := root; len(p.Children) > 0; p = p.Children[0] {
			ch := p.Children[0]
			if ch.Seq >= p.Seq {
				t.Errorf("child %s seq %d not before parent %s seq %d", ch.Fn, ch.Seq, p.Fn, p.Seq)
			}
			if ch.Start < p.Start || ch.Start+ch.Cycles > p.Start+p.Cycles {
				t.Errorf("child %s interval [%d,+%d] outside parent %s [%d,+%d]",
					ch.Fn, ch.Start, ch.Cycles, p.Fn, p.Start, p.Cycles)
			}
			if ch.Depth != p.Depth+1 {
				t.Errorf("child %s depth %d under parent depth %d", ch.Fn, ch.Depth, p.Depth)
			}
		}
	}
}

// TestTraceRingTruncation: when the ring wraps, Spans() returns the
// newest entries oldest-first and Nest still produces a forest — spans
// whose parent was overwritten surface as roots instead of vanishing.
func TestTraceRingTruncation(t *testing.T) {
	tr := runTraced(t, 16, 10) // 30 spans through a 16-slot ring
	if tr.Recorded() != 30 {
		t.Fatalf("Recorded = %d, want 30", tr.Recorded())
	}
	spans := tr.Spans()
	if len(spans) != 16 {
		t.Fatalf("retained %d spans, want 16", len(spans))
	}
	for i := range spans {
		if want := uint64(14 + i); spans[i].Seq != want {
			t.Errorf("spans[%d].Seq = %d, want %d (oldest-first)", i, spans[i].Seq, want)
		}
	}
	roots := Nest(spans)
	var total int
	var walk func(n *Node)
	walk = func(n *Node) {
		total++
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	if total != len(spans) {
		t.Errorf("Nest lost spans: forest holds %d of %d", total, len(spans))
	}
	for i := 1; i < len(roots); i++ {
		if roots[i-1].Seq > roots[i].Seq {
			t.Errorf("roots out of Seq order at %d", i)
		}
	}
}

// TestTraceErrSpans: a faulting call serializes its error message and
// survives the round trip.
func TestTraceErrSpans(t *testing.T) {
	m := ownedMachine(t)
	c := Attach(m)
	tr := c.Trace(16)
	m.PreCall = func(fname string) error {
		if fname == "net_send" {
			return &testErr{}
		}
		return nil
	}
	if _, err := m.Run("app_main", 1); err == nil {
		t.Fatal("expected injected failure")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var withErr int
	for _, sp := range spans {
		if sp.Err != "" {
			withErr++
			if sp.Err != "boom" {
				t.Errorf("span %s err = %q, want boom", sp.Fn, sp.Err)
			}
		}
	}
	if withErr != 3 {
		t.Errorf("%d spans carry the error, want 3 (every propagating frame)", withErr)
	}
}

type testErr struct{}

func (*testErr) Error() string { return "boom" }

// TestReadSpansRejectsGarbage: a malformed line reports its line number.
func TestReadSpansRejectsGarbage(t *testing.T) {
	in := `{"seq":0,"depth":0,"fn":"a","start":0,"cycles":1}` + "\n\nnot json\n"
	_, err := ReadSpans(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line-3 parse error", err)
	}
}
