package assemble

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"knit/internal/knit/build"
	"knit/internal/knit/constraint"
	"knit/internal/knit/lang"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

// Repo is a unit repository the assembler searches: the unit-definition
// files and the virtual source filesystem needed to build whatever it
// wires together (see oskit.Repository for the kit's).
type Repo struct {
	UnitFiles map[string]string
	Sources   link.Sources
}

// Options tunes the search and verification budgets. The zero value
// uses the defaults below.
type Options struct {
	// MaxInstances caps placed unit instances per assembly (default 16;
	// a goal's "limit N" overrides it).
	MaxInstances int
	// MaxPerUnit caps instances of any single unit (default 2) — it
	// bounds the multi-instantiation fan-out without forbidding it.
	MaxPerUnit int
	// RawBudget caps distinct complete wirings the search may emit to
	// the verifier (default 256).
	RawBudget int
	// RankPool is how many verified assemblies to collect for cost
	// ranking before stopping (default 8; Enumerate raises it to K).
	RankPool int
	// Backend selects the execution engine used to measure init cycles
	// and by the returned Results.
	Backend machine.Backend
}

const (
	defaultMaxInstances = 16
	defaultMaxPerUnit   = 2
	defaultRawBudget    = 256
	defaultRankPool     = 8
)

// Cost is the predicted price of running an assembly: the flattened
// image's text size plus the cycles its init schedule takes on the
// machine model.
type Cost struct {
	TextSize   int64
	InitCycles int64
}

// Score is the ranking key (smaller is better).
func (c Cost) Score() int64 { return c.TextSize + c.InitCycles }

func (c Cost) String() string {
	return fmt.Sprintf("text=%d init=%d score=%d", c.TextSize, c.InitCycles, c.Score())
}

// Assembly is one verified satisfying wiring: its printable .unit
// source, the units it instantiates, its measured cost, and the build
// that verified it (constraint-checked, init run transactionally).
type Assembly struct {
	Goal  *Goal
	Name  string   // generated compound unit's name (build it with Top=Name)
	Units []string // instantiated unit names, in placement order
	Text  string   // .unit source; reparses and rebuilds standalone
	Cost  Cost
	// Result is the verifying build of UnitFiles+Text with Check on.
	Result *build.Result
}

// UnsatError reports that no assembly satisfies the goal, with the most
// informative blocker the exhaustive search encountered.
type UnsatError struct {
	Goal     *Goal
	Explored int // complete candidate wirings examined
	// Violation is the blocking §4 constraint, when one exists.
	Violation *constraint.Violation
	// Reason is the human-readable explanation (always set).
	Reason string
}

func (e *UnsatError) Error() string {
	name := e.Goal.Name
	if name == "" {
		name = "(unnamed)"
	}
	return fmt.Sprintf("assemble: goal %s is unsatisfiable: %s", name, e.Reason)
}

// BudgetError reports that the search budgets ran out before a verified
// assembly was found — unlike UnsatError it is not a proof of
// unsatisfiability.
type BudgetError struct {
	Goal     *Goal
	Explored int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("assemble: search budget exhausted after %d candidates without a verified assembly (raise Options budgets or the goal's limit)", e.Explored)
}

// Assemble searches the repository for the cheapest assembly satisfying
// the goal. On success the returned Assembly has been verified end to
// end: it passed the constraint checker, built through the real
// pipeline, and ran its init schedule transactionally. An unsatisfiable
// goal returns an *UnsatError naming the blocker.
func Assemble(repo Repo, goal *Goal, opts Options) (*Assembly, error) {
	out, err := Enumerate(repo, goal, 1, opts)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// Enumerate returns up to k distinct verified assemblies satisfying the
// goal, cheapest first. Fewer than k may exist; zero is an *UnsatError
// (or *BudgetError when the search was truncated by a budget).
func Enumerate(repo Repo, goal *Goal, k int, opts Options) ([]*Assembly, error) {
	if k < 1 {
		return nil, fmt.Errorf("assemble: k must be positive, got %d", k)
	}
	if opts.MaxInstances <= 0 {
		opts.MaxInstances = defaultMaxInstances
	}
	if goal.Limit > 0 {
		opts.MaxInstances = goal.Limit
	}
	if opts.MaxPerUnit <= 0 {
		opts.MaxPerUnit = defaultMaxPerUnit
	}
	if opts.RawBudget <= 0 {
		opts.RawBudget = defaultRawBudget
	}
	if opts.RankPool <= 0 {
		opts.RankPool = defaultRankPool
	}
	pool := opts.RankPool
	if k > pool {
		pool = k
	}

	reg, err := parseRepo(repo)
	if err != nil {
		return nil, err
	}
	if err := validateGoal(reg, goal); err != nil {
		return nil, err
	}

	name := assemblyName(reg, goal)
	cache := build.NewCache()
	var verified []*Assembly
	var s *searcher
	s = newSearcher(reg, goal, opts.MaxInstances, opts.MaxPerUnit, opts.RawBudget,
		func(cand *candidate) bool {
			asm, err := verify(repo, goal, name, cand, cache, opts.Backend)
			if err != nil {
				var v *constraint.Violation
				if errors.As(err, &v) {
					s.recordViolation(v)
				} else if s.blk.err == nil {
					s.blk.err = err
				}
				return true // keep searching
			}
			verified = append(verified, asm)
			return len(verified) < pool
		})
	s.run()

	if len(verified) == 0 {
		if s.exhausted && !s.capped {
			return nil, unsatFrom(goal, s)
		}
		if r := unsatFrom(goal, s); s.exhausted && r.Violation != nil {
			// Every branch died on the same class of blocker even though
			// an instance cap also bit; surface the semantic reason.
			return nil, r
		}
		return nil, &BudgetError{Goal: goal, Explored: s.raw}
	}
	sort.SliceStable(verified, func(i, j int) bool {
		if si, sj := verified[i].Cost.Score(), verified[j].Cost.Score(); si != sj {
			return si < sj
		}
		return verified[i].Text < verified[j].Text
	})
	if len(verified) > k {
		verified = verified[:k]
	}
	return verified, nil
}

// parseRepo parses the repository's unit files into a registry.
func parseRepo(repo Repo) (*link.Registry, error) {
	names := make([]string, 0, len(repo.UnitFiles))
	for name := range repo.UnitFiles {
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*lang.File, 0, len(names))
	for _, name := range names {
		f, err := lang.Parse(name, repo.UnitFiles[name])
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return link.NewRegistry(files...)
}

// validateGoal rejects goals that reference names the repository does
// not declare — configuration errors, distinct from unsatisfiability.
func validateGoal(reg *link.Registry, goal *Goal) error {
	for _, e := range goal.Exports {
		if _, ok := reg.BundleTypes[e.Type]; !ok {
			return fmt.Errorf("assemble: goal export %q: unknown bundle type %q", e.Local, e.Type)
		}
	}
	locals := map[string]bool{}
	for _, e := range goal.Exports {
		locals[e.Local] = true
	}
	for _, b := range goal.Bounds {
		p, ok := reg.Properties[b.Prop]
		if !ok {
			return fmt.Errorf("assemble: goal bound %s: unknown property %q", b, b.Prop)
		}
		if !hasValue(p, b.Value) {
			return fmt.Errorf("assemble: goal bound %s: property %q has no value %q", b, b.Prop, b.Value)
		}
		if b.Arg != lang.ExportsKeyword && !locals[b.Arg] {
			return fmt.Errorf("assemble: goal bound %s: %q is not a goal export", b, b.Arg)
		}
	}
	for _, u := range append(append([]string{}, goal.Use...), goal.Avoid...) {
		if _, ok := reg.Units[u]; !ok {
			return fmt.Errorf("assemble: goal names unknown unit %q", u)
		}
	}
	if goal.Top != "" {
		if _, ok := reg.Units[goal.Top]; !ok {
			return fmt.Errorf("assemble: goal top: unknown unit %q", goal.Top)
		}
	}
	return nil
}

func hasValue(p *lang.Property, v string) bool {
	for _, pv := range p.Values {
		if pv.Name == v {
			return true
		}
	}
	return false
}

// assemblyName picks a deterministic unit name for the generated
// compound that does not collide with the repository.
func assemblyName(reg *link.Registry, goal *Goal) string {
	base := goal.Name
	if base == "" {
		base = "Assembly"
	}
	name := base
	for i := 2; ; i++ {
		if _, taken := reg.Units[name]; !taken {
			return name
		}
		name = fmt.Sprintf("%s_%d", base, i)
	}
}

// verify round-trips one candidate through the real pipeline: print it,
// build it with the §4 checker on, re-check the goal's bounds against
// the elaborated program, and run its init schedule transactionally on
// a fresh machine (with the standard device builtins installed), timing
// it for the cost model.
func verify(repo Repo, goal *Goal, name string, cand *candidate, cache *build.Cache, backend machine.Backend) (*Assembly, error) {
	cand.unit.Name = name
	text := lang.Print(&lang.File{Units: []*lang.Unit{cand.unit}})
	files := make(map[string]string, len(repo.UnitFiles)+1)
	for k, v := range repo.UnitFiles {
		files[k] = v
	}
	files["__assembly.unit"] = text
	res, err := build.Build(build.Options{
		Top:       name,
		UnitFiles: files,
		Sources:   repo.Sources,
		Check:     true,
		Cache:     cache,
		Backend:   backend,
	})
	if err != nil {
		return nil, err
	}

	// The builder's Check covers the units' own constraints; the goal's
	// bounds are external, so impose them on the elaborated endpoints.
	var bounds []constraint.Bound
	for _, b := range goal.Bounds {
		for _, e := range goal.Exports {
			if b.Arg != e.Local && b.Arg != lang.ExportsKeyword {
				continue
			}
			w, ok := res.Program.Exports[e.Local]
			if !ok {
				return nil, fmt.Errorf("assemble: built assembly lost export %q", e.Local)
			}
			bounds = append(bounds, constraint.Bound{
				Var:   constraint.Var{Inst: w.Provider, Bundle: w.Bundle, Prop: b.Prop},
				Op:    b.Op,
				Value: b.Value,
			})
		}
	}
	if len(bounds) > 0 {
		if _, err := constraint.CheckAssembly(res.Program.Registry, res.Program.SortedInstances(), bounds); err != nil {
			return nil, err
		}
	}
	// Defense in depth: nothing forbidden may survive elaboration.
	for _, inst := range res.Program.Instances {
		for _, av := range goal.Avoid {
			if inst.Unit.Name == av {
				return nil, fmt.Errorf("assemble: forbidden unit %q reached the elaborated program", av)
			}
		}
	}

	m := res.NewMachine()
	machine.InstallConsole(m)
	machine.InstallSerial(m)
	machine.InstallStopWatch(m)
	if err := res.RunInit(m); err != nil {
		return nil, fmt.Errorf("assemble: candidate init failed: %w", err)
	}
	return &Assembly{
		Goal:   goal,
		Name:   name,
		Units:  append([]string{}, cand.units...),
		Text:   text,
		Cost:   Cost{TextSize: res.Image.TextSize, InitCycles: m.Cycles},
		Result: res,
	}, nil
}

// unsatFrom assembles the UnsatError from the search's blocker record,
// preferring a named constraint violation, then a dead demand, then any
// other failure.
func unsatFrom(goal *Goal, s *searcher) *UnsatError {
	e := &UnsatError{Goal: goal, Explored: s.raw}
	switch {
	case s.blk.violation != nil:
		e.Violation = s.blk.violation
		e.Reason = fmt.Sprintf("blocked by constraint: %s", s.blk.violation.Error())
	case s.blk.demand != nil:
		d := s.blk.demand
		switch {
		case d.typ == "":
			e.Reason = fmt.Sprintf("%s is cut by the goal's avoid set (forbidden: %s)",
				d.consumer, strings.Join(d.forbidden, ", "))
		case d.top != "":
			e.Reason = fmt.Sprintf("the fixed top %s exports no bundle of type %s (needed by %s)",
				d.top, d.typ, d.consumer)
		case len(d.forbidden) > 0:
			e.Reason = fmt.Sprintf("no admissible provider of bundle type %s for %s: %s forbidden by the goal's avoid set {%s}",
				d.typ, d.consumer, strings.Join(d.forbidden, ", "), strings.Join(goal.Avoid, ", "))
		default:
			e.Reason = fmt.Sprintf("no unit in the repository exports bundle type %s (needed by %s)", d.typ, d.consumer)
		}
	case s.blk.err != nil:
		e.Reason = s.blk.err.Error()
	default:
		e.Reason = "search space exhausted without a satisfying wiring"
	}
	return e
}
