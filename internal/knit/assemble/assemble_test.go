package assemble_test

import (
	"errors"
	"strings"
	"testing"

	"knit/internal/knit/assemble"
	"knit/internal/knit/constraint"
	"knit/internal/machine"
	"knit/internal/oskit"
)

// smallOpts keeps searches cheap in tests; correctness must not depend
// on large budgets.
var smallOpts = assemble.Options{RawBudget: 64, RankPool: 3}

func mustParse(t *testing.T, src string) *assemble.Goal {
	t.Helper()
	g, err := assemble.ParseGoal("test.goal", src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAssembleConsoleGoal(t *testing.T) {
	g := mustParse(t, `goal Console; export out : PutChar; bound context(out) <= NoContext;`)
	asm, err := assemble.Assemble(oskit.Repository(), g, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if asm.Cost.TextSize <= 0 {
		t.Fatalf("cost not measured: %+v", asm.Cost)
	}
	if !strings.Contains(asm.Text, "unit Console") {
		t.Fatalf("emitted text lacks the named compound:\n%s", asm.Text)
	}
	// The emitted source is self-contained against the repository: a
	// cold rebuild with the checker on must succeed.
	if asm.Result == nil || asm.Result.ConstraintReport == nil {
		t.Fatal("assembly was not verified by the constraint checker")
	}
}

func TestAssemblePrefersCheaperProvider(t *testing.T) {
	// Printf requires a PutChar provider underneath; enumeration must
	// surface distinct wirings (ConsoleDev vs SerialDev vs VgaConsole),
	// ranked by measured cost.
	g := mustParse(t, `goal Pf; export pf : Printf;`)
	asms, err := assemble.Enumerate(oskit.Repository(), g, 3, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(asms) < 2 {
		t.Fatalf("want >= 2 distinct assemblies, got %d", len(asms))
	}
	seen := map[string]bool{}
	for i, a := range asms {
		if seen[a.Text] {
			t.Fatalf("assembly %d duplicates an earlier text", i)
		}
		seen[a.Text] = true
		if i > 0 && asms[i-1].Cost.Score() > a.Cost.Score() {
			t.Fatalf("assemblies not sorted by cost: %v then %v", asms[i-1].Cost, a.Cost)
		}
	}
}

func TestAssembleHonorsUseAndTop(t *testing.T) {
	g := mustParse(t, `goal Hello; export main : Main; top HelloMain; use SerialDev;`)
	asm, err := assemble.Assemble(oskit.Repository(), g, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	var hasTop, hasUse bool
	for _, u := range asm.Units {
		hasTop = hasTop || u == "HelloMain"
		hasUse = hasUse || u == "SerialDev"
	}
	if !hasTop || !hasUse {
		t.Fatalf("units %v missing top HelloMain or required SerialDev", asm.Units)
	}
	// The assembled kernel must actually run.
	m := asm.Result.NewMachine()
	con := machine.InstallConsole(m)
	machine.InstallSerial(m)
	machine.InstallStopWatch(m)
	if _, err := asm.Result.Run(m, "main", "kmain", 0); err != nil {
		t.Fatalf("assembled kernel run: %v", err)
	}
	if con.String() == "" && !strings.Contains(asm.Text, "SerialDev") {
		t.Fatalf("no output and no serial route:\n%s", asm.Text)
	}
}

func TestAssembleAvoidExcludesCompoundsTransitively(t *testing.T) {
	// Avoiding SpinLock must also reject compound kernels that contain
	// one (SafeIrqKernel), not just the unit itself.
	g := mustParse(t, `goal I; export irq : Irq; avoid SpinLock, IrqDefer, BlockingLock;`)
	_, err := assemble.Assemble(oskit.Repository(), g, smallOpts)
	var unsat *assemble.UnsatError
	if !errors.As(err, &unsat) {
		t.Fatalf("want UnsatError (no Lock provider left), got %v", err)
	}
}

// TestSection4ContextViolationGoal is the paper's §4 scenario as a goal:
// an interrupt handler over a blocking lock. With the spinlock (and the
// deferred-work detour) forbidden, every wiring pins context(irq) =
// NoContext against a ProcessContext lock — the goal must be reported
// unsatisfiable with the context constraint named, never a wiring.
func TestSection4ContextViolationGoal(t *testing.T) {
	g := mustParse(t, `
goal UnsafeIrq;
export irq : Irq;
use BlockingLock;
avoid SpinLock, IrqDefer;
`)
	_, err := assemble.Assemble(oskit.Repository(), g, smallOpts)
	var unsat *assemble.UnsatError
	if !errors.As(err, &unsat) {
		t.Fatalf("want UnsatError, got %v", err)
	}
	if unsat.Violation == nil {
		t.Fatalf("unsat explanation lacks the blocking constraint: %v", unsat)
	}
	if unsat.Violation.Var.Prop != "context" {
		t.Fatalf("blocking constraint is %q, want the §4 context property: %v",
			unsat.Violation.Var.Prop, unsat)
	}
	if !strings.Contains(unsat.Error(), "context") {
		t.Fatalf("explanation does not name the context constraint: %v", unsat)
	}
}

// TestUnsatGoalTable is the exhaustive unsatisfiability table:
// conflicting property bounds, missing exports, and forbidden-unit
// cuts, each asserting the explanation names the actual blocker.
func TestUnsatGoalTable(t *testing.T) {
	cases := []struct {
		name string
		goal string
		// wantAll must all appear in the error text.
		wantAll []string
		// wantViolation requires the blocker to be a named constraint.
		wantViolation bool
	}{
		{
			name:          "bound conflicts with provider pin",
			goal:          `goal G; export out : PutChar; bound context(out) = ProcessContext;`,
			wantAll:       []string{"context"},
			wantViolation: true,
		},
		{
			name: "two conflicting bounds on one export",
			goal: `goal G; export str : Str;
bound context(str) >= NoContext;
bound context(str) <= ProcessContext;`,
			wantAll:       []string{"context"},
			wantViolation: true,
		},
		{
			name:    "forbidden units cut every provider",
			goal:    `goal G; export out : PutChar; avoid ConsoleDev, SerialDev, VgaConsole;`,
			wantAll: []string{"PutChar", "ConsoleDev", "SerialDev", "VgaConsole", "avoid"},
		},
		{
			name:    "required unit is itself forbidden",
			goal:    `goal G; export lock : Lock; use SpinLock; avoid SpinLock;`,
			wantAll: []string{"SpinLock", "avoid"},
		},
		{
			name:    "required compound contains a forbidden unit",
			goal:    `goal G; export irq : Irq; use SafeIrqKernel; avoid SpinLock;`,
			wantAll: []string{"SafeIrqKernel", "SpinLock", "avoid"},
		},
		{
			name:    "fixed top lacks the export type",
			goal:    `goal G; export out : PutChar; top StringU;`,
			wantAll: []string{"StringU", "PutChar", "top"},
		},
		{
			name:    "drain without its only provider",
			goal:    `goal G; export d : Drainer; avoid DeferredWork;`,
			wantAll: []string{"Drainer", "DeferredWork"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := mustParse(t, tc.goal)
			_, err := assemble.Assemble(oskit.Repository(), g, smallOpts)
			var unsat *assemble.UnsatError
			if !errors.As(err, &unsat) {
				t.Fatalf("want UnsatError, got %v", err)
			}
			for _, w := range tc.wantAll {
				if !strings.Contains(unsat.Error(), w) {
					t.Fatalf("explanation %q does not name %q", unsat.Error(), w)
				}
			}
			if tc.wantViolation && unsat.Violation == nil {
				t.Fatalf("want a named blocking constraint, got %v", unsat)
			}
		})
	}
}

// TestGoalConfigErrors distinguishes misconfigured goals (unknown
// names) from unsatisfiable ones: they fail fast, not with UnsatError.
func TestGoalConfigErrors(t *testing.T) {
	cases := []string{
		`goal G; export out : NoSuchType;`,
		`goal G; export out : PutChar; bound nosuchprop(out) <= NoContext;`,
		`goal G; export out : PutChar; bound context(out) <= NoSuchValue;`,
		`goal G; export out : PutChar; bound context(other) <= NoContext;`,
		`goal G; export out : PutChar; use NoSuchUnit;`,
		`goal G; export out : PutChar; avoid NoSuchUnit;`,
		`goal G; export out : PutChar; top NoSuchUnit;`,
	}
	for _, src := range cases {
		g := mustParse(t, src)
		_, err := assemble.Assemble(oskit.Repository(), g, smallOpts)
		if err == nil {
			t.Fatalf("goal %q accepted", src)
		}
		var unsat *assemble.UnsatError
		if errors.As(err, &unsat) {
			t.Fatalf("goal %q reported unsatisfiable, want config error: %v", src, err)
		}
	}
}

// TestEnumerateGoalBoundsHoldOnEveryResult re-checks the goal bounds on
// every enumerated assembly's elaborated program — the enumerator must
// never leak a wiring that only the winner satisfies.
func TestEnumerateGoalBoundsHoldOnEveryResult(t *testing.T) {
	g := mustParse(t, `goal Q; export enq : WorkQ; bound context(enq) <= NoContext;`)
	asms, err := assemble.Enumerate(oskit.Repository(), g, 4, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range asms {
		w, ok := a.Result.Program.Exports["enq"]
		if !ok {
			t.Fatalf("assembly %s lost the enq export", a.Name)
		}
		bounds := []constraint.Bound{{
			Var:   constraint.Var{Inst: w.Provider, Bundle: w.Bundle, Prop: "context"},
			Op:    a.Goal.Bounds[0].Op,
			Value: "NoContext",
		}}
		if _, err := constraint.CheckAssembly(a.Result.Program.Registry,
			a.Result.Program.SortedInstances(), bounds); err != nil {
			t.Fatalf("assembly %s violates the goal bound: %v", a.Name, err)
		}
	}
}
