package assemble

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"knit/internal/knit/constraint"
	"knit/internal/knit/lang"
	"knit/internal/knit/link"
)

// provider is one way to satisfy a bundle-type demand with a fresh
// instance: a repository unit and which of its exports has the type.
type provider struct {
	unit   *lang.Unit
	export string
}

// ref names one export endpoint of the assembly under construction.
type ref struct {
	idx    int    // instance index
	export string // export local of that instance's unit
}

// node is one placed instance: the repository unit, a fabricated
// link.Instance carrying the partial wiring for constraint checks, and
// the emission-side record of which assembly export feeds each import.
type node struct {
	unit  *lang.Unit
	li    *link.Instance
	wires map[string]ref
}

// demand is one unwired endpoint: an instance's import, or (consumer
// == -1) a goal export still needing a provider.
type demand struct {
	consumer int
	local    string
	typ      string
}

// candidate is one complete satisfying wiring, ready to be named,
// printed, and verified through the real build pipeline.
type candidate struct {
	unit  *lang.Unit // compound unit; Name assigned by the verifier
	units []string   // instantiated unit names, in placement order
	key   string     // canonical structure key for dedup
}

// demandBlock explains a demand no option could satisfy.
type demandBlock struct {
	typ       string
	consumer  string   // "goal export 'x'" or an instance path
	forbidden []string // repository providers cut by the goal's avoid set
	goal      bool     // blocked demand was a goal export
	top       string   // non-empty: a fixed top restricted the providers
}

// blockers accumulates the most informative failure seen on each axis,
// from which an UnsatError is assembled if the search exhausts.
type blockers struct {
	violation *constraint.Violation
	demand    *demandBlock
	err       error // non-violation verification failure (build, init)
}

type searcher struct {
	reg  *link.Registry
	goal *Goal

	maxInst    int
	maxPerUnit int
	rawBudget  int

	providersByType map[string][]provider
	closures        map[string][]string // unit -> sorted transitive unit-name closure

	insts     []*node
	perUnit   map[string]int
	goalWire  map[string]ref
	goalTaken map[ref]string
	bounds    []constraint.Bound

	seen      map[string]bool
	raw       int
	capped    bool // a branch died on an instance cap, not on semantics
	stopped   bool
	exhausted bool
	blk       blockers

	yield func(*candidate) bool // false stops the search
}

func newSearcher(reg *link.Registry, goal *Goal, maxInst, maxPerUnit, rawBudget int, yield func(*candidate) bool) *searcher {
	s := &searcher{
		reg: reg, goal: goal,
		maxInst: maxInst, maxPerUnit: maxPerUnit, rawBudget: rawBudget,
		providersByType: map[string][]provider{},
		closures:        map[string][]string{},
		perUnit:         map[string]int{},
		goalWire:        map[string]ref{},
		goalTaken:       map[ref]string{},
		seen:            map[string]bool{},
		yield:           yield,
	}
	names := make([]string, 0, len(reg.Units))
	for name := range reg.Units {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.closures[name] = s.closureOf(name, map[string]bool{})
	}
	for _, name := range names {
		u := reg.Units[name]
		if len(s.avoidHits(name)) > 0 {
			continue // the unit, or a unit inside it, is forbidden
		}
		for _, exp := range u.Exports {
			s.providersByType[exp.Type] = append(s.providersByType[exp.Type],
				provider{unit: u, export: exp.Local})
		}
	}
	return s
}

// closureOf computes the transitive set of unit names a unit
// instantiates (itself included) — the repository enumeration view of a
// compound provider, used to apply avoid sets through compounds.
func (s *searcher) closureOf(name string, onPath map[string]bool) []string {
	if c, ok := s.closures[name]; ok {
		return c
	}
	if onPath[name] {
		return []string{name} // recursive compounds are rejected later by elaboration
	}
	onPath[name] = true
	set := map[string]bool{name: true}
	if u := s.reg.Units[name]; u != nil {
		for _, l := range u.Links {
			for _, sub := range s.closureOf(l.Unit, onPath) {
				set[sub] = true
			}
		}
	}
	delete(onPath, name)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// avoidHits returns the goal-forbidden units inside the named unit's
// closure (sorted), empty when the unit is admissible.
func (s *searcher) avoidHits(name string) []string {
	var hits []string
	for _, sub := range s.closures[name] {
		for _, av := range s.goal.Avoid {
			if sub == av {
				hits = append(hits, sub)
			}
		}
	}
	return hits
}

// run seeds the fixed top and required units, queues the goal's export
// demands, and starts the backtracking enumeration.
func (s *searcher) run() {
	var stack []demand
	if s.goal.Top != "" {
		if !s.seedUnit(s.goal.Top, "goal top", &stack) {
			s.exhausted = true
			return
		}
	}
	for _, u := range s.goal.Use {
		if u == s.goal.Top {
			continue
		}
		if !s.seedUnit(u, "goal use", &stack) {
			s.exhausted = true
			return
		}
	}
	// Goal exports are pushed last (resolved first): bounds attach as
	// soon as a goal export is wired, so pruning bites early.
	for i := len(s.goal.Exports) - 1; i >= 0; i-- {
		e := s.goal.Exports[i]
		stack = append(stack, demand{consumer: -1, local: e.Local, typ: e.Type})
	}
	if s.checkPartial() {
		s.solve(stack)
	}
	s.exhausted = !s.stopped
}

// seedUnit places a required unit up front. Its exports become
// available for reuse; its imports join the demand stack.
func (s *searcher) seedUnit(name, why string, stack *[]demand) bool {
	u, ok := s.reg.Units[name]
	if !ok {
		s.blk.err = fmt.Errorf("%s: unknown unit %q", why, name)
		return false
	}
	if hits := s.avoidHits(name); len(hits) > 0 {
		s.recordDemand(&demandBlock{
			consumer:  fmt.Sprintf("%s %s", why, name),
			forbidden: hits,
			goal:      true,
		})
		return false
	}
	_, demands, _, ok := s.place(u)
	if !ok {
		s.capped = true
		return false
	}
	*stack = append(*stack, demands...)
	return true
}

// place appends a fresh instance of u, returning its index, the
// demands for its imports, and an undo. ok is false when an instance
// cap refuses the placement.
func (s *searcher) place(u *lang.Unit) (int, []demand, func(), bool) {
	if len(s.insts) >= s.maxInst || s.perUnit[u.Name] >= s.maxPerUnit {
		return 0, nil, nil, false
	}
	idx := len(s.insts)
	li := &link.Instance{
		ID:          idx,
		Path:        fmt.Sprintf("%s#%d", u.Name, idx),
		Unit:        u,
		ImportWires: map[string]*link.Wire{},
	}
	n := &node{unit: u, li: li, wires: map[string]ref{}}
	s.insts = append(s.insts, n)
	s.perUnit[u.Name]++
	demands := make([]demand, 0, len(u.Imports))
	// Reverse order so the first import is popped first.
	for i := len(u.Imports) - 1; i >= 0; i-- {
		imp := u.Imports[i]
		demands = append(demands, demand{consumer: idx, local: imp.Local, typ: imp.Type})
	}
	undo := func() {
		s.insts = s.insts[:idx]
		s.perUnit[u.Name]--
	}
	return idx, demands, undo, true
}

// wire satisfies demand d from export r and returns an undo.
func (s *searcher) wire(d demand, r ref) func() {
	if d.consumer >= 0 {
		n := s.insts[d.consumer]
		n.wires[d.local] = r
		n.li.ImportWires[d.local] = &link.Wire{
			Provider: s.insts[r.idx].li, Bundle: r.export, Type: d.typ,
		}
		return func() {
			delete(n.wires, d.local)
			delete(n.li.ImportWires, d.local)
		}
	}
	s.goalWire[d.local] = r
	s.goalTaken[r] = d.local
	nbounds := 0
	for _, b := range s.goal.Bounds {
		if b.Arg != d.local && b.Arg != lang.ExportsKeyword {
			continue
		}
		s.bounds = append(s.bounds, constraint.Bound{
			Var:   constraint.Var{Inst: s.insts[r.idx].li, Bundle: r.export, Prop: b.Prop},
			Op:    b.Op,
			Value: b.Value,
		})
		nbounds++
	}
	return func() {
		delete(s.goalWire, d.local)
		delete(s.goalTaken, r)
		s.bounds = s.bounds[:len(s.bounds)-nbounds]
	}
}

// checkPartial runs the §4 solver over the current partial assembly
// plus the goal bounds attached so far. Unwired imports are
// unconstrained, and narrowing is monotone, so a violation here prunes
// the whole subtree.
func (s *searcher) checkPartial() bool {
	lis := make([]*link.Instance, len(s.insts))
	for i, n := range s.insts {
		lis[i] = n.li
	}
	_, err := constraint.CheckAssembly(s.reg, lis, s.bounds)
	if err == nil {
		return true
	}
	var v *constraint.Violation
	if errors.As(err, &v) {
		s.recordViolation(v)
	} else if s.blk.err == nil {
		s.blk.err = err
	}
	return false
}

// solve resolves the top demand of the stack against every admissible
// option — reusing an already-placed export first, then instantiating
// each repository provider — and recurses.
func (s *searcher) solve(stack []demand) {
	if s.stopped {
		return
	}
	if len(stack) == 0 {
		s.complete()
		return
	}
	d := stack[len(stack)-1]
	rest := stack[:len(stack)-1]
	any := false

	// Reuse an export that is already part of the assembly.
	for i := 0; i < len(s.insts) && !s.stopped; i++ {
		for _, exp := range s.insts[i].unit.Exports {
			if s.stopped || exp.Type != d.typ {
				continue
			}
			r := ref{idx: i, export: exp.Local}
			if d.consumer < 0 {
				if s.goal.Top != "" && i != 0 {
					continue // goal exports must come from the fixed top
				}
				if _, taken := s.goalTaken[r]; taken {
					continue // one export local per goal export
				}
			}
			any = true
			undo := s.wire(d, r)
			if s.checkPartial() {
				s.solve(rest)
			}
			undo()
		}
	}

	// Instantiate a fresh provider from the repository.
	if d.consumer >= 0 || s.goal.Top == "" {
		for _, p := range s.providersByType[d.typ] {
			if s.stopped {
				return
			}
			idx, demands, undoPlace, ok := s.place(p.unit)
			if !ok {
				s.capped = true
				continue
			}
			any = true
			undoWire := s.wire(d, ref{idx: idx, export: p.export})
			if s.checkPartial() {
				next := append(append([]demand{}, rest...), demands...)
				s.solve(next)
			}
			undoWire()
			undoPlace()
		}
	}

	if !any {
		s.recordDemand(s.explainDemand(d))
	}
}

// explainDemand builds the no-option explanation for a dead demand:
// either nothing in the repository exports the type, or every provider
// is cut by the goal's avoid set (or by the fixed top).
func (s *searcher) explainDemand(d demand) *demandBlock {
	db := &demandBlock{typ: d.typ, goal: d.consumer < 0}
	if d.consumer < 0 {
		db.consumer = fmt.Sprintf("goal export %q", d.local)
		db.top = s.goal.Top
	} else {
		db.consumer = fmt.Sprintf("%s import %q", s.insts[d.consumer].li.Path, d.local)
	}
	names := make([]string, 0, len(s.reg.Units))
	for name := range s.reg.Units {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, exp := range s.reg.Units[name].Exports {
			if exp.Type == d.typ && len(s.avoidHits(name)) > 0 {
				db.forbidden = appendIfAbsent(db.forbidden, name)
			}
		}
	}
	return db
}

func (s *searcher) recordDemand(db *demandBlock) {
	if s.blk.demand == nil || (db.goal && !s.blk.demand.goal) {
		s.blk.demand = db
	}
}

func (s *searcher) recordViolation(v *constraint.Violation) {
	if s.blk.violation == nil {
		s.blk.violation = v
	}
}

// complete emits the finished assembly (deduped on canonical structure)
// to the verifier, stopping the search when the verifier has enough or
// the raw-candidate budget runs out.
func (s *searcher) complete() {
	cand := s.buildCandidate()
	if s.seen[cand.key] {
		return
	}
	s.seen[cand.key] = true
	s.raw++
	if !s.yield(cand) || s.raw >= s.rawBudget {
		s.stopped = true
	}
}

// buildCandidate renders the current wiring as a compound lang.Unit
// (name left blank for the verifier) plus its canonical dedup key.
func (s *searcher) buildCandidate() *candidate {
	locals := map[ref]string{}
	for goalLocal, r := range s.goalWire {
		locals[r] = goalLocal
	}
	for i, n := range s.insts {
		for _, exp := range n.unit.Exports {
			r := ref{idx: i, export: exp.Local}
			if locals[r] == "" {
				locals[r] = fmt.Sprintf("x%d_%s", i, exp.Local)
			}
		}
	}
	u := &lang.Unit{Exports: append([]lang.Binding{}, s.goal.Exports...)}
	units := make([]string, len(s.insts))
	occ := map[string]int{}
	tags := make([]string, len(s.insts)) // Unit#occurrence, for the key
	for i, n := range s.insts {
		units[i] = n.unit.Name
		tags[i] = fmt.Sprintf("%s#%d", n.unit.Name, occ[n.unit.Name])
		occ[n.unit.Name]++
	}
	var keyLines []string
	for i, n := range s.insts {
		outs := make([]string, len(n.unit.Exports))
		for j, exp := range n.unit.Exports {
			outs[j] = locals[ref{idx: i, export: exp.Local}]
		}
		ins := make([]string, len(n.unit.Imports))
		for j, imp := range n.unit.Imports {
			r := n.wires[imp.Local]
			ins[j] = locals[r]
			keyLines = append(keyLines, fmt.Sprintf("%s.%s<-%s.%s",
				tags[i], imp.Local, tags[r.idx], r.export))
		}
		if len(n.unit.Imports) == 0 {
			keyLines = append(keyLines, tags[i])
		}
		u.Links = append(u.Links, lang.LinkLine{Outs: outs, Unit: n.unit.Name, Ins: ins})
	}
	for _, e := range s.goal.Exports {
		r := s.goalWire[e.Local]
		keyLines = append(keyLines, fmt.Sprintf("goal.%s<-%s.%s", e.Local, tags[r.idx], r.export))
	}
	sort.Strings(keyLines)
	return &candidate{unit: u, units: units, key: strings.Join(keyLines, ";")}
}
