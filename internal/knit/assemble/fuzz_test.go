package assemble_test

import (
	"errors"
	"strings"
	"testing"

	"knit/internal/knit/assemble"
	"knit/internal/knit/build"
	"knit/internal/machine"
	"knit/internal/oskit"
)

func installDevices(m *machine.M) {
	machine.InstallConsole(m)
	machine.InstallSerial(m)
	machine.InstallStopWatch(m)
}

// FuzzAssemble is the assembler's end-to-end oracle: for any parseable
// goal over the oskit repository, every emitted assembly must pass the
// constraint checker, build cold from its printed source alone, and run
// its init schedule transactionally — and an unsatisfiable goal must
// yield an explanation, never a wiring.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		`goal Console; export out : PutChar;`,
		`goal Console; export out : PutChar; bound context(out) <= NoContext;`,
		`goal Pf; export pf : Printf; avoid ConsoleDev;`,
		`goal Hello; export main : Main; top HelloMain; use SerialDev;`,
		`goal Q; export enq : WorkQ; bound context(enq) <= NoContext;`,
		`goal I; export irq : Irq; use BlockingLock; avoid SpinLock, IrqDefer;`,
		`goal G; export out : PutChar; avoid ConsoleDev, SerialDev, VgaConsole;`,
		`goal Two; export out : PutChar; export lock : Lock; limit 6;`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	repo := oskit.Repository()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2048 {
			return
		}
		goal, err := assemble.ParseGoal("fuzz.goal", src)
		if err != nil {
			return
		}
		if len(goal.Exports) > 4 {
			return // keep the search bounded under fuzzing
		}
		opts := assemble.Options{MaxInstances: 8, RawBudget: 24, RankPool: 2}
		asms, err := assemble.Enumerate(repo, goal, 2, opts)
		if err != nil {
			var unsat *assemble.UnsatError
			if errors.As(err, &unsat) && unsat.Reason == "" {
				t.Fatalf("UnsatError without an explanation: %#v", unsat)
			}
			return
		}
		if len(asms) == 0 {
			t.Fatal("Enumerate returned success with zero assemblies")
		}
		for _, a := range asms {
			if a.Result.ConstraintReport == nil {
				t.Fatalf("%s: assembly skipped the constraint checker", a.Name)
			}
			for _, u := range a.Units {
				for _, av := range goal.Avoid {
					if u == av {
						t.Fatalf("%s instantiates forbidden unit %s", a.Name, av)
					}
				}
			}
			// Cold round trip: printed source + repository only.
			files := map[string]string{"__assembly.unit": a.Text}
			for k, v := range repo.UnitFiles {
				files[k] = v
			}
			res, err := build.Build(build.Options{
				Top: a.Name, UnitFiles: files, Sources: repo.Sources, Check: true,
			})
			if err != nil {
				t.Fatalf("%s: cold rebuild of emitted source failed: %v\n%s", a.Name, err, a.Text)
			}
			m := res.NewMachine()
			installDevices(m)
			if err := res.RunInit(m); err != nil {
				t.Fatalf("%s: init schedule failed on cold rebuild: %v", a.Name, err)
			}
			if !strings.Contains(a.Text, "unit "+a.Name) {
				t.Fatalf("%s: emitted text does not define the assembly", a.Name)
			}
		}
	})
}
