package assemble

import (
	"strings"
	"testing"

	"knit/internal/knit/lang"
)

func TestParseGoalFull(t *testing.T) {
	g, err := ParseGoal("t.goal", `
// a console that is interrupt-safe
goal SafeConsole;
export out : PutChar;
export pf : Printf;          # two exports
bound context(out) <= NoContext;
bound context(exports) >= ProcessContext;
use SerialDev, StringU;
avoid ConsoleDev;
top HelloKernel;
limit 12;
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "SafeConsole" || g.Top != "HelloKernel" || g.Limit != 12 {
		t.Fatalf("header fields wrong: %+v", g)
	}
	if len(g.Exports) != 2 || g.Exports[0] != (lang.Binding{Local: "out", Type: "PutChar"}) {
		t.Fatalf("exports = %+v", g.Exports)
	}
	if len(g.Bounds) != 2 || g.Bounds[0].Op != lang.OpLe || g.Bounds[1].Arg != lang.ExportsKeyword {
		t.Fatalf("bounds = %+v", g.Bounds)
	}
	if strings.Join(g.Use, ",") != "SerialDev,StringU" || strings.Join(g.Avoid, ",") != "ConsoleDev" {
		t.Fatalf("use/avoid = %v / %v", g.Use, g.Avoid)
	}
}

func TestGoalStringRoundTrip(t *testing.T) {
	src := `goal G;
export out : PutChar;
bound context(out) <= NoContext;
use SerialDev;
avoid ConsoleDev;
top HelloKernel;
limit 7;
`
	g, err := ParseGoal("t.goal", src)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParseGoal("rt.goal", g.String())
	if err != nil {
		t.Fatalf("round trip reparse: %v", err)
	}
	if g.String() != g2.String() {
		t.Fatalf("round trip drifted:\n%s\nvs\n%s", g, g2)
	}
}

func TestParseGoalErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no exports", `goal G;`, "no exports"},
		{"dup local", `export a : T; export a : U;`, "declared twice"},
		{"dup goal", `goal A; goal B; export a : T;`, "twice"},
		{"dup top", `export a : T; top A; top B;`, "twice"},
		{"bad bound", `export a : T; bound context a <= V;`, "bound"},
		{"bad op", `export a : T; bound context(a) < V;`, "bad operator"},
		{"bad limit", `export a : T; limit zero;`, "bad limit"},
		{"neg limit", `export a : T; limit -3;`, "bad limit"},
		{"unknown directive", `export a : T; wibble;`, "unknown directive"},
		{"trailing junk", `export a : T; garbage here`, "unknown directive"},
		{"bad ident", `export 9a : T;`, "export"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseGoal("t.goal", tc.src)
			if err == nil {
				t.Fatalf("parse accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
