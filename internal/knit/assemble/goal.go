// Package assemble inverts the constraint checker: instead of rejecting
// a bad composition, it searches a unit repository for compositions that
// satisfy a declarative goal — the exports wanted, property bounds such
// as "context(out) <= NoContext", units that must or must not appear —
// ranks the satisfying wirings by predicted cost (flattened text size
// plus init-schedule cycles from the machine model), and emits the
// winner as printable .unit source that round-trips through the real
// build pipeline as verification.
//
// The search is a backtracking enumeration over export providers. Each
// partial assembly is checked with the §4 poset solver as it is
// extended (constraint.CheckAssembly treats unwired imports as
// unconstrained, and narrowing is monotone, so a violation in a prefix
// is final); dead branches are pruned instead of validating only
// complete candidates. An unsatisfiable goal yields an *UnsatError
// naming the blocking constraint or missing export, never a wiring.
package assemble

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"knit/internal/knit/lang"
)

// Goal is a declarative assembly request over a unit repository.
type Goal struct {
	// Name labels the goal; generated units are named after it.
	Name string
	// Exports are the bundles the assembly must provide, with the local
	// names the emitted compound unit exports them under.
	Exports []lang.Binding
	// Bounds are property bounds on the goal's exports, e.g.
	// "context(out) <= NoContext". Arg may be an export local or the
	// keyword "exports" (every export).
	Bounds []GoalBound
	// Use lists units that must appear in the assembly; each is
	// instantiated up front and its exports become available for reuse.
	Use []string
	// Avoid lists units that must not appear, directly or inside a
	// compound provider.
	Avoid []string
	// Top, when non-empty, fixes the unit that must provide every goal
	// export — the assembly's entry component.
	Top string
	// Limit caps the number of unit instances the search may place
	// (0 = the assembler's default).
	Limit int
}

// GoalBound is one property bound of a goal.
type GoalBound struct {
	Prop  string
	Arg   string // export local or "exports"
	Op    lang.ConstraintOp
	Value string
}

func (b GoalBound) String() string {
	return fmt.Sprintf("%s(%s) %s %s", b.Prop, b.Arg, b.Op, b.Value)
}

// String renders the goal back to its concrete syntax; the output
// reparses to an equivalent goal.
func (g *Goal) String() string {
	var sb strings.Builder
	if g.Name != "" {
		fmt.Fprintf(&sb, "goal %s;\n", g.Name)
	}
	for _, e := range g.Exports {
		fmt.Fprintf(&sb, "export %s : %s;\n", e.Local, e.Type)
	}
	for _, b := range g.Bounds {
		fmt.Fprintf(&sb, "bound %s;\n", b)
	}
	for _, u := range g.Use {
		fmt.Fprintf(&sb, "use %s;\n", u)
	}
	for _, u := range g.Avoid {
		fmt.Fprintf(&sb, "avoid %s;\n", u)
	}
	if g.Top != "" {
		fmt.Fprintf(&sb, "top %s;\n", g.Top)
	}
	if g.Limit > 0 {
		fmt.Fprintf(&sb, "limit %d;\n", g.Limit)
	}
	return sb.String()
}

// ParseGoal parses a goal-spec file. The format is statement-per-
// semicolon:
//
//	goal SafeConsole;              // optional label
//	export out : PutChar;          // repeatable
//	bound context(out) <= NoContext;
//	use SerialDev;                 // required units
//	avoid ConsoleDev;              // forbidden units
//	top HelloKernel;               // optional fixed entry provider
//	limit 12;                      // optional instance cap
//
// Comments run from "//" or "#" to end of line.
func ParseGoal(name, text string) (*Goal, error) {
	g := &Goal{}
	seenLocal := map[string]bool{}
	for ln, stmt := range splitStatements(text) {
		toks := tokenize(stmt)
		if len(toks) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("%s: statement %d (%q): %s", name, ln+1,
				strings.Join(toks, " "), fmt.Sprintf(format, args...))
		}
		switch toks[0] {
		case "goal":
			if len(toks) != 2 || !isIdent(toks[1]) {
				return nil, fail("want 'goal Name'")
			}
			if g.Name != "" {
				return nil, fail("goal name declared twice")
			}
			g.Name = toks[1]
		case "export":
			if len(toks) != 4 || toks[2] != ":" || !isIdent(toks[1]) || !isIdent(toks[3]) {
				return nil, fail("want 'export local : BundleType'")
			}
			if seenLocal[toks[1]] {
				return nil, fail("export local %q declared twice", toks[1])
			}
			seenLocal[toks[1]] = true
			g.Exports = append(g.Exports, lang.Binding{Local: toks[1], Type: toks[3]})
		case "bound":
			// bound prop ( arg ) op Value
			if len(toks) != 7 || toks[2] != "(" || toks[4] != ")" ||
				!isIdent(toks[1]) || !isIdent(toks[3]) || !isIdent(toks[6]) {
				return nil, fail("want 'bound prop(arg) <=|>=|= Value'")
			}
			op, ok := parseOp(toks[5])
			if !ok {
				return nil, fail("bad operator %q", toks[5])
			}
			g.Bounds = append(g.Bounds, GoalBound{Prop: toks[1], Arg: toks[3], Op: op, Value: toks[6]})
		case "use", "avoid":
			if len(toks) < 2 {
				return nil, fail("want '%s Unit[, Unit...]'", toks[0])
			}
			for _, u := range toks[1:] {
				if u == "," {
					continue
				}
				if !isIdent(u) {
					return nil, fail("bad unit name %q", u)
				}
				if toks[0] == "use" {
					g.Use = appendIfAbsent(g.Use, u)
				} else {
					g.Avoid = appendIfAbsent(g.Avoid, u)
				}
			}
		case "top":
			if len(toks) != 2 || !isIdent(toks[1]) {
				return nil, fail("want 'top Unit'")
			}
			if g.Top != "" {
				return nil, fail("top declared twice")
			}
			g.Top = toks[1]
		case "limit":
			if len(toks) != 2 {
				return nil, fail("want 'limit N'")
			}
			n, err := strconv.Atoi(toks[1])
			if err != nil || n <= 0 {
				return nil, fail("bad limit %q", toks[1])
			}
			g.Limit = n
		default:
			return nil, fail("unknown directive %q", toks[0])
		}
	}
	if len(g.Exports) == 0 {
		return nil, fmt.Errorf("%s: goal declares no exports", name)
	}
	sort.Strings(g.Use)
	sort.Strings(g.Avoid)
	return g, nil
}

// splitStatements strips comments and splits on semicolons.
func splitStatements(text string) []string {
	var clean strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteByte('\n')
	}
	parts := strings.Split(clean.String(), ";")
	// Trailing text after the last semicolon must be blank.
	out := parts[:len(parts)-1]
	if strings.TrimSpace(parts[len(parts)-1]) != "" {
		out = parts // surface it as a malformed statement
	}
	return out
}

// tokenize splits a statement into words and punctuation.
func tokenize(stmt string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	rs := []rune(stmt)
	for i := 0; i < len(rs); i++ {
		c := rs[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			flush()
		case c == '(' || c == ')' || c == ':' || c == ',':
			flush()
			toks = append(toks, string(c))
		case c == '<' || c == '>':
			flush()
			if i+1 < len(rs) && rs[i+1] == '=' {
				toks = append(toks, string(c)+"=")
				i++
			} else {
				toks = append(toks, string(c))
			}
		case c == '=':
			flush()
			toks = append(toks, "=")
		default:
			cur.WriteRune(c)
		}
	}
	flush()
	return toks
}

func parseOp(s string) (lang.ConstraintOp, bool) {
	switch s {
	case "=":
		return lang.OpEq, true
	case "<=":
		return lang.OpLe, true
	case ">=":
		return lang.OpGe, true
	}
	return 0, false
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func appendIfAbsent(dst []string, s string) []string {
	for _, d := range dst {
		if d == s {
			return dst
		}
	}
	return append(dst, s)
}
