package supervise

import (
	"testing"

	"knit/internal/knit/build/faultinject"
)

// TestBrownoutDegradeAndRestore: DegradeAll proactively swaps every
// fallback-declaring unit (here: B -> BSafe) with zero faults involved,
// and RestoreAll puts the primaries back, residue-free.
func TestBrownoutDegradeAndRestore(t *testing.T) {
	res, m := buildSup(t)
	sup := New(res, m, Default(), NewFakeClock())

	if got, _ := sup.Call("c", "get"); got != 21 {
		t.Fatalf("healthy c.get = %d, want 21", got)
	}

	n, err := sup.DegradeAll()
	if err != nil {
		t.Fatalf("DegradeAll: %v", err)
	}
	if n != 1 {
		t.Fatalf("DegradeAll swapped %d instances, want 1 (only B declares a fallback)", n)
	}
	if !sup.BrownedOut() {
		t.Fatal("BrownedOut() = false after DegradeAll")
	}
	if got, _ := sup.Call("c", "get"); got != 111 {
		t.Fatalf("browned-out c.get = %d, want 111 (BSafe serving)", got)
	}
	// Idempotent: the degraded instance is not swapped again.
	if n, _ := sup.DegradeAll(); n != 0 {
		t.Fatalf("second DegradeAll swapped %d instances, want 0", n)
	}

	n, err = sup.RestoreAll()
	if err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	if n != 1 {
		t.Fatalf("RestoreAll restored %d instances, want 1", n)
	}
	if sup.BrownedOut() {
		t.Fatal("BrownedOut() = true after RestoreAll")
	}
	if got, _ := sup.Call("c", "get"); got != 21 {
		t.Fatalf("restored c.get = %d, want 21 (primary serving)", got)
	}
	instB := instOf(t, res, "B")
	if st := statusOf(t, sup, instB.Path); st.State != Healthy || st.ActiveModule != "" {
		t.Fatalf("B after restore = %+v, want healthy with no active module", st)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
}

// TestBrownoutFaultKeepsFallback: a unit that faults while browned out
// has earned its degradation — RestoreAll leaves it on the fallback.
func TestBrownoutFaultKeepsFallback(t *testing.T) {
	res, m := buildSup(t)
	in := faultinject.Attach(m)
	defer in.Detach()
	sup := New(res, m, Default(), NewFakeClock())

	if n, err := sup.DegradeAll(); n != 1 || err != nil {
		t.Fatalf("DegradeAll = %d, %v; want 1, nil", n, err)
	}

	// Fault the fallback itself: one trap on BSafe's get, which the
	// policy answers with a restart of the fallback instance.
	instB := instOf(t, res, "B")
	st := sup.states[instB.Path]
	target := st.lu.Instance.ExportSyms["b"]["get"]
	in.TrapCallEvery(target, 1)
	if _, err := sup.Call("c", "get"); err == nil {
		t.Fatal("injected call unexpectedly succeeded")
	}
	in.Clear()

	if n, err := sup.RestoreAll(); n != 0 || err != nil {
		t.Fatalf("RestoreAll = %d, %v; want 0, nil (fault cleared the brownout mark)", n, err)
	}
	if got, _ := sup.Call("c", "get"); got != 111 {
		t.Fatalf("c.get = %d, want 111 (still on BSafe)", got)
	}
}
