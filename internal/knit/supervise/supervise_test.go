package supervise

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"knit/internal/knit/build"
	"knit/internal/knit/build/faultinject"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

// The supervision fixture mirrors the build package's fallback chain:
// A <- B <- C, with B declaring fallback BSafe. C has no fallback, so
// faults attributed to it exercise the escalation path.
const supUnits = `
bundletype Svc = { get, poke }

unit A = {
  exports [ a : Svc ];
  initializer a_init for a;
  files { "a.c" };
  rename { a.get to a_get; a.poke to a_poke; };
}
unit B = {
  imports [ a : Svc ];
  exports [ b : Svc ];
  initializer b_init for b;
  fallback BSafe;
  depends { b needs a; b_init needs a; };
  files { "b.c" };
  rename { a.get to a_get; b.get to b_get; b.poke to b_poke; };
}
unit BSafe = {
  imports [ a : Svc ];
  exports [ b : Svc ];
  initializer bsafe_init for b;
  depends { b needs a; bsafe_init needs a; };
  files { "bsafe.c" };
  rename { a.get to a_get; b.get to bsafe_get; b.poke to bsafe_poke; };
}
unit C = {
  imports [ b : Svc ];
  exports [ c : Svc ];
  initializer c_init for c;
  depends { c needs b; c_init needs b; };
  files { "c.c" };
  rename { b.get to b_get; c.get to c_get; c.poke to c_poke; };
}
unit FChain = {
  exports [ a : Svc, b : Svc, c : Svc ];
  link {
    [a] <- A <- [];
    [b] <- B <- [a];
    [c] <- C <- [b];
  };
}
`

var supSources = link.Sources{
	"a.c": `
static int state;
void a_init(void) { state = 10; }
int a_get(void) { return state; }
void a_poke(void) { state = 555; }
`,
	"b.c": `
int a_get(void);
static int state;
void b_init(void) { state = a_get() + 10; }
int b_get(void) { return state; }
void b_poke(void) { state = 999; }
`,
	"bsafe.c": `
int a_get(void);
static int state;
void bsafe_init(void) { state = a_get() + 100; }
int bsafe_get(void) { return state; }
void bsafe_poke(void) { state = 888; }
`,
	"c.c": `
int b_get(void);
static int state;
void c_init(void) { state = 1; }
int c_get(void) { return b_get() + state; }
void c_poke(void) { state = 444; }
`,
}

func buildSup(t *testing.T) (*build.Result, *machine.M) {
	t.Helper()
	res, err := build.Build(build.Options{
		Top:       "FChain",
		UnitFiles: map[string]string{"sup.unit": supUnits},
		Sources:   supSources,
		Check:     true,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	return res, m
}

func instOf(t *testing.T, res *build.Result, unitName string) *link.Instance {
	t.Helper()
	for _, inst := range res.Program.Instances {
		if inst.Unit.Name == unitName {
			return inst
		}
	}
	t.Fatalf("no instance of unit %s", unitName)
	return nil
}

func statusOf(t *testing.T, sup *Supervisor, path string) InstanceStatus {
	t.Helper()
	for _, row := range sup.Report() {
		if row.Path == path {
			return row
		}
	}
	t.Fatalf("no report row for %s", path)
	return InstanceStatus{}
}

// TestRestartsThenDegradesToFallback drives the full policy ladder for a
// unit with a declared fallback: two backoff-restarts, then a swap that
// leaves the system serving through BSafe.
func TestRestartsThenDegradesToFallback(t *testing.T) {
	res, m := buildSup(t)
	in := faultinject.Attach(m)
	defer in.Detach()

	instB := instOf(t, res, "B")
	bGet := instB.ExportSyms["b"]["get"]
	in.TrapCallEvery(bGet, 1) // every call into B faults

	clk := NewFakeClock()
	pol := Default()
	sup := New(res, m, pol, clk)

	// Three calls fail: restart, restart, then swap. The in-flight call
	// is lost each time; recovery readies the next one.
	for i := 0; i < 3; i++ {
		if _, err := sup.Call("c", "get"); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	// After the swap the interposed calls run BSafe's own functions, so
	// the injection keyed to B's symbol no longer fires.
	got, err := sup.Call("c", "get")
	if err != nil {
		t.Fatalf("call after swap: %v", err)
	}
	if got != 111 {
		t.Errorf("c.get after degrade = %d, want 111 (BSafe)", got)
	}

	st := statusOf(t, sup, instB.Path)
	if st.State != Degraded || st.Restarts != 2 || st.Swaps != 1 || st.Failures != 3 {
		t.Errorf("B status = %+v, want degraded after 2 restarts, 1 swap, 3 failures", st)
	}
	if st.ActiveModule == "" || !strings.Contains(st.ActiveModule, "BSafe") {
		t.Errorf("ActiveModule = %q, want a BSafe module", st.ActiveModule)
	}
	for _, row := range sup.Report() {
		if row.Path != instB.Path && row.State != Healthy {
			t.Errorf("%s state = %v, want healthy", row.Path, row.State)
		}
	}
	if !sup.Healthy() {
		t.Error("Healthy() = false with everything serving")
	}

	// Backoff schedule: 10ms then 20ms base, each plus jitter in
	// [0, base/4]; no sleeps for the swap.
	if len(clk.Slept) != 2 {
		t.Fatalf("slept %v, want exactly 2 backoffs", clk.Slept)
	}
	for i, base := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond} {
		if clk.Slept[i] < base || clk.Slept[i] > base+base/4 {
			t.Errorf("backoff %d = %v, want in [%v, %v]", i, clk.Slept[i], base, base+base/4)
		}
	}

	recov := sup.Recoveries()
	if len(recov) != 3 || recov[0].Mode != "restart" || recov[1].Mode != "restart" || recov[2].Mode != "swap" {
		t.Errorf("recoveries = %+v, want restart, restart, swap", recov)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
}

// TestEscalatesScopesThenDies: a unit with no fallback climbs the scope
// ladder — enclosing compound, whole program — and is marked dead when
// the root scope's restart has already been spent.
func TestEscalatesScopesThenDies(t *testing.T) {
	res, m := buildSup(t)
	in := faultinject.Attach(m)
	defer in.Detach()

	instC := instOf(t, res, "C")
	in.TrapCallEvery(instC.ExportSyms["c"]["get"], 1)

	pol := Default()
	pol.MaxRestarts = 0 // straight to escalation
	pol.BaseBackoff = 0
	sup := New(res, m, pol, NewFakeClock())

	modes := []string{"escalate", "escalate"} // FChain scope, then program
	for i, want := range modes {
		if _, err := sup.Call("c", "get"); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
		recov := sup.Recoveries()
		if len(recov) != i+1 || recov[i].Mode != want {
			t.Fatalf("after call %d recoveries = %+v, want mode %s", i, recov, want)
		}
		if st := statusOf(t, sup, instC.Path); st.State != Healthy {
			t.Fatalf("after escalation %d state = %v, want healthy", i, st.State)
		}
	}

	// Scopes are spent: the next fault finds nothing left to widen.
	if _, err := sup.Call("c", "get"); err == nil {
		t.Fatal("call unexpectedly succeeded")
	}
	if st := statusOf(t, sup, instC.Path); st.State != Dead {
		t.Errorf("state = %v, want dead", st.State)
	}
	if sup.Healthy() {
		t.Error("Healthy() = true with a dead instance")
	}
	// Dead means no further intervention: another fault adds no recovery.
	before := len(sup.Recoveries())
	if _, err := sup.Call("c", "get"); err == nil {
		t.Fatal("call unexpectedly succeeded")
	}
	if len(sup.Recoveries()) != before {
		t.Error("supervisor kept intervening for a dead instance")
	}
}

// Watchdog fixture: a unit whose implementation wedges in an infinite
// loop; the fuel watchdog must turn the hang into an attributed trap
// that the normal policy ladder then answers with the fallback.
const wedgeUnits = `
bundletype One = { get }

unit Loop = {
  exports [ l : One ];
  fallback Calm;
  files { "loop.c" };
  rename { l.get to loop_get; };
}
unit Calm = {
  exports [ l : One ];
  files { "calm.c" };
  rename { l.get to calm_get; };
}
unit Wedge = {
  exports [ l : One ];
  link {
    [l] <- Loop <- [];
  };
}
`

var wedgeSources = link.Sources{
	"loop.c": `
int loop_get(void) {
  int x;
  x = 0;
  while (1) { x = x + 1; }
  return x;
}
`,
	"calm.c": `
int calm_get(void) { return 7; }
`,
}

func TestWatchdogTrapsWedgedUnitAndDegrades(t *testing.T) {
	res, err := build.Build(build.Options{
		Top:       "Wedge",
		UnitFiles: map[string]string{"wedge.unit": wedgeUnits},
		Sources:   wedgeSources,
		Check:     true,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}

	pol := Default()
	pol.MaxRestarts = 0 // a wedge is not cured by restarting
	pol.WatchdogFuel = 50_000
	sup := New(res, m, pol, NewFakeClock())

	_, err = sup.Call("l", "get")
	if err == nil {
		t.Fatal("wedged call unexpectedly returned")
	}
	trap, ok := err.(*machine.Trap)
	if !ok || trap.Kind != machine.TrapBudgetExhausted {
		t.Fatalf("err = %v, want budget-exhausted trap", err)
	}

	got, err := sup.Call("l", "get")
	if err != nil {
		t.Fatalf("call after degrade: %v", err)
	}
	if got != 7 {
		t.Errorf("get after degrade = %d, want 7 (Calm)", got)
	}
	if st := statusOf(t, sup, instOf(t, res, "Loop").Path); st.State != Degraded {
		t.Errorf("state = %v, want degraded", st.State)
	}
}

// TestBackoffScheduleDeterministic (satellite): the same policy seed and
// fault sequence must reproduce the identical backoff schedule, event
// log, and recovery modes — timestamps included — under the fake clock.
func TestBackoffScheduleDeterministic(t *testing.T) {
	run := func(seed int64) ([]time.Duration, []Event, []RecoveryRecord) {
		res, m := buildSup(t)
		in := faultinject.Attach(m)
		defer in.Detach()
		instB := instOf(t, res, "B")
		in.TrapCallEvery(instB.ExportSyms["b"]["get"], 1)

		clk := NewFakeClock()
		pol := Default()
		pol.JitterSeed = seed
		sup := New(res, m, pol, clk)
		for i := 0; i < 3; i++ {
			sup.Call("c", "get")
		}
		// Strip the variable program-unique symbol suffixes out of the
		// event details before comparing across two separate builds.
		events := append([]Event(nil), sup.Events()...)
		for i := range events {
			events[i].Detail = ""
		}
		return append([]time.Duration(nil), clk.Slept...), events, sup.Recoveries()
	}

	slept1, ev1, rec1 := run(42)
	slept2, ev2, rec2 := run(42)
	if !reflect.DeepEqual(slept1, slept2) {
		t.Errorf("same seed, different backoff schedules:\n%v\n%v", slept1, slept2)
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Errorf("same seed, different event logs:\n%+v\n%+v", ev1, ev2)
	}
	if !reflect.DeepEqual(rec1, rec2) {
		t.Errorf("same seed, different recoveries:\n%+v\n%+v", rec1, rec2)
	}

	// A different seed shifts at least one jittered backoff.
	slept3, _, _ := run(43)
	if reflect.DeepEqual(slept1, slept3) {
		t.Errorf("seeds 42 and 43 produced the identical jittered schedule %v", slept1)
	}
}

func TestPolicyParse(t *testing.T) {
	pol, err := Parse(`
# global knobs
max_restarts = 3
window = 30s
base_backoff = 5ms
max_backoff = 2s
jitter_seed = 42
watchdog_fuel = 1000000

[unit Classifier]
max_restarts = 1
base_backoff = 1ms
`)
	if err != nil {
		t.Fatal(err)
	}
	if pol.MaxRestarts != 3 || pol.Window != 30*time.Second ||
		pol.BaseBackoff != 5*time.Millisecond || pol.MaxBackoff != 2*time.Second ||
		pol.JitterSeed != 42 || pol.WatchdogFuel != 1_000_000 {
		t.Errorf("globals parsed wrong: %+v", pol)
	}
	if pol.restartsFor("Classifier") != 1 || pol.restartsFor("Other") != 3 {
		t.Errorf("per-unit max_restarts override not applied")
	}
	base, max := pol.backoffFor("Classifier")
	if base != time.Millisecond || max != 2*time.Second {
		t.Errorf("Classifier backoff = %v/%v, want 1ms/2s", base, max)
	}

	bad := []struct{ name, text string }{
		{"unknown key", "frobnicate = 1\n"},
		{"bad duration", "window = soon\n"},
		{"negative", "max_restarts = -1\n"},
		{"per-unit window", "[unit X]\nwindow = 1s\n"},
		{"dup section", "[unit X]\n[unit X]\n"},
		{"bad header", "[service X]\n"},
		{"no equals", "max_restarts 3\n"},
		{"inverted backoff", "base_backoff = 1s\nmax_backoff = 1ms\n"},
	}
	for _, tc := range bad {
		if _, err := Parse(tc.text); err == nil {
			t.Errorf("%s: Parse accepted %q", tc.name, tc.text)
		}
	}
}

func TestStateStringExhaustive(t *testing.T) {
	seen := map[string]bool{}
	for s := State(0); s < numStates; s++ {
		name := s.String()
		if name == "" || strings.HasPrefix(name, "State(") {
			t.Errorf("State(%d) has no name", int(s))
		}
		if seen[name] {
			t.Errorf("duplicate state name %q", name)
		}
		seen[name] = true
	}
	if got := State(99).String(); got != "State(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

// TestWindowPrunesOldFailures: failures older than the policy window do
// not count against the restart budget, so a slow drip of faults keeps
// restarting forever instead of degrading.
func TestWindowPrunesOldFailures(t *testing.T) {
	res, m := buildSup(t)
	in := faultinject.Attach(m)
	defer in.Detach()
	instB := instOf(t, res, "B")
	in.TrapCallEvery(instB.ExportSyms["b"]["get"], 1)

	clk := NewFakeClock()
	pol := Default()
	pol.MaxRestarts = 1
	pol.Window = time.Minute
	pol.BaseBackoff = 0 // no backoff: the fake clock moves only when we say
	sup := New(res, m, pol, clk)

	for i := 0; i < 5; i++ {
		if _, err := sup.Call("c", "get"); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
		clk.T = clk.T.Add(2 * time.Minute) // age the failure out of the window
	}
	st := statusOf(t, sup, instB.Path)
	if st.State != Healthy || st.Restarts != 5 || st.Swaps != 0 {
		t.Errorf("status = %+v, want 5 restarts, no swaps, healthy", st)
	}
}
