package supervise

import "time"

// Clock abstracts time for the supervisor, so backoff schedules are
// driven by an injected fake in tests (no wall-clock sleeps, fully
// deterministic timestamps) and by the real clock in production.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// Wall returns the real-time clock.
func Wall() Clock { return wallClock{} }

type wallClock struct{}

func (wallClock) Now() time.Time        { return time.Now() }
func (wallClock) Sleep(d time.Duration) { time.Sleep(d) }

// FakeClock is a manually advanced clock. Sleep advances it instantly
// and records the requested duration, so a test can assert the exact
// backoff schedule the supervisor produced.
type FakeClock struct {
	T     time.Time
	Slept []time.Duration
}

// NewFakeClock starts a fake clock at the Unix epoch.
func NewFakeClock() *FakeClock { return &FakeClock{T: time.Unix(0, 0).UTC()} }

func (f *FakeClock) Now() time.Time { return f.T }

func (f *FakeClock) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	f.T = f.T.Add(d)
	f.Slept = append(f.Slept, d)
}
