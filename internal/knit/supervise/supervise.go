// Package supervise keeps a built Knit system serving under component
// failures. It runs a build.Result as a long-lived service: every call
// into the program goes through the Supervisor, which attributes each
// fault to the owning unit instance (trap attribution from the machine,
// lifecycle errors from the build layer) and answers it with a
// declarative policy —
//
//	healthy ──fault──▶ backing-off ──restart ok──▶ healthy
//	    backing-off ──budget exhausted, fallback declared──▶ degraded
//	    backing-off ──budget exhausted, no fallback──▶ escalate to
//	        the parent scope; a root-scope exhaustion ──▶ dead
//
// Restarts use capped exponential backoff with seeded jitter over an
// injected clock. Degradation is the paper's interposition story (§2.3)
// applied at runtime: the failing instance's exports are redirected to
// a freshly loaded instance of its declared fallback unit, wired to the
// same imports — neighbors never notice. A per-call watchdog rides on
// machine.M.Fuel, turning a wedged component into an attributed trap.
package supervise

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"knit/internal/knit/build"
	"knit/internal/knit/link"
	"knit/internal/knit/observe"
	"knit/internal/machine"
)

// State is a supervised instance's health.
type State int

const (
	// Healthy: serving with its original (or restarted) implementation.
	Healthy State = iota
	// BackingOff: a failure is being handled; the instance is inside
	// its backoff delay before the next restart attempt.
	BackingOff
	// Degraded: the instance's declared fallback unit is serving in its
	// place (runtime interposition).
	Degraded
	// Dead: every remedy is exhausted; the supervisor no longer
	// intervenes for this instance.
	Dead

	numStates
)

var stateNames = [numStates]string{
	Healthy:    "healthy",
	BackingOff: "backing-off",
	Degraded:   "degraded-to-fallback",
	Dead:       "dead",
}

func (s State) String() string {
	if s >= 0 && s < numStates {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// InstanceStatus is one row of Supervisor.Report.
type InstanceStatus struct {
	Path     string // original instance path, e.g. "ClackRouter/Classifier#3"
	Unit     string // unit name
	State    State
	Failures int // attributed failures observed (within and outside the window)
	Restarts int
	Swaps    int
	// ActiveModule names the live dynamic fallback module when the
	// instance is degraded.
	ActiveModule string
	LastError    string
	// Metrics is the instance's runtime ledger (calls, cycles, traps by
	// kind, lifecycle counters) when a Collector is attached via Observe;
	// nil otherwise, and nil for instances the collector never saw.
	Metrics *observe.InstanceMetrics
}

// Event is one entry of the supervisor's decision log. The log is
// deterministic for a deterministic fault sequence (given a FakeClock),
// which is what the backoff-determinism tests pin down.
type Event struct {
	At       time.Time
	Instance string
	Action   string // "fault", "backoff", "restart", "swap", "release", "escalate", "dead"
	Detail   string
}

// RecoveryRecord measures one fault-to-restored-service interval.
type RecoveryRecord struct {
	Instance string
	Mode     string // "restart", "swap", or "escalate"
	Latency  time.Duration
}

// Supervisor runs one machine's program under a policy. It is not safe
// for concurrent use; drive it from one serving loop.
type Supervisor struct {
	res *build.Result
	m   *machine.M
	pol *Policy
	clk Clock
	rng *rand.Rand

	states map[string]*instState // keyed by original instance path
	alias  map[string]*instState // fault attribution name -> state
	events []Event
	recov  []RecoveryRecord
	obs    *observe.Collector
}

// instState is the supervisor's book on one unit instance.
type instState struct {
	path   string         // original instance path ("" = whole program)
	inst   *link.Instance // original instance; nil for the program pseudo-state
	active *link.Instance // currently serving implementation
	lu     *build.LoadedUnit
	state  State

	failures []time.Time // attributed failures, pruned to the policy window
	total    int
	restarts int
	swaps    int
	escScope string // last scope escalated to; climbs toward ""
	lastErr  error
	// brownout marks a degradation entered proactively by DegradeAll
	// (load shedding) rather than by the fault handler; only these are
	// undone by RestoreAll. A fault while browned out clears the mark —
	// the instance has now earned its fallback.
	brownout bool
}

// New supervises res's program on m. The caller keeps ownership of m
// (devices, injectors); initialization is the caller's too — typically
// res.RunInit(m) before serving.
func New(res *build.Result, m *machine.M, pol *Policy, clk Clock) *Supervisor {
	if pol == nil {
		pol = Default()
	}
	if clk == nil {
		clk = Wall()
	}
	return &Supervisor{
		res:    res,
		m:      m,
		pol:    pol,
		clk:    clk,
		rng:    rand.New(rand.NewSource(pol.JitterSeed)),
		states: map[string]*instState{},
		alias:  map[string]*instState{},
	}
}

// SetPolicy replaces the supervisor's policy (nil restores Default) and
// reseeds the jitter source from the new policy. The canary controller
// uses it to tighten a shard's policy for the duration of a trial and
// restore the original afterwards; in-flight backoff state is untouched.
func (s *Supervisor) SetPolicy(pol *Policy) {
	if pol == nil {
		pol = Default()
	}
	s.pol = pol
	s.rng = rand.New(rand.NewSource(pol.JitterSeed))
}

// Policy returns the supervisor's current policy.
func (s *Supervisor) Policy() *Policy { return s.pol }

// Reset clears the supervisor's per-instance health book — failure
// windows, backoff states, fallback aliases — as if supervision had just
// begun. The decision log and recovery records are kept. Call it after a
// snapshot rollback: the machine state the book described no longer
// exists.
func (s *Supervisor) Reset() {
	s.states = map[string]*instState{}
	s.alias = map[string]*instState{}
}

// Observe wires a metrics collector into the supervised system: the
// collector (already attached to the supervisor's machine) starts
// receiving the build layer's lifecycle events — init/fini steps,
// restarts, fallback swaps, unloads — and Report embeds each instance's
// ledger in its row. Pass nil to disconnect.
func (s *Supervisor) Observe(c *observe.Collector) {
	s.obs = c
	if c == nil {
		s.res.SetObserver(s.m, nil)
		return
	}
	s.res.SetObserver(s.m, c)
}

// Collector returns the observe collector wired in via Observe, or nil.
func (s *Supervisor) Collector() *observe.Collector { return s.obs }

// Call runs one exported function under supervision: the watchdog fuel
// budget is armed, and any failure is attributed and handled per
// policy (backoff + restart, fallback swap, scope escalation) before
// Call returns. The call's own error is returned either way — the
// in-flight request is lost; the *next* call finds a recovered system.
func (s *Supervisor) Call(bundle, sym string, args ...int64) (int64, error) {
	global, err := s.res.Export(bundle, sym)
	if err != nil {
		return 0, err
	}
	return s.CallGlobal(global, args...)
}

// CallGlobal is Call with an already resolved global symbol.
func (s *Supervisor) CallGlobal(global string, args ...int64) (int64, error) {
	s.m.Fuel = s.pol.WatchdogFuel
	v, err := s.m.Run(global, args...)
	if err != nil {
		s.HandleFault(err)
	}
	return v, err
}

// HandleFault attributes err to a unit instance and applies the policy.
// CallGlobal invokes it automatically; expose it so serving loops that
// drive the machine directly (or observe lifecycle errors out-of-band)
// can feed faults in.
func (s *Supervisor) HandleFault(err error) {
	st := s.stateFor(attribute(err, s.m))
	now := s.clk.Now()
	st.brownout = false
	st.lastErr = err
	st.total++
	st.failures = append(st.failures, now)
	s.prune(st, now)
	s.event(st, "fault", err.Error())
	if st.state == Dead {
		return
	}

	unitName := ""
	if st.active != nil {
		unitName = st.active.Unit.Name
	}
	k := len(st.failures)
	if k <= s.pol.restartsFor(unitName) {
		s.backoff(st, k, unitName)
		if s.restart(st) {
			return
		}
	}
	// Budget exhausted (or the restart itself failed): degrade to the
	// declared fallback, else escalate scope by scope.
	if st.active != nil && st.active.Unit.Fallback != "" {
		if s.swap(st) {
			return
		}
	}
	s.escalate(st)
}

// Report enumerates every static unit instance's supervision state,
// sorted by instance path.
func (s *Supervisor) Report() []InstanceStatus {
	var out []InstanceStatus
	for _, inst := range s.res.Program.Instances {
		row := InstanceStatus{Path: inst.Path, Unit: inst.Unit.Name, State: Healthy}
		if st, ok := s.states[inst.Path]; ok {
			row.State = st.state
			row.Failures = st.total
			row.Restarts = st.restarts
			row.Swaps = st.swaps
			if st.lu != nil {
				row.ActiveModule = st.lu.Name()
			}
			if st.lastErr != nil {
				row.LastError = st.lastErr.Error()
			}
		}
		if s.obs != nil {
			row.Metrics = s.obs.Snapshot(inst.Path)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Healthy reports whether no instance is dead and none is mid-backoff:
// every instance serves, natively or through its fallback.
func (s *Supervisor) Healthy() bool {
	for _, st := range s.states {
		if st.state == Dead || st.state == BackingOff {
			return false
		}
	}
	return true
}

// Events returns the supervisor's decision log.
func (s *Supervisor) Events() []Event { return s.events }

// Recoveries returns the fault-to-restored-service measurements.
func (s *Supervisor) Recoveries() []RecoveryRecord { return s.recov }

// attribute maps a failure to the owning instance path, preferring the
// structured attribution the machine and build layers provide.
func attribute(err error, m *machine.M) string {
	var trap *machine.Trap
	if errors.As(err, &trap) && trap.Unit != "" {
		return trap.Unit
	}
	var lerr *build.LifecycleError
	if errors.As(err, &lerr) && lerr.Unit != "" {
		return lerr.Unit
	}
	return ""
}

// stateFor resolves an attribution name to its instance state, creating
// one on first sight. Attribution to a fallback module resolves to the
// original instance it replaced (the alias map).
func (s *Supervisor) stateFor(path string) *instState {
	if st, ok := s.alias[path]; ok {
		return st
	}
	if st, ok := s.states[path]; ok {
		return st
	}
	st := &instState{path: path, state: Healthy, escScope: path}
	if inst := s.res.InstanceByPath(s.m, path); inst != nil {
		st.inst, st.active = inst, inst
	} else if path != "" {
		// Attributed to something the build layer does not know (an
		// ambient symbol, a module loaded behind our back): supervise it
		// as a program-level fault.
		st.path, st.escScope = "", ""
		if prev, ok := s.states[""]; ok {
			s.alias[path] = prev
			return prev
		}
	}
	s.states[st.path] = st
	if path != st.path {
		s.alias[path] = st
	}
	return st
}

func (s *Supervisor) prune(st *instState, now time.Time) {
	if s.pol.Window <= 0 {
		return
	}
	keep := st.failures[:0]
	for _, t := range st.failures {
		if now.Sub(t) <= s.pol.Window {
			keep = append(keep, t)
		}
	}
	st.failures = keep
}

// backoff sleeps min(base·2^(k−1), max) plus seeded jitter in
// [0, backoff/4], marking the instance backing-off for the duration.
func (s *Supervisor) backoff(st *instState, k int, unitName string) {
	base, max := s.pol.backoffFor(unitName)
	if base <= 0 {
		return
	}
	d := base
	for i := 1; i < k; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	if j := int64(d / 4); j > 0 {
		d += time.Duration(s.rng.Int63n(j + 1))
	}
	st.state = BackingOff
	s.event(st, "backoff", d.String())
	s.clk.Sleep(d)
}

// restart re-initializes the active implementation; true on success.
func (s *Supervisor) restart(st *instState) bool {
	start := s.clk.Now()
	var err error
	if st.inst == nil {
		err = s.res.RestartScope(s.m, "")
	} else {
		err = s.res.RestartInstance(s.m, st.active)
	}
	if err != nil {
		st.lastErr = err
		s.event(st, "restart", "failed: "+err.Error())
		return false
	}
	st.restarts++
	if st.lu != nil {
		st.state = Degraded
	} else {
		st.state = Healthy
	}
	s.event(st, "restart", "ok")
	s.recov = append(s.recov, RecoveryRecord{
		Instance: st.path, Mode: "restart", Latency: s.clk.Now().Sub(start),
	})
	return true
}

// swap replaces the active implementation with its declared fallback
// via runtime interposition; true on success.
func (s *Supervisor) swap(st *instState) bool {
	start := s.clk.Now()
	lu, err := s.res.SwapFallback(s.m, st.active)
	if err != nil {
		st.lastErr = err
		s.event(st, "swap", "failed: "+err.Error())
		return false
	}
	prev := st.lu
	st.lu = lu
	st.active = lu.Instance
	st.state = Degraded
	st.swaps++
	st.failures = st.failures[:0]
	s.alias[lu.Name()] = st
	s.event(st, "swap", "now serving via "+lu.Name())
	if prev != nil {
		if rerr := prev.ReleaseSuperseded(s.m); rerr != nil {
			s.event(st, "release", "failed: "+rerr.Error())
		} else {
			s.event(st, "release", prev.Name())
		}
	}
	s.recov = append(s.recov, RecoveryRecord{
		Instance: st.path, Mode: "swap", Latency: s.clk.Now().Sub(start),
	})
	return true
}

// escalate restarts ever-wider enclosing scopes; a root-scope failure
// (or running out of scopes) marks the instance dead.
func (s *Supervisor) escalate(st *instState) {
	start := s.clk.Now()
	scope := st.escScope
	for {
		if scope == "" {
			s.die(st)
			return
		}
		scope = parentScope(scope)
		s.event(st, "escalate", "restarting scope "+scopeName(scope))
		if err := s.res.RestartScope(s.m, scope); err != nil {
			st.lastErr = err
			s.event(st, "escalate", "scope "+scopeName(scope)+" failed: "+err.Error())
			if scope == "" {
				s.die(st)
				return
			}
			continue
		}
		break
	}
	st.escScope = scope
	// The scope restart wiped the state of everything inside it: clear
	// those instances' failure windows and mark them freshly healthy.
	for _, other := range s.states {
		if other.inst == nil || !scopeContains(scope, other.inst.Path) {
			continue
		}
		other.failures = other.failures[:0]
		if other.state != Dead && other.state != Degraded {
			other.state = Healthy
		}
	}
	st.failures = st.failures[:0]
	if st.state != Degraded {
		st.state = Healthy
	}
	s.recov = append(s.recov, RecoveryRecord{
		Instance: st.path, Mode: "escalate", Latency: s.clk.Now().Sub(start),
	})
}

func (s *Supervisor) die(st *instState) {
	st.state = Dead
	s.event(st, "dead", "every remedy exhausted")
}

func (s *Supervisor) event(st *instState, action, detail string) {
	s.events = append(s.events, Event{
		At: s.clk.Now(), Instance: scopeName(st.path), Action: action, Detail: detail,
	})
}

func parentScope(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[:i]
	}
	return ""
}

func scopeName(scope string) string {
	if scope == "" {
		return "<program>"
	}
	return scope
}

// scopeContains mirrors sched.ScopeContains without importing sched
// into the hot path signature — same semantics.
func scopeContains(scope, path string) bool {
	if scope == "" {
		return true
	}
	return path == scope || strings.HasPrefix(path, scope+"/") || strings.HasPrefix(path, scope+"#")
}
