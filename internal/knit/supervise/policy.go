package supervise

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Policy is the declarative restart policy a supervisor applies to
// every unit instance, with optional per-unit overrides.
type Policy struct {
	// MaxRestarts is the failure budget: how many attributed failures
	// within Window are answered with a backoff-and-restart before the
	// supervisor escalates (fallback swap, then scope restart).
	MaxRestarts int
	// Window bounds the failure budget in time: only failures within
	// the trailing window count against the budget. Zero means the
	// budget spans the instance's lifetime.
	Window time.Duration
	// BaseBackoff and MaxBackoff shape the capped exponential backoff
	// before the k-th restart: min(BaseBackoff·2^(k−1), MaxBackoff),
	// plus jitter. Zero BaseBackoff disables backoff sleeps.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the deterministic jitter source. The same seed
	// and fault sequence produce the same backoff schedule.
	JitterSeed int64
	// WatchdogFuel bounds each supervised call's executed instructions
	// (machine.M.Fuel): a wedged component becomes an attributed
	// budget-exhausted trap instead of a hang. Zero disables it.
	WatchdogFuel int64
	// Units holds per-unit overrides, keyed by unit name.
	Units map[string]UnitOverride
}

// UnitOverride overrides chosen policy fields for one unit. Nil fields
// inherit the global policy.
type UnitOverride struct {
	MaxRestarts *int
	BaseBackoff *time.Duration
	MaxBackoff  *time.Duration
}

// Default returns the stock policy: two restarts, lifetime window,
// 10ms–1s exponential backoff, jitter seed 1, no watchdog.
func Default() *Policy {
	return &Policy{
		MaxRestarts: 2,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  time.Second,
		JitterSeed:  1,
	}
}

// ForShard derives an independent copy of the policy for one fleet
// shard: same budgets and backoff shape, but a decorrelated JitterSeed
// so shards that fail together do not back off in lockstep and hammer
// the respawn path as one thundering herd. Supervisors are per-machine
// and not concurrency-safe, so every shard needs its own Policy value;
// the Units override map is deep-copied for the same reason.
func (p *Policy) ForShard(shard int) *Policy {
	cp := *p
	// Weyl-sequence increment (golden-ratio constant): consecutive shard
	// IDs land far apart in seed space.
	cp.JitterSeed = p.JitterSeed + int64(shard+1)*-0x61c8864680b583eb
	if p.Units != nil {
		cp.Units = make(map[string]UnitOverride, len(p.Units))
		for k, v := range p.Units {
			cp.Units[k] = v
		}
	}
	return &cp
}

// ForCanary derives the trial policy a canary shard runs under while a
// reconfiguration is being judged: one restart, no backoff sleeps, no
// per-unit leniency. A regression introduced by the new wiring should
// surface in the SLO window as traps and dead components, not be papered
// over by patient restart budgets that out-wait the trial.
func (p *Policy) ForCanary() *Policy {
	return &Policy{
		MaxRestarts:  1,
		JitterSeed:   p.JitterSeed,
		WatchdogFuel: p.WatchdogFuel,
	}
}

func (p *Policy) restartsFor(unit string) int {
	if o, ok := p.Units[unit]; ok && o.MaxRestarts != nil {
		return *o.MaxRestarts
	}
	return p.MaxRestarts
}

func (p *Policy) backoffFor(unit string) (base, max time.Duration) {
	base, max = p.BaseBackoff, p.MaxBackoff
	if o, ok := p.Units[unit]; ok {
		if o.BaseBackoff != nil {
			base = *o.BaseBackoff
		}
		if o.MaxBackoff != nil {
			max = *o.MaxBackoff
		}
	}
	return base, max
}

// Parse reads the line-based policy file format:
//
//	# global settings
//	max_restarts = 2
//	window = 30s
//	base_backoff = 10ms
//	max_backoff = 1s
//	jitter_seed = 42
//	watchdog_fuel = 1000000
//
//	[unit Classifier]
//	max_restarts = 1
//	base_backoff = 5ms
//
// Unknown keys are errors; '#' starts a comment; blank lines are
// ignored. A "[unit NAME]" header scopes the keys after it to that
// unit (only max_restarts, base_backoff, and max_backoff may be
// overridden per unit).
func Parse(text string) (*Policy, error) {
	p := Default()
	var unit string // "" = global section
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("policy line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fail("unterminated section header %q", line)
			}
			fields := strings.Fields(strings.Trim(line, "[]"))
			if len(fields) != 2 || fields[0] != "unit" {
				return nil, fail("section header must be [unit NAME], got %q", line)
			}
			unit = fields[1]
			if p.Units == nil {
				p.Units = map[string]UnitOverride{}
			}
			if _, dup := p.Units[unit]; dup {
				return nil, fail("duplicate section for unit %s", unit)
			}
			p.Units[unit] = UnitOverride{}
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fail("expected key = value, got %q", line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if unit == "" {
			if err := p.setGlobal(key, val); err != nil {
				return nil, fail("%v", err)
			}
			continue
		}
		o := p.Units[unit]
		if err := setOverride(&o, key, val); err != nil {
			return nil, fail("unit %s: %v", unit, err)
		}
		p.Units[unit] = o
	}
	if p.MaxBackoff < p.BaseBackoff {
		return nil, fmt.Errorf("policy: max_backoff %v < base_backoff %v", p.MaxBackoff, p.BaseBackoff)
	}
	return p, nil
}

func (p *Policy) setGlobal(key, val string) error {
	switch key {
	case "max_restarts":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("max_restarts must be a non-negative integer, got %q", val)
		}
		p.MaxRestarts = n
	case "window":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("window must be a non-negative duration, got %q", val)
		}
		p.Window = d
	case "base_backoff":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("base_backoff must be a non-negative duration, got %q", val)
		}
		p.BaseBackoff = d
	case "max_backoff":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("max_backoff must be a non-negative duration, got %q", val)
		}
		p.MaxBackoff = d
	case "jitter_seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("jitter_seed must be an integer, got %q", val)
		}
		p.JitterSeed = n
	case "watchdog_fuel":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("watchdog_fuel must be a non-negative integer, got %q", val)
		}
		p.WatchdogFuel = n
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

func setOverride(o *UnitOverride, key, val string) error {
	switch key {
	case "max_restarts":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("max_restarts must be a non-negative integer, got %q", val)
		}
		o.MaxRestarts = &n
	case "base_backoff":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("base_backoff must be a non-negative duration, got %q", val)
		}
		o.BaseBackoff = &d
	case "max_backoff":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("max_backoff must be a non-negative duration, got %q", val)
		}
		o.MaxBackoff = &d
	default:
		return fmt.Errorf("key %q cannot be set per unit", key)
	}
	return nil
}
