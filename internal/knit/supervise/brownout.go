package supervise

import (
	"errors"
	"fmt"
	"sort"
)

// Brownout: proactively degrading a healthy system to its declared
// fallback wirings to shed work before overload forces shedding of
// traffic. Where HandleFault swaps a unit because it failed, DegradeAll
// swaps every unit that *can* degrade because the fleet is drowning —
// the same interposition mechanism (§2.3), entered deliberately and, in
// contrast to fault-driven degradation, deliberately reversible:
// RestoreAll re-points the exports back at the original instances and
// unloads the fallbacks.

// DegradeAll swaps every healthy instance that declares a fallback unit
// to that fallback, marking each swap brownout-initiated so RestoreAll
// knows it may undo it. Instances already degraded, backing off, or
// dead are left alone. Returns how many instances were swapped; a swap
// failure stops nothing — the joined errors report what did not switch.
func (s *Supervisor) DegradeAll() (int, error) {
	var errs []error
	n := 0
	for _, inst := range s.res.Program.Instances {
		if inst.Unit.Fallback == "" {
			continue
		}
		st := s.stateFor(inst.Path)
		if st.state != Healthy || st.inst == nil {
			continue
		}
		if !s.swap(st) {
			errs = append(errs, fmt.Errorf("brownout %s: %w", inst.Path, st.lastErr))
			continue
		}
		st.brownout = true
		s.event(st, "brownout", "degraded for load")
		n++
	}
	return n, errors.Join(errs...)
}

// RestoreAll undoes brownout-initiated degradations: the original
// instance's export symbols are un-interposed (callers route to the
// primary again) and the fallback module is unloaded, finalizers and
// all. Degradations the fault handler performed — including brownout
// swaps that faulted while browned out — are NOT restored: a unit that
// earned its fallback keeps it. Returns how many instances came back.
func (s *Supervisor) RestoreAll() (int, error) {
	var errs []error
	n := 0
	// Map iteration order is random; sort for a deterministic event log.
	paths := make([]string, 0, len(s.states))
	for p := range s.states {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		st := s.states[p]
		if !st.brownout || st.state != Degraded || st.lu == nil || st.inst == nil {
			continue
		}
		// Un-interpose first: the redirect keys are the original
		// instance's export globals (the brownout swap started from
		// Healthy, so the swapped-over instance was the original).
		for _, syms := range st.inst.ExportSyms {
			for _, global := range syms {
				s.m.Unpose(global)
			}
		}
		if err := st.lu.Unload(s.m); err != nil {
			// Finalizer failure: the fallback stays loaded but bypassed —
			// the primary is serving again. Report it, keep going.
			errs = append(errs, fmt.Errorf("restore %s: %w", st.path, err))
		}
		delete(s.alias, st.lu.Name())
		st.lu = nil
		st.active = st.inst
		st.state = Healthy
		st.brownout = false
		st.failures = st.failures[:0]
		s.event(st, "restore", "brownout lifted")
		n++
	}
	return n, errors.Join(errs...)
}

// BrownedOut reports whether any instance is currently serving through
// a brownout-initiated fallback.
func (s *Supervisor) BrownedOut() bool {
	for _, st := range s.states {
		if st.brownout && st.state == Degraded {
			return true
		}
	}
	return false
}
