package supervise

import (
	"strings"
	"testing"

	"knit/internal/knit/build/faultinject"
	"knit/internal/knit/observe"
	"knit/internal/machine"
)

// TestObserveEndToEnd drives the restart -> restart -> swap ladder with
// a collector wired in and checks that every event lands on the right
// instance ledger and that Report embeds the metrics.
func TestObserveEndToEnd(t *testing.T) {
	res, m := buildSup(t)
	c := observe.Attach(m)
	in := faultinject.Attach(m)
	defer in.Detach()

	instB := instOf(t, res, "B")
	bGet := instB.ExportSyms["b"]["get"]
	in.TrapCallEvery(bGet, 1)

	sup := New(res, m, Default(), NewFakeClock())
	sup.Observe(c)
	if sup.Collector() != c {
		t.Fatal("Collector() does not return the wired collector")
	}

	for i := 0; i < 3; i++ {
		if _, err := sup.Call("c", "get"); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	if _, err := sup.Call("c", "get"); err != nil {
		t.Fatalf("call after swap: %v", err)
	}

	bm := c.Snapshot(instB.Path)
	if bm == nil {
		t.Fatalf("no metrics for %s", instB.Path)
	}
	if bm.Restarts != 2 {
		t.Errorf("B restarts = %d, want 2", bm.Restarts)
	}
	if bm.Swaps != 1 {
		t.Errorf("B swaps = %d, want 1", bm.Swaps)
	}
	// Each restart re-runs B's initializer (the boot-time RunInit predates
	// the collector, so it is not in the ledger).
	if bm.Inits != 2 {
		t.Errorf("B inits = %d, want 2 (one per restart)", bm.Inits)
	}
	// The injected faults are attributed to B, under their own kind.
	if bm.Traps[machine.TrapInjected] != 3 {
		t.Errorf("B injected traps = %d, want 3", bm.Traps[machine.TrapInjected])
	}

	// Report rows embed the per-instance ledgers.
	row := statusOf(t, sup, instB.Path)
	if row.Metrics == nil || row.Metrics.Restarts != 2 || row.Metrics.Swaps != 1 {
		t.Errorf("report row metrics = %+v, want restarts=2 swaps=1", row.Metrics)
	}

	// The successful post-swap call ran the fallback module's code; its
	// ledger path names the BSafe module and carries the call.
	rep := c.Report()
	var sawFallback bool
	for i := range rep.Instances {
		im := &rep.Instances[i]
		if strings.Contains(im.Path, "BSafe") {
			sawFallback = true
			if im.Calls == 0 {
				t.Errorf("fallback ledger %s has no calls", im.Path)
			}
			if im.Inits == 0 {
				t.Errorf("fallback ledger %s has no init steps", im.Path)
			}
		}
	}
	if !sawFallback {
		t.Errorf("no fallback-module ledger in report: %+v", rep.Instances)
	}

	sup.Observe(nil)
	if row := statusOf(t, sup, instB.Path); row.Metrics != nil {
		t.Error("Observe(nil) still embeds metrics")
	}
}

// TestSupervisedCallZeroAllocs: the supervised no-fault call path —
// watchdog fuel arming, the machine run, interposition lookups, and the
// attached collector — must not allocate per call. This is the property
// the <5% observe-overhead budget rests on.
func TestSupervisedCallZeroAllocs(t *testing.T) {
	res, m := buildSup(t)
	c := observe.Attach(m)
	sup := New(res, m, Default(), NewFakeClock())
	sup.Observe(c)
	global, err := res.Export("c", "get")
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := sup.CallGlobal(global); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm arenas and ledgers
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Errorf("supervised call path: %.1f allocs/op, want 0", n)
	}
}
