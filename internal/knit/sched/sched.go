// Package sched computes the automatic initialization and finalization
// schedule for an elaborated Knit program (paper §3.2).
//
// The semantics distinguish two dependency levels, exactly as the paper
// does for the logging unit:
//
//   - "open_log needs stdio" (an *initializer* dependency) means the
//     providers of stdio must be ready before open_log runs;
//   - "serveLog needs stdio" (an *export-level* dependency) means stdio
//     must be ready before anything calls into serveLog — it does not by
//     itself order the two components' initializers.
//
// A bundle is ready when its own initializers have run and every bundle
// its exports depend on is ready (computed as a transitive closure, so
// cyclic import graphs are fine). Only cycles among *initializers* are
// errors, reported with the offending path so the programmer can break
// them with finer-grained dependencies.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"knit/internal/knit/link"
)

// node identifies an export bundle of an instance.
type node struct {
	inst   *link.Instance
	bundle string
}

// Step describes one scheduled initializer or finalizer call with
// enough identity for lifecycle error reports: which unit instance owns
// it, which export bundle it belongs to, and its source-level name.
type Step struct {
	Global   string // program-unique (renamed) C-level name
	Func     string // name as written in the unit file
	Instance string // owning instance path, e.g. "LogServe/Log#1"
	Bundle   string // export bundle the step initializes/finalizes
}

// Schedule is the computed order of initializer and finalizer calls.
type Schedule struct {
	// Inits holds the global (C-level) names of initializer functions in
	// call order.
	Inits []string
	// Fins holds finalizer names in call order (reverse readiness).
	Fins []string
	// InitSteps and FinSteps carry per-call metadata, parallel to Inits
	// and Fins respectively.
	InitSteps []Step
	FinSteps  []Step
	// FinReady[i] is the number of leading entries of Inits that must
	// have completed before FinSteps[i]'s bundle counts as initialized —
	// the fine-grained fini dependency rank. A rollback after k
	// successful initializers runs exactly the finalizers with
	// FinReady[i] <= k, in FinSteps order: components whose
	// initialization never completed are not finalized.
	FinReady []int
}

// CycleError reports an initialization cycle the scheduler cannot break.
type CycleError struct {
	Path []string // initializer names along the cycle
}

func (e *CycleError) Error() string {
	return "knit: initialization cycle: " + strings.Join(e.Path, " -> ") +
		" (break it with a finer-grained 'needs' declaration)"
}

// Compute builds the initialization schedule for a program.
func Compute(prog *link.Program) (*Schedule, error) {
	instances := prog.SortedInstances()

	// closure(bundle node) = set of bundle nodes transitively needed by
	// its exports, following export-level needs across wires. Cycles at
	// the export level are permitted (the paper: cyclic imports are
	// common); BFS simply saturates.
	closure := func(start node) []node {
		seen := map[node]bool{start: true}
		out := []node{start}
		for i := 0; i < len(out); i++ {
			n := out[i]
			for _, importLocal := range n.inst.ExportNeeds[n.bundle] {
				w := n.inst.ImportWires[importLocal]
				if w == nil || w.Provider == nil {
					continue
				}
				next := node{w.Provider, w.Bundle}
				if !seen[next] {
					seen[next] = true
					out = append(out, next)
				}
			}
		}
		return out
	}

	// Initializers attached to each bundle node, in declaration order.
	initsOf := map[node][]*link.Init{}
	var allInits []*link.Init
	initInst := map[*link.Init]*link.Instance{}
	for _, inst := range instances {
		for _, ini := range inst.Inits {
			if ini.Finalizer {
				continue
			}
			n := node{inst, ini.Bundle}
			initsOf[n] = append(initsOf[n], ini)
			allInits = append(allInits, ini)
			initInst[ini] = inst
		}
	}

	// Edges: initializer j -> initializer i when i must run first:
	// j needs import b; every initializer attached to any bundle in
	// closure(provider(b)) must precede j. An initializer's own bundle's
	// export-level needs also apply transitively when *other* code calls
	// into it, which the closure captures via whoever needs it.
	preds := map[*link.Init][]*link.Init{}
	for _, inst := range instances {
		for _, ini := range inst.Inits {
			if ini.Finalizer {
				continue
			}
			for _, importLocal := range ini.Needs {
				w := inst.ImportWires[importLocal]
				if w == nil || w.Provider == nil {
					continue
				}
				for _, dep := range closure(node{w.Provider, w.Bundle}) {
					for _, other := range initsOf[dep] {
						if other != ini {
							preds[ini] = append(preds[ini], other)
						}
					}
				}
			}
		}
	}

	order, err := topoSort(allInits, preds)
	if err != nil {
		return nil, err
	}
	s := &Schedule{}
	for _, ini := range order {
		s.Inits = append(s.Inits, ini.GlobalName)
		s.InitSteps = append(s.InitSteps, Step{
			Global:   ini.GlobalName,
			Func:     ini.Func,
			Instance: initInst[ini].Path,
			Bundle:   ini.Bundle,
		})
	}
	// Finalizers: pair them with their bundle; run in reverse of the
	// *initialization* readiness order. Finalizers of bundles whose
	// initializers ran last run first.
	finsOf := map[node][]*link.Init{}
	finInst := map[*link.Init]*link.Instance{}
	var finNodes []node
	for _, inst := range instances {
		for _, ini := range inst.Inits {
			if !ini.Finalizer {
				continue
			}
			n := node{inst, ini.Bundle}
			if len(finsOf[n]) == 0 {
				finNodes = append(finNodes, n)
			}
			finsOf[n] = append(finsOf[n], ini)
			finInst[ini] = inst
		}
	}
	// Rank each bundle node by the position of its last initializer in
	// the schedule (bundles with no initializer rank first).
	rank := map[node]int{}
	for i, ini := range order {
		n := node{initInst[ini], ini.Bundle}
		rank[n] = i + 1
	}
	sort.SliceStable(finNodes, func(a, b int) bool {
		return rank[finNodes[a]] > rank[finNodes[b]]
	})
	for _, n := range finNodes {
		for _, fin := range finsOf[n] {
			s.Fins = append(s.Fins, fin.GlobalName)
			s.FinSteps = append(s.FinSteps, Step{
				Global:   fin.GlobalName,
				Func:     fin.Func,
				Instance: finInst[fin].Path,
				Bundle:   fin.Bundle,
			})
			s.FinReady = append(s.FinReady, rank[n])
		}
	}
	return s, nil
}

// FinsReadyAfter returns the indices into Fins/FinSteps of the
// finalizers whose components are fully initialized once the first
// completed initializers of the schedule have run — the exact set a
// rollback after a failure at position completed must execute, already
// in reverse-readiness call order.
func (s *Schedule) FinsReadyAfter(completed int) []int {
	var out []int
	for i, r := range s.FinReady {
		if r <= completed {
			out = append(out, i)
		}
	}
	return out
}

// InitsForScope returns the indices into Inits/InitSteps of the
// initializers owned by unit instances inside scope, in schedule order.
// The supervision layer uses this to restart a subtree of the program:
// reset its components' data, then re-run exactly these initializers.
func (s *Schedule) InitsForScope(scope string) []int {
	var out []int
	for i, st := range s.InitSteps {
		if ScopeContains(scope, st.Instance) {
			out = append(out, i)
		}
	}
	return out
}

// ScopeContains reports whether an instance path lies within a scope.
// The empty scope contains every instance; otherwise the path must be
// the scope itself or nested under it — "ClackRouter" contains
// "ClackRouter/cl0#5", and "ClackRouter/cl0" contains "ClackRouter/cl0#5",
// but "ClackRouter/cl" does not.
func ScopeContains(scope, path string) bool {
	if scope == "" {
		return true
	}
	if path == scope {
		return true
	}
	return strings.HasPrefix(path, scope+"/") || strings.HasPrefix(path, scope+"#")
}

// topoSort orders initializers so every predecessor precedes its
// dependents, preserving declaration order among unconstrained
// initializers. A cycle yields a CycleError with the cycle path.
func topoSort(all []*link.Init, preds map[*link.Init][]*link.Init) ([]*link.Init, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*link.Init]int{}
	var order []*link.Init
	var stack []*link.Init

	var visit func(ini *link.Init) *CycleError
	visit = func(ini *link.Init) *CycleError {
		switch color[ini] {
		case black:
			return nil
		case gray:
			// Reconstruct the cycle from the stack.
			var path []string
			start := -1
			for i, s := range stack {
				if s == ini {
					start = i
					break
				}
			}
			if start >= 0 {
				for _, s := range stack[start:] {
					path = append(path, s.Func)
				}
			}
			path = append(path, ini.Func)
			return &CycleError{Path: path}
		}
		color[ini] = gray
		stack = append(stack, ini)
		for _, p := range preds[ini] {
			if err := visit(p); err != nil {
				return err
			}
		}
		stack = stack[:len(stack)-1]
		color[ini] = black
		order = append(order, ini)
		return nil
	}
	for _, ini := range all {
		if err := visit(ini); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// String renders the schedule for diagnostics.
func (s *Schedule) String() string {
	return fmt.Sprintf("init: %s; fini: %s",
		strings.Join(s.Inits, ", "), strings.Join(s.Fins, ", "))
}
