package sched

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"knit/internal/knit/lang"
	"knit/internal/knit/link"
)

// elabProgram builds a program from unit-language source; every atomic
// unit gets a trivial generated C file defining its exports and
// initializers.
func elabProgram(t *testing.T, units, top string, sources link.Sources) *link.Program {
	t.Helper()
	f, err := lang.Parse("t.unit", units)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	reg, err := link.NewRegistry(f)
	if err != nil {
		t.Fatal(err)
	}
	p, err := link.Elaborate(reg, top, sources)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return p
}

func indexOfPrefix(names []string, prefix string) int {
	for i, n := range names {
		if strings.HasPrefix(n, prefix) {
			return i
		}
	}
	return -1
}

// TestPaperLoggingDistinction encodes §3.2's example: "open_log needs
// stdio" must order stdio's initializer before open_log, while
// "serveLog needs serveWeb" (export-level, serveWeb has no initializer)
// imposes nothing extra.
func TestPaperLoggingDistinction(t *testing.T) {
	units := `
bundletype Serve = { serve_web }
bundletype Stdio = { fopen }

unit StdioU = {
  exports [ stdio : Stdio ];
  initializer stdio_init for stdio;
  files { "stdio.c" };
}
unit WebU = {
  exports [ serveWeb : Serve ];
  files { "web.c" };
}
unit LogU = {
  imports [ serveWeb : Serve, stdio : Stdio ];
  exports [ serveLog : Serve ];
  initializer open_log for serveLog;
  depends {
    open_log needs stdio;
    serveLog needs (serveWeb + stdio);
  };
  files { "log.c" };
  rename {
    serveWeb.serve_web to serve_unlogged;
    serveLog.serve_web to serve_logged;
  };
}
unit Top = {
  exports [ serveLog : Serve ];
  link {
    [stdio] <- StdioU <- [];
    [serveWeb] <- WebU <- [];
    [serveLog] <- LogU <- [serveWeb, stdio];
  };
}
`
	sources := link.Sources{
		"stdio.c": `void stdio_init(void) { } int fopen(char *n, char *m) { return 1; }`,
		"web.c":   `int serve_web(int s) { return 0; }`,
		"log.c": `
int serve_unlogged(int s);
int fopen(char *n, char *m);
void open_log(void) { fopen("log", "a"); }
int serve_logged(int s) { return serve_unlogged(s); }
`,
	}
	p := elabProgram(t, units, "Top", sources)
	s, err := Compute(p)
	if err != nil {
		t.Fatal(err)
	}
	si := indexOfPrefix(s.Inits, "stdio_init")
	oi := indexOfPrefix(s.Inits, "open_log")
	if si < 0 || oi < 0 {
		t.Fatalf("schedule missing inits: %v", s.Inits)
	}
	if si > oi {
		t.Errorf("stdio_init must precede open_log: %v", s.Inits)
	}
}

// TestBundleLevelDependencyAlone verifies the paper's subtlety: a
// bundle-level dependency by itself does NOT order two components'
// initializers, but an initializer-level dependency does.
func TestBundleLevelDependencyAlone(t *testing.T) {
	mk := func(dep string) string {
		return fmt.Sprintf(`
bundletype A = { fa }
bundletype B = { fb }
unit UA = {
  imports [ b : B ];
  exports [ a : A ];
  initializer init_a for a;
  depends { %s; };
  files { "a.c" };
}
unit UB = {
  exports [ b : B ];
  initializer init_b for b;
  files { "b.c" };
}
unit Top = {
  exports [ a : A ];
  link {
    [b] <- UB <- [];
    [a] <- UA <- [b];
  };
}
`, dep)
	}
	sources := link.Sources{
		"a.c": `int fb(void); void init_a(void) { } int fa(void) { return fb(); }`,
		"b.c": `void init_b(void) { } int fb(void) { return 1; }`,
	}

	// Initializer-level: init_b must come first.
	p := elabProgram(t, mk("init_a needs b"), "Top", sources)
	s, err := Compute(p)
	if err != nil {
		t.Fatal(err)
	}
	if indexOfPrefix(s.Inits, "init_b") > indexOfPrefix(s.Inits, "init_a") {
		t.Errorf("init-level dep violated: %v", s.Inits)
	}

	// Bundle-level only: both orders are legal; the scheduler must still
	// produce both initializers without error.
	p2 := elabProgram(t, mk("a needs b"), "Top", sources)
	s2, err := Compute(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Inits) != 2 {
		t.Errorf("schedule = %v, want both initializers", s2.Inits)
	}
}

// TestCyclicImportsFineCyclicInitsError: cyclic import graphs are
// supported (the paper: "cyclic imports are common"), but a genuine
// cycle among initializers is an error with the offending path.
func TestCyclicImportsFineCyclicInitsError(t *testing.T) {
	units := `
bundletype A = { fa }
bundletype B = { fb }
unit UA = {
  imports [ b : B ];
  exports [ a : A ];
  initializer init_a for a;
  depends { init_a needs b; };
  files { "a.c" };
}
unit UB = {
  imports [ a : A ];
  exports [ b : B ];
  initializer init_b for b;
  depends { init_b needs a; };
  files { "b.c" };
}
unit Top = {
  exports [ a : A ];
  link {
    [a] <- UA <- [b];
    [b] <- UB <- [a];
  };
}
`
	sources := link.Sources{
		"a.c": `int fb(void); void init_a(void) { } int fa(void) { return fb(); }`,
		"b.c": `int fa(void); void init_b(void) { } int fb(void) { return fa(); }`,
	}
	p := elabProgram(t, units, "Top", sources)
	_, err := Compute(p)
	if err == nil {
		t.Fatal("cyclic initializers should error")
	}
	ce, ok := err.(*CycleError)
	if !ok {
		t.Fatalf("err = %T %v, want CycleError", err, err)
	}
	if len(ce.Path) < 2 {
		t.Errorf("cycle path too short: %v", ce.Path)
	}
	if !strings.Contains(err.Error(), "finer-grained") {
		t.Errorf("error should advise finer-grained deps: %v", err)
	}

	// Breaking the cycle with a finer-grained declaration (drop one
	// initializer dependency) makes it schedulable — the paper's fix.
	fixed := strings.Replace(units, "depends { init_b needs a; };", "depends { b needs a; };", 1)
	p2 := elabProgram(t, fixed, "Top", sources)
	s, err := Compute(p2)
	if err != nil {
		t.Fatalf("after breaking cycle: %v", err)
	}
	if indexOfPrefix(s.Inits, "init_a") < 0 || indexOfPrefix(s.Inits, "init_b") < 0 {
		t.Errorf("schedule incomplete: %v", s.Inits)
	}
}

// TestTransitiveReadiness: init_c needs b; b's exports need a; so a's
// initializer must precede init_c even though c never mentions a.
func TestTransitiveReadiness(t *testing.T) {
	units := `
bundletype A = { fa }
bundletype B = { fb }
bundletype C = { fc }
unit UA = {
  exports [ a : A ];
  initializer init_a for a;
  files { "a.c" };
}
unit UB = {
  imports [ a : A ];
  exports [ b : B ];
  depends { b needs a; };
  files { "b.c" };
}
unit UC = {
  imports [ b : B ];
  exports [ c : C ];
  initializer init_c for c;
  depends { init_c needs b; };
  files { "c.c" };
}
unit Top = {
  exports [ c : C ];
  link {
    [a] <- UA <- [];
    [b] <- UB <- [a];
    [c] <- UC <- [b];
  };
}
`
	sources := link.Sources{
		"a.c": `void init_a(void) { } int fa(void) { return 1; }`,
		"b.c": `int fa(void); int fb(void) { return fa(); }`,
		"c.c": `int fb(void); void init_c(void) { } int fc(void) { return fb(); }`,
	}
	p := elabProgram(t, units, "Top", sources)
	s, err := Compute(p)
	if err != nil {
		t.Fatal(err)
	}
	ia := indexOfPrefix(s.Inits, "init_a")
	ic := indexOfPrefix(s.Inits, "init_c")
	if ia < 0 || ic < 0 || ia > ic {
		t.Errorf("init_a must precede init_c via transitive readiness: %v", s.Inits)
	}
}

func TestFinalizersReverseOrder(t *testing.T) {
	units := `
bundletype A = { fa }
bundletype B = { fb }
unit UA = {
  exports [ a : A ];
  initializer init_a for a;
  finalizer fin_a for a;
  files { "a.c" };
}
unit UB = {
  imports [ a : A ];
  exports [ b : B ];
  initializer init_b for b;
  finalizer fin_b for b;
  depends { init_b needs a; fin_b needs a; };
  files { "b.c" };
}
unit Top = {
  exports [ b : B ];
  link {
    [a] <- UA <- [];
    [b] <- UB <- [a];
  };
}
`
	sources := link.Sources{
		"a.c": `void init_a(void) { } void fin_a(void) { } int fa(void) { return 1; }`,
		"b.c": `int fa(void); void init_b(void) { } void fin_b(void) { } int fb(void) { return fa(); }`,
	}
	p := elabProgram(t, units, "Top", sources)
	s, err := Compute(p)
	if err != nil {
		t.Fatal(err)
	}
	// init: a then b. fini: b then a.
	if indexOfPrefix(s.Inits, "init_a") > indexOfPrefix(s.Inits, "init_b") {
		t.Errorf("inits: %v", s.Inits)
	}
	if indexOfPrefix(s.Fins, "fin_b") > indexOfPrefix(s.Fins, "fin_a") {
		t.Errorf("fins should reverse init order: %v", s.Fins)
	}
}

// TestQuickRandomDAGSchedulable generates random initializer dependency
// DAGs (as chains of units) and checks the schedule respects every edge
// — the scheduler's core property.
func TestQuickRandomDAGSchedulable(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	fn := func() bool {
		n := 3 + r.Intn(5)
		// Unit i may depend on units j > i (so the graph is a DAG).
		deps := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					deps[i] = append(deps[i], j)
				}
			}
		}
		var units strings.Builder
		sources := link.Sources{}
		fmt.Fprintf(&units, "bundletype B = { f0 }\n")
		for i := 0; i < n; i++ {
			fmt.Fprintf(&units, "bundletype B%d = { f%d }\n", i, i)
		}
		for i := 0; i < n; i++ {
			var imps, depsStr []string
			for _, j := range deps[i] {
				imps = append(imps, fmt.Sprintf("i%d : B%d", j, j))
				depsStr = append(depsStr, fmt.Sprintf("init_%d needs i%d;", i, j))
			}
			impSection := ""
			if len(imps) > 0 {
				impSection = fmt.Sprintf("imports [ %s ];", strings.Join(imps, ", "))
			}
			depSection := ""
			if len(depsStr) > 0 {
				depSection = fmt.Sprintf("depends { %s };", strings.Join(depsStr, " "))
			}
			fmt.Fprintf(&units, `
unit U%d = {
  %s
  exports [ e%d : B%d ];
  initializer init_%d for e%d;
  %s
  files { "u%d.c" };
}
`, i, impSection, i, i, i, i, depSection, i)
			var src strings.Builder
			for _, j := range deps[i] {
				fmt.Fprintf(&src, "int f%d(void);\n", j)
			}
			fmt.Fprintf(&src, "void init_%d(void) { }\nint f%d(void) { return %d; }\n", i, i, i)
			sources[fmt.Sprintf("u%d.c", i)] = src.String()
		}
		// Top links them all; unit i receives its deps.
		fmt.Fprintf(&units, "unit Top = {\n  exports [ e0 : B0 ];\n  link {\n")
		for i := n - 1; i >= 0; i-- {
			var ins []string
			for _, j := range deps[i] {
				ins = append(ins, fmt.Sprintf("e%d", j))
			}
			fmt.Fprintf(&units, "    [e%d] <- U%d <- [%s];\n", i, i, strings.Join(ins, ", "))
		}
		fmt.Fprintf(&units, "  };\n}\n")

		p := elabProgram(t, units.String(), "Top", sources)
		s, err := Compute(p)
		if err != nil {
			t.Logf("Compute failed: %v\n%s", err, units.String())
			return false
		}
		pos := map[int]int{}
		for idx, name := range s.Inits {
			var unit int
			fmt.Sscanf(name, "init_%d", &unit)
			pos[unit] = idx
		}
		if len(pos) != n {
			t.Logf("schedule incomplete: %v", s.Inits)
			return false
		}
		for i := 0; i < n; i++ {
			for _, j := range deps[i] {
				if pos[j] > pos[i] {
					t.Logf("edge %d needs %d violated: %v", i, j, s.Inits)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStepMetadataAndFinReady: the schedule's Step records must carry
// the owning instance and source-level names parallel to Inits/Fins,
// and FinReady/FinsReadyAfter must give exactly the rollback set for a
// failure at each schedule position.
func TestStepMetadataAndFinReady(t *testing.T) {
	units := `
bundletype A = { fa }
bundletype B = { fb }
unit UA = {
  exports [ a : A ];
  initializer init_a for a;
  finalizer fin_a for a;
  files { "a.c" };
}
unit UB = {
  imports [ a : A ];
  exports [ b : B ];
  initializer init_b for b;
  finalizer fin_b for b;
  depends { init_b needs a; fin_b needs a; };
  files { "b.c" };
}
unit Top = {
  exports [ b : B ];
  link {
    [a] <- UA <- [];
    [b] <- UB <- [a];
  };
}
`
	sources := link.Sources{
		"a.c": `void init_a(void) { } void fin_a(void) { } int fa(void) { return 1; }`,
		"b.c": `int fa(void); void init_b(void) { } void fin_b(void) { } int fb(void) { return fa(); }`,
	}
	p := elabProgram(t, units, "Top", sources)
	s, err := Compute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.InitSteps) != len(s.Inits) || len(s.FinSteps) != len(s.Fins) ||
		len(s.FinReady) != len(s.Fins) {
		t.Fatalf("step metadata not parallel: %d/%d inits, %d/%d/%d fins",
			len(s.InitSteps), len(s.Inits), len(s.FinSteps), len(s.FinReady), len(s.Fins))
	}
	for i, step := range s.InitSteps {
		if step.Global != s.Inits[i] {
			t.Errorf("InitSteps[%d].Global = %q, want %q", i, step.Global, s.Inits[i])
		}
	}
	for i, step := range s.FinSteps {
		if step.Global != s.Fins[i] {
			t.Errorf("FinSteps[%d].Global = %q, want %q", i, step.Global, s.Fins[i])
		}
	}
	// init order is a then b; fins reverse: fin_b then fin_a.
	if s.InitSteps[0].Func != "init_a" || s.InitSteps[0].Bundle != "a" ||
		!strings.Contains(s.InitSteps[0].Instance, "UA") {
		t.Errorf("InitSteps[0] = %+v, want init_a for bundle a of the UA instance", s.InitSteps[0])
	}
	if s.InitSteps[1].Func != "init_b" || !strings.Contains(s.InitSteps[1].Instance, "UB") {
		t.Errorf("InitSteps[1] = %+v, want init_b of the UB instance", s.InitSteps[1])
	}
	if s.FinSteps[0].Func != "fin_b" || s.FinSteps[1].Func != "fin_a" {
		t.Errorf("FinSteps = %+v, want fin_b then fin_a", s.FinSteps)
	}
	// fin_b becomes runnable only after both inits (rank 2); fin_a after
	// the first (rank 1).
	if s.FinReady[0] != 2 || s.FinReady[1] != 1 {
		t.Errorf("FinReady = %v, want [2 1]", s.FinReady)
	}
	// Rollback sets: nothing ran -> nothing to finalize; init_a done ->
	// fin_a only; both done -> both, fin_b first.
	cases := [][]int{0: {}, 1: {1}, 2: {0, 1}}
	for completed, want := range cases {
		got := s.FinsReadyAfter(completed)
		if len(got) != len(want) {
			t.Errorf("FinsReadyAfter(%d) = %v, want %v", completed, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("FinsReadyAfter(%d) = %v, want %v", completed, got, want)
				break
			}
		}
	}
}
