package build

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"knit/internal/knit/build/faultinject"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

// The lifecycle fixture: a three-component chain A <- B <- C where each
// component's initializer records a positive probe id and its finalizer
// the negative id, so tests can assert exactly which lifecycle steps
// ran and in which order.
const chainUnits = `
bundletype Svc = { get }

unit A = {
  exports [ a : Svc ];
  initializer a_init for a;
  finalizer a_fini for a;
  files { "a.c" };
  rename { a.get to a_get; };
}
unit B = {
  imports [ a : Svc ];
  exports [ b : Svc ];
  initializer b_init for b;
  finalizer b_fini for b;
  depends { b needs a; b_init needs a; };
  files { "b.c" };
  rename { a.get to a_get; b.get to b_get; };
}
unit C = {
  imports [ b : Svc ];
  exports [ c : Svc ];
  initializer c_init for c;
  finalizer c_fini for c;
  depends { c needs b; c_init needs b; };
  files { "c.c" };
  rename { b.get to b_get; c.get to c_get; };
}
unit Chain = {
  exports [ a : Svc, b : Svc, c : Svc ];
  link {
    [a] <- A <- [];
    [b] <- B <- [a];
    [c] <- C <- [b];
  };
}
`

var chainSources = link.Sources{
	"a.c": `
extern int __probe(int id);
static int state;
void a_init(void) { __probe(1); state = 10; }
void a_fini(void) { __probe(-1); state = 0; }
int a_get(void) { return state; }
`,
	"b.c": `
extern int __probe(int id);
int a_get(void);
static int state;
void b_init(void) { __probe(2); state = a_get() + 10; }
void b_fini(void) { __probe(-2); state = 0; }
int b_get(void) { return state; }
`,
	"c.c": `
extern int __probe(int id);
int b_get(void);
static int state;
void c_init(void) { __probe(3); state = b_get() + 10; }
void c_fini(void) { __probe(-3); state = 0; }
int c_get(void) { return state; }
`,
}

func buildChain(t *testing.T) *Result {
	t.Helper()
	res, err := Build(Options{
		Top:       "Chain",
		UnitFiles: map[string]string{"chain.unit": chainUnits},
		Sources:   chainSources,
		Check:     true,
	})
	if err != nil {
		t.Fatalf("Build chain: %v", err)
	}
	return res
}

// probeMachine returns a chain machine plus the probe event log its
// lifecycle functions append to.
func probeMachine(res *Result) (*machine.M, *[]int64) {
	m := res.NewMachine()
	events := &[]int64{}
	m.RegisterBuiltin("__probe", func(_ *machine.M, args []int64) (int64, error) {
		*events = append(*events, args[0])
		return 0, nil
	})
	return m, events
}

var errBoom = errors.New("injected failure")

// TestInitRollbackAtEverySchedulePosition fails the k-th initializer
// for every schedule position k and asserts, each time, that (a) the
// error is a structured LifecycleError naming the failing unit instance
// and initializer, (b) exactly the fully-initialized components were
// finalized, in reverse schedule order, and (c) the machine memory is
// bit-identical to a never-initialized machine — no test may observe a
// half-initialized machine.
func TestInitRollbackAtEverySchedulePosition(t *testing.T) {
	res := buildChain(t)
	if len(res.Schedule.Inits) != 3 {
		t.Fatalf("schedule has %d inits, want 3: %v", len(res.Schedule.Inits), res.Schedule.Inits)
	}
	wantFuncs := []string{"a_init", "b_init", "c_init"}
	// Probe trace per failing position: inits 0..k-1 fire, then the
	// finalizers of those same components in reverse order.
	wantEvents := [][]int64{
		{},
		{1, -1},
		{1, 2, -2, -1},
	}
	for k := range res.Schedule.Inits {
		m, events := probeMachine(res)
		pristine := res.NewMachine()
		in := faultinject.Attach(m)
		in.FailNthRun(k, errBoom)

		err := res.RunInit(m)
		if err == nil {
			t.Fatalf("k=%d: RunInit succeeded despite injected failure", k)
		}
		var lerr *LifecycleError
		if !errors.As(err, &lerr) {
			t.Fatalf("k=%d: error is %T, want *LifecycleError: %v", k, err, err)
		}
		if !errors.Is(err, errBoom) {
			t.Errorf("k=%d: error chain does not reach the injected failure: %v", k, err)
		}
		step := res.Schedule.InitSteps[k]
		if lerr.Op != "init" || lerr.Unit != step.Instance || lerr.Func != wantFuncs[k] {
			t.Errorf("k=%d: LifecycleError = op %q unit %q func %q, want init/%q/%q",
				k, lerr.Op, lerr.Unit, lerr.Func, step.Instance, wantFuncs[k])
		}
		if !lerr.RolledBack {
			t.Errorf("k=%d: rollback not reported", k)
		}
		if len(lerr.RollbackErrs) != 0 {
			t.Errorf("k=%d: unexpected rollback failures: %v", k, lerr.RollbackErrs)
		}
		if !reflect.DeepEqual(*events, wantEvents[k]) {
			t.Errorf("k=%d: probe events %v, want %v", k, *events, wantEvents[k])
		}
		if !reflect.DeepEqual(m.Mem, pristine.Mem) {
			t.Errorf("k=%d: machine memory differs from pre-init state after rollback", k)
		}

		// Satellite regression: retry after a failed init is safe and
		// re-runs the full schedule from the clean state.
		in.Clear()
		*events = nil
		if err := res.RunInit(m); err != nil {
			t.Fatalf("k=%d: retry RunInit: %v", k, err)
		}
		if !reflect.DeepEqual(*events, []int64{1, 2, 3}) {
			t.Errorf("k=%d: retry probe events %v, want [1 2 3]", k, *events)
		}
		for i, bundle := range []string{"a", "b", "c"} {
			get, err := res.Export(bundle, "get")
			if err != nil {
				t.Fatal(err)
			}
			v, err := m.Run(get)
			if err != nil {
				t.Fatalf("k=%d: %s.get after retry: %v", k, bundle, err)
			}
			if want := int64(10 * (i + 1)); v != want {
				t.Errorf("k=%d: %s.get = %d after retry, want %d", k, bundle, v, want)
			}
		}
	}
}

// TestRollbackCollectsFinalizerFailures makes a finalizer fail during
// the rollback itself: the failure must be collected in RollbackErrs
// (naming its own unit instance), not mask the original error, and the
// machine must still be restored.
func TestRollbackCollectsFinalizerFailures(t *testing.T) {
	res := buildChain(t)
	finGlobal := ""
	finUnit := ""
	for _, fs := range res.Schedule.FinSteps {
		if fs.Func == "b_fini" {
			finGlobal, finUnit = fs.Global, fs.Instance
		}
	}
	if finGlobal == "" {
		t.Fatalf("schedule has no b_fini step: %+v", res.Schedule.FinSteps)
	}

	m, events := probeMachine(res)
	pristine := res.NewMachine()
	in := faultinject.Attach(m)
	in.FailNthRun(2, errBoom) // c_init fails...
	errFin := errors.New("finalizer exploded")
	in.FailEntry(finGlobal, errFin) // ...and b_fini fails while unwinding

	err := res.RunInit(m)
	var lerr *LifecycleError
	if !errors.As(err, &lerr) {
		t.Fatalf("error is %T, want *LifecycleError: %v", err, err)
	}
	if !errors.Is(err, errBoom) {
		t.Errorf("original init failure was masked: %v", err)
	}
	if len(lerr.RollbackErrs) != 1 {
		t.Fatalf("RollbackErrs = %v, want exactly the b_fini failure", lerr.RollbackErrs)
	}
	var ferr *LifecycleError
	if !errors.As(lerr.RollbackErrs[0], &ferr) {
		t.Fatalf("rollback error is %T, want *LifecycleError", lerr.RollbackErrs[0])
	}
	if ferr.Op != "fini" || ferr.Func != "b_fini" || ferr.Unit != finUnit || !errors.Is(ferr, errFin) {
		t.Errorf("rollback failure = op %q unit %q func %q (%v), want fini/%s/b_fini wrapping the injected error",
			ferr.Op, ferr.Unit, ferr.Func, ferr.Err, finUnit)
	}
	// a_fini still ran (b_fini's failure does not stop the unwind), and
	// the machine is restored regardless.
	if !reflect.DeepEqual(*events, []int64{1, 2, -1}) {
		t.Errorf("probe events %v, want [1 2 -1]", *events)
	}
	if !reflect.DeepEqual(m.Mem, pristine.Mem) {
		t.Error("machine memory differs from pre-init state after rollback with finalizer failure")
	}
}

// TestBuiltinFaultInjection injects a failure into a device builtin
// that initializers depend on — the B component's init is the first to
// hit the dead device, and the rollback must survive the same dead
// device in A's finalizer (collected, not masked).
func TestBuiltinFaultInjection(t *testing.T) {
	res := buildChain(t)
	m, _ := probeMachine(res)
	pristine := res.NewMachine()
	in := faultinject.Attach(m)
	if err := in.FailBuiltinAfter("__probe", 1, errBoom); err != nil {
		t.Fatal(err)
	}

	err := res.RunInit(m)
	var lerr *LifecycleError
	if !errors.As(err, &lerr) {
		t.Fatalf("error is %T, want *LifecycleError: %v", err, err)
	}
	if lerr.Func != "b_init" {
		t.Errorf("failing step = %q, want b_init (first init past the builtin budget)", lerr.Func)
	}
	if len(lerr.RollbackErrs) != 1 {
		t.Errorf("RollbackErrs = %v, want the a_fini failure against the dead builtin", lerr.RollbackErrs)
	}
	if !reflect.DeepEqual(m.Mem, pristine.Mem) {
		t.Error("machine memory not restored after builtin-failure rollback")
	}

	// Clear restores the real builtin; the retry initializes cleanly.
	in.Clear()
	if err := res.RunInit(m); err != nil {
		t.Fatalf("retry after builtin fault: %v", err)
	}
}

// TestDynamicInitFailureLeavesZeroResidue loads a module whose
// initializer traps: the machine must be byte-identical to its pre-load
// state — no module record, no symbols, no appended memory — and a
// subsequent good load of the same unit must work.
func TestDynamicInitFailureLeavesZeroResidue(t *testing.T) {
	res := buildChain(t)
	m, _ := probeMachine(res)
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	memBefore := len(m.Mem)

	badUnits := `
bundletype Probe = { probe_get }
unit DBad = {
  exports [ p : Probe ];
  initializer p_init for p;
  files { "dbad.c" };
}
`
	badSources := link.Sources{
		"dbad.c": `
extern int __boom(void);
static int state;
void p_init(void) { state = __boom(); }
int probe_get(void) { return state; }
`,
	}
	_, err := res.LoadDynamic(m, DynamicUnit{
		Unit:      "DBad",
		UnitFiles: map[string]string{"dbad.unit": badUnits},
		Sources:   badSources,
		Check:     true,
	})
	var lerr *LifecycleError
	if !errors.As(err, &lerr) {
		t.Fatalf("error is %T, want *LifecycleError: %v", err, err)
	}
	if lerr.Op != "dynamic-init" || lerr.Func != "p_init" || !lerr.RolledBack {
		t.Errorf("LifecycleError = op %q func %q rolledBack %v, want dynamic-init/p_init/true",
			lerr.Op, lerr.Func, lerr.RolledBack)
	}
	if !strings.Contains(lerr.Unit, "DBad") {
		t.Errorf("LifecycleError.Unit = %q does not name the dynamic unit", lerr.Unit)
	}
	var trap *machine.Trap
	if !errors.As(err, &trap) {
		t.Fatalf("underlying error is not a machine trap: %v", err)
	}
	if trap.Kind != machine.TrapUndefinedCall || !strings.Contains(trap.Unit, "DBad") {
		t.Errorf("trap = kind %v unit %q, want TrapUndefinedCall attributed to the DBad instance", trap.Kind, trap.Unit)
	}

	// Zero residue: no memory growth, no module record, no symbols.
	if len(m.Mem) != memBefore {
		t.Errorf("memory grew from %d to %d words across a rejected load", memBefore, len(m.Mem))
	}
	if mods := m.DynModules(); len(mods) != 0 {
		t.Errorf("live modules after rejected load: %v", mods)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
	cGet, _ := res.Export("c", "get")
	if v, err := m.Run(cGet); err != nil || v != 30 {
		t.Errorf("base program damaged by rejected load: c.get = %d, %v", v, err)
	}

	// A well-behaved module still loads after the rejected one.
	goodUnits := `
bundletype Probe = { probe_get }
unit DGood = {
  imports [ c : Svc ];
  exports [ p : Probe ];
  depends { p needs c; };
  files { "dgood.c" };
  rename { c.get to c_get; };
}
`
	goodSources := link.Sources{
		"dgood.c": `
int c_get(void);
int probe_get(void) { return c_get() + 1; }
`,
	}
	lu, err := res.LoadDynamic(m, DynamicUnit{
		Unit:      "DGood",
		UnitFiles: map[string]string{"dgood.unit": goodUnits},
		Sources:   goodSources,
		Wiring:    map[string]string{"c": "c"},
		Check:     true,
	})
	if err != nil {
		t.Fatalf("LoadDynamic after rejected load: %v", err)
	}
	pg, _ := lu.ExportSymbol("p", "probe_get")
	if v, err := m.Run(pg); err != nil || v != 31 {
		t.Errorf("probe_get = %d, %v; want 31", v, err)
	}
}

// TestUnloadDynamicModule unloads a loaded module and asserts its
// symbols, memory, and module record are fully reclaimed — and that the
// same unit can be loaded again afterwards.
func TestUnloadDynamicModule(t *testing.T) {
	res := buildChain(t)
	m, _ := probeMachine(res)
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	memBefore := len(m.Mem)

	monUnits := `
bundletype Mon = { sample }
unit MonU = {
  imports [ c : Svc ];
  exports [ mon : Mon ];
  initializer mon_init for mon;
  finalizer mon_fini for mon;
  depends { mon needs c; mon_init needs c; };
  files { "mon.c" };
  rename { c.get to c_get; };
}
`
	monSources := link.Sources{
		"mon.c": `
extern int __probe(int id);
int c_get(void);
static int baseline;
void mon_init(void) { __probe(7); baseline = c_get(); }
void mon_fini(void) { __probe(-7); baseline = 0; }
int sample(void) { return c_get() - baseline; }
`,
	}
	load := func() *LoadedUnit {
		t.Helper()
		lu, err := res.LoadDynamic(m, DynamicUnit{
			Unit:      "MonU",
			UnitFiles: map[string]string{"mon.unit": monUnits},
			Sources:   monSources,
			Wiring:    map[string]string{"c": "c"},
			Check:     true,
		})
		if err != nil {
			t.Fatalf("LoadDynamic: %v", err)
		}
		return lu
	}
	lu := load()
	sample, err := lu.ExportSymbol("mon", "sample")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := m.Run(sample); err != nil || v != 0 {
		t.Fatalf("sample = %d, %v; want 0", v, err)
	}

	if err := lu.Unload(m); err != nil {
		t.Fatalf("Unload: %v", err)
	}
	if mods := m.DynModules(); len(mods) != 0 {
		t.Errorf("live modules after unload: %v", mods)
	}
	if len(m.Mem) != memBefore {
		t.Errorf("memory not reclaimed: %d words, want %d", len(m.Mem), memBefore)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
	if _, err := m.Run(sample); err == nil {
		t.Error("unloaded module's export still runnable")
	}
	// Unloading twice reports a structured refusal, not corruption.
	if err := lu.Unload(m); err == nil || !strings.Contains(err.Error(), "not loaded") {
		t.Errorf("double unload error = %v, want 'not loaded'", err)
	}

	// The same unit loads again into the clean machine.
	lu2 := load()
	sample2, _ := lu2.ExportSymbol("mon", "sample")
	if v, err := m.Run(sample2); err != nil || v != 0 {
		t.Errorf("sample after reload = %d, %v; want 0", v, err)
	}
}

// TestUnloadRefusedWhileImported wires a second module to the first
// one's exports: unloading the provider must be refused with an error
// naming the live importer, leaving both modules intact, until the
// importer is unloaded first.
func TestUnloadRefusedWhileImported(t *testing.T) {
	res := buildChain(t)
	m, _ := probeMachine(res)
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	monUnits := `
bundletype Mon = { sample }
unit MonU = {
  imports [ c : Svc ];
  exports [ mon : Mon ];
  depends { mon needs c; };
  files { "mon.c" };
  rename { c.get to c_get; };
}
`
	monSources := link.Sources{
		"mon.c": `
int c_get(void);
int sample(void) { return c_get(); }
`,
	}
	alarmUnits := `
bundletype Mon = { sample }
bundletype Alarm = { alarm_over }
unit AlarmU = {
  imports [ mon : Mon ];
  exports [ alarm : Alarm ];
  depends { alarm needs mon; };
  files { "alarm.c" };
}
`
	alarmSources := link.Sources{
		"alarm.c": `
int sample(void);
int alarm_over(int limit) { return sample() > limit; }
`,
	}
	mon, err := res.LoadDynamic(m, DynamicUnit{
		Unit:      "MonU",
		UnitFiles: map[string]string{"mon.unit": monUnits},
		Sources:   monSources,
		Wiring:    map[string]string{"c": "c"},
		Check:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	alarm, err := res.LoadDynamic(m, DynamicUnit{
		Unit:      "AlarmU",
		UnitFiles: map[string]string{"alarm.unit": alarmUnits},
		Sources:   alarmSources,
		Wiring:    map[string]string{"mon": "mon"},
		Check:     true,
	})
	if err != nil {
		t.Fatal(err)
	}

	err = mon.Unload(m)
	if err == nil {
		t.Fatal("unloading an imported-from module was allowed")
	}
	if !strings.Contains(err.Error(), "AlarmU") || !strings.Contains(err.Error(), "unload the importer first") {
		t.Errorf("refusal %q does not name the live importer", err)
	}
	// Both modules still work after the refusal.
	over, _ := alarm.ExportSymbol("alarm", "alarm_over")
	if v, err := m.Run(over, 5); err != nil || v != 1 {
		t.Errorf("alarm_over(5) = %d, %v after refused unload; want 1", v, err)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}

	// Unload in dependency order succeeds.
	if err := alarm.Unload(m); err != nil {
		t.Fatalf("unload importer: %v", err)
	}
	if err := mon.Unload(m); err != nil {
		t.Fatalf("unload provider after importer gone: %v", err)
	}
	if mods := m.DynModules(); len(mods) != 0 {
		t.Errorf("live modules after ordered unload: %v", mods)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
}

// TestUnloadFinalizerFailureRollsBack: a module whose finalizer traps
// must survive its own failed unload — the machine is restored and the
// module stays fully loaded and functional.
func TestUnloadFinalizerFailureRollsBack(t *testing.T) {
	res := buildChain(t)
	m, _ := probeMachine(res)
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	units := `
bundletype Mon = { sample }
unit Sticky = {
  imports [ c : Svc ];
  exports [ mon : Mon ];
  finalizer mon_fini for mon;
  depends { mon needs c; };
  files { "sticky.c" };
  rename { c.get to c_get; };
}
`
	sources := link.Sources{
		"sticky.c": `
extern int __boom(void);
int c_get(void);
static int sink;
void mon_fini(void) { sink = __boom(); }
int sample(void) { return c_get(); }
`,
	}
	lu, err := res.LoadDynamic(m, DynamicUnit{
		Unit:      "Sticky",
		UnitFiles: map[string]string{"sticky.unit": units},
		Sources:   sources,
		Wiring:    map[string]string{"c": "c"},
		Check:     true,
	})
	if err != nil {
		t.Fatal(err)
	}

	err = lu.Unload(m)
	var lerr *LifecycleError
	if !errors.As(err, &lerr) {
		t.Fatalf("error is %T, want *LifecycleError: %v", err, err)
	}
	if lerr.Op != "unload" || lerr.Func != "mon_fini" || !lerr.RolledBack {
		t.Errorf("LifecycleError = op %q func %q rolledBack %v, want unload/mon_fini/true",
			lerr.Op, lerr.Func, lerr.RolledBack)
	}
	// The module is still loaded and functional.
	if mods := m.DynModules(); len(mods) != 1 {
		t.Errorf("live modules = %v, want the sticky module", mods)
	}
	sample, _ := lu.ExportSymbol("mon", "sample")
	if v, err := m.Run(sample); err != nil || v != 30 {
		t.Errorf("sample = %d, %v after failed unload; want 30", v, err)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
}

// TestFuelBudgetStopsRunawayComponent: an infinite loop in a component
// becomes a TrapBudgetExhausted attributed to the owning unit instance
// instead of a hang, and the machine stays usable afterwards (the fuel
// budget re-arms per run).
func TestFuelBudgetStopsRunawayComponent(t *testing.T) {
	units := `
bundletype Main = { run }
unit Spinner = {
  exports [ main : Main ];
  files { "spin.c" };
  rename { main.run to spin_run; };
}
unit SpinTop = {
  exports [ main : Main ];
  link { [main] <- Spinner <- []; };
}
`
	sources := link.Sources{
		"spin.c": `
int spin_run(int n) {
    int i;
    i = 0;
    while (1) { i = i + 1; }
    return i;
}
`,
	}
	res, err := Build(Options{
		Top:       "SpinTop",
		UnitFiles: map[string]string{"spin.unit": units},
		Sources:   sources,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.NewMachine()
	m.Fuel = 10000
	global, err := res.Export("main", "run")
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(global, 0)
	var trap *machine.Trap
	if !errors.As(err, &trap) {
		t.Fatalf("runaway run returned %T, want *machine.Trap: %v", err, err)
	}
	if trap.Kind != machine.TrapBudgetExhausted {
		t.Errorf("trap kind = %v, want TrapBudgetExhausted", trap.Kind)
	}
	if !strings.Contains(trap.Unit, "Spinner") {
		t.Errorf("trap unit = %q, want attribution to the Spinner instance", trap.Unit)
	}
	if !strings.Contains(err.Error(), "fuel budget") || !strings.Contains(err.Error(), "unit ") {
		t.Errorf("trap message %q lacks fuel/unit attribution", err)
	}
	// Executed stopped near the budget: the loop did not run away.
	if m.Executed > 10000+10 {
		t.Errorf("executed %d instructions, budget was 10000", m.Executed)
	}
	// The budget re-arms: a cheap run on the same machine still works.
	m.Fuel = 1 << 20
	if _, err := m.Run(global, 0); err == nil {
		t.Error("second runaway run unexpectedly succeeded")
	} else if !errors.As(err, &trap) || trap.Kind != machine.TrapBudgetExhausted {
		t.Errorf("second run error = %v, want budget trap again (budget re-armed)", err)
	}
}

// TestCorruptCacheEntriesAreMisses corrupts and truncates on-disk cache
// entries between builds: the damaged entries must read as misses (not
// poisoned objects), the rebuild must succeed, and the rebuilt image
// must be identical to the cold one.
func TestCorruptCacheEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	buildWith := func() *Result {
		t.Helper()
		cache, err := OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Build(Options{
			Top:       "Chain",
			UnitFiles: map[string]string{"chain.unit": chainUnits},
			Sources:   chainSources,
			Check:     true,
			Cache:     cache,
		})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return res
	}
	cold := buildWith()
	entries, err := faultinject.CacheEntries(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no cache entries written")
	}
	// Damage every entry: alternate bit-flips and truncation.
	for i, path := range entries {
		if i%2 == 0 {
			if err := faultinject.CorruptEntry(path, int64(40+i)); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := faultinject.TruncateEntry(path, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm := buildWith()
	if warm.Timings.CacheHits != 0 {
		t.Errorf("damaged cache served %d hits, want 0 (all entries must read as misses)",
			warm.Timings.CacheHits)
	}
	if !reflect.DeepEqual(warm.Image.FuncAddr, cold.Image.FuncAddr) ||
		warm.Image.TextSize != cold.Image.TextSize {
		t.Error("rebuild after cache damage differs from the cold build")
	}
	// The rebuild re-wrote good entries: a third build hits cleanly.
	third := buildWith()
	if third.Timings.CacheHits != third.Timings.CompileJobs {
		t.Errorf("self-healed cache hit %d of %d jobs", third.Timings.CacheHits, third.Timings.CompileJobs)
	}
}
