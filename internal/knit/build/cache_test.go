package build

import (
	"sync"
	"testing"

	"knit/internal/asm"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

// TestCacheWarmBuildHitsEverything: a second build of an unchanged
// program must serve every translation unit from the cache and still
// produce a byte-identical object.
func TestCacheWarmBuildHitsEverything(t *testing.T) {
	cache := NewCache()
	opts := logServeOptions()
	opts.Cache = cache

	cold, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Timings.CacheHits != 0 {
		t.Errorf("cold build reported %d cache hits, want 0", cold.Timings.CacheHits)
	}
	if cold.Timings.CompileJobs == 0 {
		t.Fatal("cold build reported no compile jobs")
	}

	warm, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Timings.CacheHits != warm.Timings.CompileJobs {
		t.Errorf("warm build hit %d of %d jobs, want all",
			warm.Timings.CacheHits, warm.Timings.CompileJobs)
	}
	if got, want := asm.Format(warm.Object), asm.Format(cold.Object); got != want {
		t.Error("warm object differs from cold object")
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Entries == 0 {
		t.Errorf("cache stats %+v, want hits and entries", st)
	}
}

// TestCacheInvalidationOnSourceChange: editing one source file must
// recompile exactly that translation unit on the next build.
func TestCacheInvalidationOnSourceChange(t *testing.T) {
	cache := NewCache()
	opts := logServeOptions()
	opts.Cache = cache
	if _, err := Build(opts); err != nil {
		t.Fatal(err)
	}

	edited := map[string]string{}
	for k, v := range logServeSources {
		edited[k] = v
	}
	edited["serve_cgi.c"] = `int serve_cgi(int s, char *path) { return 299; }`
	opts.Sources = edited
	res, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Timings.CacheHits, res.Timings.CompileJobs-1; got != want {
		t.Errorf("after editing one file: %d hits of %d jobs, want %d",
			got, res.Timings.CompileJobs, want)
	}
	m := res.NewMachine()
	machine.InstallConsole(m)
	v, err := res.Run(m, "main", "run", 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 299 {
		t.Errorf("CGI request after edit returned %d, want 299", v)
	}
}

// TestCacheInvalidationOnOptions: the same sources built with different
// optimizer settings must not share cache entries.
func TestCacheInvalidationOnOptions(t *testing.T) {
	cache := NewCache()
	opts := logServeOptions()
	opts.Cache = cache
	if _, err := Build(opts); err != nil {
		t.Fatal(err)
	}
	opts.Optimize = true
	res, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.CacheHits != 0 {
		t.Errorf("optimized rebuild hit %d cached unoptimized objects, want 0",
			res.Timings.CacheHits)
	}
}

// TestCachePartialReuseAcrossConfigurations: the key covers the
// resolved wiring, not just the file text. Growing a configuration
// from one wrapper to two reuses the unchanged prefix (the server and
// the inner wrapper keep their renamed sources) and recompiles only
// the genuinely new instance.
func TestCachePartialReuseAcrossConfigurations(t *testing.T) {
	units := func(top string) map[string]string {
		return map[string]string{"t.unit": `
bundletype Serve = { serve_web }
unit Server = { exports [ s : Serve ]; files { "server.c" }; }
unit Wrap = {
  imports [ inner : Serve ];
  exports [ outer : Serve ];
  files { "wrap.c" };
  rename { inner.serve_web to serve_inner; outer.serve_web to serve_outer; };
}
unit Once = {
  exports [ o : Serve ];
  link { [s] <- Server <- []; [o] <- Wrap <- [s]; };
}
unit Twice = {
  exports [ o : Serve ];
  link { [s] <- Server <- []; [w] <- Wrap <- [s]; [o] <- Wrap <- [w]; };
}
unit ` + top + `Top = { exports [ o : Serve ]; link { [o] <- ` + top + ` <- []; }; }
`}
	}
	sources := link.Sources{
		"server.c": `int serve_web(int s) { return 200; }`,
		"wrap.c": `
int serve_inner(int s);
int serve_outer(int s) { return serve_inner(s) + 1; }
`,
	}
	cache := NewCache()
	a, err := Build(Options{Top: "OnceTop", UnitFiles: units("Once"),
		Sources: sources, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if a.Timings.CacheHits != 0 {
		t.Fatalf("first build hit %d, want 0", a.Timings.CacheHits)
	}
	b, err := Build(Options{Top: "TwiceTop", UnitFiles: units("Twice"),
		Sources: sources, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	// Twice instantiates Server + two Wraps. The server and the inner
	// wrapper elaborate to the same renamed sources as in the Once
	// build, so they hit; the outer wrapper is wired differently
	// (imports from the inner wrapper, new instance suffix) and must
	// recompile.
	if b.Timings.CompileJobs != 3 || b.Timings.CacheHits != 2 {
		t.Errorf("grown configuration: %d/%d hits, want 2/3 (reuse prefix, recompile the new instance)",
			b.Timings.CacheHits, b.Timings.CompileJobs)
	}
	for res, want := range map[*Result]int64{a: 201, b: 202} {
		m := res.NewMachine()
		v, err := res.Run(m, "o", "serve_web", 1)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Errorf("serve_web = %d, want %d", v, want)
		}
	}
}

// TestCacheFlattenedRegion: with flattening on, the whole region is one
// cache entry; a warm build skips the merge and the compile.
func TestCacheFlattenedRegion(t *testing.T) {
	cache := NewCache()
	opts := logServeOptions()
	opts.Cache = cache
	opts.Optimize = true
	opts.Flatten = true

	cold, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Timings.CompileJobs != 1 {
		t.Fatalf("flattened cold build ran %d jobs, want 1 (the region)", cold.Timings.CompileJobs)
	}
	warm, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Timings.CacheHits != 1 || warm.Timings.CompileJobs != 1 {
		t.Errorf("flattened warm build: %d/%d hits, want 1/1",
			warm.Timings.CacheHits, warm.Timings.CompileJobs)
	}
	if got, want := asm.Format(warm.Object), asm.Format(cold.Object); got != want {
		t.Error("warm flattened object differs from cold")
	}
}

// TestCacheDiskRoundTrip: a disk-backed cache persists entries across
// Cache instances (the cross-process -cache path).
func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := logServeOptions()
	opts.Cache = c1
	cold, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(dir) // fresh instance, same directory
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = c2
	warm, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Timings.CacheHits != warm.Timings.CompileJobs {
		t.Errorf("disk-backed warm build hit %d of %d jobs, want all",
			warm.Timings.CacheHits, warm.Timings.CompileJobs)
	}
	if got, want := asm.Format(warm.Object), asm.Format(cold.Object); got != want {
		t.Error("object rebuilt from disk cache differs")
	}
	m := warm.NewMachine()
	machine.InstallConsole(m)
	if _, err := warm.Run(m, "main", "run", 0); err != nil {
		t.Fatalf("running disk-cached build: %v", err)
	}
}

// TestParallelCompileDeterminism: -j1 and -jN builds must produce
// byte-identical objects and identical schedules.
func TestParallelCompileDeterminism(t *testing.T) {
	serialOpts := logServeOptions()
	serialOpts.Parallelism = 1
	serial, err := Build(serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 8} {
		opts := logServeOptions()
		opts.Parallelism = par
		res, err := Build(opts)
		if err != nil {
			t.Fatalf("-j %d: %v", par, err)
		}
		if got, want := asm.Format(res.Object), asm.Format(serial.Object); got != want {
			t.Errorf("-j %d object differs from -j 1", par)
		}
	}
}

// TestParallelCompileError: a compile error under parallelism must be
// reported deterministically (lowest job first) and fail the build.
func TestParallelCompileError(t *testing.T) {
	opts := logServeOptions()
	broken := map[string]string{}
	for k, v := range logServeSources {
		broken[k] = v
	}
	broken["log.c"] = `int serve_logged(int s, char *path) { return undefined_helper(); }`
	broken["web.c"] = `int serve_web(int s, char *path) { return also_missing(); }`
	opts.Sources = broken
	opts.Parallelism = 8
	want := ""
	for i := 0; i < 5; i++ {
		_, err := Build(opts)
		if err == nil {
			t.Fatal("build of broken sources succeeded")
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("nondeterministic error under -j 8:\n  %s\nvs\n  %s", want, err.Error())
		}
	}
}

// TestCacheConcurrentWriters races several independent Cache instances
// (as separate knit processes would be) over one backing directory,
// all building the same program at once. Entry writes go through a
// temp-file rename, so whatever interleaving happens, a reader must
// only ever see absent or complete entries — and the final warm build
// must be served entirely from disk, identical to a cold build.
func TestCacheConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	ref, err := Build(logServeOptions())
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	objs := make([]string, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := OpenCache(dir) // one instance per "process"
			if err != nil {
				errs[w] = err
				return
			}
			opts := logServeOptions()
			opts.Cache = c
			res, err := Build(opts)
			if err != nil {
				errs[w] = err
				return
			}
			objs[w] = asm.Format(res.Object)
		}(w)
	}
	wg.Wait()
	want := asm.Format(ref.Object)
	for w := 0; w < writers; w++ {
		if errs[w] != nil {
			t.Fatalf("writer %d: %v", w, errs[w])
		}
		if objs[w] != want {
			t.Errorf("writer %d built a different object", w)
		}
	}

	// A fresh cache over the racily written directory serves everything.
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := logServeOptions()
	opts.Cache = c
	warm, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Timings.CacheHits != warm.Timings.CompileJobs {
		t.Errorf("after concurrent writers, warm build hit %d of %d jobs",
			warm.Timings.CacheHits, warm.Timings.CompileJobs)
	}
	if asm.Format(warm.Object) != want {
		t.Error("object rebuilt from racily written cache differs")
	}
}
