package build

import (
	"strings"
	"testing"

	"knit/internal/machine"
)

// logServeUnits is the paper's running example (Figures 2-6): a web
// server wired to file/CGI handlers, wrapped by a logging unit, composed
// in the compound unit LogServe.
const logServeUnits = `
bundletype Serve = { serve_web }
bundletype Stdio = { fopen, fprintf }
bundletype Main  = { run }

unit ServeFile = {
  exports [ serveFile : Serve ];
  files { "serve_file.c" };
  rename { serveFile.serve_web to serve_file; };
}
unit ServeCGI = {
  exports [ serveCGI : Serve ];
  files { "serve_cgi.c" };
  rename { serveCGI.serve_web to serve_cgi; };
}
unit StdioUnit = {
  exports [ stdio : Stdio ];
  initializer stdio_init for stdio;
  files { "stdio.c" };
}
unit Web = {
  imports [ serveFile : Serve, serveCGI : Serve ];
  exports [ serveWeb : Serve ];
  depends { serveWeb needs (serveFile + serveCGI); };
  files { "web.c" };
  rename {
    serveFile.serve_web to serve_file;
    serveCGI.serve_web to serve_cgi;
  };
}
unit Log = {
  imports [ serveWeb : Serve, stdio : Stdio ];
  exports [ serveLog : Serve ];
  initializer open_log for serveLog;
  finalizer close_log for serveLog;
  depends {
    (open_log + close_log) needs stdio;
    serveLog needs (serveWeb + stdio);
  };
  files { "log.c" };
  rename {
    serveWeb.serve_web to serve_unlogged;
    serveLog.serve_web to serve_logged;
  };
}
unit Driver = {
  imports [ serve : Serve ];
  exports [ main : Main ];
  depends { main needs serve; };
  files { "driver.c" };
}
unit LogServe = {
  exports [ main : Main ];
  link {
    [serveFile] <- ServeFile <- [];
    [serveCGI] <- ServeCGI <- [];
    [stdio] <- StdioUnit <- [];
    [serveWeb] <- Web <- [serveFile, serveCGI];
    [serveLog] <- Log <- [serveWeb, stdio];
    [main] <- Driver <- [serveLog];
  };
}
`

var logServeSources = map[string]string{
	"serve_file.c": `
extern int __console_out(int c);
int serve_file(int s, char *path) {
    int i = 0;
    while (path[i] != 0) { __console_out(path[i]); i++; }
    return 200;
}
`,
	"serve_cgi.c": `
int serve_cgi(int s, char *path) { return 201; }
`,
	"stdio.c": `
extern int __console_out(int c);
static int ready = 0;
void stdio_init(void) { ready = 1; }
int fopen(char *name, char *mode) { return ready ? 3 : -1; }
int fprintf(int f, char *s) {
    int i = 0;
    while (s[i] != 0) { __console_out(s[i]); i++; }
    return i;
}
`,
	"web.c": `
int serve_file(int s, char *path);
int serve_cgi(int s, char *path);
static int strncmp_(char *a, char *b, int n) {
    for (int i = 0; i < n; i++) {
        if (a[i] != b[i]) { return a[i] - b[i]; }
        if (a[i] == 0) { return 0; }
    }
    return 0;
}
int serve_web(int s, char *path) {
    if (!strncmp_(path, "/cgi-bin/", 9)) {
        return serve_cgi(s, path + 9);
    }
    return serve_file(s, path);
}
`,
	"log.c": `
int serve_unlogged(int s, char *path);
int fopen(char *name, char *mode);
int fprintf(int f, char *s);
static int log_;
void open_log(void) { log_ = fopen("ServerLog", "a"); }
void close_log(void) { fprintf(log_, "<closed>"); }
int serve_logged(int s, char *path) {
    int r;
    r = serve_unlogged(s, path);
    fprintf(log_, " log:");
    fprintf(log_, path);
    return r;
}
`,
	"driver.c": `
int serve_web(int s, char *path);
int run(int which) {
    if (which) { return serve_web(1, "/cgi-bin/form"); }
    return serve_web(1, "/index.html");
}
`,
}

func logServeOptions() Options {
	return Options{
		Top:       "LogServe",
		UnitFiles: map[string]string{"web.unit": logServeUnits},
		Sources:   logServeSources,
		Check:     true,
	}
}

// indexWithPrefix finds the schedule entry whose global name starts with
// the given initializer name (instance renaming appends __k<ID>).
func indexWithPrefix(names []string, prefix string) int {
	for i, n := range names {
		if strings.HasPrefix(n, prefix) {
			return i
		}
	}
	return -1
}

// TestPaperExampleLogServe drives the Figs. 2-6 compound through the
// whole pipeline: open_log must be scheduled after its stdio dependency
// and before serveLog runs, and the close_log finalizer must run after
// the entry returns.
func TestPaperExampleLogServe(t *testing.T) {
	res, err := Build(logServeOptions())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if res.ConstraintReport == nil {
		t.Error("Check was on but ConstraintReport is nil")
	}
	if len(res.Program.Instances) != 6 {
		t.Errorf("got %d instances, want 6", len(res.Program.Instances))
	}

	si := indexWithPrefix(res.Schedule.Inits, "stdio_init")
	oi := indexWithPrefix(res.Schedule.Inits, "open_log")
	if si < 0 || oi < 0 {
		t.Fatalf("schedule %v missing stdio_init or open_log", res.Schedule.Inits)
	}
	if si > oi {
		t.Errorf("stdio_init scheduled at %d after open_log at %d: %v", si, oi, res.Schedule.Inits)
	}
	if indexWithPrefix(res.Schedule.Fins, "close_log") < 0 {
		t.Errorf("finalizers %v missing close_log", res.Schedule.Fins)
	}

	m := res.NewMachine()
	con := machine.InstallConsole(m)
	status, err := res.Run(m, "main", "run", 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if status != 200 {
		t.Errorf("run(0) = %d, want 200", status)
	}
	out := con.String()
	// open_log ran before serve_logged: fopen succeeded (stdio_init first),
	// so the log lines made it to the console.
	if !strings.Contains(out, "/index.html log:/index.html") {
		t.Errorf("console %q missing request + log line", out)
	}
	// close_log runs after the entry returns, so the console ends with it.
	if !strings.HasSuffix(out, "<closed>") {
		t.Errorf("console %q does not end with the finalizer output", out)
	}
}

// TestRunLifecyclePerMachine checks that initializers and finalizers run
// exactly once per machine, even across repeated Run calls, and that a
// fresh machine gets a fresh lifecycle.
func TestRunLifecyclePerMachine(t *testing.T) {
	res, err := Build(logServeOptions())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := res.NewMachine()
	con := machine.InstallConsole(m)
	if _, err := res.Run(m, "main", "run", 0); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if _, err := res.Run(m, "main", "run", 1); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if got := strings.Count(con.String(), "<closed>"); got != 1 {
		t.Errorf("finalizer ran %d times on one machine, want 1", got)
	}
	m2 := res.NewMachine()
	con2 := machine.InstallConsole(m2)
	if _, err := res.Run(m2, "main", "run", 0); err != nil {
		t.Fatalf("Run on fresh machine: %v", err)
	}
	if got := strings.Count(con2.String(), "<closed>"); got != 1 {
		t.Errorf("finalizer ran %d times on fresh machine, want 1", got)
	}
}

// TestFlattenEquivalence checks that a flattened build produces the same
// observable behavior as the modular one.
func TestFlattenEquivalence(t *testing.T) {
	run := func(opts Options) (int64, string) {
		t.Helper()
		res, err := Build(opts)
		if err != nil {
			t.Fatalf("Build(flatten=%v): %v", opts.Flatten, err)
		}
		m := res.NewMachine()
		con := machine.InstallConsole(m)
		v, err := res.Run(m, "main", "run", 1)
		if err != nil {
			t.Fatalf("Run(flatten=%v): %v", opts.Flatten, err)
		}
		return v, con.String()
	}
	opts := logServeOptions()
	opts.Optimize = true
	v1, out1 := run(opts)
	opts.Flatten = true
	v2, out2 := run(opts)
	if v1 != v2 || out1 != out2 {
		t.Errorf("modular (%d, %q) != flattened (%d, %q)", v1, out1, v2, out2)
	}
	if v1 != 201 {
		t.Errorf("run(1) = %d, want 201 (CGI handler)", v1)
	}
}

// TestTimingsRecorded checks the per-phase observability: active phases
// record time, inactive ones stay zero, and the aggregates add up.
func TestTimingsRecorded(t *testing.T) {
	res, err := Build(logServeOptions())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	tm := res.Timings
	if tm.Parse <= 0 || tm.Elaborate <= 0 || tm.Check <= 0 || tm.Compile <= 0 || tm.Load <= 0 {
		t.Errorf("expected nonzero phase timings, got %+v", tm)
	}
	if tm.Flatten != 0 {
		t.Errorf("Flatten was off but recorded %v", tm.Flatten)
	}
	if tm.KnitProper()+tm.CompilerAndLoader() != tm.Total() {
		t.Errorf("KnitProper %v + CompilerAndLoader %v != Total %v",
			tm.KnitProper(), tm.CompilerAndLoader(), tm.Total())
	}
	opts := logServeOptions()
	opts.Check = false
	res2, err := Build(opts)
	if err != nil {
		t.Fatalf("Build without check: %v", err)
	}
	if res2.Timings.Check != 0 {
		t.Errorf("Check was off but recorded %v", res2.Timings.Check)
	}
	if res2.ConstraintReport != nil {
		t.Error("Check was off but ConstraintReport is non-nil")
	}
	if len(tm.Phases()) != 8 {
		t.Errorf("Phases() has %d entries, want 8", len(tm.Phases()))
	}
	if s := tm.String(); !strings.Contains(s, "compile") || !strings.Contains(s, "%") {
		t.Errorf("String() = %q, want per-phase percentages", s)
	}
}

// TestSourceOf checks the flattened-source dump: all instances merge into
// one translation unit with instance-renamed definitions.
func TestSourceOf(t *testing.T) {
	res, err := Build(logServeOptions())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	src, err := SourceOf(res.Program, nil)
	if err != nil {
		t.Fatalf("SourceOf: %v", err)
	}
	for _, want := range []string{"serve_logged__k", "serve_file__k", "stdio_init__k"} {
		if !strings.Contains(src, want) {
			t.Errorf("flattened source missing %s", want)
		}
	}
}
