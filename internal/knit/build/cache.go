package build

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"knit/internal/cmini"
	"knit/internal/compile"
	"knit/internal/knit/flatten"
	"knit/internal/knit/link"
	"knit/internal/obj"
)

// Cache is a content-addressed store of compiled translation units,
// shared across builds (and across goroutines within one build). A
// unit instance's compiled object depends only on its renamed sources
// and the compiler options, so the cache key is a hash over exactly
// that: the instance-renamed source text — which already encodes the
// resolved import/export wiring via the __kN suffixes and provider
// names — plus compile.Options.Key(). Flattened regions are keyed by
// flatten.Fingerprint over the region's ordered instance sources, so a
// warm build skips both the merge and the compile.
//
// Invalidation is automatic: any change to a unit's sources, to its
// wiring (which renames identifiers), or to the optimizer settings
// changes the key, and the stale entry is simply never looked up
// again. Entries are immutable; lookups and stores deep-copy so no
// build can mutate another's objects.
type Cache struct {
	dir string // optional disk backing; "" = memory only

	mu     sync.Mutex
	mem    map[string]*obj.File
	hits   int
	misses int
}

// NewCache returns an empty in-memory cache.
func NewCache() *Cache {
	return &Cache{mem: map[string]*obj.File{}}
}

// OpenCache returns a cache backed by dir (created if needed): entries
// are written as gob-encoded object files named by their content hash,
// so the cache survives across processes — this is what cmd/knit's
// -cache flag opens. Reads fall back to disk on a memory miss;
// unreadable or corrupt entries are treated as misses.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("knit: cache: %w", err)
	}
	return &Cache{dir: dir, mem: map[string]*obj.File{}}, nil
}

// CacheStats reports cache effectiveness since the cache was created.
type CacheStats struct {
	Hits    int // lookups served from the cache
	Misses  int // lookups that had to compile
	Entries int // distinct objects currently held in memory
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.mem)}
}

// lookup returns a private copy of the object stored under key.
func (c *Cache) lookup(key string) (*obj.File, bool) {
	c.mu.Lock()
	o, ok := c.mem[key]
	if !ok && c.dir != "" {
		o = c.readDisk(key)
		if o != nil {
			c.mem[key] = o
			ok = true
		}
	}
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return o.Clone(), true
}

// store records o under key. The cache keeps its own copy.
func (c *Cache) store(key string, o *obj.File) {
	cp := o.Clone()
	c.mu.Lock()
	c.mem[key] = cp
	c.mu.Unlock()
	if c.dir != "" {
		c.writeDisk(key, cp)
	}
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".knitobj")
}

// Disk entry framing: a sha256 digest of the gob payload, then the
// payload. The digest makes every form of on-disk damage — truncation,
// bit flips, a half-written file from a crashed writer — a detectable
// integrity failure, and therefore a cache miss rather than a poisoned
// build. (gob alone would accept some corrupted inputs.)
const diskDigestLen = sha256.Size

// readDisk loads one entry from the backing directory; any failure —
// open error, short file, digest mismatch, undecodable payload — is a
// miss (the cache is best-effort and self-healing: the entry is simply
// rewritten on the next store).
func (c *Cache) readDisk(key string) *obj.File {
	data, err := os.ReadFile(c.entryPath(key))
	if err != nil || len(data) < diskDigestLen {
		return nil
	}
	payload := data[diskDigestLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[:diskDigestLen]) {
		return nil
	}
	var o obj.File
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&o); err != nil {
		return nil
	}
	return &o
}

// writeDisk persists one entry atomically (temp file + rename), so a
// concurrent reader never sees a half-written object. Entries are
// content-addressed, so two processes racing the same key write
// identical bytes: whoever renames last simply replaces the file with
// an equal one, and a lost rename (some platforms refuse to replace an
// existing file) still leaves a valid entry behind. Called with c.mu
// released; the entry is immutable once stored.
func (c *Cache) writeDisk(key string, o *obj.File) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(o); err != nil {
		return
	}
	sum := sha256.Sum256(buf.Bytes())
	tmp, err := os.CreateTemp(c.dir, "tmp-*.knitobj")
	if err != nil {
		return
	}
	if _, err := tmp.Write(sum[:]); err == nil {
		_, err = tmp.Write(buf.Bytes())
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.entryPath(key)); err != nil {
		// A concurrent writer may have won the rename; their entry has
		// the same content, so losing the race is success.
		os.Remove(tmp.Name())
	}
}

// fileCacheKey is the content hash of one translation unit: the
// compiler configuration plus the (instance-renamed) source.
func fileCacheKey(copts compile.Options, f *cmini.File) string {
	h := sha256.New()
	io.WriteString(h, "file\x00")
	io.WriteString(h, copts.Key())
	h.Write([]byte{0})
	io.WriteString(h, f.Name)
	h.Write([]byte{0})
	io.WriteString(h, cmini.Print(f))
	return hex.EncodeToString(h.Sum(nil))
}

// regionCacheKey is the content hash of a flattened region's compiled
// object: the compiler configuration plus the region fingerprint.
func regionCacheKey(copts compile.Options, region []*link.Instance) string {
	h := sha256.New()
	io.WriteString(h, "flat\x00")
	io.WriteString(h, copts.Key())
	h.Write([]byte{0})
	io.WriteString(h, flatten.Fingerprint(region))
	return hex.EncodeToString(h.Sum(nil))
}
