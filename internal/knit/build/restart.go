package build

import (
	"fmt"

	"knit/internal/knit/link"
	"knit/internal/knit/sched"
	"knit/internal/machine"
)

// This file is the build-layer half of component restart: give a unit
// instance (or a whole scope of instances) a fresh start on a live
// machine without rebuilding or rebooting anything else. The
// supervision layer (internal/knit/supervise) drives these from its
// restart policy.

// InstanceByPath finds the unit instance with the given path, searching
// the static program and the dynamic modules live on m. Returns nil
// when no such instance exists.
func (r *Result) InstanceByPath(m *machine.M, path string) *link.Instance {
	for _, inst := range r.Program.Instances {
		if inst.Path == path {
			return inst
		}
	}
	for _, inst := range r.stateOf(m).loaded {
		if inst.Path == path {
			return inst
		}
	}
	return nil
}

// RestartInstance discards one unit instance's state and
// re-initializes it: the instance's static globals are reset to their
// load-time (initializer-expression) contents, then its initializers
// re-run in schedule order. Dynamic instances retain no initial data
// image, so their restart is the initializer re-run alone.
//
// Finalizers deliberately do not run first — a restart responds to a
// fault, and a faulted component's finalizers cannot be trusted with
// its corrupted state; the state is discarded wholesale instead.
//
// The restart is transactional: a failing initializer restores the
// machine to its pre-restart state and the error reports Op "restart".
func (r *Result) RestartInstance(m *machine.M, inst *link.Instance) error {
	snap := m.Snapshot()
	m.ResetData(link.InstanceSymbols(inst))
	for _, ini := range inst.Inits {
		if ini.Finalizer {
			continue
		}
		_, err := m.Run(ini.GlobalName)
		r.event(m, inst.Path, "init")
		if err != nil {
			m.Restore(snap)
			return &LifecycleError{
				Op:         "restart",
				Unit:       inst.Path,
				Func:       ini.Func,
				Global:     ini.GlobalName,
				Err:        err,
				RolledBack: true,
			}
		}
	}
	r.event(m, inst.Path, "restart")
	return nil
}

// RestartScope restarts every unit instance inside scope (see
// sched.ScopeContains): static instances' globals are reset, then the
// scope's initializers re-run in their original schedule order, then
// any dynamic instances in scope re-run theirs in load order. The
// empty scope restarts the whole program. Like RestartInstance it is
// transactional and skips finalizers.
func (r *Result) RestartScope(m *machine.M, scope string) error {
	var inScope []*link.Instance
	for _, inst := range r.Program.Instances {
		if sched.ScopeContains(scope, inst.Path) {
			inScope = append(inScope, inst)
		}
	}
	var dynInScope []*link.Instance
	for _, inst := range r.stateOf(m).loaded {
		if sched.ScopeContains(scope, inst.Path) {
			dynInScope = append(dynInScope, inst)
		}
	}
	if len(inScope) == 0 && len(dynInScope) == 0 {
		return fmt.Errorf("knit: restart: no instances in scope %q", scope)
	}
	snap := m.Snapshot()
	for _, inst := range inScope {
		m.ResetData(link.InstanceSymbols(inst))
	}
	fail := func(step sched.Step, err error) error {
		m.Restore(snap)
		return &LifecycleError{
			Op:         "restart",
			Unit:       step.Instance,
			Func:       step.Func,
			Global:     step.Global,
			Err:        err,
			RolledBack: true,
		}
	}
	for _, i := range r.Schedule.InitsForScope(scope) {
		_, err := m.Run(r.Schedule.Inits[i])
		r.event(m, r.Schedule.InitSteps[i].Instance, "init")
		if err != nil {
			return fail(r.Schedule.InitSteps[i], err)
		}
	}
	for _, inst := range dynInScope {
		for _, ini := range inst.Inits {
			if ini.Finalizer {
				continue
			}
			_, err := m.Run(ini.GlobalName)
			r.event(m, inst.Path, "init")
			if err != nil {
				return fail(sched.Step{
					Global: ini.GlobalName, Func: ini.Func, Instance: inst.Path, Bundle: ini.Bundle,
				}, err)
			}
		}
	}
	for _, inst := range inScope {
		r.event(m, inst.Path, "restart")
	}
	for _, inst := range dynInScope {
		r.event(m, inst.Path, "restart")
	}
	return nil
}
