package build

import (
	"fmt"

	"knit/internal/knit/lang"
	"knit/internal/knit/link"
	"knit/internal/machine"
	"knit/internal/obj"
)

// This file is the build layer's doorway for the live-reconfiguration
// engine (internal/knit/reconfigure). The planner and applier work in
// terms of elaborated link.Instances they wire themselves — against live
// instances, not just top-level exports — so they need lower-level
// entry points than LoadDynamic: a view of the whole live configuration,
// instance compilation, and a load step that takes an already-elaborated
// instance. They also need to keep the Result's per-machine bookkeeping
// truthful across snapshot-based rollbacks, which bypass Unload.

// LiveProgram returns the live configuration of machine m as a program:
// the static instances plus every module currently loaded on m, with
// the modules' exports merged over the static export table. The clone is
// independent of the Result's internals — elaborating against it cannot
// race with other machines loading concurrently.
func (r *Result) LiveProgram(m *machine.M) *link.Program {
	st := r.stateOf(m)
	live := &link.Program{
		Registry:  r.Program.Registry,
		Top:       r.Program.Top,
		Instances: append([]*link.Instance(nil), r.Program.Instances...),
		Exports:   map[string]*link.Wire{},
	}
	for name, w := range r.Program.Exports {
		live.Exports[name] = w
	}
	for _, prev := range st.loaded {
		live.Instances = append(live.Instances, prev)
		for name, w := range link.DynamicExports(prev) {
			live.Exports[name] = w
		}
	}
	return live
}

// LoadedOn returns the dynamically loaded instances live on m, in load
// order.
func (r *Result) LoadedOn(m *machine.M) []*link.Instance {
	st := r.stateOf(m)
	return append([]*link.Instance(nil), st.loaded...)
}

// CompileInstance compiles one elaborated instance with the build's
// compiler options — the same pipeline a static build or LoadDynamic
// would run it through.
func (r *Result) CompileInstance(inst *link.Instance) (*obj.File, error) {
	return compileInstance(inst, r.copts)
}

// ParseUnitFiles parses unit-definition files in deterministic
// (sorted-name) order, ready for link.NewRegistry.
func ParseUnitFiles(unitFiles map[string]string) ([]*lang.File, error) {
	return parseUnitFiles(unitFiles)
}

// LoadElaborated loads an already-elaborated instance onto m: compile,
// ship, run initializers. The caller did the elaboration (typically with
// link.ElaborateDynamicEnv against LiveProgram, so the instance's ID and
// renamed symbols are fresh for this machine) and any constraint
// checking. Like LoadDynamic, the operation is transactional — a load or
// initializer failure restores the machine and leaves zero residue —
// and the returned handle supports Unload.
func (r *Result) LoadElaborated(m *machine.M, inst *link.Instance) (*LoadedUnit, error) {
	st := r.stateOf(m)
	o, err := compileInstance(inst, r.copts)
	if err != nil {
		return nil, err
	}
	modName := fmt.Sprintf("%s#%d", inst.Path, inst.ID)
	snap := m.Snapshot()
	if err := m.LoadDynamicAs(modName, modName, o); err != nil {
		return nil, err
	}
	for _, ini := range inst.Inits {
		if ini.Finalizer {
			continue
		}
		_, err := m.Run(ini.GlobalName)
		r.event(m, modName, "init")
		if err != nil {
			m.Restore(snap)
			return nil, &LifecycleError{
				Op:         "dynamic-init",
				Unit:       modName,
				Func:       ini.Func,
				Global:     ini.GlobalName,
				Err:        err,
				RolledBack: true,
			}
		}
	}
	st.loaded = append(st.loaded, inst)
	return &LoadedUnit{Instance: inst, res: r, modName: modName}, nil
}

// ForgetModule drops the build-layer record of lu on m without touching
// the machine. It exists for snapshot-based rollbacks: machine.Restore
// makes post-snapshot modules vanish wholesale, and the Result's loaded
// list must follow or later elaborations would wire against ghosts.
func (r *Result) ForgetModule(m *machine.M, lu *LoadedUnit) {
	st := r.stateOf(m)
	for i, inst := range st.loaded {
		if inst == lu.Instance {
			st.loaded = append(st.loaded[:i], st.loaded[i+1:]...)
			return
		}
	}
}

// AdoptModule re-registers lu on m without touching the machine — the
// inverse of ForgetModule, for rollbacks that resurrect pre-snapshot
// modules the applier had retired via Unload. Idempotent.
func (r *Result) AdoptModule(m *machine.M, lu *LoadedUnit) {
	st := r.stateOf(m)
	for _, inst := range st.loaded {
		if inst == lu.Instance {
			return
		}
	}
	st.loaded = append(st.loaded, lu.Instance)
}

// Notify reports a lifecycle event for a unit instance on m to the
// machine's observer, if any — the reconfigure layer's hook into the
// same stream RunInit, restarts, and swaps feed.
func (r *Result) Notify(m *machine.M, instance, op string) {
	r.event(m, instance, op)
}
