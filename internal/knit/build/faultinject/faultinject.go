// Package faultinject deterministically injects failures into a Knit
// machine and its build artifacts, so lifecycle robustness — init
// rollback, dynamic-load rollback, unload, cache self-healing — can be
// exercised by table tests instead of waiting for real components to
// crash. Every injection is explicit and repeatable: fail the nth
// top-level run, fail a named initializer, fail a device builtin after
// a call budget, corrupt or truncate a compile-cache entry on disk.
//
// The machine side rides on machine.M's PreRun hook and builtin
// registry; nothing here changes simulated-code semantics when no
// faults are armed.
package faultinject

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"knit/internal/machine"
)

// Injector arms deterministic failures on one machine. All methods are
// safe for concurrent use.
type Injector struct {
	m  *machine.M
	mu sync.Mutex

	runs       int
	failAtRun  map[int]error
	failEntry  map[string]error
	entryMatch []matchRule
	trapCall   map[string]*callRule
	saved      map[string]machine.Builtin // builtins replaced by failing wrappers
}

// matchRule fails top-level runs whose entry name contains a substring.
type matchRule struct {
	substr string
	err    error
}

// callRule traps every nth entry to one simulated function.
type callRule struct {
	every int
	calls int
}

// Attach hooks an Injector into m's PreRun and PreCall slots and
// returns it. With no faults armed the hooks only count events.
func Attach(m *machine.M) *Injector {
	in := &Injector{
		m:         m,
		failAtRun: map[int]error{},
		failEntry: map[string]error{},
		trapCall:  map[string]*callRule{},
		saved:     map[string]machine.Builtin{},
	}
	m.PreRun = in.preRun
	m.PreCall = in.preCall
	return in
}

func (in *Injector) preRun(entry string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.runs
	in.runs++
	if err, ok := in.failAtRun[n]; ok {
		return fmt.Errorf("faultinject: run #%d (%s): %w", n, entry, err)
	}
	if err, ok := in.failEntry[entry]; ok {
		return fmt.Errorf("faultinject: entry %s: %w", entry, err)
	}
	for _, r := range in.entryMatch {
		if strings.Contains(entry, r.substr) {
			return fmt.Errorf("faultinject: entry %s: %w", entry, r.err)
		}
	}
	return nil
}

func (in *Injector) preCall(fn string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	r, ok := in.trapCall[fn]
	if !ok {
		return nil
	}
	r.calls++
	if r.every <= 0 || r.calls%r.every != 0 {
		return nil
	}
	// A fresh *Trap per firing: the machine fills Unit from its symbol
	// owner table, so the fault is attributed like a real crash.
	return &machine.Trap{
		Kind: machine.TrapInjected,
		Msg:  fmt.Sprintf("faultinject: call #%d to %s", r.calls, fn),
		Func: fn,
	}
}

// FailNthRun arms a failure for the nth (0-based, counted from Attach
// or the last Clear) top-level machine.Run — e.g. the nth initializer
// of a RunInit sequence on a fresh machine.
func (in *Injector) FailNthRun(n int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failAtRun[n] = err
}

// FailEntry arms a failure for every top-level run of the named global
// symbol (use a schedule step's Global name to kill one specific
// initializer or finalizer regardless of position).
func (in *Injector) FailEntry(global string, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failEntry[global] = err
}

// FailEntryMatching arms a failure for every top-level run whose entry
// name contains substr. Dynamic instances get fresh program-unique
// renamed symbols on every load, so a test that wants to kill, say, a
// fallback unit's initializer on whatever instance comes next cannot
// know the exact global name in advance — but it does know the stable
// source-level fragment inside it.
func (in *Injector) FailEntryMatching(substr string, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.entryMatch = append(in.entryMatch, matchRule{substr: substr, err: err})
}

// TrapCallEvery arms an injected trap on every nth entry (counting from
// 1) to the named simulated function — top-level or nested, so an
// element deep inside a router pipeline can be made to crash on a
// schedule. The trap carries Kind TrapInjected and is attributed to the
// function's owning unit instance exactly like a real fault.
func (in *Injector) TrapCallEvery(global string, every int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.trapCall[global] = &callRule{every: every}
}

// FailBuiltinAfter replaces the named registered builtin with a wrapper
// that lets the first calls calls through and then fails every call
// with err. The original builtin is restored by Clear.
func (in *Injector) FailBuiltinAfter(name string, calls int, err error) error {
	orig, ok := in.m.Builtins[name]
	if !ok {
		return fmt.Errorf("faultinject: no builtin %q registered", name)
	}
	in.mu.Lock()
	if _, already := in.saved[name]; !already {
		in.saved[name] = orig
	}
	in.mu.Unlock()
	remaining := calls
	var mu sync.Mutex
	in.m.RegisterBuiltin(name, func(m *machine.M, args []int64) (int64, error) {
		mu.Lock()
		ok := remaining > 0
		remaining--
		mu.Unlock()
		if !ok {
			return 0, fmt.Errorf("faultinject: builtin %s: %w", name, err)
		}
		return orig(m, args)
	})
	return nil
}

// Runs reports how many top-level runs the hook has observed since
// Attach or the last Clear.
func (in *Injector) Runs() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.runs
}

// Clear disarms every fault, restores wrapped builtins, and resets the
// run counter, leaving the injector attached for the next scenario.
func (in *Injector) Clear() {
	in.mu.Lock()
	saved := in.saved
	in.runs = 0
	in.failAtRun = map[int]error{}
	in.failEntry = map[string]error{}
	in.entryMatch = nil
	in.trapCall = map[string]*callRule{}
	in.saved = map[string]machine.Builtin{}
	in.mu.Unlock()
	for name, b := range saved {
		in.m.RegisterBuiltin(name, b)
	}
}

// Detach clears all faults and removes the PreRun and PreCall hooks.
func (in *Injector) Detach() {
	in.Clear()
	in.m.PreRun = nil
	in.m.PreCall = nil
}

// CacheEntries lists a disk compile cache's entry files in sorted
// order, so tests can pick deterministic victims.
func CacheEntries(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.knitobj"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}

// CorruptEntry flips one byte of the file at the given offset (taken
// modulo the file size), simulating on-disk rot or a torn write.
func CorruptEntry(path string, offset int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("faultinject: %s is empty", path)
	}
	i := offset % int64(len(data))
	if i < 0 {
		i += int64(len(data))
	}
	data[i] ^= 0xff
	return os.WriteFile(path, data, 0o666)
}

// TruncateEntry cuts the file down to keep bytes (a crashed writer's
// torn file).
func TruncateEntry(path string, keep int64) error {
	return os.Truncate(path, keep)
}
