package build

import (
	"strings"
	"testing"
	"time"
)

// TestTimingsZeroValue: a zero Timings must be well-formed — eight
// phases, every duration zero, a 0 total, and a String() that renders
// 0.0% shares rather than NaN.
func TestTimingsZeroValue(t *testing.T) {
	var z Timings
	phases := z.Phases()
	if len(phases) != 8 {
		t.Fatalf("got %d phases, want 8", len(phases))
	}
	for _, p := range phases {
		if p.D != 0 {
			t.Errorf("phase %s = %v in zero value", p.Name, p.D)
		}
	}
	if z.Total() != 0 || z.KnitProper() != 0 || z.CompilerAndLoader() != 0 {
		t.Errorf("zero value totals: %v / %v / %v", z.Total(), z.KnitProper(), z.CompilerAndLoader())
	}
	s := z.String()
	if strings.Contains(s, "NaN") || strings.Contains(s, "-") {
		t.Errorf("zero-value String() malformed: %q", s)
	}
	if strings.Contains(s, "cache") {
		t.Errorf("zero-value String() reports a cache segment: %q", s)
	}
}

// TestTimingsAdd: Add accumulates every field, including the compile-job
// and cache-hit counters.
func TestTimingsAdd(t *testing.T) {
	a := Timings{Parse: 1, Elaborate: 2, Check: 3, Schedule: 4,
		Flatten: 5, Compile: 6, Link: 7, Load: 8, CompileJobs: 3, CacheHits: 1}
	b := Timings{Parse: 10, Compile: 60, CompileJobs: 2, CacheHits: 2}
	a.Add(b)
	want := Timings{Parse: 11, Elaborate: 2, Check: 3, Schedule: 4,
		Flatten: 5, Compile: 66, Link: 7, Load: 8, CompileJobs: 5, CacheHits: 3}
	if a != want {
		t.Errorf("Add: got %+v, want %+v", a, want)
	}
}

// TestTimingsStringCacheSegment: the cache segment appears exactly when
// hits were recorded.
func TestTimingsStringCacheSegment(t *testing.T) {
	tm := Timings{Compile: time.Millisecond, CompileJobs: 3, CacheHits: 2}
	if s := tm.String(); !strings.Contains(s, "cache 2/3 hits") {
		t.Errorf("String() = %q, want a cache 2/3 segment", s)
	}
	tm.CacheHits = 0
	if s := tm.String(); strings.Contains(s, "cache") {
		t.Errorf("String() = %q, want no cache segment without hits", s)
	}
}

// assertTimingsSane checks the invariants every build's Timings must
// satisfy: no negative phase, and the two aggregate views partition the
// total.
func assertTimingsSane(t *testing.T, tm Timings) {
	t.Helper()
	for _, p := range tm.Phases() {
		if p.D < 0 {
			t.Errorf("phase %s negative: %v", p.Name, p.D)
		}
	}
	if tm.KnitProper()+tm.CompilerAndLoader() != tm.Total() {
		t.Errorf("KnitProper %v + CompilerAndLoader %v != Total %v",
			tm.KnitProper(), tm.CompilerAndLoader(), tm.Total())
	}
	if tm.CacheHits > tm.CompileJobs {
		t.Errorf("cache hits %d exceed compile jobs %d", tm.CacheHits, tm.CompileJobs)
	}
}

// TestTimingsSkippedPhases: phases that are off must report exactly
// zero, not garbage — flatten when Options.Flatten is false, check when
// Options.Check is false.
func TestTimingsSkippedPhases(t *testing.T) {
	opts := logServeOptions()
	opts.Check = false // Flatten already off in the fixture
	res, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	assertTimingsSane(t, tm)
	if tm.Flatten != 0 {
		t.Errorf("flatten off but Flatten = %v", tm.Flatten)
	}
	if tm.Check != 0 {
		t.Errorf("check off but Check = %v", tm.Check)
	}
	if tm.CompileJobs == 0 {
		t.Error("C sources present but CompileJobs = 0")
	}
	if tm.CacheHits != 0 {
		t.Errorf("no cache configured but CacheHits = %d", tm.CacheHits)
	}
	for _, name := range []string{"parse", "elaborate", "compile", "link", "load"} {
		found := false
		for _, p := range tm.Phases() {
			if p.Name == name && p.D > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("phase %s recorded no time on a real build", name)
		}
	}
}

// TestTimingsAllAssemblyProgram: a program with no C sources runs zero
// compile jobs; the counters and the cache segment must reflect that
// even with a cache configured.
func TestTimingsAllAssemblyProgram(t *testing.T) {
	units := `
bundletype Str = { strlen_ }

unit AsmStr = {
  exports [ str : Str ];
  files { "str.s" };
}
`
	src := `
func strlen_ nargs=1 nregs=5
  const r1, 0
  const r2, 1
scan:
  bin r3, r0, +, r1
  load r3, r3
  branch r3, more, done
more:
  bin r1, r1, +, r2
  jump scan
done:
  ret r1
`
	res, err := Build(Options{
		Top:       "AsmStr",
		UnitFiles: map[string]string{"asm.unit": units},
		Sources:   map[string]string{"str.s": src},
		Cache:     NewCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	assertTimingsSane(t, tm)
	if tm.CompileJobs != 0 {
		t.Errorf("all-assembly program ran %d compile jobs, want 0", tm.CompileJobs)
	}
	if tm.CacheHits != 0 {
		t.Errorf("all-assembly program recorded %d cache hits, want 0", tm.CacheHits)
	}
	if strings.Contains(tm.String(), "cache") {
		t.Errorf("String() = %q, want no cache segment", tm.String())
	}
}
