package build

import (
	"testing"
)

// TestAssemblyUnit builds a system whose hot-path component is
// implemented in assembly (paper: "Knit can actually work with C,
// assembly, and object code"). Assembly units are never flattened; they
// link as instance-renamed objects in both modular and flattened builds.
func TestAssemblyUnit(t *testing.T) {
	units := `
bundletype Str  = { strlen_ }
bundletype Main = { run }

unit AsmStr = {
  exports [ str : Str ];
  files { "str.s" };
}
unit Driver = {
  imports [ str : Str ];
  exports [ main : Main ];
  depends { main needs str; };
  files { "driver.c" };
}
unit Top = {
  exports [ main : Main ];
  link {
    [str] <- AsmStr <- [];
    [main] <- Driver <- [str];
  };
}
`
	sources := map[string]string{
		"str.s": `
# strlen_(s): scan for the NUL terminator.
func strlen_ nargs=1 nregs=5
  const r1, 0          ; n
  const r2, 1
scan:
  bin r3, r0, +, r1
  load r3, r3
  branch r3, more, done
more:
  bin r1, r1, +, r2
  jump scan
done:
  ret r1
`,
		"driver.c": `
int strlen_(char *s);
int run(int x) { return strlen_("hello") + x; }
`,
	}
	for _, flatten := range []bool{false, true} {
		res, err := Build(Options{
			Top:       "Top",
			UnitFiles: map[string]string{"top.unit": units},
			Sources:   sources,
			Optimize:  true,
			Flatten:   flatten,
		})
		if err != nil {
			t.Fatalf("Build(flatten=%v): %v", flatten, err)
		}
		m := res.NewMachine()
		v, err := res.Run(m, "main", "run", 10)
		if err != nil {
			t.Fatalf("Run(flatten=%v): %v", flatten, err)
		}
		if v != 15 {
			t.Errorf("flatten=%v: run(10) = %d, want 15 (strlen(\"hello\")+10)", flatten, v)
		}
	}
}
