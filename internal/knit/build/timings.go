package build

import (
	"fmt"
	"strings"
	"time"
)

// Timings records wall time per pipeline phase — the repo's first
// observability layer, reproducing the paper's §6 build-time breakdown.
// The phases split into "Knit proper" (the component system's own
// analyses: unit parsing, linking, constraint checking, scheduling,
// flattening) and the substrate's compiler/linker/loader work.
type Timings struct {
	Parse     time.Duration // unit-definition files -> ASTs
	Elaborate time.Duration // linking-graph elaboration (includes cmini parsing)
	Check     time.Duration // constraint fixpoint (zero when Check is off)
	Schedule  time.Duration // initializer/finalizer ordering
	Flatten   time.Duration // cross-component source merge (zero when off)
	Compile   time.Duration // cmini -> IR, optimization passes
	Link      time.Duration // object merge into the image
	Load      time.Duration // data/text placement, address resolution

	// CompileJobs counts the translation units the compile phase
	// processed (per-file units plus a flattened region, if any);
	// CacheHits says how many of them were served from Options.Cache
	// instead of being compiled. Both are zero when no C sources exist
	// (an all-assembly program), and CacheHits is zero without a cache.
	CompileJobs int
	CacheHits   int
}

// Add accumulates u into t, phase by phase — for averaging repeated
// builds in benchmarks and reports.
func (t *Timings) Add(u Timings) {
	t.Parse += u.Parse
	t.Elaborate += u.Elaborate
	t.Check += u.Check
	t.Schedule += u.Schedule
	t.Flatten += u.Flatten
	t.Compile += u.Compile
	t.Link += u.Link
	t.Load += u.Load
	t.CompileJobs += u.CompileJobs
	t.CacheHits += u.CacheHits
}

// KnitProper is the time spent in Knit's own analyses — the paper's
// "Knit-proper" number, which constraint checking more than doubles.
func (t Timings) KnitProper() time.Duration {
	return t.Parse + t.Elaborate + t.Check + t.Schedule + t.Flatten
}

// CompilerAndLoader is the substrate time: compiling, linking, and
// loading — the >95% share of the paper's builds.
func (t Timings) CompilerAndLoader() time.Duration {
	return t.Compile + t.Link + t.Load
}

// Total is the whole pipeline's wall time.
func (t Timings) Total() time.Duration {
	return t.KnitProper() + t.CompilerAndLoader()
}

// Phase is one named entry of the breakdown, for reporting.
type Phase struct {
	Name string
	D    time.Duration
}

// Phases returns the breakdown in pipeline order.
func (t Timings) Phases() []Phase {
	return []Phase{
		{"parse", t.Parse},
		{"elaborate", t.Elaborate},
		{"check", t.Check},
		{"schedule", t.Schedule},
		{"flatten", t.Flatten},
		{"compile", t.Compile},
		{"link", t.Link},
		{"load", t.Load},
	}
}

// String renders the per-phase breakdown with each phase's share of the
// total, e.g. "parse 12µs (0.4%) | ... | compile 2.1ms (88.3%) | ...".
func (t Timings) String() string {
	total := t.Total()
	var b strings.Builder
	for i, p := range t.Phases() {
		if i > 0 {
			b.WriteString(" | ")
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(p.D) / float64(total)
		}
		fmt.Fprintf(&b, "%s %v (%.1f%%)", p.Name, p.D.Round(time.Microsecond), pct)
	}
	if t.CacheHits > 0 {
		fmt.Fprintf(&b, " | cache %d/%d hits", t.CacheHits, t.CompileJobs)
	}
	return b.String()
}
