package build

import (
	"strings"
	"testing"

	"knit/internal/knit/link"
)

// The dynamic-boundary fixture: a base kernel with a counter service and
// a blocking lock whose context property records that it may only be
// used from process context (paper §4, §8).
const dynBaseUnits = `
property context
type NoContext
type ProcessContext < NoContext

bundletype Count = { bump, current }
bundletype Lock  = { lock_acquire, lock_release }

unit Counter = {
  exports [ count : Count ];
  initializer count_init for count;
  files { "counter.c" };
}
unit BlockingLock = {
  exports [ lock : Lock ];
  files { "lock.c" };
  constraints { context(lock) = ProcessContext; };
}
unit Base = {
  exports [ count : Count, lock : Lock ];
  link {
    [count] <- Counter <- [];
    [lock] <- BlockingLock <- [];
  };
}
`

var dynBaseSources = link.Sources{
	"counter.c": `
static int n;
void count_init(void) { n = 1000; }
int bump(void) { n++; return n; }
int current(void) { return n; }
`,
	"lock.c": `
static int held;
int lock_acquire(void) { held = 1; return 1; }
int lock_release(void) { held = 0; return 1; }
`,
}

const dynMonitorUnits = `
bundletype Monitor = { sample }
unit MonitorU = {
  imports [ count : Count ];
  exports [ mon : Monitor ];
  initializer mon_init for mon;
  depends { mon needs count; mon_init needs count; };
  files { "monitor.c" };
}
`

var dynMonitorSources = link.Sources{
	"monitor.c": `
int current(void);
static int baseline;
void mon_init(void) { baseline = current(); }
int sample(void) { return current() - baseline; }
`,
}

const dynIrqUnits = `
bundletype Irq = { irq_handle }
unit DynIrq = {
  imports [ lock : Lock ];
  exports [ irq : Irq ];
  depends { irq needs lock; };
  files { "irq.c" };
  constraints {
    context(irq) = NoContext;
    context(exports) <= context(imports);
  };
}
`

var dynIrqSources = link.Sources{
	"irq.c": `
int lock_acquire(void);
int lock_release(void);
int irq_handle(int v) { lock_acquire(); lock_release(); return v; }
`,
}

func buildDynBase(t *testing.T) *Result {
	t.Helper()
	res, err := Build(Options{
		Top:       "Base",
		UnitFiles: map[string]string{"base.unit": dynBaseUnits},
		Sources:   dynBaseSources,
		Check:     true,
	})
	if err != nil {
		t.Fatalf("Build base: %v", err)
	}
	return res
}

// TestDynamicBoundaryConstraintCheck loads a compatible module into a
// live machine, then tries a module whose context constraints conflict
// with the running configuration — which must be rejected at the dynamic
// boundary, before any of its code loads.
func TestDynamicBoundaryConstraintCheck(t *testing.T) {
	res := buildDynBase(t)
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatalf("RunInit: %v", err)
	}
	bump, err := res.Export("count", "bump")
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Run(bump); err != nil {
			t.Fatalf("bump: %v", err)
		}
	}

	// The monitor wires to the live counter and is initialized on load.
	mon, err := res.LoadDynamic(m, DynamicUnit{
		Unit:      "MonitorU",
		UnitFiles: map[string]string{"mon.unit": dynMonitorUnits},
		Sources:   dynMonitorSources,
		Wiring:    map[string]string{"count": "count"},
		Check:     true,
	})
	if err != nil {
		t.Fatalf("LoadDynamic monitor: %v", err)
	}
	for i := 0; i < 3; i++ {
		m.Run(bump)
	}
	sample, err := mon.ExportSymbol("mon", "sample")
	if err != nil {
		t.Fatalf("ExportSymbol: %v", err)
	}
	v, err := m.Run(sample)
	if err != nil {
		t.Fatalf("sample: %v", err)
	}
	if v != 3 {
		t.Errorf("sample() = %d, want 3 (bumps since load)", v)
	}

	// The interrupt module requires NoContext from its import, but the
	// running lock is ProcessContext-only: rejected at the boundary.
	_, err = res.LoadDynamic(m, DynamicUnit{
		Unit:      "DynIrq",
		UnitFiles: map[string]string{"irq.unit": dynIrqUnits},
		Sources:   dynIrqSources,
		Wiring:    map[string]string{"lock": "lock"},
		Check:     true,
	})
	if err == nil {
		t.Fatal("conflicting module was accepted at the dynamic boundary")
	}
	if !strings.Contains(err.Error(), "constraint violation") {
		t.Errorf("rejection error %q does not name the constraint violation", err)
	}

	// The rejected load left the machine untouched: the kernel still runs.
	after, err := m.Run(bump)
	if err != nil {
		t.Fatalf("bump after rejection: %v", err)
	}
	if after != 1009 {
		t.Errorf("counter = %d after rejection, want 1009", after)
	}
}

// TestDynamicUncheckedLoad: the checks are opt-in per load — without
// Check the same conflicting module links fine (and the caller owns the
// consequences, as with the paper's unchecked builds).
func TestDynamicUncheckedLoad(t *testing.T) {
	res := buildDynBase(t)
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatalf("RunInit: %v", err)
	}
	irq, err := res.LoadDynamic(m, DynamicUnit{
		Unit:      "DynIrq",
		UnitFiles: map[string]string{"irq.unit": dynIrqUnits},
		Sources:   dynIrqSources,
		Wiring:    map[string]string{"lock": "lock"},
	})
	if err != nil {
		t.Fatalf("unchecked LoadDynamic: %v", err)
	}
	h, err := irq.ExportSymbol("irq", "irq_handle")
	if err != nil {
		t.Fatalf("ExportSymbol: %v", err)
	}
	if v, err := m.Run(h, 7); err != nil || v != 7 {
		t.Errorf("irq_handle(7) = %d, %v; want 7", v, err)
	}
}

// TestDynamicModuleToModuleWiring chains loads: a second module wires to
// the first loaded module's export, not just to the static base.
func TestDynamicModuleToModuleWiring(t *testing.T) {
	res := buildDynBase(t)
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatalf("RunInit: %v", err)
	}
	if _, err := res.LoadDynamic(m, DynamicUnit{
		Unit:      "MonitorU",
		UnitFiles: map[string]string{"mon.unit": dynMonitorUnits},
		Sources:   dynMonitorSources,
		Wiring:    map[string]string{"count": "count"},
		Check:     true,
	}); err != nil {
		t.Fatalf("LoadDynamic monitor: %v", err)
	}

	// Each dynamic module ships its own interface declarations; Monitor is
	// not in the base registry, so the alarm module redeclares it.
	alarmUnits := `
bundletype Monitor = { sample }
bundletype Alarm = { alarm_over }
unit AlarmU = {
  imports [ mon : Monitor ];
  exports [ alarm : Alarm ];
  depends { alarm needs mon; };
  files { "alarm.c" };
}
`
	alarmSources := link.Sources{
		"alarm.c": `
int sample(void);
int alarm_over(int limit) { return sample() > limit; }
`,
	}
	alarm, err := res.LoadDynamic(m, DynamicUnit{
		Unit:      "AlarmU",
		UnitFiles: map[string]string{"alarm.unit": alarmUnits},
		Sources:   alarmSources,
		Wiring:    map[string]string{"mon": "mon"},
		Check:     true,
	})
	if err != nil {
		t.Fatalf("LoadDynamic alarm: %v", err)
	}
	bump, _ := res.Export("count", "bump")
	for i := 0; i < 4; i++ {
		m.Run(bump)
	}
	over, err := alarm.ExportSymbol("alarm", "alarm_over")
	if err != nil {
		t.Fatalf("ExportSymbol: %v", err)
	}
	if v, err := m.Run(over, 3); err != nil || v != 1 {
		t.Errorf("alarm_over(3) = %d, %v; want 1 (4 bumps since monitor load)", v, err)
	}
	if v, err := m.Run(over, 10); err != nil || v != 0 {
		t.Errorf("alarm_over(10) = %d, %v; want 0", v, err)
	}
}
