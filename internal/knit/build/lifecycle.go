package build

import (
	"fmt"
	"strings"
)

// LifecycleError is the structured failure report for every component
// lifecycle operation — initialization, finalization, dynamic load, and
// unload. It names the unit instance and the function that failed, says
// whether the machine was rolled back to its pre-operation state, and
// collects (rather than masks) any finalizer failures that happened
// while rolling back.
type LifecycleError struct {
	// Op is the lifecycle operation that failed: "init", "fini",
	// "dynamic-init", or "unload".
	Op string
	// Unit is the owning unit-instance path, e.g. "LogServe/Log#1" or
	// "dynamic/MonitorU#4".
	Unit string
	// Func is the source-level name of the failing initializer or
	// finalizer; Global is its program-unique renamed symbol.
	Func   string
	Global string
	// Err is the underlying failure (usually a *machine.Trap).
	Err error
	// RolledBack reports whether the machine was restored to its state
	// from before the operation. When true, retrying the operation is
	// safe: nothing half-done remains on the machine.
	RolledBack bool
	// RollbackErrs holds failures of finalizers run during the rollback
	// itself. The machine state is still restored (the snapshot wins),
	// but the failures are reported so a buggy finalizer cannot hide
	// behind the initializer failure that triggered it.
	RollbackErrs []error
}

func (e *LifecycleError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "knit: %s failed: unit %s", e.Op, e.Unit)
	if e.Func != "" {
		fmt.Fprintf(&b, ", %s %s", stepNoun(e.Op), e.Func)
	}
	if e.Global != "" && e.Global != e.Func {
		fmt.Fprintf(&b, " (%s)", e.Global)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	if e.RolledBack {
		b.WriteString(" [machine rolled back to pre-")
		b.WriteString(e.Op)
		b.WriteString(" state]")
	}
	for _, re := range e.RollbackErrs {
		fmt.Fprintf(&b, "; during rollback: %v", re)
	}
	return b.String()
}

// Unwrap exposes the underlying failure and every rollback failure for
// errors.Is/As traversal (multi-error unwrap, as errors.Join produces):
// a caller can match an individual finalizer's *LifecycleError or the
// *machine.Trap inside it without string-matching the message.
func (e *LifecycleError) Unwrap() []error {
	var errs []error
	if e.Err != nil {
		errs = append(errs, e.Err)
	}
	return append(errs, e.RollbackErrs...)
}

func stepNoun(op string) string {
	switch op {
	case "fini", "unload":
		return "finalizer"
	default:
		return "initializer"
	}
}
