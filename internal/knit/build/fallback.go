package build

import (
	"fmt"

	"knit/internal/knit/lang"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

// This file implements the runtime half of the paper's interposition
// story (§2.3): replacing a failing unit instance with its declared
// fallback unit on a live machine, without touching the neighbors it is
// wired to. The failing instance's code stays loaded (static text
// cannot be unloaded) but becomes unreachable: every direct call to its
// export symbols is redirected — machine.M.Interpose — to the freshly
// loaded fallback, which is wired to the very same import providers.

// FallbackUnit returns the name of the fallback unit declared for the
// instance's unit, or "" when it has none.
func FallbackUnit(inst *link.Instance) string { return inst.Unit.Fallback }

// SwapFallback loads the fallback unit declared for failing and
// redirects the failing instance's exports to it. The fallback must be
// an atomic unit exporting the same bundles (same locals, same types)
// and importing a subset of failing's imports; it is wired to the same
// providers failing was wired to, elaborated and compiled fresh, loaded
// as a dynamic module, initialized, and interposed over failing's
// export symbols.
//
// The whole swap is transactional: any failure — elaboration, a
// constraint of the machine loader, a fallback initializer, a redirect
// — restores the machine to its pre-swap snapshot (including the
// redirect table), so a fault during the swap leaves zero residue.
//
// SwapFallback does not unload anything: when failing is itself a
// previously swapped-in dynamic fallback, interposition re-points the
// old redirects at the new module (path compression), after which the
// caller may Unload the superseded module and Unpose its stale keys —
// see ReleaseSuperseded.
func (r *Result) SwapFallback(m *machine.M, failing *link.Instance) (*LoadedUnit, error) {
	fbName := failing.Unit.Fallback
	if fbName == "" {
		return nil, fmt.Errorf("knit: swap: unit %s declares no fallback", failing.Unit.Name)
	}
	reg := r.Program.Registry
	fb, ok := reg.Units[fbName]
	if !ok {
		return nil, fmt.Errorf("knit: swap: fallback unit %q of %s is not declared",
			fbName, failing.Unit.Name)
	}

	// The fallback must be export-compatible: exactly the same export
	// locals with the same bundle types, so its symbols are a drop-in
	// replacement for every caller wired to failing.
	if err := sameExports(failing.Unit, fb); err != nil {
		return nil, fmt.Errorf("knit: swap %s -> %s: %w", failing.Unit.Name, fbName, err)
	}

	// Wire the fallback's imports to the same providers failing uses.
	env := map[string]*link.Wire{}
	for _, imp := range fb.Imports {
		w, ok := failing.ImportWires[imp.Local]
		if !ok || w == nil {
			return nil, fmt.Errorf(
				"knit: swap %s -> %s: fallback import %q is not an import of the failing unit",
				failing.Unit.Name, fbName, imp.Local)
		}
		env[imp.Local] = w
	}

	// Fresh instance IDs must clear both static instances and the
	// modules already live on this machine. The instance slice is cloned,
	// not aliased: appending to a slice whose backing array is the shared
	// r.Program.Instances would let two machines swapping concurrently
	// scribble over each other's element (the Image sharing contract says
	// the static program is read-only once built).
	st := r.stateOf(m)
	base := &link.Program{
		Registry:  reg,
		Top:       r.Program.Top,
		Instances: append([]*link.Instance(nil), r.Program.Instances...),
		Exports:   r.Program.Exports,
	}
	base.Instances = append(base.Instances, st.loaded...)
	inst, err := link.ElaborateDynamicEnv(reg, base, fbName, r.sources, env)
	if err != nil {
		return nil, err
	}
	o, err := compileInstance(inst, r.copts)
	if err != nil {
		return nil, err
	}

	modName := fmt.Sprintf("%s#%d", inst.Path, inst.ID)
	snap := m.Snapshot()
	if err := m.LoadDynamicAs(modName, modName, o); err != nil {
		return nil, err
	}
	for _, ini := range inst.Inits {
		if ini.Finalizer {
			continue
		}
		_, err := m.Run(ini.GlobalName)
		r.event(m, modName, "init")
		if err != nil {
			m.Restore(snap)
			return nil, &LifecycleError{
				Op:         "swap",
				Unit:       modName,
				Func:       ini.Func,
				Global:     ini.GlobalName,
				Err:        err,
				RolledBack: true,
			}
		}
	}
	// Circuit-break: every export symbol of the failing instance now
	// resolves to the fallback's implementation. A redirect failure
	// mid-way restores the snapshot, which also rewinds the redirects
	// already installed.
	for local, syms := range failing.ExportSyms {
		for sym, global := range syms {
			target, ok := inst.ExportSyms[local][sym]
			if !ok {
				m.Restore(snap)
				return nil, fmt.Errorf(
					"knit: swap %s -> %s: fallback bundle %q lacks symbol %q",
					failing.Unit.Name, fbName, local, sym)
			}
			if err := m.Interpose(global, target); err != nil {
				m.Restore(snap)
				return nil, fmt.Errorf("knit: swap %s -> %s: %w", failing.Unit.Name, fbName, err)
			}
		}
	}
	st.loaded = append(st.loaded, inst)
	r.event(m, failing.Path, "swap")
	return &LoadedUnit{Instance: inst, res: r, modName: modName}, nil
}

// ReleaseSuperseded unloads a dynamic module that a later SwapFallback
// has interposed away (its finalizers run as usual) and drops the stale
// redirect entries that were keyed on its export symbols. Call it after
// the swap has succeeded; a finalizer failure leaves the module loaded
// but still bypassed, and retrying later is safe.
func (lu *LoadedUnit) ReleaseSuperseded(m *machine.M) error {
	if err := lu.Unload(m); err != nil {
		return err
	}
	for _, syms := range lu.Instance.ExportSyms {
		for _, global := range syms {
			m.Unpose(global)
		}
	}
	return nil
}

// sameExports checks that two units export exactly the same local
// bundle names with the same bundle types.
func sameExports(a, b *lang.Unit) error {
	want := map[string]string{}
	for _, e := range a.Exports {
		want[e.Local] = e.Type
	}
	for _, e := range b.Exports {
		typ, ok := want[e.Local]
		if !ok {
			return fmt.Errorf("fallback exports %q, which %s does not", e.Local, a.Name)
		}
		if typ != e.Type {
			return fmt.Errorf("export %q has bundle type %s in %s but %s in %s",
				e.Local, typ, a.Name, e.Type, b.Name)
		}
		delete(want, e.Local)
	}
	for local := range want {
		return fmt.Errorf("fallback does not export %q", local)
	}
	return nil
}
