package build

import (
	"fmt"

	"knit/internal/knit/constraint"
	"knit/internal/knit/lang"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

// DynamicUnit describes a module to link into a running machine — the
// paper's §8 dynamic-linking extension. The unit must be atomic; its
// imports are wired, by Wiring, to top-level exports of the base program
// (or of previously loaded modules on the same machine).
type DynamicUnit struct {
	// Unit names the atomic unit to instantiate.
	Unit string
	// UnitFiles holds additional unit-definition files; they extend the
	// base build's registry and may not redefine its declarations.
	UnitFiles map[string]string
	// Sources is the virtual filesystem for the unit's files{} section.
	Sources link.Sources
	// Wiring maps the unit's import locals to export names visible on the
	// machine.
	Wiring map[string]string
	// Check re-runs the constraint checker over the whole live
	// configuration — base program plus every module already loaded on
	// this machine plus the new one — and rejects the load on a
	// violation, before any code reaches the machine.
	Check bool
}

// LoadedUnit is a successfully loaded dynamic module. It is the handle
// for the module's exports and for unloading it again.
type LoadedUnit struct {
	Instance *link.Instance

	res     *Result
	modName string // machine-level module name, e.g. "dynamic/MonitorU#4"
}

// Name returns the module's machine-level name (unique per live module
// on a machine).
func (lu *LoadedUnit) Name() string { return lu.modName }

// ExportSymbol resolves one of the module's export bundle symbols to its
// global name, suitable for machine.M.Run.
func (lu *LoadedUnit) ExportSymbol(bundle, sym string) (string, error) {
	name, ok := lu.Instance.ExportSyms[bundle][sym]
	if !ok {
		return "", fmt.Errorf("knit: dynamic unit %s: bundle %q has no symbol %q",
			lu.Instance.Unit.Name, bundle, sym)
	}
	return name, nil
}

// LoadDynamic elaborates du.Unit against the live machine m, re-checks
// constraints at the dynamic boundary when du.Check is set, compiles the
// instance, loads it into m, and runs its initializers. On any error —
// including a constraint violation or a failing initializer — nothing
// stays loaded and the machine is restored to its pre-load state, so a
// rejected module leaves zero residue. A loaded module lives until
// LoadedUnit.Unload (or machine reset); its finalizers run at unload.
func (r *Result) LoadDynamic(m *machine.M, du DynamicUnit) (*LoadedUnit, error) {
	st := r.stateOf(m)

	files, err := parseUnitFiles(du.UnitFiles)
	if err != nil {
		return nil, err
	}
	reg, err := mergeRegistry(r.Program.Registry, files)
	if err != nil {
		return nil, err
	}

	// The elaboration base is the static program plus this machine's
	// previously loaded modules: their instances (so fresh instance IDs
	// stay unique) and their exports (so modules can wire to modules).
	// Cloned, not aliased: appending onto the shared r.Program.Instances
	// backing array would race across machines loading concurrently.
	base := &link.Program{
		Registry:  reg,
		Top:       r.Program.Top,
		Instances: append([]*link.Instance(nil), r.Program.Instances...),
		Exports:   map[string]*link.Wire{},
	}
	for name, w := range r.Program.Exports {
		base.Exports[name] = w
	}
	for _, prev := range st.loaded {
		base.Instances = append(base.Instances, prev)
		for name, w := range link.DynamicExports(prev) {
			base.Exports[name] = w
		}
	}

	inst, err := link.ElaborateDynamic(reg, base, du.Unit, du.Sources, du.Wiring)
	if err != nil {
		return nil, err
	}

	// Constraint check over the whole live configuration, before any of
	// the module's code is compiled or loaded.
	if du.Check {
		combined := &link.Program{
			Registry:  reg,
			Top:       base.Top,
			Instances: append(append([]*link.Instance{}, base.Instances...), inst),
			Exports:   base.Exports,
		}
		if _, err := constraint.Check(combined); err != nil {
			return nil, fmt.Errorf("knit: dynamic unit %s rejected: %w", du.Unit, err)
		}
	}

	o, err := compileInstance(inst, r.copts)
	if err != nil {
		return nil, err
	}
	// The module name and attribution carry the instance ID so repeated
	// loads of the same unit stay distinguishable.
	modName := fmt.Sprintf("%s#%d", inst.Path, inst.ID)
	snap := m.Snapshot()
	if err := m.LoadDynamicAs(modName, modName, o); err != nil {
		return nil, err
	}
	// A failed dynamic initializer rolls the machine back to its
	// pre-load snapshot: the module's code, data, and symbols vanish
	// along with any partial initialization.
	for _, ini := range inst.Inits {
		if ini.Finalizer {
			continue
		}
		_, err := m.Run(ini.GlobalName)
		r.event(m, modName, "init")
		if err != nil {
			m.Restore(snap)
			return nil, &LifecycleError{
				Op:         "dynamic-init",
				Unit:       modName,
				Func:       ini.Func,
				Global:     ini.GlobalName,
				Err:        err,
				RolledBack: true,
			}
		}
	}

	st.loaded = append(st.loaded, inst)
	return &LoadedUnit{Instance: inst, res: r, modName: modName}, nil
}

// Unload reverses a LoadDynamic on m: it verifies that no still-live
// module imports this module's exports (refusing with an error that
// names the dependent, mirroring the load-time constraint re-check),
// runs the module's finalizers in reverse declaration order, and
// reclaims its text, data, and symbol-table entries from the machine.
// Unloading is transactional: if a finalizer fails, the machine is
// restored to its pre-unload state, the module stays loaded, and the
// returned *LifecycleError names the failing finalizer.
func (lu *LoadedUnit) Unload(m *machine.M) error {
	r := lu.res
	if r == nil {
		return fmt.Errorf("knit: unload: module handle was not produced by LoadDynamic")
	}
	st := r.stateOf(m)
	idx := -1
	for i, inst := range st.loaded {
		if inst == lu.Instance {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("knit: unload %s: module is not loaded on this machine", lu.modName)
	}
	// Liveness re-check at the dynamic boundary: a module whose exports
	// are wired into a still-live importer must stay.
	for _, other := range st.loaded {
		if other == lu.Instance {
			continue
		}
		for local, w := range other.ImportWires {
			if w != nil && w.Provider == lu.Instance {
				return fmt.Errorf(
					"knit: cannot unload %s: live module %s imports %q from its bundle %q (unload the importer first)",
					lu.modName, other.Path, local, w.Bundle)
			}
		}
	}
	snap := m.Snapshot()
	for i := len(lu.Instance.Inits) - 1; i >= 0; i-- {
		ini := lu.Instance.Inits[i]
		if !ini.Finalizer {
			continue
		}
		_, err := m.Run(ini.GlobalName)
		r.event(m, lu.modName, "fini")
		if err != nil {
			m.Restore(snap)
			return &LifecycleError{
				Op:         "unload",
				Unit:       lu.modName,
				Func:       ini.Func,
				Global:     ini.GlobalName,
				Err:        err,
				RolledBack: true,
			}
		}
	}
	if err := m.UnloadDynamic(lu.modName); err != nil {
		m.Restore(snap)
		return err
	}
	st.loaded = append(st.loaded[:idx], st.loaded[idx+1:]...)
	r.event(m, lu.modName, "unload")
	return nil
}

// mergeRegistry extends a base registry with newly parsed unit files,
// rejecting redefinitions of anything the base already declares.
func mergeRegistry(base *link.Registry, files []*lang.File) (*link.Registry, error) {
	add, err := link.NewRegistry(files...)
	if err != nil {
		return nil, err
	}
	out := &link.Registry{
		BundleTypes: map[string]*lang.BundleType{},
		FlagSets:    map[string]*lang.FlagSet{},
		Properties:  map[string]*lang.Property{},
		Units:       map[string]*lang.Unit{},
	}
	for k, v := range base.BundleTypes {
		out.BundleTypes[k] = v
	}
	for k, v := range base.FlagSets {
		out.FlagSets[k] = v
	}
	for k, v := range base.Properties {
		out.Properties[k] = v
	}
	for k, v := range base.Units {
		out.Units[k] = v
	}
	for k, v := range add.BundleTypes {
		if _, dup := out.BundleTypes[k]; dup {
			return nil, fmt.Errorf("knit: dynamic unit files redefine bundletype %q", k)
		}
		out.BundleTypes[k] = v
	}
	for k, v := range add.FlagSets {
		if _, dup := out.FlagSets[k]; dup {
			return nil, fmt.Errorf("knit: dynamic unit files redefine flags %q", k)
		}
		out.FlagSets[k] = v
	}
	for k, v := range add.Properties {
		if _, dup := out.Properties[k]; dup {
			return nil, fmt.Errorf("knit: dynamic unit files redefine property %q", k)
		}
		out.Properties[k] = v
	}
	for k, v := range add.Units {
		if _, dup := out.Units[k]; dup {
			return nil, fmt.Errorf("knit: dynamic unit files redefine unit %q", k)
		}
		out.Units[k] = v
	}
	return out, nil
}
