// Package build is the end-to-end Knit pipeline driver: it sequences
// unit-file parsing, hierarchical linking, constraint checking,
// initializer scheduling, optional cross-component flattening,
// compilation, image linking, and machine loading — the "parse -> link ->
// check -> schedule -> compile -> image" chain every tool and example in
// this repository drives (paper §2.3, §3.2, §4, §6).
//
// Build is deterministic: the same Options produce the same Program,
// Schedule, Object, and Image. Each phase's wall time is recorded in
// Result.Timings, which reproduces the paper's §6 build-time breakdown
// (most time in the compiler and loader, constraint checking a
// significant multiplier on Knit-proper time).
package build

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"knit/internal/cmini"
	"knit/internal/compile"
	"knit/internal/knit/constraint"
	"knit/internal/knit/flatten"
	"knit/internal/knit/lang"
	"knit/internal/knit/link"
	"knit/internal/knit/sched"
	"knit/internal/ldlink"
	"knit/internal/machine"
	"knit/internal/obj"
)

// Options selects what to build and how.
type Options struct {
	// Top is the unit to elaborate; it must export everything the caller
	// wants to run and have no unsatisfied imports.
	Top string
	// UnitFiles maps unit-definition file names to their text. Files are
	// parsed in sorted name order, so a build is independent of map
	// iteration order.
	UnitFiles map[string]string
	// Sources is the virtual filesystem for the files{} sections of
	// atomic units: file name -> cmini (or, for ".s" names, assembly)
	// source text.
	Sources link.Sources
	// Check runs the §4 constraint checker after linking; a violation
	// aborts the build. When false, Result.ConstraintReport is nil and
	// even ill-constrained configurations build (the paper's checks are
	// opt-in per build).
	Check bool
	// Optimize enables the compiler's -O passes (constant folding, CSE,
	// dead code, intra-file inlining).
	Optimize bool
	// Flatten merges unit sources into one compilation unit before
	// compiling, so the intra-file optimizer can work across component
	// boundaries (§6). Assembly files are never flattened; they always
	// link as renamed objects.
	Flatten bool
	// FlattenFilter, when non-nil, limits flattening to instances for
	// which it returns true; the rest compile separately. Nil flattens
	// every instance. Ignored unless Flatten is set ("flatten only the
	// router rather than the entire kernel").
	FlattenFilter func(*link.Instance) bool
	// InlineLimit is the optimizer's maximum callee size in IR
	// instructions (0 = default, negative disables inlining).
	InlineLimit int
	// GrowthLimit caps a function's post-inlining size (0 = default).
	GrowthLimit int
	// DisableCSE turns off value numbering, for ablation studies.
	DisableCSE bool
	// Costs is the simulated machine's cost model; the zero value means
	// machine.DefaultCosts().
	Costs machine.Costs
	// Cache, when non-nil, memoizes compiled translation units across
	// builds by content hash (see Cache). A warm rebuild of an
	// unchanged program skips every compile — and, for a flattened
	// region, the merge too — leaving only linking and loading.
	Cache *Cache
	// Parallelism bounds the number of concurrent compile workers:
	// 0 means GOMAXPROCS, 1 forces serial compilation. Independent
	// translation units compile in parallel; output ordering (and thus
	// the built Object and Image) is identical at every setting.
	Parallelism int
	// Backend selects the execution engine for machines created from
	// the Result (NewMachine/NewMachineFrom): the cycle-accounting
	// interpreter (default) or the closure-compiled backend. The built
	// Image is identical either way; only execution speed and the
	// I-cache stall model differ.
	Backend machine.Backend
}

// compileOptions derives the compiler configuration from build options.
func (o *Options) compileOptions() compile.Options {
	return compile.Options{
		Opt:         o.Optimize,
		InlineLimit: o.InlineLimit,
		GrowthLimit: o.GrowthLimit,
		DisableCSE:  o.DisableCSE,
	}
}

// Build runs the full pipeline and returns the built system.
func Build(opts Options) (*Result, error) {
	if opts.Top == "" {
		return nil, fmt.Errorf("knit: build needs a top unit")
	}
	if len(opts.UnitFiles) == 0 {
		return nil, fmt.Errorf("knit: build needs at least one unit file")
	}
	res := &Result{copts: opts.compileOptions(), sources: opts.Sources, Backend: opts.Backend}

	// Parse the unit-definition files.
	start := time.Now()
	files, err := parseUnitFiles(opts.UnitFiles)
	res.Timings.Parse = time.Since(start)
	if err != nil {
		return nil, err
	}

	// Elaborate the linking graph into a flat instance set.
	start = time.Now()
	reg, err := link.NewRegistry(files...)
	if err != nil {
		return nil, err
	}
	prog, err := link.Elaborate(reg, opts.Top, opts.Sources)
	res.Timings.Elaborate = time.Since(start)
	if err != nil {
		return nil, err
	}
	res.Program = prog

	// Constraint fixpoint (§4), on request.
	if opts.Check {
		start = time.Now()
		report, err := constraint.Check(prog)
		res.Timings.Check = time.Since(start)
		if err != nil {
			return nil, err
		}
		res.ConstraintReport = report
	}

	// Initializer/finalizer schedule (§3.2).
	start = time.Now()
	schedule, err := sched.Compute(prog)
	res.Timings.Schedule = time.Since(start)
	if err != nil {
		return nil, err
	}
	res.Schedule = schedule

	// Optional flattening (§6): merge the chosen region's sources. With
	// a cache, an unchanged region is recognized by its fingerprint
	// before merging, so a warm build skips the merge entirely.
	instances := prog.SortedInstances()
	var merged *cmini.File
	var mergedObj *obj.File // cached compile of the flattened region
	var mergedKey string
	var modular []*link.Instance
	if opts.Flatten {
		start = time.Now()
		var region []*link.Instance
		for _, inst := range instances {
			if opts.FlattenFilter == nil || opts.FlattenFilter(inst) {
				region = append(region, inst)
			} else {
				modular = append(modular, inst)
			}
		}
		if len(region) > 0 {
			if opts.Cache != nil {
				mergedKey = regionCacheKey(res.copts, region)
				mergedObj, _ = opts.Cache.lookup(mergedKey)
			}
			if mergedObj == nil {
				merged, err = flatten.Merge("flattened.c", region)
			}
		}
		res.Timings.Flatten = time.Since(start)
		if err != nil {
			return nil, err
		}
	} else {
		modular = instances
	}

	// Compile: one translation unit per source file — or one big one for
	// the flattened region — so optimization crosses component boundaries
	// exactly when flattening says it may. Translation units are
	// independent, so they compile concurrently on a bounded worker
	// pool; results keep task order, so the linked output is identical
	// at every Parallelism setting.
	start = time.Now()
	var jobs []compileJob
	if merged != nil {
		jobs = append(jobs, compileJob{label: "flattened region", file: merged, key: mergedKey})
	}
	for _, inst := range modular {
		for _, f := range inst.Files {
			jobs = append(jobs, compileJob{label: inst.Path, file: f})
		}
	}
	objs, hits, err := runCompileJobs(jobs, res.copts, opts.Cache, opts.Parallelism)
	res.Timings.CompileJobs = len(jobs)
	res.Timings.CacheHits = hits
	if mergedObj != nil { // region served from cache: count it as a hit job
		res.Timings.CompileJobs++
		res.Timings.CacheHits++
	}
	if err != nil {
		res.Timings.Compile = time.Since(start)
		return nil, err
	}
	var items []ldlink.Item
	if mergedObj != nil {
		items = append(items, ldlink.Obj(mergedObj))
	}
	for _, o := range objs {
		items = append(items, ldlink.Obj(o))
	}
	// Assembly objects link as-is for every instance, flattened or not.
	for _, inst := range instances {
		for _, o := range inst.Objects {
			items = append(items, ldlink.Obj(o))
		}
	}
	res.Timings.Compile = time.Since(start)

	// Link the image. Instance renaming made all globals unique, so only
	// ambient device symbols may remain undefined.
	start = time.Now()
	object, err := ldlink.Link(items, ldlink.Options{
		AllowUndefined: []string{link.AmbientPrefix + "*"},
	})
	res.Timings.Link = time.Since(start)
	if err != nil {
		return nil, err
	}
	res.Object = object

	// Load: place data and text, resolve addresses, fix the cost model.
	start = time.Now()
	costs := opts.Costs
	if costs == (machine.Costs{}) {
		costs = machine.DefaultCosts()
	}
	img, err := machine.Load(object, costs)
	res.Timings.Load = time.Since(start)
	if err != nil {
		return nil, err
	}
	// Link-time symbol map: lets the machine attribute runtime traps to
	// the unit instance owning the faulting function.
	img.SymbolOwner = prog.SymbolOwners()
	res.Image = img
	return res, nil
}

// compileJob is one translation unit to compile: a source file plus a
// diagnostic label, and an optional precomputed cache key (the
// flattened region's; per-file keys are hashed on the worker).
type compileJob struct {
	label string
	file  *cmini.File
	key   string
}

// runCompileJobs compiles every job, consulting cache when non-nil,
// with up to par concurrent workers (0 = GOMAXPROCS). The returned
// objects are in job order regardless of completion order, and on
// failure the error is the lowest-indexed job's — both so that the
// build is deterministic at any parallelism. The returned count is how
// many jobs were served from the cache.
func runCompileJobs(jobs []compileJob, copts compile.Options, cache *Cache, par int) ([]*obj.File, int, error) {
	if len(jobs) == 0 {
		return nil, 0, nil
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(jobs) {
		par = len(jobs)
	}
	objs := make([]*obj.File, len(jobs))
	errs := make([]error, len(jobs))
	var hits atomic.Int64
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				job := jobs[i]
				key := job.key
				if cache != nil {
					if key == "" {
						key = fileCacheKey(copts, job.file)
					}
					if o, ok := cache.lookup(key); ok {
						objs[i] = o
						hits.Add(1)
						continue
					}
				}
				o, err := compile.Compile(job.file, copts)
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", job.label, err)
					continue
				}
				if cache != nil {
					cache.store(key, o)
				}
				objs[i] = o
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, int(hits.Load()), err
		}
	}
	return objs, int(hits.Load()), nil
}

// parseUnitFiles parses every unit file in deterministic (sorted-name)
// order.
func parseUnitFiles(unitFiles map[string]string) ([]*lang.File, error) {
	names := make([]string, 0, len(unitFiles))
	for name := range unitFiles {
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*lang.File, 0, len(names))
	for _, name := range names {
		f, err := lang.Parse(name, unitFiles[name])
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// SourceOf merges the (already instance-renamed) cmini sources of the
// program's instances — all of them, or those passing filter — into one
// flattened translation unit and returns it as source text. It is the
// "-dump-flat" view: what the compiler would see under Options.Flatten.
func SourceOf(prog *link.Program, filter func(*link.Instance) bool) (string, error) {
	var region []*link.Instance
	for _, inst := range prog.SortedInstances() {
		if filter == nil || filter(inst) {
			region = append(region, inst)
		}
	}
	merged, err := flatten.Merge("flattened.c", region)
	if err != nil {
		return "", err
	}
	return cmini.Print(merged), nil
}

// compileInstance compiles one instance's C files into a single object
// (assembly objects are appended as-is) — the unit of code a dynamic
// load ships to the machine.
func compileInstance(inst *link.Instance, copts compile.Options) (*obj.File, error) {
	out := obj.NewFile(inst.Path)
	for _, f := range inst.Files {
		o, err := compile.Compile(f, copts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", inst.Path, err)
		}
		obj.Append(out, o)
	}
	for _, o := range inst.Objects {
		obj.Append(out, o.Clone())
	}
	return out, nil
}
