package build

import (
	"errors"
	"sync"

	"knit/internal/compile"
	"knit/internal/knit/constraint"
	"knit/internal/knit/link"
	"knit/internal/knit/sched"
	"knit/internal/machine"
	"knit/internal/obj"
)

// Result is a built system: the elaborated program, its initialization
// schedule, the merged object file, and the loaded machine image.
type Result struct {
	Program  *link.Program
	Schedule *sched.Schedule
	// Object is the fully linked object file (the "a.out"), e.g. for
	// assembly dumps.
	Object *obj.File
	// Image is the loaded program with the build's cost model baked in.
	Image *machine.Image
	// ConstraintReport summarizes the §4 check; nil when Options.Check
	// was off.
	ConstraintReport *constraint.Report
	// Timings is the per-phase build-time breakdown.
	Timings Timings
	// Backend is the execution engine machines created from this Result
	// run on (copied from Options.Backend). Mutable until the first
	// NewMachine; the fleet, supervise and observe layers inherit it
	// because every machine they spin up goes through NewMachine or
	// NewMachineFrom.
	Backend machine.Backend

	copts compile.Options
	// sources is the build's virtual filesystem, retained so runtime
	// fallback swaps can compile units that were not instantiated
	// statically.
	sources link.Sources

	mu   sync.Mutex
	mach map[*machine.M]*machState
}

// Observer receives build-layer lifecycle events for one machine:
// every initializer and finalizer step that runs (including rollback
// unwinds and restart re-runs), plus the higher-level "restart",
// "swap", and "unload" operations, each attributed to its unit-instance
// path. internal/knit/observe.Collector implements it; the interface
// lives here so the build layer stays free of observability imports.
type Observer interface {
	LifecycleEvent(instance, op string)
}

// machState tracks what the driver has already done on one machine, so
// Run initializes each machine exactly once and finalizes it once.
type machState struct {
	initDone bool
	finiDone bool
	loaded   []*link.Instance // dynamically loaded units, in load order
	obs      Observer
}

func (r *Result) stateOf(m *machine.M) *machState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.mach == nil {
		r.mach = map[*machine.M]*machState{}
	}
	st, ok := r.mach[m]
	if !ok {
		st = &machState{}
		r.mach[m] = st
	}
	return st
}

// SetObserver installs (or, with nil, removes) the lifecycle observer
// for one machine. Events fire on the goroutine performing the
// lifecycle operation.
func (r *Result) SetObserver(m *machine.M, obs Observer) {
	r.stateOf(m).obs = obs
}

// event reports one lifecycle step to the machine's observer, if any.
func (r *Result) event(m *machine.M, instance, op string) {
	if obs := r.stateOf(m).obs; obs != nil {
		obs.LifecycleEvent(instance, op)
	}
}

// NewMachine creates a fresh machine for the built image. Device
// builtins (console, serial, stopwatch) are the caller's to install
// before running.
func (r *Result) NewMachine() *machine.M {
	return machine.NewWith(r.Image, machine.Options{Backend: r.Backend})
}

// PostInitSnapshot builds a prototype machine, lets setup install the
// embedder's device builtins (setup may be nil), runs the program's
// initializers on it, and returns the resulting snapshot. The snapshot
// is the fleet spin-up currency: NewMachineFrom clones a ready-to-serve
// machine from it — one memory copy, no re-run of the init schedule.
// The prototype is discarded; only the snapshot survives.
func (r *Result) PostInitSnapshot(setup func(*machine.M) error) (*machine.Snapshot, error) {
	m := r.NewMachine()
	if setup != nil {
		if err := setup(m); err != nil {
			return nil, err
		}
	}
	if err := r.RunInit(m); err != nil {
		return nil, err
	}
	snap := m.Snapshot()
	r.forget(m)
	return snap, nil
}

// NewMachineFrom creates a machine whose program state is restored from
// a snapshot of this build (text and symbol tables shared read-only via
// the Image; data cloned from the snapshot). When the snapshot was taken
// after RunInit — the PostInitSnapshot case — the new machine is marked
// initialized, so Run and the supervisor skip the init schedule.
// Builtins are not part of snapshots; the caller installs its own.
func (r *Result) NewMachineFrom(snap *machine.Snapshot, initialized bool) *machine.M {
	m := machine.NewWith(r.Image, machine.Options{Backend: r.Backend})
	m.Restore(snap)
	if initialized {
		r.stateOf(m).initDone = true
	}
	return m
}

// forget drops the per-machine state entry for a discarded machine so
// short-lived prototypes do not accumulate in the state map.
func (r *Result) forget(m *machine.M) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.mach, m)
}

// Export resolves a top-level export bundle symbol to its global
// (C-level) name, suitable for machine.M.Run.
func (r *Result) Export(bundle, sym string) (string, error) {
	return r.Program.ExportSymbol(bundle, sym)
}

// RunInit runs the program's initializers on m, in schedule order. It
// is idempotent per machine: a second call (including the implicit one
// inside Run) is a no-op.
//
// Initialization is transactional. When initializer k fails, the
// finalizers of the components that did finish initializing run in
// reverse schedule order (respecting the fine-grained fini dependency
// ranks from internal/knit/sched — a component whose own initializer
// never completed is not finalized), the machine is restored to its
// pre-init snapshot, and the returned *LifecycleError names the failing
// unit instance, the initializer, and any finalizer failures collected
// during the rollback. After the error, retrying RunInit is safe: it
// starts again from a clean machine.
func (r *Result) RunInit(m *machine.M) error {
	st := r.stateOf(m)
	if st.initDone {
		return nil
	}
	snap := m.Snapshot()
	for i, name := range r.Schedule.Inits {
		_, err := m.Run(name)
		r.event(m, r.Schedule.InitSteps[i].Instance, "init")
		if err == nil {
			continue
		}
		step := r.Schedule.InitSteps[i]
		lerr := &LifecycleError{
			Op:     "init",
			Unit:   step.Instance,
			Func:   step.Func,
			Global: step.Global,
			Err:    err,
		}
		// Unwind: finalize the fully initialized components, most
		// recently ready first, collecting (not masking) any failures.
		for _, j := range r.Schedule.FinsReadyAfter(i) {
			fin := r.Schedule.FinSteps[j]
			r.event(m, fin.Instance, "fini")
			if _, ferr := m.Run(fin.Global); ferr != nil {
				lerr.RollbackErrs = append(lerr.RollbackErrs, &LifecycleError{
					Op: "fini", Unit: fin.Instance, Func: fin.Func, Global: fin.Global, Err: ferr,
				})
			}
		}
		m.Restore(snap)
		lerr.RolledBack = true
		return lerr
	}
	st.initDone = true
	return nil
}

// RunFini runs the program's finalizers on m in schedule order (reverse
// initialization readiness). Like RunInit it runs at most once per
// machine. A failing finalizer does not stop the ones after it — every
// component gets its shutdown chance — and the failures are joined with
// errors.Join, so errors.Is/errors.As reach each individual finalizer's
// *LifecycleError (and the *machine.Trap inside it) instead of callers
// string-matching a concatenated message.
func (r *Result) RunFini(m *machine.M) error {
	st := r.stateOf(m)
	if st.finiDone {
		return nil
	}
	var errs []error
	for i, name := range r.Schedule.Fins {
		_, err := m.Run(name)
		r.event(m, r.Schedule.FinSteps[i].Instance, "fini")
		if err == nil {
			continue
		}
		step := r.Schedule.FinSteps[i]
		errs = append(errs, &LifecycleError{
			Op: "fini", Unit: step.Instance, Func: step.Func, Global: step.Global, Err: err,
		})
	}
	st.finiDone = true
	return errors.Join(errs...)
}

// Run executes one exported function with full lifecycle: initializers
// first (once per machine), then the function named by the top unit's
// export bundle and symbol, then the finalizers — the same order a Knit
// kernel's generated main would use.
func (r *Result) Run(m *machine.M, bundle, sym string, args ...int64) (int64, error) {
	global, err := r.Export(bundle, sym)
	if err != nil {
		return 0, err
	}
	if err := r.RunInit(m); err != nil {
		return 0, err
	}
	v, err := m.Run(global, args...)
	if err != nil {
		return 0, err
	}
	if err := r.RunFini(m); err != nil {
		return 0, err
	}
	return v, nil
}
