package build

import (
	"fmt"
	"sync"

	"knit/internal/compile"
	"knit/internal/knit/constraint"
	"knit/internal/knit/link"
	"knit/internal/knit/sched"
	"knit/internal/machine"
	"knit/internal/obj"
)

// Result is a built system: the elaborated program, its initialization
// schedule, the merged object file, and the loaded machine image.
type Result struct {
	Program  *link.Program
	Schedule *sched.Schedule
	// Object is the fully linked object file (the "a.out"), e.g. for
	// assembly dumps.
	Object *obj.File
	// Image is the loaded program with the build's cost model baked in.
	Image *machine.Image
	// ConstraintReport summarizes the §4 check; nil when Options.Check
	// was off.
	ConstraintReport *constraint.Report
	// Timings is the per-phase build-time breakdown.
	Timings Timings

	copts compile.Options

	mu   sync.Mutex
	mach map[*machine.M]*machState
}

// machState tracks what the driver has already done on one machine, so
// Run initializes each machine exactly once and finalizes it once.
type machState struct {
	initDone bool
	finiDone bool
	loaded   []*link.Instance // dynamically loaded units, in load order
}

func (r *Result) stateOf(m *machine.M) *machState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.mach == nil {
		r.mach = map[*machine.M]*machState{}
	}
	st, ok := r.mach[m]
	if !ok {
		st = &machState{}
		r.mach[m] = st
	}
	return st
}

// NewMachine creates a fresh machine for the built image. Device
// builtins (console, serial, stopwatch) are the caller's to install
// before running.
func (r *Result) NewMachine() *machine.M {
	return machine.New(r.Image)
}

// Export resolves a top-level export bundle symbol to its global
// (C-level) name, suitable for machine.M.Run.
func (r *Result) Export(bundle, sym string) (string, error) {
	return r.Program.ExportSymbol(bundle, sym)
}

// RunInit runs the program's initializers on m, in schedule order. It is
// idempotent per machine: a second call (including the implicit one
// inside Run) is a no-op.
func (r *Result) RunInit(m *machine.M) error {
	st := r.stateOf(m)
	if st.initDone {
		return nil
	}
	for _, name := range r.Schedule.Inits {
		if _, err := m.Run(name); err != nil {
			return fmt.Errorf("knit: initializer %s: %w", name, err)
		}
	}
	st.initDone = true
	return nil
}

// RunFini runs the program's finalizers on m in schedule order (reverse
// initialization readiness). Like RunInit it runs at most once per
// machine.
func (r *Result) RunFini(m *machine.M) error {
	st := r.stateOf(m)
	if st.finiDone {
		return nil
	}
	for _, name := range r.Schedule.Fins {
		if _, err := m.Run(name); err != nil {
			return fmt.Errorf("knit: finalizer %s: %w", name, err)
		}
	}
	st.finiDone = true
	return nil
}

// Run executes one exported function with full lifecycle: initializers
// first (once per machine), then the function named by the top unit's
// export bundle and symbol, then the finalizers — the same order a Knit
// kernel's generated main would use.
func (r *Result) Run(m *machine.M, bundle, sym string, args ...int64) (int64, error) {
	global, err := r.Export(bundle, sym)
	if err != nil {
		return 0, err
	}
	if err := r.RunInit(m); err != nil {
		return 0, err
	}
	v, err := m.Run(global, args...)
	if err != nil {
		return 0, err
	}
	if err := r.RunFini(m); err != nil {
		return 0, err
	}
	return v, nil
}
