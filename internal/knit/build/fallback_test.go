package build

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"knit/internal/knit/build/faultinject"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

// Fallback fixture: the chain A <- B <- C again, but B declares a
// fallback unit BSafe (and BSafe declares BSafe2), so swap tests can
// replace B at runtime — and then replace the replacement. The bundle
// carries a poke symbol that corrupts component state on demand, giving
// restart tests something to recover from.
const fbUnits = `
bundletype Svc = { get, poke }

unit A = {
  exports [ a : Svc ];
  initializer a_init for a;
  files { "a.c" };
  rename { a.get to a_get; a.poke to a_poke; };
}
unit B = {
  imports [ a : Svc ];
  exports [ b : Svc ];
  initializer b_init for b;
  fallback BSafe;
  depends { b needs a; b_init needs a; };
  files { "b.c" };
  rename { a.get to a_get; b.get to b_get; b.poke to b_poke; };
}
unit BSafe = {
  imports [ a : Svc ];
  exports [ b : Svc ];
  initializer bsafe_init for b;
  fallback BSafe2;
  depends { b needs a; bsafe_init needs a; };
  files { "bsafe.c" };
  rename { a.get to a_get; b.get to bsafe_get; b.poke to bsafe_poke; };
}
unit BSafe2 = {
  imports [ a : Svc ];
  exports [ b : Svc ];
  initializer bsafe2_init for b;
  depends { b needs a; bsafe2_init needs a; };
  files { "bsafe2.c" };
  rename { a.get to a_get; b.get to bsafe2_get; b.poke to bsafe2_poke; };
}
unit C = {
  imports [ b : Svc ];
  exports [ c : Svc ];
  initializer c_init for c;
  depends { c needs b; c_init needs b; };
  files { "c.c" };
  rename { b.get to b_get; c.get to c_get; c.poke to c_poke; };
}
unit FChain = {
  exports [ a : Svc, b : Svc, c : Svc ];
  link {
    [a] <- A <- [];
    [b] <- B <- [a];
    [c] <- C <- [b];
  };
}
`

var fbSources = link.Sources{
	"a.c": `
static int state;
void a_init(void) { state = 10; }
int a_get(void) { return state; }
void a_poke(void) { state = 555; }
`,
	"b.c": `
int a_get(void);
static int state;
void b_init(void) { state = a_get() + 10; }
int b_get(void) { return state; }
void b_poke(void) { state = 999; }
`,
	"bsafe.c": `
int a_get(void);
static int state;
void bsafe_init(void) { state = a_get() + 100; }
int bsafe_get(void) { return state; }
void bsafe_poke(void) { state = 888; }
`,
	"bsafe2.c": `
int a_get(void);
static int state;
void bsafe2_init(void) { state = a_get() + 200; }
int bsafe2_get(void) { return state; }
void bsafe2_poke(void) { state = 777; }
`,
	"c.c": `
int b_get(void);
static int state;
void c_init(void) { state = 1; }
int c_get(void) { return b_get() + state; }
void c_poke(void) { state = 444; }
`,
}

func buildFB(t *testing.T) *Result {
	t.Helper()
	res, err := Build(Options{
		Top:       "FChain",
		UnitFiles: map[string]string{"fb.unit": fbUnits},
		Sources:   fbSources,
		Check:     true,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return res
}

func findInstance(t *testing.T, res *Result, unitName string) *link.Instance {
	t.Helper()
	for _, inst := range res.Program.Instances {
		if inst.Unit.Name == unitName {
			return inst
		}
	}
	t.Fatalf("no instance of unit %s", unitName)
	return nil
}

func runExport(t *testing.T, res *Result, m *machine.M, bundle, sym string) int64 {
	t.Helper()
	global, err := res.Export(bundle, sym)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Run(global)
	if err != nil {
		t.Fatalf("run %s.%s: %v", bundle, sym, err)
	}
	return v
}

func TestSwapFallbackRedirectsCallers(t *testing.T) {
	res := buildFB(t)
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	if got := runExport(t, res, m, "c", "get"); got != 21 {
		t.Fatalf("c.get before swap = %d, want 21", got)
	}

	instB := findInstance(t, res, "B")
	lu, err := res.SwapFallback(m, instB)
	if err != nil {
		t.Fatalf("SwapFallback: %v", err)
	}
	// C's direct call into B now lands in BSafe (a_get()+100), without
	// C being touched.
	if got := runExport(t, res, m, "c", "get"); got != 111 {
		t.Errorf("c.get after swap = %d, want 111", got)
	}
	// So does the top-level export of B's bundle.
	if got := runExport(t, res, m, "b", "get"); got != 110 {
		t.Errorf("b.get after swap = %d, want 110", got)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Fatal(err)
	}

	// Second-level swap: the active instance is now the dynamic BSafe,
	// whose declared fallback is BSafe2. After the swap the superseded
	// BSafe module can be released; the redirects all point at BSafe2.
	lu2, err := res.SwapFallback(m, lu.Instance)
	if err != nil {
		t.Fatalf("second SwapFallback: %v", err)
	}
	if got := runExport(t, res, m, "c", "get"); got != 211 {
		t.Errorf("c.get after second swap = %d, want 211", got)
	}
	if err := lu.ReleaseSuperseded(m); err != nil {
		t.Fatalf("ReleaseSuperseded: %v", err)
	}
	if got := runExport(t, res, m, "c", "get"); got != 211 {
		t.Errorf("c.get after release = %d, want 211", got)
	}
	mods := m.DynModules()
	if len(mods) != 1 || mods[0] != lu2.Name() {
		t.Errorf("live modules = %v, want only %s", mods, lu2.Name())
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapFallbackFailedInitLeavesZeroResidue(t *testing.T) {
	res := buildFB(t)
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	before := m.Snapshot()

	in := faultinject.Attach(m)
	defer in.Detach()
	// The fallback instance's renamed initializer name is not knowable
	// in advance, but it always contains the source-level name.
	in.FailEntryMatching("bsafe_init", errBoom)

	_, err := res.SwapFallback(m, findInstance(t, res, "B"))
	var lerr *LifecycleError
	if !errors.As(err, &lerr) {
		t.Fatalf("err = %T (%v), want *LifecycleError", err, err)
	}
	if lerr.Op != "swap" || !lerr.RolledBack || !errors.Is(err, errBoom) {
		t.Errorf("unexpected lifecycle error: %+v", lerr)
	}
	in.Clear()

	if got := runExport(t, res, m, "c", "get"); got != 21 {
		t.Errorf("c.get after failed swap = %d, want 21 (original B)", got)
	}
	if mods := m.DynModules(); len(mods) != 0 {
		t.Errorf("failed swap left modules loaded: %v", mods)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Errorf("invariants after failed swap: %v", err)
	}
	after := m.Snapshot()
	if !reflect.DeepEqual(before, after) {
		t.Error("failed swap left the machine state changed")
	}
}

func TestRestartInstanceResetsStateAndRerunsInits(t *testing.T) {
	res := buildFB(t)
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	runExport(t, res, m, "b", "poke")
	if got := runExport(t, res, m, "c", "get"); got != 1000 {
		t.Fatalf("c.get after poke = %d, want 1000", got)
	}
	if err := res.RestartInstance(m, findInstance(t, res, "B")); err != nil {
		t.Fatalf("RestartInstance: %v", err)
	}
	if got := runExport(t, res, m, "c", "get"); got != 21 {
		t.Errorf("c.get after restart = %d, want 21", got)
	}

	// A failing re-initializer rolls the restart back: the poked state
	// survives, nothing half-restarted remains.
	runExport(t, res, m, "b", "poke")
	in := faultinject.Attach(m)
	defer in.Detach()
	in.FailEntryMatching("b_init", errBoom)
	err := res.RestartInstance(m, findInstance(t, res, "B"))
	var lerr *LifecycleError
	if !errors.As(err, &lerr) || lerr.Op != "restart" || !lerr.RolledBack {
		t.Fatalf("err = %v, want rolled-back restart LifecycleError", err)
	}
	in.Clear()
	if got := runExport(t, res, m, "c", "get"); got != 1000 {
		t.Errorf("c.get after failed restart = %d, want 1000 (rollback)", got)
	}
}

func TestRestartScopeRestartsSubtree(t *testing.T) {
	res := buildFB(t)
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	runExport(t, res, m, "a", "poke")
	runExport(t, res, m, "b", "poke")
	runExport(t, res, m, "c", "poke")
	if err := res.RestartScope(m, "FChain"); err != nil {
		t.Fatalf("RestartScope: %v", err)
	}
	if got := runExport(t, res, m, "c", "get"); got != 21 {
		t.Errorf("c.get after scope restart = %d, want 21", got)
	}
	if err := res.RestartScope(m, "NoSuchScope"); err == nil {
		t.Error("restarting an empty scope succeeded")
	}
}

// TestRunFiniJoinsFailures: every finalizer failure is reachable with
// errors.Is/errors.As through the joined error — no string matching.
func TestRunFiniJoinsFailures(t *testing.T) {
	res := buildChain(t)
	m, _ := probeMachine(res)
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	errA := errors.New("a_fini failed")
	errC := errors.New("c_fini failed")
	in := faultinject.Attach(m)
	defer in.Detach()
	for _, step := range res.Schedule.FinSteps {
		switch step.Func {
		case "a_fini":
			in.FailEntry(step.Global, errA)
		case "c_fini":
			in.FailEntry(step.Global, errC)
		}
	}
	err := res.RunFini(m)
	if err == nil {
		t.Fatal("RunFini succeeded despite failing finalizers")
	}
	if !errors.Is(err, errA) || !errors.Is(err, errC) {
		t.Errorf("joined error loses individual failures: %v", err)
	}
	var lerr *LifecycleError
	if !errors.As(err, &lerr) {
		t.Fatalf("errors.As found no *LifecycleError in %v", err)
	}
	if !strings.Contains(lerr.Error(), "fini") {
		t.Errorf("lifecycle error %q does not mention fini", lerr)
	}
}
