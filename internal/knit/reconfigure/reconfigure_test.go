package reconfigure

import (
	"strings"
	"testing"

	"knit/internal/knit/build"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

// The fixture is a three-stage pipeline A <- B <- C. Upgrades replace B
// with B2 (same export surface and renames, so A and C keep their slots
// and globals), or break in controlled ways.
//
// The replacement unit must keep the base unit's renames for its export
// symbols: the generated global names are what unchanged consumers were
// compiled against, and keeping them is what makes the diff minimal.

func unitsText(bUnit string) string {
	return `
bundletype Svc = { get }

unit A = {
  exports [ a : Svc ];
  initializer a_init for a;
  files { "a.c" };
  rename { a.get to a_get; };
}
unit B = {
  imports [ a : Svc ];
  exports [ b : Svc ];
  initializer b_init for b;
  depends { b needs a; b_init needs a; };
  files { "b.c" };
  rename { a.get to a_get; b.get to b_get; };
}
unit B2 = {
  imports [ a : Svc ];
  exports [ b : Svc ];
  initializer b2_init for b;
  depends { b needs a; b2_init needs a; };
  files { "b2.c" };
  rename { a.get to a_get; b.get to b_get; };
}
unit B2Trap = {
  imports [ a : Svc ];
  exports [ b : Svc ];
  initializer b2trap_init for b;
  depends { b needs a; b2trap_init needs a; };
  files { "b2trap.c" };
  rename { a.get to a_get; b.get to b_get; };
}
unit B2Bad = {
  imports [ a : Svc ];
  exports [ b : Svc ];
  initializer b2bad_init for b;
  depends { b needs a; b2bad_init needs a; };
  files { "b2bad.c" };
  rename { a.get to a_get; b.get to b_get; };
}
unit C = {
  imports [ b : Svc ];
  exports [ c : Svc ];
  initializer c_init for c;
  depends { c needs b; };
  files { "c.c" };
  rename { b.get to b_get; c.get to c_get; };
}
unit Chain = {
  exports [ c : Svc ];
  link {
    [a] <- A <- [];
    [b] <- ` + bUnit + ` <- [a];
    [c] <- C <- [b];
  };
}
`
}

var testSources = link.Sources{
	"a.c": `
static int state;
void a_init(void) { state = 10; }
int a_get(void) { return state; }
`,
	"b.c": `
int a_get(void);
static int state;
void b_init(void) { state = a_get() + 10; }
int b_get(void) { return state; }
`,
	"b2.c": `
int a_get(void);
static int state;
void b2_init(void) { state = a_get() + 200; }
int b_get(void) { return state + 1; }
`,
	"b2trap.c": `
int a_get(void);
void __no_such_device(void);
static int state;
void b2trap_init(void) { state = a_get(); }
int b_get(void) { __no_such_device(); return state; }
`,
	"b2bad.c": `
int a_get(void);
void __no_such_device(void);
static int state;
void b2bad_init(void) { __no_such_device(); state = 1; }
int b_get(void) { return state; }
`,
	"c.c": `
int b_get(void);
static int state;
void c_init(void) { state = 1; }
int c_get(void) { return b_get() + state; }
`,
	"d.c": `
int b_get(void);
static int state;
void d_init(void) { state = b_get() * 2; }
int d_get(void) { return state; }
`,
}

func buildChain(t *testing.T, bUnit string) *build.Result {
	t.Helper()
	res, err := build.Build(build.Options{
		Top:       "Chain",
		UnitFiles: map[string]string{"chain.unit": unitsText(bUnit)},
		Sources:   testSources,
		Check:     true,
	})
	if err != nil {
		t.Fatalf("Build(%s): %v", bUnit, err)
	}
	return res
}

func target(bUnit string) Target {
	return Target{
		Top:       "Chain",
		UnitFiles: map[string]string{"chain.unit": unitsText(bUnit)},
		Sources:   testSources,
		Check:     true,
	}
}

func callC(t *testing.T, res *build.Result, m *machine.M) int64 {
	t.Helper()
	g, err := res.Export("c", "get")
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Run(g)
	if err != nil {
		t.Fatalf("c.get: %v", err)
	}
	return v
}

func TestDiffNoOp(t *testing.T) {
	res := buildChain(t, "B")
	plan, err := Diff(res, target("B"))
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if !plan.NoOp() {
		t.Fatalf("identical target produced a non-empty plan: %s", plan.Summary())
	}
	if len(plan.unchanged) != 3 {
		t.Fatalf("unchanged = %d, want 3 (%s)", len(plan.unchanged), plan.Summary())
	}
}

func TestDiffMinimalReplace(t *testing.T) {
	res := buildChain(t, "B")
	plan, err := Diff(res, target("B2"))
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if len(plan.replaces) != 1 || len(plan.adds) != 0 || len(plan.retires) != 0 {
		t.Fatalf("plan not minimal: %s", plan.Summary())
	}
	if got := plan.replaces[0].base.Unit.Name; got != "B" {
		t.Fatalf("replaced unit = %s, want B", got)
	}
	if got := plan.replaces[0].tgt.Unit.Name; got != "B2" {
		t.Fatalf("replacement unit = %s, want B2", got)
	}
	if len(plan.unchanged) != 2 {
		t.Fatalf("unchanged = %d, want 2 (A and C): %s", len(plan.unchanged), plan.Summary())
	}
	steps := plan.Steps()
	if len(steps) == 0 || steps[0].Op != "load" {
		t.Fatalf("steps = %+v, want load first", steps)
	}
}

// staleChainText is the fixture for initializer-staleness propagation:
// D's initializer captures b's value at boot (`d_init needs b` declares
// it), so replacing B must reload D too — interposition redirects D's
// calls to the new B, but not the state d_init already captured.
func staleChainText(bUnit string) string {
	return unitsText(bUnit) + `
unit D = {
  imports [ b : Svc ];
  exports [ d : Svc ];
  initializer d_init for d;
  depends { d needs b; d_init needs b; };
  files { "d.c" };
  rename { b.get to b_get; d.get to d_get; };
}
unit StaleChain = {
  exports [ d : Svc ];
  link {
    [a] <- A <- [];
    [b] <- ` + bUnit + ` <- [a];
    [d] <- D <- [b];
  };
}
`
}

func staleTarget(bUnit string) Target {
	return Target{
		Top:       "StaleChain",
		UnitFiles: map[string]string{"chain.unit": staleChainText(bUnit)},
		Sources:   testSources,
		Check:     true,
	}
}

func TestDiffReloadsStaleDownstreamInit(t *testing.T) {
	res, err := build.Build(build.Options{
		Top:       "StaleChain",
		UnitFiles: map[string]string{"chain.unit": staleChainText("B")},
		Sources:   testSources,
		Check:     true,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	g, err := res.Export("d", "get")
	if err != nil {
		t.Fatal(err)
	}
	// Base: a=10, b=20, d_init captured 20*2.
	if v, _ := m.Run(g); v != 40 {
		t.Fatalf("base d.get = %d, want 40", v)
	}

	plan, err := Diff(res, staleTarget("B2"))
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	// B is replaced outright; D is unchanged as a unit but its declared
	// init dependency on b promotes it to a reload. A stays put.
	if len(plan.replaces) != 2 || len(plan.unchanged) != 1 {
		t.Fatalf("plan = %s, want 2 replace (B and D) and 1 unchanged (A)", plan.Summary())
	}
	var reloadStep bool
	for _, s := range plan.Steps() {
		if s.Op == "load" && strings.Contains(s.Detail, "reload D") {
			reloadStep = true
		}
	}
	if !reloadStep {
		t.Fatalf("no reload step for D in %+v", plan.Steps())
	}

	a, err := plan.Apply(m, nil)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// B2: b = (10+200)+1 = 211; D re-initialized against it: 422. A live
	// machine that kept D's old state would answer 40.
	if v, _ := m.Run(g); v != 422 {
		t.Fatalf("upgraded d.get = %d, want 422 (cold-build value)", v)
	}

	a.Rollback()
	if err := a.VerifyRolledBack(); err != nil {
		t.Fatalf("rollback residue: %v", err)
	}
	if v, _ := m.Run(g); v != 40 {
		t.Fatalf("rolled-back d.get = %d, want 40", v)
	}
}

func TestDiffRejectsDroppedExport(t *testing.T) {
	res := buildChain(t, "B")
	bad := target("B2")
	// A target whose top no longer exports c: live callers hold its
	// resolved global.
	bad.UnitFiles["chain.unit"] = strings.Replace(bad.UnitFiles["chain.unit"],
		"exports [ c : Svc ];\n  link {\n    [a]", "link {\n    [a]", 1)
	if _, err := Diff(res, bad); err == nil {
		t.Fatal("Diff accepted a target dropping a top-level export")
	}
}

func TestApplyReplaceLiveAndRollback(t *testing.T) {
	for _, backend := range []machine.Backend{machine.BackendInterp, machine.BackendCompiled} {
		res := buildChain(t, "B")
		res.Backend = backend
		m := res.NewMachine()
		if err := res.RunInit(m); err != nil {
			t.Fatal(err)
		}
		// Base: a=10, b=20, c=21.
		if v := callC(t, res, m); v != 21 {
			t.Fatalf("[%v] base c.get = %d, want 21", backend, v)
		}
		plan, err := Diff(res, target("B2"))
		if err != nil {
			t.Fatalf("Diff: %v", err)
		}
		pre := m.Snapshot()
		a, err := plan.Apply(m, nil)
		if err != nil {
			t.Fatalf("[%v] Apply: %v", backend, err)
		}
		// B2: state = 10+200, get returns state+1, c adds 1 -> 212.
		if v := callC(t, res, m); v != 212 {
			t.Fatalf("[%v] upgraded c.get = %d, want 212", backend, v)
		}
		if len(a.Modules()) != 1 {
			t.Fatalf("[%v] modules = %v, want one", backend, a.Modules())
		}
		a.Rollback()
		if err := a.VerifyRolledBack(); err != nil {
			t.Fatalf("[%v] rollback verification: %v", backend, err)
		}
		if err := m.StateEqual(pre); err != nil {
			t.Fatalf("[%v] rollback left residue: %v", backend, err)
		}
		if v := callC(t, res, m); v != 21 {
			t.Fatalf("[%v] rolled-back c.get = %d, want 21", backend, v)
		}
	}
}

func TestApplySecondUpgradeRetiresFirst(t *testing.T) {
	res := buildChain(t, "B")
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	plan2, err := Diff(res, target("B2"))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := plan2.Apply(m, nil)
	if err != nil {
		t.Fatalf("first Apply: %v", err)
	}
	if v := callC(t, res, m); v != 212 {
		t.Fatalf("upgraded c.get = %d, want 212", v)
	}
	// Upgrade again to the same target: the second apply loads a fresh
	// module, re-points the anchors, and must unload the first's.
	a2, err := plan2.Apply(m, a1)
	if err != nil {
		t.Fatalf("second Apply: %v", err)
	}
	if v := callC(t, res, m); v != 212 {
		t.Fatalf("re-upgraded c.get = %d, want 212", v)
	}
	if len(a2.Retired) != 1 {
		t.Fatalf("second apply retired %d modules, want 1", len(a2.Retired))
	}
	mods := m.DynModules()
	if len(mods) != 1 {
		t.Fatalf("live modules = %v, want exactly the second upgrade's", mods)
	}
	if mods[0] != a2.Modules()[0] {
		t.Fatalf("live module %s is not the second upgrade's %s", mods[0], a2.Modules()[0])
	}
}

func TestApplyRevertToBaseUnloadsModule(t *testing.T) {
	res := buildChain(t, "B")
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	planUp, err := Diff(res, target("B2"))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := planUp.Apply(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reverting is just another reconfiguration: target equals the base
	// config, so the plan is a no-op against the static program, and
	// applying it with prev retires the upgrade's module and anchors.
	planBack, err := Diff(res, target("B"))
	if err != nil {
		t.Fatal(err)
	}
	if !planBack.NoOp() {
		t.Fatalf("revert plan not no-op: %s", planBack.Summary())
	}
	if _, err := planBack.Apply(m, a1); err != nil {
		t.Fatalf("revert Apply: %v", err)
	}
	if v := callC(t, res, m); v != 21 {
		t.Fatalf("reverted c.get = %d, want 21", v)
	}
	if mods := m.DynModules(); len(mods) != 0 {
		t.Fatalf("reverted machine still has modules %v", mods)
	}
}

func TestApplyFailingInitRollsBack(t *testing.T) {
	res := buildChain(t, "B")
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	pre := m.Snapshot()
	plan, err := Diff(res, target("B2Bad"))
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if _, err := plan.Apply(m, nil); err == nil {
		t.Fatal("Apply of a failing initializer succeeded")
	}
	if err := m.StateEqual(pre); err != nil {
		t.Fatalf("failed apply left residue: %v", err)
	}
	if v := callC(t, res, m); v != 21 {
		t.Fatalf("post-failure c.get = %d, want 21", v)
	}
	// The failed attempt must not leak bookkeeping that would corrupt a
	// later, good upgrade.
	good, err := Diff(res, target("B2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.Apply(m, nil); err != nil {
		t.Fatalf("Apply after failed attempt: %v", err)
	}
	if v := callC(t, res, m); v != 212 {
		t.Fatalf("c.get after recovery upgrade = %d, want 212", v)
	}
}

func TestRewireHookTracesPlanSteps(t *testing.T) {
	res := buildChain(t, "B")
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	var ops []string
	m.RewireHook = func(op, sym, target string) { ops = append(ops, op) }
	plan, err := Diff(res, target("B2"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Apply(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, op := range ops {
		counts[op]++
	}
	if counts["load"] != 1 || counts["interpose"] != 1 {
		t.Fatalf("hook saw %v, want one load and one interpose", counts)
	}
	ops = nil
	a.Rollback()
	_ = a.VerifyRolledBack()
	if len(ops) != 0 {
		t.Fatalf("snapshot rollback fired rewire ops %v; Restore is wholesale, not stepwise", ops)
	}
}
