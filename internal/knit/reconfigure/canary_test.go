package reconfigure

import (
	"testing"

	"knit/internal/knit/build"
	"knit/internal/knit/fleet"
)

// chainFleet boots a fleet whose handler serves one c.get call per item
// through the shard's supervisor.
func chainFleet(t *testing.T, res *build.Result, shards int) *fleet.Fleet[int] {
	t.Helper()
	g, err := res.Export("c", "get")
	if err != nil {
		t.Fatal(err)
	}
	fl, err := fleet.New(res, fleet.Config{Shards: shards, Batch: 8},
		func(sh *fleet.Shard[int], batch []int) error {
			for range batch {
				// The supervisor owns fault handling; a trapping call is
				// served-degraded, not a dead shard.
				sh.Sup.CallGlobal(g)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	return fl
}

// feed submits one item per flow across many flows, touching every
// shard.
func feed(fl *fleet.Fleet[int], flows int) {
	for f := 0; f < flows; f++ {
		fl.Submit(uint64(f), f)
	}
}

func testSLO() SLO {
	return SLO{MinCalls: 16, Windows: 2, PromoteAfter: 2}
}

func TestCanaryPromote(t *testing.T) {
	res := buildChain(t, "B")
	fl := chainFleet(t, res, 4)
	defer fl.Close()
	plan, err := Diff(res, target("B2"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCanary(fl, plan, 0.25, testSLO())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Canaries(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("canaries = %v, want [0]", got)
	}
	feed(fl, 64)
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	decision := Pending
	for round := 0; round < 20 && decision == Pending; round++ {
		feed(fl, 64)
		decision = c.Observe()
	}
	if decision != Promote {
		t.Fatalf("decision = %v, want promote", decision)
	}
	if err := c.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	// Every shard now serves the upgraded pipeline.
	g, _ := res.Export("c", "get")
	for _, sh := range fl.Shards() {
		sh := sh
		err := fl.Exec(sh.ID, func(sh *fleet.Shard[int]) error {
			v, err := sh.M.Run(g)
			if err != nil {
				return err
			}
			if v != 212 {
				t.Errorf("shard %d serves %d after promote, want 212", sh.ID, v)
			}
			return nil
		})
		if err != nil {
			t.Errorf("shard %d: %v", sh.ID, err)
		}
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestCanaryRollbackOnSLOBreach(t *testing.T) {
	res := buildChain(t, "B")
	fl := chainFleet(t, res, 4)
	defer fl.Close()
	// B2Trap loads and initializes cleanly but traps on every serve
	// call: exactly the regression the SLO window must catch.
	plan, err := Diff(res, target("B2Trap"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCanary(fl, plan, 0.25, testSLO())
	if err != nil {
		t.Fatal(err)
	}
	feed(fl, 64)
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	decision := Pending
	for round := 0; round < 20 && decision == Pending; round++ {
		feed(fl, 64)
		decision = c.Observe()
	}
	if decision != Rollback {
		t.Fatalf("decision = %v, want rollback", decision)
	}
	if err := c.Rollback(); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if err := c.RollbackVerified(); err != nil {
		t.Fatalf("rollback not snapshot-identical: %v", err)
	}
	// The canary shard serves the original pipeline again, with no
	// residue of the bad module.
	g, _ := res.Export("c", "get")
	err = fl.Exec(0, func(sh *fleet.Shard[int]) error {
		if mods := sh.M.DynModules(); len(mods) != 0 {
			t.Errorf("canary still has modules %v after rollback", mods)
		}
		v, err := sh.M.Run(g)
		if err != nil {
			return err
		}
		if v != 21 {
			t.Errorf("canary serves %d after rollback, want 21", v)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("canary post-rollback: %v", err)
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestCanaryStartFailureLeavesFleetUntouched(t *testing.T) {
	res := buildChain(t, "B")
	fl := chainFleet(t, res, 2)
	defer fl.Close()
	plan, err := Diff(res, target("B2Bad"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCanary(fl, plan, 0.5, testSLO())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("Start with a failing initializer succeeded")
	}
	g, _ := res.Export("c", "get")
	for _, sh := range fl.Shards() {
		err := fl.Exec(sh.ID, func(sh *fleet.Shard[int]) error {
			if mods := sh.M.DynModules(); len(mods) != 0 {
				t.Errorf("shard %d has modules %v after failed start", sh.ID, mods)
			}
			if v, err := sh.M.Run(g); err != nil || v != 21 {
				t.Errorf("shard %d serves %d, %v; want 21", sh.ID, v, err)
			}
			return nil
		})
		if err != nil {
			t.Errorf("shard %d: %v", sh.ID, err)
		}
	}
}

func TestCanaryNeedsTwoShards(t *testing.T) {
	res := buildChain(t, "B")
	fl := chainFleet(t, res, 1)
	defer fl.Close()
	plan, err := Diff(res, target("B2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCanary(fl, plan, 0.5, SLO{}); err == nil {
		t.Fatal("NewCanary accepted a one-shard fleet")
	}
}
