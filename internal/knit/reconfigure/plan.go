// Package reconfigure turns a wiring change into a safe operation on a
// running system: diff the live configuration against a target .unit
// file, compute the minimal rewire plan, apply it transactionally to a
// live machine, and (for fleets) trial it on canary shards under
// SLO-gated judgment before promoting it fleet-wide.
//
// The premise is the paper's (§2): component wiring is data. A Knit
// configuration names every instance positionally, and elaboration is
// deterministic, so two configurations can be compared slot by slot.
// Slots whose unit, sources, and wiring are byte-identical keep their
// running code and their callers; slots that changed get a freshly
// elaborated instance loaded as a dynamic module and take over via
// interposition (§2.3) — the same machinery the supervision layer uses
// for fallback swaps, now driven by an operator's target configuration
// instead of a fault.
package reconfigure

import (
	"fmt"
	"sort"
	"strings"

	"knit/internal/cmini"
	"knit/internal/knit/build"
	"knit/internal/knit/constraint"
	"knit/internal/knit/link"
	"knit/internal/knit/sched"
)

// Target is the configuration a live system should be rewired into: a
// full standalone .unit description, exactly what a cold build would
// take. The planner, not the operator, figures out what the minimal
// change is.
type Target struct {
	// Top names the top-level unit to elaborate.
	Top string
	// UnitFiles holds the target's unit-definition files.
	UnitFiles map[string]string
	// Sources is the virtual filesystem for the units' files{} sections.
	Sources link.Sources
	// Check runs the constraint checker over the target program and
	// rejects the plan on a violation — before anything touches a
	// machine.
	Check bool
}

// slotChange pairs one wiring slot's base and target instances. A nil
// base is an addition, a nil tgt a retirement, both non-nil a
// replacement. reinit marks a slot whose unit did not change but whose
// initializer-captured state would go stale — it is reloaded so the
// initializer re-runs against the new providers.
type slotChange struct {
	slot   string
	base   *link.Instance
	tgt    *link.Instance
	reinit bool
}

// exportRewire records a top-level export whose provider slot changed:
// callers holding the old resolved global must be redirected to the new
// provider's.
type exportRewire struct {
	name     string
	baseWire *link.Wire
	tgtWire  *link.Wire
}

// Plan is a validated reconfiguration: the target program, and the
// minimal slot-level change set from the base build to it. Plans are
// machine-independent — one plan applies to every shard of a fleet.
type Plan struct {
	res *build.Result
	tgt Target

	reg    *link.Registry
	prog   *link.Program
	sched  *sched.Schedule
	report *constraint.Report

	unchanged []slotChange
	replaces  []slotChange
	adds      []slotChange
	retires   []slotChange
	// ordered is replaces+adds in load order: providers before
	// consumers, so initializers meet wired imports.
	ordered       []slotChange
	exportRewires []exportRewire
}

// Step is one planned operation, for display and tracing.
type Step struct {
	Op     string // "load", "interpose", "rewire-export", "retire"
	Slot   string
	Detail string
}

// Diff parses and links the target configuration, validates it (schedule
// computation, and the §4 constraint checker when tgt.Check is set), and
// computes the minimal rewire plan from res's static program to it.
// Configurations are compared positionally: slot identity is the
// instance's position in the linking structure, so renaming a unit in
// place is a replacement, not a retire-plus-add.
func Diff(res *build.Result, tgt Target) (*Plan, error) {
	files, err := build.ParseUnitFiles(tgt.UnitFiles)
	if err != nil {
		return nil, fmt.Errorf("reconfigure: target: %w", err)
	}
	reg, err := link.NewRegistry(files...)
	if err != nil {
		return nil, fmt.Errorf("reconfigure: target: %w", err)
	}
	prog, err := link.Elaborate(reg, tgt.Top, tgt.Sources)
	if err != nil {
		return nil, fmt.Errorf("reconfigure: target: %w", err)
	}
	sc, err := sched.Compute(prog)
	if err != nil {
		return nil, fmt.Errorf("reconfigure: target: %w", err)
	}
	p := &Plan{res: res, tgt: tgt, reg: reg, prog: prog, sched: sc}
	if tgt.Check {
		report, err := constraint.Check(prog)
		if err != nil {
			return nil, fmt.Errorf("reconfigure: target rejected: %w", err)
		}
		p.report = report
	}
	if err := p.classify(); err != nil {
		return nil, err
	}
	p.propagateStaleInits()
	if err := p.checkExports(); err != nil {
		return nil, err
	}
	if err := p.order(); err != nil {
		return nil, err
	}
	return p, nil
}

// slotKey reduces an instance path to its positional identity: the
// link-line indices along the path, with unit names stripped. Two
// configurations with the same linking shape produce the same slot keys
// regardless of which units fill the slots.
func slotKey(path string) string {
	segs := strings.Split(path, "/")
	for i, seg := range segs {
		if j := strings.IndexByte(seg, '#'); j >= 0 {
			segs[i] = seg[j:]
		} else {
			segs[i] = ""
		}
	}
	return strings.Join(segs, "/")
}

// classify buckets every slot of base and target into unchanged /
// replace / add / retire.
func (p *Plan) classify() error {
	baseBy := map[string]*link.Instance{}
	for _, inst := range p.res.Program.Instances {
		baseBy[slotKey(inst.Path)] = inst
	}
	tgtBy := map[string]*link.Instance{}
	for _, inst := range p.prog.Instances {
		tgtBy[slotKey(inst.Path)] = inst
	}
	slots := make([]string, 0, len(baseBy)+len(tgtBy))
	for s := range baseBy {
		slots = append(slots, s)
	}
	for s := range tgtBy {
		if _, ok := baseBy[s]; !ok {
			slots = append(slots, s)
		}
	}
	sort.Strings(slots)
	for _, s := range slots {
		b, t := baseBy[s], tgtBy[s]
		switch {
		case b != nil && t == nil:
			p.retires = append(p.retires, slotChange{slot: s, base: b})
		case b == nil && t != nil:
			p.adds = append(p.adds, slotChange{slot: s, tgt: t})
		case sameInstance(b, t):
			p.unchanged = append(p.unchanged, slotChange{slot: s, base: b, tgt: t})
		default:
			if err := exportCompatible(b, t); err != nil {
				return fmt.Errorf("reconfigure: slot %s (%s -> %s): %w",
					slotName(s, b), b.Unit.Name, t.Unit.Name, err)
			}
			p.replaces = append(p.replaces, slotChange{slot: s, base: b, tgt: t})
		}
	}
	return nil
}

// sameInstance reports whether a slot's base and target instances are
// interchangeable without touching the machine: same unit, byte-equal
// renamed sources and assembly objects, the same wiring (by provider
// slot), and the same initializer and export surface. Byte-equality of
// the renamed sources doubles as an instance-ID check — the IDs are in
// the generated names — which is exactly the property that lets
// unchanged callers keep their resolved globals.
func sameInstance(b, t *link.Instance) bool {
	if b.Unit.Name != t.Unit.Name || b.ID != t.ID {
		return false
	}
	if len(b.Files) != len(t.Files) || len(b.Objects) != len(t.Objects) {
		return false
	}
	for i := range b.Files {
		if cmini.Print(b.Files[i]) != cmini.Print(t.Files[i]) {
			return false
		}
	}
	for i := range b.Objects {
		if b.Objects[i].Name != t.Objects[i].Name {
			return false
		}
	}
	if len(b.ImportWires) != len(t.ImportWires) {
		return false
	}
	for local, bw := range b.ImportWires {
		tw, ok := t.ImportWires[local]
		if !ok || bw == nil || tw == nil {
			return false
		}
		if bw.Bundle != tw.Bundle || bw.Type != tw.Type {
			return false
		}
		if slotKey(bw.Provider.Path) != slotKey(tw.Provider.Path) {
			return false
		}
	}
	if len(b.Inits) != len(t.Inits) {
		return false
	}
	for i := range b.Inits {
		bi, ti := b.Inits[i], t.Inits[i]
		if bi.Func != ti.Func || bi.GlobalName != ti.GlobalName ||
			bi.Bundle != ti.Bundle || bi.Finalizer != ti.Finalizer {
			return false
		}
	}
	if len(b.ExportSyms) != len(t.ExportSyms) {
		return false
	}
	for local, bs := range b.ExportSyms {
		ts, ok := t.ExportSyms[local]
		if !ok || len(bs) != len(ts) {
			return false
		}
		for sym, g := range bs {
			if ts[sym] != g {
				return false
			}
		}
	}
	return true
}

// propagateStaleInits promotes unchanged slots whose initializers would
// hold stale state after the change. Interposition redirects calls, not
// data: an instance whose initializer declares a dependency (a `needs`
// clause) on an import whose provider is — transitively — a changed
// slot captured its boot-time state against the old providers, and
// keeping it would make the live machine diverge from a cold build of
// the target. Reloading it re-runs the initializer against the new
// wiring. Taint flows through init-less slots too: a pure transform
// between the change and the stale initializer carries new values at
// init time even though the transform itself needs no reload.
func (p *Plan) propagateStaleInits() {
	if len(p.replaces) == 0 && len(p.adds) == 0 {
		return
	}
	// tainted: the slot serves different values once the change lands —
	// it is changed itself or transitively imports from a changed slot.
	// Fixpoint iteration keeps wiring cycles exact.
	tainted := map[string]bool{}
	for _, c := range p.replaces {
		tainted[c.slot] = true
	}
	for _, c := range p.adds {
		tainted[c.slot] = true
	}
	for again := true; again; {
		again = false
		for _, inst := range p.prog.Instances {
			s := slotKey(inst.Path)
			if tainted[s] {
				continue
			}
			for _, w := range inst.ImportWires {
				if w != nil && tainted[slotKey(w.Provider.Path)] {
					tainted[s] = true
					again = true
					break
				}
			}
		}
	}
	kept := p.unchanged[:0]
	for _, c := range p.unchanged {
		if staleInit(c.tgt, tainted) {
			c.reinit = true
			p.replaces = append(p.replaces, c)
			continue
		}
		kept = append(kept, c)
	}
	p.unchanged = kept
	sort.Slice(p.replaces, func(i, j int) bool { return p.replaces[i].slot < p.replaces[j].slot })
}

// staleInit reports whether inst has a non-finalizer initializer whose
// declared needs reach a tainted provider.
func staleInit(inst *link.Instance, tainted map[string]bool) bool {
	for _, in := range inst.Inits {
		if in.Finalizer {
			continue
		}
		for _, local := range in.Needs {
			if w := inst.ImportWires[local]; w != nil && tainted[slotKey(w.Provider.Path)] {
				return true
			}
		}
	}
	return false
}

// exportCompatible checks that t can take over b's callers: every export
// bundle of b exists on t with the same bundle type and the same symbol
// set. (The renamed globals may differ — interposition bridges those —
// but a caller-visible symbol with no replacement would strand calls.)
func exportCompatible(b, t *link.Instance) error {
	for _, exp := range b.Unit.Exports {
		var ttype string
		for _, texp := range t.Unit.Exports {
			if texp.Local == exp.Local {
				ttype = texp.Type
			}
		}
		if ttype == "" {
			return fmt.Errorf("replacement drops export bundle %q", exp.Local)
		}
		if ttype != exp.Type {
			return fmt.Errorf("replacement export %q has bundle type %s, base has %s",
				exp.Local, ttype, exp.Type)
		}
		for sym := range b.ExportSyms[exp.Local] {
			if _, ok := t.ExportSyms[exp.Local][sym]; !ok {
				return fmt.Errorf("replacement export bundle %q drops symbol %q", exp.Local, sym)
			}
		}
	}
	return nil
}

// checkExports validates the target's top-level export surface against
// the base's — live callers hold resolved globals of the base exports,
// so an export may move to a new provider (a rewire) but not vanish or
// change type; and a target inventing exports has no live callers to
// serve, which almost always indicates a wrong Top.
func (p *Plan) checkExports() error {
	for name, bw := range p.res.Program.Exports {
		tw, ok := p.prog.Exports[name]
		if !ok {
			return fmt.Errorf("reconfigure: target drops top-level export %q", name)
		}
		if tw.Type != bw.Type {
			return fmt.Errorf("reconfigure: top-level export %q has bundle type %s, base has %s",
				name, tw.Type, bw.Type)
		}
		if slotKey(tw.Provider.Path) != slotKey(bw.Provider.Path) || tw.Bundle != bw.Bundle {
			p.exportRewires = append(p.exportRewires, exportRewire{name: name, baseWire: bw, tgtWire: tw})
		}
	}
	for name := range p.prog.Exports {
		if _, ok := p.res.Program.Exports[name]; !ok {
			return fmt.Errorf("reconfigure: target adds top-level export %q the live program lacks", name)
		}
	}
	sort.Slice(p.exportRewires, func(i, j int) bool {
		return p.exportRewires[i].name < p.exportRewires[j].name
	})
	return nil
}

// order topo-sorts the new instances (replaces + adds) by their wiring:
// providers load, initialize, and take over their callers before
// consumers. The dependency is transitive through unchanged slots — a
// consumer's initializer may read a changed provider through an
// untouched intermediate, whose calls resolve via the provider's
// redirect, so the provider must be interposed first. Mutually
// recursive changes cannot be loaded one-by-one and are rejected
// (replace the enclosing scope instead).
func (p *Plan) order() error {
	newBy := map[string]slotChange{}
	for _, c := range p.replaces {
		newBy[c.slot] = c
	}
	for _, c := range p.adds {
		newBy[c.slot] = c
	}
	slots := make([]string, 0, len(newBy))
	for s := range newBy {
		slots = append(slots, s)
	}
	sort.Strings(slots)
	deps := map[string][]string{}
	indeg := map[string]int{}
	for _, s := range slots {
		for _, ps := range sortedKeys(upstreamNew(newBy[s].tgt, newBy)) {
			if ps == s {
				continue
			}
			deps[ps] = append(deps[ps], s)
			indeg[s]++
		}
	}
	queue := make([]string, 0, len(slots))
	for _, s := range slots {
		if indeg[s] == 0 {
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		p.ordered = append(p.ordered, newBy[s])
		next := append([]string(nil), deps[s]...)
		sort.Strings(next)
		for _, t := range next {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(p.ordered) != len(slots) {
		var cyc []string
		for _, s := range slots {
			if indeg[s] > 0 {
				cyc = append(cyc, slotName(s, newBy[s].tgt))
			}
		}
		return fmt.Errorf("reconfigure: changed slots are mutually recursive (%s); replace the enclosing scope instead",
			strings.Join(cyc, ", "))
	}
	return nil
}

// upstreamNew returns the changed slots reachable upstream of inst in
// the target wiring, traversing unchanged intermediates. Traversal
// stops at a changed slot: topological transitivity covers anything
// deeper.
func upstreamNew(inst *link.Instance, newBy map[string]slotChange) map[string]bool {
	out := map[string]bool{}
	seen := map[string]bool{}
	var walk func(*link.Instance)
	walk = func(i *link.Instance) {
		for _, w := range i.ImportWires {
			if w == nil {
				continue
			}
			ps := slotKey(w.Provider.Path)
			if seen[ps] {
				continue
			}
			seen[ps] = true
			if _, isNew := newBy[ps]; isNew {
				out[ps] = true
				continue
			}
			walk(w.Provider)
		}
	}
	walk(inst)
	return out
}

// NoOp reports whether the plan changes nothing.
func (p *Plan) NoOp() bool {
	return len(p.replaces) == 0 && len(p.adds) == 0 &&
		len(p.retires) == 0 && len(p.exportRewires) == 0
}

// Program returns the elaborated target program (for inspection and for
// cold-build comparison in tests).
func (p *Plan) Program() *link.Program { return p.prog }

// Schedule returns the target program's init/fini schedule.
func (p *Plan) Schedule() *sched.Schedule { return p.sched }

// ConstraintReport returns the target's constraint report (nil unless
// Target.Check was set).
func (p *Plan) ConstraintReport() *constraint.Report { return p.report }

// Steps lists the planned operations in execution order: each slot's
// load is followed immediately by the interpositions that hand it the
// old instance's callers, mirroring Apply.
func (p *Plan) Steps() []Step {
	var out []Step
	for _, c := range p.ordered {
		switch {
		case c.reinit:
			out = append(out, Step{Op: "load", Slot: c.base.Path,
				Detail: fmt.Sprintf("reload %s (initializer depends on replaced providers)", c.base.Unit.Name)})
		case c.base != nil:
			out = append(out, Step{Op: "load", Slot: c.base.Path,
				Detail: fmt.Sprintf("replace %s with %s", c.base.Unit.Name, c.tgt.Unit.Name)})
		default:
			out = append(out, Step{Op: "load", Slot: c.tgt.Path,
				Detail: "add " + c.tgt.Unit.Name})
			continue
		}
		for _, local := range sortedKeys(c.base.ExportSyms) {
			for _, sym := range sortedKeys(c.base.ExportSyms[local]) {
				out = append(out, Step{Op: "interpose", Slot: c.base.Path,
					Detail: fmt.Sprintf("%s -> replacement %s.%s", c.base.ExportSyms[local][sym], local, sym)})
			}
		}
	}
	for _, rw := range p.exportRewires {
		out = append(out, Step{Op: "rewire-export", Slot: rw.name,
			Detail: fmt.Sprintf("provider %s -> %s", rw.baseWire.Provider.Path, rw.tgtWire.Provider.Path)})
	}
	for _, c := range p.retires {
		out = append(out, Step{Op: "retire", Slot: c.base.Path, Detail: "no longer wired"})
	}
	return out
}

// Summary is a one-line account of the plan's shape.
func (p *Plan) Summary() string {
	return fmt.Sprintf("%d unchanged, %d replace, %d add, %d retire, %d export rewires",
		len(p.unchanged), len(p.replaces), len(p.adds), len(p.retires), len(p.exportRewires))
}

func slotName(slot string, inst *link.Instance) string {
	if inst != nil {
		return inst.Path
	}
	return slot
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
