package reconfigure

import (
	"fmt"

	"knit/internal/knit/build"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

// Applied is one plan's footprint on one machine: the pre-apply
// snapshot, the modules it loaded, and the interposition anchors it
// installed. It is the currency of rollback — and the prev argument of
// the next Apply, which retires a superseded upgrade's modules once the
// newer one has taken over.
type Applied struct {
	// Snap is the machine's state from immediately before the first
	// plan step — what Rollback restores.
	Snap *machine.Snapshot

	plan *Plan
	m    *machine.M

	// mods are the modules this apply loaded, in load order, with their
	// slots aligned index-wise.
	mods  []*build.LoadedUnit
	slots []string
	// Anchors are the interposed symbols (redirect sources) this apply
	// installed: the base globals every live caller still calls.
	Anchors []string
	// Retired are the previous apply's modules this one unloaded; a
	// rollback must re-adopt them because restoring Snap resurrects
	// them on the machine.
	Retired []*build.LoadedUnit

	rolledBack bool
}

// Apply executes the plan on m transactionally: snapshot, then load the
// new instances in dependency order (their initializers run as they
// load), interposing each replaced slot's export globals as soon as its
// replacement is in — then rewire moved top-level exports and retire
// what the plan and the previous apply superseded.
// Any failure restores the pre-apply snapshot — zero residue, verifiable
// with machine.M.StateEqual — and returns the step's error.
//
// prev is the Applied of the upgrade currently serving on m (nil for a
// first upgrade): its interpositions are superseded by this plan's and
// its modules are unloaded once nothing routes to them.
func (p *Plan) Apply(m *machine.M, prev *Applied) (*Applied, error) {
	if prev != nil && prev.rolledBack {
		prev = nil
	}
	res := p.res
	live := res.LiveProgram(m)

	// Elaborate every new instance against the live program, wiring
	// imports to the base instances that keep their slots and to the
	// replacements elaborated before it. Each instance joins the live
	// program as it is born so IDs keep advancing.
	newLive := map[string]*link.Instance{}
	insts := make([]*link.Instance, 0, len(p.ordered))
	for _, c := range p.ordered {
		env := map[string]*link.Wire{}
		for local, w := range c.tgt.ImportWires {
			if w == nil {
				return nil, fmt.Errorf("reconfigure: slot %s: import %q unwired in target", c.slot, local)
			}
			ps := slotKey(w.Provider.Path)
			provider := newLive[ps]
			if provider == nil {
				provider = baseForSlot(res.Program, ps)
			}
			if provider == nil {
				return nil, fmt.Errorf("reconfigure: slot %s: import %q wired to unknown slot %s",
					c.slot, local, ps)
			}
			env[local] = &link.Wire{Provider: provider, Bundle: w.Bundle, Type: w.Type}
		}
		inst, err := link.ElaborateDynamicEnv(p.reg, live, c.tgt.Unit.Name, p.tgt.Sources, env)
		if err != nil {
			return nil, fmt.Errorf("reconfigure: slot %s: %w", c.slot, err)
		}
		live.Instances = append(live.Instances, inst)
		newLive[c.slot] = inst
		insts = append(insts, inst)
	}

	a := &Applied{plan: p, m: m}
	a.Snap = m.Snapshot()
	fail := func(err error) (*Applied, error) {
		m.Restore(a.Snap)
		for _, lu := range a.mods {
			res.ForgetModule(m, lu)
		}
		for _, lu := range a.Retired {
			res.AdoptModule(m, lu)
		}
		return nil, err
	}

	// Load and take over slot by slot, in dependency order. Each replaced
	// slot's exports are interposed immediately after its load, before
	// the next slot loads: a later initializer may read the changed slot
	// through an unchanged intermediate (whose calls resolve via the
	// redirect, not the env wiring), and must see the new code, not the
	// old. Interpose re-points redirects whose target is the anchored
	// symbol, so a second upgrade overriding a first lands cleanly and
	// frees the first's modules.
	for i, c := range p.ordered {
		lu, err := res.LoadElaborated(m, insts[i])
		if err != nil {
			return fail(fmt.Errorf("reconfigure: load %s: %w", c.slot, err))
		}
		a.mods = append(a.mods, lu)
		a.slots = append(a.slots, c.slot)
		if c.base == nil {
			continue
		}
		repl := newLive[c.slot]
		for _, local := range sortedKeys(c.base.ExportSyms) {
			for _, sym := range sortedKeys(c.base.ExportSyms[local]) {
				from := c.base.ExportSyms[local][sym]
				to := repl.ExportSyms[local][sym]
				if err := m.Interpose(from, to); err != nil {
					return fail(fmt.Errorf("reconfigure: interpose %s: %w", c.slot, err))
				}
				a.Anchors = append(a.Anchors, from)
			}
		}
		res.Notify(m, c.base.Path, "swap")
	}
	for _, rw := range p.exportRewires {
		ps := slotKey(rw.tgtWire.Provider.Path)
		provider := newLive[ps]
		if provider == nil {
			provider = baseForSlot(res.Program, ps)
		}
		if provider == nil {
			return fail(fmt.Errorf("reconfigure: export %q rewired to unknown slot %s", rw.name, ps))
		}
		for _, sym := range sortedKeys(rw.baseWire.Provider.ExportSyms[rw.baseWire.Bundle]) {
			from := rw.baseWire.Provider.ExportSyms[rw.baseWire.Bundle][sym]
			to, ok := provider.ExportSyms[rw.tgtWire.Bundle][sym]
			if !ok {
				return fail(fmt.Errorf("reconfigure: export %q: new provider lacks symbol %q", rw.name, sym))
			}
			if from == to {
				continue
			}
			if err := m.Interpose(from, to); err != nil {
				return fail(fmt.Errorf("reconfigure: rewire export %q: %w", rw.name, err))
			}
			a.Anchors = append(a.Anchors, from)
		}
	}

	// Retire the superseded upgrade: drop its anchors that this plan did
	// not re-anchor (Interpose has already re-pointed the shared ones),
	// then unload its modules newest-first. Unpose must come first —
	// a module stays pinned while any redirect targets its code.
	if prev != nil {
		anchored := map[string]bool{}
		for _, s := range a.Anchors {
			anchored[s] = true
		}
		for _, s := range prev.Anchors {
			if !anchored[s] {
				m.Unpose(s)
			}
		}
		for i := len(prev.mods) - 1; i >= 0; i-- {
			lu := prev.mods[i]
			if err := lu.Unload(m); err != nil {
				return fail(fmt.Errorf("reconfigure: retire %s: %w", lu.Name(), err))
			}
			a.Retired = append(a.Retired, lu)
		}
	}
	// Statically linked instances that lost their wiring stay in the
	// image (static text cannot be reclaimed) but no longer serve any
	// caller; report the retirement so ledgers show it.
	for _, c := range p.retires {
		res.Notify(m, c.base.Path, "retire")
	}
	return a, nil
}

// Rollback restores the machine to its pre-apply snapshot and squares
// the build layer's books: the modules this apply loaded are forgotten,
// the ones it retired are re-adopted (the snapshot resurrected them).
// Idempotent.
func (a *Applied) Rollback() {
	if a.rolledBack {
		return
	}
	a.m.Restore(a.Snap)
	res := a.plan.res
	for _, lu := range a.mods {
		res.ForgetModule(a.m, lu)
	}
	for _, lu := range a.Retired {
		res.AdoptModule(a.m, lu)
	}
	for _, c := range a.plan.ordered {
		if c.base != nil {
			res.Notify(a.m, c.base.Path, "rollback")
		}
	}
	a.rolledBack = true
}

// RolledBack reports whether Rollback ran.
func (a *Applied) RolledBack() bool { return a.rolledBack }

// VerifyRolledBack certifies a rollback left zero residue: the
// machine's program state is compared word-for-word against the
// pre-apply snapshot.
func (a *Applied) VerifyRolledBack() error {
	if !a.rolledBack {
		return fmt.Errorf("reconfigure: apply is still live")
	}
	return a.m.StateEqual(a.Snap)
}

// Modules returns the loaded modules' machine-level names, in load
// order.
func (a *Applied) Modules() []string {
	out := make([]string, len(a.mods))
	for i, lu := range a.mods {
		out[i] = lu.Name()
	}
	return out
}

// baseForSlot finds the static program's instance in a slot.
func baseForSlot(prog *link.Program, slot string) *link.Instance {
	for _, inst := range prog.Instances {
		if slotKey(inst.Path) == slot {
			return inst
		}
	}
	return nil
}
