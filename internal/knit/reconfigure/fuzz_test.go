package reconfigure

import (
	"fmt"
	"strings"
	"testing"

	"knit/internal/knit/build"
	"knit/internal/knit/link"
)

// FuzzReconfigure is the differential oracle for the whole
// reconfiguration path: two generated wirings of the same component
// vocabulary become a running base and an upgrade target; the diffed
// plan applied to the live machine must be observationally identical to
// a cold build of the target, and rolling it back must restore the base
// observation with zero machine residue.

// fuzzUnits is the component vocabulary: a source A, three pipeline
// transforms with one export surface (V2 adds an initializer — the
// lifecycle path), and a driver C.
const fuzzUnits = `
bundletype Svc = { get }

unit A = {
  exports [ out : Svc ];
  initializer a_init for out;
  files { "a.c" };
  rename { out.get to out_get; };
}
unit V0 = {
  imports [ in : Svc ];
  exports [ out : Svc ];
  depends { out needs in; };
  files { "v0.c" };
  rename { in.get to in_get; out.get to out_get; };
}
unit V1 = {
  imports [ in : Svc ];
  exports [ out : Svc ];
  depends { out needs in; };
  files { "v1.c" };
  rename { in.get to in_get; out.get to out_get; };
}
unit V2 = {
  imports [ in : Svc ];
  exports [ out : Svc ];
  initializer v2_init for out;
  depends { out needs in; v2_init needs in; };
  files { "v2.c" };
  rename { in.get to in_get; out.get to out_get; };
}
unit C = {
  imports [ in : Svc ];
  exports [ c : Svc ];
  depends { c needs in; };
  files { "cdrv.c" };
  rename { in.get to in_get; c.get to c_get; };
}
`

var fuzzSources = link.Sources{
	"a.c": `
static int s;
void a_init(void) { s = 3; }
int out_get(void) { return s; }
`,
	"v0.c": `
int in_get(void);
int out_get(void) { return in_get() * 2 + 1; }
`,
	"v1.c": `
int in_get(void);
int out_get(void) { return in_get() * 3 + 7; }
`,
	"v2.c": `
int in_get(void);
static int state;
void v2_init(void) { state = in_get() + 5; }
int out_get(void) { return state * 2; }
`,
	"cdrv.c": `
int in_get(void);
int c_get(void) { return in_get(); }
`,
}

// chainText wires A through len(vs) transform stages (variant vs[i]%3
// at stage i) into C. Identical vs produce byte-identical unit text —
// the NoOp case.
func chainText(vs []byte) string {
	var b strings.Builder
	b.WriteString(fuzzUnits)
	b.WriteString("unit Chain = {\n  exports [ c : Svc ];\n  link {\n    [s0] <- A <- [];\n")
	prev := "s0"
	for i, v := range vs {
		slot := fmt.Sprintf("s%d", i+1)
		fmt.Fprintf(&b, "    [%s] <- V%d <- [%s];\n", slot, v%3, prev)
		prev = slot
	}
	fmt.Fprintf(&b, "    [c] <- C <- [%s];\n  };\n}\n", prev)
	return b.String()
}

func clampStages(vs []byte) []byte {
	if len(vs) > 4 {
		vs = vs[:4]
	}
	return vs
}

func FuzzReconfigure(f *testing.F) {
	// Seeds: no-op, single-stage swap, deep swap, lifecycle variant in
	// and out, and depth changes in both directions.
	f.Add([]byte{0}, []byte{0})
	f.Add([]byte{0}, []byte{1})
	f.Add([]byte{0, 1, 2}, []byte{2, 1, 0})
	f.Add([]byte{1, 1}, []byte{1, 2})
	f.Add([]byte{2, 0}, []byte{0, 0})
	f.Add([]byte{0, 1}, []byte{0, 1, 2})
	f.Add([]byte{0, 1, 2, 0}, []byte{0, 1})
	f.Fuzz(func(t *testing.T, baseCfg, tgtCfg []byte) {
		baseCfg, tgtCfg = clampStages(baseCfg), clampStages(tgtCfg)

		res, err := build.Build(build.Options{
			Top:       "Chain",
			UnitFiles: map[string]string{"chain.unit": chainText(baseCfg)},
			Sources:   fuzzSources,
			Check:     true,
		})
		if err != nil {
			t.Fatalf("base build %v: %v", baseCfg, err)
		}
		g, err := res.Export("c", "get")
		if err != nil {
			t.Fatal(err)
		}
		m := res.NewMachine()
		v0, err := res.Run(m, "c", "get")
		if err != nil {
			t.Fatalf("base run %v: %v", baseCfg, err)
		}

		plan, err := Diff(res, Target{
			Top:       "Chain",
			UnitFiles: map[string]string{"chain.unit": chainText(tgtCfg)},
			Sources:   fuzzSources,
			Check:     true,
		})
		if err != nil {
			// A rejected plan is a legitimate outcome (the planner may
			// refuse shapes it cannot rewire minimally) — but never for
			// same-shape configurations, which always diff slot by slot.
			if len(baseCfg) == len(tgtCfg) {
				t.Fatalf("diff %v -> %v rejected: %v", baseCfg, tgtCfg, err)
			}
			t.Skip()
		}

		a, err := plan.Apply(m, nil)
		if err != nil {
			t.Fatalf("apply %v -> %v: %v", baseCfg, tgtCfg, err)
		}
		live, err := m.Run(g)
		if err != nil {
			t.Fatalf("upgraded run %v -> %v: %v", baseCfg, tgtCfg, err)
		}

		cold, err := build.Build(build.Options{
			Top:       "Chain",
			UnitFiles: map[string]string{"chain.unit": chainText(tgtCfg)},
			Sources:   fuzzSources,
			Check:     true,
		})
		if err != nil {
			t.Fatalf("cold build %v: %v", tgtCfg, err)
		}
		want, err := cold.Run(cold.NewMachine(), "c", "get")
		if err != nil {
			t.Fatalf("cold run %v: %v", tgtCfg, err)
		}
		if live != want {
			t.Fatalf("upgrade %v -> %v: live machine returns %d, cold build of target returns %d",
				baseCfg, tgtCfg, live, want)
		}

		// And back: rollback must restore the base observation with zero
		// machine residue.
		a.Rollback()
		if err := a.VerifyRolledBack(); err != nil {
			t.Fatalf("rollback residue %v -> %v: %v", baseCfg, tgtCfg, err)
		}
		back, err := m.Run(g)
		if err != nil {
			t.Fatalf("post-rollback run: %v", err)
		}
		if back != v0 {
			t.Fatalf("rollback %v -> %v: machine returns %d, base returned %d",
				baseCfg, tgtCfg, back, v0)
		}
	})
}
