package reconfigure

import (
	"errors"
	"fmt"
	"sort"

	"knit/internal/knit/fleet"
	"knit/internal/knit/observe"
)

// SLO gates a canary trial: the canary shards' windowed trap rate and
// cycle tail are judged against the stable shards' over the same
// interval. It is the shared observe.SLO judge — the same
// implementation the overload layer's circuit breakers trip on — with
// the canaries as candidate and the stable shards as baseline.
type SLO = observe.SLO

// Decision is a canary judgment.
type Decision int

const (
	// Pending: not enough evidence yet; keep serving and observing.
	Pending Decision = iota
	// Promote: the canaries held the SLO long enough; roll the plan out
	// to the stable shards.
	Promote
	// Rollback: the canaries broke the SLO; restore their pre-apply
	// snapshots.
	Rollback
)

func (d Decision) String() string {
	switch d {
	case Promote:
		return "promote"
	case Rollback:
		return "rollback"
	default:
		return "pending"
	}
}

// Canary runs one plan through a canary trial on a fleet: Start applies
// it to the lowest-numbered fraction of shards under a fail-fast trial
// policy, Observe advances the SLO windows and judges, Promote and
// Rollback finish the trial either way. Drive it from the fleet's
// producer goroutine, interleaved with Submit — every shard touch goes
// through fleet.Exec, so upgrades apply between batches, never inside
// one.
type Canary[T any] struct {
	fl   *fleet.Fleet[T]
	plan *Plan
	slo  SLO

	canaries []int
	stables  []int
	applied  map[int]*Applied
	wins     map[int]*observe.Window
	// respawns is each canary's fleet respawn count at Start. A respawn
	// during the trial means the upgraded machine died beyond the
	// supervisor's recovery and the fleet rebooted it from the
	// pre-upgrade snapshot — an automatic rollback, and one the trap
	// window alone could miss (the reboot retires the collector).
	respawns map[int]int

	healthy    int
	done       bool
	verifyErrs []error
}

// NewCanary plans a trial of plan on fraction of fl's shards (at least
// one canary, at least one stable shard — fleets of one shard cannot
// canary; upgrade them directly with Plan.Apply).
func NewCanary[T any](fl *fleet.Fleet[T], plan *Plan, fraction float64, slo SLO) (*Canary[T], error) {
	n := len(fl.Shards())
	if n < 2 {
		return nil, fmt.Errorf("reconfigure: canary needs >= 2 shards, fleet has %d", n)
	}
	k := int(fraction * float64(n))
	if k < 1 {
		k = 1
	}
	if k >= n {
		k = n - 1
	}
	c := &Canary[T]{
		fl:       fl,
		plan:     plan,
		slo:      slo.WithDefaults(),
		applied:  map[int]*Applied{},
		wins:     map[int]*observe.Window{},
		respawns: map[int]int{},
	}
	for id := 0; id < n; id++ {
		if id < k {
			c.canaries = append(c.canaries, id)
		} else {
			c.stables = append(c.stables, id)
		}
	}
	return c, nil
}

// Canaries returns the shard IDs under trial.
func (c *Canary[T]) Canaries() []int { return append([]int(nil), c.canaries...) }

// AppliedOn returns the plan's footprint on one shard (nil if the plan
// never applied there).
func (c *Canary[T]) AppliedOn(id int) *Applied { return c.applied[id] }

// Start applies the plan to the canary shards and re-bases every
// shard's SLO window at this instant, so judgment sees only
// post-upgrade traffic. Canaries run under Policy.ForCanary for the
// trial. If any canary fails to apply, the ones already upgraded are
// rolled back and Start returns the error — the fleet is untouched.
func (c *Canary[T]) Start() error {
	for _, id := range c.canaries {
		id := id
		err := c.fl.Exec(id, func(sh *fleet.Shard[T]) error {
			a, err := c.plan.Apply(sh.M, nil)
			if err != nil {
				return err
			}
			c.applied[id] = a
			sh.Sup.SetPolicy(c.fl.ShardPolicy(id).ForCanary())
			w := observe.NewWindow(c.slo.Windows)
			w.Reset(sh.Col.Totals())
			c.wins[id] = w
			c.respawns[id] = sh.Respawns()
			return nil
		})
		if err != nil {
			c.rollbackCanaries()
			c.done = true
			return fmt.Errorf("reconfigure: canary shard %d: %w", id, err)
		}
	}
	for _, id := range c.stables {
		id := id
		c.fl.Exec(id, func(sh *fleet.Shard[T]) error {
			w := observe.NewWindow(c.slo.Windows)
			w.Reset(sh.Col.Totals())
			c.wins[id] = w
			return nil
		})
	}
	return nil
}

// Observe advances every shard's window one tick and judges the trial.
// Call it at a steady cadence between Submit batches; act on the
// returned decision with Promote or Rollback (Pending means keep
// going).
func (c *Canary[T]) Observe() Decision {
	if c.done {
		return Pending
	}
	var canS, stS observe.Sample
	died := false
	for id, win := range c.wins {
		id, win := id, win
		c.fl.Exec(id, func(sh *fleet.Shard[T]) error {
			win.Advance(sh.Col.Totals())
			if base, ok := c.respawns[id]; ok && sh.Respawns() > base {
				died = true
			}
			return nil
		})
	}
	if died {
		return Rollback
	}
	for _, id := range c.canaries {
		canS.Add(c.wins[id].Current())
	}
	for _, id := range c.stables {
		stS.Add(c.wins[id].Current())
	}
	switch c.slo.Judge(canS, stS) {
	case observe.Breaching:
		return Rollback
	case observe.Inconclusive:
		return Pending
	}
	c.healthy++
	if c.healthy >= c.slo.PromoteAfter {
		return Promote
	}
	return Pending
}

// Promote rolls the plan out to the stable shards and restores the
// canaries' original policies. If a stable shard fails to apply — it
// should not, the canaries proved the plan — every shard is rolled
// back, canaries included, and the error is returned.
func (c *Canary[T]) Promote() error {
	if c.done {
		return fmt.Errorf("reconfigure: trial already finished")
	}
	for _, id := range c.stables {
		id := id
		err := c.fl.Exec(id, func(sh *fleet.Shard[T]) error {
			a, err := c.plan.Apply(sh.M, nil)
			if err != nil {
				return err
			}
			c.applied[id] = a
			return nil
		})
		if err != nil {
			c.rollbackAll()
			c.done = true
			return fmt.Errorf("reconfigure: promote to shard %d: %w", id, err)
		}
	}
	for _, id := range c.canaries {
		id := id
		c.fl.Exec(id, func(sh *fleet.Shard[T]) error {
			sh.Sup.SetPolicy(c.fl.ShardPolicy(id))
			return nil
		})
	}
	c.done = true
	return nil
}

// Rollback restores every canary shard to its pre-apply snapshot,
// verifies the restore left zero residue, and restores the original
// policies. The verification result is available via RollbackVerified.
func (c *Canary[T]) Rollback() error {
	if c.done {
		return fmt.Errorf("reconfigure: trial already finished")
	}
	c.rollbackCanaries()
	c.done = true
	return errors.Join(c.verifyErrs...)
}

// RollbackVerified returns the snapshot-identity verification errors
// collected during rollback (nil when every restored shard matched its
// pre-apply snapshot word for word).
func (c *Canary[T]) RollbackVerified() error { return errors.Join(c.verifyErrs...) }

func (c *Canary[T]) rollbackCanaries() {
	ids := make([]int, 0, len(c.applied))
	for id := range c.applied {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		id := id
		c.fl.Exec(id, func(sh *fleet.Shard[T]) error {
			a := c.applied[id]
			a.Rollback()
			if err := a.VerifyRolledBack(); err != nil {
				c.verifyErrs = append(c.verifyErrs, fmt.Errorf("shard %d: %w", id, err))
			}
			sh.Sup.SetPolicy(c.fl.ShardPolicy(id))
			sh.Sup.Reset()
			return nil
		})
	}
}

func (c *Canary[T]) rollbackAll() { c.rollbackCanaries() }
