// Package lang implements the Knit unit-definition language: bundle
// types, atomic and compound units, dependency and rename declarations,
// initializers/finalizers, properties, and constraints — the concrete
// syntax of the paper's Section 3.3 and Section 4.
package lang

import (
	"fmt"
	"strings"
)

// Tok is a lexical token kind in the unit language.
type Tok int

// Token kinds.
const (
	EOF Tok = iota
	IDENT
	STRING

	LBRACE // {
	RBRACE // }
	LBRACK // [
	RBRACK // ]
	LPAREN // (
	RPAREN // )
	SEMI   // ;
	COMMA  // ,
	COLON  // :
	DOT    // .
	PLUS   // +
	EQ     // =
	LE     // <=
	GE     // >=
	LT     // <
	LARROW // <-

	// Keywords.
	KwBundletype
	KwFlags
	KwUnit
	KwImports
	KwExports
	KwDepends
	KwNeeds
	KwFiles
	KwWith
	KwRename
	KwTo
	KwInitializer
	KwFinalizer
	KwFor
	KwConstraints
	KwLink
	KwProperty
	KwType
	KwFallback
)

var tokNames = map[Tok]string{
	EOF: "EOF", IDENT: "identifier", STRING: "string",
	LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]", LPAREN: "(",
	RPAREN: ")", SEMI: ";", COMMA: ",", COLON: ":", DOT: ".", PLUS: "+",
	EQ: "=", LE: "<=", GE: ">=", LT: "<", LARROW: "<-",
	KwBundletype: "bundletype", KwFlags: "flags", KwUnit: "unit",
	KwImports: "imports", KwExports: "exports", KwDepends: "depends",
	KwNeeds: "needs", KwFiles: "files", KwWith: "with", KwRename: "rename",
	KwTo: "to", KwInitializer: "initializer", KwFinalizer: "finalizer",
	KwFor: "for", KwConstraints: "constraints", KwLink: "link",
	KwProperty: "property", KwType: "type", KwFallback: "fallback",
}

func (t Tok) String() string {
	if s, ok := tokNames[t]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(t))
}

var keywords = map[string]Tok{
	"bundletype": KwBundletype, "flags": KwFlags, "unit": KwUnit,
	"imports": KwImports, "exports": KwExports, "depends": KwDepends,
	"needs": KwNeeds, "files": KwFiles, "with": KwWith, "rename": KwRename,
	"to": KwTo, "initializer": KwInitializer, "finalizer": KwFinalizer,
	"for": KwFor, "constraints": KwConstraints, "link": KwLink,
	"property": KwProperty, "type": KwType, "fallback": KwFallback,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is one lexed token.
type Token struct {
	Kind Tok
	Lit  string
	Pos  Pos
}

// Error is a lexical or syntax error in a unit file.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// lex tokenizes a unit file.
func lex(file, src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	pos := func() Pos { return Pos{File: file, Line: line, Col: col} }
	adv := func() byte {
		c := src[i]
		i++
		if c == '\n' {
			line++
			col = 1
		} else {
			col++
		}
		return c
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv()
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				adv()
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			p := pos()
			adv()
			adv()
			closed := false
			for i < len(src) {
				if src[i] == '*' && i+1 < len(src) && src[i+1] == '/' {
					adv()
					adv()
					closed = true
					break
				}
				adv()
			}
			if !closed {
				return nil, &Error{Pos: p, Msg: "unterminated comment"}
			}
		case c == '"':
			p := pos()
			adv()
			var b strings.Builder
			closed := false
			for i < len(src) {
				ch := adv()
				if ch == '"' {
					closed = true
					break
				}
				if ch == '\n' {
					return nil, &Error{Pos: p, Msg: "newline in string"}
				}
				b.WriteByte(ch)
			}
			if !closed {
				return nil, &Error{Pos: p, Msg: "unterminated string"}
			}
			toks = append(toks, Token{Kind: STRING, Lit: b.String(), Pos: p})
		case isIdentStart(c):
			p := pos()
			start := i
			for i < len(src) && isIdentCont(src[i]) {
				adv()
			}
			word := src[start:i]
			if kw, ok := keywords[word]; ok {
				toks = append(toks, Token{Kind: kw, Lit: word, Pos: p})
			} else {
				toks = append(toks, Token{Kind: IDENT, Lit: word, Pos: p})
			}
		default:
			p := pos()
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch {
			case two == "<-":
				adv()
				adv()
				toks = append(toks, Token{Kind: LARROW, Pos: p})
			case two == "<=":
				adv()
				adv()
				toks = append(toks, Token{Kind: LE, Pos: p})
			case two == ">=":
				adv()
				adv()
				toks = append(toks, Token{Kind: GE, Pos: p})
			default:
				var k Tok
				switch c {
				case '{':
					k = LBRACE
				case '}':
					k = RBRACE
				case '[':
					k = LBRACK
				case ']':
					k = RBRACK
				case '(':
					k = LPAREN
				case ')':
					k = RPAREN
				case ';':
					k = SEMI
				case ',':
					k = COMMA
				case ':':
					k = COLON
				case '.':
					k = DOT
				case '+':
					k = PLUS
				case '=':
					k = EQ
				case '<':
					k = LT
				default:
					return nil, &Error{Pos: p, Msg: fmt.Sprintf("unexpected character %q", c)}
				}
				adv()
				toks = append(toks, Token{Kind: k, Pos: p})
			}
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
