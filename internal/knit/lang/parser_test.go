package lang

import (
	"strings"
	"testing"
)

// paperExample is (nearly verbatim) the code from the paper's Figure 5.
const paperExample = `
bundletype Serve = { serve_web }
bundletype Stdio = { fopen, fprintf }
flags CFlags = { "-Ioskit/include" }

unit Web = {
  imports [ serveFile : Serve,
             serveCGI : Serve ];
  exports [ serveWeb : Serve ];
  depends {
     serveWeb needs (serveFile + serveCGI);
  };
  files { "web.c" } with flags CFlags;
  rename {
     serveFile.serve_web to serve_file;
     serveCGI.serve_web to serve_cgi;
  };
}

unit Log = {
  imports [ serveWeb : Serve,
               stdio : Stdio ];
  exports [ serveLog : Serve ];
  initializer open_log for serveLog;
  finalizer close_log for serveLog;
  depends {
     (open_log + close_log) needs stdio;
     serveLog needs (serveWeb + stdio);
  };
  files { "log.c" } with flags CFlags;
  rename {
     serveWeb.serve_web to serve_unlogged;
     serveLog.serve_web to serve_logged;
  };
}

unit LogServe = {
  imports [ serveFile : Serve,
            serveCGI : Serve,
            stdio : Stdio ];
  exports [ serveLog : Serve ];
  link {
    [serveWeb] <- Web <- [serveFile, serveCGI];
    [serveLog] <- Log <- [serveWeb, stdio];
  };
}
`

func TestParsePaperExample(t *testing.T) {
	f, err := Parse("web.unit", paperExample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.BundleTypes) != 2 {
		t.Fatalf("bundletypes = %d, want 2", len(f.BundleTypes))
	}
	if f.BundleTypes[1].Name != "Stdio" || len(f.BundleTypes[1].Syms) != 2 {
		t.Errorf("Stdio = %+v", f.BundleTypes[1])
	}
	if len(f.FlagSets) != 1 || f.FlagSets[0].Values[0] != "-Ioskit/include" {
		t.Errorf("flags = %+v", f.FlagSets)
	}
	if len(f.Units) != 3 {
		t.Fatalf("units = %d, want 3", len(f.Units))
	}

	web := f.Units[0]
	if web.Name != "Web" || web.IsCompound() {
		t.Errorf("Web: %+v", web)
	}
	if len(web.Imports) != 2 || web.Imports[0].Local != "serveFile" || web.Imports[0].Type != "Serve" {
		t.Errorf("Web imports: %+v", web.Imports)
	}
	if len(web.Depends) != 1 {
		t.Fatalf("Web depends: %+v", web.Depends)
	}
	d := web.Depends[0]
	if d.LHS[0] != "serveWeb" || len(d.RHS) != 2 {
		t.Errorf("Web dep: %+v", d)
	}
	if web.FlagsRef != "CFlags" || web.Files[0] != "web.c" {
		t.Errorf("Web files: %v with %q", web.Files, web.FlagsRef)
	}
	if len(web.Renames) != 2 || web.Renames[0].Bundle != "serveFile" ||
		web.Renames[0].Sym != "serve_web" || web.Renames[0].To != "serve_file" {
		t.Errorf("Web renames: %+v", web.Renames)
	}

	log := f.Units[1]
	if len(log.Inits) != 2 {
		t.Fatalf("Log inits: %+v", log.Inits)
	}
	if log.Inits[0].Func != "open_log" || log.Inits[0].Bundle != "serveLog" || log.Inits[0].Finalizer {
		t.Errorf("initializer: %+v", log.Inits[0])
	}
	if log.Inits[1].Func != "close_log" || !log.Inits[1].Finalizer {
		t.Errorf("finalizer: %+v", log.Inits[1])
	}
	if len(log.Depends) != 2 || len(log.Depends[0].LHS) != 2 {
		t.Errorf("Log depends: %+v", log.Depends)
	}

	ls := f.Units[2]
	if !ls.IsCompound() || len(ls.Links) != 2 {
		t.Fatalf("LogServe: %+v", ls)
	}
	l0 := ls.Links[0]
	if l0.Unit != "Web" || l0.Outs[0] != "serveWeb" || len(l0.Ins) != 2 {
		t.Errorf("link 0: %+v", l0)
	}
	l1 := ls.Links[1]
	if l1.Unit != "Log" || l1.Ins[0] != "serveWeb" || l1.Ins[1] != "stdio" {
		t.Errorf("link 1: %+v", l1)
	}
}

func TestParseProperties(t *testing.T) {
	src := `
property context
type NoContext
type ProcessContext < NoContext

unit Locks = {
  imports [ sched : Sched ];
  exports [ lock : Lock ];
  files { "lock.c" };
  constraints {
    context(lock) = NoContext;
    context(exports) <= context(imports);
    context(sched) >= ProcessContext;
  };
}
`
	f, err := Parse("p.unit", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Properties) != 1 {
		t.Fatalf("properties: %+v", f.Properties)
	}
	pr := f.Properties[0]
	if pr.Name != "context" || len(pr.Values) != 2 {
		t.Fatalf("property: %+v", pr)
	}
	if pr.Values[1].Name != "ProcessContext" || pr.Values[1].Below != "NoContext" {
		t.Errorf("value: %+v", pr.Values[1])
	}
	u := f.Units[0]
	if len(u.Constraints) != 3 {
		t.Fatalf("constraints: %+v", u.Constraints)
	}
	c0 := u.Constraints[0]
	if c0.LHS.Prop != "context" || c0.LHS.Arg != "lock" || c0.Op != OpEq || c0.RHS.Value != "NoContext" {
		t.Errorf("c0: %+v", c0)
	}
	c1 := u.Constraints[1]
	if c1.LHS.Arg != ExportsKeyword || c1.Op != OpLe || c1.RHS.Arg != ImportsKeyword {
		t.Errorf("c1: %+v", c1)
	}
	c2 := u.Constraints[2]
	if c2.Op != OpGe || c2.RHS.Value != "ProcessContext" {
		t.Errorf("c2: %+v", c2)
	}
}

func TestParseDependsWildcardForms(t *testing.T) {
	src := `
unit U = {
  imports [ a : T, b : T ];
  exports [ x : T, y : T ];
  depends {
    exports needs imports;
    x + y needs a;
  };
  files { "u.c" };
}
`
	f, err := Parse("u.unit", src)
	if err != nil {
		t.Fatal(err)
	}
	u := f.Units[0]
	if u.Depends[0].LHS[0] != ExportsKeyword || u.Depends[0].RHS[0] != ImportsKeyword {
		t.Errorf("wildcard dep: %+v", u.Depends[0])
	}
	if len(u.Depends[1].LHS) != 2 {
		t.Errorf("multi lhs: %+v", u.Depends[1])
	}
}

func TestParseFallbackClause(t *testing.T) {
	src := `
unit Classifier = {
  imports [ out : Push ];
  exports [ in : Push ];
  fallback ClassifierSafe;
  files { "cl.c" };
}
`
	f, err := Parse("u.unit", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Units[0].Fallback; got != "ClassifierSafe" {
		t.Errorf("Fallback = %q, want ClassifierSafe", got)
	}
	// And the printed form must carry it through a round trip.
	printed := Print(f)
	if !strings.Contains(printed, "fallback ClassifierSafe;") {
		t.Errorf("printed form lacks fallback clause:\n%s", printed)
	}
	f2, err := Parse("u.unit", printed)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if f2.Units[0].Fallback != "ClassifierSafe" {
		t.Error("fallback lost in round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"type before property", "type X", "before any 'property'"},
		{"empty bundletype", "bundletype T = { }", "is empty"},
		{"dup bundle sym", "bundletype T = { a, a }", "duplicate symbol"},
		{"files and link", `unit U = { files { "a.c" }; link { [x] <- V <- []; }; }`, "both files and link"},
		{"value-value constraint", `unit U = { constraints { A = B; }; }`, "two literal values"},
		{"bad section", `unit U = { bogus; }`, "expected unit section"},
		{"unterminated string", `flags F = { "abc`, "unterminated string"},
		{"bad char", `unit U @ {}`, "unexpected character"},
		{"missing needs", `unit U = { depends { a b; }; }`, "needs"},
		{"dup fallback", `unit U = { fallback A; fallback B; }`, "more than one fallback"},
		{"self fallback", `unit U = { fallback U; }`, "names itself"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("t.unit", c.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestParseCommentsAndPositions(t *testing.T) {
	src := "// header comment\n/* block */\nbundletype T = { a }\nunit U = { files { \"u.c\" }; }\n"
	f, err := Parse("c.unit", src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Units[0].Pos.Line != 4 {
		t.Errorf("unit pos = %v, want line 4", f.Units[0].Pos)
	}
	_, err = Parse("c.unit", "unit U = {\n  files { 3 };\n}")
	if err == nil || !strings.Contains(err.Error(), "c.unit:2") {
		t.Errorf("error should carry position line 2: %v", err)
	}
}
