package lang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickParserNeverPanics throws random token soup at the parser: it
// must always return (possibly an error), never panic — the robustness a
// configuration language needs when users hand-edit unit files.
func TestQuickParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pieces := []string{
		"unit", "bundletype", "flags", "property", "type", "imports",
		"exports", "depends", "needs", "files", "rename", "to", "link",
		"initializer", "finalizer", "for", "constraints", "with",
		"{", "}", "[", "]", "(", ")", ";", ",", ":", ".", "+", "=", "<=",
		">=", "<", "<-", "X", "Y", "serve_web", `"a.c"`, "Serve", "//c\n",
		"/*b*/", "\n",
	}
	fn := func() bool {
		var b strings.Builder
		n := r.Intn(60)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
			b.WriteString(" ")
		}
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("parser panicked on %q: %v", b.String(), p)
			}
		}()
		_, _ = Parse("fuzz.unit", b.String())
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickLexerNeverPanics: arbitrary bytes.
func TestQuickLexerNeverPanics(t *testing.T) {
	fn := func(data []byte) bool {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("lexer panicked on %q: %v", data, p)
			}
		}()
		_, _ = Parse("fuzz.unit", string(data))
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// ---- printer round-trip property ----

// genFile builds a random but well-formed unit file AST: a layer of
// atomic units (files, renames, initializers, depends, constraint
// annotations) under layers of compound units that link the layer
// below, so the printer's every production is exercised, including
// nested compound structure.
func genFile(r *rand.Rand) *File {
	ident := func(prefix string, i int) string {
		return prefix + string(rune('A'+i%26)) + string(rune('0'+i/26%10))
	}
	f := &File{Name: "gen.unit"}
	ntypes := 1 + r.Intn(3)
	for i := 0; i < ntypes; i++ {
		syms := []string{ident("s", i)}
		if r.Intn(2) == 0 {
			syms = append(syms, ident("t", i))
		}
		f.BundleTypes = append(f.BundleTypes, &BundleType{Name: ident("BT", i), Syms: syms})
	}
	f.Properties = append(f.Properties, &Property{
		Name:       "ctx",
		Propagates: r.Intn(2) == 0,
		Values: []PropValue{
			{Name: "Hi"},
			{Name: "Lo", Below: "Hi"},
		},
	})
	bt := func(i int) string { return f.BundleTypes[i%ntypes].Name }

	// Atomic layer.
	natomic := 1 + r.Intn(3)
	for i := 0; i < natomic; i++ {
		u := &Unit{Name: ident("Atom", i)}
		exp := ident("e", i)
		u.Exports = []Binding{{Local: exp, Type: bt(i)}}
		if r.Intn(2) == 0 {
			imp := ident("i", i)
			u.Imports = []Binding{{Local: imp, Type: bt(i + 1)}}
			u.Depends = append(u.Depends, DepClause{LHS: []string{exp}, RHS: []string{imp}})
			if r.Intn(2) == 0 {
				u.Depends = append(u.Depends, DepClause{
					LHS: []string{ExportsKeyword}, RHS: []string{ImportsKeyword}})
			}
		}
		if r.Intn(2) == 0 {
			u.Inits = append(u.Inits, InitDecl{Func: ident("init", i), Bundle: exp})
		}
		if r.Intn(3) == 0 {
			u.Inits = append(u.Inits, InitDecl{Func: ident("fini", i), Bundle: exp, Finalizer: true})
		}
		if r.Intn(3) == 0 {
			u.Fallback = ident("Safe", i)
		}
		switch r.Intn(3) {
		case 0:
			u.Constraints = append(u.Constraints, Constraint{
				LHS: Ref{Prop: "ctx", Arg: exp}, Op: OpEq, RHS: Ref{Value: "Hi"}})
		case 1:
			u.Constraints = append(u.Constraints, Constraint{
				LHS: Ref{Prop: "ctx", Arg: ExportsKeyword},
				Op:  ConstraintOp(r.Intn(3)),
				RHS: Ref{Prop: "ctx", Arg: ImportsKeyword}})
		}
		u.Files = []string{ident("f", i) + ".c"}
		if r.Intn(2) == 0 {
			u.Renames = append(u.Renames, Rename{
				Bundle: exp, Sym: f.BundleTypes[i%ntypes].Syms[0], To: ident("impl_", i)})
		}
		f.Units = append(f.Units, u)
	}

	// Compound layers: each links units from the layer below.
	prevLayer := f.Units
	depth := 1 + r.Intn(2)
	for d := 0; d < depth; d++ {
		u := &Unit{Name: ident("Comp", d)}
		var locals []string
		for i, sub := range prevLayer {
			out := ident("o", d*8+i)
			line := LinkLine{Outs: []string{out}, Unit: sub.Name}
			for range sub.Imports {
				in := out // wire imports to an already-bound local, or self
				if len(locals) > 0 {
					in = locals[r.Intn(len(locals))]
				}
				line.Ins = append(line.Ins, in)
			}
			u.Links = append(u.Links, line)
			locals = append(locals, out)
		}
		u.Exports = []Binding{{Local: locals[len(locals)-1], Type: bt(d)}}
		f.Units = append(f.Units, u)
		prevLayer = []*Unit{u}
	}
	return f
}

// TestQuickPrintParseRoundTrip: for generated files, Print is a fixed
// point of parse∘print — parsing the canonical form and reprinting it
// reproduces it byte for byte. This pins down both directions: the
// printer emits only parseable syntax, and the parser loses nothing the
// printer records.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		f := genFile(r)
		s1 := Print(f)
		p1, err := Parse("gen.unit", s1)
		if err != nil {
			t.Fatalf("case %d: canonical form does not reparse: %v\n%s", i, err, s1)
		}
		s2 := Print(p1)
		if s1 != s2 {
			t.Fatalf("case %d: round trip not stable\n-- first print --\n%s\n-- second print --\n%s", i, s1, s2)
		}
		// And once more: the reparsed AST must itself round-trip.
		p2, err := Parse("gen.unit", s2)
		if err != nil {
			t.Fatalf("case %d: second reparse failed: %v", i, err)
		}
		if s3 := Print(p2); s3 != s2 {
			t.Fatalf("case %d: third print diverged", i)
		}
	}
}
