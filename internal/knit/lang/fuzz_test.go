package lang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickParserNeverPanics throws random token soup at the parser: it
// must always return (possibly an error), never panic — the robustness a
// configuration language needs when users hand-edit unit files.
func TestQuickParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pieces := []string{
		"unit", "bundletype", "flags", "property", "type", "imports",
		"exports", "depends", "needs", "files", "rename", "to", "link",
		"initializer", "finalizer", "for", "constraints", "with",
		"{", "}", "[", "]", "(", ")", ";", ",", ":", ".", "+", "=", "<=",
		">=", "<", "<-", "X", "Y", "serve_web", `"a.c"`, "Serve", "//c\n",
		"/*b*/", "\n",
	}
	fn := func() bool {
		var b strings.Builder
		n := r.Intn(60)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
			b.WriteString(" ")
		}
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("parser panicked on %q: %v", b.String(), p)
			}
		}()
		_, _ = Parse("fuzz.unit", b.String())
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickLexerNeverPanics: arbitrary bytes.
func TestQuickLexerNeverPanics(t *testing.T) {
	fn := func(data []byte) bool {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("lexer panicked on %q: %v", data, p)
			}
		}()
		_, _ = Parse("fuzz.unit", string(data))
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
