package lang

import (
	"reflect"
	"strings"
	"testing"
)

// stripPos removes positions so parsed files can be compared
// structurally.
func stripPos(f *File) {
	zero := Pos{}
	for _, bt := range f.BundleTypes {
		bt.Pos = zero
	}
	for _, fs := range f.FlagSets {
		fs.Pos = zero
	}
	for _, p := range f.Properties {
		p.Pos = zero
		for i := range p.Values {
			p.Values[i].Pos = zero
		}
	}
	for _, u := range f.Units {
		u.Pos = zero
		for i := range u.Imports {
			u.Imports[i].Pos = zero
		}
		for i := range u.Exports {
			u.Exports[i].Pos = zero
		}
		for i := range u.Depends {
			u.Depends[i].Pos = zero
		}
		for i := range u.Renames {
			u.Renames[i].Pos = zero
		}
		for i := range u.Inits {
			u.Inits[i].Pos = zero
		}
		for i := range u.Constraints {
			u.Constraints[i].Pos = zero
			u.Constraints[i].LHS.Pos = zero
			u.Constraints[i].RHS.Pos = zero
		}
		for i := range u.Links {
			u.Links[i].Pos = zero
		}
	}
	f.Name = ""
}

func roundTrip(t *testing.T, src string) {
	t.Helper()
	f1, err := Parse("a.unit", src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	printed := Print(f1)
	f2, err := Parse("b.unit", printed)
	if err != nil {
		t.Fatalf("reparse printed: %v\n%s", err, printed)
	}
	stripPos(f1)
	stripPos(f2)
	if !reflect.DeepEqual(f1, f2) {
		t.Errorf("round trip changed the file.\nprinted:\n%s\nwant: %#v\ngot:  %#v",
			printed, f1, f2)
	}
}

func TestPrintRoundTripPaperExample(t *testing.T) {
	roundTrip(t, paperExample)
}

func TestPrintRoundTripProperties(t *testing.T) {
	roundTrip(t, `
property context
type NoContext
type ProcessContext < NoContext
unit Locks = {
  imports [ sched : Sched ];
  exports [ lock : Lock ];
  initializer lk_init for lock;
  finalizer lk_fini for lock;
  depends {
    exports needs imports;
    lk_init needs sched;
  };
  constraints {
    context(lock) = NoContext;
    context(exports) <= context(imports);
    ProcessContext <= context(sched);
  };
  files { "lock.c", "lock2.c" } with flags CF;
}
flags CF = { "-O", "-Ithere" }
`)
}

func TestPrintRoundTripGeneratedRouter(t *testing.T) {
	// The Clack config compiler emits unit text; make sure printing any
	// parse of such text is stable too (wildcards, multi-out links).
	roundTrip(t, `
bundletype Push = { push }
bundletype Stat = { counter_read }
unit Counter = {
  imports [ out : Push ];
  exports [ in : Push, stat : Stat ];
  depends { (in + stat) needs out; };
  files { "counter.c" };
  rename { out.push to push_out; };
}
unit Top = {
  exports [ in : Push ];
  link {
    [sink] <- Counter <- [sink];
  };
}
`)
}

func TestPrintIsParseable(t *testing.T) {
	f, err := Parse("p.unit", paperExample)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(f)
	for _, want := range []string{"bundletype Serve", "unit LogServe",
		"[serveWeb] <- Web <- [serveFile, serveCGI];",
		"rename {", "serveWeb.serve_web to serve_unlogged;"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
}
