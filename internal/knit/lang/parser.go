package lang

import "fmt"

// Parse parses a unit-language file.
func Parse(file, src string) (*File, error) {
	toks, err := lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, file: file}
	out := &File{Name: file}
	for !p.atEOF() {
		switch p.cur().Kind {
		case KwBundletype:
			bt, err := p.bundleType()
			if err != nil {
				return nil, err
			}
			out.BundleTypes = append(out.BundleTypes, bt)
		case KwFlags:
			fs, err := p.flagSet()
			if err != nil {
				return nil, err
			}
			out.FlagSets = append(out.FlagSets, fs)
		case KwProperty:
			pr, err := p.property()
			if err != nil {
				return nil, err
			}
			out.Properties = append(out.Properties, pr)
		case KwType:
			if len(out.Properties) == 0 {
				return nil, p.errf("'type' declaration before any 'property'")
			}
			pv, err := p.propValue()
			if err != nil {
				return nil, err
			}
			last := out.Properties[len(out.Properties)-1]
			last.Values = append(last.Values, pv)
		case KwUnit:
			u, err := p.unit()
			if err != nil {
				return nil, err
			}
			out.Units = append(out.Units, u)
		default:
			return nil, p.errf("expected declaration, found %s", p.describe())
		}
	}
	return out, nil
}

type parser struct {
	toks []Token
	pos  int
	file string
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) cur() Token {
	if p.atEOF() {
		pp := Pos{File: p.file, Line: 1, Col: 1}
		if len(p.toks) > 0 {
			pp = p.toks[len(p.toks)-1].Pos
		}
		return Token{Kind: EOF, Pos: pp}
	}
	return p.toks[p.pos]
}

func (p *parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *parser) accept(k Tok) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k Tok) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errf("expected %q, found %s", k.String(), p.describe())
	}
	p.pos++
	return t, nil
}

func (p *parser) describe() string {
	t := p.cur()
	if t.Kind == IDENT || t.Kind == STRING {
		return fmt.Sprintf("%q", t.Lit)
	}
	return fmt.Sprintf("%q", t.Kind.String())
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// identLike accepts an identifier or a keyword used as a name (bundle
// symbols like "type" would be unusual but harmless).
func (p *parser) ident() (Token, error) {
	return p.expect(IDENT)
}

func (p *parser) bundleType() (*BundleType, error) {
	pos := p.next().Pos // bundletype
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(EQ); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	bt := &BundleType{Pos: pos, Name: name.Lit}
	seen := map[string]bool{}
	for !p.accept(RBRACE) {
		sym, err := p.ident()
		if err != nil {
			return nil, err
		}
		if seen[sym.Lit] {
			return nil, &Error{Pos: sym.Pos, Msg: fmt.Sprintf("duplicate symbol %q in bundletype %s", sym.Lit, name.Lit)}
		}
		seen[sym.Lit] = true
		bt.Syms = append(bt.Syms, sym.Lit)
		if !p.accept(COMMA) {
			if _, err := p.expect(RBRACE); err != nil {
				return nil, err
			}
			break
		}
	}
	if len(bt.Syms) == 0 {
		return nil, &Error{Pos: pos, Msg: fmt.Sprintf("bundletype %s is empty", name.Lit)}
	}
	return bt, nil
}

func (p *parser) flagSet() (*FlagSet, error) {
	pos := p.next().Pos // flags
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(EQ); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	fs := &FlagSet{Pos: pos, Name: name.Lit}
	for !p.accept(RBRACE) {
		s, err := p.expect(STRING)
		if err != nil {
			return nil, err
		}
		fs.Values = append(fs.Values, s.Lit)
		if !p.accept(COMMA) {
			if _, err := p.expect(RBRACE); err != nil {
				return nil, err
			}
			break
		}
	}
	return fs, nil
}

func (p *parser) property() (*Property, error) {
	pos := p.next().Pos // property
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	pr := &Property{Pos: pos, Name: name.Lit}
	if p.cur().Kind == IDENT && p.cur().Lit == "propagates" {
		p.next()
		pr.Propagates = true
	}
	return pr, nil
}

func (p *parser) propValue() (PropValue, error) {
	pos := p.next().Pos // type
	name, err := p.ident()
	if err != nil {
		return PropValue{}, err
	}
	pv := PropValue{Pos: pos, Name: name.Lit}
	if p.accept(LT) {
		below, err := p.ident()
		if err != nil {
			return PropValue{}, err
		}
		pv.Below = below.Lit
	}
	return pv, nil
}

func (p *parser) unit() (*Unit, error) {
	pos := p.next().Pos // unit
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(EQ); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	u := &Unit{Pos: pos, Name: name.Lit}
	for !p.accept(RBRACE) {
		if p.atEOF() {
			return nil, &Error{Pos: pos, Msg: fmt.Sprintf("unterminated unit %s", name.Lit)}
		}
		if err := p.unitSection(u); err != nil {
			return nil, err
		}
	}
	if len(u.Files) > 0 && len(u.Links) > 0 {
		return nil, &Error{Pos: pos, Msg: fmt.Sprintf("unit %s has both files and link sections", name.Lit)}
	}
	return u, nil
}

func (p *parser) unitSection(u *Unit) error {
	switch p.cur().Kind {
	case KwImports:
		p.next()
		bs, err := p.bindings()
		if err != nil {
			return err
		}
		u.Imports = append(u.Imports, bs...)
	case KwExports:
		p.next()
		bs, err := p.bindings()
		if err != nil {
			return err
		}
		u.Exports = append(u.Exports, bs...)
	case KwDepends:
		p.next()
		if _, err := p.expect(LBRACE); err != nil {
			return err
		}
		for !p.accept(RBRACE) {
			dc, err := p.depClause()
			if err != nil {
				return err
			}
			u.Depends = append(u.Depends, dc)
		}
		if _, err := p.expect(SEMI); err != nil {
			return err
		}
	case KwFiles:
		p.next()
		if _, err := p.expect(LBRACE); err != nil {
			return err
		}
		for !p.accept(RBRACE) {
			s, err := p.expect(STRING)
			if err != nil {
				return err
			}
			u.Files = append(u.Files, s.Lit)
			if !p.accept(COMMA) {
				if _, err := p.expect(RBRACE); err != nil {
					return err
				}
				break
			}
		}
		if p.accept(KwWith) {
			if _, err := p.expect(KwFlags); err != nil {
				return err
			}
			fr, err := p.ident()
			if err != nil {
				return err
			}
			u.FlagsRef = fr.Lit
		}
		if _, err := p.expect(SEMI); err != nil {
			return err
		}
	case KwRename:
		p.next()
		if _, err := p.expect(LBRACE); err != nil {
			return err
		}
		for !p.accept(RBRACE) {
			r, err := p.renameClause()
			if err != nil {
				return err
			}
			u.Renames = append(u.Renames, r)
		}
		if _, err := p.expect(SEMI); err != nil {
			return err
		}
	case KwInitializer, KwFinalizer:
		fin := p.next().Kind == KwFinalizer
		fn, err := p.ident()
		if err != nil {
			return err
		}
		if _, err := p.expect(KwFor); err != nil {
			return err
		}
		b, err := p.ident()
		if err != nil {
			return err
		}
		if _, err := p.expect(SEMI); err != nil {
			return err
		}
		u.Inits = append(u.Inits, InitDecl{Pos: fn.Pos, Func: fn.Lit, Bundle: b.Lit, Finalizer: fin})
	case KwFallback:
		p.next()
		fb, err := p.ident()
		if err != nil {
			return err
		}
		if u.Fallback != "" {
			return p.errf("unit %s declares more than one fallback", u.Name)
		}
		if fb.Lit == u.Name {
			return p.errf("unit %s names itself as fallback", u.Name)
		}
		u.Fallback = fb.Lit
		if _, err := p.expect(SEMI); err != nil {
			return err
		}
	case KwConstraints:
		p.next()
		if _, err := p.expect(LBRACE); err != nil {
			return err
		}
		for !p.accept(RBRACE) {
			c, err := p.constraint()
			if err != nil {
				return err
			}
			u.Constraints = append(u.Constraints, c)
		}
		if _, err := p.expect(SEMI); err != nil {
			return err
		}
	case KwLink:
		p.next()
		if _, err := p.expect(LBRACE); err != nil {
			return err
		}
		for !p.accept(RBRACE) {
			ll, err := p.linkLine()
			if err != nil {
				return err
			}
			u.Links = append(u.Links, ll)
		}
		if _, err := p.expect(SEMI); err != nil {
			return err
		}
	default:
		return p.errf("expected unit section, found %s", p.describe())
	}
	return nil
}

func (p *parser) bindings() ([]Binding, error) {
	if _, err := p.expect(LBRACK); err != nil {
		return nil, err
	}
	var out []Binding
	for !p.accept(RBRACK) {
		local, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(COLON); err != nil {
			return nil, err
		}
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, Binding{Pos: local.Pos, Local: local.Lit, Type: typ.Lit})
		if !p.accept(COMMA) {
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			break
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return out, nil
}

// depTerm parses IDENT | exports | imports | ( term { + term } ).
func (p *parser) depTerm() ([]string, error) {
	switch p.cur().Kind {
	case IDENT:
		return []string{p.next().Lit}, nil
	case KwExports:
		p.next()
		return []string{ExportsKeyword}, nil
	case KwImports:
		p.next()
		return []string{ImportsKeyword}, nil
	case LPAREN:
		p.next()
		var out []string
		for {
			t, err := p.depTerm()
			if err != nil {
				return nil, err
			}
			out = append(out, t...)
			if p.accept(PLUS) {
				continue
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return out, nil
		}
	}
	return nil, p.errf("expected dependency term, found %s", p.describe())
}

func (p *parser) depClause() (DepClause, error) {
	pos := p.cur().Pos
	lhs, err := p.depTerm()
	if err != nil {
		return DepClause{}, err
	}
	// Allow "a + b needs ..." without parens.
	for p.accept(PLUS) {
		more, err := p.depTerm()
		if err != nil {
			return DepClause{}, err
		}
		lhs = append(lhs, more...)
	}
	if _, err := p.expect(KwNeeds); err != nil {
		return DepClause{}, err
	}
	rhs, err := p.depTerm()
	if err != nil {
		return DepClause{}, err
	}
	for p.accept(PLUS) || p.accept(COMMA) {
		more, err := p.depTerm()
		if err != nil {
			return DepClause{}, err
		}
		rhs = append(rhs, more...)
	}
	if _, err := p.expect(SEMI); err != nil {
		return DepClause{}, err
	}
	return DepClause{Pos: pos, LHS: lhs, RHS: rhs}, nil
}

func (p *parser) renameClause() (Rename, error) {
	bundle, err := p.ident()
	if err != nil {
		return Rename{}, err
	}
	if _, err := p.expect(DOT); err != nil {
		return Rename{}, err
	}
	sym, err := p.ident()
	if err != nil {
		return Rename{}, err
	}
	if _, err := p.expect(KwTo); err != nil {
		return Rename{}, err
	}
	to, err := p.ident()
	if err != nil {
		return Rename{}, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return Rename{}, err
	}
	return Rename{Pos: bundle.Pos, Bundle: bundle.Lit, Sym: sym.Lit, To: to.Lit}, nil
}

// constraintRef parses prop(arg) or a bare value identifier.
func (p *parser) constraintRef() (Ref, error) {
	pos := p.cur().Pos
	var name string
	switch p.cur().Kind {
	case IDENT:
		name = p.next().Lit
	default:
		return Ref{}, p.errf("expected constraint operand, found %s", p.describe())
	}
	if p.accept(LPAREN) {
		var arg string
		switch p.cur().Kind {
		case IDENT:
			arg = p.next().Lit
		case KwImports:
			p.next()
			arg = ImportsKeyword
		case KwExports:
			p.next()
			arg = ExportsKeyword
		default:
			return Ref{}, p.errf("expected bundle name, found %s", p.describe())
		}
		if _, err := p.expect(RPAREN); err != nil {
			return Ref{}, err
		}
		return Ref{Pos: pos, Prop: name, Arg: arg}, nil
	}
	return Ref{Pos: pos, Value: name}, nil
}

func (p *parser) constraint() (Constraint, error) {
	lhs, err := p.constraintRef()
	if err != nil {
		return Constraint{}, err
	}
	var op ConstraintOp
	switch p.cur().Kind {
	case EQ:
		op = OpEq
	case LE:
		op = OpLe
	case GE:
		op = OpGe
	default:
		return Constraint{}, p.errf("expected =, <= or >=, found %s", p.describe())
	}
	p.next()
	rhs, err := p.constraintRef()
	if err != nil {
		return Constraint{}, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return Constraint{}, err
	}
	if lhs.IsValue() && rhs.IsValue() {
		return Constraint{}, &Error{Pos: lhs.Pos, Msg: "constraint relates two literal values"}
	}
	return Constraint{Pos: lhs.Pos, LHS: lhs, Op: op, RHS: rhs}, nil
}

func (p *parser) linkLine() (LinkLine, error) {
	pos := p.cur().Pos
	outs, err := p.nameList()
	if err != nil {
		return LinkLine{}, err
	}
	if _, err := p.expect(LARROW); err != nil {
		return LinkLine{}, err
	}
	unit, err := p.ident()
	if err != nil {
		return LinkLine{}, err
	}
	if _, err := p.expect(LARROW); err != nil {
		return LinkLine{}, err
	}
	ins, err := p.nameList()
	if err != nil {
		return LinkLine{}, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return LinkLine{}, err
	}
	return LinkLine{Pos: pos, Outs: outs, Unit: unit.Lit, Ins: ins}, nil
}

func (p *parser) nameList() ([]string, error) {
	if _, err := p.expect(LBRACK); err != nil {
		return nil, err
	}
	var out []string
	for !p.accept(RBRACK) {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, n.Lit)
		if !p.accept(COMMA) {
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			break
		}
	}
	return out, nil
}
