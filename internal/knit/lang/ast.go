package lang

// File is a parsed unit-language file.
type File struct {
	Name        string
	BundleTypes []*BundleType
	FlagSets    []*FlagSet
	Properties  []*Property
	Units       []*Unit
}

// BundleType names a set of symbols that are imported and exported as a
// group ("bundletype Stdio = { fopen, fprintf }").
type BundleType struct {
	Pos  Pos
	Name string
	Syms []string
}

// FlagSet is a named set of compiler flags. Our cmini compiler has no
// include paths, so flags are carried through for fidelity and recorded
// on units, but do not alter compilation.
type FlagSet struct {
	Pos    Pos
	Name   string
	Values []string
}

// Property declares a constraint property and its partially ordered
// values (§4): "property context" followed by "type ProcessContext <
// NoContext" declarations.
//
// "property context propagates" additionally gives every unit that has
// no explicit constraint on the property the implicit constraint
// "context(exports) <= context(imports)". This implements the paper's
// §8 plan to "generalize the constraint-checking mechanism to reduce
// repetition between different constraints": in the paper's census, 70%
// of annotated units carried exactly that propagation clause.
type Property struct {
	Pos        Pos
	Name       string
	Values     []PropValue
	Propagates bool
}

// PropValue is one value of a property; Below names a value this one is
// less than ("" for maximal values).
type PropValue struct {
	Pos   Pos
	Name  string
	Below string
}

// Unit is an atomic or compound unit. Atomic units have Files; compound
// units have Links. (Exactly one must be present.)
type Unit struct {
	Pos         Pos
	Name        string
	Imports     []Binding
	Exports     []Binding
	Depends     []DepClause
	Files       []string
	FlagsRef    string
	Renames     []Rename
	Inits       []InitDecl
	Constraints []Constraint
	Links       []LinkLine

	// Fallback names a unit the supervisor may substitute for this one
	// at runtime ("fallback SafeUnit;"). The fallback must export the
	// same bundles and import a subset of this unit's imports.
	Fallback string
}

// IsCompound reports whether the unit is built by linking sub-units.
func (u *Unit) IsCompound() bool { return len(u.Links) > 0 }

// Binding introduces a local bundle name with a bundle type
// ("serveFile : Serve").
type Binding struct {
	Pos   Pos
	Local string
	Type  string
}

// DepClause is one dependency declaration: LHS needs RHS. LHS terms are
// export bundle locals, initializer/finalizer function names, or the
// keyword "exports"; RHS terms are import bundle locals or "imports".
type DepClause struct {
	Pos Pos
	LHS []string
	RHS []string
}

// ExportsKeyword and ImportsKeyword are the wildcard terms usable in
// depends and constraints clauses.
const (
	ExportsKeyword = "exports"
	ImportsKeyword = "imports"
)

// Rename associates a bundle symbol with the C identifier the unit's
// implementation actually uses ("rename serveWeb.serve_web to
// serve_unlogged").
type Rename struct {
	Pos    Pos
	Bundle string
	Sym    string
	To     string
}

// InitDecl declares an initializer or finalizer function for an export
// bundle.
type InitDecl struct {
	Pos       Pos
	Func      string
	Bundle    string
	Finalizer bool
}

// ConstraintOp is the relation in a constraint.
type ConstraintOp int

// Constraint relations.
const (
	OpEq ConstraintOp = iota // =
	OpLe                     // <=
	OpGe                     // >=
)

func (op ConstraintOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLe:
		return "<="
	}
	return ">="
}

// Ref is a constraint operand: a property applied to a bundle local (or
// "imports"/"exports"), e.g. context(serveLog), or a bare property value.
type Ref struct {
	Pos   Pos
	Prop  string // non-empty for prop(arg) form
	Arg   string
	Value string // non-empty for a bare value
}

// IsValue reports whether the ref is a literal property value.
func (r Ref) IsValue() bool { return r.Value != "" }

// Constraint is one clause in a constraints section:
// prop(x) <= prop(y), prop(x) = Value, etc.
type Constraint struct {
	Pos Pos
	LHS Ref
	Op  ConstraintOp
	RHS Ref
}

// LinkLine is one line of a compound unit's link section:
//
//	[out1, out2] <- UnitName <- [in1, in2];
//
// Outs bind local names to the sub-unit's exports positionally; Ins
// supply the sub-unit's imports positionally from local names.
type LinkLine struct {
	Pos  Pos
	Outs []string
	Unit string
	Ins  []string
}
