package lang

import (
	"fmt"
	"strings"
)

// Print renders a parsed unit file back to concrete syntax. The output
// reparses to an equivalent file; tools (like the Clack configuration
// compiler) use it to emit generated units in canonical form.
func Print(f *File) string {
	var b strings.Builder
	for _, bt := range f.BundleTypes {
		fmt.Fprintf(&b, "bundletype %s = { %s }\n", bt.Name, strings.Join(bt.Syms, ", "))
	}
	for _, fs := range f.FlagSets {
		var vals []string
		for _, v := range fs.Values {
			vals = append(vals, fmt.Sprintf("%q", v))
		}
		fmt.Fprintf(&b, "flags %s = { %s }\n", fs.Name, strings.Join(vals, ", "))
	}
	for _, p := range f.Properties {
		if p.Propagates {
			fmt.Fprintf(&b, "property %s propagates\n", p.Name)
		} else {
			fmt.Fprintf(&b, "property %s\n", p.Name)
		}
		for _, v := range p.Values {
			if v.Below == "" {
				fmt.Fprintf(&b, "type %s\n", v.Name)
			} else {
				fmt.Fprintf(&b, "type %s < %s\n", v.Name, v.Below)
			}
		}
	}
	for _, u := range f.Units {
		b.WriteString("\n")
		printUnit(&b, u)
	}
	return b.String()
}

func printUnit(b *strings.Builder, u *Unit) {
	fmt.Fprintf(b, "unit %s = {\n", u.Name)
	if len(u.Imports) > 0 {
		fmt.Fprintf(b, "  imports [ %s ];\n", bindings(u.Imports))
	}
	if len(u.Exports) > 0 {
		fmt.Fprintf(b, "  exports [ %s ];\n", bindings(u.Exports))
	}
	for _, ini := range u.Inits {
		kw := "initializer"
		if ini.Finalizer {
			kw = "finalizer"
		}
		fmt.Fprintf(b, "  %s %s for %s;\n", kw, ini.Func, ini.Bundle)
	}
	if u.Fallback != "" {
		fmt.Fprintf(b, "  fallback %s;\n", u.Fallback)
	}
	if len(u.Depends) > 0 {
		b.WriteString("  depends {\n")
		for _, d := range u.Depends {
			fmt.Fprintf(b, "    %s needs %s;\n", depTerm(d.LHS), depTerm(d.RHS))
		}
		b.WriteString("  };\n")
	}
	if len(u.Constraints) > 0 {
		b.WriteString("  constraints {\n")
		for _, c := range u.Constraints {
			fmt.Fprintf(b, "    %s %s %s;\n", ref(c.LHS), c.Op, ref(c.RHS))
		}
		b.WriteString("  };\n")
	}
	if len(u.Files) > 0 {
		var names []string
		for _, f := range u.Files {
			names = append(names, fmt.Sprintf("%q", f))
		}
		fmt.Fprintf(b, "  files { %s }", strings.Join(names, ", "))
		if u.FlagsRef != "" {
			fmt.Fprintf(b, " with flags %s", u.FlagsRef)
		}
		b.WriteString(";\n")
	}
	if len(u.Renames) > 0 {
		b.WriteString("  rename {\n")
		for _, r := range u.Renames {
			fmt.Fprintf(b, "    %s.%s to %s;\n", r.Bundle, r.Sym, r.To)
		}
		b.WriteString("  };\n")
	}
	if len(u.Links) > 0 {
		b.WriteString("  link {\n")
		for _, l := range u.Links {
			fmt.Fprintf(b, "    [%s] <- %s <- [%s];\n",
				strings.Join(l.Outs, ", "), l.Unit, strings.Join(l.Ins, ", "))
		}
		b.WriteString("  };\n")
	}
	b.WriteString("}\n")
}

func bindings(bs []Binding) string {
	var out []string
	for _, b := range bs {
		out = append(out, fmt.Sprintf("%s : %s", b.Local, b.Type))
	}
	return strings.Join(out, ", ")
}

func depTerm(terms []string) string {
	if len(terms) == 1 {
		return terms[0]
	}
	return "(" + strings.Join(terms, " + ") + ")"
}

func ref(r Ref) string {
	if r.IsValue() {
		return r.Value
	}
	return fmt.Sprintf("%s(%s)", r.Prop, r.Arg)
}
