package link

import (
	"knit/internal/cmini"
	"knit/internal/obj"
)

// ElaborateDynamic instantiates one atomic unit against an already
// elaborated base program — the linking half of Knit's dynamic-linking
// extension (paper §8). The unit's imports are wired, by name, to the
// base program's top-level exports; its exports become new symbols that
// the caller can invoke after loading the compiled instance into a
// running machine.
//
// Dynamic units extend a system; they cannot rewire the base program's
// existing static links (interposition remains a static-link operation).
func ElaborateDynamic(reg *Registry, base *Program, unitName string,
	sources Sources, wiring map[string]string) (*Instance, error) {
	u, ok := reg.Units[unitName]
	if !ok {
		return nil, &Err{Msg: "unknown unit " + unitName}
	}
	env := map[string]*Wire{}
	for _, imp := range u.Imports {
		target, ok := wiring[imp.Local]
		if !ok {
			return nil, errAt(imp.Pos, "dynamic unit %s: import %q not wired", unitName, imp.Local)
		}
		w, ok := base.Exports[target]
		if !ok {
			return nil, errAt(imp.Pos,
				"dynamic unit %s: base program has no top-level export %q", unitName, target)
		}
		env[imp.Local] = w
	}
	for local := range wiring {
		known := false
		for _, imp := range u.Imports {
			if imp.Local == local {
				known = true
			}
		}
		if !known {
			return nil, errAt(u.Pos, "dynamic unit %s has no import %q", unitName, local)
		}
	}
	return ElaborateDynamicEnv(reg, base, unitName, sources, env)
}

// ElaborateDynamicEnv is ElaborateDynamic with the import environment
// given directly as wires instead of top-level export names. This is
// what runtime interposition needs: a fallback unit is wired to the
// *same* providers as the instance it replaces (its ImportWires), which
// are internal wires that generally are not top-level exports.
func ElaborateDynamicEnv(reg *Registry, base *Program, unitName string,
	sources Sources, env map[string]*Wire) (*Instance, error) {
	u, ok := reg.Units[unitName]
	if !ok {
		return nil, &Err{Msg: "unknown unit " + unitName}
	}
	if u.IsCompound() {
		return nil, errAt(u.Pos, "dynamic unit %s must be atomic (link compound units statically)", unitName)
	}
	for _, imp := range u.Imports {
		w, ok := env[imp.Local]
		if !ok || w == nil {
			return nil, errAt(imp.Pos, "dynamic unit %s: import %q not wired", unitName, imp.Local)
		}
		if w.Type != imp.Type {
			return nil, errAt(imp.Pos,
				"dynamic unit %s: import %q has bundle type %s, wired bundle has %s",
				unitName, imp.Local, imp.Type, w.Type)
		}
	}
	nextID := 0
	for _, inst := range base.Instances {
		if inst.ID >= nextID {
			nextID = inst.ID + 1
		}
	}
	e := &elab{reg: reg, sources: sources,
		parsed:    map[string]*cmini.File{},
		assembled: map[string]*obj.File{},
		nextID:    nextID}
	tmp := &Program{Registry: reg, Top: u, Exports: map[string]*Wire{}}
	if _, err := e.elaborateAtomic(u, env, "dynamic/"+unitName, tmp); err != nil {
		return nil, err
	}
	if err := e.resolveSymbols(tmp); err != nil {
		return nil, err
	}
	return tmp.Instances[0], nil
}

// DynamicExports returns the wires a dynamic instance exports, keyed by
// export local name, so callers can register them for later loads.
func DynamicExports(inst *Instance) map[string]*Wire {
	out := map[string]*Wire{}
	for _, exp := range inst.Unit.Exports {
		out[exp.Local] = &Wire{Provider: inst, Bundle: exp.Local, Type: exp.Type}
	}
	return out
}
