package link

import (
	"strings"
	"testing"

	"knit/internal/knit/lang"
)

// Fixture for the dynamic-elaboration error paths: a base program with
// one Svc provider, plus candidate dynamic units that need wiring.
const dynUnits = `
bundletype Svc = { get }
bundletype Other = { poke }

unit Base = {
  exports [ svc : Svc ];
  files { "base.c" };
}
unit Consumer = {
  imports [ svc : Svc ];
  exports [ out : Svc ];
  depends { out needs svc; };
  files { "consumer.c" };
  rename { svc.get to svc_get; };
}
unit Compound = {
  exports [ out : Svc ];
  link {
    [svc] <- Base <- [];
    [out] <- Consumer <- [svc];
  };
}
unit Top = {
  exports [ svc : Svc ];
  link {
    [svc] <- Base <- [];
  };
}
`

var dynSources = Sources{
	"base.c":     `int get(void) { return 7; }`,
	"consumer.c": `int svc_get(void); int get(void) { return svc_get() + 1; }`,
}

func dynFixture(t *testing.T) (*Registry, *Program) {
	t.Helper()
	f, err := lang.Parse("dyn.unit", dynUnits)
	if err != nil {
		t.Fatalf("parse units: %v", err)
	}
	reg, err := NewRegistry(f)
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	base, err := Elaborate(reg, "Top", dynSources)
	if err != nil {
		t.Fatalf("elaborate base: %v", err)
	}
	return reg, base
}

func wantErr(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("no error, want one containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not contain %q", err, frag)
	}
}

func TestElaborateDynamicEnvUnknownUnit(t *testing.T) {
	reg, base := dynFixture(t)
	_, err := ElaborateDynamicEnv(reg, base, "NoSuchUnit", dynSources, nil)
	wantErr(t, err, "unknown unit NoSuchUnit")
}

func TestElaborateDynamicEnvRejectsCompound(t *testing.T) {
	reg, base := dynFixture(t)
	_, err := ElaborateDynamicEnv(reg, base, "Compound", dynSources, nil)
	wantErr(t, err, "must be atomic")
}

func TestElaborateDynamicEnvMissingImport(t *testing.T) {
	reg, base := dynFixture(t)
	// Absent from the environment entirely.
	_, err := ElaborateDynamicEnv(reg, base, "Consumer", dynSources, map[string]*Wire{})
	wantErr(t, err, `import "svc" not wired`)
	// Present but nil: same refusal — a half-built environment must not
	// elaborate.
	_, err = ElaborateDynamicEnv(reg, base, "Consumer", dynSources, map[string]*Wire{"svc": nil})
	wantErr(t, err, `import "svc" not wired`)
}

func TestElaborateDynamicEnvBundleTypeMismatch(t *testing.T) {
	reg, base := dynFixture(t)
	w := base.Exports["svc"]
	if w == nil {
		t.Fatal("fixture lost its svc export")
	}
	bad := &Wire{Provider: w.Provider, Bundle: w.Bundle, Type: "Other"}
	_, err := ElaborateDynamicEnv(reg, base, "Consumer", dynSources, map[string]*Wire{"svc": bad})
	wantErr(t, err, "bundle type")
}

// TestElaborateDynamicEnvWiresInternalProvider pins the success path
// that distinguishes Env from plain ElaborateDynamic: the environment
// may point at any internal wire, not just top-level exports, and the
// new instance's IDs advance past every base instance's.
func TestElaborateDynamicEnvWiresInternalProvider(t *testing.T) {
	reg, base := dynFixture(t)
	maxID := 0
	for _, inst := range base.Instances {
		if inst.ID > maxID {
			maxID = inst.ID
		}
	}
	inst, err := ElaborateDynamicEnv(reg, base, "Consumer", dynSources, map[string]*Wire{
		"svc": base.Exports["svc"],
	})
	if err != nil {
		t.Fatalf("ElaborateDynamicEnv: %v", err)
	}
	if inst.ID <= maxID {
		t.Errorf("dynamic instance ID %d does not advance past base max %d", inst.ID, maxID)
	}
	if inst.Path != "dynamic/Consumer" {
		t.Errorf("instance path = %q", inst.Path)
	}
	if g := inst.ExportSyms["out"]["get"]; !strings.HasPrefix(g, "get__k") {
		t.Errorf("export global = %q, want get__k<N>", g)
	}
}
