package link

import (
	"strings"
	"testing"
)

// TestNestedCompoundUnits exercises hierarchy: a compound unit linked
// inside another compound unit ("the units linked together in a compound
// unit need not be atomic units; they can be compound units as well",
// §3.1).
func TestNestedCompoundUnits(t *testing.T) {
	units := `
bundletype A = { fa }
bundletype B = { fb }
bundletype C = { fc }

unit Leaf = {
  exports [ a : A ];
  files { "leaf.c" };
}
unit Wrap = {
  imports [ a : A ];
  exports [ b : B ];
  files { "wrap.c" };
}
// Inner compound: packages Leaf+Wrap as one reusable component.
unit Stack = {
  exports [ b : B ];
  link {
    [a] <- Leaf <- [];
    [b] <- Wrap <- [a];
  };
}
unit Client = {
  imports [ b : B ];
  exports [ c : C ];
  files { "client.c" };
}
// Outer compound: links the inner compound like any other unit.
unit Top = {
  exports [ c : C ];
  link {
    [b] <- Stack <- [];
    [c] <- Client <- [b];
  };
}
`
	sources := Sources{
		"leaf.c":   `int fa(void) { return 7; }`,
		"wrap.c":   `int fa(void); int fb(void) { return fa() * 2; }`,
		"client.c": `int fb(void); int fc(void) { return fb() + 1; }`,
	}
	p := mustElab(t, units, "Top", sources)
	if len(p.Instances) != 3 {
		t.Fatalf("instances = %d, want 3 (compound units leave no instance)", len(p.Instances))
	}
	// Client's import resolves through the inner compound to Wrap.
	var client, wrap *Instance
	for _, inst := range p.Instances {
		switch inst.Unit.Name {
		case "Client":
			client = inst
		case "Wrap":
			wrap = inst
		}
	}
	if client.ImportWires["b"].Provider != wrap {
		t.Error("client's import should resolve through the nested compound to Wrap")
	}
	// Paths reflect the hierarchy for diagnostics.
	if !strings.Contains(wrap.Path, "Top/Stack#0/Wrap") {
		t.Errorf("wrap path = %q, want hierarchy Top/Stack#0/Wrap...", wrap.Path)
	}
}

// TestNestedCompoundInstantiatedTwice: linking the inner compound twice
// duplicates its entire subtree.
func TestNestedCompoundInstantiatedTwice(t *testing.T) {
	units := `
bundletype A = { fa }
bundletype P = { fp }

unit Leaf = {
  exports [ a : A ];
  files { "leaf.c" };
}
unit Box = {
  exports [ a : A ];
  link {
    [a] <- Leaf <- [];
  };
}
unit Pair = {
  imports [ x : A, y : A ];
  exports [ p : P ];
  files { "pair.c" };
  rename { x.fa to fa_x; y.fa to fa_y; };
}
unit Top = {
  exports [ p : P ];
  link {
    [x] <- Box <- [];
    [y] <- Box <- [];
    [p] <- Pair <- [x, y];
  };
}
`
	sources := Sources{
		"leaf.c": `static int n = 0; int fa(void) { n++; return n; }`,
		"pair.c": `int fa_x(void); int fa_y(void); int fp(void) { return fa_x() * 10 + fa_y(); }`,
	}
	p := mustElab(t, units, "Top", sources)
	leaves := 0
	names := map[string]bool{}
	for _, inst := range p.Instances {
		if inst.Unit.Name == "Leaf" {
			leaves++
			names[inst.ExportSyms["a"]["fa"]] = true
		}
	}
	if leaves != 2 || len(names) != 2 {
		t.Errorf("expected 2 distinct Leaf instances, got %d (%d names)", leaves, len(names))
	}
}
