// Package link elaborates Knit unit definitions into a flat program of
// atomic-unit instances with explicitly wired symbols — the core of
// Knit's linking model (paper §2.3 and §3). It supports hierarchical
// compound units, cyclic wiring among siblings, renaming, interposition,
// and multiple instantiation of a unit (each instance gets its own copy
// of code and state, as the real Knit does with a modified objcopy).
package link

import (
	"fmt"

	"knit/internal/knit/lang"
)

// Registry holds all unit-language declarations visible to a build.
type Registry struct {
	BundleTypes map[string]*lang.BundleType
	FlagSets    map[string]*lang.FlagSet
	Properties  map[string]*lang.Property
	Units       map[string]*lang.Unit
}

// NewRegistry builds a registry from parsed unit files, rejecting
// duplicate names.
func NewRegistry(files ...*lang.File) (*Registry, error) {
	r := &Registry{
		BundleTypes: map[string]*lang.BundleType{},
		FlagSets:    map[string]*lang.FlagSet{},
		Properties:  map[string]*lang.Property{},
		Units:       map[string]*lang.Unit{},
	}
	for _, f := range files {
		for _, bt := range f.BundleTypes {
			if _, dup := r.BundleTypes[bt.Name]; dup {
				return nil, &Err{Pos: bt.Pos, Msg: fmt.Sprintf("bundletype %q redefined", bt.Name)}
			}
			r.BundleTypes[bt.Name] = bt
		}
		for _, fs := range f.FlagSets {
			if _, dup := r.FlagSets[fs.Name]; dup {
				return nil, &Err{Pos: fs.Pos, Msg: fmt.Sprintf("flags %q redefined", fs.Name)}
			}
			r.FlagSets[fs.Name] = fs
		}
		for _, pr := range f.Properties {
			if _, dup := r.Properties[pr.Name]; dup {
				return nil, &Err{Pos: pr.Pos, Msg: fmt.Sprintf("property %q redefined", pr.Name)}
			}
			r.Properties[pr.Name] = pr
		}
		for _, u := range f.Units {
			if _, dup := r.Units[u.Name]; dup {
				return nil, &Err{Pos: u.Pos, Msg: fmt.Sprintf("unit %q redefined", u.Name)}
			}
			r.Units[u.Name] = u
		}
	}
	return r, nil
}

// Err is an elaboration error with a unit-file position.
type Err struct {
	Pos lang.Pos
	Msg string
}

func (e *Err) Error() string {
	if e.Pos.Line == 0 {
		return "knit: " + e.Msg
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

func errAt(pos lang.Pos, format string, args ...any) error {
	return &Err{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
