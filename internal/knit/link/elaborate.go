package link

import (
	"fmt"
	"sort"
	"strings"

	"knit/internal/asm"
	"knit/internal/cmini"
	"knit/internal/knit/lang"
	"knit/internal/obj"
)

// AmbientPrefix marks symbols that bypass the import discipline: they
// name hardware/runtime entry points (simulated devices) provided by the
// machine as builtins, e.g. __console_out. They are never renamed.
const AmbientPrefix = "__"

// Sources maps the file names mentioned in units' files{} sections to
// cmini source text (the build's virtual filesystem).
type Sources map[string]string

// Wire identifies the provider of a bundle: an instance and the local
// name of one of its export bundles. Wires are created as placeholders
// during compound-unit elaboration and patched once the providing
// sub-unit is elaborated, which is what allows cyclic linking graphs.
type Wire struct {
	Provider *Instance
	Bundle   string // provider's export local name
	Type     string // bundle type name
}

// Init describes one initializer or finalizer of an instance.
type Init struct {
	Func       string // name as written in the unit file
	GlobalName string // renamed, program-unique C-level name
	Bundle     string // export bundle it initializes
	Finalizer  bool
	Needs      []string // import locals this function depends on
}

// Instance is one elaborated atomic unit.
type Instance struct {
	ID    int
	Path  string // e.g. "LogServe/Log#1", for diagnostics
	Unit  *lang.Unit
	Files []*cmini.File // cloned and renamed per instance (C sources)
	// Objects holds the unit's assembly-implemented files (paper: "Knit
	// can actually work with C, assembly, and object code"), already
	// instance-renamed at the object level — the objcopy path. Assembly
	// units are never flattened; they link as objects.
	Objects     []*obj.File
	asmRaw      []*obj.File // assembled but not yet renamed
	ImportWires map[string]*Wire
	// ExportSyms maps export local -> bundle symbol -> program-unique
	// global name.
	ExportSyms map[string]map[string]string
	// ExportNeeds maps export local -> import locals it depends on.
	ExportNeeds map[string][]string
	Inits       []*Init // initializers and finalizers, in declaration order
}

// ImportType returns the bundle type name for an import local.
func (inst *Instance) ImportType(local string) string {
	for _, b := range inst.Unit.Imports {
		if b.Local == local {
			return b.Type
		}
	}
	return ""
}

// Program is a fully elaborated system: a flat set of instances plus the
// top unit's export wiring.
type Program struct {
	Registry  *Registry
	Top       *lang.Unit
	Instances []*Instance
	// Exports maps the top unit's export locals to their providers.
	Exports map[string]*Wire
}

// ExportSymbol resolves a top-level export bundle symbol to its global
// (C-level) name.
func (p *Program) ExportSymbol(bundleLocal, sym string) (string, error) {
	w, ok := p.Exports[bundleLocal]
	if !ok {
		return "", fmt.Errorf("knit: no top-level export bundle %q", bundleLocal)
	}
	name, ok := w.Provider.ExportSyms[w.Bundle][sym]
	if !ok {
		return "", fmt.Errorf("knit: bundle %q has no symbol %q", bundleLocal, sym)
	}
	return name, nil
}

// Elaborate instantiates topName (usually a compound unit) and every
// unit it transitively links, wiring all imports to exports.
func Elaborate(reg *Registry, topName string, sources Sources) (*Program, error) {
	top, ok := reg.Units[topName]
	if !ok {
		return nil, &Err{Msg: fmt.Sprintf("unknown unit %q", topName)}
	}
	if len(top.Imports) > 0 {
		return nil, errAt(top.Pos, "top unit %s has unsatisfied imports (%d); link it inside a compound unit",
			topName, len(top.Imports))
	}
	e := &elab{reg: reg, sources: sources,
		parsed:    map[string]*cmini.File{},
		assembled: map[string]*obj.File{}}
	prog := &Program{Registry: reg, Top: top, Exports: map[string]*Wire{}}
	exports, err := e.elaborate(top, map[string]*Wire{}, topName, prog)
	if err != nil {
		return nil, err
	}
	prog.Exports = exports
	if err := e.resolveSymbols(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type elab struct {
	reg       *Registry
	sources   Sources
	parsed    map[string]*cmini.File
	assembled map[string]*obj.File
	nextID    int
	depth     int
}

// maxDepth bounds unit nesting (guards against recursive compounds).
const maxDepth = 64

// elaborate instantiates unit u with the given import environment and
// returns wires for its exports.
func (e *elab) elaborate(u *lang.Unit, env map[string]*Wire, path string, prog *Program) (map[string]*Wire, error) {
	e.depth++
	defer func() { e.depth-- }()
	if e.depth > maxDepth {
		return nil, errAt(u.Pos, "unit nesting too deep at %s (recursive compound unit?)", path)
	}
	for _, imp := range u.Imports {
		w, ok := env[imp.Local]
		if !ok {
			return nil, errAt(u.Pos, "%s: import %q not supplied", path, imp.Local)
		}
		if w.Type != imp.Type {
			return nil, errAt(u.Pos, "%s: import %q has bundle type %s, supplied %s",
				path, imp.Local, imp.Type, w.Type)
		}
	}
	if u.IsCompound() {
		return e.elaborateCompound(u, env, path, prog)
	}
	return e.elaborateAtomic(u, env, path, prog)
}

func (e *elab) elaborateCompound(u *lang.Unit, env map[string]*Wire, path string, prog *Program) (map[string]*Wire, error) {
	// Scope: compound imports plus placeholder wires for each link out.
	scope := map[string]*Wire{}
	for _, imp := range u.Imports {
		scope[imp.Local] = env[imp.Local]
	}
	// Create placeholders with statically known bundle types so cyclic
	// references among siblings typecheck before elaboration.
	for li, line := range u.Links {
		child, ok := e.reg.Units[line.Unit]
		if !ok {
			return nil, errAt(line.Pos, "%s: unknown unit %q in link", path, line.Unit)
		}
		if len(line.Outs) != len(child.Exports) {
			return nil, errAt(line.Pos, "%s: unit %s exports %d bundles, link line binds %d",
				path, line.Unit, len(child.Exports), len(line.Outs))
		}
		if len(line.Ins) != len(child.Imports) {
			return nil, errAt(line.Pos, "%s: unit %s imports %d bundles, link line supplies %d",
				path, line.Unit, len(child.Imports), len(line.Ins))
		}
		for oi, out := range line.Outs {
			if _, dup := scope[out]; dup {
				return nil, errAt(line.Pos, "%s: name %q bound twice in compound unit %s (line %d)",
					path, out, u.Name, li+1)
			}
			scope[out] = &Wire{Type: child.Exports[oi].Type}
		}
	}
	// Elaborate children, patching placeholders.
	for li, line := range u.Links {
		child := e.reg.Units[line.Unit]
		childEnv := map[string]*Wire{}
		for ii, argName := range line.Ins {
			w, ok := scope[argName]
			if !ok {
				return nil, errAt(line.Pos, "%s: unknown name %q supplied to %s", path, argName, line.Unit)
			}
			childEnv[child.Imports[ii].Local] = w
		}
		childPath := fmt.Sprintf("%s/%s#%d", path, line.Unit, li)
		childExports, err := e.elaborate(child, childEnv, childPath, prog)
		if err != nil {
			return nil, err
		}
		for oi, out := range line.Outs {
			src := childExports[child.Exports[oi].Local]
			dst := scope[out]
			dst.Provider = src.Provider
			dst.Bundle = src.Bundle
			// Type already set; verify agreement.
			if src.Type != dst.Type {
				return nil, errAt(line.Pos, "%s: export type mismatch for %q: %s vs %s",
					path, out, src.Type, dst.Type)
			}
		}
	}
	// Compound exports: drawn from scope by local name.
	out := map[string]*Wire{}
	for _, exp := range u.Exports {
		w, ok := scope[exp.Local]
		if !ok {
			return nil, errAt(u.Pos, "%s: exported name %q is not bound in the link section", path, exp.Local)
		}
		if w.Type != exp.Type {
			return nil, errAt(u.Pos, "%s: export %q has type %s, bound value has type %s",
				path, exp.Local, exp.Type, w.Type)
		}
		out[exp.Local] = w
	}
	return out, nil
}

func (e *elab) elaborateAtomic(u *lang.Unit, env map[string]*Wire, path string, prog *Program) (map[string]*Wire, error) {
	if len(u.Files) == 0 {
		return nil, errAt(u.Pos, "%s: atomic unit %s has no files", path, u.Name)
	}
	inst := &Instance{
		ID:          e.nextID,
		Path:        path,
		Unit:        u,
		ImportWires: map[string]*Wire{},
		ExportSyms:  map[string]map[string]string{},
		ExportNeeds: map[string][]string{},
	}
	e.nextID++
	for _, imp := range u.Imports {
		inst.ImportWires[imp.Local] = env[imp.Local]
	}
	// Export symbol global names.
	suffix := fmt.Sprintf("__k%d", inst.ID)
	cidents, err := cidentMap(e.reg, u)
	if err != nil {
		return nil, err
	}
	for _, exp := range u.Exports {
		bt := e.reg.BundleTypes[exp.Type]
		if bt == nil {
			return nil, errAt(exp.Pos, "%s: unknown bundle type %q", path, exp.Type)
		}
		syms := map[string]string{}
		for _, s := range bt.Syms {
			syms[s] = cidents[bkey{exp.Local, s}] + suffix
		}
		inst.ExportSyms[exp.Local] = syms
	}
	// Dependency clauses.
	if err := e.resolveDepends(u, inst, path); err != nil {
		return nil, err
	}
	// Parse and clone source files; renaming happens in resolveSymbols
	// once all wires are patched. Files ending in ".s" are assembly and
	// are assembled to objects directly.
	for _, fname := range u.Files {
		src, ok := e.sources[fname]
		if !ok {
			return nil, errAt(u.Pos, "%s: source file %q not provided", path, fname)
		}
		if strings.HasSuffix(fname, ".s") {
			base, ok := e.assembled[fname]
			if !ok {
				o, err := asm.Parse(fname, src)
				if err != nil {
					return nil, fmt.Errorf("unit %s: %w", u.Name, err)
				}
				e.assembled[fname] = o
				base = o
			}
			inst.asmRaw = append(inst.asmRaw, base)
			continue
		}
		base, ok := e.parsed[fname]
		if !ok {
			f, err := cmini.Parse(fname, src)
			if err != nil {
				return nil, fmt.Errorf("unit %s: %w", u.Name, err)
			}
			e.parsed[fname] = f
			base = f
		}
		inst.Files = append(inst.Files, cmini.CloneFile(base))
	}
	prog.Instances = append(prog.Instances, inst)
	out := map[string]*Wire{}
	for _, exp := range u.Exports {
		out[exp.Local] = &Wire{Provider: inst, Bundle: exp.Local, Type: exp.Type}
	}
	return out, nil
}

// resolveDepends expands a unit's depends clauses onto the instance.
func (e *elab) resolveDepends(u *lang.Unit, inst *Instance, path string) error {
	importLocals := map[string]bool{}
	for _, b := range u.Imports {
		importLocals[b.Local] = true
	}
	exportLocals := map[string]bool{}
	for _, b := range u.Exports {
		exportLocals[b.Local] = true
	}
	initByFunc := map[string]*Init{}
	for _, d := range u.Inits {
		if !exportLocals[d.Bundle] {
			return errAt(d.Pos, "%s: %s %q is for unknown export bundle %q",
				path, initOrFin(d.Finalizer), d.Func, d.Bundle)
		}
		if _, dup := initByFunc[d.Func]; dup {
			return errAt(d.Pos, "%s: duplicate initializer/finalizer %q", path, d.Func)
		}
		ini := &Init{Func: d.Func, Bundle: d.Bundle, Finalizer: d.Finalizer}
		inst.Inits = append(inst.Inits, ini)
		initByFunc[d.Func] = ini
	}
	expandRHS := func(rhs []string, pos lang.Pos) ([]string, error) {
		var out []string
		for _, t := range rhs {
			if t == lang.ImportsKeyword {
				for _, b := range u.Imports {
					out = append(out, b.Local)
				}
				continue
			}
			if !importLocals[t] {
				return nil, errAt(pos, "%s: depends right-hand side %q is not an import", path, t)
			}
			out = append(out, t)
		}
		return out, nil
	}
	for _, d := range u.Depends {
		rhs, err := expandRHS(d.RHS, d.Pos)
		if err != nil {
			return err
		}
		var lhs []string
		for _, t := range d.LHS {
			if t == lang.ExportsKeyword {
				for _, b := range u.Exports {
					lhs = append(lhs, b.Local)
				}
				continue
			}
			lhs = append(lhs, t)
		}
		for _, t := range lhs {
			switch {
			case exportLocals[t]:
				inst.ExportNeeds[t] = appendUnique(inst.ExportNeeds[t], rhs)
			case initByFunc[t] != nil:
				initByFunc[t].Needs = appendUnique(initByFunc[t].Needs, rhs)
			default:
				return errAt(d.Pos, "%s: depends left-hand side %q is neither an export bundle nor an initializer", path, t)
			}
		}
	}
	return nil
}

func initOrFin(fin bool) string {
	if fin {
		return "finalizer"
	}
	return "initializer"
}

func appendUnique(dst []string, add []string) []string {
	for _, a := range add {
		found := false
		for _, d := range dst {
			if d == a {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, a)
		}
	}
	return dst
}

// bkey identifies a bundle-local symbol.
type bkey struct {
	local string
	sym   string
}

// cidentMap computes, for unit u, the C identifier used for each
// (bundle local, symbol) of its imports and exports — the default is the
// symbol name itself, overridden by rename clauses. The mapping from C
// identifiers back to bundle symbols must be unambiguous; when two
// bundles would claim the same identifier the unit must rename one
// (paper §3.2's wrap/interpose pattern).
func cidentMap(reg *Registry, u *lang.Unit) (map[bkey]string, error) {
	renames := map[bkey]string{}
	valid := map[string]bool{}
	for _, b := range append(append([]lang.Binding{}, u.Imports...), u.Exports...) {
		valid[b.Local] = true
	}
	for _, r := range u.Renames {
		if !valid[r.Bundle] {
			return nil, errAt(r.Pos, "unit %s: rename of unknown bundle %q", u.Name, r.Bundle)
		}
		renames[bkey{r.Bundle, r.Sym}] = r.To
	}
	out := map[bkey]string{}
	owner := map[string]bkey{}
	addAll := func(bs []lang.Binding) error {
		for _, b := range bs {
			bt, ok := reg.BundleTypes[b.Type]
			if !ok {
				return errAt(b.Pos, "unit %s: unknown bundle type %q", u.Name, b.Type)
			}
			for _, s := range bt.Syms {
				id := s
				if to, ok := renames[bkey{b.Local, s}]; ok {
					id = to
				}
				if prev, clash := owner[id]; clash {
					return errAt(b.Pos,
						"unit %s: C identifier %q is claimed by both %s.%s and %s.%s — add a rename",
						u.Name, id, prev.local, prev.sym, b.Local, s)
				}
				owner[id] = bkey{b.Local, s}
				out[bkey{b.Local, s}] = id
			}
		}
		return nil
	}
	if err := addAll(u.Imports); err != nil {
		return nil, err
	}
	if err := addAll(u.Exports); err != nil {
		return nil, err
	}
	// Verify rename targets referenced real bundle symbols.
	for k := range renames {
		if _, ok := out[k]; !ok {
			return nil, errAt(u.Pos, "unit %s: rename of %s.%s does not match any bundle symbol",
				u.Name, k.local, k.sym)
		}
	}
	return out, nil
}

// resolveSymbols runs after all wires are patched: it builds each
// instance's global rename map (imports -> provider symbols, exports and
// hidden names -> instance-suffixed names) and applies it to the cloned
// ASTs. It also validates that exports are actually defined and that
// referenced-but-unbound symbols are flagged.
func (e *elab) resolveSymbols(prog *Program) error {
	for _, inst := range prog.Instances {
		u := inst.Unit
		cidents, err := cidentMap(e.reg, u)
		if err != nil {
			return err
		}
		suffix := fmt.Sprintf("__k%d", inst.ID)
		mapping := map[string]string{}
		importIdents := map[string]bool{}
		// Imports: cident -> provider's global name.
		for _, imp := range u.Imports {
			w := inst.ImportWires[imp.Local]
			if w == nil || w.Provider == nil {
				return errAt(imp.Pos, "%s: import %q left unwired", inst.Path, imp.Local)
			}
			bt := e.reg.BundleTypes[imp.Type]
			for _, s := range bt.Syms {
				id := cidents[bkey{imp.Local, s}]
				target, ok := w.Provider.ExportSyms[w.Bundle][s]
				if !ok {
					return errAt(imp.Pos, "%s: provider %s has no symbol %q in bundle %q",
						inst.Path, w.Provider.Path, s, w.Bundle)
				}
				mapping[id] = target
				importIdents[id] = true
			}
		}
		// Exports: cident -> suffixed global.
		exportIdents := map[string]bool{}
		for _, exp := range u.Exports {
			bt := e.reg.BundleTypes[exp.Type]
			for _, s := range bt.Syms {
				id := cidents[bkey{exp.Local, s}]
				mapping[id] = inst.ExportSyms[exp.Local][s]
				exportIdents[id] = true
			}
		}
		// Collect definitions across the unit's files (C and assembly).
		definedGlobal := map[string]bool{} // non-static defined names
		for _, f := range inst.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *cmini.VarDecl:
					if !d.Extern && !d.Static {
						definedGlobal[d.Name] = true
					}
				case *cmini.FuncDecl:
					if d.Body != nil && !d.Static {
						definedGlobal[d.Name] = true
					}
				}
			}
		}
		for _, o := range inst.asmRaw {
			for _, s := range o.Syms {
				if s.Defined && !s.Local {
					definedGlobal[s.Name] = true
				}
			}
		}
		// Every export identifier must be defined by the unit's code.
		for id := range exportIdents {
			if !definedGlobal[id] {
				return errAt(u.Pos, "%s: export symbol %q is not defined by files %v",
					inst.Path, id, u.Files)
			}
			if importIdents[id] {
				return errAt(u.Pos, "%s: identifier %q is both imported and exported — add a rename", inst.Path, id)
			}
		}
		// Hidden names: defined, not exported. They get suffixed so that
		// instances never clash ("defined names that are not exported
		// will be hidden from all other units").
		for name := range definedGlobal {
			if exportIdents[name] {
				continue
			}
			if importIdents[name] {
				return errAt(u.Pos, "%s: identifier %q is defined locally but also bound to an import", inst.Path, name)
			}
			mapping[name] = name + suffix
		}
		// Per-file statics: suffix with file index as well (statics are
		// file-scoped in C).
		for fi, f := range inst.Files {
			fileMap := map[string]string{}
			for k, v := range mapping {
				fileMap[k] = v
			}
			for _, d := range f.Decls {
				var name string
				var static bool
				switch d := d.(type) {
				case *cmini.VarDecl:
					name, static = d.Name, d.Static
				case *cmini.FuncDecl:
					name, static = d.Name, d.Static && d.Body != nil
				}
				if static {
					fileMap[name] = fmt.Sprintf("%s%s_f%d", name, suffix, fi)
				}
			}
			// Unbound references: anything used that is not defined by
			// the unit (globally or as a file static), not bound to an
			// import, and not an ambient hardware symbol. An extern
			// declaration alone does not resolve a reference — that is
			// precisely the "spurious notch" the bag-of-objects model
			// cannot diagnose and Knit can.
			for ref := range cmini.GlobalRefs(f) {
				if mapping[ref] != "" || fileMap[ref] != "" || definedGlobal[ref] {
					continue
				}
				if strings.HasPrefix(ref, AmbientPrefix) {
					continue
				}
				return errAt(u.Pos,
					"%s: file %s uses symbol %q which is neither defined by the unit nor bound to an import",
					inst.Path, f.Name, ref)
			}
			cmini.RenameGlobals(f, fileMap)
		}
		// Assembly files: the same renaming, applied at the object level
		// (the objcopy path). Locals get a per-file suffix like C statics.
		for fi, raw := range inst.asmRaw {
			o := raw.Clone()
			objMap := map[string]string{}
			for k, v := range mapping {
				objMap[k] = v
			}
			for _, s := range o.Syms {
				if s.Local {
					objMap[s.Name] = fmt.Sprintf("%s%s_s%d", s.Name, suffix, fi)
				}
			}
			for _, s := range o.Syms {
				if s.Defined || objMap[s.Name] != "" ||
					strings.HasPrefix(s.Name, AmbientPrefix) {
					continue
				}
				return errAt(u.Pos,
					"%s: assembly file %s uses symbol %q which is neither defined by the unit nor bound to an import",
					inst.Path, o.Name, s.Name)
			}
			obj.Rename(o, objMap)
			inst.Objects = append(inst.Objects, o)
		}
		// Record initializer global names and validate they are defined.
		for _, ini := range inst.Inits {
			global, ok := mapping[ini.Func]
			if !ok || !definedGlobal[ini.Func] {
				return errAt(u.Pos, "%s: %s %q is not defined by the unit's files",
					inst.Path, initOrFin(ini.Finalizer), ini.Func)
			}
			ini.GlobalName = global
		}
	}
	return nil
}

// SortedInstances returns instances ordered by ID (deterministic).
func (p *Program) SortedInstances() []*Instance {
	out := append([]*Instance(nil), p.Instances...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
