package link

import (
	"fmt"
	"strings"
	"testing"

	"knit/internal/knit/lang"
)

func elabTest(t *testing.T, units, top string, sources Sources) (*Program, error) {
	t.Helper()
	f, err := lang.Parse("test.unit", units)
	if err != nil {
		t.Fatalf("parse units: %v", err)
	}
	reg, err := NewRegistry(f)
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	return Elaborate(reg, top, sources)
}

func mustElab(t *testing.T, units, top string, sources Sources) *Program {
	t.Helper()
	p, err := elabTest(t, units, top, sources)
	if err != nil {
		t.Fatalf("Elaborate: %v", err)
	}
	return p
}

const counterUnits = `
bundletype Count = { bump, current }

unit Counter = {
  exports [ count : Count ];
  files { "counter.c" };
}

unit Top = {
  exports [ count : Count ];
  link {
    [count] <- Counter <- [];
  };
}
`

var counterSources = Sources{
	"counter.c": `
static int n = 0;
int bump(void) { n++; return n; }
int current(void) { return n; }
`,
}

func TestElaborateAtomicExports(t *testing.T) {
	p := mustElab(t, counterUnits, "Top", counterSources)
	if len(p.Instances) != 1 {
		t.Fatalf("instances = %d", len(p.Instances))
	}
	inst := p.Instances[0]
	if inst.Unit.Name != "Counter" {
		t.Errorf("instance unit = %s", inst.Unit.Name)
	}
	g, err := p.ExportSymbol("count", "bump")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(g, "bump__k") {
		t.Errorf("global name = %q, want bump__k<N>", g)
	}
	// Hidden static renamed with file suffix.
	found := false
	for _, d := range inst.Files[0].Decls {
		if strings.HasPrefix(d.DeclName(), "n__k") {
			found = true
		}
	}
	if !found {
		t.Error("static n not instance-renamed")
	}
}

func TestMultipleInstantiationDistinctNames(t *testing.T) {
	units := counterUnits + `
bundletype Pair = { bump_a, bump_b }
unit UsesTwo = {
  imports [ a : Count, b : Count ];
  exports [ pair : Pair ];
  files { "uses.c" };
  rename {
    a.bump to bump_first;
    a.current to cur_first;
    b.bump to bump_second;
    b.current to cur_second;
  };
}
unit TwoCounters = {
  exports [ pair : Pair ];
  link {
    [c1] <- Counter <- [];
    [c2] <- Counter <- [];
    [pair] <- UsesTwo <- [c1, c2];
  };
}
`
	sources := Sources{
		"counter.c": counterSources["counter.c"],
		"uses.c": `
int bump_first(void);
int cur_first(void);
int bump_second(void);
int cur_second(void);
int bump_a(void) { return bump_first(); }
int bump_b(void) { return bump_second(); }
`,
	}
	p := mustElab(t, units, "TwoCounters", sources)
	if len(p.Instances) != 3 {
		t.Fatalf("instances = %d, want 3", len(p.Instances))
	}
	// The two Counter instances export distinct global names.
	var bumps []string
	for _, inst := range p.Instances {
		if inst.Unit.Name == "Counter" {
			bumps = append(bumps, inst.ExportSyms["count"]["bump"])
		}
	}
	if len(bumps) != 2 || bumps[0] == bumps[1] {
		t.Errorf("counter bump names = %v, want two distinct", bumps)
	}
}

func TestCyclicWiring(t *testing.T) {
	// Mutually recursive units: Even imports Odd and vice versa — the
	// cyclic linking the paper says object systems and ld handle poorly
	// but units handle naturally.
	units := `
bundletype EvenB = { is_even }
bundletype OddB = { is_odd }
bundletype Main = { check }

unit Even = {
  imports [ odd : OddB ];
  exports [ even : EvenB ];
  files { "even.c" };
}
unit Odd = {
  imports [ even : EvenB ];
  exports [ odd : OddB ];
  files { "odd.c" };
}
unit Driver = {
  imports [ even : EvenB ];
  exports [ main : Main ];
  files { "drv.c" };
}
unit Top = {
  exports [ main : Main ];
  link {
    [even] <- Even <- [odd];
    [odd] <- Odd <- [even];
    [main] <- Driver <- [even];
  };
}
`
	sources := Sources{
		"even.c": `
int is_odd(int n);
int is_even(int n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}
`,
		"odd.c": `
int is_even(int n);
int is_odd(int n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}
`,
		"drv.c": `
int is_even(int n);
int check(int n) { return is_even(n); }
`,
	}
	p := mustElab(t, units, "Top", sources)
	// Even's import wire points at Odd's instance and vice versa.
	var even, odd *Instance
	for _, inst := range p.Instances {
		switch inst.Unit.Name {
		case "Even":
			even = inst
		case "Odd":
			odd = inst
		}
	}
	if even.ImportWires["odd"].Provider != odd {
		t.Error("Even's odd import not wired to Odd")
	}
	if odd.ImportWires["even"].Provider != even {
		t.Error("Odd's even import not wired to Even")
	}
	if got := even.ImportType("odd"); got != "OddB" {
		t.Errorf("ImportType(odd) = %q, want OddB", got)
	}
	if got := even.ImportType("nope"); got != "" {
		t.Errorf("ImportType(nope) = %q, want empty", got)
	}
}

func TestInterpositionExpressible(t *testing.T) {
	// Figure 1(c): with units, interposing a logger between client and
	// server is just different wiring — contrast with
	// ldlink.TestFigure1cInterpositionImpossible.
	units := `
bundletype Serve = { serve }
bundletype Main = { go_ }

unit Server = {
  exports [ s : Serve ];
  files { "server.c" };
}
unit Wrap = {
  imports [ inner : Serve ];
  exports [ outer : Serve ];
  files { "wrap.c" };
  rename {
    inner.serve to serve_inner;
    outer.serve to serve_outer;
  };
}
unit Client = {
  imports [ s : Serve ];
  exports [ m : Main ];
  files { "client.c" };
}
unit Plain = {
  exports [ m : Main ];
  link {
    [s] <- Server <- [];
    [m] <- Client <- [s];
  };
}
unit Wrapped = {
  exports [ m : Main ];
  link {
    [s] <- Server <- [];
    [w] <- Wrap <- [s];
    [m] <- Client <- [w];
  };
}
`
	sources := Sources{
		"server.c": `int serve(int x) { return x + 1; }`,
		"wrap.c": `
int serve_inner(int x);
int serve_outer(int x) { return serve_inner(x) * 10; }
`,
		"client.c": `
int serve(int x);
int go_(int x) { return serve(x); }
`,
	}
	plain := mustElab(t, units, "Plain", sources)
	wrapped := mustElab(t, units, "Wrapped", sources)
	if len(plain.Instances) != 2 || len(wrapped.Instances) != 3 {
		t.Fatalf("instances: plain=%d wrapped=%d", len(plain.Instances), len(wrapped.Instances))
	}
	// In Wrapped, the client's import resolves to the wrapper, whose
	// import resolves to the server.
	var client, wrap, server *Instance
	for _, inst := range wrapped.Instances {
		switch inst.Unit.Name {
		case "Client":
			client = inst
		case "Wrap":
			wrap = inst
		case "Server":
			server = inst
		}
	}
	if client.ImportWires["s"].Provider != wrap {
		t.Error("client not wired to wrapper")
	}
	if wrap.ImportWires["inner"].Provider != server {
		t.Error("wrapper not wired to server")
	}
}

func TestElaborateErrors(t *testing.T) {
	cases := []struct{ name, units, top, want string }{
		{
			"type mismatch",
			`
bundletype A = { f }
bundletype B = { g }
unit P = { exports [ a : A ]; files { "p.c" }; }
unit C = { imports [ b : B ]; exports [ a2 : A ]; files { "c.c" }; }
unit T = { exports [ a2 : A ]; link { [a] <- P <- []; [a2] <- C <- [a]; }; }
`,
			"T", "bundle type",
		},
		{
			"arity out",
			`
bundletype A = { f }
unit P = { exports [ a : A ]; files { "p.c" }; }
unit T = { exports [ a : A ]; link { [a, extra] <- P <- []; }; }
`,
			"T", "exports 1 bundles, link line binds 2",
		},
		{
			"arity in",
			`
bundletype A = { f }
unit P = { exports [ a : A ]; files { "p.c" }; }
unit T = { exports [ a : A ]; link { [a] <- P <- [a]; }; }
`,
			"T", "imports 0 bundles, link line supplies 1",
		},
		{
			"unknown linked unit",
			`
bundletype A = { f }
unit T = { exports [ a : A ]; link { [a] <- Ghost <- []; }; }
`,
			"T", "unknown unit",
		},
		{
			"name bound twice",
			`
bundletype A = { f }
unit P = { exports [ a : A ]; files { "p.c" }; }
unit T = { exports [ a : A ]; link { [a] <- P <- []; [a] <- P <- []; }; }
`,
			"T", "bound twice",
		},
		{
			"export not bound",
			`
bundletype A = { f }
unit P = { exports [ a : A ]; files { "p.c" }; }
unit T = { exports [ missing : A ]; link { [a] <- P <- []; }; }
`,
			"T", "not bound in the link section",
		},
		{
			"top with imports",
			`
bundletype A = { f }
unit T = { imports [ a : A ]; exports [ b : A ]; files { "t.c" }; }
`,
			"T", "unsatisfied imports",
		},
		{
			"cident collision",
			`
bundletype A = { f }
unit U = { imports [ x : A, y : A ]; exports [ z : A ]; files { "u.c" }; }
unit P = { exports [ a : A ]; files { "p.c" }; }
unit T = { exports [ z : A ]; link { [a] <- P <- []; [z] <- U <- [a, a]; }; }
`,
			"T", "add a rename",
		},
		{
			"import and export same ident",
			`
bundletype A = { f }
unit W = { imports [ inner : A ]; exports [ outer : A ]; files { "w.c" }; }
unit P = { exports [ a : A ]; files { "p.c" }; }
unit T = { exports [ outer : A ]; link { [a] <- P <- []; [outer] <- W <- [a]; }; }
`,
			"T", "add a rename",
		},
		{
			"rename unknown bundle",
			`
bundletype A = { f }
unit P = { exports [ a : A ]; files { "p.c" }; rename { ghost.f to g; }; }
unit T = { exports [ a : A ]; link { [a] <- P <- []; }; }
`,
			"T", "rename of unknown bundle",
		},
		{
			"rename unknown symbol",
			`
bundletype A = { f }
unit P = { exports [ a : A ]; files { "p.c" }; rename { a.ghost to g; }; }
unit T = { exports [ a : A ]; link { [a] <- P <- []; }; }
`,
			"T", "does not match any bundle symbol",
		},
		{
			"initializer for unknown bundle",
			`
bundletype A = { f }
unit P = { exports [ a : A ]; initializer setup for ghost; files { "p.c" }; }
unit T = { exports [ a : A ]; link { [a] <- P <- []; }; }
`,
			"T", "unknown export bundle",
		},
		{
			"depends bad lhs",
			`
bundletype A = { f }
unit P = { exports [ a : A ]; depends { ghost needs a; }; files { "p.c" }; }
unit T = { exports [ a : A ]; link { [a] <- P <- []; }; }
`,
			"T", "not an import",
		},
		{
			"recursive compound",
			`
bundletype A = { f }
unit T = { exports [ a : A ]; link { [a] <- T <- []; }; }
`,
			"T", "nesting too deep",
		},
	}
	sources := Sources{
		"p.c": `int f(void) { return 1; }`,
		"c.c": `int g(void); int f(void) { return g(); }`,
		"t.c": `int f(void) { return 1; }`,
		"u.c": `int f(void) { return 1; }`,
		"w.c": `int f(void) { return 1; }`,
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := elabTest(t, c.units, c.top, sources)
			if err == nil {
				t.Fatalf("Elaborate succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestRegistryDuplicates(t *testing.T) {
	f1, _ := lang.Parse("a.unit", `bundletype T = { x }`)
	f2, _ := lang.Parse("b.unit", `bundletype T = { y }`)
	if _, err := NewRegistry(f1, f2); err == nil ||
		!strings.Contains(err.Error(), "redefined") {
		t.Errorf("err = %v, want redefined", err)
	}
}

// TestSpuriousExternTolerated: Figure 1(b)'s "spurious and unused extern
// declaration" is tolerated — only a *used* unbound symbol is an error.
// (The extern still obscures the component's true shape in ld's world;
// under Knit it is simply dead text.)
func TestSpuriousExternTolerated(t *testing.T) {
	units := `
bundletype A = { f }
unit P = { exports [ a : A ]; files { "p.c" }; }
unit T = { exports [ a : A ]; link { [a] <- P <- []; }; }
`
	sources := Sources{"p.c": `
extern int never_called(int x);  // spurious notch
extern int also_unused;
int f(void) { return 1; }
`}
	if _, err := elabTest(t, units, "T", sources); err != nil {
		t.Errorf("unused extern should be tolerated: %v", err)
	}
	// The same extern, once used, is a hard error.
	sources["p.c"] = `
extern int never_called(int x);
int f(void) { return never_called(1); }
`
	if _, err := elabTest(t, units, "T", sources); err == nil {
		t.Error("used unbound extern must be an error")
	}
}

// TestScaleWideKernel: elaboration and symbol resolution stay correct at
// a few hundred units.
func TestScaleWideKernel(t *testing.T) {
	const n = 300
	var b strings.Builder
	sources := Sources{}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "bundletype B%d = { f%d }\n", i, i)
		imports, body := "", ""
		if i > 0 {
			imports = fmt.Sprintf("imports [ below : B%d ];", i-1)
			body = fmt.Sprintf("int f%d(void);\nint f%d(void) { return f%d() + 1; }\n", i-1, i, i-1)
		} else {
			body = "int f0(void) { return 0; }\n"
		}
		fmt.Fprintf(&b, "unit U%d = {\n  %s\n  exports [ e : B%d ];\n  files { \"u%d.c\" };\n}\n",
			i, imports, i, i)
		sources[fmt.Sprintf("u%d.c", i)] = body
	}
	fmt.Fprintf(&b, "unit Wide = {\n  exports [ top : B%d ];\n  link {\n", n-1)
	for i := 0; i < n; i++ {
		ins := ""
		if i > 0 {
			ins = fmt.Sprintf("w%d", i-1)
		}
		out := fmt.Sprintf("w%d", i)
		if i == n-1 {
			out = "top"
		}
		fmt.Fprintf(&b, "    [%s] <- U%d <- [%s];\n", out, i, ins)
	}
	b.WriteString("  };\n}\n")
	p := mustElab(t, b.String(), "Wide", sources)
	if len(p.Instances) != n {
		t.Fatalf("instances = %d, want %d", len(p.Instances), n)
	}
	// Every instance got a unique export symbol.
	seen := map[string]bool{}
	for _, inst := range p.Instances {
		for _, syms := range inst.ExportSyms {
			for _, g := range syms {
				if seen[g] {
					t.Fatalf("duplicate global %q", g)
				}
				seen[g] = true
			}
		}
	}
}

func TestAmbientSymbolsNotRenamed(t *testing.T) {
	units := `
bundletype A = { f }
unit P = { exports [ a : A ]; files { "p.c" }; }
unit T = { exports [ a : A ]; link { [a] <- P <- []; }; }
`
	sources := Sources{"p.c": `
extern int __console_out(int c);
int f(void) { return __console_out(65); }
`}
	p := mustElab(t, units, "T", sources)
	// The ambient symbol must survive unrenamed in the instance AST.
	found := false
	for _, d := range p.Instances[0].Files[0].Decls {
		if d.DeclName() == "__console_out" {
			found = true
		}
	}
	if !found {
		t.Error("__console_out was renamed or dropped")
	}
}
