package link

import "knit/internal/cmini"

// InstanceSymbols returns every program-unique symbol name an instance
// defines after renaming: exported bundle symbols, hidden (suffixed)
// globals, file statics, and assembly-object definitions. It is the
// link-time symbol map that lets the machine attribute a runtime trap
// back to the owning unit instance.
func InstanceSymbols(inst *Instance) []string {
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
		}
	}
	for _, syms := range inst.ExportSyms {
		for _, global := range syms {
			add(global)
		}
	}
	// Files are already instance-renamed, so declaration names are the
	// final global names.
	for _, f := range inst.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *cmini.VarDecl:
				if !d.Extern {
					add(d.Name)
				}
			case *cmini.FuncDecl:
				if d.Body != nil {
					add(d.Name)
				}
			}
		}
	}
	for _, o := range inst.Objects {
		for _, s := range o.Syms {
			if s.Defined {
				add(s.Name)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	return out
}

// SymbolOwners maps every symbol defined by the program's instances to
// the path of its owning instance.
func (p *Program) SymbolOwners() map[string]string {
	out := map[string]string{}
	for _, inst := range p.Instances {
		for _, name := range InstanceSymbols(inst) {
			out[name] = inst.Path
		}
	}
	return out
}
