// Package flatten implements Knit's cross-component optimization (paper
// §6): it merges the (already instance-renamed) C sources of many unit
// instances into a single compilation unit, eliminates duplicate
// declarations, and sorts function definitions so that definitions come
// before as many uses as possible — "to encourage inlining in the C
// compiler". The ordinary intra-file optimizer then inlines across what
// used to be component boundaries and removes the call overhead and
// redundant loads that componentization introduced.
package flatten

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"reflect"

	"knit/internal/cmini"
	"knit/internal/knit/link"
)

// Fingerprint returns a stable content identity for a flatten region:
// a hash over the ordered, instance-renamed C sources of the given
// instances — exactly the inputs Merge's output depends on. Build
// caches use it to recognize that a region would merge and compile to
// the same object as before, without re-running the merge. Renaming
// has already folded each instance's resolved import/export wiring
// into its identifiers, so identical fingerprints mean identical
// post-link sources, not merely identical files on disk.
func Fingerprint(instances []*link.Instance) string {
	h := sha256.New()
	fmt.Fprintf(h, "region %d\x00", len(instances))
	for _, inst := range instances {
		fmt.Fprintf(h, "inst %d\x00", len(inst.Files))
		for _, f := range inst.Files {
			io.WriteString(h, f.Name)
			h.Write([]byte{0})
			io.WriteString(h, cmini.Print(f))
			h.Write([]byte{0})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Merge combines the sources of the given instances into one cmini file.
// Instance renaming has already made all global names unique, so the
// only reconciliation needed is:
//
//   - struct definitions: deduplicated by name; conflicting layouts are
//     an error;
//   - extern declarations: deduplicated, and dropped entirely when the
//     merged file contains the definition (the reference has become
//     intra-file — exactly what enables inlining);
//   - function definitions: topologically sorted callees-first.
func Merge(name string, instances []*link.Instance) (*cmini.File, error) {
	out := &cmini.File{Name: name}
	structs := map[string]*cmini.StructDecl{}
	defined := map[string]bool{}
	var externs []cmini.Decl
	externSeen := map[string]bool{}
	var vars []cmini.Decl
	var funcs []*cmini.FuncDecl

	for _, inst := range instances {
		for _, f := range inst.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *cmini.StructDecl:
					if prev, ok := structs[d.Name]; ok {
						if !sameStruct(prev, d) {
							return nil, fmt.Errorf(
								"flatten: struct %q defined with different layouts (in %s and %s)",
								d.Name, prev.Pos.File, d.Pos.File)
						}
						continue
					}
					structs[d.Name] = d
				case *cmini.VarDecl:
					if d.Extern {
						if !externSeen[d.Name] {
							externSeen[d.Name] = true
							externs = append(externs, d)
						}
						continue
					}
					if defined[d.Name] {
						return nil, fmt.Errorf("flatten: global %q defined twice after renaming (instance %s)",
							d.Name, inst.Path)
					}
					defined[d.Name] = true
					vars = append(vars, d)
				case *cmini.FuncDecl:
					if d.Body == nil {
						if !externSeen[d.Name] {
							externSeen[d.Name] = true
							externs = append(externs, d)
						}
						continue
					}
					if defined[d.Name] {
						return nil, fmt.Errorf("flatten: function %q defined twice after renaming (instance %s)",
							d.Name, inst.Path)
					}
					defined[d.Name] = true
					funcs = append(funcs, d)
				}
			}
		}
	}

	// Struct declarations first (layouts must precede by-value uses).
	orderedStructs, err := orderStructs(structs)
	if err != nil {
		return nil, err
	}
	for _, sd := range orderedStructs {
		out.Decls = append(out.Decls, sd)
	}
	// Externs whose definitions were merged in are dropped; the
	// definition will be ordered appropriately.
	for _, d := range externs {
		if !defined[d.DeclName()] {
			out.Decls = append(out.Decls, d)
		}
	}
	out.Decls = append(out.Decls, vars...)
	// Definitions sorted callees-first. (cmini resolves names file-wide,
	// so mutual recursion needs no forward declarations; the sort exists
	// to mirror the paper's "encourage inlining" ordering.)
	for _, fd := range sortCalleesFirst(funcs) {
		out.Decls = append(out.Decls, fd)
	}
	return out, nil
}

func sameStruct(a, b *cmini.StructDecl) bool {
	if len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i].Name != b.Fields[i].Name {
			return false
		}
		if !reflect.DeepEqual(a.Fields[i].Type, b.Fields[i].Type) {
			return false
		}
	}
	return true
}

// orderStructs sorts struct declarations so by-value field references
// come after their definitions; cycles (only legal via pointers) keep
// declaration order.
func orderStructs(structs map[string]*cmini.StructDecl) ([]*cmini.StructDecl, error) {
	var names []string
	for n := range structs {
		names = append(names, n)
	}
	sortStringsStable(names)
	// Dependencies: struct A depends on struct B if A has a field of
	// type B (or array of B) by value.
	deps := map[string][]string{}
	for _, n := range names {
		for _, f := range structs[n].Fields {
			if dep, ok := byValueStruct(f.Type); ok && dep != n {
				if _, exists := structs[dep]; exists {
					deps[n] = append(deps[n], dep)
				}
			}
		}
	}
	var out []*cmini.StructDecl
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(n string) error
	visit = func(n string) error {
		switch state[n] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("flatten: struct %q contains itself by value", n)
		}
		state[n] = 1
		for _, d := range deps[n] {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[n] = 2
		out = append(out, structs[n])
		return nil
	}
	for _, n := range names {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func byValueStruct(t cmini.Type) (string, bool) {
	switch t := t.(type) {
	case *cmini.StructType:
		return t.Name, true
	case *cmini.Array:
		return byValueStruct(t.Elem)
	}
	return "", false
}

// sortCalleesFirst orders function definitions so that callees precede
// callers where possible (Kahn's algorithm on the static call graph;
// cycles fall back to original order).
func sortCalleesFirst(funcs []*cmini.FuncDecl) []*cmini.FuncDecl {
	index := map[string]int{}
	for i, f := range funcs {
		index[f.Name] = i
	}
	// callers[i] lists indexes of functions that call funcs[i].
	callees := make([][]int, len(funcs))
	indeg := make([]int, len(funcs))
	for i, f := range funcs {
		file := &cmini.File{Decls: []cmini.Decl{f}}
		for ref := range cmini.GlobalRefs(file) {
			if j, ok := index[ref]; ok && j != i {
				callees[i] = append(callees[i], j)
				indeg[i]++ // i depends on j
			}
		}
	}
	// Kahn: emit functions whose dependencies are all emitted; among
	// ready functions pick original order (stable).
	emitted := make([]bool, len(funcs))
	done := make([]int, len(funcs)) // satisfied deps per function
	var out []*cmini.FuncDecl
	for len(out) < len(funcs) {
		progress := false
		for i := range funcs {
			if emitted[i] || done[i] < indeg[i] {
				continue
			}
			emitted[i] = true
			out = append(out, funcs[i])
			for j := range funcs {
				for _, dep := range callees[j] {
					if dep == i {
						done[j]++
					}
				}
			}
			progress = true
		}
		if !progress {
			// Cycle: emit remaining in original order.
			for i := range funcs {
				if !emitted[i] {
					emitted[i] = true
					out = append(out, funcs[i])
				}
			}
		}
	}
	return out
}

func sortStringsStable(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
