package flatten

import (
	"strings"
	"testing"

	"knit/internal/cmini"
	"knit/internal/knit/lang"
	"knit/internal/knit/link"
)

func elabProgram(t *testing.T, units, top string, sources link.Sources) *link.Program {
	t.Helper()
	f, err := lang.Parse("t.unit", units)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	reg, err := link.NewRegistry(f)
	if err != nil {
		t.Fatal(err)
	}
	p, err := link.Elaborate(reg, top, sources)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return p
}

const chainUnits = `
bundletype A = { fa }
bundletype B = { fb }

unit Bottom = {
  exports [ a : A ];
  files { "bottom.c" };
}
unit Top_ = {
  imports [ a : A ];
  exports [ b : B ];
  files { "top.c" };
}
unit K = {
  exports [ b : B ];
  link {
    [a] <- Bottom <- [];
    [b] <- Top_ <- [a];
  };
}
`

var chainSources = link.Sources{
	"bottom.c": `
struct shared { int x; int y; };
static int state = 1;
int fa(void) { return state; }
`,
	"top.c": `
struct shared { int x; int y; };
int fa(void);
int fb(void) { return fa() + 1; }
`,
}

func TestMergeBasics(t *testing.T) {
	p := elabProgram(t, chainUnits, "K", chainSources)
	merged, err := Merge("flat.c", p.SortedInstances())
	if err != nil {
		t.Fatal(err)
	}
	src := cmini.Print(merged)
	// Struct deduplicated.
	if n := strings.Count(src, "struct shared {"); n != 1 {
		t.Errorf("struct shared appears %d times:\n%s", n, src)
	}
	// The extern for fa is dropped: its definition is in the merged file.
	if strings.Contains(src, "extern") {
		t.Errorf("resolved extern not dropped:\n%s", src)
	}
	// Callee (fa) defined before caller (fb).
	ia := strings.Index(src, "fa__k")
	ib := strings.Index(src, "int fb")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("callee not before caller:\n%s", src)
	}
	// The merged file must still parse and compile.
	if _, err := cmini.Parse("flat.c", src); err != nil {
		t.Errorf("merged source does not reparse: %v", err)
	}
}

func TestMergeConflictingStructs(t *testing.T) {
	sources := link.Sources{
		"bottom.c": `
struct shared { int x; };
int fa(void) { return 0; }
`,
		"top.c": `
struct shared { int x; int y; };
int fa(void);
int fb(void) { return fa(); }
`,
	}
	p := elabProgram(t, chainUnits, "K", sources)
	_, err := Merge("flat.c", p.SortedInstances())
	if err == nil || !strings.Contains(err.Error(), "different layouts") {
		t.Errorf("err = %v, want struct layout conflict", err)
	}
}

func TestMergeKeepsUnresolvedExterns(t *testing.T) {
	sources := link.Sources{
		"bottom.c": `
extern int __console_out(int c);
int fa(void) { return __console_out(65); }
`,
		"top.c": `
int fa(void);
int fb(void) { return fa(); }
`,
	}
	p := elabProgram(t, chainUnits, "K", sources)
	merged, err := Merge("flat.c", p.SortedInstances())
	if err != nil {
		t.Fatal(err)
	}
	src := cmini.Print(merged)
	if !strings.Contains(src, "__console_out") {
		t.Errorf("ambient extern dropped:\n%s", src)
	}
}

func TestMergeMutualRecursionOrdered(t *testing.T) {
	units := `
bundletype E = { is_even }
bundletype O = { is_odd }
unit Even = {
  imports [ o : O ];
  exports [ e : E ];
  files { "even.c" };
}
unit Odd = {
  imports [ e : E ];
  exports [ o : O ];
  files { "odd.c" };
}
unit K = {
  exports [ e : E ];
  link {
    [e] <- Even <- [o];
    [o] <- Odd <- [e];
  };
}
`
	sources := link.Sources{
		"even.c": `
int is_odd(int n);
int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
`,
		"odd.c": `
int is_even(int n);
int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
`,
	}
	p := elabProgram(t, units, "K", sources)
	merged, err := Merge("flat.c", p.SortedInstances())
	if err != nil {
		t.Fatal(err)
	}
	// Cycle: both functions must still be present exactly once.
	src := cmini.Print(merged)
	if strings.Count(src, "int is_even__k") != 1 || strings.Count(src, "int is_odd__k") != 1 {
		t.Errorf("mutually recursive functions mangled:\n%s", src)
	}
}

func TestMergeTwoInstancesNoCollision(t *testing.T) {
	units := `
bundletype C = { bump }
bundletype P = { bump_both }
unit Counter = {
  exports [ c : C ];
  files { "counter.c" };
}
unit Pair = {
  imports [ c1 : C, c2 : C ];
  exports [ p : P ];
  files { "pair.c" };
  rename {
    c1.bump to bump1;
    c2.bump to bump2;
  };
}
unit K = {
  exports [ p : P ];
  link {
    [a] <- Counter <- [];
    [b] <- Counter <- [];
    [p] <- Pair <- [a, b];
  };
}
`
	sources := link.Sources{
		"counter.c": `
static int n = 0;
int bump(void) { n++; return n; }
`,
		"pair.c": `
int bump1(void);
int bump2(void);
int bump_both(void) { return bump1() * 100 + bump2(); }
`,
	}
	p := elabProgram(t, units, "K", sources)
	merged, err := Merge("flat.c", p.SortedInstances())
	if err != nil {
		t.Fatal(err)
	}
	src := cmini.Print(merged)
	if strings.Count(src, "int bump__k") != 2 {
		t.Errorf("expected two distinct bump definitions:\n%s", src)
	}
	if strings.Count(src, "static int n__k") != 2 {
		t.Errorf("expected two distinct statics:\n%s", src)
	}
}
