package ldlink

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"knit/internal/cmini"
	"knit/internal/compile"
	"knit/internal/machine"
	"knit/internal/obj"
)

// TestQuickObjectOrderIrrelevant: for plain object files (no archives)
// with unique definitions, the link result computes the same values in
// any command-line order — the property that makes the bag-of-objects
// model workable at all (and that archives then break, per
// TestOverrideByOrder).
func TestQuickObjectOrderIrrelevant(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	fn := func() bool {
		// A random chain: f0 calls f1 calls ... calls fn-1.
		n := 2 + r.Intn(5)
		var objs []*obj.File
		for i := 0; i < n; i++ {
			var src strings.Builder
			if i < n-1 {
				fmt.Fprintf(&src, "int f%d(int x);\n", i+1)
				fmt.Fprintf(&src, "int f%d(int x) { return f%d(x + %d) * %d; }\n",
					i, i+1, 1+r.Intn(5), 1+r.Intn(3))
			} else {
				fmt.Fprintf(&src, "int f%d(int x) { return x + %d; }\n", i, r.Intn(9))
			}
			f, err := cmini.Parse(fmt.Sprintf("o%d.c", i), src.String())
			if err != nil {
				t.Fatal(err)
			}
			o, err := compile.Compile(f, compile.Options{})
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, o)
		}
		runLink := func(order []int) (int64, error) {
			var items []Item
			for _, i := range order {
				items = append(items, Obj(objs[i]))
			}
			out, err := Link(items, Options{})
			if err != nil {
				return 0, err
			}
			img, err := machine.Load(out, machine.DefaultCosts())
			if err != nil {
				return 0, err
			}
			return machine.New(img).Run("f0", 3)
		}
		forward := make([]int, n)
		for i := range forward {
			forward[i] = i
		}
		v1, err := runLink(forward)
		if err != nil {
			t.Logf("forward link failed: %v", err)
			return false
		}
		shuffled := append([]int(nil), forward...)
		r.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		v2, err := runLink(shuffled)
		if err != nil {
			t.Logf("shuffled link failed: %v", err)
			return false
		}
		return v1 == v2
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
