package ldlink

import (
	"errors"
	"strings"
	"testing"

	"knit/internal/cmini"
	"knit/internal/compile"
	"knit/internal/machine"
	"knit/internal/obj"
)

// co compiles cmini source into an object file.
func co(t *testing.T, name, src string) *obj.File {
	t.Helper()
	f, err := cmini.Parse(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	o, err := compile.Compile(f, compile.Options{})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return o
}

func run(t *testing.T, f *obj.File, entry string, args ...int64) int64 {
	t.Helper()
	img, err := machine.Load(f, machine.DefaultCosts())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m := machine.New(img)
	v, err := m.Run(entry, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestLinkTwoObjects(t *testing.T) {
	client := co(t, "client.c", `
extern int serve(int x);
int main_(int x) { return serve(x) + 1; }
`)
	server := co(t, "server.c", `int serve(int x) { return x * 2; }`)
	out, err := Link([]Item{Obj(client), Obj(server)}, Options{Entry: "main_"})
	if err != nil {
		t.Fatal(err)
	}
	if v := run(t, out, "main_", 5); v != 11 {
		t.Errorf("main_(5) = %d, want 11", v)
	}
}

func TestUndefinedReference(t *testing.T) {
	client := co(t, "client.c", `
extern int serve(int x);
int main_(int x) { return serve(x); }
`)
	_, err := Link([]Item{Obj(client)}, Options{})
	var ue *UndefinedError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UndefinedError", err)
	}
	if len(ue.Syms) != 1 || ue.Syms[0] != "serve" {
		t.Errorf("undefined = %v", ue.Syms)
	}
}

func TestMultipleDefinition(t *testing.T) {
	a := co(t, "a.c", `int serve(int x) { return 1; }`)
	b := co(t, "b.c", `int serve(int x) { return 2; }`)
	_, err := Link([]Item{Obj(a), Obj(b)}, Options{})
	var md *MultipleDefinitionError
	if !errors.As(err, &md) {
		t.Fatalf("err = %v, want MultipleDefinitionError", err)
	}
	if md.Sym != "serve" {
		t.Errorf("sym = %q", md.Sym)
	}
}

func TestStaticsDoNotClash(t *testing.T) {
	a := co(t, "a.c", `
static int state = 10;
int get_a(void) { return state; }
`)
	b := co(t, "b.c", `
static int state = 20;
int get_b(void) { return state; }
`)
	out, err := Link([]Item{Obj(a), Obj(b)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := run(t, out, "get_a"); v != 10 {
		t.Errorf("get_a = %d", v)
	}
	if v := run(t, out, "get_b"); v != 20 {
		t.Errorf("get_b = %d", v)
	}
}

func TestArchivePullsOnlyNeededMembers(t *testing.T) {
	client := co(t, "client.c", `
extern int alpha(void);
int main_(void) { return alpha(); }
`)
	libAlpha := co(t, "alpha.c", `int alpha(void) { return 1; }`)
	libBeta := co(t, "beta.c", `int beta(void) { return 2; }`)
	lib := &Archive{Name: "libx.a", Members: []*obj.File{libAlpha, libBeta}}
	out, err := Link([]Item{Obj(client), Lib(lib)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Sym("beta") != nil {
		t.Error("unneeded archive member beta was included")
	}
	if v := run(t, out, "main_"); v != 1 {
		t.Errorf("main_ = %d", v)
	}
}

func TestArchiveMemberChains(t *testing.T) {
	// Member A needs member B: the archive is rescanned until fixpoint.
	client := co(t, "client.c", `
extern int top(void);
int main_(void) { return top(); }
`)
	a := co(t, "a.c", `
extern int bottom(void);
int top(void) { return bottom() + 1; }
`)
	b := co(t, "b.c", `int bottom(void) { return 41; }`)
	lib := &Archive{Name: "lib.a", Members: []*obj.File{a, b}}
	out, err := Link([]Item{Obj(client), Lib(lib)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := run(t, out, "main_"); v != 42 {
		t.Errorf("main_ = %d", v)
	}
}

func TestOverrideByOrder(t *testing.T) {
	// The paper (§5 "Before Knit"): "a careful ordering of ld's arguments
	// would allow a programmer to override an existing component". The
	// replacement object comes before the library, so the library member
	// is never pulled.
	client := co(t, "client.c", `
extern int console_put(int c);
int main_(void) { return console_put(7); }
`)
	replacement := co(t, "myconsole.c", `int console_put(int c) { return c * 100; }`)
	original := co(t, "console.c", `int console_put(int c) { return c; }`)
	lib := &Archive{Name: "liboskit.a", Members: []*obj.File{original}}

	out, err := Link([]Item{Obj(client), Obj(replacement), Lib(lib)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := run(t, out, "main_"); v != 700 {
		t.Errorf("override failed: main_ = %d, want 700", v)
	}
}

// TestFigure1cInterpositionImpossible demonstrates the paper's Figure
// 1(c): a logging component that wants to wrap serve_web cannot be linked
// with ld — its definition of serve_web collides with the server's, and
// there is no way to tell the flat namespace which of the two the client
// (or the logger itself) should see.
func TestFigure1cInterpositionImpossible(t *testing.T) {
	client := co(t, "client.c", `
extern int serve_web(int req);
int handle(int req) { return serve_web(req); }
`)
	server := co(t, "server.c", `
int serve_web(int req) { return req + 1000; }
`)
	logger := co(t, "logger.c", `
extern int serve_web(int req); // wants the *server's* serve_web ...
static int logged = 0;
int log_count(void) { return logged; }
// ... while exporting its own serve_web to the client: impossible, the
// two names collide in ld's global namespace.
int serve_web(int req) {
    logged++;
    return serve_web(req); // and this recurses instead of calling the server
}
`)
	_ = logger // the compiler itself already resolves the call to the local def

	_, err := Link([]Item{Obj(client), Obj(logger), Obj(server)}, Options{})
	var md *MultipleDefinitionError
	if !errors.As(err, &md) {
		t.Fatalf("err = %v, want multiple definition of serve_web", err)
	}
	if md.Sym != "serve_web" {
		t.Errorf("colliding symbol = %q, want serve_web", md.Sym)
	}
}

func TestAllowUndefinedBuiltins(t *testing.T) {
	client := co(t, "client.c", `
extern int __console_out(int c);
int main_(void) { __console_out(65); return 0; }
`)
	out, err := Link([]Item{Obj(client)}, Options{AllowUndefined: []string{"__*"}})
	if err != nil {
		t.Fatal(err)
	}
	img, err := machine.Load(out, machine.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(img)
	c := machine.InstallConsole(m)
	if _, err := m.Run("main_"); err != nil {
		t.Fatal(err)
	}
	if c.String() != "A" {
		t.Errorf("console = %q", c.String())
	}
}

func TestMissingEntry(t *testing.T) {
	a := co(t, "a.c", `int f(void) { return 0; }`)
	_, err := Link([]Item{Obj(a)}, Options{Entry: "main_"})
	if err == nil || !strings.Contains(err.Error(), "entry symbol") {
		t.Errorf("err = %v, want entry symbol error", err)
	}
}

func TestLinkDoesNotMutateInputs(t *testing.T) {
	a := co(t, "a.c", `
static int state = 10;
int get_a(void) { return state; }
`)
	b := co(t, "b.c", `
static int state = 20;
int get_b(void) { return state; }
`)
	before := a.Funcs["get_a"].Code[0].Sym
	if _, err := Link([]Item{Obj(a), Obj(b)}, Options{}); err != nil {
		t.Fatal(err)
	}
	if a.Funcs["get_a"].Code[0].Sym != before {
		t.Error("linking mutated input object")
	}
}
