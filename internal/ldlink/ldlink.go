// Package ldlink is the baseline "bag of objects" linker the paper's
// Section 2.1 describes: a model of Unix ld. Objects are linked through a
// single global namespace; archives contribute members only when they
// define a symbol some already-included object needs; a definition can be
// overridden by placing a replacement earlier on the command line — and,
// exactly as the paper argues, interposition on an interface is
// inexpressible because the interposer's export collides with the
// original definition in the flat namespace.
//
// Knit (internal/knit) is evaluated against this linker in the §6
// micro-benchmarks and in the Figure 1(c) interposition demonstration.
package ldlink

import (
	"fmt"
	"strings"

	"knit/internal/obj"
)

// Archive is an ar-style library: an ordered bag of object files.
type Archive struct {
	Name    string
	Members []*obj.File
}

// Item is one linker command-line argument: either an object file or an
// archive.
type Item struct {
	Object  *obj.File
	Archive *Archive
}

// Obj wraps an object file as a link item.
func Obj(f *obj.File) Item { return Item{Object: f} }

// Lib wraps an archive as a link item.
func Lib(a *Archive) Item { return Item{Archive: a} }

// Options controls a link.
type Options struct {
	// AllowUndefined lists symbols that may remain undefined (they are
	// satisfied at run time by machine builtins, e.g. device entry
	// points). A trailing "*" makes an entry a prefix match.
	AllowUndefined []string
	// Entry, when set, is required to be defined in the output.
	Entry string
}

// LinkError is a link failure.
type LinkError struct{ Msg string }

func (e *LinkError) Error() string { return "ld: " + e.Msg }

// MultipleDefinitionError reports a symbol defined by two included
// objects — the error that makes Figure 1(c)-style interposition
// inexpressible with a flat namespace.
type MultipleDefinitionError struct {
	Sym           string
	First, Second string // object file names
}

func (e *MultipleDefinitionError) Error() string {
	return fmt.Sprintf("ld: multiple definition of %q (first defined in %s, again in %s)",
		e.Sym, e.First, e.Second)
}

// UndefinedError reports unresolved references at the end of the link.
type UndefinedError struct{ Syms []string }

func (e *UndefinedError) Error() string {
	return "ld: undefined reference to " + strings.Join(e.Syms, ", ")
}

// Link resolves items in command-line order and returns a single merged
// object file, mirroring ld's behaviour:
//
//   - explicit objects are always included, in order;
//   - archive members are included only if they define a symbol that is
//     undefined at the time the archive is examined (so an earlier object
//     can override a library member);
//   - two included objects defining the same global symbol is an error;
//   - any reference still undefined at the end is an error, unless
//     allowed by Options.AllowUndefined.
func Link(items []Item, opts Options) (*obj.File, error) {
	var included []*obj.File
	defined := map[string]string{} // symbol -> defining object name
	undef := map[string]bool{}

	include := func(f *obj.File) error {
		for _, s := range f.Syms {
			if s.Local {
				continue
			}
			if s.Defined {
				if prev, dup := defined[s.Name]; dup {
					return &MultipleDefinitionError{Sym: s.Name, First: prev, Second: f.Name}
				}
				defined[s.Name] = f.Name
				delete(undef, s.Name)
			} else if _, have := defined[s.Name]; !have {
				undef[s.Name] = true
			}
		}
		included = append(included, f)
		return nil
	}

	for _, item := range items {
		switch {
		case item.Object != nil:
			if err := include(item.Object); err != nil {
				return nil, err
			}
		case item.Archive != nil:
			taken := make([]bool, len(item.Archive.Members))
			for {
				progress := false
				for i, m := range item.Archive.Members {
					if taken[i] || !contributes(m, undef) {
						continue
					}
					if err := include(m); err != nil {
						return nil, err
					}
					taken[i] = true
					progress = true
				}
				if !progress {
					break
				}
			}
		default:
			return nil, &LinkError{Msg: "empty link item"}
		}
	}

	var missing []string
	for sym := range undef {
		if !allowed(sym, opts.AllowUndefined) {
			missing = append(missing, sym)
		}
	}
	if len(missing) > 0 {
		sortStrings(missing)
		return nil, &UndefinedError{Syms: missing}
	}
	if opts.Entry != "" {
		if _, ok := defined[opts.Entry]; !ok {
			return nil, &LinkError{Msg: fmt.Sprintf("entry symbol %q not defined", opts.Entry)}
		}
	}

	out := obj.NewFile("a.out")
	for _, f := range included {
		obj.Append(out, f.Clone())
	}
	return out, nil
}

// contributes reports whether archive member m defines any currently
// undefined symbol.
func contributes(m *obj.File, undef map[string]bool) bool {
	for _, s := range m.Syms {
		if s.Defined && !s.Local && undef[s.Name] {
			return true
		}
	}
	return false
}

func allowed(sym string, allow []string) bool {
	for _, a := range allow {
		if a == sym {
			return true
		}
		if strings.HasSuffix(a, "*") && strings.HasPrefix(sym, a[:len(a)-1]) {
			return true
		}
	}
	return false
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
