package machine

import (
	"sync"
	"testing"

	"knit/internal/cmini"
	"knit/internal/obj"
)

// TestSharedImageConcurrentMachines is the regression net for the Image
// sharing contract (see the Image doc comment): many machines run off
// one image at once, each exercising the per-machine mutable surface —
// memory, dynamic loads, interposition, snapshots — while the image is
// only read. Run with -race; a violation of the contract (any post-Load
// image mutation) shows up as a data race here.
func TestSharedImageConcurrentMachines(t *testing.T) {
	f := fileWith(
		buildFunc("bump", 0, 3, 0, []obj.Instr{
			{Op: obj.OpAddrGlobal, Dst: 1, Sym: "counter", A: obj.NoReg},
			{Op: obj.OpLoad, Dst: 2, A: 1},
			{Op: obj.OpConst, Dst: 0, Imm: 1},
			{Op: obj.OpBin, Dst: 2, A: 2, B: 0, Tok: int(cmini.PLUS)},
			{Op: obj.OpStore, A: 1, B: 2},
			{Op: obj.OpRet, A: 2, HasVal: true},
		}),
		buildFunc("orig", 0, 1, 0, []obj.Instr{
			{Op: obj.OpConst, Dst: 0, Imm: 1},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}),
	)
	f.Datas["counter"] = &obj.Data{Name: "counter", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitConst, Val: 0}}}
	f.AddSym(&obj.Symbol{Name: "counter", Kind: obj.SymData, Defined: true})

	img, err := Load(f, DefaultCosts())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	// The build layer's one sanctioned post-Load write, done before any
	// machine exists.
	img.SymbolOwner = map[string]string{"bump": "Top/Bump#1", "orig": "Top/Orig#2"}

	const machines, rounds = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < machines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := New(img)
			// Per-machine dynamic module: exercises the image-reading
			// side of LoadDynamic concurrently with sibling machines.
			mod := obj.NewFile("mod")
			mod.Funcs["repl"] = &obj.Func{Name: "repl", NArgs: 0, NRegs: 1, Code: []obj.Instr{
				{Op: obj.OpConst, Dst: 0, Imm: int64(100 + id)},
				{Op: obj.OpRet, A: 0, HasVal: true},
			}}
			mod.AddSym(&obj.Symbol{Name: "repl", Kind: obj.SymFunc, Defined: true})
			if err := m.LoadDynamic(mod); err != nil {
				t.Errorf("machine %d: LoadDynamic: %v", id, err)
				return
			}
			if err := m.Interpose("orig", "repl"); err != nil {
				t.Errorf("machine %d: Interpose: %v", id, err)
				return
			}
			snap := m.Snapshot()
			for r := 0; r < rounds; r++ {
				if _, err := m.Run("bump"); err != nil {
					t.Errorf("machine %d: bump: %v", id, err)
					return
				}
			}
			v, err := m.Run("bump")
			if err != nil {
				t.Errorf("machine %d: bump: %v", id, err)
				return
			}
			if v != rounds+1 {
				t.Errorf("machine %d: counter = %d, want %d (data bled across machines?)", id, v, rounds+1)
			}
			if v, err := m.Run("orig"); err != nil || v != int64(100+id) {
				t.Errorf("machine %d: interposed orig = %d, %v; want %d", id, v, err, 100+id)
			}
			// Restore rewinds this machine only: its counter, its
			// redirects, its dynamic modules.
			m.Restore(snap)
			if v, err := m.Run("bump"); err != nil || v != 1 {
				t.Errorf("machine %d: post-restore counter = %d, %v; want 1", id, v, err)
			}
			if owner := m.OwnerOf("bump"); owner != "Top/Bump#1" {
				t.Errorf("machine %d: OwnerOf(bump) = %q", id, owner)
			}
		}(i)
	}
	wg.Wait()
}

// TestSharedImageConcurrentCompiledMachines runs the same shared-image
// contract with a mixed fleet: half the machines on the compiled
// closure backend, half on the interpreter, all off one image. The
// compiled backend adds two shared read-mostly structures on top of the
// Image — the once-built static program (Image.prog) and the per-image
// cfunc bodies every compiled machine executes — plus per-machine state
// (dispatch caches, dynamic compilations) that must never bleed across
// siblings. Run with -race: the first few machines race to trigger the
// lazy image compilation while others are already executing it.
func TestSharedImageConcurrentCompiledMachines(t *testing.T) {
	f := fileWith(
		buildFunc("bump", 0, 3, 0, []obj.Instr{
			{Op: obj.OpAddrGlobal, Dst: 1, Sym: "counter", A: obj.NoReg},
			{Op: obj.OpLoad, Dst: 2, A: 1},
			{Op: obj.OpConst, Dst: 0, Imm: 1},
			{Op: obj.OpBin, Dst: 2, A: 2, B: 0, Tok: int(cmini.PLUS)},
			{Op: obj.OpStore, A: 1, B: 2},
			{Op: obj.OpRet, A: 2, HasVal: true},
		}),
		buildFunc("orig", 0, 1, 0, []obj.Instr{
			{Op: obj.OpConst, Dst: 0, Imm: 1},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}),
		buildFunc("caller", 0, 1, 0, []obj.Instr{
			{Op: obj.OpCall, Dst: 0, Sym: "orig", A: obj.NoReg},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}),
	)
	f.Datas["counter"] = &obj.Data{Name: "counter", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitConst, Val: 0}}}
	f.AddSym(&obj.Symbol{Name: "counter", Kind: obj.SymData, Defined: true})

	img, err := Load(f, DefaultCosts())
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	const machines, rounds = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < machines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := New(img)
			compiled := id%2 == 0
			if compiled {
				m.SetBackend(BackendCompiled)
			}
			// Per-machine interposition through a per-machine dynamic
			// module: each compiled machine builds its own dynamic cfunc
			// and dispatch cache; none of that may cross machines.
			mod := obj.NewFile("mod")
			mod.Funcs["repl"] = &obj.Func{Name: "repl", NArgs: 0, NRegs: 1, Code: []obj.Instr{
				{Op: obj.OpConst, Dst: 0, Imm: int64(100 + id)},
				{Op: obj.OpRet, A: 0, HasVal: true},
			}}
			mod.AddSym(&obj.Symbol{Name: "repl", Kind: obj.SymFunc, Defined: true})
			if err := m.LoadDynamic(mod); err != nil {
				t.Errorf("machine %d: LoadDynamic: %v", id, err)
				return
			}
			// Warm the direct-call dispatch slot on the original target,
			// then interpose: the slot must re-resolve, concurrently with
			// siblings doing the same against the shared cfunc bodies.
			if v, err := m.Run("caller"); err != nil || v != 1 {
				t.Errorf("machine %d: pre-interpose caller = %d, %v; want 1", id, v, err)
				return
			}
			if err := m.Interpose("orig", "repl"); err != nil {
				t.Errorf("machine %d: Interpose: %v", id, err)
				return
			}
			for r := 0; r < rounds; r++ {
				if _, err := m.Run("bump"); err != nil {
					t.Errorf("machine %d: bump: %v", id, err)
					return
				}
			}
			v, err := m.Run("bump")
			if err != nil {
				t.Errorf("machine %d: bump: %v", id, err)
				return
			}
			if v != rounds+1 {
				t.Errorf("machine %d: counter = %d, want %d (data bled across machines?)", id, v, rounds+1)
			}
			if v, err := m.Run("caller"); err != nil || v != int64(100+id) {
				t.Errorf("machine %d: interposed caller = %d, %v; want %d", id, v, err, 100+id)
			}
			if compiled && m.Stalls != 0 {
				t.Errorf("machine %d: compiled backend reported %d stalls; fetch model must stay off", id, m.Stalls)
			}
		}(i)
	}
	wg.Wait()
}

// TestSharedImageInterposeUnderLoad is the live-reconfiguration
// regression net: one canary machine churns the full upgrade cycle —
// dynamic load, interpose, re-interpose, unpose, unload, snapshot
// restore, with the rewire hook armed — while sibling machines on both
// backends serve calls off the same image. Run with -race. The
// siblings' counters and dispatch results must never see the canary's
// churn, and the canary must end every cycle clean.
func TestSharedImageInterposeUnderLoad(t *testing.T) {
	f := fileWith(
		buildFunc("bump", 0, 3, 0, []obj.Instr{
			{Op: obj.OpAddrGlobal, Dst: 1, Sym: "counter", A: obj.NoReg},
			{Op: obj.OpLoad, Dst: 2, A: 1},
			{Op: obj.OpConst, Dst: 0, Imm: 1},
			{Op: obj.OpBin, Dst: 2, A: 2, B: 0, Tok: int(cmini.PLUS)},
			{Op: obj.OpStore, A: 1, B: 2},
			{Op: obj.OpRet, A: 2, HasVal: true},
		}),
		buildFunc("orig", 0, 1, 0, []obj.Instr{
			{Op: obj.OpConst, Dst: 0, Imm: 1},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}),
		buildFunc("caller", 0, 1, 0, []obj.Instr{
			{Op: obj.OpCall, Dst: 0, Sym: "orig", A: obj.NoReg},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}),
	)
	f.Datas["counter"] = &obj.Data{Name: "counter", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitConst, Val: 0}}}
	f.AddSym(&obj.Symbol{Name: "counter", Kind: obj.SymData, Defined: true})

	img, err := Load(f, DefaultCosts())
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	const siblings, rounds, churns = 6, 300, 120
	var wg sync.WaitGroup

	// The canary: churn upgrade cycles as the reconfigure layer would —
	// each cycle loads a fresh module, anchors a redirect on the shared
	// symbol, overrides it with a second module (exercising redirect
	// path compression), then rolls the whole cycle back via Restore and
	// verifies zero residue against the pre-cycle snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		m := New(img)
		m.SetBackend(BackendCompiled)
		hooks := 0
		m.RewireHook = func(op, sym, target string) { hooks++ }
		snap := m.Snapshot()
		for c := 0; c < churns; c++ {
			modFor := func(name string, val int64) *obj.File {
				mod := obj.NewFile(name)
				mod.Funcs[name] = &obj.Func{Name: name, NArgs: 0, NRegs: 1, Code: []obj.Instr{
					{Op: obj.OpConst, Dst: 0, Imm: val},
					{Op: obj.OpRet, A: 0, HasVal: true},
				}}
				mod.AddSym(&obj.Symbol{Name: name, Kind: obj.SymFunc, Defined: true})
				return mod
			}
			if err := m.LoadDynamicAs("v1", "v1", modFor("repl1", int64(1000+c))); err != nil {
				t.Errorf("churn %d: load v1: %v", c, err)
				return
			}
			if err := m.Interpose("orig", "repl1"); err != nil {
				t.Errorf("churn %d: interpose v1: %v", c, err)
				return
			}
			if v, err := m.Run("caller"); err != nil || v != int64(1000+c) {
				t.Errorf("churn %d: caller via v1 = %d, %v; want %d", c, v, err, 1000+c)
				return
			}
			// Second upgrade overrides the first; path compression must
			// re-point the redirect so v1 unloads cleanly.
			if err := m.LoadDynamicAs("v2", "v2", modFor("repl2", int64(2000+c))); err != nil {
				t.Errorf("churn %d: load v2: %v", c, err)
				return
			}
			if err := m.Interpose("repl1", "repl2"); err != nil {
				t.Errorf("churn %d: interpose v2: %v", c, err)
				return
			}
			if err := m.UnloadDynamic("v1"); err != nil {
				t.Errorf("churn %d: unload v1: %v", c, err)
				return
			}
			if v, err := m.Run("caller"); err != nil || v != int64(2000+c) {
				t.Errorf("churn %d: caller via v2 = %d, %v; want %d", c, v, err, 2000+c)
				return
			}
			m.Restore(snap)
			if err := m.StateEqual(snap); err != nil {
				t.Errorf("churn %d: residue after rollback: %v", c, err)
				return
			}
			if v, err := m.Run("caller"); err != nil || v != 1 {
				t.Errorf("churn %d: post-rollback caller = %d, %v; want 1", c, v, err)
				return
			}
			// Running caller dirties the stack tracking; re-snapshot so the
			// next cycle's residue check compares like with like.
			snap = m.Snapshot()
		}
		if hooks == 0 {
			t.Error("canary: rewire hook never fired during churn")
		}
	}()

	// The siblings: serve steadily off the same image, no interposition.
	// Their counters count only their own calls and their dispatch of
	// "orig" never changes.
	for i := 0; i < siblings; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := New(img)
			if id%2 == 0 {
				m.SetBackend(BackendCompiled)
			}
			for r := 0; r < rounds; r++ {
				if v, err := m.Run("caller"); err != nil || v != 1 {
					t.Errorf("sibling %d round %d: caller = %d, %v; want 1", id, r, v, err)
					return
				}
				if _, err := m.Run("bump"); err != nil {
					t.Errorf("sibling %d round %d: bump: %v", id, r, err)
					return
				}
			}
			if v, err := m.Run("bump"); err != nil || v != rounds+1 {
				t.Errorf("sibling %d: counter = %d, %v; want %d (canary churn bled across machines?)",
					id, v, err, rounds+1)
			}
		}(i)
	}
	wg.Wait()
}

// TestSharedImageFreshMachineSeesInitData pins the other half of the
// contract: New copies initMem, so a machine that scribbled on its
// globals never leaks into a sibling created later from the same image.
func TestSharedImageFreshMachineSeesInitData(t *testing.T) {
	f := fileWith(buildFunc("bump", 0, 3, 0, []obj.Instr{
		{Op: obj.OpAddrGlobal, Dst: 1, Sym: "counter", A: obj.NoReg},
		{Op: obj.OpLoad, Dst: 2, A: 1},
		{Op: obj.OpConst, Dst: 0, Imm: 1},
		{Op: obj.OpBin, Dst: 2, A: 2, B: 0, Tok: int(cmini.PLUS)},
		{Op: obj.OpStore, A: 1, B: 2},
		{Op: obj.OpRet, A: 2, HasVal: true},
	}))
	f.Datas["counter"] = &obj.Data{Name: "counter", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitConst, Val: 41}}}
	f.AddSym(&obj.Symbol{Name: "counter", Kind: obj.SymData, Defined: true})
	img, err := Load(f, DefaultCosts())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	a := New(img)
	if v, err := a.Run("bump"); err != nil || v != 42 {
		t.Fatalf("first machine bump = %d, %v; want 42", v, err)
	}
	b := New(img)
	if v, err := b.Run("bump"); err != nil || v != 42 {
		t.Fatalf("fresh machine bump = %d, %v; want 42 (saw sibling's writes)", v, err)
	}
}
