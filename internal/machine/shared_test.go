package machine

import (
	"sync"
	"testing"

	"knit/internal/cmini"
	"knit/internal/obj"
)

// TestSharedImageConcurrentMachines is the regression net for the Image
// sharing contract (see the Image doc comment): many machines run off
// one image at once, each exercising the per-machine mutable surface —
// memory, dynamic loads, interposition, snapshots — while the image is
// only read. Run with -race; a violation of the contract (any post-Load
// image mutation) shows up as a data race here.
func TestSharedImageConcurrentMachines(t *testing.T) {
	f := fileWith(
		buildFunc("bump", 0, 3, 0, []obj.Instr{
			{Op: obj.OpAddrGlobal, Dst: 1, Sym: "counter", A: obj.NoReg},
			{Op: obj.OpLoad, Dst: 2, A: 1},
			{Op: obj.OpConst, Dst: 0, Imm: 1},
			{Op: obj.OpBin, Dst: 2, A: 2, B: 0, Tok: int(cmini.PLUS)},
			{Op: obj.OpStore, A: 1, B: 2},
			{Op: obj.OpRet, A: 2, HasVal: true},
		}),
		buildFunc("orig", 0, 1, 0, []obj.Instr{
			{Op: obj.OpConst, Dst: 0, Imm: 1},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}),
	)
	f.Datas["counter"] = &obj.Data{Name: "counter", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitConst, Val: 0}}}
	f.AddSym(&obj.Symbol{Name: "counter", Kind: obj.SymData, Defined: true})

	img, err := Load(f, DefaultCosts())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	// The build layer's one sanctioned post-Load write, done before any
	// machine exists.
	img.SymbolOwner = map[string]string{"bump": "Top/Bump#1", "orig": "Top/Orig#2"}

	const machines, rounds = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < machines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := New(img)
			// Per-machine dynamic module: exercises the image-reading
			// side of LoadDynamic concurrently with sibling machines.
			mod := obj.NewFile("mod")
			mod.Funcs["repl"] = &obj.Func{Name: "repl", NArgs: 0, NRegs: 1, Code: []obj.Instr{
				{Op: obj.OpConst, Dst: 0, Imm: int64(100 + id)},
				{Op: obj.OpRet, A: 0, HasVal: true},
			}}
			mod.AddSym(&obj.Symbol{Name: "repl", Kind: obj.SymFunc, Defined: true})
			if err := m.LoadDynamic(mod); err != nil {
				t.Errorf("machine %d: LoadDynamic: %v", id, err)
				return
			}
			if err := m.Interpose("orig", "repl"); err != nil {
				t.Errorf("machine %d: Interpose: %v", id, err)
				return
			}
			snap := m.Snapshot()
			for r := 0; r < rounds; r++ {
				if _, err := m.Run("bump"); err != nil {
					t.Errorf("machine %d: bump: %v", id, err)
					return
				}
			}
			v, err := m.Run("bump")
			if err != nil {
				t.Errorf("machine %d: bump: %v", id, err)
				return
			}
			if v != rounds+1 {
				t.Errorf("machine %d: counter = %d, want %d (data bled across machines?)", id, v, rounds+1)
			}
			if v, err := m.Run("orig"); err != nil || v != int64(100+id) {
				t.Errorf("machine %d: interposed orig = %d, %v; want %d", id, v, err, 100+id)
			}
			// Restore rewinds this machine only: its counter, its
			// redirects, its dynamic modules.
			m.Restore(snap)
			if v, err := m.Run("bump"); err != nil || v != 1 {
				t.Errorf("machine %d: post-restore counter = %d, %v; want 1", id, v, err)
			}
			if owner := m.OwnerOf("bump"); owner != "Top/Bump#1" {
				t.Errorf("machine %d: OwnerOf(bump) = %q", id, owner)
			}
		}(i)
	}
	wg.Wait()
}

// TestSharedImageConcurrentCompiledMachines runs the same shared-image
// contract with a mixed fleet: half the machines on the compiled
// closure backend, half on the interpreter, all off one image. The
// compiled backend adds two shared read-mostly structures on top of the
// Image — the once-built static program (Image.prog) and the per-image
// cfunc bodies every compiled machine executes — plus per-machine state
// (dispatch caches, dynamic compilations) that must never bleed across
// siblings. Run with -race: the first few machines race to trigger the
// lazy image compilation while others are already executing it.
func TestSharedImageConcurrentCompiledMachines(t *testing.T) {
	f := fileWith(
		buildFunc("bump", 0, 3, 0, []obj.Instr{
			{Op: obj.OpAddrGlobal, Dst: 1, Sym: "counter", A: obj.NoReg},
			{Op: obj.OpLoad, Dst: 2, A: 1},
			{Op: obj.OpConst, Dst: 0, Imm: 1},
			{Op: obj.OpBin, Dst: 2, A: 2, B: 0, Tok: int(cmini.PLUS)},
			{Op: obj.OpStore, A: 1, B: 2},
			{Op: obj.OpRet, A: 2, HasVal: true},
		}),
		buildFunc("orig", 0, 1, 0, []obj.Instr{
			{Op: obj.OpConst, Dst: 0, Imm: 1},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}),
		buildFunc("caller", 0, 1, 0, []obj.Instr{
			{Op: obj.OpCall, Dst: 0, Sym: "orig", A: obj.NoReg},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}),
	)
	f.Datas["counter"] = &obj.Data{Name: "counter", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitConst, Val: 0}}}
	f.AddSym(&obj.Symbol{Name: "counter", Kind: obj.SymData, Defined: true})

	img, err := Load(f, DefaultCosts())
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	const machines, rounds = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < machines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := New(img)
			compiled := id%2 == 0
			if compiled {
				m.SetBackend(BackendCompiled)
			}
			// Per-machine interposition through a per-machine dynamic
			// module: each compiled machine builds its own dynamic cfunc
			// and dispatch cache; none of that may cross machines.
			mod := obj.NewFile("mod")
			mod.Funcs["repl"] = &obj.Func{Name: "repl", NArgs: 0, NRegs: 1, Code: []obj.Instr{
				{Op: obj.OpConst, Dst: 0, Imm: int64(100 + id)},
				{Op: obj.OpRet, A: 0, HasVal: true},
			}}
			mod.AddSym(&obj.Symbol{Name: "repl", Kind: obj.SymFunc, Defined: true})
			if err := m.LoadDynamic(mod); err != nil {
				t.Errorf("machine %d: LoadDynamic: %v", id, err)
				return
			}
			// Warm the direct-call dispatch slot on the original target,
			// then interpose: the slot must re-resolve, concurrently with
			// siblings doing the same against the shared cfunc bodies.
			if v, err := m.Run("caller"); err != nil || v != 1 {
				t.Errorf("machine %d: pre-interpose caller = %d, %v; want 1", id, v, err)
				return
			}
			if err := m.Interpose("orig", "repl"); err != nil {
				t.Errorf("machine %d: Interpose: %v", id, err)
				return
			}
			for r := 0; r < rounds; r++ {
				if _, err := m.Run("bump"); err != nil {
					t.Errorf("machine %d: bump: %v", id, err)
					return
				}
			}
			v, err := m.Run("bump")
			if err != nil {
				t.Errorf("machine %d: bump: %v", id, err)
				return
			}
			if v != rounds+1 {
				t.Errorf("machine %d: counter = %d, want %d (data bled across machines?)", id, v, rounds+1)
			}
			if v, err := m.Run("caller"); err != nil || v != int64(100+id) {
				t.Errorf("machine %d: interposed caller = %d, %v; want %d", id, v, err, 100+id)
			}
			if compiled && m.Stalls != 0 {
				t.Errorf("machine %d: compiled backend reported %d stalls; fetch model must stay off", id, m.Stalls)
			}
		}(i)
	}
	wg.Wait()
}

// TestSharedImageFreshMachineSeesInitData pins the other half of the
// contract: New copies initMem, so a machine that scribbled on its
// globals never leaks into a sibling created later from the same image.
func TestSharedImageFreshMachineSeesInitData(t *testing.T) {
	f := fileWith(buildFunc("bump", 0, 3, 0, []obj.Instr{
		{Op: obj.OpAddrGlobal, Dst: 1, Sym: "counter", A: obj.NoReg},
		{Op: obj.OpLoad, Dst: 2, A: 1},
		{Op: obj.OpConst, Dst: 0, Imm: 1},
		{Op: obj.OpBin, Dst: 2, A: 2, B: 0, Tok: int(cmini.PLUS)},
		{Op: obj.OpStore, A: 1, B: 2},
		{Op: obj.OpRet, A: 2, HasVal: true},
	}))
	f.Datas["counter"] = &obj.Data{Name: "counter", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitConst, Val: 41}}}
	f.AddSym(&obj.Symbol{Name: "counter", Kind: obj.SymData, Defined: true})
	img, err := Load(f, DefaultCosts())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	a := New(img)
	if v, err := a.Run("bump"); err != nil || v != 42 {
		t.Fatalf("first machine bump = %d, %v; want 42", v, err)
	}
	b := New(img)
	if v, err := b.Run("bump"); err != nil || v != 42 {
		t.Fatalf("fresh machine bump = %d, %v; want 42 (saw sibling's writes)", v, err)
	}
}
