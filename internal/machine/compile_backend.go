package machine

// This file is the machine's second execution engine: a closure
// compiler. Each function of the loaded Image is translated, once, into
// a chain of Go closures per basic block — with fused superinstructions
// for common pairs (compare+branch, const+ALU, address+load/store,
// load+call) — and the per-instruction interpreter overhead (opcode
// switch, pc bounds check, fetch model, step/fuel checks) is replaced
// by one bulk check per straight-line segment.
//
// The compiled path preserves the interpreter's full runtime contract:
//
//   - Executed is exact at every observable point. Straight-line
//     segments end at call instructions, so a callee never sees
//     pre-counted instructions that follow the call; a trapping op rolls
//     the pre-count back to the instructions that actually ran; and when
//     a step/fuel limit could fire inside a segment, the segment is not
//     bulk-executed at all — the frame falls back to the interpreter
//     loop (execLoop with model=false), which traps at the exact
//     instruction the reference backend would.
//   - Traps carry the same Kind, message, Func and PC, so unit
//     attribution (Trap.Unit via SymbolOwner) is unchanged.
//   - PreCall/PostCall/PreRun hooks, Fuel, StepLimit, Interpose/Unpose,
//     Snapshot/Restore and dynamic load/unload all behave identically.
//     Call targets are resolved through a per-machine dispatch cache
//     whose entries are versioned by M.dispVersion; any operation that
//     can change the name→code mapping bumps the version, so a cached
//     target is never stale — an interposition takes effect at the very
//     next call, even within a running frame.
//   - The hot call path stays allocation-free (same arena discipline as
//     the interpreter).
//
// The one deliberate difference is the fetch model: compiled code does
// not simulate the instruction cache, so Stalls and ICacheRefs/ICacheMiss
// stay zero and, exactly,
//
//	Cycles(compiled) == Cycles(interp) − Stalls(interp).
//
// The backend-differential suite (backend_differential_test.go at the
// repo root, FuzzBackendEquivalence here) holds both backends to these
// invariants on every example, kernel, and fuzzed lifecycle sequence.

import (
	"fmt"

	"knit/internal/cmini"
	"knit/internal/obj"
)

// Backend selects the machine's execution engine.
type Backend int

const (
	// BackendInterp is the reference switch-dispatch interpreter with
	// the complete cost model, including instruction-fetch stalls.
	BackendInterp Backend = iota
	// BackendCompiled runs closure-compiled code: identical program
	// semantics, outputs, traps and instruction counts, several times
	// faster, with cycle accounting that excludes the I-cache model.
	BackendCompiled
)

// String names the backend the way the -backend flag spells it.
func (b Backend) String() string {
	if b == BackendCompiled {
		return "compiled"
	}
	return "interp"
}

// ParseBackend parses a -backend flag value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "interp", "interpreter":
		return BackendInterp, nil
	case "compiled", "closure", "closures":
		return BackendCompiled, nil
	}
	return 0, fmt.Errorf("machine: unknown backend %q (want interp or compiled)", s)
}

// Options configures machine creation beyond the image itself.
type Options struct {
	Backend Backend
}

// NewWith creates a machine for a loaded image with options.
func NewWith(img *Image, opts Options) *M {
	m := New(img)
	m.backend = opts.Backend
	return m
}

// SetBackend switches the execution engine. Switch between runs, not
// from inside simulated code: a frame started on one backend finishes
// on it.
func (m *M) SetBackend(b Backend) { m.backend = b }

// Backend reports the machine's execution engine.
func (m *M) Backend() Backend { return m.backend }

// copFn executes one (possibly fused) non-control instruction over the
// frame's registers.
type copFn func(m *M, regs []int64, fp int64) error

// ctermFn ends a basic block, returning the next block index (or
// blockRet), the function's return value when it does return, and the
// trap if control left the function's code.
type ctermFn func(m *M, regs []int64, fp int64) (int32, int64, error)

// blockRet is the ctermFn sentinel for "the function returned".
const blockRet = int32(-1)

// cseg is a run of straight-line instructions whose step/fuel
// accounting is done in bulk. A segment never extends past a call
// instruction, so Executed is exact whenever another frame (or a hook,
// or a builtin) can observe it.
type cseg struct {
	startPC int   // pc of the first instruction; exact-fallback entry point
	n       int64 // simulated instructions in the segment, terminator included
	ops     []copFn
	// done[i] is the number of segment instructions counted once ops[i]
	// completes; on a trap the pre-counted remainder (n - done[i]) is
	// rolled back so the counters match the interpreter's trap point.
	done []int64
}

// cblock is one basic block: its segments and the terminator.
type cblock struct {
	segs []cseg
	term ctermFn
}

// cfunc is one compiled function.
type cfunc struct {
	fn      *obj.Func
	blocks  []cblock
	siteEnd int // one past the highest dispatch-cache slot the code uses
}

// imageProg is the once-compiled static program, shared read-only by
// every machine on the image.
type imageProg struct {
	byFunc map[*obj.Func]*cfunc
	nsites int
}

// siteKind classifies what a dispatch-cache slot resolved to.
type siteKind uint8

const (
	siteUndef siteKind = iota
	siteFunc
	siteBuiltin
)

// callSite is one slot of the per-machine dispatch cache. Direct-call
// slots cache the interpose-resolved target for their (fixed) symbol;
// indirect-call slots are a monomorphic inline cache keyed by the last
// target address. Entries are valid only while version == dispVersion.
type callSite struct {
	version  uint64
	kind     siteKind
	cf       *cfunc
	b        Builtin
	lastAddr int64
}

// prog returns the image's compiled static program, building it on
// first use.
func (img *Image) prog() *imageProg {
	img.compileOnce.Do(func() {
		p := &imageProg{byFunc: make(map[*obj.Func]*cfunc, len(img.Entry))}
		var names []string
		for name := range img.Entry {
			names = append(names, name)
		}
		sortStrings(names) // deterministic dispatch-slot numbering
		next := 0
		for _, name := range names {
			fn := img.Entry[name]
			p.byFunc[fn] = compileFunc(fn, nil, img, &next)
		}
		p.nsites = next
		img.compiled = p
	})
	return img.compiled
}

// compiledFor returns the compiled form of fn: the image-wide one for
// static functions, a per-machine (lazily built) one for dynamically
// loaded functions. Dynamic compilations bake in symbol addresses,
// which is sound because a live module's addresses never move — loads
// validate resolution, unload is refused while referenced, and
// unload/restore/reset drop the cache wholesale.
func (m *M) compiledFor(fn *obj.Func) *cfunc {
	p := m.Img.prog()
	if m.nextSite < p.nsites {
		m.nextSite = p.nsites
	}
	if cf, ok := p.byFunc[fn]; ok {
		return cf
	}
	if cf, ok := m.dynCompiled[fn]; ok {
		return cf
	}
	cf := compileFunc(fn, m, m.Img, &m.nextSite)
	if m.dynCompiled == nil {
		m.dynCompiled = map[*obj.Func]*cfunc{}
	}
	m.dynCompiled[fn] = cf
	return cf
}

// growSites extends the dispatch cache to hold at least n slots. Slots
// start at version 0, which dispVersion (always ≥ 1) never matches, so
// new slots are born invalid.
func (m *M) growSites(n int) {
	ns := make([]callSite, n+16)
	copy(ns, m.sites)
	m.sites = ns
}

// invoke runs one compiled function body, firing the PostCall hook
// exactly like the interpreter's call wrapper.
func (m *M) invoke(cf *cfunc, args []int64) (int64, error) {
	if m.PostCall == nil {
		return m.enterCompiled(cf, args)
	}
	depth := m.depth
	start := m.Cycles
	v, err := m.enterCompiled(cf, args)
	m.PostCall(CallInfo{Fn: cf.fn.Name, Depth: depth, Start: start, Cycles: m.Cycles - start, Err: err})
	return v, err
}

// enterCompiled mirrors exec's frame prologue instruction for
// instruction — same checks in the same order, same trap messages, same
// arena discipline — then runs the compiled body.
func (m *M) enterCompiled(cf *cfunc, args []int64) (int64, error) {
	fn := cf.fn
	if m.depth >= MaxCallDepth {
		return 0, &Trap{Kind: TrapStackOverflow, Msg: "call stack overflow", Func: fn.Name}
	}
	if m.PreCall != nil {
		if err := m.PreCall(fn.Name); err != nil {
			return 0, err
		}
	}
	if len(args) != fn.NArgs {
		return 0, &Trap{Msg: fmt.Sprintf("called with %d args, want %d", len(args), fn.NArgs), Func: fn.Name}
	}
	m.depth++
	rbase := m.regTop
	defer func() { m.depth--; m.regTop = rbase }()

	if rbase+fn.NRegs > len(m.regStack) {
		m.regStack = growArena(m.regStack, rbase+fn.NRegs)
	}
	regs := m.regStack[rbase : rbase+fn.NRegs : rbase+fn.NRegs]
	m.regTop = rbase + fn.NRegs
	copy(regs, args)
	for i := len(args); i < len(regs); i++ {
		regs[i] = 0
	}
	fp := m.sp
	if fp+int64(fn.Frame) > m.stackLimit {
		return 0, &Trap{Kind: TrapStackOverflow, Msg: "simulated stack overflow", Func: fn.Name}
	}
	for i := int64(0); i < int64(fn.Frame); i++ {
		m.Mem[fp+i] = 0
	}
	m.sp = fp + int64(fn.Frame)
	defer func() { m.sp = fp }()

	return m.runCompiled(cf, regs, fp)
}

// runCompiled drives a compiled function body: per segment, one bulk
// step/fuel check and one bulk counter update, then the ops; per block,
// the terminator. When a segment could cross a limit, the rest of the
// frame runs on the exact interpreter loop instead (nested calls made
// from there still dispatch compiled).
func (m *M) runCompiled(cf *cfunc, regs []int64, fp int64) (int64, error) {
	if cf.siteEnd > len(m.sites) {
		m.growSites(cf.siteEnd)
	}
	bi := int32(0)
	for {
		b := &cf.blocks[bi]
		for si := range b.segs {
			s := &b.segs[si]
			lim := m.StepLimit
			if m.fuelEnd > 0 && m.fuelEnd < lim {
				lim = m.fuelEnd
			}
			if m.Executed+s.n > lim {
				// A limit fires somewhere in this segment: let the
				// interpreter find the exact instruction.
				return m.execLoop(cf.fn, regs, fp, s.startPC, false)
			}
			m.Executed += s.n
			m.Cycles += s.n * m.Costs.Instr
			for oi, op := range s.ops {
				if err := op(m, regs, fp); err != nil {
					// Keep only the instructions that actually ran.
					drop := s.n - s.done[oi]
					m.Executed -= drop
					m.Cycles -= drop * m.Costs.Instr
					return 0, err
				}
			}
		}
		next, ret, err := b.term(m, regs, fp)
		if err != nil {
			return 0, err
		}
		if next < 0 {
			return ret, nil
		}
		bi = next
	}
}

// compiledDispatch performs a direct call from compiled code through
// the dispatch cache, mirroring the interpreter's dispatch: interpose
// resolution, image → dynamic → builtin lookup order, identical cycle
// charges and counters, identical trap.
func (m *M) compiledDispatch(site int, sym string, regs []int64, argRegs []obj.Reg, caller string, pc int) (int64, error) {
	if m.sites[site].version != m.dispVersion {
		m.resolveSite(site, sym)
	}
	c := &m.sites[site]
	switch c.kind {
	case siteFunc:
		cf := c.cf
		m.Calls++
		m.Cycles += m.Costs.CallBase + m.Costs.CallPerArg*int64(len(argRegs))
		argv, abase := m.pushArgs(regs, argRegs)
		v, err := m.invoke(cf, argv)
		m.argTop = abase
		return v, err
	case siteBuiltin:
		b := c.b
		m.BuiltinCnt++
		m.Cycles += m.Costs.Builtin
		argv, abase := m.pushArgs(regs, argRegs)
		v, err := b(m, argv)
		m.argTop = abase
		return v, err
	default:
		return 0, &Trap{Kind: TrapUndefinedCall, Msg: "call to undefined function " + m.interposed(sym), Func: caller, PC: pc}
	}
}

// resolveSite fills one direct-call dispatch slot for sym, following
// the interpreter's resolution order. It writes through the index, not
// a held pointer: compiledFor can grow m.sites.
func (m *M) resolveSite(site int, sym string) {
	final := m.interposed(sym)
	c := callSite{version: m.dispVersion}
	if fn, ok := m.Img.Entry[final]; ok {
		c.kind, c.cf = siteFunc, m.compiledFor(fn)
	} else if fn, ok := m.dynFunc(final); ok {
		c.kind, c.cf = siteFunc, m.compiledFor(fn)
	} else if b, ok := m.Builtins[final]; ok {
		c.kind, c.b = siteBuiltin, b
	} else {
		c.kind = siteUndef
	}
	c.version = m.dispVersion // compiledFor cannot bump, but be explicit
	m.sites[site] = c
}

// compiledCallInd performs an indirect call from compiled code, with a
// monomorphic inline cache on the last target address. Interposition
// deliberately does not apply (same as the interpreter).
func (m *M) compiledCallInd(site int, regs []int64, aReg obj.Reg, argRegs []obj.Reg, caller string, pc int) (int64, error) {
	target := regs[aReg]
	c := &m.sites[site]
	cf := c.cf
	if c.version != m.dispVersion || c.lastAddr != target || cf == nil {
		fn, ok := m.Img.funcByAddr[target]
		if !ok {
			fn, ok = m.dynFuncByAddr(target)
		}
		if !ok {
			return 0, &Trap{Kind: TrapUnresolvedSymbol,
				Msg: fmt.Sprintf("indirect call to non-function address %#x", target), Func: caller, PC: pc}
		}
		cf = m.compiledFor(fn)
		c = &m.sites[site] // compiledFor may have grown the cache
		c.version, c.kind, c.cf, c.lastAddr = m.dispVersion, siteFunc, cf, target
	}
	m.IndCalls++
	m.Cycles += m.Costs.CallBase + m.Costs.Indirect + m.Costs.CallPerArg*int64(len(argRegs))
	argv, abase := m.pushArgs(regs, argRegs)
	v, err := m.invoke(cf, argv)
	m.argTop = abase
	return v, err
}

// trapTerm builds a terminator that traps. The Trap is allocated per
// occurrence: callers annotate traps (Run fills in Unit), and compiled
// code is shared across machines.
func trapTerm(kind TrapKind, msg, fname string, pc int) ctermFn {
	return func(m *M, regs []int64, fp int64) (int32, int64, error) {
		return 0, 0, &Trap{Kind: kind, Msg: msg, Func: fname, PC: pc}
	}
}

// trapOp builds a body op that traps (undefined symbol slots, bad
// opcodes): counted like the interpreter counts them, then trapping.
func trapOp(kind TrapKind, msg, fname string, pc int) copFn {
	return func(m *M, regs []int64, fp int64) error {
		return &Trap{Kind: kind, Msg: msg, Func: fname, PC: pc}
	}
}

// compileFunc translates one function. m is nil for the static image
// pass (symbols resolve against the image alone); for dynamic functions
// it is the owning machine, whose live symbol tables resolve the
// module's references. next allocates dispatch-cache slots.
func compileFunc(fn *obj.Func, m *M, img *Image, next *int) *cfunc {
	code := fn.Code
	n := len(code)
	cf := &cfunc{fn: fn}
	if n == 0 {
		// The interpreter traps "pc out of range" before counting
		// anything; an empty block with a trapping terminator matches.
		cf.blocks = []cblock{{
			segs: []cseg{{startPC: 0}},
			term: trapTerm(TrapGeneric, "pc out of range", fn.Name, 0),
		}}
		cf.siteEnd = *next
		return cf
	}

	// Block leaders: entry, branch/jump targets, and fall-through
	// successors of every control instruction.
	isLeader := make([]bool, n)
	isLeader[0] = true
	mark := func(t int) {
		if t >= 0 && t < n {
			isLeader[t] = true
		}
	}
	for pc := 0; pc < n; pc++ {
		switch code[pc].Op {
		case obj.OpJump:
			mark(code[pc].Targets[0])
			if pc+1 < n {
				isLeader[pc+1] = true
			}
		case obj.OpBranch:
			mark(code[pc].Targets[0])
			mark(code[pc].Targets[1])
			if pc+1 < n {
				isLeader[pc+1] = true
			}
		case obj.OpRet:
			if pc+1 < n {
				isLeader[pc+1] = true
			}
		}
	}
	blockIdx := make([]int32, n)
	nb := int32(0)
	for pc := 0; pc < n; pc++ {
		if isLeader[pc] {
			nb++
		}
		blockIdx[pc] = nb - 1
	}

	blocks := make([]cblock, 0, nb)
	pc := 0
	for pc < n {
		end := pc
		for {
			op := code[end].Op
			end++
			if op == obj.OpJump || op == obj.OpBranch || op == obj.OpRet {
				break
			}
			if end >= n || isLeader[end] {
				break
			}
		}
		blocks = append(blocks, compileBlock(fn, pc, end, blockIdx, m, img, next))
		pc = end
	}
	cf.blocks = blocks
	cf.siteEnd = *next
	return cf
}

// compileBlock translates code[start:end) — one basic block — into
// segments of fused closures plus a terminator.
func compileBlock(fn *obj.Func, start, end int, blockIdx []int32, m *M, img *Image, next *int) cblock {
	code := fn.Code
	n := len(code)
	fname := fn.Name
	var b cblock
	cur := cseg{startPC: start}
	emit := func(op copFn, width int64) {
		cur.n += width
		if op != nil {
			cur.ops = append(cur.ops, op)
			cur.done = append(cur.done, cur.n)
		}
	}
	closeSeg := func(nextPC int) {
		b.segs = append(b.segs, cur)
		cur = cseg{startPC: nextPC}
	}
	validPC := func(t int) bool { return t >= 0 && t < n }

	pc := start
	for pc < end {
		in := &code[pc]
		switch in.Op {
		case obj.OpJump:
			cur.n++ // the jump executes (and is counted) before control moves
			if t := in.Targets[0]; validPC(t) {
				tb := blockIdx[t]
				b.term = func(m *M, regs []int64, fp int64) (int32, int64, error) {
					return tb, 0, nil
				}
			} else {
				b.term = trapTerm(TrapGeneric, "pc out of range", fname, in.Targets[0])
			}
			pc++

		case obj.OpBranch:
			cur.n++
			a := in.A
			t0, t1 := in.Targets[0], in.Targets[1]
			if validPC(t0) && validPC(t1) {
				b0, b1 := blockIdx[t0], blockIdx[t1]
				b.term = func(m *M, regs []int64, fp int64) (int32, int64, error) {
					if regs[a] != 0 {
						return b0, 0, nil
					}
					return b1, 0, nil
				}
			} else {
				idx := blockIdx
				b.term = func(m *M, regs []int64, fp int64) (int32, int64, error) {
					t := t1
					if regs[a] != 0 {
						t = t0
					}
					if t < 0 || t >= n {
						return 0, 0, &Trap{Msg: "pc out of range", Func: fname, PC: t}
					}
					return idx[t], 0, nil
				}
			}
			pc++

		case obj.OpRet:
			cur.n++
			if in.HasVal {
				a := in.A
				b.term = func(m *M, regs []int64, fp int64) (int32, int64, error) {
					return blockRet, regs[a], nil
				}
			} else {
				b.term = func(m *M, regs []int64, fp int64) (int32, int64, error) {
					return blockRet, 0, nil
				}
			}
			pc++

		case obj.OpBin:
			// Fused compare-and-branch: the comparison is the last body
			// instruction, the branch the terminator, branching on the
			// comparison's (still architecturally written) result.
			if pc+2 == end && code[pc+1].Op == obj.OpBranch && code[pc+1].A == in.Dst {
				br := &code[pc+1]
				t0, t1 := br.Targets[0], br.Targets[1]
				if validPC(t0) && validPC(t1) {
					if term := cmpBranchTerm(cmini.Tok(in.Tok), in.Dst, in.A, in.B, blockIdx[t0], blockIdx[t1]); term != nil {
						cur.n += 2
						b.term = term
						pc += 2
						continue
					}
				}
			}
			if op, w := fuseBinChain(code, pc, end, fname); op != nil {
				emit(op, w)
				pc += int(w)
				continue
			}
			emit(compileBin(cmini.Tok(in.Tok), in.Dst, in.A, in.B, fname, pc), 1)
			pc++

		case obj.OpConst:
			// Fused indexed load: "v = base[imm]" and its accumulate form.
			if op, w := fuseIndexedLoad(code, pc, end, fname); op != nil {
				emit(op, w)
				pc += int(w)
				continue
			}
			// Fused ALU-immediate: const feeding the next op's B operand.
			if pc+1 < end {
				in2 := &code[pc+1]
				if in2.Op == obj.OpBin && in2.B == in.Dst && in2.A != in.Dst {
					if op := compileBinImm(cmini.Tok(in2.Tok), in.Dst, in.Imm, in2.Dst, in2.A); op != nil {
						emit(op, 2)
						pc += 2
						continue
					}
				}
			}
			dst, imm := in.Dst, in.Imm
			emit(func(m *M, regs []int64, fp int64) error {
				regs[dst] = imm
				return nil
			}, 1)
			pc++

		case obj.OpMov:
			// Batched unrolled accumulate runs first, then the single
			// mov-led indexed-load superinstruction.
			if op, w := fuseIndexedRun(code, pc, end, fname); op != nil {
				emit(op, w)
				pc += int(w)
				continue
			}
			if op, w := fuseIndexedLoad(code, pc, end, fname); op != nil {
				emit(op, w)
				pc += int(w)
				continue
			}
			if pc+1 < end {
				in2 := &code[pc+1]
				if in2.Op == obj.OpMov {
					d1, a1, d2, a2 := in.Dst, in.A, in2.Dst, in2.A
					emit(func(m *M, regs []int64, fp int64) error {
						regs[d1] = regs[a1]
						regs[d2] = regs[a2]
						return nil
					}, 2)
					pc += 2
					continue
				}
				if in2.Op == obj.OpConst {
					d1, a1, d2, imm := in.Dst, in.A, in2.Dst, in2.Imm
					emit(func(m *M, regs []int64, fp int64) error {
						regs[d1] = regs[a1]
						regs[d2] = imm
						return nil
					}, 2)
					pc += 2
					continue
				}
			}
			dst, a := in.Dst, in.A
			emit(func(m *M, regs []int64, fp int64) error {
				regs[dst] = regs[a]
				return nil
			}, 1)
			pc++

		case obj.OpUn:
			emit(compileUn(cmini.Tok(in.Tok), in.Dst, in.A, fname, pc), 1)
			pc++

		case obj.OpLoad:
			// Fused load+call: the loaded value (often a vtable-style
			// function address or an argument) feeds a direct call. The
			// load can trap with the call already pre-counted, so the
			// error path self-adjusts by the one instruction that did
			// not execute.
			if pc+1 < end && code[pc+1].Op == obj.OpCall {
				in2 := &code[pc+1]
				site := *next
				*next++
				lA, lDst, lpc := in.A, in.Dst, pc
				sym, argRegs, cDst, cpc := in2.Sym, in2.Args, in2.Dst, pc+1
				emit(func(m *M, regs []int64, fp int64) error {
					addr := regs[lA]
					if addr < nullGuard || addr >= int64(len(m.Mem)) {
						m.Executed--
						m.Cycles -= m.Costs.Instr
						return &Trap{Kind: TrapBadAddress,
							Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fname, PC: lpc}
					}
					regs[lDst] = m.Mem[addr]
					v, err := m.compiledDispatch(site, sym, regs, argRegs, fname, cpc)
					if err != nil {
						return err
					}
					regs[cDst] = v
					return nil
				}, 2)
				closeSeg(pc + 2)
				pc += 2
				continue
			}
			if op, w := fuseLoadBin(code, pc, end, fname); op != nil {
				emit(op, w)
				pc += int(w)
				continue
			}
			a, dst, lpc := in.A, in.Dst, pc
			emit(func(m *M, regs []int64, fp int64) error {
				addr := regs[a]
				if addr < nullGuard || addr >= int64(len(m.Mem)) {
					return &Trap{Kind: TrapBadAddress,
						Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fname, PC: lpc}
				}
				regs[dst] = m.Mem[addr]
				return nil
			}, 1)
			pc++

		case obj.OpStore:
			a, bReg, spc := in.A, in.B, pc
			emit(func(m *M, regs []int64, fp int64) error {
				addr := regs[a]
				if addr < nullGuard || addr >= int64(len(m.Mem)) {
					return &Trap{Kind: TrapBadAddress,
						Msg: fmt.Sprintf("store to invalid address %d", addr), Func: fname, PC: spc}
				}
				m.Mem[addr] = regs[bReg]
				return nil
			}, 1)
			pc++

		case obj.OpAddrLocal:
			// Fused frame-slot access: the computed address feeds the
			// next load or store. The address is still written to its
			// register (later code may reuse it).
			if pc+1 < end {
				in2 := &code[pc+1]
				if in2.Op == obj.OpLoad && in2.A == in.Dst {
					ad, off, dst, lpc := in.Dst, in.Imm, in2.Dst, pc+1
					emit(func(m *M, regs []int64, fp int64) error {
						addr := fp + off
						regs[ad] = addr
						if addr < nullGuard || addr >= int64(len(m.Mem)) {
							return &Trap{Kind: TrapBadAddress,
								Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fname, PC: lpc}
						}
						regs[dst] = m.Mem[addr]
						return nil
					}, 2)
					pc += 2
					continue
				}
				if in2.Op == obj.OpStore && in2.A == in.Dst {
					ad, off, vReg, spc := in.Dst, in.Imm, in2.B, pc+1
					emit(func(m *M, regs []int64, fp int64) error {
						addr := fp + off
						regs[ad] = addr
						if addr < nullGuard || addr >= int64(len(m.Mem)) {
							return &Trap{Kind: TrapBadAddress,
								Msg: fmt.Sprintf("store to invalid address %d", addr), Func: fname, PC: spc}
						}
						m.Mem[addr] = regs[vReg]
						return nil
					}, 2)
					pc += 2
					continue
				}
			}
			dst, off := in.Dst, in.Imm
			emit(func(m *M, regs []int64, fp int64) error {
				regs[dst] = fp + off
				return nil
			}, 1)
			pc++

		case obj.OpAddrGlobal:
			addr, ok := int64(0), false
			if m != nil {
				addr, ok = m.resolveAddr(in.Sym)
			} else {
				if a, found := img.GlobalAddr[in.Sym]; found {
					addr, ok = a, true
				} else if a, found := img.FuncAddr[in.Sym]; found {
					addr, ok = a, true
				}
			}
			if !ok {
				// Load/LoadDynamicAs validate every OpAddrGlobal, so this
				// closure is unreachable in practice; keep the
				// interpreter's trap for safety.
				emit(trapOp(TrapUnresolvedSymbol, "unresolved symbol "+in.Sym, fname, pc), 1)
				pc++
				continue
			}
			// Fused global load: address is a compile-time constant.
			if pc+1 < end && code[pc+1].Op == obj.OpLoad && code[pc+1].A == in.Dst {
				ad, dst, lpc, ga := in.Dst, code[pc+1].Dst, pc+1, addr
				emit(func(m *M, regs []int64, fp int64) error {
					regs[ad] = ga
					if ga < nullGuard || ga >= int64(len(m.Mem)) {
						return &Trap{Kind: TrapBadAddress,
							Msg: fmt.Sprintf("load from invalid address %d", ga), Func: fname, PC: lpc}
					}
					regs[dst] = m.Mem[ga]
					return nil
				}, 2)
				pc += 2
				continue
			}
			dst, ga := in.Dst, addr
			emit(func(m *M, regs []int64, fp int64) error {
				regs[dst] = ga
				return nil
			}, 1)
			pc++

		case obj.OpAddrString:
			if idx := int(in.Imm); idx >= 0 && idx < len(img.strAddr) {
				dst, sa := in.Dst, img.strAddr[idx]
				emit(func(m *M, regs []int64, fp int64) error {
					regs[dst] = sa
					return nil
				}, 1)
			} else {
				emit(trapOp(TrapBadStringIndex, "bad string literal index", fname, pc), 1)
			}
			pc++

		case obj.OpCall:
			site := *next
			*next++
			sym, argRegs, dst, cpc := in.Sym, in.Args, in.Dst, pc
			emit(func(m *M, regs []int64, fp int64) error {
				v, err := m.compiledDispatch(site, sym, regs, argRegs, fname, cpc)
				if err != nil {
					return err
				}
				regs[dst] = v
				return nil
			}, 1)
			closeSeg(pc + 1)
			pc++

		case obj.OpCallInd:
			site := *next
			*next++
			aReg, argRegs, dst, cpc := in.A, in.Args, in.Dst, pc
			emit(func(m *M, regs []int64, fp int64) error {
				v, err := m.compiledCallInd(site, regs, aReg, argRegs, fname, cpc)
				if err != nil {
					return err
				}
				regs[dst] = v
				return nil
			}, 1)
			closeSeg(pc + 1)
			pc++

		default:
			emit(trapOp(TrapGeneric, "bad opcode", fname, pc), 1)
			pc++
		}
	}

	if b.term == nil {
		// Fell off the block: into the next leader, or off the end of
		// the function (which the interpreter reports as pc out of
		// range without counting an instruction).
		if end < n {
			tb := blockIdx[end]
			b.term = func(m *M, regs []int64, fp int64) (int32, int64, error) {
				return tb, 0, nil
			}
		} else {
			b.term = trapTerm(TrapGeneric, "pc out of range", fname, end)
		}
	}
	if cur.n > 0 || len(cur.ops) > 0 || len(b.segs) == 0 {
		b.segs = append(b.segs, cur)
	}
	return b
}

// compileBin specializes a register-register ALU op; the default arm
// defers to obj.EvalBin so unknown tokens trap exactly like the
// interpreter.
func compileBin(tok cmini.Tok, dst, a, b obj.Reg, fname string, pc int) copFn {
	switch tok {
	case cmini.PLUS:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = regs[a] + regs[b]; return nil }
	case cmini.MINUS:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = regs[a] - regs[b]; return nil }
	case cmini.STAR:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = regs[a] * regs[b]; return nil }
	case cmini.SLASH:
		return func(m *M, regs []int64, fp int64) error {
			d := regs[b]
			if d == 0 {
				return &Trap{Msg: "divide by zero", Func: fname, PC: pc}
			}
			regs[dst] = regs[a] / d
			return nil
		}
	case cmini.PERCENT:
		return func(m *M, regs []int64, fp int64) error {
			d := regs[b]
			if d == 0 {
				return &Trap{Msg: "divide by zero", Func: fname, PC: pc}
			}
			regs[dst] = regs[a] % d
			return nil
		}
	case cmini.SHL:
		return func(m *M, regs []int64, fp int64) error {
			regs[dst] = regs[a] << (uint64(regs[b]) & 63)
			return nil
		}
	case cmini.SHR:
		return func(m *M, regs []int64, fp int64) error {
			regs[dst] = int64(uint64(regs[a]) >> (uint64(regs[b]) & 63))
			return nil
		}
	case cmini.AMP:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = regs[a] & regs[b]; return nil }
	case cmini.PIPE:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = regs[a] | regs[b]; return nil }
	case cmini.CARET:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = regs[a] ^ regs[b]; return nil }
	case cmini.LT:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = b2i(regs[a] < regs[b]); return nil }
	case cmini.GT:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = b2i(regs[a] > regs[b]); return nil }
	case cmini.LE:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = b2i(regs[a] <= regs[b]); return nil }
	case cmini.GE:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = b2i(regs[a] >= regs[b]); return nil }
	case cmini.EQ:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = b2i(regs[a] == regs[b]); return nil }
	case cmini.NE:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = b2i(regs[a] != regs[b]); return nil }
	}
	return func(m *M, regs []int64, fp int64) error {
		v, err := obj.EvalBin(tok, regs[a], regs[b])
		if err != nil {
			return &Trap{Msg: err.Error(), Func: fname, PC: pc}
		}
		regs[dst] = v
		return nil
	}
}

// compileBinImm fuses "const cd, imm; bin dst, a, cd" into one closure.
// The constant is still written to its register. Trapping and unknown
// tokens return nil (no fusion) so their exact interpreter semantics —
// which count the two instructions separately — are preserved by the
// unfused path.
func compileBinImm(tok cmini.Tok, cd obj.Reg, imm int64, dst, a obj.Reg) copFn {
	switch tok {
	case cmini.PLUS:
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = regs[a] + imm; return nil }
	case cmini.MINUS:
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = regs[a] - imm; return nil }
	case cmini.STAR:
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = regs[a] * imm; return nil }
	case cmini.SHL:
		sh := uint64(imm) & 63
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = regs[a] << sh; return nil }
	case cmini.SHR:
		sh := uint64(imm) & 63
		return func(m *M, regs []int64, fp int64) error {
			regs[cd] = imm
			regs[dst] = int64(uint64(regs[a]) >> sh)
			return nil
		}
	case cmini.AMP:
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = regs[a] & imm; return nil }
	case cmini.PIPE:
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = regs[a] | imm; return nil }
	case cmini.CARET:
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = regs[a] ^ imm; return nil }
	case cmini.LT:
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = b2i(regs[a] < imm); return nil }
	case cmini.GT:
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = b2i(regs[a] > imm); return nil }
	case cmini.LE:
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = b2i(regs[a] <= imm); return nil }
	case cmini.GE:
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = b2i(regs[a] >= imm); return nil }
	case cmini.EQ:
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = b2i(regs[a] == imm); return nil }
	case cmini.NE:
		return func(m *M, regs []int64, fp int64) error { regs[cd] = imm; regs[dst] = b2i(regs[a] != imm); return nil }
	}
	return nil
}

// pureBin returns a direct evaluator for a binary token that can never
// trap, or nil for SLASH, PERCENT, and unknown tokens. Fusions use it to
// decide whether an ALU op may ride inside a superinstruction at a
// position other than the last: a trap inside a fused group must only be
// able to happen where the group's error path accounts for it.
func pureBin(tok cmini.Tok) func(a, b int64) int64 {
	switch tok {
	case cmini.PLUS:
		return func(a, b int64) int64 { return a + b }
	case cmini.MINUS:
		return func(a, b int64) int64 { return a - b }
	case cmini.STAR:
		return func(a, b int64) int64 { return a * b }
	case cmini.SHL:
		return func(a, b int64) int64 { return a << (uint64(b) & 63) }
	case cmini.SHR:
		return func(a, b int64) int64 { return int64(uint64(a) >> (uint64(b) & 63)) }
	case cmini.AMP:
		return func(a, b int64) int64 { return a & b }
	case cmini.PIPE:
		return func(a, b int64) int64 { return a | b }
	case cmini.CARET:
		return func(a, b int64) int64 { return a ^ b }
	case cmini.LT:
		return func(a, b int64) int64 { return b2i(a < b) }
	case cmini.GT:
		return func(a, b int64) int64 { return b2i(a > b) }
	case cmini.LE:
		return func(a, b int64) int64 { return b2i(a <= b) }
	case cmini.GE:
		return func(a, b int64) int64 { return b2i(a >= b) }
	case cmini.EQ:
		return func(a, b int64) int64 { return b2i(a == b) }
	case cmini.NE:
		return func(a, b int64) int64 { return b2i(a != b) }
	}
	return nil
}

// fuseIndexedLoad recognizes the indexed-load superinstruction family
//
//	[mov p, base;] const k, imm; bin+ a, x, y; load v, a [; bin+ s, u, w; mov d, s']
//
// — the code shape compilers emit for "v = base[imm]" and its
// accumulate form "acc += base[imm]" (the single hottest pattern in
// unrolled element code). The closure performs the exact sequential
// register writes, so operand aliasing needs no side conditions; both
// ALU ops are required to be PLUS (address arithmetic), so the load in
// the middle is the group's only trap point, and its error path rolls
// back the tail instructions that did not run.
func fuseIndexedLoad(code []obj.Instr, pc, end int, fname string) (copFn, int64) {
	p := pc
	lead := code[p].Op == obj.OpMov
	if lead {
		p++
	}
	if p+2 >= end ||
		code[p].Op != obj.OpConst ||
		code[p+1].Op != obj.OpBin || cmini.Tok(code[p+1].Tok) != cmini.PLUS ||
		code[p+2].Op != obj.OpLoad {
		return nil, 0
	}
	tail := p+4 < end &&
		code[p+3].Op == obj.OpBin && cmini.Tok(code[p+3].Tok) == cmini.PLUS &&
		code[p+4].Op == obj.OpMov
	kd, imm := code[p].Dst, code[p].Imm
	bd, bA, bB := code[p+1].Dst, code[p+1].A, code[p+1].B
	ld, lA, lpc := code[p+2].Dst, code[p+2].A, p+2

	switch {
	case lead && tail:
		lmD, lmA := code[pc].Dst, code[pc].A
		td, tA, tB := code[p+3].Dst, code[p+3].A, code[p+3].B
		tmD, tmA := code[p+4].Dst, code[p+4].A
		return func(m *M, regs []int64, fp int64) error {
			regs[lmD] = regs[lmA]
			regs[kd] = imm
			regs[bd] = regs[bA] + regs[bB]
			addr := regs[lA]
			if addr < nullGuard || addr >= int64(len(m.Mem)) {
				m.Executed -= 2
				m.Cycles -= 2 * m.Costs.Instr
				return &Trap{Kind: TrapBadAddress,
					Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fname, PC: lpc}
			}
			regs[ld] = m.Mem[addr]
			regs[td] = regs[tA] + regs[tB]
			regs[tmD] = regs[tmA]
			return nil
		}, 6
	case lead:
		lmD, lmA := code[pc].Dst, code[pc].A
		return func(m *M, regs []int64, fp int64) error {
			regs[lmD] = regs[lmA]
			regs[kd] = imm
			regs[bd] = regs[bA] + regs[bB]
			addr := regs[lA]
			if addr < nullGuard || addr >= int64(len(m.Mem)) {
				return &Trap{Kind: TrapBadAddress,
					Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fname, PC: lpc}
			}
			regs[ld] = m.Mem[addr]
			return nil
		}, 4
	case tail:
		td, tA, tB := code[p+3].Dst, code[p+3].A, code[p+3].B
		tmD, tmA := code[p+4].Dst, code[p+4].A
		return func(m *M, regs []int64, fp int64) error {
			regs[kd] = imm
			regs[bd] = regs[bA] + regs[bB]
			addr := regs[lA]
			if addr < nullGuard || addr >= int64(len(m.Mem)) {
				m.Executed -= 2
				m.Cycles -= 2 * m.Costs.Instr
				return &Trap{Kind: TrapBadAddress,
					Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fname, PC: lpc}
			}
			regs[ld] = m.Mem[addr]
			regs[td] = regs[tA] + regs[tB]
			regs[tmD] = regs[tmA]
			return nil
		}, 5
	default:
		return func(m *M, regs []int64, fp int64) error {
			regs[kd] = imm
			regs[bd] = regs[bA] + regs[bB]
			addr := regs[lA]
			if addr < nullGuard || addr >= int64(len(m.Mem)) {
				return &Trap{Kind: TrapBadAddress,
					Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fname, PC: lpc}
			}
			regs[ld] = m.Mem[addr]
			return nil
		}, 3
	}
}

// ixRound is one decoded round of an unrolled indexed-accumulate run:
// mov; const; bin+; load; bin+; mov.
type ixRound struct {
	lmD, lmA, kd, bd, bA, bB, ld, lA, td, tA, tB, tmD, tmA obj.Reg
	imm                                                    int64
	lpc                                                    int
}

// fuseIndexedRun batches consecutive identical-shape accumulate
// 6-grams — the body of a compiler-unrolled "for { acc += base[i] }"
// loop — into a single closure driven by a pre-decoded descriptor
// array. An unrolled loop of N array reads costs N descriptor
// iterations instead of N closure dispatches. A trapping load inside
// round i rolls the bulk pre-count back to the 6i+4 instructions that
// architecturally ran (the round's mov, const, and address add, plus
// the trapping load itself).
func fuseIndexedRun(code []obj.Instr, pc, end int, fname string) (copFn, int64) {
	matches := func(p int) bool {
		return p+5 < end &&
			code[p].Op == obj.OpMov &&
			code[p+1].Op == obj.OpConst &&
			code[p+2].Op == obj.OpBin && cmini.Tok(code[p+2].Tok) == cmini.PLUS &&
			code[p+3].Op == obj.OpLoad &&
			code[p+4].Op == obj.OpBin && cmini.Tok(code[p+4].Tok) == cmini.PLUS &&
			code[p+5].Op == obj.OpMov
	}
	var rs []ixRound
	for p := pc; matches(p); p += 6 {
		rs = append(rs, ixRound{
			lmD: code[p].Dst, lmA: code[p].A,
			kd: code[p+1].Dst, imm: code[p+1].Imm,
			bd: code[p+2].Dst, bA: code[p+2].A, bB: code[p+2].B,
			ld: code[p+3].Dst, lA: code[p+3].A, lpc: p + 3,
			td: code[p+4].Dst, tA: code[p+4].A, tB: code[p+4].B,
			tmD: code[p+5].Dst, tmA: code[p+5].A,
		})
	}
	if len(rs) < 2 {
		return nil, 0
	}
	width := int64(6 * len(rs))
	if op := fuseIndexedRunStrided(code, pc, int(width), rs, fname); op != nil {
		return op, width
	}
	return func(m *M, regs []int64, fp int64) error {
		mem := m.Mem
		memLen := int64(len(mem))
		for i := range rs {
			r := &rs[i]
			regs[r.lmD] = regs[r.lmA]
			regs[r.kd] = r.imm
			regs[r.bd] = regs[r.bA] + regs[r.bB]
			addr := regs[r.lA]
			if addr < nullGuard || addr >= memLen {
				adj := width - (6*int64(i) + 4)
				m.Executed -= adj
				m.Cycles -= adj * m.Costs.Instr
				return &Trap{Kind: TrapBadAddress,
					Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fname, PC: r.lpc}
			}
			regs[r.ld] = mem[addr]
			regs[r.td] = regs[r.tA] + regs[r.tB]
			regs[r.tmD] = regs[r.tmA]
		}
		return nil
	}, width
}

// fuseIndexedRunStrided is the fast path of fuseIndexedRun: when every
// round implements exactly "acc += Mem[base+imm]" — the dataflow chains
// round-internally and each round's five temporaries are read by
// nothing else in the function — base and acc stay in host locals and
// the per-round register churn is skipped. A function frame's register
// file is observable only by the function's own instructions (traps,
// hooks and snapshots never expose it), so skipping writes to registers
// the rest of the function provably never reads cannot change any
// observable behaviour. The final round's writes are materialized: its
// registers are the only ones later code can legitimately consume.
// Returns nil when the shape or the liveness condition does not hold.
func fuseIndexedRunStrided(code []obj.Instr, pc, width int, rs []ixRound, fname string) copFn {
	r0 := &rs[0]
	base, acc := r0.lmA, r0.tA
	if base == acc {
		return nil
	}
	for i := range rs {
		r := &rs[i]
		if r.lmA != base || r.tA != acc || r.tmD != acc || r.tmA != r.td ||
			r.bA != r.lmD || r.bB != r.kd || r.lA != r.bd || r.tB != r.ld {
			return nil
		}
		for _, tmp := range [5]obj.Reg{r.lmD, r.kd, r.bd, r.ld, r.td} {
			if tmp == base || tmp == acc {
				return nil
			}
		}
	}
	// Registers read as sources anywhere outside the run's own
	// instructions.
	readOutside := map[obj.Reg]bool{}
	read := func(r obj.Reg) {
		if r != obj.NoReg {
			readOutside[r] = true
		}
	}
	for i := range code {
		if i >= pc && i < pc+width {
			continue
		}
		in := &code[i]
		switch in.Op {
		case obj.OpMov, obj.OpUn, obj.OpLoad, obj.OpBranch:
			read(in.A)
		case obj.OpBin, obj.OpStore:
			read(in.A)
			read(in.B)
		case obj.OpRet:
			if in.HasVal {
				read(in.A)
			}
		case obj.OpCall, obj.OpCallInd:
			read(in.A)
			for _, r := range in.Args {
				read(r)
			}
		}
	}
	for i := range rs[:len(rs)-1] {
		r := &rs[i]
		for _, tmp := range [5]obj.Reg{r.lmD, r.kd, r.bd, r.ld, r.td} {
			if readOutside[tmp] {
				return nil
			}
		}
	}
	imms := make([]int64, len(rs))
	for i := range rs {
		imms[i] = rs[i].imm
	}
	last := rs[len(rs)-1]
	w := int64(width)
	return func(m *M, regs []int64, fp int64) error {
		mem := m.Mem
		memLen := int64(len(mem))
		b := regs[base]
		a := regs[acc]
		for i, imm := range imms {
			addr := b + imm
			if addr < nullGuard || addr >= memLen {
				// The frame is dead after a trap — no later instruction
				// will read regs — so only the counters need fixing.
				adj := w - (6*int64(i) + 4)
				m.Executed -= adj
				m.Cycles -= adj * m.Costs.Instr
				return &Trap{Kind: TrapBadAddress,
					Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fname, PC: rs[i].lpc}
			}
			a += mem[addr]
		}
		regs[last.lmD] = b
		regs[last.kd] = last.imm
		regs[last.bd] = b + last.imm
		regs[last.ld] = mem[b+last.imm]
		regs[last.td] = a
		regs[acc] = a
		return nil
	}
}

// fuseBinChain fuses a non-trapping ALU op with its consumer: "bin;
// load" (address arithmetic feeding a dereference) or "bin; mov"
// (result copied into a named variable's register). PLUS gets an
// inlined body; other pure tokens go through one captured evaluator,
// still one dispatch instead of two.
func fuseBinChain(code []obj.Instr, pc, end int, fname string) (copFn, int64) {
	if pc+1 >= end {
		return nil, 0
	}
	in, in2 := &code[pc], &code[pc+1]
	tok := cmini.Tok(in.Tok)
	bd, bA, bB := in.Dst, in.A, in.B
	switch in2.Op {
	case obj.OpLoad:
		ld, lA, lpc := in2.Dst, in2.A, pc+1
		if tok == cmini.PLUS {
			return func(m *M, regs []int64, fp int64) error {
				regs[bd] = regs[bA] + regs[bB]
				addr := regs[lA]
				if addr < nullGuard || addr >= int64(len(m.Mem)) {
					return &Trap{Kind: TrapBadAddress,
						Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fname, PC: lpc}
				}
				regs[ld] = m.Mem[addr]
				return nil
			}, 2
		}
		if f := pureBin(tok); f != nil {
			return func(m *M, regs []int64, fp int64) error {
				regs[bd] = f(regs[bA], regs[bB])
				addr := regs[lA]
				if addr < nullGuard || addr >= int64(len(m.Mem)) {
					return &Trap{Kind: TrapBadAddress,
						Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fname, PC: lpc}
				}
				regs[ld] = m.Mem[addr]
				return nil
			}, 2
		}
	case obj.OpMov:
		md, mA := in2.Dst, in2.A
		if tok == cmini.PLUS {
			return func(m *M, regs []int64, fp int64) error {
				regs[bd] = regs[bA] + regs[bB]
				regs[md] = regs[mA]
				return nil
			}, 2
		}
		if f := pureBin(tok); f != nil {
			return func(m *M, regs []int64, fp int64) error {
				regs[bd] = f(regs[bA], regs[bB])
				regs[md] = regs[mA]
				return nil
			}, 2
		}
	}
	return nil, 0
}

// fuseLoadBin fuses "load; bin(pure)". The load is the group's first
// instruction, so its trap rolls back the pre-counted ALU op.
func fuseLoadBin(code []obj.Instr, pc, end int, fname string) (copFn, int64) {
	if pc+1 >= end || code[pc+1].Op != obj.OpBin {
		return nil, 0
	}
	f := pureBin(cmini.Tok(code[pc+1].Tok))
	if f == nil {
		return nil, 0
	}
	ld, lA, lpc := code[pc].Dst, code[pc].A, pc
	bd, bA, bB := code[pc+1].Dst, code[pc+1].A, code[pc+1].B
	return func(m *M, regs []int64, fp int64) error {
		addr := regs[lA]
		if addr < nullGuard || addr >= int64(len(m.Mem)) {
			m.Executed--
			m.Cycles -= m.Costs.Instr
			return &Trap{Kind: TrapBadAddress,
				Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fname, PC: lpc}
		}
		regs[ld] = m.Mem[addr]
		regs[bd] = f(regs[bA], regs[bB])
		return nil
	}, 2
}

// compileUn specializes a unary ALU op.
func compileUn(tok cmini.Tok, dst, a obj.Reg, fname string, pc int) copFn {
	switch tok {
	case cmini.MINUS:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = -regs[a]; return nil }
	case cmini.NOT:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = b2i(regs[a] == 0); return nil }
	case cmini.TILDE:
		return func(m *M, regs []int64, fp int64) error { regs[dst] = ^regs[a]; return nil }
	}
	return func(m *M, regs []int64, fp int64) error {
		v, err := obj.EvalUn(tok, regs[a])
		if err != nil {
			return &Trap{Msg: err.Error(), Func: fname, PC: pc}
		}
		regs[dst] = v
		return nil
	}
}

// cmpBranchTerm fuses "cmp cd, x, y; branch cd, then, else" into one
// terminator; the comparison result is still written to its register.
// Returns nil for non-comparison tokens (which may trap and must not be
// fused into the uncounted terminator position).
func cmpBranchTerm(tok cmini.Tok, cd, x, y obj.Reg, bt, bf int32) ctermFn {
	switch tok {
	case cmini.LT:
		return func(m *M, regs []int64, fp int64) (int32, int64, error) {
			if regs[x] < regs[y] {
				regs[cd] = 1
				return bt, 0, nil
			}
			regs[cd] = 0
			return bf, 0, nil
		}
	case cmini.GT:
		return func(m *M, regs []int64, fp int64) (int32, int64, error) {
			if regs[x] > regs[y] {
				regs[cd] = 1
				return bt, 0, nil
			}
			regs[cd] = 0
			return bf, 0, nil
		}
	case cmini.LE:
		return func(m *M, regs []int64, fp int64) (int32, int64, error) {
			if regs[x] <= regs[y] {
				regs[cd] = 1
				return bt, 0, nil
			}
			regs[cd] = 0
			return bf, 0, nil
		}
	case cmini.GE:
		return func(m *M, regs []int64, fp int64) (int32, int64, error) {
			if regs[x] >= regs[y] {
				regs[cd] = 1
				return bt, 0, nil
			}
			regs[cd] = 0
			return bf, 0, nil
		}
	case cmini.EQ:
		return func(m *M, regs []int64, fp int64) (int32, int64, error) {
			if regs[x] == regs[y] {
				regs[cd] = 1
				return bt, 0, nil
			}
			regs[cd] = 0
			return bf, 0, nil
		}
	case cmini.NE:
		return func(m *M, regs []int64, fp int64) (int32, int64, error) {
			if regs[x] != regs[y] {
				regs[cd] = 1
				return bt, 0, nil
			}
			regs[cd] = 0
			return bf, 0, nil
		}
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
