package machine

import (
	"strings"
	"testing"

	"knit/internal/obj"
)

// constMod builds a dynamic module named name exporting one function
// (fname, returning val) and one one-word global (gname).
func constMod(name, fname, gname string, val int64) *obj.File {
	f := obj.NewFile(name)
	f.Funcs[fname] = &obj.Func{Name: fname, NRegs: 2, Code: []obj.Instr{
		{Op: obj.OpConst, Dst: 1, Imm: val},
		{Op: obj.OpRet, A: 1, HasVal: true},
	}}
	f.AddSym(&obj.Symbol{Name: fname, Kind: obj.SymFunc, Defined: true})
	f.Datas[gname] = &obj.Data{Name: gname, Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitConst, Val: val}}}
	f.AddSym(&obj.Symbol{Name: gname, Kind: obj.SymData, Defined: true})
	return f
}

// callerMod builds a dynamic module whose function calls callee.
func callerMod(name, fname, callee string) *obj.File {
	f := obj.NewFile(name)
	f.Funcs[fname] = &obj.Func{Name: fname, NRegs: 2, Code: []obj.Instr{
		{Op: obj.OpCall, Dst: 1, Sym: callee, A: obj.NoReg},
		{Op: obj.OpRet, A: 1, HasVal: true},
	}}
	f.AddSym(&obj.Symbol{Name: fname, Kind: obj.SymFunc, Defined: true})
	f.AddSym(&obj.Symbol{Name: callee, Kind: obj.SymFunc, Defined: false})
	return f
}

func baseMachine(t *testing.T) *M {
	t.Helper()
	return loadFile(t, fileWith(buildFunc("base_id", 1, 2, 0, []obj.Instr{
		{Op: obj.OpRet, A: 0, HasVal: true},
	})))
}

func TestUnloadReclaimsSymbolsAndMemory(t *testing.T) {
	m := baseMachine(t)
	memBefore := len(m.Mem)
	if err := m.LoadDynamic(constMod("mod1", "fn1", "g1", 11)); err != nil {
		t.Fatal(err)
	}
	if v, err := m.Run("fn1"); err != nil || v != 11 {
		t.Fatalf("fn1 = %d, %v; want 11", v, err)
	}
	if err := m.UnloadDynamic("mod1"); err != nil {
		t.Fatalf("unload: %v", err)
	}
	if len(m.Mem) != memBefore {
		t.Errorf("memory not reclaimed: %d words, want %d", len(m.Mem), memBefore)
	}
	if mods := m.DynModules(); len(mods) != 0 {
		t.Errorf("live modules after unload: %v", mods)
	}
	if _, err := m.Run("fn1"); err == nil {
		t.Error("unloaded function still runnable")
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
	// The same module name is free for reuse after the unload.
	if err := m.LoadDynamic(constMod("mod1", "fn1", "g1", 22)); err != nil {
		t.Fatalf("reload after unload: %v", err)
	}
	if v, err := m.Run("fn1"); err != nil || v != 22 {
		t.Errorf("reloaded fn1 = %d, %v; want 22", v, err)
	}
}

func TestUnloadRefusedWhileReferenced(t *testing.T) {
	m := baseMachine(t)
	if err := m.LoadDynamic(constMod("prov", "p_fn", "p_g", 5)); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadDynamic(callerMod("cons", "c_fn", "p_fn")); err != nil {
		t.Fatal(err)
	}
	err := m.UnloadDynamic("prov")
	if err == nil {
		t.Fatal("unloading a referenced module was allowed")
	}
	for _, want := range []string{"prov", "cons", "p_fn", "unload \"cons\" first"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("refusal %q lacks %q", err, want)
		}
	}
	// Nothing changed: both modules still live and working.
	if v, err := m.Run("c_fn"); err != nil || v != 5 {
		t.Errorf("c_fn = %d, %v after refused unload; want 5", v, err)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
	// Reverse order works.
	if err := m.UnloadDynamic("cons"); err != nil {
		t.Fatal(err)
	}
	if err := m.UnloadDynamic("prov"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
}

func TestUnloadUnknownModule(t *testing.T) {
	m := baseMachine(t)
	if err := m.UnloadDynamic("ghost"); err == nil ||
		!strings.Contains(err.Error(), `no loaded module "ghost"`) {
		t.Errorf("err = %v, want no-loaded-module error", err)
	}
	if err := m.LoadDynamic(constMod("mod1", "fn1", "g1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.UnloadDynamic("mod1"); err != nil {
		t.Fatal(err)
	}
	if err := m.UnloadDynamic("mod1"); err == nil {
		t.Error("double unload succeeded")
	}
}

// TestUnloadMiddleModuleLeavesZeroedHole: unloading a module that is
// not the most recently loaded one cannot shrink memory (addresses are
// never reused) — its data region is zeroed instead, and later loads
// append fresh addresses past the high-water mark.
func TestUnloadMiddleModuleLeavesZeroedHole(t *testing.T) {
	m := baseMachine(t)
	if err := m.LoadDynamic(constMod("lo", "lo_fn", "lo_g", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadDynamic(constMod("hi", "hi_fn", "hi_g", 2)); err != nil {
		t.Fatal(err)
	}
	memWithBoth := len(m.Mem)
	if err := m.UnloadDynamic("lo"); err != nil {
		t.Fatalf("unload middle: %v", err)
	}
	if len(m.Mem) != memWithBoth {
		t.Errorf("middle unload changed memory size: %d, want %d", len(m.Mem), memWithBoth)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
	// hi still works; lo is gone.
	if v, err := m.Run("hi_fn"); err != nil || v != 2 {
		t.Errorf("hi_fn = %d, %v; want 2", v, err)
	}
	if _, err := m.Run("lo_fn"); err == nil {
		t.Error("unloaded lo_fn still runnable")
	}
	// Unloading the topmost module now truncates down past the hole's
	// high-water mark only as far as its own base.
	if err := m.UnloadDynamic("hi"); err != nil {
		t.Fatal(err)
	}
	if len(m.Mem) >= memWithBoth {
		t.Errorf("topmost unload reclaimed nothing: %d words", len(m.Mem))
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
}
