package machine

import (
	"strings"
	"testing"

	"knit/internal/cmini"
	"knit/internal/obj"
)

func TestLoadDynamicBasics(t *testing.T) {
	base := fileWith(buildFunc("base_fn", 1, 2, 0, []obj.Instr{
		{Op: obj.OpConst, Dst: 1, Imm: 10},
		{Op: obj.OpBin, Dst: 1, A: 0, B: 1, Tok: int(cmini.STAR)},
		{Op: obj.OpRet, A: 1, HasVal: true},
	}))
	base.Datas["shared"] = &obj.Data{Name: "shared", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitConst, Val: 7}}}
	base.AddSym(&obj.Symbol{Name: "shared", Kind: obj.SymData, Defined: true})
	m := loadFile(t, base)

	// Dynamic module: calls base_fn, reads shared, has its own data and
	// string.
	mod := obj.NewFile("mod")
	mod.Strings = []string{"z"}
	mod.Datas["own"] = &obj.Data{Name: "own", Size: 2, Init: []obj.DataInit{
		{Kind: obj.InitConst, Offset: 0, Val: 5},
		{Kind: obj.InitSym, Offset: 1, Sym: "base_fn"},
	}}
	mod.AddSym(&obj.Symbol{Name: "own", Kind: obj.SymData, Defined: true})
	mod.Funcs["dyn_fn"] = &obj.Func{Name: "dyn_fn", NArgs: 1, NRegs: 6, Code: []obj.Instr{
		{Op: obj.OpCall, Dst: 1, Sym: "base_fn", Args: []obj.Reg{0}, A: obj.NoReg}, // 10x
		{Op: obj.OpAddrGlobal, Dst: 2, Sym: "shared", A: obj.NoReg},
		{Op: obj.OpLoad, Dst: 2, A: 2}, // 7
		{Op: obj.OpBin, Dst: 1, A: 1, B: 2, Tok: int(cmini.PLUS)},
		{Op: obj.OpAddrGlobal, Dst: 3, Sym: "own", A: obj.NoReg},
		{Op: obj.OpLoad, Dst: 3, A: 3}, // 5
		{Op: obj.OpBin, Dst: 1, A: 1, B: 3, Tok: int(cmini.PLUS)},
		{Op: obj.OpAddrString, Dst: 4, Imm: 0, A: obj.NoReg},
		{Op: obj.OpLoad, Dst: 4, A: 4}, // 'z'
		{Op: obj.OpBin, Dst: 1, A: 1, B: 4, Tok: int(cmini.PLUS)},
		{Op: obj.OpRet, A: 1, HasVal: true},
	}}
	mod.AddSym(&obj.Symbol{Name: "dyn_fn", Kind: obj.SymFunc, Defined: true})

	if err := m.LoadDynamic(mod); err != nil {
		t.Fatalf("LoadDynamic: %v", err)
	}
	v, err := m.Run("dyn_fn", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(30 + 7 + 5 + 'z')
	if v != want {
		t.Errorf("dyn_fn(3) = %d, want %d", v, want)
	}
	// Indirect call through the function pointer stored in own[1].
	caller := obj.NewFile("c2")
	caller.Funcs["via_ptr"] = &obj.Func{Name: "via_ptr", NArgs: 1, NRegs: 3, Code: []obj.Instr{
		{Op: obj.OpAddrGlobal, Dst: 1, Sym: "own", A: obj.NoReg},
		{Op: obj.OpConst, Dst: 2, Imm: 1},
		{Op: obj.OpBin, Dst: 1, A: 1, B: 2, Tok: int(cmini.PLUS)},
		{Op: obj.OpLoad, Dst: 1, A: 1},
		{Op: obj.OpCallInd, Dst: 2, A: 1, Args: []obj.Reg{0}},
		{Op: obj.OpRet, A: 2, HasVal: true},
	}}
	caller.AddSym(&obj.Symbol{Name: "via_ptr", Kind: obj.SymFunc, Defined: true})
	if err := m.LoadDynamic(caller); err != nil {
		t.Fatal(err)
	}
	v, err = m.Run("via_ptr", 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 40 {
		t.Errorf("via_ptr(4) = %d, want 40", v)
	}
}

func TestLoadDynamicCollisionRejected(t *testing.T) {
	base := fileWith(buildFunc("f", 0, 1, 0, []obj.Instr{
		{Op: obj.OpRet, A: 0, HasVal: true},
	}))
	m := loadFile(t, base)
	mod := fileWith(buildFunc("f", 0, 1, 0, []obj.Instr{
		{Op: obj.OpRet, A: 0, HasVal: true},
	}))
	if err := m.LoadDynamic(mod); err == nil ||
		!strings.Contains(err.Error(), "already defined") {
		t.Errorf("err = %v, want already-defined rejection", err)
	}
}

func TestLoadDynamicUnresolvedRejected(t *testing.T) {
	m := loadFile(t, fileWith())
	mod := fileWith(buildFunc("g", 0, 2, 0, []obj.Instr{
		{Op: obj.OpAddrGlobal, Dst: 1, Sym: "nowhere", A: obj.NoReg},
		{Op: obj.OpRet, A: 1, HasVal: true},
	}))
	if err := m.LoadDynamic(mod); err == nil ||
		!strings.Contains(err.Error(), "unresolved symbol") {
		t.Errorf("err = %v, want unresolved symbol", err)
	}
	// Nothing was committed: memory length unchanged.
	if m.dyn != nil && len(m.dyn.funcs) != 0 {
		t.Error("failed load leaked state")
	}
}

func TestStackCannotGrowIntoDynamicData(t *testing.T) {
	// A deeply recursive function with a big frame must trap on the
	// stack limit, not write into dynamically loaded data.
	rec := buildFunc("rec", 1, 3, 1024, []obj.Instr{
		{Op: obj.OpBranch, A: 0, Targets: [2]int{1, 4}},
		{Op: obj.OpConst, Dst: 1, Imm: 1},
		{Op: obj.OpBin, Dst: 1, A: 0, B: 1, Tok: int(cmini.MINUS)},
		{Op: obj.OpCall, Dst: 2, Sym: "rec", Args: []obj.Reg{1}, A: obj.NoReg},
		{Op: obj.OpRet, A: 0, HasVal: true},
	})
	m := loadFile(t, fileWith(rec))
	mod := obj.NewFile("mod")
	mod.Datas["canary"] = &obj.Data{Name: "canary", Size: 4, Init: []obj.DataInit{
		{Kind: obj.InitConst, Offset: 0, Val: 111},
		{Kind: obj.InitConst, Offset: 3, Val: 222},
	}}
	mod.AddSym(&obj.Symbol{Name: "canary", Kind: obj.SymData, Defined: true})
	if err := m.LoadDynamic(mod); err != nil {
		t.Fatal(err)
	}
	canary, ok := m.resolveAddr("canary")
	if !ok {
		t.Fatal("canary not resolvable")
	}
	_, err := m.Run("rec", 1000) // 1000 frames x 1024 words >> 64K stack
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("err = %v, want stack overflow", err)
	}
	if m.Mem[canary] != 111 || m.Mem[canary+3] != 222 {
		t.Error("stack growth corrupted dynamic data")
	}
}
