package machine

import "fmt"

// Snapshot is a restorable copy of a machine's mutable program state:
// memory, stack pointer, the dynamic-module symbol tables, and the
// interposition redirects. It deliberately excludes the performance
// counters (Cycles, Executed, ...) — a rollback undoes what the program
// did, not the record that it ran — and the host-side builtins, which
// belong to the embedder.
type Snapshot struct {
	mem        []int64
	sp         int64
	stackLimit int64
	dyn        *dynState
	redirect   map[string]string
}

// Snapshot captures the machine's current program state. The snapshot
// is independent of later execution and may be restored any number of
// times; taking one costs a copy of the live memory image.
func (m *M) Snapshot() *Snapshot {
	s := &Snapshot{
		mem:        append([]int64(nil), m.Mem...),
		sp:         m.sp,
		stackLimit: m.stackLimit,
	}
	if m.dyn != nil {
		s.dyn = m.dyn.clone()
	}
	if m.redirect != nil {
		s.redirect = map[string]string{}
		for k, v := range m.redirect {
			s.redirect[k] = v
		}
	}
	return s
}

// Restore rewinds the machine's program state to the snapshot: memory
// contents (including any since-loaded dynamic modules' data), stack
// pointer, the dynamic symbol tables, and the interposition redirects.
// Modules loaded after the snapshot vanish; modules unloaded after it
// come back. Statistics and registered builtins are left alone.
func (m *M) Restore(s *Snapshot) {
	m.Mem = append([]int64(nil), s.mem...)
	m.sp = s.sp
	m.stackLimit = s.stackLimit
	if s.dyn != nil {
		m.dyn = s.dyn.clone()
	} else {
		m.dyn = nil
	}
	if s.redirect != nil {
		m.redirect = map[string]string{}
		for k, v := range s.redirect {
			m.redirect[k] = v
		}
	} else {
		m.redirect = nil
	}
	// Redirects and the dynamic-module world just changed wholesale:
	// drop the compiled backend's per-machine caches. Static compiled
	// code lives on the Image and is untouched; dynamic functions
	// recompile lazily against the restored tables.
	m.dynCompiled = nil
	m.dispVersion++
}

// StateEqual reports whether the machine's current program state matches
// the snapshot, returning nil on a match and an error naming the first
// divergence otherwise. It compares exactly what Restore would rewrite:
// memory, stack pointer and limit, interposition redirects, and the set
// of live dynamic modules. The reconfiguration layer uses it to certify
// that a rollback left zero residue.
func (m *M) StateEqual(s *Snapshot) error {
	if len(m.Mem) != len(s.mem) {
		return fmt.Errorf("memory size %d, snapshot has %d", len(m.Mem), len(s.mem))
	}
	for i := range m.Mem {
		if m.Mem[i] != s.mem[i] {
			return fmt.Errorf("memory word %d is %d, snapshot has %d", i, m.Mem[i], s.mem[i])
		}
	}
	if m.sp != s.sp {
		return fmt.Errorf("stack pointer %d, snapshot has %d", m.sp, s.sp)
	}
	if m.stackLimit != s.stackLimit {
		return fmt.Errorf("stack limit %d, snapshot has %d", m.stackLimit, s.stackLimit)
	}
	if len(m.redirect) != len(s.redirect) {
		return fmt.Errorf("%d interposition redirects, snapshot has %d", len(m.redirect), len(s.redirect))
	}
	for k, v := range m.redirect {
		if sv, ok := s.redirect[k]; !ok || sv != v {
			return fmt.Errorf("redirect %q -> %q, snapshot has %q -> %q", k, v, k, sv)
		}
	}
	var live, want []string
	if m.dyn != nil {
		for _, mod := range m.dyn.modules {
			live = append(live, mod.name)
		}
	}
	if s.dyn != nil {
		for _, mod := range s.dyn.modules {
			want = append(want, mod.name)
		}
	}
	if len(live) != len(want) {
		return fmt.Errorf("live dynamic modules %v, snapshot has %v", live, want)
	}
	for i := range live {
		if live[i] != want[i] {
			return fmt.Errorf("dynamic module %d is %q, snapshot has %q", i, live[i], want[i])
		}
	}
	return nil
}
