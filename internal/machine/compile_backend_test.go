package machine

import (
	"errors"
	"fmt"
	"testing"

	"knit/internal/cmini"
	"knit/internal/obj"
)

// These tests hold the compiled closure backend to the interpreter's
// contract on hand-built IR: same values, same memory, same traps (kind,
// message, function, pc), same instruction and call counts, and the
// exact cycle relation Cycles(compiled) == Cycles(interp) − Stalls.
// The repo-root backend_differential_test.go covers whole built
// programs; FuzzBackendEquivalence covers lifecycle interleavings.

// compiledPair loads f twice: an interpreter machine and a compiled one.
func compiledPair(t *testing.T, f *obj.File) (mi, mc *M) {
	t.Helper()
	mi = loadFile(t, f)
	mc = loadFile(t, f)
	mc.SetBackend(BackendCompiled)
	return mi, mc
}

// assertBackendParity compares everything the two backends must agree
// on after running the same workload.
func assertBackendParity(t *testing.T, mi, mc *M, vi, vc int64, ei, ec error) {
	t.Helper()
	if vi != vc {
		t.Errorf("value: interp=%d compiled=%d", vi, vc)
	}
	assertSameError(t, ei, ec)
	if mi.Executed != mc.Executed {
		t.Errorf("Executed: interp=%d compiled=%d", mi.Executed, mc.Executed)
	}
	if mi.Calls != mc.Calls || mi.IndCalls != mc.IndCalls || mi.BuiltinCnt != mc.BuiltinCnt {
		t.Errorf("calls: interp=(%d,%d,%d) compiled=(%d,%d,%d)",
			mi.Calls, mi.IndCalls, mi.BuiltinCnt, mc.Calls, mc.IndCalls, mc.BuiltinCnt)
	}
	if mc.Stalls != 0 || mc.ICacheRefs != 0 || mc.ICacheMiss != 0 {
		t.Errorf("compiled backend modeled the I-cache: stalls=%d refs=%d miss=%d",
			mc.Stalls, mc.ICacheRefs, mc.ICacheMiss)
	}
	if mc.Cycles != mi.Cycles-mi.Stalls {
		t.Errorf("cycle relation: compiled=%d, interp−stalls=%d−%d=%d",
			mc.Cycles, mi.Cycles, mi.Stalls, mi.Cycles-mi.Stalls)
	}
	if len(mi.Mem) != len(mc.Mem) {
		t.Fatalf("memory size: interp=%d compiled=%d", len(mi.Mem), len(mc.Mem))
	}
	for i := range mi.Mem {
		if mi.Mem[i] != mc.Mem[i] {
			t.Fatalf("memory diverges at %d: interp=%d compiled=%d", i, mi.Mem[i], mc.Mem[i])
		}
	}
}

func assertSameError(t *testing.T, ei, ec error) {
	t.Helper()
	if (ei == nil) != (ec == nil) {
		t.Fatalf("error: interp=%v compiled=%v", ei, ec)
	}
	if ei == nil {
		return
	}
	if ei.Error() != ec.Error() {
		t.Errorf("error text: interp=%q compiled=%q", ei, ec)
	}
	var ti, tc *Trap
	if errors.As(ei, &ti) != errors.As(ec, &tc) {
		t.Fatalf("trap-ness differs: interp=%v compiled=%v", ei, ec)
	}
	if ti != nil && (ti.Kind != tc.Kind || ti.Func != tc.Func || ti.PC != tc.PC || ti.Unit != tc.Unit) {
		t.Errorf("trap: interp=%+v compiled=%+v", *ti, *tc)
	}
}

// runBoth runs one entry on a fresh pair and checks parity.
func runBoth(t *testing.T, f *obj.File, setup func(*M), entry string, args ...int64) {
	t.Helper()
	mi, mc := compiledPair(t, f)
	if setup != nil {
		setup(mi)
		setup(mc)
	}
	vi, ei := mi.Run(entry, args...)
	vc, ec := mc.Run(entry, args...)
	assertBackendParity(t, mi, mc, vi, vc, ei, ec)
}

// sumLoopProgram: sum(n) = 1+2+...+n with a compare-and-branch loop —
// exercises the fused cmp+branch terminator and const+ALU pairs.
func sumLoopProgram() *obj.File {
	return fileWith(buildFunc("sum", 1, 5, 0, []obj.Instr{
		{Op: obj.OpConst, Dst: 1, Imm: 0},                       // s = 0
		{Op: obj.OpConst, Dst: 2, Imm: 1},                       // i = 1
		{Op: obj.OpBin, Dst: 3, A: 2, B: 0, Tok: int(cmini.GT)}, // i > n
		{Op: obj.OpBranch, A: 3, Targets: [2]int{8, 4}},
		{Op: obj.OpBin, Dst: 1, A: 1, B: 2, Tok: int(cmini.PLUS)}, // s += i
		{Op: obj.OpConst, Dst: 4, Imm: 1},
		{Op: obj.OpBin, Dst: 2, A: 2, B: 4, Tok: int(cmini.PLUS)}, // i++
		{Op: obj.OpJump, Targets: [2]int{2}},
		{Op: obj.OpRet, A: 1, HasVal: true},
	}))
}

// fibProgram: naive recursive fib — exercises calls, recursion depth,
// and fuel expiry inside deeply nested frames.
func fibProgram() *obj.File {
	return fileWith(buildFunc("fib", 1, 4, 0, []obj.Instr{
		{Op: obj.OpConst, Dst: 1, Imm: 2},
		{Op: obj.OpBin, Dst: 2, A: 0, B: 1, Tok: int(cmini.LT)},
		{Op: obj.OpBranch, A: 2, Targets: [2]int{3, 4}},
		{Op: obj.OpRet, A: 0, HasVal: true},
		{Op: obj.OpConst, Dst: 1, Imm: 1},
		{Op: obj.OpBin, Dst: 2, A: 0, B: 1, Tok: int(cmini.MINUS)},
		{Op: obj.OpCall, Dst: 2, Sym: "fib", Args: []obj.Reg{2}},
		{Op: obj.OpConst, Dst: 1, Imm: 2},
		{Op: obj.OpBin, Dst: 3, A: 0, B: 1, Tok: int(cmini.MINUS)},
		{Op: obj.OpCall, Dst: 3, Sym: "fib", Args: []obj.Reg{3}},
		{Op: obj.OpBin, Dst: 1, A: 2, B: 3, Tok: int(cmini.PLUS)},
		{Op: obj.OpRet, A: 1, HasVal: true},
	}))
}

// memProgram: globals, string literals, frame slots, and stores — the
// fused address+load/store paths.
func memProgram() *obj.File {
	f := fileWith(buildFunc("memops", 0, 6, 2, []obj.Instr{
		{Op: obj.OpConst, Dst: 1, Imm: 9},
		{Op: obj.OpAddrLocal, Dst: 0, Imm: 0},
		{Op: obj.OpStore, A: 0, B: 1}, // frame[0] = 9
		{Op: obj.OpAddrLocal, Dst: 2, Imm: 1},
		{Op: obj.OpStore, A: 2, B: 0}, // frame[1] = &frame[0]
		{Op: obj.OpAddrLocal, Dst: 3, Imm: 0},
		{Op: obj.OpLoad, Dst: 4, A: 3}, // r4 = frame[0]
		{Op: obj.OpAddrGlobal, Dst: 0, Sym: "g", A: obj.NoReg},
		{Op: obj.OpLoad, Dst: 5, A: 0}, // r5 = g[0]
		{Op: obj.OpBin, Dst: 4, A: 4, B: 5, Tok: int(cmini.PLUS)},
		{Op: obj.OpAddrString, Dst: 0, Imm: 0, A: obj.NoReg},
		{Op: obj.OpLoad, Dst: 5, A: 0}, // 'K'
		{Op: obj.OpBin, Dst: 4, A: 4, B: 5, Tok: int(cmini.PLUS)},
		{Op: obj.OpAddrGlobal, Dst: 0, Sym: "g", A: obj.NoReg},
		{Op: obj.OpStore, A: 0, B: 4}, // g[0] = result
		{Op: obj.OpRet, A: 4, HasVal: true},
	}))
	f.Strings = []string{"Knit"}
	f.Datas["g"] = &obj.Data{Name: "g", Size: 2, Init: []obj.DataInit{{Kind: obj.InitConst, Val: 5}}}
	f.AddSym(&obj.Symbol{Name: "g", Kind: obj.SymData, Defined: true})
	return f
}

// indirectProgram: function address taken, then called indirectly.
func indirectProgram() *obj.File {
	return fileWith(
		buildFunc("seven", 0, 1, 0, []obj.Instr{
			{Op: obj.OpConst, Dst: 0, Imm: 7},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}),
		buildFunc("callit", 0, 2, 0, []obj.Instr{
			{Op: obj.OpAddrGlobal, Dst: 0, Sym: "seven", A: obj.NoReg},
			{Op: obj.OpCallInd, Dst: 1, A: 0},
			{Op: obj.OpRet, A: 1, HasVal: true},
		}),
	)
}

func TestBackendParityPrograms(t *testing.T) {
	t.Run("sum", func(t *testing.T) { runBoth(t, sumLoopProgram(), nil, "sum", 10) })
	t.Run("sum0", func(t *testing.T) { runBoth(t, sumLoopProgram(), nil, "sum", 0) })
	t.Run("fib", func(t *testing.T) { runBoth(t, fibProgram(), nil, "fib", 10) })
	t.Run("memops", func(t *testing.T) { runBoth(t, memProgram(), nil, "memops") })
	t.Run("indirect", func(t *testing.T) { runBoth(t, indirectProgram(), nil, "callit") })
	t.Run("nested", func(t *testing.T) { runBoth(t, nestedProgram(), nil, "outer", 41) })
	t.Run("builtin", func(t *testing.T) {
		f := fileWith(buildFunc("f", 0, 2, 0, []obj.Instr{
			{Op: obj.OpConst, Dst: 1, Imm: 5},
			{Op: obj.OpCall, Dst: 0, Sym: "__dev", Args: []obj.Reg{1}},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}))
		runBoth(t, f, func(m *M) {
			m.RegisterBuiltin("__dev", func(_ *M, args []int64) (int64, error) { return args[0] * 3, nil })
		}, "f")
	})
}

func TestBackendParityTraps(t *testing.T) {
	t.Run("divzero", func(t *testing.T) {
		f := fileWith(buildFunc("div", 2, 3, 0, []obj.Instr{
			{Op: obj.OpBin, Dst: 2, A: 0, B: 1, Tok: int(cmini.SLASH)},
			{Op: obj.OpRet, A: 2, HasVal: true},
		}))
		runBoth(t, f, nil, "div", 10, 0)
	})
	t.Run("badload", func(t *testing.T) {
		f := fileWith(buildFunc("f", 1, 2, 0, []obj.Instr{
			{Op: obj.OpLoad, Dst: 1, A: 0},
			{Op: obj.OpRet, A: 1, HasVal: true},
		}))
		runBoth(t, f, nil, "f", 3)
		runBoth(t, f, nil, "f", 1<<40)
	})
	t.Run("badstore", func(t *testing.T) {
		f := fileWith(buildFunc("f", 1, 2, 0, []obj.Instr{
			{Op: obj.OpStore, A: 0, B: 0},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}))
		runBoth(t, f, nil, "f", 2)
	})
	t.Run("undefined-call", func(t *testing.T) {
		f := fileWith(buildFunc("f", 0, 1, 0, []obj.Instr{
			{Op: obj.OpCall, Dst: 0, Sym: "nowhere"},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}))
		runBoth(t, f, nil, "f")
	})
	t.Run("indirect-nonfunc", func(t *testing.T) {
		f := fileWith(buildFunc("f", 1, 2, 0, []obj.Instr{
			{Op: obj.OpCallInd, Dst: 1, A: 0},
			{Op: obj.OpRet, A: 1, HasVal: true},
		}))
		runBoth(t, f, nil, "f", 12345)
	})
	t.Run("recursion-overflow", func(t *testing.T) {
		f := fileWith(buildFunc("rec", 0, 1, 0, []obj.Instr{
			{Op: obj.OpCall, Dst: 0, Sym: "rec"},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}))
		runBoth(t, f, nil, "rec")
	})
	t.Run("args-mismatch", func(t *testing.T) {
		f := fileWith(
			buildFunc("two", 2, 3, 0, []obj.Instr{{Op: obj.OpRet, A: 0, HasVal: true}}),
			buildFunc("f", 0, 2, 0, []obj.Instr{
				{Op: obj.OpConst, Dst: 1, Imm: 1},
				{Op: obj.OpCall, Dst: 0, Sym: "two", Args: []obj.Reg{1}},
				{Op: obj.OpRet, A: 0, HasVal: true},
			}),
		)
		runBoth(t, f, nil, "f")
	})
	t.Run("fall-off-end", func(t *testing.T) {
		f := fileWith(buildFunc("f", 0, 1, 0, []obj.Instr{
			{Op: obj.OpConst, Dst: 0, Imm: 1},
		}))
		runBoth(t, f, nil, "f")
	})
	t.Run("trap-mid-fused-load-call", func(t *testing.T) {
		// The load half of a fused load+call traps: Executed must count
		// the load but not the pre-counted call.
		f := fileWith(
			buildFunc("callee", 1, 2, 0, []obj.Instr{{Op: obj.OpRet, A: 0, HasVal: true}}),
			buildFunc("f", 1, 3, 0, []obj.Instr{
				{Op: obj.OpLoad, Dst: 1, A: 0},
				{Op: obj.OpCall, Dst: 2, Sym: "callee", Args: []obj.Reg{1}},
				{Op: obj.OpRet, A: 2, HasVal: true},
			}),
		)
		runBoth(t, f, nil, "f", 3)  // load traps
		runBoth(t, f, nil, "f", 20) // load fine, call runs
	})
}

// postCallRecord is the backend-comparable slice of a CallInfo: cycles
// are excluded (the compiled backend legitimately accounts fewer).
type postCallRecord struct {
	fn    string
	depth int
	err   string
}

func recordPostCalls(m *M) *[]postCallRecord {
	var recs []postCallRecord
	m.PostCall = func(ci CallInfo) {
		e := ""
		if ci.Err != nil {
			e = ci.Err.Error()
		}
		recs = append(recs, postCallRecord{fn: ci.Fn, depth: ci.Depth, err: e})
	}
	return &recs
}

// TestBackendFuelTrapParity sweeps the fuel budget across every value
// that can expire inside the workload — including mid-callee — and
// demands the same trap at the same instruction count with the same
// PostCall sequence, i.e. the budget dies at the exact same call index
// on both backends.
func TestBackendFuelTrapParity(t *testing.T) {
	for _, tc := range []struct {
		name  string
		file  func() *obj.File
		entry string
		args  []int64
	}{
		{"sum", sumLoopProgram, "sum", []int64{6}},
		{"fib", fibProgram, "fib", []int64{6}},
		{"nested", nestedProgram, "outer", []int64{1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			probe := loadFile(t, tc.file())
			if _, err := probe.Run(tc.entry, tc.args...); err != nil {
				t.Fatal(err)
			}
			total := probe.Executed
			for fuel := int64(1); fuel <= total+1; fuel++ {
				mi, mc := compiledPair(t, tc.file())
				ri := recordPostCalls(mi)
				rc := recordPostCalls(mc)
				mi.Fuel, mc.Fuel = fuel, fuel
				vi, ei := mi.Run(tc.entry, tc.args...)
				vc, ec := mc.Run(tc.entry, tc.args...)
				assertBackendParity(t, mi, mc, vi, vc, ei, ec)
				if fuel < total && ei == nil {
					t.Fatalf("fuel=%d of %d: run unexpectedly completed", fuel, total)
				}
				if fuel < total && mi.Executed != fuel {
					t.Fatalf("fuel=%d: interp executed %d, want the trap at the budget", fuel, mi.Executed)
				}
				if len(*ri) != len(*rc) {
					t.Fatalf("fuel=%d: PostCall sequence lengths differ: %d vs %d", fuel, len(*ri), len(*rc))
				}
				for i := range *ri {
					if (*ri)[i] != (*rc)[i] {
						t.Fatalf("fuel=%d: PostCall[%d] interp=%+v compiled=%+v", fuel, i, (*ri)[i], (*rc)[i])
					}
				}
				if t.Failed() {
					t.FailNow()
				}
			}
		})
	}
}

// TestBackendStepLimitParity: same sweep for the machine-lifetime step
// limit.
func TestBackendStepLimitParity(t *testing.T) {
	probe := loadFile(t, fibProgram())
	if _, err := probe.Run("fib", 5); err != nil {
		t.Fatal(err)
	}
	total := probe.Executed
	for lim := int64(1); lim <= total+1; lim++ {
		mi, mc := compiledPair(t, fibProgram())
		mi.StepLimit, mc.StepLimit = lim, lim
		vi, ei := mi.Run("fib", 5)
		vc, ec := mc.Run("fib", 5)
		assertBackendParity(t, mi, mc, vi, vc, ei, ec)
		if t.Failed() {
			t.Fatalf("diverged at StepLimit=%d", lim)
		}
	}
}

// swapDriverProgram builds the interposition regression workload: one
// call site runs primary, a builtin swaps the redirect, and the very
// next execution of the same (already-cached) call site must land on
// the replacement. acc accumulates base-10 digits of what ran.
func swapDriverProgram(iters int64) *obj.File {
	return fileWith(
		buildFunc("primary", 0, 1, 0, []obj.Instr{
			{Op: obj.OpConst, Dst: 0, Imm: 1},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}),
		buildFunc("backup", 0, 1, 0, []obj.Instr{
			{Op: obj.OpConst, Dst: 0, Imm: 2},
			{Op: obj.OpRet, A: 0, HasVal: true},
		}),
		buildFunc("driver", 0, 6, 0, []obj.Instr{
			{Op: obj.OpConst, Dst: 1, Imm: 0}, // i
			{Op: obj.OpConst, Dst: 2, Imm: 0}, // acc
			{Op: obj.OpConst, Dst: 3, Imm: iters},
			{Op: obj.OpBin, Dst: 4, A: 1, B: 3, Tok: int(cmini.GE)},
			{Op: obj.OpBranch, A: 4, Targets: [2]int{14, 5}},
			{Op: obj.OpCall, Dst: 5, Sym: "primary"}, // the one cached site
			{Op: obj.OpConst, Dst: 4, Imm: 10},
			{Op: obj.OpBin, Dst: 2, A: 2, B: 4, Tok: int(cmini.STAR)},
			{Op: obj.OpBin, Dst: 2, A: 2, B: 5, Tok: int(cmini.PLUS)},
			{Op: obj.OpCall, Dst: 5, Sym: "__swap"}, // host swaps the redirect
			{Op: obj.OpConst, Dst: 4, Imm: 1},
			{Op: obj.OpBin, Dst: 1, A: 1, B: 4, Tok: int(cmini.PLUS)},
			{Op: obj.OpJump, Targets: [2]int{3}},
			{Op: obj.OpConst, Dst: 0, Imm: 0}, // unreachable padding
			{Op: obj.OpRet, A: 2, HasVal: true},
		}),
	)
}

// TestBackendInterposeMidRunInvalidation is the regression test for the
// compiled backend's cached call targets: a redirect installed while
// the caller's frame is live (from a builtin) must take effect at the
// very next call through the same site, and an Unpose must restore the
// original just as promptly.
func TestBackendInterposeMidRunInvalidation(t *testing.T) {
	for _, backend := range []Backend{BackendInterp, BackendCompiled} {
		t.Run(backend.String(), func(t *testing.T) {
			m := loadFile(t, swapDriverProgram(3))
			m.SetBackend(backend)
			toggled := false
			m.RegisterBuiltin("__swap", func(m *M, _ []int64) (int64, error) {
				if !toggled {
					toggled = true
					if err := m.Interpose("primary", "backup"); err != nil {
						return 0, err
					}
				} else {
					toggled = false
					m.Unpose("primary")
				}
				return 0, nil
			})
			v, err := m.Run("driver")
			if err != nil {
				t.Fatal(err)
			}
			// iter 1: primary (1); swap → iter 2: backup (2); unpose →
			// iter 3: primary (1).
			if v != 121 {
				t.Fatalf("driver() = %d, want 121 (stale cached call target?)", v)
			}
		})
	}
}

// TestCompiledCallPathZeroAllocs extends the interpreter's zero-alloc
// guarantee to the compiled backend: bare, interposed, and hooked call
// paths stay off the heap once the arenas and dispatch caches are warm.
func TestCompiledCallPathZeroAllocs(t *testing.T) {
	m := loadFile(t, nestedProgram())
	m.SetBackend(BackendCompiled)
	run := func() {
		if _, err := m.Run("outer", 1); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm arenas, compile the image, fill the dispatch cache
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Errorf("bare compiled call path: %.1f allocs/op, want 0", n)
	}

	if err := m.Interpose("middle", "inner"); err != nil {
		t.Fatal(err)
	}
	run() // re-resolve the invalidated dispatch cache once
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Errorf("interposed compiled call path: %.1f allocs/op, want 0", n)
	}
	m.Unpose("middle")

	var calls int64
	m.PostCall = func(ci CallInfo) {
		if ci.Depth == 0 {
			calls++
		}
	}
	run()
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Errorf("hooked compiled call path: %.1f allocs/op, want 0", n)
	}
	if calls == 0 {
		t.Error("hook never saw a top-level call")
	}
}

// TestBackendDynamicParity runs a directed dynamic-module lifecycle on
// both backends in lockstep: load, call across modules, interpose onto
// a dynamic function, snapshot, unload, restore.
func TestBackendDynamicParity(t *testing.T) {
	base := fileWith(buildFunc("base_id", 1, 2, 0, []obj.Instr{
		{Op: obj.OpRet, A: 0, HasVal: true},
	}))
	mi, mc := compiledPair(t, base)

	step := func(name string, op func(m *M) (int64, error)) {
		t.Helper()
		vi, ei := op(mi)
		vc, ec := op(mc)
		if vi != vc {
			t.Fatalf("%s: value interp=%d compiled=%d", name, vi, vc)
		}
		assertSameError(t, ei, ec)
		if mi.Executed != mc.Executed {
			t.Fatalf("%s: Executed interp=%d compiled=%d", name, mi.Executed, mc.Executed)
		}
		if err := mi.CheckDynInvariants(); err != nil {
			t.Fatalf("%s: interp invariants: %v", name, err)
		}
		if err := mc.CheckDynInvariants(); err != nil {
			t.Fatalf("%s: compiled invariants: %v", name, err)
		}
	}
	load := func(tpl int) func(m *M) (int64, error) {
		return func(m *M) (int64, error) {
			return 0, m.LoadDynamicAs(fuzzModName(tpl), "", fuzzTemplate(tpl))
		}
	}
	run := func(fn string, args ...int64) func(m *M) (int64, error) {
		return func(m *M) (int64, error) { return m.Run(fn, args...) }
	}

	step("load t0", load(0))
	step("load t1", load(1))
	step("load t2", load(2))
	step("load t3", load(3))
	step("run fn_2", run("fn_2"))
	step("run fn_3", run("fn_3"))
	step("interpose base_id->fn_X fails (arity)", func(m *M) (int64, error) {
		err := m.Interpose("fn_0", "base_id")
		return 0, err
	})
	var snaps [2]*Snapshot
	step("snapshot", func(m *M) (int64, error) {
		if m.backend == BackendCompiled {
			snaps[1] = m.Snapshot()
		} else {
			snaps[0] = m.Snapshot()
		}
		return 0, nil
	})
	step("unload t3", func(m *M) (int64, error) { return 0, m.UnloadDynamic(fuzzModName(3)) })
	step("run fn_3 dead", run("fn_3"))
	step("restore", func(m *M) (int64, error) {
		if m.backend == BackendCompiled {
			m.Restore(snaps[1])
		} else {
			m.Restore(snaps[0])
		}
		return 0, nil
	})
	step("run fn_3 back", run("fn_3"))
	step("run fn_2 again", run("fn_2"))
}

// TestBackendSwitchMidMachine: a machine may switch engines between
// runs; counters keep accumulating and programs keep working.
func TestBackendSwitchMidMachine(t *testing.T) {
	m := loadFile(t, sumLoopProgram())
	v1, err := m.Run("sum", 10)
	if err != nil || v1 != 55 {
		t.Fatalf("interp: %d, %v", v1, err)
	}
	exec1 := m.Executed
	m.SetBackend(BackendCompiled)
	v2, err := m.Run("sum", 10)
	if err != nil || v2 != 55 {
		t.Fatalf("compiled: %d, %v", v2, err)
	}
	if m.Executed != 2*exec1 {
		t.Errorf("Executed after both runs = %d, want %d", m.Executed, 2*exec1)
	}
}

// TestParseBackend pins the flag grammar.
func TestParseBackend(t *testing.T) {
	for s, want := range map[string]Backend{
		"": BackendInterp, "interp": BackendInterp, "interpreter": BackendInterp,
		"compiled": BackendCompiled, "closure": BackendCompiled,
	} {
		got, err := ParseBackend(s)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseBackend("jit"); err == nil {
		t.Error("ParseBackend(jit) succeeded, want error")
	}
	if BackendInterp.String() != "interp" || BackendCompiled.String() != "compiled" {
		t.Error("Backend.String round-trip broken")
	}
}

// BenchmarkBackends compares the two engines on the recursive workload
// (calls dominate) and the loop workload (straight-line dominates).
func BenchmarkBackends(b *testing.B) {
	for _, tc := range []struct {
		name  string
		file  *obj.File
		entry string
		args  []int64
	}{
		{"fib15", fibProgram(), "fib", []int64{15}},
		{"sum1k", sumLoopProgram(), "sum", []int64{1000}},
	} {
		for _, backend := range []Backend{BackendInterp, BackendCompiled} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, backend), func(b *testing.B) {
				img, err := Load(tc.file, DefaultCosts())
				if err != nil {
					b.Fatal(err)
				}
				m := New(img)
				m.SetBackend(backend)
				m.StepLimit = 1 << 40
				if _, err := m.Run(tc.entry, tc.args...); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := m.Run(tc.entry, tc.args...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
