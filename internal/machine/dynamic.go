package machine

import (
	"fmt"

	"knit/internal/obj"
)

// This file implements run-time loading of additional object code into a
// running machine — the machine half of Knit's dynamic linking extension
// (paper §8). A dynamically loaded module's data is appended to the live
// memory image, its functions get fresh text addresses, and its
// references resolve against the base image plus previously loaded
// modules. Dynamic state is per-machine: Reset drops all loaded modules
// along with the rest of the run-time state.

// dynState holds a machine's dynamically loaded symbols.
type dynState struct {
	funcs      map[string]*obj.Func
	funcAddr   map[string]int64
	funcByAddr map[int64]*obj.Func
	globalAddr map[string]int64
	textOff    map[string]int64
	textSize   int64
}

func newDynState() *dynState {
	return &dynState{
		funcs:      map[string]*obj.Func{},
		funcAddr:   map[string]int64{},
		funcByAddr: map[int64]*obj.Func{},
		globalAddr: map[string]int64{},
		textOff:    map[string]int64{},
	}
}

// LoadDynamic links an object file into the running machine. Every data
// symbol referenced by the module must resolve (image, earlier modules,
// or the module itself); function references may also be satisfied by
// builtins at call time, like static calls. Returns an error and loads
// nothing on failure.
func (m *M) LoadDynamic(o *obj.File) error {
	if m.dyn == nil {
		m.dyn = newDynState()
	}
	// Collisions with existing definitions are linker errors.
	for _, s := range o.Syms {
		if !s.Defined || s.Local {
			continue
		}
		if m.resolvable(s.Name) {
			return &LoadError{Msg: fmt.Sprintf("dynamic: symbol %q already defined", s.Name)}
		}
	}

	// Stage placements without committing.
	dataBase := int64(len(m.Mem))
	addr := dataBase
	newGlobals := map[string]int64{}
	var order []string
	for name := range o.Datas {
		order = append(order, name)
	}
	sortStrings(order)
	for _, name := range order {
		newGlobals[name] = addr
		addr += int64(o.Datas[name].Size)
	}
	strAddr := make([]int64, len(o.Strings))
	for i, s := range o.Strings {
		strAddr[i] = addr
		addr += int64(len(s)) + 1
	}
	textStart := m.Img.TextSize + m.dyn.textSize
	newFuncAddr := map[string]int64{}
	newFuncs := map[string]*obj.Func{}
	var fnames []string
	for name := range o.Funcs {
		fnames = append(fnames, name)
	}
	sortStrings(fnames)
	text := textStart
	for _, name := range fnames {
		fn := o.Funcs[name].Clone()
		// Dynamic string references become absolute addresses now.
		for i := range fn.Code {
			if fn.Code[i].Op == obj.OpAddrString {
				idx := int(fn.Code[i].Imm)
				if idx < 0 || idx >= len(strAddr) {
					return &LoadError{Msg: fmt.Sprintf("dynamic: func %s: bad string index %d", name, idx)}
				}
				fn.Code[i] = obj.Instr{Op: obj.OpConst, Dst: fn.Code[i].Dst,
					Imm: strAddr[idx], A: obj.NoReg, B: obj.NoReg}
			}
		}
		newFuncs[name] = fn
		newFuncAddr[name] = textBase + text
		m.dyn.textOff[name] = text
		text += int64(len(fn.Code)*m.Costs.InstrBytes + m.Costs.FuncPad)
	}

	resolve := func(sym string) (int64, bool) {
		if a, ok := newGlobals[sym]; ok {
			return a, true
		}
		if a, ok := newFuncAddr[sym]; ok {
			return a, true
		}
		return m.resolveAddr(sym)
	}
	// Validate address references before committing.
	for name, fn := range newFuncs {
		for i := range fn.Code {
			if fn.Code[i].Op == obj.OpAddrGlobal {
				if _, ok := resolve(fn.Code[i].Sym); !ok {
					return &LoadError{Msg: fmt.Sprintf(
						"dynamic: func %s: address of unresolved symbol %q", name, fn.Code[i].Sym)}
				}
			}
		}
	}
	// Build the appended memory.
	mem := make([]int64, addr-dataBase)
	for i, s := range o.Strings {
		base := strAddr[i] - dataBase
		for j := 0; j < len(s); j++ {
			mem[base+int64(j)] = int64(s[j])
		}
	}
	for _, name := range order {
		d := o.Datas[name]
		base := newGlobals[name] - dataBase
		for _, init := range d.Init {
			switch init.Kind {
			case obj.InitConst:
				mem[base+int64(init.Offset)] = init.Val
			case obj.InitString:
				if init.Index < 0 || init.Index >= len(strAddr) {
					return &LoadError{Msg: fmt.Sprintf("dynamic: data %s: bad string index %d", name, init.Index)}
				}
				mem[base+int64(init.Offset)] = strAddr[init.Index]
			case obj.InitSym:
				a, ok := resolve(init.Sym)
				if !ok {
					return &LoadError{Msg: fmt.Sprintf("dynamic: data %s: unresolved symbol %q", name, init.Sym)}
				}
				mem[base+int64(init.Offset)] = a
			}
		}
	}

	// Commit.
	m.Mem = append(m.Mem, mem...)
	for name, a := range newGlobals {
		m.dyn.globalAddr[name] = a
	}
	for name, fn := range newFuncs {
		m.dyn.funcs[name] = fn
		a := newFuncAddr[name]
		m.dyn.funcAddr[name] = a
		m.dyn.funcByAddr[a] = fn
	}
	m.dyn.textSize = text - m.Img.TextSize
	return nil
}

// resolvable reports whether a symbol already has a definition visible
// to this machine.
func (m *M) resolvable(sym string) bool {
	if _, ok := m.Img.GlobalAddr[sym]; ok {
		return true
	}
	if _, ok := m.Img.FuncAddr[sym]; ok {
		return true
	}
	if m.dyn == nil {
		return false
	}
	if _, ok := m.dyn.globalAddr[sym]; ok {
		return true
	}
	_, ok := m.dyn.funcAddr[sym]
	return ok
}

// resolveAddr resolves a symbol to an address across the image and
// loaded modules.
func (m *M) resolveAddr(sym string) (int64, bool) {
	if a, ok := m.Img.GlobalAddr[sym]; ok {
		return a, true
	}
	if a, ok := m.Img.FuncAddr[sym]; ok {
		return a, true
	}
	if m.dyn != nil {
		if a, ok := m.dyn.globalAddr[sym]; ok {
			return a, true
		}
		if a, ok := m.dyn.funcAddr[sym]; ok {
			return a, true
		}
	}
	return 0, false
}

// dynFunc looks up a dynamically loaded function by name.
func (m *M) dynFunc(sym string) (*obj.Func, bool) {
	if m.dyn == nil {
		return nil, false
	}
	fn, ok := m.dyn.funcs[sym]
	return fn, ok
}

// dynFuncByAddr looks up a dynamically loaded function by text address.
func (m *M) dynFuncByAddr(addr int64) (*obj.Func, bool) {
	if m.dyn == nil {
		return nil, false
	}
	fn, ok := m.dyn.funcByAddr[addr]
	return fn, ok
}
