package machine

import (
	"fmt"
	"sort"

	"knit/internal/obj"
)

// This file implements run-time loading and unloading of object code in
// a running machine — the machine half of Knit's dynamic linking
// extension (paper §8), grown into a full module lifecycle. A loaded
// module's data is appended to the live memory image, its functions get
// fresh text addresses, and its references resolve against the base
// image plus previously loaded modules. Each load is recorded as a
// module, so UnloadDynamic can later reclaim exactly that module's
// text, data, and symbol-table entries — after verifying that no other
// live module still references them. Dynamic state is per-machine:
// Reset drops all loaded modules along with the rest of the run-time
// state.

// dynState holds a machine's dynamically loaded symbols.
type dynState struct {
	funcs      map[string]*obj.Func
	funcAddr   map[string]int64
	funcByAddr map[int64]*obj.Func
	globalAddr map[string]int64
	textOff    map[string]int64
	owner      map[string]string // symbol -> owning unit instance (attribution)
	textSize   int64
	modules    []*dynModule // live modules, in load order
}

// dynModule records what one LoadDynamic committed, so it can be
// reclaimed symbol-for-symbol and byte-for-byte.
type dynModule struct {
	name     string
	owner    string   // unit-instance attribution, may be ""
	funcs    []string // defined function symbols
	globals  []string // defined data symbols
	refs     []string // external symbols this module's code/data references
	dataBase int64    // [dataBase, dataEnd) in m.Mem
	dataEnd  int64
	textBase int64 // [textBase, textEnd) in text offsets
	textEnd  int64
}

func newDynState() *dynState {
	return &dynState{
		funcs:      map[string]*obj.Func{},
		funcAddr:   map[string]int64{},
		funcByAddr: map[int64]*obj.Func{},
		globalAddr: map[string]int64{},
		textOff:    map[string]int64{},
		owner:      map[string]string{},
	}
}

// clone deep-copies the symbol tables and module records; *obj.Func
// values are immutable after load and are shared.
func (d *dynState) clone() *dynState {
	c := newDynState()
	for k, v := range d.funcs {
		c.funcs[k] = v
	}
	for k, v := range d.funcAddr {
		c.funcAddr[k] = v
	}
	for k, v := range d.funcByAddr {
		c.funcByAddr[k] = v
	}
	for k, v := range d.globalAddr {
		c.globalAddr[k] = v
	}
	for k, v := range d.textOff {
		c.textOff[k] = v
	}
	for k, v := range d.owner {
		c.owner[k] = v
	}
	c.textSize = d.textSize
	c.modules = append([]*dynModule(nil), d.modules...)
	return c
}

func (d *dynState) module(name string) *dynModule {
	for _, mod := range d.modules {
		if mod.name == name {
			return mod
		}
	}
	return nil
}

// LoadDynamic links an object file into the running machine under the
// module name o.Name with no unit attribution. See LoadDynamicAs.
func (m *M) LoadDynamic(o *obj.File) error {
	return m.LoadDynamicAs(o.Name, "", o)
}

// LoadDynamicAs links an object file into the running machine as a
// named module. Every data symbol referenced by the module must resolve
// (image, earlier modules, or the module itself); function references
// may also be satisfied by builtins at call time, like static calls.
// owner, when non-empty, attributes the module's symbols to a unit
// instance for trap reporting. Returns an error and loads nothing on
// failure; a successful load can be reversed by UnloadDynamic(name).
func (m *M) LoadDynamicAs(name, owner string, o *obj.File) error {
	if name == "" {
		return &LoadError{Msg: "dynamic: module needs a name"}
	}
	if m.dyn == nil {
		m.dyn = newDynState()
	}
	if m.dyn.module(name) != nil {
		return &LoadError{Msg: fmt.Sprintf("dynamic: module %q already loaded", name)}
	}
	// Collisions with existing definitions are linker errors.
	for _, s := range o.Syms {
		if !s.Defined || s.Local {
			continue
		}
		if m.resolvable(s.Name) {
			return &LoadError{Msg: fmt.Sprintf("dynamic: symbol %q already defined", s.Name)}
		}
	}

	// Stage placements without committing.
	dataBase := int64(len(m.Mem))
	addr := dataBase
	newGlobals := map[string]int64{}
	var order []string
	for name := range o.Datas {
		order = append(order, name)
	}
	sortStrings(order)
	for _, name := range order {
		newGlobals[name] = addr
		addr += int64(o.Datas[name].Size)
	}
	strAddr := make([]int64, len(o.Strings))
	for i, s := range o.Strings {
		strAddr[i] = addr
		addr += int64(len(s)) + 1
	}
	textStart := m.Img.TextSize + m.dyn.textSize
	newFuncAddr := map[string]int64{}
	newFuncs := map[string]*obj.Func{}
	newTextOff := map[string]int64{}
	var fnames []string
	for name := range o.Funcs {
		fnames = append(fnames, name)
	}
	sortStrings(fnames)
	text := textStart
	for _, name := range fnames {
		fn := o.Funcs[name].Clone()
		// Dynamic string references become absolute addresses now.
		for i := range fn.Code {
			if fn.Code[i].Op == obj.OpAddrString {
				idx := int(fn.Code[i].Imm)
				if idx < 0 || idx >= len(strAddr) {
					return &LoadError{Msg: fmt.Sprintf("dynamic: func %s: bad string index %d", name, idx)}
				}
				fn.Code[i] = obj.Instr{Op: obj.OpConst, Dst: fn.Code[i].Dst,
					Imm: strAddr[idx], A: obj.NoReg, B: obj.NoReg}
			}
		}
		newFuncs[name] = fn
		newFuncAddr[name] = textBase + text
		newTextOff[name] = text
		text += int64(len(fn.Code)*m.Costs.InstrBytes + m.Costs.FuncPad)
	}

	resolve := func(sym string) (int64, bool) {
		if a, ok := newGlobals[sym]; ok {
			return a, true
		}
		if a, ok := newFuncAddr[sym]; ok {
			return a, true
		}
		return m.resolveAddr(sym)
	}
	// Validate address references before committing.
	for name, fn := range newFuncs {
		for i := range fn.Code {
			if fn.Code[i].Op == obj.OpAddrGlobal {
				if _, ok := resolve(fn.Code[i].Sym); !ok {
					return &LoadError{Msg: fmt.Sprintf(
						"dynamic: func %s: address of unresolved symbol %q", name, fn.Code[i].Sym)}
				}
			}
		}
	}
	// Build the appended memory.
	mem := make([]int64, addr-dataBase)
	for i, s := range o.Strings {
		base := strAddr[i] - dataBase
		for j := 0; j < len(s); j++ {
			mem[base+int64(j)] = int64(s[j])
		}
	}
	for _, name := range order {
		d := o.Datas[name]
		base := newGlobals[name] - dataBase
		for _, init := range d.Init {
			switch init.Kind {
			case obj.InitConst:
				mem[base+int64(init.Offset)] = init.Val
			case obj.InitString:
				if init.Index < 0 || init.Index >= len(strAddr) {
					return &LoadError{Msg: fmt.Sprintf("dynamic: data %s: bad string index %d", name, init.Index)}
				}
				mem[base+int64(init.Offset)] = strAddr[init.Index]
			case obj.InitSym:
				a, ok := resolve(init.Sym)
				if !ok {
					return &LoadError{Msg: fmt.Sprintf("dynamic: data %s: unresolved symbol %q", name, init.Sym)}
				}
				mem[base+int64(init.Offset)] = a
			}
		}
	}

	// Commit.
	mod := &dynModule{
		name:     name,
		owner:    owner,
		dataBase: dataBase,
		dataEnd:  addr,
		textBase: textStart,
		textEnd:  text,
	}
	m.Mem = append(m.Mem, mem...)
	for gname, a := range newGlobals {
		m.dyn.globalAddr[gname] = a
		mod.globals = append(mod.globals, gname)
		if owner != "" {
			m.dyn.owner[gname] = owner
		}
	}
	for fname, fn := range newFuncs {
		m.dyn.funcs[fname] = fn
		a := newFuncAddr[fname]
		m.dyn.funcAddr[fname] = a
		m.dyn.funcByAddr[a] = fn
		m.dyn.textOff[fname] = newTextOff[fname]
		mod.funcs = append(mod.funcs, fname)
		if owner != "" {
			m.dyn.owner[fname] = owner
		}
	}
	mod.refs = moduleRefs(o, newGlobals, newFuncs)
	sortStrings(mod.funcs)
	sortStrings(mod.globals)
	m.dyn.textSize = text - m.Img.TextSize
	m.dyn.modules = append(m.dyn.modules, mod)
	// New definitions can satisfy call sites previously resolved to a
	// builtin or to undefined; drop the compiled dispatch caches.
	m.dispVersion++
	if m.RewireHook != nil {
		m.RewireHook("load", name, "")
	}
	return nil
}

// moduleRefs collects the external symbols a module's code and data
// reference — the names that must stay resolvable for the module to
// keep running, and therefore the names that pin other modules in
// memory until this one is unloaded.
func moduleRefs(o *obj.File, globals map[string]int64, funcs map[string]*obj.Func) []string {
	self := func(sym string) bool {
		if _, ok := globals[sym]; ok {
			return true
		}
		_, ok := funcs[sym]
		return ok
	}
	seen := map[string]bool{}
	add := func(sym string) {
		if sym != "" && !self(sym) && !seen[sym] {
			seen[sym] = true
		}
	}
	for _, fn := range funcs {
		for i := range fn.Code {
			switch fn.Code[i].Op {
			case obj.OpCall, obj.OpAddrGlobal:
				add(fn.Code[i].Sym)
			}
		}
	}
	for _, d := range o.Datas {
		for _, init := range d.Init {
			if init.Kind == obj.InitSym {
				add(init.Sym)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for sym := range seen {
		out = append(out, sym)
	}
	sortStrings(out)
	return out
}

// UnloadDynamic reverses a LoadDynamicAs: it removes the named module's
// functions and globals from the symbol tables and reclaims its memory.
// The unload is refused — and nothing changes — if any other live
// module's code or data references one of the module's symbols, the
// same puzzle-piece discipline the loader enforces, run in reverse.
//
// Reclamation detail: the topmost module's data and text are truncated
// outright; a module unloaded from the middle leaves its data region
// zeroed (addresses are never reused) and its text range unreclaimed
// until the modules above it go too.
func (m *M) UnloadDynamic(name string) error {
	if m.dyn == nil || m.dyn.module(name) == nil {
		return &LoadError{Msg: fmt.Sprintf("dynamic: no loaded module %q", name)}
	}
	mod := m.dyn.module(name)
	owned := map[string]bool{}
	for _, s := range mod.funcs {
		owned[s] = true
	}
	for _, s := range mod.globals {
		owned[s] = true
	}
	for _, other := range m.dyn.modules {
		if other == mod {
			continue
		}
		for _, ref := range other.refs {
			if owned[ref] {
				return &LoadError{Msg: fmt.Sprintf(
					"dynamic: cannot unload module %q: live module %q still references its symbol %q (unload %q first)",
					name, other.name, ref, other.name)}
			}
		}
	}
	// Interposition redirects aimed *at* this module pin it too: calls
	// are being routed into its code right now. (Redirect sources may
	// vanish freely — a key with no definition is never dispatched.)
	for from, to := range m.redirect {
		if owned[to] {
			return &LoadError{Msg: fmt.Sprintf(
				"dynamic: cannot unload module %q: calls to %q are interposed onto its symbol %q",
				name, from, to)}
		}
	}

	// Reclaim symbol-table entries.
	for _, s := range mod.funcs {
		if a, ok := m.dyn.funcAddr[s]; ok {
			delete(m.dyn.funcByAddr, a)
		}
		delete(m.dyn.funcs, s)
		delete(m.dyn.funcAddr, s)
		delete(m.dyn.textOff, s)
		delete(m.dyn.owner, s)
	}
	for _, s := range mod.globals {
		delete(m.dyn.globalAddr, s)
		delete(m.dyn.owner, s)
	}
	// Reclaim memory and text. Memory can shrink only down to the
	// highest region end any *other* live module still claims — a module
	// loaded later than this one may hold an (empty) region right at the
	// current end of memory, and its base must stay in bounds.
	memEnd := mod.dataBase
	textEnd := mod.textBase
	for _, other := range m.dyn.modules {
		if other == mod {
			continue
		}
		if other.dataEnd > memEnd {
			memEnd = other.dataEnd
		}
		if other.textEnd > textEnd {
			textEnd = other.textEnd
		}
	}
	if memEnd < int64(len(m.Mem)) {
		m.Mem = m.Mem[:memEnd]
	}
	for i := mod.dataBase; i < mod.dataEnd && i < int64(len(m.Mem)); i++ {
		m.Mem[i] = 0
	}
	if end := m.Img.TextSize + m.dyn.textSize; textEnd < end {
		m.dyn.textSize = textEnd - m.Img.TextSize
	}
	// Drop the module record.
	live := m.dyn.modules[:0]
	for _, other := range m.dyn.modules {
		if other != mod {
			live = append(live, other)
		}
	}
	m.dyn.modules = live
	if len(m.dyn.modules) == 0 {
		m.dyn = nil
	}
	// Compiled forms of the unloaded functions must go (their dispatch
	// slots and baked addresses are dead); dropping the whole per-machine
	// cache is simpler and unload is rare. Live modules recompile lazily
	// to identical code — their symbol addresses never move.
	m.dynCompiled = nil
	m.dispVersion++
	if m.RewireHook != nil {
		m.RewireHook("unload", name, "")
	}
	return nil
}

// DynModules returns the names of the live dynamic modules, in load
// order.
func (m *M) DynModules() []string {
	if m.dyn == nil {
		return nil
	}
	out := make([]string, len(m.dyn.modules))
	for i, mod := range m.dyn.modules {
		out[i] = mod.name
	}
	return out
}

// CheckDynInvariants validates the machine's dynamic symbol tables
// against the live module records: every table entry must belong to
// exactly one live module (no dangling symbols after an unload), the
// address maps must agree with each other, and module memory/text
// regions must be disjoint and in bounds. Test harnesses run it after
// every load/unload step; it is cheap but not free.
func (m *M) CheckDynInvariants() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("machine: dynamic invariant violated: "+format, args...)
	}
	// Every interposition target must be a defined function: a redirect
	// onto a reclaimed module would turn calls into undefined-call
	// traps, which is exactly the residue a failed swap must not leave
	// behind. Checked before the dynamic tables because redirects can
	// outlive the last module (static-to-static interposition).
	for from, to := range m.redirect {
		if _, ok := m.funcBySym(to); !ok {
			return fail("redirect %q -> %q targets an undefined function", from, to)
		}
	}
	if m.dyn == nil {
		return nil
	}
	d := m.dyn
	ownedFunc := map[string]string{}
	ownedGlobal := map[string]string{}
	for _, mod := range d.modules {
		for _, s := range mod.funcs {
			if prev, dup := ownedFunc[s]; dup {
				return fail("func %q owned by both %q and %q", s, prev, mod.name)
			}
			ownedFunc[s] = mod.name
		}
		for _, s := range mod.globals {
			if prev, dup := ownedGlobal[s]; dup {
				return fail("global %q owned by both %q and %q", s, prev, mod.name)
			}
			ownedGlobal[s] = mod.name
		}
		if mod.dataBase < m.stackLimit || mod.dataEnd > int64(len(m.Mem)) || mod.dataBase > mod.dataEnd {
			return fail("module %q data region [%d,%d) out of bounds (mem %d)",
				mod.name, mod.dataBase, mod.dataEnd, len(m.Mem))
		}
		if mod.textBase < m.Img.TextSize || mod.textEnd > m.Img.TextSize+d.textSize || mod.textBase > mod.textEnd {
			return fail("module %q text region [%d,%d) out of bounds", mod.name, mod.textBase, mod.textEnd)
		}
	}
	// Regions of distinct modules must not overlap.
	mods := append([]*dynModule(nil), d.modules...)
	sort.Slice(mods, func(i, j int) bool { return mods[i].dataBase < mods[j].dataBase })
	for i := 1; i < len(mods); i++ {
		if mods[i].dataBase < mods[i-1].dataEnd {
			return fail("modules %q and %q overlap in data", mods[i-1].name, mods[i].name)
		}
	}
	sort.Slice(mods, func(i, j int) bool { return mods[i].textBase < mods[j].textBase })
	for i := 1; i < len(mods); i++ {
		if mods[i].textBase < mods[i-1].textEnd {
			return fail("modules %q and %q overlap in text", mods[i-1].name, mods[i].name)
		}
	}
	// Every symbol-table entry must belong to a live module, and vice
	// versa — a dangling entry is exactly what an unload bug leaves.
	for s := range d.funcs {
		if _, ok := ownedFunc[s]; !ok {
			return fail("dangling func table entry %q (no live module owns it)", s)
		}
	}
	for s := range d.globalAddr {
		if _, ok := ownedGlobal[s]; !ok {
			return fail("dangling global table entry %q (no live module owns it)", s)
		}
	}
	for s, modName := range ownedFunc {
		fn, ok := d.funcs[s]
		if !ok {
			return fail("module %q func %q missing from func table", modName, s)
		}
		a, ok := d.funcAddr[s]
		if !ok {
			return fail("func %q has no address", s)
		}
		if got, ok := d.funcByAddr[a]; !ok || got != fn {
			return fail("funcByAddr[%#x] does not map back to %q", a, s)
		}
		if _, ok := d.textOff[s]; !ok {
			return fail("func %q has no text offset", s)
		}
		if _, shadow := m.Img.FuncAddr[s]; shadow {
			return fail("dynamic func %q shadows an image symbol", s)
		}
	}
	for s := range ownedGlobal {
		if _, ok := d.globalAddr[s]; !ok {
			return fail("global %q has no address", s)
		}
		if _, shadow := m.Img.GlobalAddr[s]; shadow {
			return fail("dynamic global %q shadows an image symbol", s)
		}
	}
	if len(d.funcAddr) != len(d.funcs) || len(d.funcByAddr) != len(d.funcs) || len(d.textOff) != len(d.funcs) {
		return fail("func table sizes disagree: funcs=%d addr=%d byAddr=%d textOff=%d",
			len(d.funcs), len(d.funcAddr), len(d.funcByAddr), len(d.textOff))
	}
	// Attribution entries may only name symbols of live modules.
	for s := range d.owner {
		if _, okF := ownedFunc[s]; !okF {
			if _, okG := ownedGlobal[s]; !okG {
				return fail("dangling owner entry %q", s)
			}
		}
	}
	return nil
}

// resolvable reports whether a symbol already has a definition visible
// to this machine.
func (m *M) resolvable(sym string) bool {
	if _, ok := m.Img.GlobalAddr[sym]; ok {
		return true
	}
	if _, ok := m.Img.FuncAddr[sym]; ok {
		return true
	}
	if m.dyn == nil {
		return false
	}
	if _, ok := m.dyn.globalAddr[sym]; ok {
		return true
	}
	_, ok := m.dyn.funcAddr[sym]
	return ok
}

// resolveAddr resolves a symbol to an address across the image and
// loaded modules.
func (m *M) resolveAddr(sym string) (int64, bool) {
	if a, ok := m.Img.GlobalAddr[sym]; ok {
		return a, true
	}
	if a, ok := m.Img.FuncAddr[sym]; ok {
		return a, true
	}
	if m.dyn != nil {
		if a, ok := m.dyn.globalAddr[sym]; ok {
			return a, true
		}
		if a, ok := m.dyn.funcAddr[sym]; ok {
			return a, true
		}
	}
	return 0, false
}

// dynFunc looks up a dynamically loaded function by name.
func (m *M) dynFunc(sym string) (*obj.Func, bool) {
	if m.dyn == nil {
		return nil, false
	}
	fn, ok := m.dyn.funcs[sym]
	return fn, ok
}

// dynFuncByAddr looks up a dynamically loaded function by text address.
func (m *M) dynFuncByAddr(addr int64) (*obj.Func, bool) {
	if m.dyn == nil {
		return nil, false
	}
	fn, ok := m.dyn.funcByAddr[addr]
	return fn, ok
}
