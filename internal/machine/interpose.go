package machine

import (
	"fmt"

	"knit/internal/obj"
)

// This file implements run-time symbol interposition: redirecting every
// direct call (and Run entry) aimed at one function symbol to another
// function with the same signature. It is the machine half of the
// supervision layer's fallback swap — the paper's §2.3 interposition
// story, applied to a live machine instead of a static link. Redirects
// deliberately do not touch indirect calls: a function address taken
// before the interposition keeps meaning the original code, exactly as
// a real-machine PLT-level interposition would behave.

// Interpose redirects direct calls and Run entries for sym to target.
// Both must currently resolve to defined functions (static image or
// live dynamic module) and agree on argument count. Existing redirects
// whose target is sym are re-pointed at target too (path compression),
// so chains never grow beyond one hop and a superseded module's symbols
// stop being referenced the moment it is interposed away — which is
// what lets the supervisor unload it afterwards.
func (m *M) Interpose(sym, target string) error {
	from, ok := m.funcBySym(sym)
	if !ok {
		return &LoadError{Msg: fmt.Sprintf("interpose: %q does not name a defined function", sym)}
	}
	// Resolve the target through existing redirects first: interposing
	// a -> b while b is already redirected to c must land on c, or the
	// table would grow multi-hop chains.
	final := m.interposed(target)
	if final == sym {
		return &LoadError{Msg: fmt.Sprintf("interpose: redirect %q -> %q would form a cycle", sym, target)}
	}
	to, ok := m.funcBySym(final)
	if !ok {
		return &LoadError{Msg: fmt.Sprintf("interpose: target %q does not name a defined function", final)}
	}
	if from.NArgs != to.NArgs {
		return &LoadError{Msg: fmt.Sprintf(
			"interpose: %q takes %d args but target %q takes %d", sym, from.NArgs, final, to.NArgs)}
	}
	if m.redirect == nil {
		m.redirect = map[string]string{}
	}
	for k, v := range m.redirect {
		if v == sym {
			m.redirect[k] = final
		}
	}
	m.redirect[sym] = final
	// The compiled backend caches resolved call targets per site;
	// invalidate them all so the very next call to sym (even one made by
	// a frame already running) lands on the replacement.
	m.dispVersion++
	if m.RewireHook != nil {
		m.RewireHook("interpose", sym, final)
	}
	return nil
}

// Unpose removes the redirect installed for sym, if any, restoring
// direct calls to the original definition.
func (m *M) Unpose(sym string) {
	delete(m.redirect, sym)
	m.dispVersion++ // drop compiled dispatch caches holding the redirect
	if m.RewireHook != nil {
		m.RewireHook("unpose", sym, "")
	}
}

// Interposed reports where calls to sym currently land: the redirect
// target, or "" when sym is not interposed.
func (m *M) Interposed(sym string) string {
	if m.redirect == nil {
		return ""
	}
	return m.redirect[sym]
}

// interposed resolves a symbol through the redirect table. Compression
// in Interpose keeps the table one hop deep, but follow chains anyway
// so a restored pre-compression snapshot stays correct.
func (m *M) interposed(sym string) string {
	if m.redirect == nil {
		return sym
	}
	for hops := 0; hops <= len(m.redirect); hops++ {
		next, ok := m.redirect[sym]
		if !ok {
			return sym
		}
		sym = next
	}
	return sym
}

// funcBySym resolves a symbol to its function definition across the
// static image and live dynamic modules, without following redirects.
func (m *M) funcBySym(sym string) (*obj.Func, bool) {
	if f, found := m.Img.Entry[sym]; found {
		return f, true
	}
	return m.dynFunc(sym)
}

// ResetData restores the initial (load-time) contents of the static
// image's global data for the given symbols, returning how many were
// reset. Symbols that are not image globals — functions, dynamic-module
// data, ambient names — are skipped: a dynamic module's initial bytes
// are not retained, so restarting a dynamic instance is re-running its
// initializers only. The supervision layer uses this to give a failed
// component a genuinely fresh start: statics back to their initializer
// values, then its initializers re-run.
func (m *M) ResetData(syms []string) int {
	n := 0
	for _, sym := range syms {
		addr, ok := m.Img.GlobalAddr[sym]
		if !ok {
			continue
		}
		d, ok := m.Img.File.Datas[sym]
		if !ok {
			continue
		}
		end := addr + int64(d.Size)
		if end > int64(len(m.Mem)) {
			end = int64(len(m.Mem))
		}
		copy(m.Mem[addr:end], m.Img.initMem[addr:end])
		n++
	}
	return n
}
