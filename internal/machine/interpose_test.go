package machine

import (
	"errors"
	"strings"
	"testing"

	"knit/internal/obj"
)

// Interposition tests: the supervision layer depends on redirects
// applying to direct calls and Run entries, sparing indirect calls,
// compressing chains, and round-tripping through Snapshot/Restore.

func constFunc(name string, v int64) *obj.Func {
	return buildFunc(name, 0, 2, 0, []obj.Instr{
		{Op: obj.OpConst, Dst: 1, Imm: v},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
}

func TestInterposeRedirectsRunAndDirectCalls(t *testing.T) {
	caller := buildFunc("caller", 0, 2, 0, []obj.Instr{
		{Op: obj.OpCall, Dst: 1, Sym: "orig", A: obj.NoReg},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	m := loadFile(t, fileWith(constFunc("orig", 1), constFunc("alt", 2), caller))

	if got, _ := m.Run("caller"); got != 1 {
		t.Fatalf("before interpose: caller = %d, want 1", got)
	}
	if err := m.Interpose("orig", "alt"); err != nil {
		t.Fatalf("Interpose: %v", err)
	}
	if got, _ := m.Run("caller"); got != 2 {
		t.Errorf("direct call after interpose = %d, want 2", got)
	}
	if got, _ := m.Run("orig"); got != 2 {
		t.Errorf("Run entry after interpose = %d, want 2", got)
	}
	if got := m.Interposed("orig"); got != "alt" {
		t.Errorf("Interposed(orig) = %q, want alt", got)
	}
	m.Unpose("orig")
	if got, _ := m.Run("caller"); got != 1 {
		t.Errorf("after Unpose: caller = %d, want 1", got)
	}
	if got := m.Interposed("orig"); got != "" {
		t.Errorf("Interposed after Unpose = %q, want \"\"", got)
	}
}

func TestInterposeLeavesIndirectCallsAlone(t *testing.T) {
	// A function pointer taken before (or after) interposition keeps
	// meaning the original code, as with PLT-level interposition.
	f := fileWith(constFunc("orig", 1), constFunc("alt", 2))
	f.Datas["ptr"] = &obj.Data{Name: "ptr", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitSym, Sym: "orig"}}}
	f.AddSym(&obj.Symbol{Name: "ptr", Kind: obj.SymData, Defined: true})
	via := buildFunc("via", 0, 3, 0, []obj.Instr{
		{Op: obj.OpAddrGlobal, Dst: 1, Sym: "ptr", A: obj.NoReg},
		{Op: obj.OpLoad, Dst: 1, A: 1},
		{Op: obj.OpCallInd, Dst: 2, A: 1},
		{Op: obj.OpRet, A: 2, HasVal: true},
	})
	f.Funcs["via"] = via
	f.AddSym(&obj.Symbol{Name: "via", Kind: obj.SymFunc, Defined: true})
	m := loadFile(t, f)

	if err := m.Interpose("orig", "alt"); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Run("via"); got != 1 {
		t.Errorf("indirect call after interpose = %d, want 1 (original)", got)
	}
}

func TestInterposeValidation(t *testing.T) {
	twoArg := buildFunc("two", 2, 3, 0, []obj.Instr{
		{Op: obj.OpRet, A: 0, HasVal: true},
	})
	m := loadFile(t, fileWith(constFunc("a", 1), constFunc("b", 2), twoArg))

	if err := m.Interpose("nosuch", "a"); err == nil {
		t.Error("interposing undefined symbol succeeded")
	}
	if err := m.Interpose("a", "nosuch"); err == nil {
		t.Error("interposing onto undefined target succeeded")
	}
	if err := m.Interpose("a", "two"); err == nil ||
		!strings.Contains(err.Error(), "args") {
		t.Errorf("arg-count mismatch not rejected: %v", err)
	}
	if err := m.Interpose("a", "a"); err == nil {
		t.Error("self-redirect succeeded")
	}
	if err := m.Interpose("a", "b"); err != nil {
		t.Fatal(err)
	}
	// b -> a would resolve through a -> b back to b: a cycle.
	if err := m.Interpose("b", "a"); err == nil ||
		!strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not rejected: %v", err)
	}
}

func TestInterposeCompressesChains(t *testing.T) {
	m := loadFile(t, fileWith(constFunc("a", 1), constFunc("b", 2), constFunc("c", 3)))
	if err := m.Interpose("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := m.Interpose("b", "c"); err != nil {
		t.Fatal(err)
	}
	// Both entries point straight at c: no multi-hop chains.
	if got := m.Interposed("a"); got != "c" {
		t.Errorf("Interposed(a) = %q, want c (compressed)", got)
	}
	if got := m.Interposed("b"); got != "c" {
		t.Errorf("Interposed(b) = %q, want c", got)
	}
	if got, _ := m.Run("a"); got != 3 {
		t.Errorf("Run(a) = %d, want 3", got)
	}
	// Interposing onto an already-redirected target resolves it first.
	m2 := loadFile(t, fileWith(constFunc("a", 1), constFunc("b", 2), constFunc("c", 3)))
	if err := m2.Interpose("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := m2.Interpose("a", "b"); err != nil {
		t.Fatal(err)
	}
	if got := m2.Interposed("a"); got != "c" {
		t.Errorf("Interposed(a) = %q, want c (target pre-resolved)", got)
	}
}

func TestSnapshotRestoresRedirects(t *testing.T) {
	m := loadFile(t, fileWith(constFunc("a", 1), constFunc("b", 2)))
	clean := m.Snapshot()
	if err := m.Interpose("a", "b"); err != nil {
		t.Fatal(err)
	}
	with := m.Snapshot()

	m.Restore(clean)
	if got, _ := m.Run("a"); got != 1 {
		t.Errorf("after restore to clean: Run(a) = %d, want 1", got)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Errorf("invariants after clean restore: %v", err)
	}
	m.Restore(with)
	if got, _ := m.Run("a"); got != 2 {
		t.Errorf("after restore with redirect: Run(a) = %d, want 2", got)
	}
	// The restored redirect map is a copy: mutating the machine must
	// not corrupt the snapshot.
	m.Unpose("a")
	m.Restore(with)
	if got := m.Interposed("a"); got != "b" {
		t.Errorf("snapshot aliased live redirect map: Interposed(a) = %q", got)
	}
}

func TestUnloadRefusedWhileInterposedOnto(t *testing.T) {
	m := loadFile(t, fileWith(constFunc("orig", 1)))
	mod := obj.NewFile("mod")
	mod.Funcs["dyn_alt"] = constFunc("dyn_alt", 2)
	mod.AddSym(&obj.Symbol{Name: "dyn_alt", Kind: obj.SymFunc, Defined: true})
	if err := m.LoadDynamicAs("mod", "Top/Alt#1", mod); err != nil {
		t.Fatal(err)
	}
	if err := m.Interpose("orig", "dyn_alt"); err != nil {
		t.Fatal(err)
	}
	err := m.UnloadDynamic("mod")
	if err == nil || !strings.Contains(err.Error(), "interposed") {
		t.Fatalf("unload of interposition target: err = %v, want refusal", err)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Errorf("invariants after refused unload: %v", err)
	}
	m.Unpose("orig")
	if err := m.UnloadDynamic("mod"); err != nil {
		t.Errorf("unload after Unpose: %v", err)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Errorf("invariants after unload: %v", err)
	}
}

func TestCheckDynInvariantsCatchesDanglingRedirect(t *testing.T) {
	m := loadFile(t, fileWith(constFunc("a", 1)))
	m.redirect = map[string]string{"a": "vanished"}
	err := m.CheckDynInvariants()
	if err == nil || !strings.Contains(err.Error(), "redirect") {
		t.Errorf("dangling redirect not caught: %v", err)
	}
}

func TestResetData(t *testing.T) {
	f := fileWith(
		buildFunc("smash", 0, 3, 0, []obj.Instr{
			{Op: obj.OpAddrGlobal, Dst: 1, Sym: "g", A: obj.NoReg},
			{Op: obj.OpConst, Dst: 2, Imm: 99},
			{Op: obj.OpStore, A: 1, B: 2},
			{Op: obj.OpRet, HasVal: false},
		}),
		buildFunc("read", 0, 2, 0, []obj.Instr{
			{Op: obj.OpAddrGlobal, Dst: 1, Sym: "g", A: obj.NoReg},
			{Op: obj.OpLoad, Dst: 1, A: 1},
			{Op: obj.OpRet, A: 1, HasVal: true},
		}),
	)
	f.Datas["g"] = &obj.Data{Name: "g", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitConst, Val: 7}}}
	f.AddSym(&obj.Symbol{Name: "g", Kind: obj.SymData, Defined: true})
	m := loadFile(t, f)

	if _, err := m.Run("smash"); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Run("read"); got != 99 {
		t.Fatalf("after smash: g = %d, want 99", got)
	}
	n := m.ResetData([]string{"g", "read", "no_such_global"})
	if n != 1 {
		t.Errorf("ResetData reset %d symbols, want 1", n)
	}
	if got, _ := m.Run("read"); got != 7 {
		t.Errorf("after ResetData: g = %d, want 7 (initializer value)", got)
	}
}

func TestPreCallInjectsAttributedTrap(t *testing.T) {
	caller := buildFunc("caller", 0, 2, 0, []obj.Instr{
		{Op: obj.OpCall, Dst: 1, Sym: "victim", A: obj.NoReg},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	m := loadFile(t, fileWith(caller, constFunc("victim", 1)))
	m.Img.SymbolOwner = map[string]string{
		"caller": "Top/App#1",
		"victim": "Top/Elem#2",
	}
	calls := 0
	m.PreCall = func(fn string) error {
		if fn != "victim" {
			return nil
		}
		calls++
		if calls < 2 {
			return nil
		}
		return &Trap{Kind: TrapInjected, Msg: "injected fault", Func: fn}
	}
	if got, err := m.Run("caller"); err != nil || got != 1 {
		t.Fatalf("first run: %d, %v", got, err)
	}
	_, err := m.Run("caller")
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("err = %T (%v), want *Trap", err, err)
	}
	if trap.Kind != TrapInjected {
		t.Errorf("kind = %v, want injected", trap.Kind)
	}
	if trap.Unit != "Top/Elem#2" {
		t.Errorf("unit = %q, want Top/Elem#2 (attributed to callee)", trap.Unit)
	}
}
