package machine

import (
	"errors"
	"strings"
	"testing"

	"knit/internal/obj"
)

// Trap-path tests: each fault class must produce a Trap with the right
// Kind, and top-level runs must attribute the trap to the unit instance
// owning the faulting function via the image's link-time symbol map.

func TestTrapKindsAndUnitAttribution(t *testing.T) {
	cases := []struct {
		name    string
		fn      *obj.Func
		args    []int64
		kind    TrapKind
		msgPart string
	}{
		{
			name: "bad string index",
			fn: buildFunc("f", 0, 2, 0, []obj.Instr{
				{Op: obj.OpAddrString, Dst: 1, Imm: 99, A: obj.NoReg},
				{Op: obj.OpRet, A: 1, HasVal: true},
			}),
			kind:    TrapBadStringIndex,
			msgPart: "bad string literal index",
		},
		{
			name: "indirect call to non-function",
			fn: buildFunc("f", 1, 2, 0, []obj.Instr{
				{Op: obj.OpCallInd, Dst: 1, A: 0},
				{Op: obj.OpRet, A: 1, HasVal: true},
			}),
			args:    []int64{0x7777},
			kind:    TrapUnresolvedSymbol,
			msgPart: "indirect call to non-function address",
		},
		{
			name: "load out of range",
			fn: buildFunc("f", 1, 2, 0, []obj.Instr{
				{Op: obj.OpLoad, Dst: 1, A: 0},
				{Op: obj.OpRet, A: 1, HasVal: true},
			}),
			args:    []int64{1 << 40},
			kind:    TrapBadAddress,
			msgPart: "load from invalid address",
		},
		{
			name: "store out of range",
			fn: buildFunc("f", 1, 2, 0, []obj.Instr{
				{Op: obj.OpStore, A: 0, B: 0},
				{Op: obj.OpRet, HasVal: false},
			}),
			args:    []int64{1 << 40},
			kind:    TrapBadAddress,
			msgPart: "store to invalid address",
		},
		{
			name: "call to undefined function",
			fn: buildFunc("f", 0, 2, 0, []obj.Instr{
				{Op: obj.OpCall, Dst: 1, Sym: "no_such_fn", A: obj.NoReg},
				{Op: obj.OpRet, A: 1, HasVal: true},
			}),
			kind:    TrapUndefinedCall,
			msgPart: "call to undefined function",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := loadFile(t, fileWith(tc.fn))
			m.Img.SymbolOwner = map[string]string{"f": "Kernel/Disk#3"}
			_, err := m.Run("f", tc.args...)
			var trap *Trap
			if !errors.As(err, &trap) {
				t.Fatalf("err = %T (%v), want *Trap", err, err)
			}
			if trap.Kind != tc.kind {
				t.Errorf("kind = %d, want %d", trap.Kind, tc.kind)
			}
			if trap.Unit != "Kernel/Disk#3" {
				t.Errorf("unit = %q, want Kernel/Disk#3", trap.Unit)
			}
			if !strings.Contains(err.Error(), tc.msgPart) {
				t.Errorf("message %q lacks %q", err, tc.msgPart)
			}
			if !strings.Contains(err.Error(), "(unit Kernel/Disk#3)") {
				t.Errorf("message %q lacks unit attribution", err)
			}
		})
	}
}

// TestTrapAttributesInnermostFunction: when a call chain crosses
// components, the trap is attributed to the component whose code
// actually faulted, not to the entry point.
func TestTrapAttributesInnermostFunction(t *testing.T) {
	callee := buildFunc("callee", 0, 2, 0, []obj.Instr{
		{Op: obj.OpConst, Dst: 0, Imm: 1 << 40},
		{Op: obj.OpLoad, Dst: 1, A: 0},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	caller := buildFunc("caller", 0, 2, 0, []obj.Instr{
		{Op: obj.OpCall, Dst: 1, Sym: "callee", A: obj.NoReg},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	m := loadFile(t, fileWith(caller, callee))
	m.Img.SymbolOwner = map[string]string{
		"caller": "Top/App#1",
		"callee": "Top/Driver#2",
	}
	_, err := m.Run("caller")
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("err = %T, want *Trap: %v", err, err)
	}
	if trap.Func != "callee" || trap.Unit != "Top/Driver#2" {
		t.Errorf("trap = func %q unit %q, want callee owned by Top/Driver#2", trap.Func, trap.Unit)
	}
}

// spinFunc loops forever: reg1 = reg1 + reg1; goto 0.
func spinFunc(name string) *obj.Func {
	return buildFunc(name, 0, 2, 0, []obj.Instr{
		{Op: obj.OpConst, Dst: 1, Imm: 1},
		{Op: obj.OpJump, Targets: [2]int{0, 0}},
	})
}

func TestFuelBudgetTrapsInsteadOfHanging(t *testing.T) {
	m := loadFile(t, fileWith(spinFunc("spin")))
	m.Img.SymbolOwner = map[string]string{"spin": "Top/Spin#1"}
	m.Fuel = 5000
	_, err := m.Run("spin")
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("err = %T, want *Trap: %v", err, err)
	}
	if trap.Kind != TrapBudgetExhausted {
		t.Errorf("kind = %d, want TrapBudgetExhausted", trap.Kind)
	}
	if trap.Unit != "Top/Spin#1" {
		t.Errorf("unit = %q, want Top/Spin#1", trap.Unit)
	}
	if !strings.Contains(err.Error(), "fuel budget of 5000 instructions exhausted") {
		t.Errorf("message %q lacks fuel diagnostics", err)
	}
	if m.Executed > 5000 {
		t.Errorf("executed %d instructions past a budget of 5000", m.Executed)
	}
}

// TestFuelBudgetRearmsPerRun: fuel is a per-top-level-run budget, not a
// machine-lifetime one — after a budget trap, the next run gets a fresh
// allowance, and nested calls share their caller's.
func TestFuelBudgetRearmsPerRun(t *testing.T) {
	cheap := buildFunc("cheap", 0, 2, 0, []obj.Instr{
		{Op: obj.OpConst, Dst: 1, Imm: 7},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	m := loadFile(t, fileWith(spinFunc("spin"), cheap))
	m.Fuel = 1000
	if _, err := m.Run("spin"); err == nil {
		t.Fatal("runaway loop did not trap")
	}
	// Same machine, same fuel setting: a cheap run succeeds because the
	// budget re-arms at the top level.
	if v, err := m.Run("cheap"); err != nil || v != 7 {
		t.Fatalf("cheap run after budget trap = %d, %v; want 7", v, err)
	}
	// Disabling fuel restores the old unlimited behavior (step limit
	// aside).
	m.Fuel = 0
	m.StepLimit = 2000
	_, err := m.Run("spin")
	var trap *Trap
	if !errors.As(err, &trap) || trap.Kind != TrapBudgetExhausted {
		t.Fatalf("step-limit stop = %v, want budget-exhausted trap", err)
	}
}

// TestSnapshotRestore: Restore must rewind memory writes and
// dynamic-module load/unload, while leaving statistics and builtins
// alone.
func TestSnapshotRestore(t *testing.T) {
	base := fileWith(
		buildFunc("set", 1, 2, 0, []obj.Instr{
			{Op: obj.OpAddrGlobal, Dst: 1, Sym: "g", A: obj.NoReg},
			{Op: obj.OpStore, A: 1, B: 0},
			{Op: obj.OpRet, HasVal: false},
		}),
		buildFunc("get", 0, 2, 0, []obj.Instr{
			{Op: obj.OpAddrGlobal, Dst: 1, Sym: "g", A: obj.NoReg},
			{Op: obj.OpLoad, Dst: 1, A: 1},
			{Op: obj.OpRet, A: 1, HasVal: true},
		}),
	)
	base.Datas["g"] = &obj.Data{Name: "g", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitConst, Val: 11}}}
	base.AddSym(&obj.Symbol{Name: "g", Kind: obj.SymData, Defined: true})
	m := loadFile(t, base)

	if _, err := m.Run("set", 42); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	execAtSnap := m.Executed

	// Mutate state past the snapshot: a store and a dynamic load.
	if _, err := m.Run("set", 99); err != nil {
		t.Fatal(err)
	}
	mod := obj.NewFile("mod")
	mod.Funcs["dyn_one"] = &obj.Func{Name: "dyn_one", NRegs: 2, Code: []obj.Instr{
		{Op: obj.OpConst, Dst: 1, Imm: 1},
		{Op: obj.OpRet, A: 1, HasVal: true},
	}}
	mod.AddSym(&obj.Symbol{Name: "dyn_one", Kind: obj.SymFunc, Defined: true})
	if err := m.LoadDynamic(mod); err != nil {
		t.Fatal(err)
	}

	m.Restore(snap)
	if v, _ := m.Run("get"); v != 42 {
		t.Errorf("g = %d after restore, want 42", v)
	}
	if _, err := m.Run("dyn_one"); err == nil {
		t.Error("module loaded after the snapshot survived the restore")
	}
	if mods := m.DynModules(); len(mods) != 0 {
		t.Errorf("live modules after restore: %v", mods)
	}
	if m.Executed <= execAtSnap {
		t.Error("restore rewound the statistics; it must not")
	}

	// The other direction: a snapshot taken while a module is live
	// brings the module back after an unload.
	if err := m.LoadDynamic(mod); err != nil {
		t.Fatal(err)
	}
	withMod := m.Snapshot()
	if err := m.UnloadDynamic("mod"); err != nil {
		t.Fatal(err)
	}
	m.Restore(withMod)
	if v, err := m.Run("dyn_one"); err != nil || v != 1 {
		t.Errorf("dyn_one after restore = %d, %v; want 1", v, err)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
}

// TestTrapKindStringExhaustive walks every declared kind: each must
// have a distinct, non-placeholder name. Adding a TrapKind without a
// trapKindNames entry fails here (and the array bound fails the build
// if a kind is added after numTrapKinds).
func TestTrapKindStringExhaustive(t *testing.T) {
	seen := map[string]TrapKind{}
	for k := TrapKind(0); k < numTrapKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "TrapKind(") {
			t.Errorf("TrapKind(%d) has no name", int(k))
			continue
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("TrapKind(%d) and TrapKind(%d) share name %q", int(prev), int(k), s)
		}
		seen[s] = k
	}
	if got := TrapKind(999).String(); got != "TrapKind(999)" {
		t.Errorf("out-of-range String() = %q", got)
	}
	if got := TrapInjected.String(); got != "injected" {
		t.Errorf("TrapInjected.String() = %q, want injected", got)
	}
}
