package machine

import (
	"strings"
	"testing"

	"knit/internal/cmini"
	"knit/internal/obj"
)

// Machine tests hand-build IR rather than going through the compiler,
// so they pin down the execution semantics independently of
// internal/compile (which has its own end-to-end tests against this
// package).

// buildFunc assembles a function.
func buildFunc(name string, nargs, nregs, frame int, code []obj.Instr) *obj.Func {
	return &obj.Func{Name: name, NArgs: nargs, NRegs: nregs, Frame: frame, Code: code}
}

func loadFile(t *testing.T, f *obj.File) *M {
	t.Helper()
	img, err := Load(f, DefaultCosts())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return New(img)
}

func fileWith(fns ...*obj.Func) *obj.File {
	f := obj.NewFile("test")
	for _, fn := range fns {
		f.Funcs[fn.Name] = fn
		f.AddSym(&obj.Symbol{Name: fn.Name, Kind: obj.SymFunc, Defined: true})
	}
	return f
}

func TestRunSimpleAdd(t *testing.T) {
	add := buildFunc("add", 2, 3, 0, []obj.Instr{
		{Op: obj.OpBin, Dst: 2, A: 0, B: 1, Tok: int(cmini.PLUS)},
		{Op: obj.OpRet, A: 2, HasVal: true},
	})
	m := loadFile(t, fileWith(add))
	v, err := m.Run("add", 30, 12)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("add = %d, want 42", v)
	}
	if m.Executed != 2 {
		t.Errorf("executed %d instrs, want 2", m.Executed)
	}
}

func TestTrapDivideByZero(t *testing.T) {
	div := buildFunc("div", 2, 3, 0, []obj.Instr{
		{Op: obj.OpBin, Dst: 2, A: 0, B: 1, Tok: int(cmini.SLASH)},
		{Op: obj.OpRet, A: 2, HasVal: true},
	})
	m := loadFile(t, fileWith(div))
	_, err := m.Run("div", 1, 0)
	if err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Errorf("err = %v, want divide by zero trap", err)
	}
}

func TestTrapNullDeref(t *testing.T) {
	f := buildFunc("f", 1, 2, 0, []obj.Instr{
		{Op: obj.OpLoad, Dst: 1, A: 0},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	m := loadFile(t, fileWith(f))
	_, err := m.Run("f", 0)
	if err == nil || !strings.Contains(err.Error(), "invalid address") {
		t.Errorf("err = %v, want invalid address trap", err)
	}
}

func TestTrapUndefinedFunction(t *testing.T) {
	f := buildFunc("f", 0, 1, 0, []obj.Instr{
		{Op: obj.OpCall, Dst: 0, Sym: "missing"},
		{Op: obj.OpRet, A: 0, HasVal: true},
	})
	m := loadFile(t, fileWith(f))
	_, err := m.Run("f")
	if err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Errorf("err = %v, want undefined function trap", err)
	}
}

func TestTrapStackOverflow(t *testing.T) {
	// f calls itself forever.
	f := buildFunc("f", 0, 1, 0, []obj.Instr{
		{Op: obj.OpCall, Dst: 0, Sym: "f"},
		{Op: obj.OpRet, A: 0, HasVal: true},
	})
	m := loadFile(t, fileWith(f))
	_, err := m.Run("f")
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("err = %v, want stack overflow trap", err)
	}
}

func TestTrapStepLimit(t *testing.T) {
	loop := buildFunc("loop", 0, 1, 0, []obj.Instr{
		{Op: obj.OpJump, Targets: [2]int{0}},
	})
	m := loadFile(t, fileWith(loop))
	m.StepLimit = 1000
	_, err := m.Run("loop")
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("err = %v, want step limit trap", err)
	}
}

func TestTrapIndirectToBadAddress(t *testing.T) {
	f := buildFunc("f", 1, 2, 0, []obj.Instr{
		{Op: obj.OpCallInd, Dst: 1, A: 0},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	m := loadFile(t, fileWith(f))
	_, err := m.Run("f", 12345)
	if err == nil || !strings.Contains(err.Error(), "non-function address") {
		t.Errorf("err = %v, want non-function address trap", err)
	}
}

func TestCallCostsDirectVsIndirect(t *testing.T) {
	callee := buildFunc("callee", 0, 1, 0, []obj.Instr{
		{Op: obj.OpConst, Dst: 0, Imm: 7},
		{Op: obj.OpRet, A: 0, HasVal: true},
	})
	direct := buildFunc("direct", 0, 1, 0, []obj.Instr{
		{Op: obj.OpCall, Dst: 0, Sym: "callee"},
		{Op: obj.OpRet, A: 0, HasVal: true},
	})
	indirect := buildFunc("indirect", 0, 2, 0, []obj.Instr{
		{Op: obj.OpAddrGlobal, Dst: 0, Sym: "callee"},
		{Op: obj.OpCallInd, Dst: 1, A: 0},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	costs := DefaultCosts()
	costs.ICacheBytes = 0 // disable cache noise for exact accounting
	f := fileWith(callee, direct, indirect)
	img, err := Load(f, costs)
	if err != nil {
		t.Fatal(err)
	}
	m1 := New(img)
	if _, err := m1.Run("direct"); err != nil {
		t.Fatal(err)
	}
	m2 := New(img)
	if _, err := m2.Run("indirect"); err != nil {
		t.Fatal(err)
	}
	if m2.Cycles-m1.Cycles != costs.Indirect+costs.Instr {
		// indirect executes one extra AddrGlobal instr plus the penalty.
		t.Errorf("indirect %d vs direct %d cycles; want difference %d",
			m2.Cycles, m1.Cycles, costs.Indirect+costs.Instr)
	}
	if m1.Calls != 1 || m2.IndCalls != 1 {
		t.Errorf("call counters: direct=%d indirect=%d", m1.Calls, m2.IndCalls)
	}
}

func TestICacheCountsMisses(t *testing.T) {
	// A function bigger than the I-cache, executed twice: every line
	// misses on a cold cache, then conflicts evict everything.
	var code []obj.Instr
	n := 4096 // 16 KB of text at 4 bytes/instr vs 8 KB cache
	for i := 0; i < n; i++ {
		code = append(code, obj.Instr{Op: obj.OpConst, Dst: 0, Imm: int64(i)})
	}
	code = append(code, obj.Instr{Op: obj.OpRet, A: 0, HasVal: true})
	big := buildFunc("big", 0, 1, 0, code)
	m := loadFile(t, fileWith(big))
	if _, err := m.Run("big"); err != nil {
		t.Fatal(err)
	}
	if m.ICacheMiss == 0 {
		t.Error("expected I-cache misses")
	}
	// Every miss is charged either the sequential-prefetch penalty or the
	// full penalty.
	costs := DefaultCosts()
	min := m.ICacheMiss * costs.ICacheSeqMiss
	max := m.ICacheMiss * costs.ICacheMiss
	if m.Stalls < min || m.Stalls > max {
		t.Errorf("stalls %d outside [%d, %d] for %d misses", m.Stalls, min, max, m.ICacheMiss)
	}
	if m.Cycles <= m.Executed {
		t.Error("cycles should exceed executed instructions due to stalls")
	}
}

func TestICacheSequentialPrefetchCheaper(t *testing.T) {
	// Straight-line code misses cheaply (sequential prefetch); the same
	// amount of code executed via scattered jumps pays full misses.
	n := 512
	var straight []obj.Instr
	for i := 0; i < n; i++ {
		straight = append(straight, obj.Instr{Op: obj.OpConst, Dst: 0, Imm: 1})
	}
	straight = append(straight, obj.Instr{Op: obj.OpRet, A: 0, HasVal: true})
	// Scattered: jump forward by 3 blocks each time, wrapping, so that
	// consecutive fetches are never on adjacent lines.
	var scattered []obj.Instr
	for i := 0; i < n; i++ {
		next := (i + 37) % n
		scattered = append(scattered, obj.Instr{Op: obj.OpJump, Targets: [2]int{next}})
	}
	// Escape hatch: rewrite one slot to return.
	scattered[37] = obj.Instr{Op: obj.OpRet, A: 0, HasVal: true}

	costs := DefaultCosts()
	costs.ICacheBytes = 256 // tiny: everything misses
	imgS, err := Load(fileWith(buildFunc("s", 0, 1, 0, straight)), costs)
	if err != nil {
		t.Fatal(err)
	}
	ms := New(imgS)
	if _, err := ms.Run("s"); err != nil {
		t.Fatal(err)
	}
	perMissStraight := float64(ms.Stalls) / float64(ms.ICacheMiss)
	if perMissStraight > float64(costs.ICacheSeqMiss)+1 {
		t.Errorf("straight-line code pays %.1f per miss, want ~%d (sequential)",
			perMissStraight, costs.ICacheSeqMiss)
	}
}

func TestICacheSmallLoopHits(t *testing.T) {
	// A small hot loop should have a high hit rate.
	loop := buildFunc("loop", 1, 3, 0, []obj.Instr{
		{Op: obj.OpConst, Dst: 1, Imm: 1},                          // 0
		{Op: obj.OpBin, Dst: 0, A: 0, B: 1, Tok: int(cmini.MINUS)}, // 1
		{Op: obj.OpBranch, A: 0, Targets: [2]int{1, 3}},            // 2
		{Op: obj.OpRet, A: 0, HasVal: true},                        // 3
	})
	m := loadFile(t, fileWith(loop))
	if _, err := m.Run("loop", 10000); err != nil {
		t.Fatal(err)
	}
	hitRate := 1 - float64(m.ICacheMiss)/float64(m.ICacheRefs)
	if hitRate < 0.999 {
		t.Errorf("hot loop hit rate %f, want ~1", hitRate)
	}
}

func TestResetRestoresMemoryAndStats(t *testing.T) {
	f := obj.NewFile("t")
	f.Datas["g"] = &obj.Data{Name: "g", Size: 1, Init: []obj.DataInit{{Kind: obj.InitConst, Val: 5}}}
	f.AddSym(&obj.Symbol{Name: "g", Kind: obj.SymData, Defined: true})
	set := buildFunc("set", 1, 2, 0, []obj.Instr{
		{Op: obj.OpAddrGlobal, Dst: 1, Sym: "g"},
		{Op: obj.OpStore, A: 1, B: 0},
		{Op: obj.OpRet, A: obj.NoReg},
	})
	get := buildFunc("get", 0, 2, 0, []obj.Instr{
		{Op: obj.OpAddrGlobal, Dst: 0, Sym: "g"},
		{Op: obj.OpLoad, Dst: 1, A: 0},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	for _, fn := range []*obj.Func{set, get} {
		f.Funcs[fn.Name] = fn
		f.AddSym(&obj.Symbol{Name: fn.Name, Kind: obj.SymFunc, Defined: true})
	}
	m := loadFile(t, f)
	if _, err := m.Run("set", 99); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	v, err := m.Run("get")
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("after reset g = %d, want 5", v)
	}
}

func TestLoadErrors(t *testing.T) {
	// Unresolved AddrGlobal.
	f := fileWith(buildFunc("f", 0, 1, 0, []obj.Instr{
		{Op: obj.OpAddrGlobal, Dst: 0, Sym: "nothing"},
		{Op: obj.OpRet, A: 0, HasVal: true},
	}))
	if _, err := Load(f, DefaultCosts()); err == nil ||
		!strings.Contains(err.Error(), "unresolved symbol") {
		t.Errorf("err = %v, want unresolved symbol", err)
	}
	// Unresolved data initializer.
	f2 := obj.NewFile("t")
	f2.Datas["p"] = &obj.Data{Name: "p", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitSym, Sym: "ghost"}}}
	if _, err := Load(f2, DefaultCosts()); err == nil ||
		!strings.Contains(err.Error(), "unresolved symbol") {
		t.Errorf("err = %v, want unresolved data symbol", err)
	}
	// Missing entry point.
	f3 := fileWith()
	img, err := Load(f3, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(img).Run("main"); err == nil {
		t.Error("running missing entry should fail")
	}
}

func TestDataInitStringAndSym(t *testing.T) {
	f := obj.NewFile("t")
	f.Strings = []string{"hi"}
	f.Datas["msg"] = &obj.Data{Name: "msg", Size: 1,
		Init: []obj.DataInit{{Kind: obj.InitString, Index: 0}}}
	f.AddSym(&obj.Symbol{Name: "msg", Kind: obj.SymData, Defined: true})
	// read = mem[mem[&msg]] (first char of the string).
	read := buildFunc("read", 0, 3, 0, []obj.Instr{
		{Op: obj.OpAddrGlobal, Dst: 0, Sym: "msg"},
		{Op: obj.OpLoad, Dst: 1, A: 0},
		{Op: obj.OpLoad, Dst: 2, A: 1},
		{Op: obj.OpRet, A: 2, HasVal: true},
	})
	f.Funcs["read"] = read
	f.AddSym(&obj.Symbol{Name: "read", Kind: obj.SymFunc, Defined: true})
	m := loadFile(t, f)
	v, err := m.Run("read")
	if err != nil {
		t.Fatal(err)
	}
	if v != 'h' {
		t.Errorf("read = %d, want 'h'", v)
	}
	s, err := m.ReadCString(m.Mem[m.Img.GlobalAddr["msg"]])
	if err != nil {
		t.Fatal(err)
	}
	if s != "hi" {
		t.Errorf("ReadCString = %q, want hi", s)
	}
}

func TestStopWatch(t *testing.T) {
	// enter/exit around some busy work.
	busy := buildFunc("busy", 0, 2, 0, []obj.Instr{
		{Op: obj.OpCall, Dst: 0, Sym: "__tick_enter"},
		{Op: obj.OpConst, Dst: 1, Imm: 1},
		{Op: obj.OpConst, Dst: 1, Imm: 2},
		{Op: obj.OpConst, Dst: 1, Imm: 3},
		{Op: obj.OpCall, Dst: 0, Sym: "__tick_exit"},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	m := loadFile(t, fileWith(busy))
	w := InstallStopWatch(m)
	if _, err := m.Run("busy"); err != nil {
		t.Fatal(err)
	}
	if w.Windows != 1 {
		t.Fatalf("windows = %d, want 1", w.Windows)
	}
	if w.Total <= 0 {
		t.Errorf("total window cycles = %d, want > 0", w.Total)
	}
	if w.PerWindow() != float64(w.Total) {
		t.Errorf("PerWindow = %f, want %f", w.PerWindow(), float64(w.Total))
	}
}

func TestTextSizeAccounting(t *testing.T) {
	a := buildFunc("a", 0, 1, 0, make([]obj.Instr, 10))
	for i := range a.Code {
		a.Code[i] = obj.Instr{Op: obj.OpConst, Dst: 0, Imm: 0}
	}
	a.Code[9] = obj.Instr{Op: obj.OpRet, A: 0, HasVal: true}
	b := buildFunc("b", 0, 1, 0, []obj.Instr{{Op: obj.OpRet, A: 0, HasVal: true}})
	costs := DefaultCosts()
	img, err := Load(fileWith(a, b), costs)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(10*costs.InstrBytes+costs.FuncPad) + int64(1*costs.InstrBytes+costs.FuncPad)
	if img.TextSize != want {
		t.Errorf("TextSize = %d, want %d", img.TextSize, want)
	}
}
