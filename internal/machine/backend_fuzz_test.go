package machine

import (
	"testing"

	"knit/internal/obj"
)

// beOp decodes one fuzz byte for FuzzBackendEquivalence: an operation
// and a template argument. Unlike FuzzDynamicLifecycle this fuzzer
// needs no success model — the interpreter IS the model, and the
// compiled backend must match it step for step.
//
//	op 0,1: load template tpl
//	op 2,3: unload template tpl
//	op 4:   interpose fn_tpl -> fn_((tpl+1)%4)
//	op 5:   unpose fn_tpl
//	op 6:   snapshot
//	op 7:   restore
func beOp(b byte) (op int, tpl int) {
	return int(b & 7), int(b>>3) % 4
}

// FuzzBackendEquivalence drives the same random lifecycle sequence —
// dynamic loads and unloads, interpositions, snapshots and restores,
// with every entry point run after every step — against two machines in
// lockstep: one on the reference interpreter, one on the compiled
// closure backend. At every step both must produce identical values,
// identical error text, identical instruction counts, identical memory
// images, and clean dynamic-table invariants. This is the harness for
// the guarantee that the compiled backend's dispatch caches can never
// go stale: any sequence where a cached call target survives an
// interposition, unload, or restore shows up as a divergence here.
func FuzzBackendEquivalence(f *testing.F) {
	enc := func(op, tpl int) byte { return byte(op | tpl<<3) }
	// Seeds: ordered loads; interpose over loaded modules then unpose;
	// snapshot/restore straddling loads and interpositions; unload with
	// a redirect still installed; reload after restore.
	f.Add([]byte{enc(0, 0), enc(0, 1), enc(0, 2), enc(0, 3)})
	f.Add([]byte{enc(0, 0), enc(0, 3), enc(4, 0), enc(4, 3), enc(5, 0), enc(5, 3)})
	f.Add([]byte{enc(0, 0), enc(6, 0), enc(0, 1), enc(4, 1), enc(7, 0), enc(0, 1)})
	f.Add([]byte{enc(0, 0), enc(0, 1), enc(4, 0), enc(2, 1), enc(2, 0), enc(5, 0)})
	f.Add([]byte{enc(0, 2), enc(0, 0), enc(0, 1), enc(6, 0), enc(4, 2), enc(2, 2), enc(7, 0), enc(0, 2)})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 48 {
			data = data[:48]
		}
		base := fileWith(buildFunc("base_id", 1, 2, 0, []obj.Instr{
			{Op: obj.OpRet, A: 0, HasVal: true},
		}))
		mi := loadFile(t, base)
		mc := loadFile(t, base)
		mc.SetBackend(BackendCompiled)

		var snapI, snapC *Snapshot

		// step applies one operation to both machines and fails on any
		// observable divergence.
		step := func(i int, name string, op func(m *M) error) {
			t.Helper()
			ei := op(mi)
			ec := op(mc)
			if (ei == nil) != (ec == nil) || (ei != nil && ei.Error() != ec.Error()) {
				t.Fatalf("step %d %s: interp err=%v, compiled err=%v", i, name, ei, ec)
			}
			if err := mi.CheckDynInvariants(); err != nil {
				t.Fatalf("step %d %s: interp invariants: %v", i, name, err)
			}
			if err := mc.CheckDynInvariants(); err != nil {
				t.Fatalf("step %d %s: compiled invariants: %v", i, name, err)
			}
			// Every entry point, live or dead: values, traps, and the
			// instruction counter must stay in lockstep.
			for tpl := 0; tpl < 4; tpl++ {
				fn := [...]string{"fn_0", "fn_1", "fn_2", "fn_3"}[tpl]
				vi, ri := mi.Run(fn)
				vc, rc := mc.Run(fn)
				if vi != vc || (ri == nil) != (rc == nil) || (ri != nil && ri.Error() != rc.Error()) {
					t.Fatalf("step %d %s: %s: interp (%d, %v), compiled (%d, %v)",
						i, name, fn, vi, ri, vc, rc)
				}
			}
			if mi.Executed != mc.Executed {
				t.Fatalf("step %d %s: Executed interp=%d compiled=%d", i, name, mi.Executed, mc.Executed)
			}
			if len(mi.Mem) != len(mc.Mem) {
				t.Fatalf("step %d %s: memory size interp=%d compiled=%d", i, name, len(mi.Mem), len(mc.Mem))
			}
			for a := range mi.Mem {
				if mi.Mem[a] != mc.Mem[a] {
					t.Fatalf("step %d %s: memory diverges at %d: interp=%d compiled=%d",
						i, name, a, mi.Mem[a], mc.Mem[a])
				}
			}
		}

		step(-1, "init", func(m *M) error { return nil })
		for i, b := range data {
			op, tpl := beOp(b)
			switch {
			case op <= 1:
				step(i, "load", func(m *M) error {
					return m.LoadDynamicAs(fuzzModName(tpl), "fuzz/"+fuzzModName(tpl), fuzzTemplate(tpl))
				})
			case op <= 3:
				step(i, "unload", func(m *M) error { return m.UnloadDynamic(fuzzModName(tpl)) })
			case op == 4:
				from := [...]string{"fn_0", "fn_1", "fn_2", "fn_3"}[tpl]
				to := [...]string{"fn_0", "fn_1", "fn_2", "fn_3"}[(tpl+1)%4]
				step(i, "interpose", func(m *M) error { return m.Interpose(from, to) })
			case op == 5:
				sym := [...]string{"fn_0", "fn_1", "fn_2", "fn_3"}[tpl]
				step(i, "unpose", func(m *M) error { m.Unpose(sym); return nil })
			case op == 6:
				step(i, "snapshot", func(m *M) error {
					if m == mi {
						snapI = m.Snapshot()
					} else {
						snapC = m.Snapshot()
					}
					return nil
				})
			default:
				step(i, "restore", func(m *M) error {
					if m == mi {
						if snapI != nil {
							m.Restore(snapI)
						}
					} else if snapC != nil {
						m.Restore(snapC)
					}
					return nil
				})
			}
		}
	})
}
