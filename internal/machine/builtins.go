package machine

import "bytes"

// Console is the simulated console device: a byte sink that components'
// console drivers write to through the __console_out builtin.
type Console struct {
	buf bytes.Buffer
}

// String returns everything written to the console so far.
func (c *Console) String() string { return c.buf.String() }

// Reset clears the console buffer.
func (c *Console) Reset() { c.buf.Reset() }

// InstallConsole registers the console device builtins on m and returns
// the console. Simulated code accesses the device as:
//
//	extern int __console_out(int ch);   // write one byte
//	extern int __serial_out(int ch);    // the "serial port": same sink,
//	                                    // distinct device symbol
//
// Giving the two devices distinct symbols lets OSKit-style examples
// demonstrate printf redirection by linking a console component against
// one device or the other.
func InstallConsole(m *M) *Console {
	c := &Console{}
	m.RegisterBuiltin("__console_out", func(_ *M, args []int64) (int64, error) {
		c.buf.WriteByte(byte(args[0]))
		return 0, nil
	})
	return c
}

// InstallSerial registers the serial-port device builtin and returns its
// sink.
func InstallSerial(m *M) *Console {
	c := &Console{}
	m.RegisterBuiltin("__serial_out", func(_ *M, args []int64) (int64, error) {
		c.buf.WriteByte(byte(args[0]))
		return 0, nil
	})
	return c
}

// StopWatch accumulates cycles (and i-fetch stall cycles) between
// __tick_enter and __tick_exit calls; benchmarks use it to measure,
// e.g., per-packet processing time "from the moment a packet enters the
// router graph to the moment it leaves" (Table 1).
type StopWatch struct {
	Windows     int64
	Total       int64
	TotalStalls int64
	start       int64
	startStall  int64
	running     bool
}

// InstallStopWatch registers __tick_enter/__tick_exit on m.
func InstallStopWatch(m *M) *StopWatch {
	w := &StopWatch{}
	m.RegisterBuiltin("__tick_enter", func(mm *M, _ []int64) (int64, error) {
		w.start = mm.Cycles
		w.startStall = mm.Stalls
		w.running = true
		return 0, nil
	})
	m.RegisterBuiltin("__tick_exit", func(mm *M, _ []int64) (int64, error) {
		if w.running {
			w.Total += mm.Cycles - w.start
			w.TotalStalls += mm.Stalls - w.startStall
			w.Windows++
			w.running = false
		}
		return 0, nil
	})
	return w
}

// PerWindow returns average cycles per measured window.
func (w *StopWatch) PerWindow() float64 {
	if w.Windows == 0 {
		return 0
	}
	return float64(w.Total) / float64(w.Windows)
}

// StallsPerWindow returns average i-fetch stall cycles per window.
func (w *StopWatch) StallsPerWindow() float64 {
	if w.Windows == 0 {
		return 0
	}
	return float64(w.TotalStalls) / float64(w.Windows)
}
