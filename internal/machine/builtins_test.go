package machine

import (
	"testing"

	"knit/internal/obj"
)

func TestConsoleAndSerialSeparateSinks(t *testing.T) {
	emit := buildFunc("emit", 0, 1, 0, []obj.Instr{
		{Op: obj.OpConst, Dst: 0, Imm: 'c'},
		{Op: obj.OpCall, Dst: 0, Sym: "__console_out", Args: []obj.Reg{0}},
		{Op: obj.OpConst, Dst: 0, Imm: 's'},
		{Op: obj.OpCall, Dst: 0, Sym: "__serial_out", Args: []obj.Reg{0}},
		{Op: obj.OpRet, A: obj.NoReg},
	})
	m := loadFile(t, fileWith(emit))
	con := InstallConsole(m)
	ser := InstallSerial(m)
	if _, err := m.Run("emit"); err != nil {
		t.Fatal(err)
	}
	if con.String() != "c" || ser.String() != "s" {
		t.Errorf("console %q serial %q", con.String(), ser.String())
	}
	con.Reset()
	if con.String() != "" {
		t.Error("console Reset did not clear")
	}
}

func TestWriteWordsAndBounds(t *testing.T) {
	f := fileWith(buildFunc("id", 1, 1, 0, []obj.Instr{
		{Op: obj.OpRet, A: 0, HasVal: true},
	}))
	m := loadFile(t, f)
	addr := int64(len(m.Mem)) - 4
	if err := m.WriteWords(addr, []int64{1, 2, 3, 4}); err != nil {
		t.Fatalf("in-bounds write: %v", err)
	}
	if m.Mem[addr+3] != 4 {
		t.Error("write did not land")
	}
	if err := m.WriteWords(addr, []int64{1, 2, 3, 4, 5}); err == nil {
		t.Error("overflowing write should fail")
	}
	if err := m.WriteWords(2, []int64{1}); err == nil {
		t.Error("write into the null guard should fail")
	}
}

func TestReadCStringBounds(t *testing.T) {
	f := fileWith()
	f.Strings = []string{"knit"}
	f.Datas["keep"] = &obj.Data{Name: "keep", Size: 1}
	m := loadFile(t, f)
	// Locate the interned string through the image and read it back.
	s, err := m.ReadCString(m.Img.GlobalAddr["keep"] + 1)
	if err != nil {
		t.Fatal(err)
	}
	if s != "knit" {
		t.Errorf("ReadCString = %q", s)
	}
	if _, err := m.ReadCString(1); err == nil {
		t.Error("reading the null guard should fail")
	}
	if _, err := m.ReadCString(int64(len(m.Mem)) + 5); err == nil {
		t.Error("reading past memory should fail")
	}
}

func TestStopWatchUnbalancedExitIgnored(t *testing.T) {
	f := fileWith(buildFunc("f", 0, 1, 0, []obj.Instr{
		{Op: obj.OpCall, Dst: 0, Sym: "__tick_exit"}, // exit without enter
		{Op: obj.OpCall, Dst: 0, Sym: "__tick_enter"},
		{Op: obj.OpCall, Dst: 0, Sym: "__tick_exit"},
		{Op: obj.OpRet, A: obj.NoReg},
	}))
	m := loadFile(t, f)
	w := InstallStopWatch(m)
	if _, err := m.Run("f"); err != nil {
		t.Fatal(err)
	}
	if w.Windows != 1 {
		t.Errorf("windows = %d, want 1 (unbalanced exit ignored)", w.Windows)
	}
	if w.StallsPerWindow() < 0 {
		t.Error("negative stall accounting")
	}
}

func TestRunMissingArgsTrap(t *testing.T) {
	f := fileWith(buildFunc("two", 2, 2, 0, []obj.Instr{
		{Op: obj.OpRet, A: 0, HasVal: true},
	}))
	m := loadFile(t, f)
	if _, err := m.Run("two", 1); err == nil {
		t.Error("wrong arity should trap")
	}
}
