// Package machine executes linked object files on a simulated CPU with a
// deterministic cost model: per-instruction cycles, function-call and
// indirect-call overheads, and a direct-mapped instruction cache whose
// miss stalls are accounted separately (the paper's "instr. fetch stall
// cycles" column). It stands in for the 200 MHz Pentium Pro testbed of
// the paper's evaluation; absolute numbers differ, but relative costs —
// call overhead, indirection penalties, I-cache behaviour — reproduce the
// effects the paper measures.
package machine

import (
	"errors"
	"fmt"
	"sync"

	"knit/internal/cmini"
	"knit/internal/obj"
)

// Costs is the machine's cost model, in cycles.
type Costs struct {
	Instr      int64 // every executed instruction
	CallBase   int64 // extra cycles per direct call (call+prologue+ret)
	CallPerArg int64 // extra cycles per argument pushed
	Indirect   int64 // extra cycles per indirect call, on top of CallBase
	Builtin    int64 // cycles charged for a builtin (device) call
	ICacheMiss int64 // stall cycles per non-sequential instruction-cache miss
	// ICacheSeqMiss is the (small) stall charged when the missing line
	// directly follows the previously fetched line: sequential prefetch
	// hides most of the latency, so straight-line code (what flattening
	// produces) fetches cheaply while scattered call targets pay full
	// misses — the effect behind Table 1's i-fetch stall column.
	ICacheSeqMiss int64
	ICacheBytes   int // total I-cache size in bytes (0 disables the cache)
	ICacheLine    int // line size in bytes
	InstrBytes    int // encoded size of one instruction (text accounting)
	FuncPad       int // per-function text padding/alignment in bytes
}

// DefaultCosts resemble a late-90s in-order x86 pipeline closely enough
// to reproduce the paper's relative results.
func DefaultCosts() Costs {
	return Costs{
		Instr:         1,
		CallBase:      6,
		CallPerArg:    2,
		Indirect:      4,
		Builtin:       8,
		ICacheMiss:    12,
		ICacheSeqMiss: 2,
		ICacheBytes:   8 * 1024,
		ICacheLine:    32,
		InstrBytes:    4,
		FuncPad:       16,
	}
}

// Memory layout constants.
const (
	nullGuard  = 16             // addresses [0,16) trap, catching NULL derefs
	textBase   = int64(1) << 40 // function addresses live far above data
	stackWords = 1 << 16
)

// Image is a loaded program: globals placed, strings interned, function
// addresses assigned.
//
// Sharing contract: an Image is immutable once loaded, so any number of
// machines may run off the same Image concurrently — each M copies the
// initial data segment (initMem) into its own Mem at New, and all other
// Image state (text, entry points, address maps, interned strings, cost
// model) is only ever read after Load returns. The one sanctioned
// post-Load write is the build layer assigning SymbolOwner exactly once,
// before any machine is created from the image. Everything mutable at
// run time — memory, stack, dynamic modules, interposition redirects,
// hooks, counters — lives on M, never on Image. Code that adds Image
// state must either populate it fully inside Load or move it to M;
// internal/machine's shared-image race test (shared_test.go) is the
// regression net for violations.
type Image struct {
	File       *obj.File
	Entry      map[string]*obj.Func
	GlobalAddr map[string]int64
	FuncAddr   map[string]int64
	funcByAddr map[int64]*obj.Func
	strAddr    []int64
	initMem    []int64
	textOff    map[string]int64 // function name -> text offset in bytes
	TextSize   int64
	DataWords  int
	costs      Costs
	// SymbolOwner, when set by the build layer, maps program-unique
	// symbol names to the unit-instance path that defined them, so traps
	// are attributed to components (fault isolation, not just fault
	// detection). Nil is fine: attribution is best-effort.
	SymbolOwner map[string]string

	// compiled is the closure-compiled form of the static program (see
	// compile_backend.go), derived lazily — and exactly once — from the
	// immutable post-Load state by the first machine that runs with
	// BackendCompiled. Building it under the Once is the second
	// sanctioned post-Load write; all machines share the result
	// read-only. All mutable compiled-backend state (dispatch caches,
	// dynamic-module compilations) lives on M.
	compileOnce sync.Once
	compiled    *imageProg
}

// LoadError reports a problem resolving an object file into an image.
type LoadError struct{ Msg string }

func (e *LoadError) Error() string { return "machine: " + e.Msg }

// Load places the merged object file in memory. Every data symbol
// referenced by code or data initializers must be defined in f; function
// symbols may be left undefined if the runtime provides them as builtins
// (checked at call time).
func Load(f *obj.File, costs Costs) (*Image, error) {
	img := &Image{
		File:       f,
		Entry:      f.Funcs,
		GlobalAddr: map[string]int64{},
		FuncAddr:   map[string]int64{},
		funcByAddr: map[int64]*obj.Func{},
		textOff:    map[string]int64{},
		costs:      costs,
	}
	// Data placement: globals first, then string literals.
	addr := int64(nullGuard)
	var order []string
	for name := range f.Datas {
		order = append(order, name)
	}
	// Deterministic placement.
	sortStrings(order)
	for _, name := range order {
		d := f.Datas[name]
		img.GlobalAddr[name] = addr
		addr += int64(d.Size)
	}
	strAddr := make([]int64, len(f.Strings))
	for i, s := range f.Strings {
		strAddr[i] = addr
		addr += int64(len(s)) + 1
	}
	img.strAddr = strAddr
	img.DataWords = int(addr)
	img.initMem = make([]int64, addr)
	for i, s := range f.Strings {
		base := strAddr[i]
		for j := 0; j < len(s); j++ {
			img.initMem[base+int64(j)] = int64(s[j])
		}
	}
	// Text placement, deterministic by name.
	var fnames []string
	for name := range f.Funcs {
		fnames = append(fnames, name)
	}
	sortStrings(fnames)
	text := int64(0)
	for _, name := range fnames {
		fn := f.Funcs[name]
		img.textOff[name] = text
		a := textBase + text
		img.FuncAddr[name] = a
		img.funcByAddr[a] = fn
		text += int64(len(fn.Code)*costs.InstrBytes + costs.FuncPad)
	}
	img.TextSize = text
	// Apply data initializers now that addresses exist.
	resolve := func(sym string) (int64, bool) {
		if a, ok := img.GlobalAddr[sym]; ok {
			return a, true
		}
		if a, ok := img.FuncAddr[sym]; ok {
			return a, true
		}
		return 0, false
	}
	for _, name := range order {
		d := f.Datas[name]
		base := img.GlobalAddr[name]
		for _, init := range d.Init {
			switch init.Kind {
			case obj.InitConst:
				img.initMem[base+int64(init.Offset)] = init.Val
			case obj.InitString:
				if init.Index < 0 || init.Index >= len(strAddr) {
					return nil, &LoadError{Msg: fmt.Sprintf("data %s: bad string index %d", name, init.Index)}
				}
				img.initMem[base+int64(init.Offset)] = strAddr[init.Index]
			case obj.InitSym:
				a, ok := resolve(init.Sym)
				if !ok {
					return nil, &LoadError{Msg: fmt.Sprintf("data %s: unresolved symbol %q", name, init.Sym)}
				}
				img.initMem[base+int64(init.Offset)] = a
			}
		}
	}
	// Every OpAddrGlobal operand must resolve.
	for fname, fn := range f.Funcs {
		for i := range fn.Code {
			if fn.Code[i].Op == obj.OpAddrGlobal {
				if _, ok := resolve(fn.Code[i].Sym); !ok {
					return nil, &LoadError{Msg: fmt.Sprintf(
						"func %s: address of unresolved symbol %q", fname, fn.Code[i].Sym)}
				}
			}
		}
	}
	return img, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Builtin is a host-provided function callable from simulated code, used
// to model devices (console, NIC) and measurement hooks.
type Builtin func(m *M, args []int64) (int64, error)

// TrapKind classifies runtime errors so callers can react structurally
// (retry, rollback, report) instead of parsing messages.
type TrapKind int

// Trap kinds.
const (
	TrapGeneric TrapKind = iota
	// TrapBudgetExhausted: the machine's fuel/step budget ran out — a
	// runaway component was stopped instead of hanging the host.
	TrapBudgetExhausted
	// TrapBadAddress: load or store outside mapped memory (including the
	// NULL guard page).
	TrapBadAddress
	// TrapUnresolvedSymbol: address taken of (or indirect call to) a
	// symbol with no definition.
	TrapUnresolvedSymbol
	// TrapBadStringIndex: a string-literal index outside the image table.
	TrapBadStringIndex
	// TrapStackOverflow: call depth or simulated stack exhausted.
	TrapStackOverflow
	// TrapUndefinedCall: direct call to a function that is neither
	// defined nor a registered builtin.
	TrapUndefinedCall
	// TrapInjected: a fault injected by a test or supervision harness
	// (see internal/knit/build/faultinject) — never produced by real
	// simulated code.
	TrapInjected

	// numTrapKinds must stay last: it sizes the name table, and the
	// exhaustiveness test walks [0, numTrapKinds).
	numTrapKinds
)

// NumTrapKinds is the number of defined trap kinds. Per-kind tables
// (e.g. the observability layer's trap counters) size themselves with
// it so adding a kind without extending them is a compile- or
// test-time error, not a silent miscount.
const NumTrapKinds = int(numTrapKinds)

// trapKindNames is indexed by TrapKind. Sizing the array with
// numTrapKinds means adding a kind without naming it leaves a hole the
// exhaustiveness test (TestTrapKindStringExhaustive) catches.
var trapKindNames = [numTrapKinds]string{
	TrapGeneric:          "generic",
	TrapBudgetExhausted:  "budget-exhausted",
	TrapBadAddress:       "bad-address",
	TrapUnresolvedSymbol: "unresolved-symbol",
	TrapBadStringIndex:   "bad-string-index",
	TrapStackOverflow:    "stack-overflow",
	TrapUndefinedCall:    "undefined-call",
	TrapInjected:         "injected",
}

// String names the trap kind for reports and logs.
func (k TrapKind) String() string {
	if k >= 0 && k < numTrapKinds && trapKindNames[k] != "" {
		return trapKindNames[k]
	}
	return fmt.Sprintf("TrapKind(%d)", int(k))
}

// Trap is a runtime error in simulated code. Unit, when known, names the
// unit instance owning the faulting function (mapped back through the
// link-time symbol owner table), so a crash is attributed to a component
// rather than to an anonymous renamed symbol.
type Trap struct {
	Kind TrapKind
	Msg  string
	Func string
	Unit string
	PC   int
}

func (t *Trap) Error() string {
	if t.Unit != "" {
		return fmt.Sprintf("machine trap in %s (unit %s) at pc=%d: %s", t.Func, t.Unit, t.PC, t.Msg)
	}
	return fmt.Sprintf("machine trap in %s at pc=%d: %s", t.Func, t.PC, t.Msg)
}

// M is a running machine instance.
type M struct {
	Img      *Image
	Mem      []int64
	Costs    Costs
	Builtins map[string]Builtin

	// Statistics.
	Cycles     int64 // total cycles including stalls
	Stalls     int64 // instruction-fetch stall cycles (subset of Cycles)
	Executed   int64 // instructions executed
	Calls      int64 // direct calls executed
	IndCalls   int64 // indirect calls executed
	BuiltinCnt int64
	ICacheRefs int64
	ICacheMiss int64

	// StepLimit aborts runaway programs (0 means a large default).
	StepLimit int64
	// Fuel, when positive, bounds the instructions a single top-level Run
	// may execute before trapping with TrapBudgetExhausted. Unlike
	// StepLimit (a machine-lifetime cap), Fuel is re-armed at every Run,
	// so one buggy component's infinite loop becomes a reported trap
	// without starving later, well-behaved calls.
	Fuel int64
	// PreRun, when non-nil, is consulted at every top-level Run entry
	// with the entry symbol; a non-nil error aborts the run before any
	// simulated code executes. It exists for deterministic fault
	// injection (see internal/knit/build/faultinject) and must not be
	// relied on for program semantics.
	PreRun func(entry string) error
	// PreCall, when non-nil, is consulted before every simulated
	// function-body entry (direct, indirect, and Run entries alike) with
	// the function's program-unique name; a non-nil error aborts the call
	// with that error. Like PreRun it exists for deterministic fault
	// injection — returning a *Trap keeps unit attribution working — and
	// must not carry program semantics. The hook is skipped for builtins.
	PreCall func(fn string) error
	// PostCall, when non-nil, is invoked after every simulated function
	// call completes (direct, indirect, and Run entries alike; builtins
	// are charged to their caller and do not fire it). The observability
	// layer (internal/knit/observe) rides on it to attribute calls,
	// cycles, and traps to unit instances. When nil the cost is a single
	// predictable branch per call; the hook must not run simulated code
	// on m.
	PostCall func(CallInfo)
	// RewireHook, when non-nil, observes the live-rewiring operations on
	// this machine: op is "interpose", "unpose", "load", or "unload"; sym
	// is the affected function symbol or module name; target is the
	// redirect destination (empty for everything but "interpose"). The
	// reconfiguration layer rides on it to trace plan-step execution and
	// tests use it to pin down exactly which steps touched a machine. The
	// hook fires after the operation has committed and must not run
	// simulated code on m.
	RewireHook func(op, sym, target string)

	sp         int64
	stackLimit int64   // frames may not grow past this (dynamic data follows)
	icache     []int64 // tag per line; -1 empty
	prevLine   int64
	depth      int
	fuelEnd    int64             // absolute Executed bound for the current Run (0 = none)
	dyn        *dynState         // dynamically loaded modules (nil until used)
	redirect   map[string]string // interposed function symbols (nil until used)
	// regStack and argStack are per-call frame pools: every call's
	// virtual registers and outgoing argument vector are slices of these
	// LIFO arenas rather than fresh allocations, so the no-fault call
	// path performs zero heap allocations. MaxCallDepth bounds their
	// growth; stale backing arrays left behind by a mid-call grow are
	// harmless because each frame only ever touches its own slice.
	regStack []int64
	regTop   int
	argStack []int64
	argTop   int

	// Compiled-backend state (see compile_backend.go). backend selects
	// the execution engine. sites is the per-machine dispatch cache the
	// compiled code resolves call sites through; a cached target is only
	// trusted while its version matches dispVersion, which is bumped
	// whenever the name→code mapping can change (interpose/unpose,
	// dynamic load/unload, restore, reset, builtin registration), so no
	// closure ever acts on a stale redirect. dynCompiled caches this
	// machine's compilations of dynamically loaded functions; nextSite
	// allocates their dispatch-cache slots past the static program's.
	backend     Backend
	sites       []callSite
	nextSite    int
	dispVersion uint64
	dynCompiled map[*obj.Func]*cfunc
}

// CallInfo describes one completed simulated function call, as passed
// to the PostCall hook. It carries no pointers into the machine, so a
// hook may retain it freely.
type CallInfo struct {
	Fn    string // program-unique (renamed) function name
	Depth int    // nesting depth at entry: 0 for a top-level Run
	Start int64  // M.Cycles when the call began
	// Cycles is the cycles-of-fuel the call consumed, callees included
	// (an exclusive figure is Cycles minus the callees' CallInfo.Cycles,
	// which nest strictly inside this one).
	Cycles int64
	// Err is the call's error. A trap propagates unchanged through every
	// enclosing frame, so the innermost erroring CallInfo is the first
	// one carrying a given error value.
	Err error
}

// MaxCallDepth bounds simulated recursion.
const MaxCallDepth = 256

// New creates a machine for a loaded image.
func New(img *Image) *M {
	m := &M{
		Img:       img,
		Costs:     img.costs,
		Builtins:  map[string]Builtin{},
		StepLimit: 1 << 32,
	}
	m.Reset()
	return m
}

// Reset restores memory and statistics to the initial image state.
func (m *M) Reset() {
	m.Mem = make([]int64, int64(m.Img.DataWords)+stackWords)
	copy(m.Mem, m.Img.initMem)
	m.sp = int64(m.Img.DataWords)
	m.stackLimit = int64(len(m.Mem))
	m.Cycles, m.Stalls, m.Executed = 0, 0, 0
	m.Calls, m.IndCalls, m.BuiltinCnt = 0, 0, 0
	m.ICacheRefs, m.ICacheMiss = 0, 0
	if m.Costs.ICacheBytes > 0 && m.Costs.ICacheLine > 0 {
		m.icache = make([]int64, m.Costs.ICacheBytes/m.Costs.ICacheLine)
		for i := range m.icache {
			m.icache[i] = -1
		}
	}
	m.prevLine = -100
	m.dyn = nil // dynamic modules do not survive a reset
	m.redirect = nil
	m.depth = 0
	m.fuelEnd = 0
	m.regTop, m.argTop = 0, 0 // arenas keep their capacity across resets
	m.sites = nil
	m.nextSite = 0
	m.dynCompiled = nil
	m.dispVersion++ // fresh caches start invalid (slot version 0 < 1)
}

// RegisterBuiltin installs a host function under the given symbol name.
func (m *M) RegisterBuiltin(name string, fn Builtin) {
	m.Builtins[name] = fn
	m.dispVersion++ // an undefined-call site may now resolve to the builtin
}

// Run calls the named function with the given arguments and returns its
// result. At the top level (not from within simulated code) it re-arms
// the fuel budget and, on a trap, attributes the fault to the owning
// unit instance via the link-time symbol owner table.
func (m *M) Run(entry string, args ...int64) (int64, error) {
	if m.depth == 0 && m.PreRun != nil {
		if err := m.PreRun(entry); err != nil {
			return 0, err
		}
	}
	entry = m.interposed(entry)
	fn, ok := m.Img.Entry[entry]
	if !ok {
		fn, ok = m.dynFunc(entry)
	}
	if !ok {
		return 0, &LoadError{Msg: fmt.Sprintf("entry function %q not defined", entry)}
	}
	if m.depth == 0 {
		if m.Fuel > 0 {
			m.fuelEnd = m.Executed + m.Fuel
		} else {
			m.fuelEnd = 0
		}
	}
	v, err := m.call(fn, args)
	if t, ok := err.(*Trap); ok && t.Unit == "" {
		t.Unit = m.OwnerOf(t.Func)
	}
	return v, err
}

// OwnerOf maps a (renamed, program-unique) function or data symbol back
// to the unit instance that owns it, consulting the image's link-time
// symbol table and then the live dynamic modules. Empty when unknown.
func (m *M) OwnerOf(sym string) string {
	if owner, ok := m.Img.SymbolOwner[sym]; ok {
		return owner
	}
	if m.dyn != nil {
		if owner, ok := m.dyn.owner[sym]; ok {
			return owner
		}
	}
	return ""
}

// fetch models the instruction fetch of one instruction at the given
// text byte offset.
func (m *M) fetch(textOff int64) {
	if m.icache == nil {
		return
	}
	m.ICacheRefs++
	line := textOff / int64(m.Costs.ICacheLine)
	idx := line % int64(len(m.icache))
	if m.icache[idx] != line {
		m.icache[idx] = line
		m.ICacheMiss++
		penalty := m.Costs.ICacheMiss
		if line == m.prevLine+1 {
			penalty = m.Costs.ICacheSeqMiss
		}
		m.Stalls += penalty
		m.Cycles += penalty
	}
	m.prevLine = line
}

// call runs one simulated function body via exec, firing the PostCall
// hook (when installed) with the call's frame identity, fuel delta, and
// outcome. The disabled path is a single nil check so that detached
// observability costs nothing measurable. Under the compiled backend
// the body runs as closure-compiled code instead; invoke carries the
// same hook contract.
func (m *M) call(fn *obj.Func, args []int64) (int64, error) {
	if m.backend == BackendCompiled {
		return m.invoke(m.compiledFor(fn), args)
	}
	if m.PostCall == nil {
		return m.exec(fn, args)
	}
	depth := m.depth
	start := m.Cycles
	v, err := m.exec(fn, args)
	m.PostCall(CallInfo{Fn: fn.Name, Depth: depth, Start: start, Cycles: m.Cycles - start, Err: err})
	return v, err
}

// growArena extends a frame arena to at least need words. Growth
// abandons the old backing array; live parent frames keep their slices
// of it, which stays correct because a frame is the only reader and
// writer of its own registers.
func growArena(s []int64, need int) []int64 {
	n := 2 * need
	if n < 256 {
		n = 256
	}
	ns := make([]int64, n)
	copy(ns, s)
	return ns
}

func (m *M) exec(fn *obj.Func, args []int64) (int64, error) {
	if m.depth >= MaxCallDepth {
		return 0, &Trap{Kind: TrapStackOverflow, Msg: "call stack overflow", Func: fn.Name}
	}
	if m.PreCall != nil {
		if err := m.PreCall(fn.Name); err != nil {
			return 0, err
		}
	}
	if len(args) != fn.NArgs {
		return 0, &Trap{Msg: fmt.Sprintf("called with %d args, want %d", len(args), fn.NArgs), Func: fn.Name}
	}
	m.depth++
	rbase := m.regTop
	defer func() { m.depth--; m.regTop = rbase }()

	// The frame's virtual registers come from the LIFO register arena:
	// no per-call allocation, at the price of explicit zeroing (the
	// arena holds stale values from earlier frames).
	if rbase+fn.NRegs > len(m.regStack) {
		m.regStack = growArena(m.regStack, rbase+fn.NRegs)
	}
	regs := m.regStack[rbase : rbase+fn.NRegs : rbase+fn.NRegs]
	m.regTop = rbase + fn.NRegs
	copy(regs, args)
	for i := len(args); i < len(regs); i++ {
		regs[i] = 0
	}
	fp := m.sp
	if fp+int64(fn.Frame) > m.stackLimit {
		return 0, &Trap{Kind: TrapStackOverflow, Msg: "simulated stack overflow", Func: fn.Name}
	}
	// Frame memory must start zeroed for deterministic behaviour.
	for i := int64(0); i < int64(fn.Frame); i++ {
		m.Mem[fp+i] = 0
	}
	m.sp = fp + int64(fn.Frame)
	defer func() { m.sp = fp }()

	return m.execLoop(fn, regs, fp, 0, true)
}

// execLoop is the interpreter proper: it executes fn's body over an
// already-established frame (registers, frame pointer, stack), starting
// at pc. With model=false the instruction-fetch model is skipped —
// Stalls stay untouched and Cycles count only execution — which is the
// cost semantics of the compiled backend; it uses this mode to finish a
// frame exactly, instruction by instruction, when a step or fuel limit
// is close enough that bulk accounting could overshoot the trap point.
func (m *M) execLoop(fn *obj.Func, regs []int64, fp int64, pc int, model bool) (int64, error) {
	var textOff, ib int64
	if model {
		textOff = m.Img.textOff[fn.Name]
		if dfn, ok := m.dynFunc(fn.Name); ok && dfn == fn {
			textOff = m.dyn.textOff[fn.Name]
		}
		ib = int64(m.Costs.InstrBytes)
	}
	for {
		if pc < 0 || pc >= len(fn.Code) {
			return 0, &Trap{Msg: "pc out of range", Func: fn.Name, PC: pc}
		}
		if m.Executed >= m.StepLimit {
			return 0, &Trap{Kind: TrapBudgetExhausted, Msg: "step limit exceeded", Func: fn.Name, PC: pc}
		}
		if m.fuelEnd > 0 && m.Executed >= m.fuelEnd {
			return 0, &Trap{Kind: TrapBudgetExhausted,
				Msg:  fmt.Sprintf("fuel budget of %d instructions exhausted", m.Fuel),
				Func: fn.Name, PC: pc}
		}
		in := &fn.Code[pc]
		m.Executed++
		m.Cycles += m.Costs.Instr
		if model {
			m.fetch(textOff + int64(pc)*ib)
		}

		switch in.Op {
		case obj.OpConst:
			regs[in.Dst] = in.Imm
		case obj.OpMov:
			regs[in.Dst] = regs[in.A]
		case obj.OpBin:
			v, err := obj.EvalBin(cmini.Tok(in.Tok), regs[in.A], regs[in.B])
			if err != nil {
				return 0, &Trap{Msg: err.Error(), Func: fn.Name, PC: pc}
			}
			regs[in.Dst] = v
		case obj.OpUn:
			v, err := obj.EvalUn(cmini.Tok(in.Tok), regs[in.A])
			if err != nil {
				return 0, &Trap{Msg: err.Error(), Func: fn.Name, PC: pc}
			}
			regs[in.Dst] = v
		case obj.OpLoad:
			v, err := m.load(regs[in.A], fn, pc)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case obj.OpStore:
			if err := m.store(regs[in.A], regs[in.B], fn, pc); err != nil {
				return 0, err
			}
		case obj.OpAddrGlobal:
			if a, ok := m.resolveAddr(in.Sym); ok {
				regs[in.Dst] = a
			} else {
				return 0, &Trap{Kind: TrapUnresolvedSymbol, Msg: "unresolved symbol " + in.Sym, Func: fn.Name, PC: pc}
			}
		case obj.OpAddrLocal:
			regs[in.Dst] = fp + in.Imm
		case obj.OpAddrString:
			// String addresses are data addresses computed at load time;
			// re-derive via the preloaded image: strings live after
			// globals. Precomputed per-image table:
			a, err := m.stringAddr(int(in.Imm))
			if err != nil {
				return 0, &Trap{Kind: TrapBadStringIndex, Msg: err.Error(), Func: fn.Name, PC: pc}
			}
			regs[in.Dst] = a
		case obj.OpCall:
			v, err := m.dispatch(in.Sym, regs, in.Args, fn, pc)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case obj.OpCallInd:
			target := regs[in.A]
			callee, ok := m.Img.funcByAddr[target]
			if !ok {
				callee, ok = m.dynFuncByAddr(target)
			}
			if !ok {
				return 0, &Trap{Kind: TrapUnresolvedSymbol, Msg: fmt.Sprintf("indirect call to non-function address %#x", target), Func: fn.Name, PC: pc}
			}
			m.IndCalls++
			m.Cycles += m.Costs.CallBase + m.Costs.Indirect +
				m.Costs.CallPerArg*int64(len(in.Args))
			argv, abase := m.pushArgs(regs, in.Args)
			v, err := m.call(callee, argv)
			m.argTop = abase
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case obj.OpJump:
			pc = in.Targets[0]
			continue
		case obj.OpBranch:
			if regs[in.A] != 0 {
				pc = in.Targets[0]
			} else {
				pc = in.Targets[1]
			}
			continue
		case obj.OpRet:
			if in.HasVal {
				return regs[in.A], nil
			}
			return 0, nil
		default:
			return 0, &Trap{Msg: "bad opcode", Func: fn.Name, PC: pc}
		}
		pc++
	}
}

// dispatch performs a direct call: to a defined function, or to a
// registered builtin when the symbol has no definition. Interposed
// symbols (see Interpose) are redirected before lookup, so a supervisor
// can reroute every direct call into a component without touching its
// callers.
func (m *M) dispatch(sym string, regs []int64, argRegs []obj.Reg, fn *obj.Func, pc int) (int64, error) {
	sym = m.interposed(sym)
	argv, abase := m.pushArgs(regs, argRegs)
	defer func() { m.argTop = abase }()
	if callee, ok := m.Img.Entry[sym]; ok {
		m.Calls++
		m.Cycles += m.Costs.CallBase + m.Costs.CallPerArg*int64(len(argv))
		return m.call(callee, argv)
	}
	if callee, ok := m.dynFunc(sym); ok {
		m.Calls++
		m.Cycles += m.Costs.CallBase + m.Costs.CallPerArg*int64(len(argv))
		return m.call(callee, argv)
	}
	if b, ok := m.Builtins[sym]; ok {
		m.BuiltinCnt++
		m.Cycles += m.Costs.Builtin
		return b(m, argv)
	}
	return 0, &Trap{Kind: TrapUndefinedCall, Msg: "call to undefined function " + sym, Func: fn.Name, PC: pc}
}

// pushArgs gathers an outgoing argument vector from the caller's
// registers into the LIFO argument arena, returning the vector and the
// arena watermark the caller must restore once the callee returns. Like
// the register arena, this keeps the per-call path allocation-free; a
// builtin must not retain its argument slice past its own return.
func (m *M) pushArgs(regs []int64, argRegs []obj.Reg) (argv []int64, base int) {
	base = m.argTop
	if base+len(argRegs) > len(m.argStack) {
		m.argStack = growArena(m.argStack, base+len(argRegs))
	}
	argv = m.argStack[base : base+len(argRegs) : base+len(argRegs)]
	m.argTop = base + len(argRegs)
	for i, r := range argRegs {
		argv[i] = regs[r]
	}
	return argv, base
}

func (m *M) load(addr int64, fn *obj.Func, pc int) (int64, error) {
	if addr < nullGuard || addr >= int64(len(m.Mem)) {
		return 0, &Trap{Kind: TrapBadAddress, Msg: fmt.Sprintf("load from invalid address %d", addr), Func: fn.Name, PC: pc}
	}
	return m.Mem[addr], nil
}

func (m *M) store(addr, val int64, fn *obj.Func, pc int) error {
	if addr < nullGuard || addr >= int64(len(m.Mem)) {
		return &Trap{Kind: TrapBadAddress, Msg: fmt.Sprintf("store to invalid address %d", addr), Func: fn.Name, PC: pc}
	}
	m.Mem[addr] = val
	return nil
}

// stringAddr returns the data address of string literal i.
func (m *M) stringAddr(i int) (int64, error) {
	if i < 0 || i >= len(m.Img.strAddr) {
		return 0, errors.New("bad string literal index")
	}
	return m.Img.strAddr[i], nil
}

// ReadCString reads a NUL-terminated string from simulated memory.
func (m *M) ReadCString(addr int64) (string, error) {
	var b []byte
	for {
		if addr < nullGuard || addr >= int64(len(m.Mem)) {
			return "", fmt.Errorf("machine: string read out of range at %d", addr)
		}
		c := m.Mem[addr]
		if c == 0 {
			return string(b), nil
		}
		b = append(b, byte(c))
		addr++
	}
}

// WriteWords copies words into simulated memory.
func (m *M) WriteWords(addr int64, words []int64) error {
	if addr < nullGuard || addr+int64(len(words)) > int64(len(m.Mem)) {
		return fmt.Errorf("machine: write out of range at %d", addr)
	}
	copy(m.Mem[addr:], words)
	return nil
}
